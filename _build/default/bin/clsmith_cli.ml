(* clsmith: generate, print and run random OpenCL kernels.

   Usage:
     clsmith_cli gen  --mode ALL --seed 42 [--emi] [--run] [--full-scale]
     clsmith_cli diff --mode ALL --seed 42        differential-test one kernel
     clsmith_cli emi  --seed 42 --variants 10     EMI-variant check on the
                                                  reference device *)

open Cmdliner

let mode_arg =
  let mode_conv : Gen_config.mode Arg.conv =
    Arg.conv
      ( (fun s ->
          match Gen_config.mode_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg ("unknown mode " ^ s))),
        fun fmt m -> Format.pp_print_string fmt (Gen_config.mode_name m) )
  in
  Arg.(value & opt mode_conv Gen_config.All & info [ "mode"; "m" ] ~doc:"Generator mode")

let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Generator seed")
let emi_arg = Arg.(value & flag & info [ "emi" ] ~doc:"Inject EMI blocks")
let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Run on the reference device")

let full_arg =
  Arg.(value & flag & info [ "full-scale" ] ~doc:"Use the paper's NDRange ranges")

let gen_cmd =
  let run mode seed emi run_it full =
    let cfg = if full then Gen_config.paper_scale mode else Gen_config.scaled mode in
    let tc, info = Generate.generate ~emi ~cfg ~seed () in
    print_string (Pp.testcase_to_string tc);
    if info.Generate.counter_sharing then
      print_endline
        "/* NOTE: atomic sections share a counter; the campaign driver would \
         discard this kernel (cf. paper section 7.3) */";
    if run_it then
      Printf.printf "\n/* reference: %s */\n"
        (Outcome.to_string (Driver.reference_outcome tc))
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate one kernel")
    Term.(const run $ mode_arg $ seed_arg $ emi_arg $ run_arg $ full_arg)

let diff_cmd =
  let run mode seed =
    let cfg = Gen_config.scaled mode in
    let tc, info = Generate.generate ~cfg ~seed () in
    if info.Generate.counter_sharing then
      print_endline "kernel discarded: atomic-section counter sharing"
    else begin
      let prep = Driver.prepare tc in
      let results =
        List.concat_map
          (fun id ->
            let c = Config.find id in
            [ (Printf.sprintf "%d-" id, Driver.run_prepared c ~opt:false prep);
              (Printf.sprintf "%d+" id, Driver.run_prepared c ~opt:true prep) ])
          Config.above_threshold_ids
      in
      let majority = Majority.majority_output (List.map snd results) in
      List.iter
        (fun (name, o) ->
          Printf.printf "%-4s %-5s %s\n" name
            (Majority.bucket_name (Majority.bucket_of ~majority o))
            (Outcome.to_string o))
        results
    end
  in
  Cmd.v (Cmd.info "diff" ~doc:"Differential-test one kernel across configurations")
    Term.(const run $ mode_arg $ seed_arg)

let emi_cmd =
  let run seed variants =
    let cfg = Gen_config.scaled Gen_config.All in
    let base, info = Generate.generate ~emi:true ~cfg ~seed () in
    if info.Generate.counter_sharing then
      print_endline "base discarded: atomic-section counter sharing"
    else begin
      let ob = Driver.reference_outcome base in
      Printf.printf "base: %s\n" (Outcome.to_string ob);
      List.iteri
        (fun i v ->
          let ov = Driver.reference_outcome v in
          Printf.printf "variant %2d: %s\n" i
            (if Outcome.equal ob ov then "identical (as EMI demands)"
             else "MISMATCH: " ^ Outcome.to_string ov))
        (Variant.variants ~base ~count:variants)
    end
  in
  let variants = Arg.(value & opt int 10 & info [ "variants"; "n" ] ~doc:"Variant count") in
  Cmd.v (Cmd.info "emi" ~doc:"Check EMI variants against the base on the reference device")
    Term.(const run $ seed_arg $ variants)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "clsmith_cli" ~doc:"CLsmith kernel generator (reproduction)")
          [ gen_cmd; diff_cmd; emi_cmd ]))
