examples/bug_hunt_reduce.ml: Ast Config Driver Gen_config Generate Outcome Pp Printf Reduce String
