examples/bug_hunt_reduce.mli:
