examples/differential_testing.ml: Config Driver Gen_config Generate List Majority Printf
