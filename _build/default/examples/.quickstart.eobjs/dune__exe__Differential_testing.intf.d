examples/differential_testing.mli:
