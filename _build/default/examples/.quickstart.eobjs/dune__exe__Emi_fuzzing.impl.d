examples/emi_fuzzing.ml: Config Driver Gen_config Generate Inject List Outcome Printf String Suite Variant
