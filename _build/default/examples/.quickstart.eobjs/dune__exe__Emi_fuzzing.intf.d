examples/emi_fuzzing.mli:
