examples/quickstart.ml: Ast Build Config Driver Gen_config Generate List Outcome Pp Printf Stdlib String Ty Typecheck Validate
