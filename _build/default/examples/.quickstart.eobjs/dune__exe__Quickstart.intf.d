examples/quickstart.mli:
