examples/race_detection.ml: Interp List Printf Race Suite
