(* A complete bug-hunting session, as section 6 of the paper describes the
   authors' workflow: fuzz until a configuration disagrees with the
   reference, then reduce the kernel to a small reproducer, then inspect
   what the vendor's compiler did to it.

   dune exec examples/bug_hunt_reduce.exe *)

let target = 19 (* Oclgrind and its comma-operator bug, cf. Fig. 2(f) *)

let () =
  let c = Config.find target in
  let cfg = Gen_config.scaled Gen_config.Basic in
  let wrong tc =
    match (Driver.reference_outcome tc, Driver.run c ~opt:false tc) with
    | Outcome.Success a, Outcome.Success b -> not (String.equal a b)
    | _ -> false
  in
  (* 1. fuzz *)
  let rec hunt seed =
    if seed > 3000 then None
    else
      let tc, info = Generate.generate ~cfg ~seed () in
      if (not info.Generate.counter_sharing) && wrong tc then Some (seed, tc)
      else hunt (seed + 1)
  in
  match hunt 1 with
  | None -> print_endline "no miscompilation found in 3000 seeds (unexpected)"
  | Some (seed, tc) ->
      Printf.printf "seed %d is miscompiled by configuration %d (%s)\n" seed
        target c.Config.device;
      Printf.printf "  original kernel: %d statements\n"
        (Ast.stmt_count tc.Ast.prog);
      (* 2. reduce *)
      let reduced, stats = Reduce.reduce ~interesting:wrong tc in
      Printf.printf
        "  reduced to %d statements in %d attempts (%d accepted steps)\n\n"
        stats.Reduce.final_stmts stats.Reduce.attempts stats.Reduce.accepted;
      print_endline "--- reduced reproducer ---";
      print_string (Pp.program_to_string reduced.Ast.prog);
      (* 3. inspect both sides *)
      Printf.printf "\nreference: %s\nconfig %d:  %s\n"
        (Outcome.to_string (Driver.reference_outcome reduced))
        target
        (Outcome.to_string (Driver.run c ~opt:false reduced))
