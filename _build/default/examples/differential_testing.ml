(* Random differential testing (paper section 4): generate kernels,
   run them across configurations at both optimisation levels, majority-vote
   the results and report wrong-code findings.

   dune exec examples/differential_testing.exe *)

let kernels_per_mode = 15

let () =
  let modes = [ Gen_config.Basic; Gen_config.Barrier; Gen_config.All ] in
  List.iter
    (fun mode ->
      Printf.printf "=== mode %s ===\n%!" (Gen_config.mode_name mode);
      let cfg = Gen_config.scaled mode in
      let found = ref 0 in
      for seed = 1 to kernels_per_mode do
        let tc, info = Generate.generate ~cfg ~seed () in
        if not info.Generate.counter_sharing then begin
          let prep = Driver.prepare tc in
          let results =
            List.concat_map
              (fun id ->
                let c = Config.find id in
                List.map
                  (fun opt ->
                    ( Printf.sprintf "%d%s" id (if opt then "+" else "-"),
                      Driver.run_prepared c ~opt prep ))
                  [ false; true ])
              Config.above_threshold_ids
          in
          let majority = Majority.majority_output (List.map snd results) in
          List.iter
            (fun (name, o) ->
              if Majority.is_wrong_code ~majority o then begin
                incr found;
                Printf.printf
                  "  seed %d: configuration %s disagrees with the majority \
                   (wrong code)\n"
                  seed name
              end)
            results
        end
      done;
      Printf.printf "  %d wrong-code observations over %d kernels\n"
        !found kernels_per_mode)
    modes
