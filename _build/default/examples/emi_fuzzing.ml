(* EMI testing (paper section 5): dead-by-construction code injection.

   Part 1 derives pruned variants of a CLsmith+EMI base kernel and checks
   them against one configuration — variants that disagree expose a
   miscompilation without needing a second compiler.

   Part 2 injects EMI blocks into a real benchmark kernel (Rodinia
   hotspot), with free-variable substitution on and off.

   dune exec examples/emi_fuzzing.exe *)

let () =
  print_endline "=== CLsmith+EMI variants on configuration 15+ (Intel Xeon) ===";
  let cfg = Gen_config.scaled Gen_config.All in
  let found = ref 0 in
  let seed = ref 100 in
  let bases = ref 0 in
  while !bases < 8 do
    incr seed;
    let base, info = Generate.generate ~emi:true ~cfg ~seed:!seed () in
    if not info.Generate.counter_sharing then begin
      incr bases;
      let c = Config.find 15 in
      let vs = Variant.variants ~base ~count:16 in
      let outs =
        List.filter_map
          (fun v ->
            match Driver.run c ~opt:true v with
            | Outcome.Success s -> Some s
            | _ -> None)
          vs
      in
      match List.sort_uniq String.compare outs with
      | [] -> Printf.printf "  base %d: no variant computed a result\n" !seed
      | [ _ ] -> Printf.printf "  base %d: all variants agree\n" !seed
      | several ->
          incr found;
          Printf.printf
            "  base %d: variants computed %d DIFFERENT results — wrong code \
             found with a single compiler\n"
            !seed (List.length several)
    end
  done;
  Printf.printf "  EMI found wrong code for %d of 8 bases\n\n" !found;

  print_endline "=== EMI injection into the hotspot benchmark ===";
  let hotspot = (Suite.find "hotspot").Suite.testcase () in
  let expected = Driver.reference_outcome hotspot in
  List.iter
    (fun subst ->
      let inj = Inject.inject ~subst ~cfg ~seed:42 hotspot in
      let got = Driver.reference_outcome inj.Inject.testcase in
      Printf.printf
        "  substitutions %-3s: %d injection point(s); output %s\n"
        (if subst then "on" else "off")
        inj.Inject.injection_points
        (if Outcome.equal expected got then
           "unchanged (the blocks are dead, as EMI requires)"
         else "CHANGED — this would be a bug in the injector")
    )
    [ true; false ]
