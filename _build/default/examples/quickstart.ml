(* Quickstart: build a kernel with the AST combinators, type-check it, run
   it on the reference device, and compile-and-run it on a buggy vendor
   configuration.

   dune exec examples/quickstart.exe *)

let () =
  (* a tiny OpenCL kernel: out[tid] = (a + b) * tid_factor, per thread *)
  let open Build in
  let prog =
    kernel1 "quickstart"
      [
        decle "a" Ty.int (ci 40);
        decle "b" Ty.int (ci 2);
        assign (idx (v "out") tid_linear) (cast Ty.ulong (v "a" + v "b"));
      ]
  in
  print_endline "--- kernel source (as a vendor compiler would receive it) ---";
  print_string (Pp.program_to_string prog);

  (* host side: 2 work-groups of 4 threads *)
  let tc = Build.testcase ~gsize:(8, 1, 1) ~lsize:(4, 1, 1) prog in

  (* static checks: types, and the determinism discipline of the paper *)
  (match Typecheck.check_testcase tc with
  | Ok () -> print_endline "typecheck: ok"
  | Error m -> failwith m);
  (match Validate.check prog with
  | Ok () -> print_endline "validate: deterministic by construction"
  | Error vs -> failwith (Validate.errors_to_string vs));

  (* run on the reference device *)
  print_endline ("reference: " ^ Outcome.to_string (Driver.reference_outcome tc));

  (* and on a simulated vendor configuration, both optimisation levels *)
  let c = Config.find 19 (* Oclgrind *) in
  let off, on = Driver.run_both c tc in
  Printf.printf "config %d (%s) -cl-opt-disable: %s\n" c.Config.id
    c.Config.device (Outcome.to_string off);
  Printf.printf "config %d (%s) default opts:    %s\n" c.Config.id
    c.Config.device (Outcome.to_string on);

  (* generate a random CLsmith kernel and print its first lines *)
  let tc', _info =
    Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed:7 ()
  in
  let src = Pp.program_to_string tc'.Ast.prog in
  let first_lines =
    String.concat "\n"
      (List.filteri (fun i _ -> Stdlib.(i < 12)) (String.split_on_char '\n' src))
  in
  print_endline "--- a random CLsmith kernel (first lines) ---";
  print_endline first_lines;
  print_endline "...";
  print_endline
    ("random kernel on the reference device: "
    ^ Outcome.to_string (Driver.reference_outcome tc'))
