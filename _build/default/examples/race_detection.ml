(* Rediscovering the Parboil spmv and Rodinia myocyte data races (paper
   section 2.4): the paper "wasted significant effort" reducing what looked
   like compiler bugs before realising the benchmarks themselves were racy.
   The epoch-based race detector finds both directly.

   dune exec examples/race_detection.exe *)

let () =
  print_endline "race-detecting the benchmark suite:";
  List.iter
    (fun (b : Suite.benchmark) ->
      let tc = b.Suite.testcase () in
      let config = { Interp.default_config with Interp.detect_races = true } in
      let r = Interp.run ~config tc in
      (match r.Interp.races with
      | [] -> Printf.printf "  %-11s race-free\n" b.Suite.name
      | race :: _ ->
          Printf.printf "  %-11s RACY: %s\n" b.Suite.name
            (Race.race_to_string race));
      (* on real hardware racy kernels produce schedule-dependent results
         (lost updates), which is how they originally confused the EMI
         campaign; this simulator serialises read-modify-writes, so the
         detector — not output comparison — is what finds them *)
      if b.Suite.racy then
        Printf.printf
          "  %-11s  -> the paper reported this race to the %s developers, \
           who confirmed it\n"
          "" (Suite.origin_name b.Suite.origin))
    Suite.all
