lib/cl_benchmarks/bm_bfs.ml: Array Ast Build Int64 Op Ty
