lib/cl_benchmarks/bm_cutcp.ml: Array Ast Build Int64 Op Ty
