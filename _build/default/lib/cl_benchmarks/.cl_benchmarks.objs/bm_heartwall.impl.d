lib/cl_benchmarks/bm_heartwall.ml: Array Ast Build Int64 Op Ty
