lib/cl_benchmarks/bm_hotspot.ml: Array Ast Build Int64 Op Stdlib Ty
