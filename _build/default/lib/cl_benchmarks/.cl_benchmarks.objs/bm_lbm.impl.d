lib/cl_benchmarks/bm_lbm.ml: Array Ast Build Int64 Stdlib Ty
