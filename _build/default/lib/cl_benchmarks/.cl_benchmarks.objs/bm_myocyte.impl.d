lib/cl_benchmarks/bm_myocyte.ml: Array Ast Build Int64 Ty
