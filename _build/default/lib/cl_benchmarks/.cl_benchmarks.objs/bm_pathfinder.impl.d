lib/cl_benchmarks/bm_pathfinder.ml: Array Ast Build Int64 Op Stdlib Ty
