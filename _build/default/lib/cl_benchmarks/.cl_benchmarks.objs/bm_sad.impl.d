lib/cl_benchmarks/bm_sad.ml: Array Ast Build Int64 Op Ty
