lib/cl_benchmarks/bm_spmv.ml: Array Ast Build Int64 Ty
