lib/cl_benchmarks/bm_tpacf.ml: Array Ast Build Int64 Op Stdlib Ty
