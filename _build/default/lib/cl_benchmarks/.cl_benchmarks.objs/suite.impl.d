lib/cl_benchmarks/suite.ml: Ast Bm_bfs Bm_cutcp Bm_heartwall Bm_hotspot Bm_lbm Bm_myocyte Bm_pathfinder Bm_sad Bm_spmv Bm_tpacf List Pp String Table_fmt
