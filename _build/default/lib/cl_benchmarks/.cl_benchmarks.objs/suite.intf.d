lib/cl_benchmarks/suite.mli: Ast
