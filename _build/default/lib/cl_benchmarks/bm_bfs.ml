(* Parboil bfs: breadth-first search over a CSR graph.

   One work-group of [nodes] threads; level-synchronous expansion with a
   global-fence barrier per level and atomic compare-and-exchange to claim
   unvisited nodes (race-free, unlike spmv). *)


let nodes = 16
let inf = 999

(* ring + chord edges: node i -> (i+1) mod n and (3i+1) mod n *)
let row_offsets = Array.init (nodes + 1) (fun i -> Int64.of_int (2 * i))

let edges =
  Array.init (2 * nodes) (fun e ->
      let i = e / 2 in
      Int64.of_int (if e mod 2 = 0 then (i + 1) mod nodes else ((3 * i) + 1) mod nodes))

let initial_levels =
  Array.init nodes (fun i -> Int64.of_int (if i = 0 then 0 else inf))

let program =
  let open Build in
  let me = decle "me" Ty.int (cast Ty.int tid_linear) in
  let body =
    [
      me;
      for_up "k" ~from:0 ~below:nodes
        [
          if_ (idx (v "levels") (v "me") == v "k")
            [
              for_
                ~init:(decle "e" Ty.int (idx (v "row") (v "me")))
                ~cond:(v "e" < idx (v "row") (v "me" + ci 1))
                ~update:(assign_op Op.Add (v "e") (ci 1))
                [
                  expr
                    (Ast.Atomic
                       ( Op.A_cmpxchg,
                         addr (idx (v "levels") (idx (v "edges") (v "e"))),
                         [ ci inf; v "k" + ci 1 ] ));
                ];
            ];
          barrier_g;
        ];
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "bfs" Ty.Void
        [
          ("levels", Ty.Ptr (Ty.Global, Ty.int));
          ("row", Ty.Ptr (Ty.Global, Ty.int));
          ("edges", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase
    ~gsize:(nodes, 1, 1) ~lsize:(nodes, 1, 1)
    ~buffers:
      [
        ("levels", Ast.Buf_data initial_levels);
        ("row", Ast.Buf_data row_offsets);
        ("edges", Ast.Buf_data edges);
      ]
    ~observe:[ "levels" ] program
