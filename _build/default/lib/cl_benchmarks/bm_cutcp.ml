(* Parboil cutcp: cutoff Coulombic potential over a 2-D lattice.

   Each thread owns a lattice point and sums fixed-point charge
   contributions of the atoms within the cutoff radius. Embarrassingly
   parallel. *)


let side = 8
let atoms = [| (1, 2, 30); (6, 1, -20); (3, 5, 50); (7, 7, 10); (0, 6, -40); (4, 4, 25) |]
let cutoff2 = 18

let atom_data =
  Array.concat
    (Array.to_list
       (Array.map (fun (x, y, q) -> [| Int64.of_int x; Int64.of_int y; Int64.of_int q |]) atoms))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      decle "px" Ty.int (v "me" % ci side);
      decle "py" Ty.int (v "me" / ci side);
      decle "acc" Ty.int (ci 0);
      for_up "a" ~from:0 ~below:(Array.length atoms)
        [
          decle "dx" Ty.int (v "px" - idx (v "atoms") (v "a" * ci 3));
          decle "dy" Ty.int (v "py" - idx (v "atoms") ((v "a" * ci 3) + ci 1));
          decle "d2" Ty.int ((v "dx" * v "dx") + (v "dy" * v "dy"));
          if_ (v "d2" < ci cutoff2)
            [
              assign_op Op.Add (v "acc")
                ((idx (v "atoms") ((v "a" * ci 3) + ci 2) << ci 6)
                / (ci 1 + v "d2"));
            ];
        ];
      assign (idx (v "pot") (v "me")) (v "acc");
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "cutcp" Ty.Void
        [
          ("pot", Ty.Ptr (Ty.Global, Ty.int));
          ("atoms", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase
    ~gsize:(side * side, 1, 1) ~lsize:(side, 1, 1)
    ~buffers:
      [
        ("pot", Ast.Buf_zero (side * side));
        ("atoms", Ast.Buf_data atom_data);
      ]
    ~observe:[ "pot" ] program
