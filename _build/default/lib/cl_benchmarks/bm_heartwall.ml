(* Rodinia heartwall: medical imaging — tracking by template matching.

   Each thread owns a candidate window position and computes an integer
   cross-correlation of the template against the image window. Pure
   data-parallel. *)


let img_side = 16
let tpl_side = 4
let positions_side = img_side - tpl_side (* 12x12 candidate positions *)

let image =
  Array.init (img_side * img_side) (fun i -> Int64.of_int ((i * 29 mod 97) mod 32))

let template =
  Array.init (tpl_side * tpl_side) (fun i -> Int64.of_int ((i * 3 + 1) mod 8))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      decle "wx" Ty.int (v "me" % ci positions_side);
      decle "wy" Ty.int (v "me" / ci positions_side);
      decle "corr" Ty.int (ci 0);
      for_up "r" ~from:0 ~below:tpl_side
        [
          for_up "c" ~from:0 ~below:tpl_side
            [
              assign_op Op.Add (v "corr")
                (idx (v "img")
                   (((v "wy" + v "r") * ci img_side) + v "wx" + v "c")
                * idx (v "tpl") ((v "r" * ci tpl_side) + v "c"));
            ];
        ];
      assign (idx (v "corrs") (v "me")) (v "corr");
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "heartwall" Ty.Void
        [
          ("corrs", Ty.Ptr (Ty.Global, Ty.int));
          ("img", Ty.Ptr (Ty.Global, Ty.int));
          ("tpl", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  let n = positions_side * positions_side in
  Build.testcase ~gsize:(n, 1, 1) ~lsize:(12, 1, 1)
    ~buffers:
      [
        ("corrs", Ast.Buf_zero n);
        ("img", Ast.Buf_data image);
        ("tpl", Ast.Buf_data template);
      ]
    ~observe:[ "corrs" ] program
