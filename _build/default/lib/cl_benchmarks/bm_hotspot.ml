(* Rodinia hotspot: thermal simulation — iterative 5-point stencil with a
   power term, double-buffered between tempA and tempB with a global-fence
   barrier per iteration (single work-group, so the barrier orders all
   threads). *)


let side = 8
let iterations = 4

let temp0 =
  Array.init (side * side) (fun i -> Int64.of_int (320 + (i * 17 mod 40)))

let power =
  Array.init (side * side) (fun i -> Int64.of_int (if i mod 9 = 0 then 24 else 2))

let program =
  let open Build in
  let clamped e = Ast.Builtin (Op.Min, [ Ast.Builtin (Op.Max, [ e; ci 0 ]); ci Stdlib.((side * side) - 1) ]) in
  let stencil src =
    let at e = idx (v src) (clamped e) in
    ((ci 4 * at (v "me"))
     + at (v "me" - ci 1) + at (v "me" + ci 1)
     + at (v "me" - ci side) + at (v "me" + ci side)
     + idx (v "power") (v "me") + ci 4)
    / ci 8
  in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      for_up "it" ~from:0 ~below:iterations
        [
          if_else (v "it" % ci 2 == ci 0)
            [ assign (idx (v "tempB") (v "me")) (stencil "tempA") ]
            [ assign (idx (v "tempA") (v "me")) (stencil "tempB") ];
          barrier_g;
        ];
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "hotspot" Ty.Void
        [
          ("tempA", Ty.Ptr (Ty.Global, Ty.int));
          ("tempB", Ty.Ptr (Ty.Global, Ty.int));
          ("power", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase
    ~gsize:(side * side, 1, 1) ~lsize:(side * side, 1, 1)
    ~buffers:
      [
        ("tempA", Ast.Buf_data temp0);
        ("tempB", Ast.Buf_zero (side * side));
        ("power", Ast.Buf_data power);
      ]
    ~observe:[ "tempA" ] program
