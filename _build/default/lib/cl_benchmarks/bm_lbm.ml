(* Parboil lbm: lattice-based fluid dynamics.

   A relaxation step of a 2-D lattice (torus): each thread reads its four
   neighbours from the source lattice and writes a weighted average into the
   destination lattice. Double-buffered, hence race-free. *)


let side = 8

let initial =
  Array.init (side * side) (fun i -> Int64.of_int (((i * 37) mod 19) + 1))

let program =
  let open Build in
  let src i = idx (v "src") i in
  let wrapi e = (e + ci Stdlib.(side * side)) % ci Stdlib.(side * side) in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      decle "left" Ty.int (src (wrapi (v "me" - ci 1)));
      decle "right" Ty.int (src (wrapi (v "me" + ci 1)));
      decle "up" Ty.int (src (wrapi (v "me" - ci side)));
      decle "down" Ty.int (src (wrapi (v "me" + ci side)));
      assign
        (idx (v "dst") (v "me"))
        (((ci 2 * src (v "me")) + v "left" + v "right" + v "up" + v "down")
        / ci 6);
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "lbm" Ty.Void
        [
          ("dst", Ty.Ptr (Ty.Global, Ty.int));
          ("src", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase
    ~gsize:(side * side, 1, 1) ~lsize:(side, 1, 1)
    ~buffers:
      [ ("dst", Ast.Buf_zero (side * side)); ("src", Ast.Buf_data initial) ]
    ~observe:[ "dst" ] program
