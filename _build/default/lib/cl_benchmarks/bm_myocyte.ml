(* Rodinia myocyte: cardiac myocyte ODE simulation (fixed-point Euler
   steps). The port deliberately reproduces the data race the paper found
   in the real Rodinia myocyte: threads stage intermediate rates in a
   shared scratch buffer indexed modulo a small width, with no barrier
   between the conflicting writes and the reads (section 2.4; confirmed by
   the Rodinia developers). *)


let cells = 16
let scratch_width = 4
let steps = 3

let state0 = Array.init cells (fun i -> Int64.of_int (100 + (i * 7 mod 23)))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      for_up "s" ~from:0 ~below:steps
        [
          (* racy staging: several threads share scratch[me mod width] *)
          assign
            (idx (v "scratch") (v "me" % ci scratch_width))
            (idx (v "state") (v "me") * ci 3 / ci 2);
          assign
            (idx (v "state") (v "me"))
            (idx (v "state") (v "me")
            + ((idx (v "scratch") (v "me" % ci scratch_width)
               - idx (v "state") (v "me"))
              / ci 4));
        ];
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "myocyte" Ty.Void
        [
          ("state", Ty.Ptr (Ty.Global, Ty.int));
          ("scratch", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase ~gsize:(cells, 1, 1) ~lsize:(cells, 1, 1)
    ~buffers:
      [ ("state", Ast.Buf_data state0); ("scratch", Ast.Buf_zero scratch_width) ]
    ~observe:[ "state" ] program
