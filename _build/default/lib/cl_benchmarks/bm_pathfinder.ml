(* Rodinia pathfinder: dynamic programming over a grid — each thread owns a
   column, the running row of minimal path costs lives in local memory, and
   every DP step is separated by barriers. The classic correct barrier
   kernel. *)


let cols = 16
let rows = 8

let grid =
  Array.init (rows * cols) (fun i -> Int64.of_int ((i * 31 mod 17) + 1))

let program =
  let open Build in
  let cur i = idx (v "cur") i in
  let clamp e = Ast.Builtin (Op.Min, [ Ast.Builtin (Op.Max, [ e; ci 0 ]); ci Stdlib.(cols - 1) ]) in
  let body =
    [
      decle "me" Ty.int (cast Ty.int lid_linear);
      decl ~space:Ty.Local "cur" (Ty.Arr (Ty.int, cols));
      assign (cur (v "me")) (idx (v "data") (v "me"));
      barrier;
      for_up "r" ~from:1 ~below:rows
        [
          decle "best" Ty.int
            (Ast.Builtin
               ( Op.Min,
                 [
                   Ast.Builtin (Op.Min, [ cur (clamp (v "me" - ci 1)); cur (v "me") ]);
                   cur (clamp (v "me" + ci 1));
                 ] ));
          decle "next" Ty.int
            (v "best" + idx (v "data") ((v "r" * ci cols) + v "me"));
          barrier;
          assign (cur (v "me")) (v "next");
          barrier;
        ];
      assign (idx (v "result") (v "me")) (cur (v "me"));
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "pathfinder" Ty.Void
        [
          ("result", Ty.Ptr (Ty.Global, Ty.int));
          ("data", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase ~gsize:(cols, 1, 1) ~lsize:(cols, 1, 1)
    ~buffers:[ ("result", Ast.Buf_zero cols); ("data", Ast.Buf_data grid) ]
    ~observe:[ "result" ] program
