(* Parboil sad: sum-of-absolute-differences block matching from video
   encoding. Each thread owns one 4x4 macroblock of the current frame and
   computes its SAD against a reference block. *)


let frame_side = 16
let block = 4
let blocks_per_side = frame_side / block

let frame =
  Array.init (frame_side * frame_side) (fun i -> Int64.of_int ((i * 13 mod 251) mod 64))

let reference = Array.init (block * block) (fun i -> Int64.of_int ((i * 7) mod 64))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      decle "bx" Ty.int (v "me" % ci blocks_per_side * ci block);
      decle "by" Ty.int (v "me" / ci blocks_per_side * ci block);
      decle "acc" Ty.int (ci 0);
      for_up "r" ~from:0 ~below:block
        [
          for_up "c" ~from:0 ~below:block
            [
              decle "d" Ty.int
                (idx (v "frame")
                   (((v "by" + v "r") * ci frame_side) + v "bx" + v "c")
                - idx (v "refblk") ((v "r" * ci block) + v "c"));
              assign_op Op.Add (v "acc") (cond (v "d" < ci 0) (neg (v "d")) (v "d"));
            ];
        ];
      assign (idx (v "sad") (v "me")) (v "acc");
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "sad" Ty.Void
        [
          ("sad", Ty.Ptr (Ty.Global, Ty.int));
          ("frame", Ty.Ptr (Ty.Global, Ty.int));
          ("refblk", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  let n = blocks_per_side * blocks_per_side in
  Build.testcase ~gsize:(n, 1, 1) ~lsize:(n, 1, 1)
    ~buffers:
      [
        ("sad", Ast.Buf_zero n);
        ("frame", Ast.Buf_data frame);
        ("refblk", Ast.Buf_data reference);
      ]
    ~observe:[ "sad" ] program
