(* Parboil spmv: sparse matrix-vector product in coordinate format.

   One thread per non-zero performs y[row[i]] += val[i] * x[col[i]] with a
   plain, non-atomic read-modify-write — several non-zeros share a row, so
   this kernel contains exactly the kind of data race the paper discovered
   in the real Parboil spmv ("result differences were arising due to
   previously unidentified data races", section 2.4; the bug was reported
   to and confirmed by the Parboil developers). The race detector flags it;
   differential results across schedules may legitimately differ. *)


let rows = 8
let nnz = 24

(* entries (row, col, val): rows deliberately repeated *)
let entry i = (i * 5 mod rows, i * 7 mod rows, (i mod 9) - 4)

let row_data = Array.init nnz (fun i -> let r, _, _ = entry i in Int64.of_int r)
let col_data = Array.init nnz (fun i -> let _, c, _ = entry i in Int64.of_int c)
let val_data = Array.init nnz (fun i -> let _, _, x = entry i in Int64.of_int x)
let x_data = Array.init rows (fun i -> Int64.of_int (i + 1))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      decle "r" Ty.int (idx (v "rowidx") (v "me"));
      (* racy read-modify-write on the shared output vector *)
      assign
        (idx (v "y") (v "r"))
        (idx (v "y") (v "r")
        + (idx (v "vals") (v "me") * idx (v "x") (idx (v "colidx") (v "me"))));
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "spmv" Ty.Void
        [
          ("y", Ty.Ptr (Ty.Global, Ty.int));
          ("rowidx", Ty.Ptr (Ty.Global, Ty.int));
          ("colidx", Ty.Ptr (Ty.Global, Ty.int));
          ("vals", Ty.Ptr (Ty.Global, Ty.int));
          ("x", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase ~gsize:(nnz, 1, 1) ~lsize:(8, 1, 1)
    ~buffers:
      [
        ("y", Ast.Buf_zero rows);
        ("rowidx", Ast.Buf_data row_data);
        ("colidx", Ast.Buf_data col_data);
        ("vals", Ast.Buf_data val_data);
        ("x", Ast.Buf_data x_data);
      ]
    ~observe:[ "y" ] program
