(* Parboil tpacf: two-point angular correlation function.

   Each thread owns one point and histograms its squared distance to every
   later point, using atomic increments on the shared histogram — the
   race-free way to build a histogram (contrast spmv). *)


let points = 16
let bins = 8
let max_d2 = 2 * 15 * 15

let px = Array.init points (fun i -> Int64.of_int (i * 11 mod 16))
let py = Array.init points (fun i -> Int64.of_int (i * 5 mod 16))

let program =
  let open Build in
  let body =
    [
      decle "me" Ty.int (cast Ty.int tid_linear);
      for_
        ~init:(decle "j" Ty.int (v "me" + ci 1))
        ~cond:(v "j" < ci points)
        ~update:(assign_op Op.Add (v "j") (ci 1))
        [
          decle "dx" Ty.int (idx (v "xs") (v "me") - idx (v "xs") (v "j"));
          decle "dy" Ty.int (idx (v "ys") (v "me") - idx (v "ys") (v "j"));
          decle "d2" Ty.int ((v "dx" * v "dx") + (v "dy" * v "dy"));
          decle "bin" Ty.int
            (Ast.Builtin (Op.Min, [ v "d2" * ci bins / ci Stdlib.(max_d2 + 1); ci Stdlib.(bins - 1) ]));
      expr (Ast.Atomic (Op.A_inc, addr (idx (v "hist") (v "bin")), []));
        ];
    ]
  in
  {
    Ast.aggregates = [];
    constant_arrays = [];
    funcs = [];
    kernel =
      func "tpacf" Ty.Void
        [
          ("hist", Ty.Ptr (Ty.Global, Ty.int));
          ("xs", Ty.Ptr (Ty.Global, Ty.int));
          ("ys", Ty.Ptr (Ty.Global, Ty.int));
        ]
        body;
    dead_size = 0;
  }

let testcase () =
  Build.testcase ~gsize:(points, 1, 1) ~lsize:(points, 1, 1)
    ~buffers:
      [
        ("hist", Ast.Buf_zero bins);
        ("xs", Ast.Buf_data px);
        ("ys", Ast.Buf_data py);
      ]
    ~observe:[ "hist" ] program
