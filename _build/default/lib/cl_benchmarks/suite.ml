type origin = Parboil | Rodinia

type benchmark = {
  name : string;
  origin : origin;
  description : string;
  kernels : int;
  uses_fp : bool;
  racy : bool;
  testcase : unit -> Ast.testcase;
}

let all =
  [
    { name = "bfs"; origin = Parboil; description = "Graph breadth-first search";
      kernels = 1; uses_fp = false; racy = false; testcase = Bm_bfs.testcase };
    { name = "cutcp"; origin = Parboil; description = "Molecular modeling simulation";
      kernels = 1; uses_fp = true; racy = false; testcase = Bm_cutcp.testcase };
    { name = "lbm"; origin = Parboil; description = "Fluid dynamics simulation";
      kernels = 1; uses_fp = true; racy = false; testcase = Bm_lbm.testcase };
    { name = "sad"; origin = Parboil; description = "Video processing";
      kernels = 3; uses_fp = false; racy = false; testcase = Bm_sad.testcase };
    { name = "spmv"; origin = Parboil; description = "Linear algebra";
      kernels = 1; uses_fp = true; racy = true; testcase = Bm_spmv.testcase };
    { name = "tpacf"; origin = Parboil; description = "Nbody method";
      kernels = 1; uses_fp = true; racy = false; testcase = Bm_tpacf.testcase };
    { name = "heartwall"; origin = Rodinia; description = "Medical imaging";
      kernels = 1; uses_fp = true; racy = false; testcase = Bm_heartwall.testcase };
    { name = "hotspot"; origin = Rodinia; description = "Thermal physics simulation";
      kernels = 1; uses_fp = true; racy = false; testcase = Bm_hotspot.testcase };
    { name = "myocyte"; origin = Rodinia; description = "Medical simulation";
      kernels = 1; uses_fp = true; racy = true; testcase = Bm_myocyte.testcase };
    { name = "pathfinder"; origin = Rodinia; description = "Dynamic programming";
      kernels = 1; uses_fp = false; racy = false; testcase = Bm_pathfinder.testcase };
  ]

let emi_eligible = List.filter (fun b -> not b.racy) all

let find name = List.find (fun b -> String.equal b.name name) all

let origin_name = function Parboil -> "Parboil" | Rodinia -> "Rodinia"

let table2 () =
  let rows =
    List.map
      (fun b ->
        let tc = b.testcase () in
        [
          origin_name b.origin;
          b.name;
          b.description;
          string_of_int b.kernels;
          string_of_int (Pp.source_line_count tc.Ast.prog);
          (if b.uses_fp then "yes" else "x");
          (if b.racy then "RACY (excluded from EMI)" else "");
        ])
      all
  in
  Table_fmt.render_titled
    ~title:"Table 2: OpenCL benchmarks studied using EMI testing"
    ~header:
      [ "Suite"; "Benchmark"; "Description"; "Kernels"; "LoC (port)";
        "Orig. FP?"; "Note" ]
    rows
