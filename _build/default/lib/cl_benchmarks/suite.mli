(** The mini Parboil/Rodinia benchmark suite (paper Table 2, section 7.2).

    Integer/fixed-point MiniCL ports of the ten benchmarks the paper used
    for EMI testing over real-world kernels. Each port keeps its original's
    control- and data-flow character (graph traversal, stencils, cutoff
    summation, histogramming, dynamic programming) at reduced input scale.
    The paper deliberately preferred non-floating-point benchmarks; these
    ports are all integer, and [uses_fp] records whether the {e original}
    used floating point (the Table 2 column).

    Two ports — Parboil [spmv] and Rodinia [myocyte] — deliberately contain
    the data races the paper discovered in the originals ("we wasted
    significant effort trying to reduce kernels from two standard
    benchmarks ... until we found that result differences were arising due
    to previously unidentified data races", section 2.4). The remaining
    eight are race-free, as the suite's tests verify with the race
    detector. *)

type origin = Parboil | Rodinia

type benchmark = {
  name : string;
  origin : origin;
  description : string;
  kernels : int;  (** kernel count of the original (Table 2) *)
  uses_fp : bool;  (** whether the original uses floating point (Table 2) *)
  racy : bool;  (** contains the deliberately reproduced data race *)
  testcase : unit -> Ast.testcase;
}

val all : benchmark list
(** In Table 2 order: bfs, cutcp, lbm, sad, spmv, tpacf, heartwall,
    hotspot, myocyte, pathfinder. *)

val emi_eligible : benchmark list
(** The eight race-free benchmarks used for Table 3 (spmv and myocyte are
    excluded, as in the paper). *)

val find : string -> benchmark
(** @raise Not_found for unknown names. *)

val origin_name : origin -> string

val table2 : unit -> string
(** Rendered Table 2: suite, name, description, kernel count, lines of
    kernel code (of our ports, measured), FP usage of the original. *)
