lib/clsmith/gen_config.ml: String
