lib/clsmith/gen_config.mli:
