lib/clsmith/gen_expr.ml: Ast Gen_config Gen_state Gen_types Int64 List Op Option Rng Ty
