lib/clsmith/gen_state.ml: Ast Gen_config Printf Rng Ty
