lib/clsmith/gen_stmt.ml: Ast Gen_config Gen_expr Gen_state Gen_types List Op Rng Ty
