lib/clsmith/gen_types.ml: Ast Gen_config Gen_state Int64 List Printf Rng Scalar Ty
