lib/clsmith/generate.ml: Array Ast Fun Gen_config Gen_expr Gen_state Gen_stmt Gen_types Int64 List Op Printf Rng Ty
