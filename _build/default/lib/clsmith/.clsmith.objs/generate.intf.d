lib/clsmith/generate.mli: Ast Gen_config Ty
