lib/clsmith/rng.ml: Array Fun Int64 List
