lib/clsmith/rng.mli:
