type mode = Basic | Vector | Barrier | Atomic_section | Atomic_reduction | All

let all_modes = [ Basic; Vector; Barrier; Atomic_section; Atomic_reduction; All ]

let mode_name = function
  | Basic -> "BASIC"
  | Vector -> "VECTOR"
  | Barrier -> "BARRIER"
  | Atomic_section -> "ATOMIC SECTION"
  | Atomic_reduction -> "ATOMIC REDUCTION"
  | All -> "ALL"

let mode_of_string s =
  match String.uppercase_ascii s with
  | "BASIC" -> Some Basic
  | "VECTOR" | "VECTORS" -> Some Vector
  | "BARRIER" -> Some Barrier
  | "ATOMIC_SECTION" | "ATOMIC SECTION" -> Some Atomic_section
  | "ATOMIC_REDUCTION" | "ATOMIC REDUCTION" -> Some Atomic_reduction
  | "ALL" -> Some All
  | _ -> None

let mode_uses_vectors = function
  | Vector | All -> true
  | Basic | Barrier | Atomic_section | Atomic_reduction -> false

let mode_uses_barriers = function
  | Barrier | Atomic_reduction | All -> true
  | Basic | Vector | Atomic_section -> false

let mode_uses_atomic_sections = function
  | Atomic_section | All -> true
  | Basic | Vector | Barrier | Atomic_reduction -> false

let mode_uses_reductions = function
  | Atomic_reduction | All -> true
  | Basic | Vector | Barrier | Atomic_section -> false

type t = {
  mode : mode;
  min_threads : int;
  max_threads : int;
  max_group_linear : int;
  max_structs : int;
  max_fields : int;
  union_prob : float;
  volatile_field_prob : float;
  max_funcs : int;
  max_func_params : int;
  max_block_stmts : int;
  max_depth : int;
  max_expr_depth : int;
  stmt_budget : int;
  permutation_count : int;
  sync_point_prob : float;
  max_atomic_counters : int;
  atomic_section_prob : float;
  reduction_prob : float;
  callee_barrier_prob : float;
  comma_prob : float;
  emi_blocks : int * int;
  dead_size : int;
}

let scaled mode =
  {
    mode;
    min_threads = 4;
    max_threads = 40;
    max_group_linear = 16;
    max_structs = 4;
    max_fields = 5;
    union_prob = 0.25;
    volatile_field_prob = 0.08;
    max_funcs = 4;
    max_func_params = 3;
    max_block_stmts = 5;
    max_depth = 3;
    max_expr_depth = 4;
    stmt_budget = 80;
    permutation_count = 10;
    sync_point_prob = 0.10;
    max_atomic_counters = 8;
    atomic_section_prob = 0.10;
    reduction_prob = 0.10;
    callee_barrier_prob = 0.02;
    comma_prob = 0.0025;
    emi_blocks = (1, 5);
    dead_size = 8;
  }

let paper_scale mode =
  {
    (scaled mode) with
    min_threads = 100;
    max_threads = 10_000;
    max_group_linear = 256;
    max_structs = 8;
    max_fields = 8;
    max_funcs = 10;
    max_block_stmts = 8;
    max_depth = 5;
    max_expr_depth = 6;
    stmt_budget = 400;
    max_atomic_counters = 99;
  }
