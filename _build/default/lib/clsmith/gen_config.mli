(** Generation modes and parameter tables.

    The six modes of section 4 of the paper:
    - [Basic]: embarrassingly parallel kernels, Csmith-style scalar/struct
      computation, no inter-thread communication;
    - [Vector]: adds OpenCL vector types, literals, swizzles and built-ins;
    - [Barrier]: adds the permutation-table shared-array communication
      pattern with barrier synchronisation;
    - [Atomic_section]: adds atomic sections guarded by
      [atomic_inc(c) == rnd];
    - [Atomic_reduction]: adds commutative/associative atomic reductions;
    - [All]: everything at once.

    Numeric parameters come in two presets: {!scaled} (defaults tuned so a
    whole campaign runs in minutes on one core — thread counts in [4, 64),
    work-groups up to 16) and {!paper_scale} (the paper's ranges: total
    threads in [100, 10000), work-group size up to 256; section 4.1). *)

type mode = Basic | Vector | Barrier | Atomic_section | Atomic_reduction | All

val all_modes : mode list
val mode_name : mode -> string
val mode_of_string : string -> mode option

val mode_uses_vectors : mode -> bool
val mode_uses_barriers : mode -> bool
(** [Barrier], [Atomic_reduction] and [All] — the modes the paper notes
    "make liberal use of barriers". *)

val mode_uses_atomic_sections : mode -> bool
val mode_uses_reductions : mode -> bool

type t = {
  mode : mode;
  (* NDRange randomisation *)
  min_threads : int;
  max_threads : int;  (** exclusive; paper: 10000 *)
  max_group_linear : int;  (** paper: 256 *)
  (* program shape *)
  max_structs : int;
  max_fields : int;
  union_prob : float;
  volatile_field_prob : float;
  max_funcs : int;
  max_func_params : int;
  max_block_stmts : int;
  max_depth : int;  (** statement nesting *)
  max_expr_depth : int;
  stmt_budget : int;  (** global cap on generated statements *)
  (* communication *)
  permutation_count : int;  (** the paper's d = 10 *)
  sync_point_prob : float;  (** BARRIER-mode re-permutation points *)
  max_atomic_counters : int;  (** paper: 99 *)
  atomic_section_prob : float;
  reduction_prob : float;
  callee_barrier_prob : float;
      (** bare barriers inside helper functions (barrier modes) *)
  comma_prob : float;  (** comma expressions (cf. the Oclgrind bug) *)
  (* EMI *)
  emi_blocks : int * int;  (** [lo, hi]: blocks per kernel when enabled *)
  dead_size : int;  (** length of the dead array (paper's d) *)
}

val scaled : mode -> t
val paper_scale : mode -> t
