(* Type-directed random expression generation.

   Scalar expressions may have any integer scalar type (C's implicit
   conversions make them interchangeable); vector expressions are generated
   at an exact (element, length) type because OpenCL C has no implicit
   vector conversions (paper section 4.1: "we had to provide support for
   type-sensitive vector expression generation"). Operations with undefined
   behaviours are wrapped in their safe variants, mirroring CLsmith's
   safe-math macros. *)

open Gen_state

let ub_binops = [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Mod; Op.Shl; Op.Shr ]
let pure_binops = [ Op.BitAnd; Op.BitOr; Op.BitXor ]
let cmp_binops = [ Op.Eq; Op.Ne; Op.Lt; Op.Gt; Op.Le; Op.Ge ]

let scalar_builtins =
  [ Op.Safe_clamp; Op.Rotate; Op.Min; Op.Max; Op.Abs; Op.Add_sat; Op.Sub_sat;
    Op.Hadd; Op.Mul_hi ]

(* Readable scalar access paths from the scope. *)
let scalar_reads st (scope : scope) : (Ast.expr * Ty.scalar) list =
  let tyenv = tyenv st in
  List.concat_map
    (fun v ->
      match v.vty with
      | Ty.Ptr (_, (Ty.Named _ as pointee)) ->
          (* the globals-struct pointer: field access paths are rebased on a
             dereference of the pointer *)
          Gen_types.scalar_paths tyenv ~depth:2 (Ast.Deref (Ast.Var v.vname))
            pointee
      | t -> Gen_types.scalar_paths tyenv ~depth:2 (Ast.Var v.vname) t)
    scope

let vector_reads st (scope : scope) : (Ast.expr * (Ty.scalar * Ty.vlen)) list =
  let tyenv = tyenv st in
  List.concat_map
    (fun v ->
      match v.vty with
      | Ty.Ptr (_, (Ty.Named _ as pointee)) ->
          Gen_types.vector_paths tyenv ~depth:2 (Ast.Deref (Ast.Var v.vname))
            pointee
      | t -> Gen_types.vector_paths tyenv ~depth:2 (Ast.Var v.vname) t)
    scope

let rec gen_scalar st (scope : scope) depth : Ast.expr =
  if depth <= 0 then gen_scalar_leaf st scope
  else
    let choice =
      Rng.weighted st.rng
        ([
           (`Leaf, 4); (`Safe, 5); (`Pure, 3); (`Cmp, 2); (`Unop, 2);
           (`Builtin, 2); (`Cond, 1); (`Cast, 1); (`Logic, 1);
         ]
        @ (if st.funcs <> [] then [ (`Call, 2) ] else [])
        @
        if Rng.bool_p st.rng st.cfg.Gen_config.comma_prob then [ (`Comma, 100) ]
        else [])
    in
    match choice with
    | `Leaf -> gen_scalar_leaf st scope
    | `Safe ->
        Ast.Safe_binop
          ( Rng.choose st.rng ub_binops,
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Pure ->
        Ast.Binop
          ( Rng.choose st.rng pure_binops,
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Cmp ->
        Ast.Binop
          ( Rng.choose st.rng cmp_binops,
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Logic ->
        Ast.Binop
          ( Rng.choose st.rng [ Op.LogAnd; Op.LogOr ],
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Unop -> (
        match Rng.choose st.rng [ `Neg; `Not; `LNot ] with
        | `Neg -> Ast.Safe_neg (gen_scalar st scope (depth - 1))
        | `Not -> Ast.Unop (Op.BitNot, gen_scalar st scope (depth - 1))
        | `LNot -> Ast.Unop (Op.LogNot, gen_scalar st scope (depth - 1)))
    | `Builtin -> gen_scalar_builtin st scope depth
    | `Cond ->
        Ast.Cond
          ( gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Cast ->
        Ast.Cast (Gen_types.random_scalar st, gen_scalar st scope (depth - 1))
    | `Comma ->
        Ast.Binop
          ( Op.Comma,
            gen_scalar st scope (depth - 1),
            gen_scalar st scope (depth - 1) )
    | `Call -> gen_call st scope depth

and gen_scalar_leaf st scope : Ast.expr =
  let reads = scalar_reads st scope in
  if reads <> [] && Rng.bool_p st.rng 0.65 then fst (Rng.choose st.rng reads)
  else Gen_types.random_const st (Gen_types.random_scalar_ty st)

and gen_scalar_builtin st scope depth : Ast.expr =
  let b = Rng.choose st.rng scalar_builtins in
  (* builtins require all operands at one exact type: pin with casts *)
  let s = Gen_types.random_scalar_ty st in
  let arg () = Ast.Cast (Ty.Scalar s, gen_scalar st scope (depth - 1)) in
  let args = List.init (Op.builtin_arity b) (fun _ -> arg ()) in
  Ast.Builtin (b, args)

and gen_call st scope depth : Ast.expr =
  let f = Rng.choose st.rng st.funcs in
  let args =
    List.map
      (fun (pname, pty) ->
        match pty with
        | Ty.Ptr (_, Ty.Named "G") ->
            (* by convention the globals pointer is in scope as gp *)
            if List.exists (fun v -> v.vname = "gp") scope then Ast.Var "gp"
            else Ast.Addr_of (Ast.Var "g")
        | Ty.Scalar _ -> gen_scalar st scope (max 0 (depth - 2))
        | _ -> failwith ("gen_call: unsupported parameter type for " ^ pname))
      f.Ast.params
  in
  Ast.Call (f.Ast.fname, args)

(* --- vectors --- *)

let rec gen_vector st (scope : scope) depth ((elem, len) as vt) : Ast.expr =
  let exact_reads =
    List.filter (fun (_, t) -> t = vt) (vector_reads st scope)
  in
  if depth <= 0 then gen_vector_leaf st scope vt exact_reads
  else
    let choice =
      Rng.weighted st.rng
        [
          (`Leaf, 4); (`Safe, 5); (`Cmp, 2); (`Builtin, 3); (`Convert, 2);
          (`Mixed, 2); (`Logic, 1);
        ]
    in
    match choice with
    | `Leaf -> gen_vector_leaf st scope vt exact_reads
    | `Safe ->
        Ast.Safe_binop
          ( Rng.choose st.rng ub_binops,
            gen_vector st scope (depth - 1) vt,
            gen_vector st scope (depth - 1) vt )
    | `Cmp ->
        (* vector comparisons yield the signed type of the same shape; cast
           back to the requested element type *)
        let cmp =
          Ast.Binop
            ( Rng.choose st.rng cmp_binops,
              gen_vector st scope (depth - 1) vt,
              gen_vector st scope (depth - 1) vt )
        in
        Ast.Cast (Ty.Vector (elem, len), cmp)
    | `Logic ->
        let e =
          Ast.Binop
            ( Rng.choose st.rng [ Op.LogAnd; Op.LogOr ],
              gen_vector st scope (depth - 1) vt,
              gen_vector st scope (depth - 1) vt )
        in
        Ast.Cast (Ty.Vector (elem, len), e)
    | `Builtin ->
        let b =
          Rng.choose st.rng
            [ Op.Safe_clamp; Op.Rotate; Op.Min; Op.Max; Op.Add_sat; Op.Sub_sat;
              Op.Hadd; Op.Mul_hi ]
        in
        let args =
          List.init (Op.builtin_arity b) (fun _ ->
              gen_vector st scope (depth - 1) vt)
        in
        Ast.Builtin (b, args)
    | `Convert ->
        let other = Gen_types.random_scalar_ty st in
        Ast.Cast (Ty.Vector (elem, len), gen_vector st scope (depth - 1) (other, len))
    | `Mixed ->
        (* vector op scalar: the scalar widens *)
        Ast.Safe_binop
          ( Rng.choose st.rng [ Op.Add; Op.Sub; Op.Mul ],
            gen_vector st scope (depth - 1) vt,
            Ast.Cast (Ty.Scalar elem, gen_scalar st scope (depth - 1)) )

and gen_vector_leaf st scope (elem, len) exact_reads : Ast.expr =
  let choice =
    Rng.weighted st.rng
      ([ (`Lit, 3); (`Splat, 2) ] @ if exact_reads <> [] then [ (`Var, 5) ] else [])
  in
  match choice with
  | `Var -> fst (Rng.choose st.rng exact_reads)
  | `Splat ->
      Ast.Cast (Ty.Vector (elem, len), Gen_types.random_const st elem)
  | `Lit ->
      let n = Ty.vlen_to_int len in
      (* sometimes build from a smaller vector plus scalars, exercising the
         nested-literal front-end grey area of section 6 *)
      let components =
        if n >= 4 && Rng.bool_p st.rng 0.3 then
          let half = Ty.vlen_of_int (n / 2) |> Option.get in
          [ gen_vector_leaf st scope (elem, half) []; gen_vector_leaf st scope (elem, half) [] ]
        else
          List.init n (fun _ -> Ast.I_expr (Gen_types.random_const st elem))
          |> List.map (function Ast.I_expr e -> e | _ -> assert false)
      in
      Ast.Vec_lit (elem, len, components)

(* An in-bounds array index expression: (uint)(e) % n. *)
let bounded_index st scope n : Ast.expr =
  if Rng.bool_p st.rng 0.5 then Ast.const_of_int (Rng.int st.rng n)
  else
    Ast.Binop
      ( Op.Mod,
        Ast.Cast (Ty.uint, gen_scalar st scope 1),
        Ast.Const { Ast.value = Int64.of_int n; cty = { Ty.width = Ty.W32; sign = Ty.Unsigned } } )
