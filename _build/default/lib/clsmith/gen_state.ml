(* Shared mutable state threaded through the generator modules.

   Scopes hold only *untainted* variables (values uniform across the
   threads of a group), so any expression built from them is safe to use in
   a control-flow condition — this is how the generator upholds the
   validator's uniformity discipline (paper section 4.2). Thread-dependent
   data (A_offset, the crc accumulator, shared-read accumulators) is
   manipulated exclusively by skeleton-emitted code in [Generate]. *)

type var_info = {
  vname : string;
  vty : Ty.t;
  assignable : bool; (* loop induction variables are read-only *)
}

type scope = var_info list

type t = {
  rng : Rng.t;
  cfg : Gen_config.t;
  mutable aggregates : Ty.aggregate list; (* in definition order *)
  mutable funcs : Ast.func list; (* generated so far; all callable *)
  mutable fresh : int;
  mutable budget : int; (* remaining statement allowance *)
  mutable loop_depth : int;
  w_linear : int;
  n_linear : int;
  num_groups : int;
}

let create ~rng ~cfg ~w_linear ~n_linear ~num_groups =
  {
    rng;
    cfg;
    aggregates = [];
    funcs = [];
    fresh = 0;
    budget = cfg.Gen_config.stmt_budget;
    loop_depth = 0;
    w_linear;
    n_linear;
    num_groups;
  }

let fresh_name st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s_%d" prefix st.fresh

let spend st = st.budget <- st.budget - 1
let exhausted st = st.budget <= 0

let tyenv st = Ty.tyenv_of_list st.aggregates
