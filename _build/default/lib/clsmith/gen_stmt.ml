(* Random statement generation.

   All conditions are built from scope variables only (uniform across the
   group), so generated control flow is divergence-free by construction.
   Bare barriers may be emitted inside helper functions in barrier-using
   modes — always under uniform control flow — which is the program shape
   behind the Fig. 2(c)/(d) Intel bugs. *)

open Gen_state

type ctx = {
  allow_barrier : bool; (* bare barrier statements allowed here *)
}

(* Assignable lvalue candidates: scalar- or vector-valued paths rooted at
   assignable scope variables (including through the globals pointer). *)
let lvalue_candidates st (scope : scope) =
  let tyenv = tyenv st in
  let scalars =
    List.concat_map
      (fun v ->
        if not v.assignable then []
        else
          match v.vty with
          | Ty.Ptr (_, (Ty.Named _ as pointee)) ->
              Gen_types.scalar_paths tyenv ~depth:2
                (Ast.Deref (Ast.Var v.vname))
                pointee
          | t -> Gen_types.scalar_paths tyenv ~depth:2 (Ast.Var v.vname) t)
      scope
  in
  let vectors =
    List.concat_map
      (fun v ->
        if not v.assignable then []
        else
          match v.vty with
          | Ty.Vector (s, l) -> [ (Ast.Var v.vname, (s, l)) ]
          | _ -> [])
      scope
  in
  (scalars, vectors)

let rec gen_block st ctx (scope : scope) ~depth : Ast.block =
  let n = Rng.int_range st.rng 1 (st.cfg.Gen_config.max_block_stmts + 1) in
  let rec go scope k acc =
    if k = 0 || exhausted st then List.rev acc
    else
      let s, scope' = gen_stmt st ctx scope ~depth in
      go scope' (k - 1) (s :: acc)
  in
  go scope n []

and gen_stmt st ctx (scope : scope) ~depth : Ast.stmt * scope =
  spend st;
  let vectors = Gen_config.mode_uses_vectors st.cfg.Gen_config.mode in
  let base =
    [ (`Decl, 3); (`Assign, 6); (`Expr_stmt, 1) ]
    @ (if depth > 0 then [ (`If, 3); (`For, 2); (`Block, 1) ] else [])
    @ (if st.loop_depth > 0 then [ (`Break, 1); (`Continue, 1) ] else [])
    @
    if ctx.allow_barrier && Rng.bool_p st.rng st.cfg.Gen_config.callee_barrier_prob
    then [ (`Barrier, 100) ]
    else []
  in
  match Rng.weighted st.rng base with
  | `Decl -> gen_decl st scope ~vectors
  | `Assign -> (gen_assign st scope ~vectors, scope)
  | `Expr_stmt ->
      let e =
        if st.funcs <> [] && Rng.bool_p st.rng 0.6 then
          Gen_expr.gen_call st scope st.cfg.Gen_config.max_expr_depth
        else Gen_expr.gen_scalar st scope 2
      in
      (Ast.Expr e, scope)
  | `If ->
      let c = Gen_expr.gen_scalar st scope (st.cfg.Gen_config.max_expr_depth - 1) in
      let b1 = gen_block st ctx scope ~depth:(depth - 1) in
      let b2 =
        if Rng.bool_p st.rng 0.4 then gen_block st ctx scope ~depth:(depth - 1)
        else []
      in
      (Ast.If (c, b1, b2), scope)
  | `For ->
      let iv = fresh_name st "i" in
      (* nested loops get small bounds to keep trip-count products bounded *)
      let bound =
        if st.loop_depth = 0 then Rng.int_range st.rng 1 11
        else Rng.int_range st.rng 1 4
      in
      let step = Rng.choose st.rng [ 1; 1; 2 ] in
      st.loop_depth <- st.loop_depth + 1;
      let body =
        gen_block st ctx
          ({ vname = iv; vty = Ty.int; assignable = false } :: scope)
          ~depth:(depth - 1)
      in
      st.loop_depth <- st.loop_depth - 1;
      ( Ast.For
          {
            f_init =
              Some
                (Ast.Decl
                   {
                     Ast.dname = iv;
                     dty = Ty.int;
                     dspace = Ty.Private;
                     dvolatile = false;
                     dinit = Some (Ast.I_expr (Ast.const_of_int 0));
                   });
            f_cond = Some (Ast.Binop (Op.Lt, Ast.Var iv, Ast.const_of_int bound));
            f_update =
              Some (Ast.Assign (Ast.Var iv, Ast.A_op Op.Add, Ast.const_of_int step));
            f_body = body;
          },
        scope )
  | `Block -> (Ast.Block (gen_block st ctx scope ~depth:(depth - 1)), scope)
  | `Break -> (Ast.Break, scope)
  | `Continue -> (Ast.Continue, scope)
  | `Barrier -> (Ast.Barrier Op.F_local, scope)

and gen_decl st (scope : scope) ~vectors : Ast.stmt * scope =
  let name = fresh_name st "l" in
  let kind =
    Rng.weighted st.rng
      ([ (`Scalar, 6); (`Array, 2); (`Struct, 1) ]
      @ if vectors then [ (`Vector, 3) ] else [])
  in
  let dty, dinit =
    match kind with
    | `Scalar ->
        let s = Gen_types.random_scalar st in
        (s, Ast.I_expr (Gen_expr.gen_scalar st scope st.cfg.Gen_config.max_expr_depth))
    | `Vector -> (
        match Gen_types.random_vector st with
        | Ty.Vector (e, l) as t ->
            ( t,
              Ast.I_expr
                (Gen_expr.gen_vector st scope
                   (st.cfg.Gen_config.max_expr_depth - 1)
                   (e, l)) )
        | _ -> assert false)
    | `Array ->
        let s = Gen_types.random_scalar st in
        let n = Rng.int_range st.rng 2 6 in
        ( Ty.Arr (s, n),
          Ast.I_list
            (List.init n (fun _ ->
                 Ast.I_expr (Gen_expr.gen_scalar st scope 1))) )
    | `Struct -> (
        let structs =
          List.filter (fun (a : Ty.aggregate) -> not a.is_union) st.aggregates
        in
        match structs with
        | [] ->
            let s = Gen_types.random_scalar st in
            (s, Ast.I_expr (Gen_expr.gen_scalar st scope 1))
        | _ ->
            let a = Rng.choose st.rng structs in
            let t = Ty.Named a.aname in
            (t, Gen_types.random_init st (tyenv st) t))
  in
  ( Ast.Decl { Ast.dname = name; dty; dspace = Ty.Private; dvolatile = false; dinit = Some dinit },
    { vname = name; vty = dty; assignable = true } :: scope )

and gen_assign st (scope : scope) ~vectors : Ast.stmt =
  let scalars, vecs = lvalue_candidates st scope in
  let use_vector = vectors && vecs <> [] && Rng.bool_p st.rng 0.3 in
  if use_vector then
    let lhs, vt = Rng.choose st.rng vecs in
    if Rng.bool_p st.rng 0.2 then
      Ast.Assign
        ( lhs,
          Ast.A_op (Rng.choose st.rng [ Op.BitAnd; Op.BitOr; Op.BitXor ]),
          Gen_expr.gen_vector st scope (st.cfg.Gen_config.max_expr_depth - 1) vt )
    else
      Ast.Assign
        ( lhs,
          Ast.A_simple,
          Gen_expr.gen_vector st scope (st.cfg.Gen_config.max_expr_depth - 1) vt )
  else
    match scalars with
    | [] ->
        Ast.Expr (Gen_expr.gen_scalar st scope 1)
    | _ ->
        let lhs, _ = Rng.choose st.rng scalars in
        if Rng.bool_p st.rng 0.25 then
          Ast.Assign
            ( lhs,
              Ast.A_op (Rng.choose st.rng [ Op.BitAnd; Op.BitOr; Op.BitXor ]),
              Gen_expr.gen_scalar st scope (st.cfg.Gen_config.max_expr_depth - 1) )
        else
          Ast.Assign
            ( lhs,
              Ast.A_simple,
              Gen_expr.gen_scalar st scope st.cfg.Gen_config.max_expr_depth )
