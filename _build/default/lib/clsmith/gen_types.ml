(* Random aggregate (struct/union) generation, random initialisers, and the
   field-path enumeration shared by the initialiser builder and the result
   (crc) fold of [Generate].

   CLsmith's hallmark is the "globals struct": because OpenCL 1.x has no
   program-scope variables, every would-be-global of the underlying Csmith
   program becomes a field of one struct instance passed by reference to
   every function (paper section 4.1) — which is why CLsmith programs are
   "biased towards identifying struct-related miscompilations". *)

open Gen_state

let scalar_choices =
  [ Ty.char; Ty.uchar; Ty.short; Ty.ushort; Ty.int; Ty.uint; Ty.long; Ty.ulong ]

let random_scalar st = Rng.choose st.rng scalar_choices

let random_scalar_ty st =
  match random_scalar st with Ty.Scalar s -> s | _ -> assert false

let random_vector st =
  let elem = random_scalar_ty st in
  let len = Rng.choose st.rng [ Ty.V2; Ty.V4; Ty.V8; Ty.V16 ] in
  Ty.Vector (elem, len)

(* Union fields must stay pointer-free (they are byte-serialised); we keep
   them to scalars and previously generated pointer-free structs. *)
let rec aggregate_is_pointer_free st (a : Ty.aggregate) =
  List.for_all
    (fun (f : Ty.field) ->
      match f.Ty.fty with
      | Ty.Scalar _ | Ty.Vector _ -> true
      | Ty.Arr (Ty.Scalar _, _) -> true
      | Ty.Named n -> (
          match List.find_opt (fun (x : Ty.aggregate) -> x.aname = n) st.aggregates with
          | Some inner -> aggregate_is_pointer_free st inner
          | None -> false)
      | Ty.Arr _ | Ty.Ptr _ | Ty.Void -> false)
    a.fields

let gen_field st ~allow_nested ~vectors i : Ty.field =
  let fname = Printf.sprintf "f%d" i in
  let fvolatile = Rng.bool_p st.rng st.cfg.Gen_config.volatile_field_prob in
  let nested_candidates =
    if allow_nested then
      List.filter (fun (a : Ty.aggregate) -> not a.is_union) st.aggregates
    else []
  in
  let fty =
    Rng.weighted st.rng
      ([ (`Scalar, 10); (`Array, 3) ]
      @ (if vectors then [ (`Vector, 3) ] else [])
      @ if nested_candidates <> [] then [ (`Nested, 2) ] else [])
    |> function
    | `Scalar -> random_scalar st
    | `Array -> Ty.Arr (random_scalar st, Rng.int_range st.rng 2 6)
    | `Vector -> random_vector st
    | `Nested -> Ty.Named (Rng.choose st.rng nested_candidates).aname
  in
  { Ty.fname; fty; fvolatile }

let gen_aggregate st ~vectors : Ty.aggregate =
  let is_union =
    Rng.bool_p st.rng st.cfg.Gen_config.union_prob
    && st.aggregates <> [] (* unions want a struct member candidate *)
  in
  let aname = fresh_name st (if is_union then "U" else "S") in
  if is_union then begin
    (* 2-3 fields: scalars plus at most one pointer-free struct *)
    let n = Rng.int_range st.rng 2 4 in
    let struct_candidates =
      List.filter
        (fun (a : Ty.aggregate) ->
          (not a.is_union) && aggregate_is_pointer_free st a)
        st.aggregates
    in
    let fields =
      List.init n (fun i ->
          let fname = Printf.sprintf "f%d" i in
          if i > 0 && struct_candidates <> [] && Rng.bool_p st.rng 0.5 then
            {
              Ty.fname;
              fty = Ty.Named (Rng.choose st.rng struct_candidates).aname;
              fvolatile = false;
            }
          else { Ty.fname; fty = random_scalar st; fvolatile = false })
    in
    { Ty.aname; fields; is_union = true }
  end
  else
    let n = Rng.int_range st.rng 2 (st.cfg.Gen_config.max_fields + 1) in
    let fields =
      List.init n (fun i -> gen_field st ~allow_nested:(i > 0) ~vectors i)
    in
    { Ty.aname; fields; is_union = false }

let gen_aggregates st ~vectors =
  let n = Rng.int_range st.rng 1 (st.cfg.Gen_config.max_structs + 1) in
  for _ = 1 to n do
    let a = gen_aggregate st ~vectors in
    st.aggregates <- st.aggregates @ [ a ]
  done

(* The globals struct G: scalar fields, arrays, and some of the generated
   aggregates. *)
let gen_globals_struct st ~vectors : Ty.aggregate =
  let n = Rng.int_range st.rng 3 (st.cfg.Gen_config.max_fields + 3) in
  let nested = st.aggregates in
  let fields =
    List.init n (fun i ->
        let fname = Printf.sprintf "g%d" i in
        let fvolatile = Rng.bool_p st.rng st.cfg.Gen_config.volatile_field_prob in
        let fty =
          Rng.weighted st.rng
            ([ (`Scalar, 8); (`Array, 3) ]
            @ (if vectors then [ (`Vector, 3) ] else [])
            @ if nested <> [] then [ (`Nested, 3) ] else [])
          |> function
          | `Scalar -> random_scalar st
          | `Array -> Ty.Arr (random_scalar st, Rng.int_range st.rng 2 6)
          | `Vector -> random_vector st
          | `Nested -> Ty.Named (Rng.choose st.rng nested).aname
        in
        { Ty.fname; fty; fvolatile })
  in
  let g = { Ty.aname = "G"; fields; is_union = false } in
  st.aggregates <- st.aggregates @ [ g ];
  g

(* Random constant of a scalar type: Csmith-style bias towards boundary
   values. *)
let random_const st (s : Ty.scalar) : Ast.expr =
  let v =
    Rng.weighted st.rng
      [
        (`Small, 6); (`Zero, 3); (`One, 3); (`MinusOne, 2); (`Min, 1);
        (`Max, 1); (`Random, 4);
      ]
    |> function
    | `Zero -> 0L
    | `One -> 1L
    | `MinusOne -> if s.Ty.sign = Ty.Signed then -1L else Ty.max_value s
    | `Min -> Ty.min_value s
    | `Max -> Ty.max_value s
    | `Small -> Int64.of_int (Rng.int st.rng 256)
    | `Random -> Rng.int64 st.rng
  in
  Ast.Const { Ast.value = Scalar.to_int64 (Scalar.make s v); cty = s }

(* Brace initialiser with random constants for any (pointer-free) type;
   pointers initialise to null via 0 — the generator never dereferences
   pointer fields it did not set. *)
let rec random_init st (tyenv : Ty.tyenv) (t : Ty.t) : Ast.init =
  match t with
  | Ty.Scalar s -> Ast.I_expr (random_const st s)
  | Ty.Vector (s, l) ->
      Ast.I_list
        (List.init (Ty.vlen_to_int l) (fun _ -> Ast.I_expr (random_const st s)))
  | Ty.Arr (e, n) -> Ast.I_list (List.init n (fun _ -> random_init st tyenv e))
  | Ty.Named nm ->
      let agg = Ty.find_aggregate tyenv nm in
      if agg.is_union then
        Ast.I_list [ random_init st tyenv (List.hd agg.fields).Ty.fty ]
      else
        Ast.I_list
          (List.map (fun (f : Ty.field) -> random_init st tyenv f.fty) agg.fields)
  | Ty.Ptr _ | Ty.Void -> Ast.I_expr (Ast.const_of_int 0)

(* All scalar-valued access paths rooted at expression [base] of type [t],
   to a bounded depth. Used for read candidates and for the crc fold. *)
let rec scalar_paths tyenv ~depth (base : Ast.expr) (t : Ty.t) :
    (Ast.expr * Ty.scalar) list =
  if depth < 0 then []
  else
    match t with
    | Ty.Scalar s -> [ (base, s) ]
    | Ty.Vector (s, l) ->
        List.init (Ty.vlen_to_int l) (fun i -> (Ast.Swizzle (base, [ i ]), s))
    | Ty.Arr (e, n) ->
        List.concat
          (List.init (min n 3) (fun i ->
               scalar_paths tyenv ~depth:(depth - 1)
                 (Ast.Index (base, Ast.const_of_int i))
                 e))
    | Ty.Named nm -> (
        match Ty.find_aggregate_opt tyenv nm with
        | None -> []
        | Some agg ->
            if agg.is_union then
              (* read through each scalar member (type punning is fine) *)
              List.concat_map
                (fun (f : Ty.field) ->
                  match f.fty with
                  | Ty.Scalar s -> [ (Ast.Field (base, f.fname), s) ]
                  | _ -> [])
                agg.fields
            else
              List.concat_map
                (fun (f : Ty.field) ->
                  scalar_paths tyenv ~depth:(depth - 1)
                    (Ast.Field (base, f.fname))
                    f.fty)
                agg.fields)
    | Ty.Ptr _ | Ty.Void -> []

(* Vector-valued access paths (for VECTOR mode read candidates). *)
let rec vector_paths tyenv ~depth (base : Ast.expr) (t : Ty.t) :
    (Ast.expr * (Ty.scalar * Ty.vlen)) list =
  if depth < 0 then []
  else
    match t with
    | Ty.Vector (s, l) -> [ (base, (s, l)) ]
    | Ty.Arr (e, n) ->
        List.concat
          (List.init (min n 2) (fun i ->
               vector_paths tyenv ~depth:(depth - 1)
                 (Ast.Index (base, Ast.const_of_int i))
                 e))
    | Ty.Named nm -> (
        match Ty.find_aggregate_opt tyenv nm with
        | None -> []
        | Some agg ->
            if agg.is_union then []
            else
              List.concat_map
                (fun (f : Ty.field) ->
                  vector_paths tyenv ~depth:(depth - 1)
                    (Ast.Field (base, f.fname))
                    f.fty)
                agg.fields)
    | Ty.Scalar _ | Ty.Ptr _ | Ty.Void -> []
