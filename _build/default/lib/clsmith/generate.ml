open Gen_state

type info = {
  seed : int;
  mode : Gen_config.mode;
  counter_sharing : bool;
  w_linear : int;
  n_linear : int;
  emi_block_ids : int list;
}

(* ------------------------------------------------------------------ *)
(* NDRange randomisation (paper section 4.1)                           *)
(* ------------------------------------------------------------------ *)

let divisors n =
  let rec go d acc =
    if d > n then List.rev acc
    else go (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  go 1 []

let pick_ndrange rng (cfg : Gen_config.t) =
  let n_linear = Rng.int_range rng cfg.min_threads cfg.max_threads in
  let nx = Rng.choose rng (divisors n_linear) in
  let ny = Rng.choose rng (divisors (n_linear / nx)) in
  let nz = n_linear / nx / ny in
  let cap = cfg.max_group_linear in
  let wx = Rng.choose rng (List.filter (fun d -> d <= cap) (divisors nx)) in
  let wy =
    Rng.choose rng (List.filter (fun d -> wx * d <= cap) (divisors ny))
  in
  let wz =
    Rng.choose rng (List.filter (fun d -> wx * wy * d <= cap) (divisors nz))
  in
  ((nx, ny, nz), (wx, wy, wz))

(* ------------------------------------------------------------------ *)
(* Checksum fold                                                       *)
(* ------------------------------------------------------------------ *)

let crc = Ast.Var "crc"

let fold_into_crc e =
  (* crc = crc * 33 + (ulong)e — all unsigned, wrap-around is defined *)
  Ast.Assign
    ( crc,
      Ast.A_simple,
      Ast.Binop
        ( Op.Add,
          Ast.Binop (Op.Mul, crc, Ast.const_of_int 33),
          Ast.Cast (Ty.ulong, e) ) )

let rec fold_value st (base : Ast.expr) (t : Ty.t) : Ast.block =
  match t with
  | Ty.Scalar _ -> [ fold_into_crc base ]
  | Ty.Vector (_, l) ->
      List.init (Ty.vlen_to_int l) (fun i ->
          fold_into_crc (Ast.Swizzle (base, [ i ])))
  | Ty.Arr (e, n) ->
      let iv = fresh_name st "i" in
      [ Ast.For
          {
            f_init =
              Some
                (Ast.Decl
                   {
                     Ast.dname = iv;
                     dty = Ty.int;
                     dspace = Ty.Private;
                     dvolatile = false;
                     dinit = Some (Ast.I_expr (Ast.const_of_int 0));
                   });
            f_cond = Some (Ast.Binop (Op.Lt, Ast.Var iv, Ast.const_of_int n));
            f_update =
              Some (Ast.Assign (Ast.Var iv, Ast.A_op Op.Add, Ast.const_of_int 1));
            f_body = fold_value st (Ast.Index (base, Ast.Var iv)) e;
          } ]
  | Ty.Named nm -> (
      let agg = Ty.find_aggregate (tyenv st) nm in
      if agg.is_union then
        match
          List.find_opt
            (fun (f : Ty.field) ->
              match f.Ty.fty with Ty.Scalar _ -> true | _ -> false)
            agg.fields
        with
        | Some f -> [ fold_into_crc (Ast.Field (base, f.fname)) ]
        | None -> []
      else
        List.concat_map
          (fun (f : Ty.field) -> fold_value st (Ast.Field (base, f.fname)) f.fty)
          agg.fields)
  | Ty.Ptr _ | Ty.Void -> []

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let lid_linear = Ast.Thread_id Op.Local_linear_id
let grp_linear = Ast.Thread_id Op.Group_linear_id

let master_guard body = Ast.If (Ast.Binop (Op.Eq, lid_linear, Ast.const_of_int 0), body, [])

let counted_for st ~below body_of_var =
  let iv = fresh_name st "i" in
  Ast.For
    {
      f_init =
        Some
          (Ast.Decl
             {
               Ast.dname = iv;
               dty = Ty.int;
               dspace = Ty.Private;
               dvolatile = false;
               dinit = Some (Ast.I_expr (Ast.const_of_int 0));
             });
      f_cond = Some (Ast.Binop (Op.Lt, Ast.Var iv, Ast.const_of_int below));
      f_update = Some (Ast.Assign (Ast.Var iv, Ast.A_op Op.Add, Ast.const_of_int 1));
      f_body = body_of_var (Ast.Var iv);
    }

(* expression generation with function calls disabled (atomic sections and
   other contexts where calls are not permitted) *)
let gen_scalar_nocall st scope depth =
  let saved = st.funcs in
  st.funcs <- [];
  let e = Gen_expr.gen_scalar st scope depth in
  st.funcs <- saved;
  e

(* ------------------------------------------------------------------ *)
(* Mode machinery                                                      *)
(* ------------------------------------------------------------------ *)

type comm_state = {
  mutable counters_used : int list; (* atomic-section counter indices *)
  mutable num_sections : int;
  m_counters : int; (* length of the ctrs/specials arrays *)
  a_is_global : bool;
  mutable used_reduction : bool;
  mutable used_sections : bool;
  mutable used_a : bool;
}

(* the ATOMIC SECTION construct (paper section 4.2) *)
let atomic_section st cs (scope : scope) : Ast.stmt =
  let ci = Rng.int st.rng cs.m_counters in
  cs.counters_used <- ci :: cs.counters_used;
  cs.num_sections <- cs.num_sections + 1;
  cs.used_sections <- true;
  let rnd = Rng.int st.rng (st.w_linear + (st.w_linear / 2) + 1) in
  let nlocals = Rng.int_range st.rng 1 4 in
  (* section-local declarations over a call-free restricted scope *)
  let restricted =
    List.filter (fun v -> match v.vty with Ty.Ptr _ -> false | _ -> true) scope
  in
  let decls, locals =
    List.fold_left
      (fun (ds, ls) _ ->
        let name = fresh_name st "sl" in
        let init = gen_scalar_nocall st restricted 2 in
        ( ds
          @ [ Ast.Decl
                {
                  Ast.dname = name;
                  dty = Ty.uint;
                  dspace = Ty.Private;
                  dvolatile = false;
                  dinit = Some (Ast.I_expr init);
                } ],
          name :: ls ))
      ([], []) (List.init nlocals Fun.id)
  in
  (* hash = sum of the section-local variables (paper: "summing the values
     of all variables declared immediately inside the atomic section") *)
  let hash =
    match List.rev locals with
    | [] -> Ast.const_of_int 0
    | x :: rest ->
        List.fold_left
          (fun acc v -> Ast.Binop (Op.Add, acc, Ast.Cast (Ty.uint, Ast.Var v)))
          (Ast.Cast (Ty.uint, Ast.Var x))
          rest
  in
  let ctr_ptr = Ast.Addr_of (Ast.Index (Ast.Var "ctrs", Ast.const_of_int ci)) in
  let spc_ptr =
    Ast.Addr_of (Ast.Index (Ast.Var "specials", Ast.const_of_int ci))
  in
  Ast.If
    ( Ast.Binop (Op.Eq, Ast.Atomic (Op.A_inc, ctr_ptr, []), Ast.const_of_int rnd),
      decls @ [ Ast.Expr (Ast.Atomic (Op.A_add, spc_ptr, [ hash ])) ],
      [] )

(* the ATOMIC REDUCTION construct *)
let atomic_reduction st cs (scope : scope) : Ast.block =
  cs.used_reduction <- true;
  let op = Rng.choose st.rng Op.all_reduction_atomics in
  let e = Ast.Cast (Ty.uint, gen_scalar_nocall st scope 2) in
  [
    Ast.Expr (Ast.Atomic (op, Ast.Addr_of (Ast.Var "red_r"), [ e ]));
    Ast.Barrier Op.F_local;
    master_guard [ Ast.Assign (Ast.Var "total", Ast.A_op Op.Add, Ast.Var "red_r") ];
    Ast.Barrier Op.F_local;
  ]

(* A[A_offset] element access for BARRIER mode *)
let a_elem (st : t) cs =
  if cs.a_is_global then
    Ast.Index
      ( Ast.Var "Abuf",
        Ast.Binop
          ( Op.Add,
            Ast.Binop (Op.Mul, grp_linear, Ast.const_of_int st.w_linear),
            Ast.Var "A_offset" ) )
  else Ast.Index (Ast.Var "A", Ast.Var "A_offset")

let barrier_fence cs = if cs.a_is_global then Op.F_global else Op.F_local

(* barrier + ownership re-distribution (paper section 4.2, BARRIER mode) *)
let sync_point st cs : Ast.block =
  cs.used_a <- true;
  let rnd = Rng.int st.rng st.cfg.Gen_config.permutation_count in
  [
    Ast.Barrier (barrier_fence cs);
    Ast.Assign
      ( Ast.Var "A_offset",
        Ast.A_simple,
        Ast.Index (Ast.Index (Ast.Var "permutations", Ast.const_of_int rnd), lid_linear)
      );
  ]

let a_access st cs scope : Ast.stmt =
  cs.used_a <- true;
  if Rng.bool_p st.rng 0.5 then
    Ast.Assign (Ast.Var "sh_acc", Ast.A_op Op.BitXor, a_elem st cs)
  else
    Ast.Assign
      (a_elem st cs, Ast.A_simple, Ast.Cast (Ty.uint, gen_scalar_nocall st scope 2))

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let gen_functions st =
  let nf = Rng.int_range st.rng 1 (st.cfg.Gen_config.max_funcs + 1) in
  let allow_barrier = Gen_config.mode_uses_barriers st.cfg.Gen_config.mode in
  for _ = 1 to nf do
    let fname = fresh_name st "func" in
    let nparams = Rng.int st.rng (st.cfg.Gen_config.max_func_params + 1) in
    let params =
      ("gp", Ty.Ptr (Ty.Private, Ty.Named "G"))
      :: List.init nparams (fun i ->
             (Printf.sprintf "p_%s_%d" fname i, Gen_types.random_scalar st))
    in
    let scope =
      List.map (fun (n, t) -> { vname = n; vty = t; assignable = true }) params
    in
    let ctx = { Gen_stmt.allow_barrier } in
    let body =
      Gen_stmt.gen_block st ctx scope ~depth:st.cfg.Gen_config.max_depth
    in
    let ret = Gen_types.random_scalar st in
    let body = body @ [ Ast.Return (Some (Gen_expr.gen_scalar st scope 2)) ] in
    st.funcs <-
      st.funcs @ [ { Ast.fname; ret; params; body } ]
  done

(* ------------------------------------------------------------------ *)
(* Kernel generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate ?(emi = false) ~(cfg : Gen_config.t) ~seed () :
    Ast.testcase * info =
  let rng = Rng.make seed in
  let (nx, ny, nz), (wx, wy, wz) = pick_ndrange rng cfg in
  let n_linear = nx * ny * nz and w_linear = wx * wy * wz in
  let num_groups = n_linear / w_linear in
  let st = create ~rng ~cfg ~w_linear ~n_linear ~num_groups in
  let mode = cfg.Gen_config.mode in
  let vectors = Gen_config.mode_uses_vectors mode in
  Gen_types.gen_aggregates st ~vectors;
  let g_agg = Gen_types.gen_globals_struct st ~vectors in
  gen_functions st;
  let use_barrier_a = Gen_config.mode_uses_barriers mode && mode <> Gen_config.Atomic_reduction in
  let use_sections = Gen_config.mode_uses_atomic_sections mode in
  let use_reductions = Gen_config.mode_uses_reductions mode in
  let cs =
    {
      counters_used = [];
      num_sections = 0;
      m_counters = Rng.int_range st.rng 1 (cfg.Gen_config.max_atomic_counters + 1);
      a_is_global = use_barrier_a && Rng.bool_p st.rng 0.5;
      used_reduction = false;
      used_sections = false;
      used_a = false;
    }
  in
  (* --- prologue: globals struct --- *)
  let g_init = Gen_types.random_init st (tyenv st) (Ty.Named "G") in
  let prologue =
    [
      Ast.Decl
        {
          Ast.dname = "g";
          dty = Ty.Named "G";
          dspace = Ty.Private;
          dvolatile = false;
          dinit = Some g_init;
        };
      Ast.Decl
        {
          Ast.dname = "gp";
          dty = Ty.Ptr (Ty.Private, Ty.Named "G");
          dspace = Ty.Private;
          dvolatile = false;
          dinit = Some (Ast.I_expr (Ast.Addr_of (Ast.Var "g")));
        };
    ]
  in
  (* --- shared-state declarations and master initialisation --- *)
  let shared_decls = ref [] in
  let master_init = ref [] in
  if use_barrier_a then begin
    if not cs.a_is_global then
      shared_decls :=
        !shared_decls
        @ [ Ast.Decl
              {
                Ast.dname = "A";
                dty = Ty.Arr (Ty.uint, w_linear);
                dspace = Ty.Local;
                dvolatile = false;
                dinit = None;
              } ];
    (* A is initialised with the uniform value 1 (paper section 4.2) *)
    let a_slot i =
      if cs.a_is_global then
        Ast.Index
          ( Ast.Var "Abuf",
            Ast.Binop
              (Op.Add, Ast.Binop (Op.Mul, grp_linear, Ast.const_of_int w_linear), i)
          )
      else Ast.Index (Ast.Var "A", i)
    in
    master_init :=
      !master_init
      @ [ counted_for st ~below:w_linear (fun iv ->
              [ Ast.Assign (a_slot iv, Ast.A_simple, Ast.const_of_int 1) ]) ];
    shared_decls :=
      !shared_decls
      @ [ Ast.Decl
            {
              Ast.dname = "A_offset";
              dty = Ty.uint;
              dspace = Ty.Private;
              dvolatile = false;
              dinit =
                Some
                  (Ast.I_expr
                     (Ast.Index
                        ( Ast.Index
                            ( Ast.Var "permutations",
                              Ast.const_of_int
                                (Rng.int st.rng cfg.Gen_config.permutation_count) ),
                          lid_linear )));
            };
          Ast.Decl
            {
              Ast.dname = "sh_acc";
              dty = Ty.uint;
              dspace = Ty.Private;
              dvolatile = false;
              dinit = Some (Ast.I_expr (Ast.const_of_int 0));
            } ]
  end;
  if use_sections then begin
    shared_decls :=
      !shared_decls
      @ [ Ast.Decl
            {
              Ast.dname = "ctrs";
              dty = Ty.Arr (Ty.uint, cs.m_counters);
              dspace = Ty.Local;
              dvolatile = true;
              dinit = None;
            };
          Ast.Decl
            {
              Ast.dname = "specials";
              dty = Ty.Arr (Ty.uint, cs.m_counters);
              dspace = Ty.Local;
              dvolatile = true;
              dinit = None;
            } ];
    master_init :=
      !master_init
      @ [ counted_for st ~below:cs.m_counters (fun iv ->
              [ Ast.Assign (Ast.Index (Ast.Var "ctrs", iv), Ast.A_simple, Ast.const_of_int 0);
                Ast.Assign (Ast.Index (Ast.Var "specials", iv), Ast.A_simple, Ast.const_of_int 0);
              ]) ]
  end;
  if use_reductions then begin
    shared_decls :=
      !shared_decls
      @ [ Ast.Decl
            {
              Ast.dname = "red_r";
              dty = Ty.uint;
              dspace = Ty.Local;
              dvolatile = true;
              dinit = None;
            };
          Ast.Decl
            {
              Ast.dname = "total";
              dty = Ty.uint;
              dspace = Ty.Private;
              dvolatile = false;
              dinit = Some (Ast.I_expr (Ast.const_of_int 0));
            } ];
    master_init :=
      !master_init
      @ [ Ast.Assign (Ast.Var "red_r", Ast.A_simple, Ast.const_of_int 0) ]
  end;
  let has_shared = use_barrier_a || use_sections || use_reductions in
  let setup =
    !shared_decls
    @
    if has_shared then
      [ master_guard !master_init;
        Ast.Barrier (if cs.a_is_global then Op.F_both else Op.F_local) ]
    else []
  in
  (* --- main body: generated statements interleaved with communication --- *)
  let kernel_scope =
    [
      { vname = "g"; vty = Ty.Named "G"; assignable = true };
      { vname = "gp"; vty = Ty.Ptr (Ty.Private, Ty.Named "G"); assignable = true };
    ]
  in
  let ctx = { Gen_stmt.allow_barrier = false } in
  (* helper-function generation shares the statement budget; the kernel
     body always gets a minimum allowance of its own *)
  st.budget <- max st.budget 35;
  let top_target = Rng.int_range st.rng 6 16 in
  let rec build k scope acc snapshots =
    if k = 0 || exhausted st then (List.rev acc, List.rev snapshots)
    else begin
      let snapshots = (List.length acc, scope) :: snapshots in
      let choice =
        Rng.weighted st.rng
          ([ (`Plain, 60) ]
          @ (if use_barrier_a then
               [ (`Sync, int_of_float (cfg.Gen_config.sync_point_prob *. 60.)) ]
             else [])
          @ (if use_barrier_a then [ (`A_access, 8) ] else [])
          @ (if use_sections then
               [ (`Section, int_of_float (cfg.Gen_config.atomic_section_prob *. 60.)) ]
             else [])
          @
          if use_reductions then
            [ (`Reduction, int_of_float (cfg.Gen_config.reduction_prob *. 60.)) ]
          else [])
      in
      match choice with
      | `Plain ->
          let s, scope' = Gen_stmt.gen_stmt st ctx scope ~depth:cfg.Gen_config.max_depth in
          build (k - 1) scope' (s :: acc) snapshots
      | `Sync -> build (k - 1) scope (List.rev (sync_point st cs) @ acc) snapshots
      | `A_access -> build (k - 1) scope (a_access st cs scope :: acc) snapshots
      | `Section -> build (k - 1) scope (atomic_section st cs scope :: acc) snapshots
      | `Reduction ->
          build (k - 1) scope (List.rev (atomic_reduction st cs scope) @ acc) snapshots
    end
  in
  let main_body, snapshots = build top_target kernel_scope [] [] in
  (* --- EMI blocks --- *)
  let dead_size = if emi then cfg.Gen_config.dead_size else 0 in
  let emi_ids = ref [] in
  let main_body =
    if not emi then main_body
    else begin
      let lo_n, hi_n = cfg.Gen_config.emi_blocks in
      let count = Rng.int_range st.rng lo_n (hi_n + 1) in
      let points = Rng.sample st.rng snapshots count in
      let with_idx = List.mapi (fun i (pos, scope) -> (i, pos, scope)) points in
      (* splice from the highest position down so indices stay valid *)
      let sorted =
        List.sort (fun (_, p1, _) (_, p2, _) -> compare p2 p1) with_idx
      in
      List.fold_left
        (fun body (id, pos, scope) ->
          emi_ids := id :: !emi_ids;
          let lo = Rng.int st.rng (dead_size - 1) in
          let hi = Rng.int_range st.rng (lo + 1) dead_size in
          let ectx = { Gen_stmt.allow_barrier = Gen_config.mode_uses_barriers mode } in
          st.budget <- st.budget + 12; (* EMI bodies get their own allowance *)
          let ebody = Gen_stmt.gen_block st ectx scope ~depth:2 in
          let block = Ast.Emi { Ast.emi_id = id; emi_lo = lo; emi_hi = hi; emi_body = ebody } in
          let rec insert i = function
            | rest when i = 0 -> block :: rest
            | [] -> [ block ]
            | s :: rest -> s :: insert (i - 1) rest
          in
          insert pos body)
        main_body sorted
    end
  in
  (* --- epilogue: checksum --- *)
  let epilogue =
    (if has_shared then
       [ Ast.Barrier (if cs.a_is_global then Op.F_both else Op.F_local) ]
     else [])
    @ [ Ast.Decl
          {
            Ast.dname = "crc";
            dty = Ty.ulong;
            dspace = Ty.Private;
            dvolatile = false;
            dinit =
              Some
                (Ast.I_expr
                   (Ast.Const
                      { Ast.value = 0xcbf29ce484222325L;
                        cty = { Ty.width = Ty.W64; sign = Ty.Unsigned } }));
          } ]
    @ List.concat_map
        (fun (f : Ty.field) -> fold_value st (Ast.Field (Ast.Var "g", f.fname)) f.fty)
        g_agg.Ty.fields
    @ (if use_barrier_a then [ fold_into_crc (Ast.Var "sh_acc") ] else [])
    @ (if use_reductions then [ fold_into_crc (Ast.Var "total") ] else [])
    @ (let master_folds =
         (if use_sections then
            [ counted_for st ~below:cs.m_counters (fun iv ->
                  [ fold_into_crc (Ast.Index (Ast.Var "specials", iv)) ]) ]
          else [])
         @
         if use_barrier_a then
           [ counted_for st ~below:w_linear (fun iv ->
                 [ fold_into_crc
                     (if cs.a_is_global then
                        Ast.Index
                          ( Ast.Var "Abuf",
                            Ast.Binop
                              ( Op.Add,
                                Ast.Binop (Op.Mul, grp_linear, Ast.const_of_int w_linear),
                                iv ) )
                      else Ast.Index (Ast.Var "A", iv)) ]) ]
         else []
       in
       if master_folds = [] then [] else [ master_guard master_folds ])
    @
    (* result store: two forms; the second mixes size_t thread ids into an
       integer via a compound bitwise assignment — legal OpenCL C that the
       Intel Xeon configuration's front end rejects (paper section 6) *)
    if Rng.bool_p st.rng 0.15 then
      [ Ast.Decl
          {
            Ast.dname = "tid";
            dty = Ty.uint;
            dspace = Ty.Private;
            dvolatile = false;
            dinit = Some (Ast.I_expr (Ast.const_of_int 0));
          };
        Ast.Assign
          ( Ast.Var "tid",
            Ast.A_op Op.BitOr,
            Ast.Binop
              ( Op.Add,
                Ast.Binop
                  ( Op.Mul,
                    Ast.Binop
                      ( Op.Add,
                        Ast.Binop
                          ( Op.Mul,
                            Ast.Thread_id (Op.Global_id Op.Z),
                            Ast.const_of_int ny ),
                        Ast.Thread_id (Op.Global_id Op.Y) ),
                    Ast.const_of_int nx ),
                Ast.Thread_id (Op.Global_id Op.X) ) );
        Ast.Assign
          (Ast.Index (Ast.Var "out", Ast.Var "tid"), Ast.A_simple, crc);
      ]
    else
      [ Ast.Assign
          ( Ast.Index (Ast.Var "out", Ast.Thread_id Op.Global_linear_id),
            Ast.A_simple,
            crc ) ]
  in
  let kernel_body = prologue @ setup @ main_body @ epilogue in
  let params =
    [ ("out", Ty.Ptr (Ty.Global, Ty.ulong)) ]
    @ (if cs.a_is_global then [ ("Abuf", Ty.Ptr (Ty.Global, Ty.uint)) ] else [])
    @ if emi then [ ("dead", Ty.Ptr (Ty.Global, Ty.int)) ] else []
  in
  let constant_arrays =
    if use_barrier_a then
      [ {
          Ast.ca_name = "permutations";
          ca_elem = { Ty.width = Ty.W32; sign = Ty.Unsigned };
          ca_data =
            Array.init cfg.Gen_config.permutation_count (fun _ ->
                Array.map Int64.of_int (Rng.permutation st.rng w_linear));
        } ]
    else []
  in
  let prog =
    {
      Ast.aggregates = st.aggregates;
      constant_arrays;
      funcs = st.funcs;
      kernel = { Ast.fname = "entry"; ret = Ty.Void; params; body = kernel_body };
      dead_size;
    }
  in
  let buffers =
    [ ("out", Ast.Buf_out) ]
    @ (if cs.a_is_global then [ ("Abuf", Ast.Buf_zero (num_groups * w_linear)) ] else [])
    @ if emi then [ ("dead", Ast.Buf_dead false) ] else []
  in
  let tc =
    {
      Ast.prog;
      global_size = (nx, ny, nz);
      local_size = (wx, wy, wz);
      buffers;
      observe = [ "out" ];
    }
  in
  let counter_sharing =
    let sorted = List.sort compare cs.counters_used in
    let rec dup = function
      | a :: (b :: _ as rest) -> a = b || dup rest
      | _ -> false
    in
    dup sorted
  in
  ( tc,
    { seed; mode; counter_sharing; w_linear; n_linear; emi_block_ids = !emi_ids } )

let generate_emi_body ~(cfg : Gen_config.t) ~seed ~scope_tys : Ast.block =
  let rng = Rng.make seed in
  let st = create ~rng ~cfg ~w_linear:1 ~n_linear:1 ~num_groups:1 in
  st.budget <- 20;
  let scope =
    List.map (fun (n, t) -> { vname = n; vty = t; assignable = true }) scope_tys
  in
  let body = Gen_stmt.gen_block st { Gen_stmt.allow_barrier = false } scope ~depth:2 in
  (* dead-by-construction blocks may contain guarded infinite loops — the
     shape behind the Intel GPU compile hang the paper had to work around
     ("we removed while(1) loops from EMI blocks for this configuration",
     section 7.2) *)
  if Rng.bool_p st.rng 0.25 then
    body
    @ [ Ast.If
          ( Gen_expr.gen_scalar st scope 1,
            [ Ast.While (Ast.const_of_int 1, []) ],
            [] ) ]
  else body
