(** CLsmith: generation of random, deterministic, communicating OpenCL
    kernels (paper section 4).

    [generate ~cfg ~seed ()] deterministically produces a complete test case
    — kernel program plus host-side launch configuration (randomised grid
    and group dimensions, buffers) — in the mode selected by [cfg]. The
    program:

    - computes a per-thread result folded from the globals struct, the
      communication state and the mode-specific accumulators into a
      [crc]-style checksum written to [out[t_linear]];
    - is well-typed ({!Typecheck.check_program}), satisfies the determinism
      discipline ({!Validate.check}), and yields the same output under
      every schedule policy — properties the test suite checks for a large
      sample of seeds;
    - when [emi] is set, additionally contains 1–5 dead-by-construction EMI
      blocks guarded by the [dead] array (paper section 5).

    {b The atomic-section counter-sharing caveat}: like the CLsmith version
    used for the paper's evaluation, two atomic sections may randomly pick
    the same counter with different trigger values, in which case which
    section "wins" an increment value is schedule-dependent — this is the
    "bug in the implementation of atomic sections" that forced the authors
    to discard 1563 ATOMIC SECTION and 1622 ALL kernels (section 7.3). The
    generator reports such kernels via [info.counter_sharing] and the
    campaign driver discards them exactly as the paper did. *)

type info = {
  seed : int;
  mode : Gen_config.mode;
  counter_sharing : bool;
      (** two atomic sections share a counter: output may be
          schedule-dependent; campaigns discard these *)
  w_linear : int;
  n_linear : int;
  emi_block_ids : int list;  (** ids of the injected EMI blocks *)
}

val generate :
  ?emi:bool -> cfg:Gen_config.t -> seed:int -> unit -> Ast.testcase * info

val generate_emi_body :
  cfg:Gen_config.t -> seed:int -> scope_tys:(string * Ty.t) list -> Ast.block
(** A standalone EMI block body referring to the given free variables —
    used by {!Inject} to produce blocks for insertion into real-world
    kernels (paper section 5, "Injecting into real-world kernels"). *)
