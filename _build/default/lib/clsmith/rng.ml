type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let make seed = { state = mix (Int64.of_int seed) }

let split t = { state = mix (Int64.logxor (next t) 0x5851F42D4C957F2DL) }

let int64 t = next t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

let int_range t lo hi =
  if hi <= lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo)

let bool_p t p =
  let u = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0 in
  u < p

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc + max w 0) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let k = int t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (x, w) :: rest ->
        let acc = acc + max w 0 in
        if k < acc then x else pick acc rest
  in
  pick 0 pairs

let permutation t n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let sample t xs k =
  let a = Array.of_list xs in
  let n = Array.length a in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)
