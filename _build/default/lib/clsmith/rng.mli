(** Deterministic, splittable pseudo-random source for program generation.

    A splitmix64 stream. Determinism matters: a (mode, seed) pair must
    regenerate the identical kernel on every run, so campaign results are
    reproducible and failing tests can be re-derived from their seed alone
    (the paper's online material identifies tests by generator seed). *)

type t

val make : int -> t

val split : t -> t
(** An independent stream; advancing one does not affect the other. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). [n] must be positive. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi). *)

val int64 : t -> int64
val bool_p : t -> float -> bool
val choose : t -> 'a list -> 'a
val weighted : t -> ('a * int) list -> 'a
(** Weights are relative positive integers. *)

val permutation : t -> int -> int array
(** A uniformly random permutation of [0..n-1]. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t xs k]: [k] elements drawn without replacement. *)
