lib/emi/inject.ml: Ast Gen_config Gen_types Generate List Printf Rng Ty
