lib/emi/inject.mli: Ast Gen_config
