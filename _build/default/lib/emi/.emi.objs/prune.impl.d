lib/emi/prune.ml: Ast Ast_map List Option Rng
