lib/emi/prune.mli: Ast Rng
