lib/emi/variant.ml: Array Ast List Prune Rng
