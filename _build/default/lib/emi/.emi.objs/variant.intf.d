lib/emi/variant.mli: Ast Prune
