type t = {
  testcase : Ast.testcase;
  injection_points : int;
  substitutions : bool;
}

(* Variables usable as EMI free variables: value-typed declarations of the
   kernel's top-level block, visible at statement index [pos]. *)
let scope_at (body : Ast.block) pos =
  List.filteri (fun i _ -> i < pos) body
  |> List.filter_map (function
       | Ast.Decl { Ast.dname; dty; _ } -> (
           match dty with
           | Ty.Scalar _ | Ty.Vector _ | Ty.Arr _ | Ty.Named _ ->
               Some (dname, dty)
           | Ty.Ptr _ | Ty.Void -> None)
       | _ -> None)

let fresh_free_vars rng cfg k =
  ignore cfg;
  List.init k (fun i ->
      let name = Printf.sprintf "emi_fv_%d" i in
      let ty = Rng.choose rng Gen_types.scalar_choices in
      (name, ty))

let inject ?points ~subst ~(cfg : Gen_config.t) ~seed (tc : Ast.testcase) : t =
  if tc.Ast.prog.Ast.dead_size > 0 then
    invalid_arg "Inject.inject: program already uses EMI";
  let rng = Rng.make seed in
  let n_points =
    match points with Some p -> p | None -> Rng.int_range rng 1 3
  in
  let body = tc.Ast.prog.Ast.kernel.Ast.body in
  let len = List.length body in
  let positions =
    List.sort (fun a b -> compare b a)
      (List.init n_points (fun _ -> Rng.int rng (len + 1)))
  in
  let dead_size = cfg.Gen_config.dead_size in
  let make_block id pos =
    let lo = Rng.int rng (dead_size - 1) in
    let hi = Rng.int_range rng (lo + 1) dead_size in
    let seed' = seed + (id * 7919) in
    if subst then
      let candidates = scope_at body pos in
      let chosen = Rng.sample rng candidates 4 in
      let ebody =
        Generate.generate_emi_body ~cfg ~seed:seed' ~scope_tys:chosen
      in
      Ast.Emi { Ast.emi_id = id; emi_lo = lo; emi_hi = hi; emi_body = ebody }
    else
      let fresh = fresh_free_vars rng cfg (Rng.int_range rng 1 4) in
      let decls =
        List.map
          (fun (n, ty) ->
            Ast.Decl
              {
                Ast.dname = n;
                dty = ty;
                dspace = Ty.Private;
                dvolatile = false;
                dinit = Some (Ast.I_expr (Ast.const_of_int (Rng.int rng 100)));
              })
          fresh
      in
      let ebody =
        Generate.generate_emi_body ~cfg ~seed:seed' ~scope_tys:fresh
      in
      Ast.Emi
        { Ast.emi_id = id; emi_lo = lo; emi_hi = hi; emi_body = decls @ ebody }
  in
  let body' =
    List.fold_left
      (fun acc (id, pos) ->
        let blk = make_block id pos in
        let rec insert i = function
          | rest when i = 0 -> blk :: rest
          | [] -> [ blk ]
          | s :: rest -> s :: insert (i - 1) rest
        in
        insert pos acc)
      body
      (List.mapi (fun id pos -> (id, pos)) positions)
  in
  let prog = tc.Ast.prog in
  let kernel =
    {
      prog.Ast.kernel with
      Ast.body = body';
      params = prog.Ast.kernel.Ast.params @ [ ("dead", Ty.Ptr (Ty.Global, Ty.int)) ];
    }
  in
  let prog = { prog with Ast.kernel; dead_size } in
  {
    testcase =
      {
        tc with
        Ast.prog;
        buffers = tc.Ast.buffers @ [ ("dead", Ast.Buf_dead false) ];
      };
    injection_points = n_points;
    substitutions = subst;
  }
