(** Injection of dead-by-construction EMI blocks into {e existing} kernels
    (paper section 5, "Injecting into real-world kernels").

    The transformation (i) equips the kernel with the extra [global int
    *dead] parameter, (ii) chooses one or two injection points, and
    (iii) inserts a randomly generated EMI block at each. Free variables
    of the block body are handled per the [substitutions] switch:

    - [subst = true]: free variables are aliased to randomly chosen
      variables of the original kernel that are in scope at the injection
      point (the paper does this with [#define]; we substitute names
      directly) — computations inside and outside the block then operate
      on common data, "giving the compiler the opportunity to optimize
      (possibly erroneously) across the block boundary";
    - [subst = false]: fresh variables are declared at the start of the
      block. *)

type t = {
  testcase : Ast.testcase;
  injection_points : int;
  substitutions : bool;
}

val inject :
  ?points:int ->
  subst:bool ->
  cfg:Gen_config.t ->
  seed:int ->
  Ast.testcase ->
  t
(** [points] defaults to a random choice of 1 or 2. The input testcase must
    not already use EMI. The result's program has [dead_size = cfg.dead_size]
    and a [dead] buffer appended. *)
