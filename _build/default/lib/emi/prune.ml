open Ast

type params = { pleaf : float; pcompound : float; plift : float }

let make_params ~pleaf ~pcompound ~plift =
  if pcompound +. plift > 1.0 +. 1e-9 then
    invalid_arg "Prune.make_params: pcompound + plift must be <= 1";
  { pleaf; pcompound; plift }

let adjusted_lift p =
  if p.pcompound >= 1.0 then 1.0 else p.plift /. (1.0 -. p.pcompound)

(* remove break/continue statements not nested inside an inner loop *)
let rec strip_outer_jumps (b : block) : block =
  List.filter_map
    (fun s ->
      match s with
      | Break | Continue -> None
      | If (c, b1, b2) -> Some (If (c, strip_outer_jumps b1, strip_outer_jumps b2))
      | Block b -> Some (Block (strip_outer_jumps b))
      | Emi e -> Some (Emi { e with emi_body = strip_outer_jumps e.emi_body })
      (* loops bound break/continue, so their bodies are left alone *)
      | For _ | While _ | Decl _ | Assign _ | Expr _ | Return _ | Barrier _ ->
          Some s)
    b

let rec prune_block rng p (b : block) : block =
  List.concat_map
    (fun s ->
      match s with
      (* declarations are load-bearing: never deleted, never lifted away *)
      | Decl _ -> [ s ]
      | Assign _ | Expr _ | Break | Continue | Return _ | Barrier _ ->
          if Rng.bool_p rng p.pleaf then [] else [ s ]
      | If (c, b1, b2) ->
          let b1 = prune_block rng p b1 and b2 = prune_block rng p b2 in
          if Rng.bool_p rng p.pcompound then []
          else if Rng.bool_p rng (adjusted_lift p) then b1 @ b2
          else [ If (c, b1, b2) ]
      | For f ->
          let body = prune_block rng p f.f_body in
          if Rng.bool_p rng p.pcompound then []
          else if Rng.bool_p rng (adjusted_lift p) then
            Option.to_list f.f_init @ strip_outer_jumps body
          else [ For { f with f_body = body } ]
      | While (c, body) ->
          let body = prune_block rng p body in
          if Rng.bool_p rng p.pcompound then []
          else if Rng.bool_p rng (adjusted_lift p) then strip_outer_jumps body
          else [ While (c, body) ]
      | Block body ->
          let body = prune_block rng p body in
          if Rng.bool_p rng p.pcompound then []
          else if Rng.bool_p rng (adjusted_lift p) then body
          else [ Block body ]
      | Emi e -> [ Emi { e with emi_body = prune_block rng p e.emi_body } ])
    b

let prune_program rng p (prog : program) : program =
  let mapper =
    {
      Ast_map.default with
      Ast_map.map_stmt =
        (function
        | Emi e -> Emi { e with emi_body = prune_block rng p e.emi_body }
        | s -> s);
    }
  in
  Ast_map.program mapper prog

let paper_combinations =
  let vals = [ 0.0; 0.3; 0.6; 1.0 ] in
  List.concat_map
    (fun pleaf ->
      List.concat_map
        (fun pcompound ->
          List.filter_map
            (fun plift ->
              if pcompound +. plift <= 1.0 +. 1e-9 then
                Some { pleaf; pcompound; plift }
              else None)
            vals)
        vals)
    vals
