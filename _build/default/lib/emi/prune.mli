(** The EMI pruning strategies (paper section 5).

    An EMI block's body is viewed as an AST in which non-compound
    statements are leaves and compound statements ([if]/[for]/[while]/
    blocks) are branch nodes. At each node:

    - {b leaf} deletes a leaf with probability [pleaf];
    - {b compound} deletes a branch node with probability [pcompound];
    - {b lift} (this paper's novel strategy) promotes the children of a
      branch node into its parent: a conditional with branches [S] and [T]
      becomes the sequence [S; T], and a loop with initialiser [S] and body
      [T] becomes [S; T'] where outermost [break]/[continue] statements
      are removed from [T'] to keep the result syntactically valid.

    Because compound and lift both consume branch nodes and compound is
    applied first, lift is applied with the adjusted probability
    [p'lift = plift / (1 - pcompound)], which requires
    [pcompound + plift <= 1].

    Declarations are never deleted (deleting one would leave dangling
    references and turn semantic variants into build failures). *)

type params = { pleaf : float; pcompound : float; plift : float }

val make_params : pleaf:float -> pcompound:float -> plift:float -> params
(** @raise Invalid_argument when [pcompound +. plift > 1.]. *)

val adjusted_lift : params -> float
(** [plift / (1 - pcompound)] (1.0 when [pcompound = 1]). *)

val prune_block : Rng.t -> params -> Ast.block -> Ast.block
(** Apply the three prunings to one EMI block body. *)

val prune_program : Rng.t -> params -> Ast.program -> Ast.program
(** Prune the body of every EMI block of the program; everything outside
    EMI blocks is untouched. *)

val paper_combinations : params list
(** The 40 parameter combinations of section 7.4: [pleaf], [pcompound],
    [plift] ranging over {0, 0.3, 0.6, 1} subject to the constraint. *)
