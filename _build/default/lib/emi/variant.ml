let derive ~(base : Ast.testcase) ~params ~seed =
  let rng = Rng.make seed in
  { base with Ast.prog = Prune.prune_program rng params base.Ast.prog }

let paper_variants ~base =
  List.mapi
    (fun i params -> derive ~base ~params ~seed:(1000 + i))
    Prune.paper_combinations

let variants ~base ~count =
  let combos = Array.of_list Prune.paper_combinations in
  List.init count (fun i ->
      derive ~base ~params:combos.(i mod Array.length combos) ~seed:(1000 + i))

let invert_dead (tc : Ast.testcase) =
  {
    tc with
    Ast.buffers =
      List.map
        (fun (n, spec) ->
          match spec with
          | Ast.Buf_dead inv -> (n, Ast.Buf_dead (not inv))
          | _ -> (n, spec))
        tc.Ast.buffers;
  }
