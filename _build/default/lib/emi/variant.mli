(** Derivation of EMI variants from a base program (paper section 7.4).

    Because every EMI block is dead by construction (the host initialises
    [dead] with [dead[j] = j]), all variants of a base must produce the
    base's output — any disagreement between two variants under one
    compiler indicates a miscompilation. *)

val derive : base:Ast.testcase -> params:Prune.params -> seed:int -> Ast.testcase
(** Prune the base's EMI blocks with the given parameters; the [seed]
    determines which nodes fall under the probabilistic prunings. *)

val paper_variants : base:Ast.testcase -> Ast.testcase list
(** The 40 variants of section 7.4 (one per {!Prune.paper_combinations}
    entry). *)

val variants : base:Ast.testcase -> count:int -> Ast.testcase list
(** [count] variants cycling through the paper's parameter combinations
    with fresh seeds — used when campaigns are scaled down. *)

val invert_dead : Ast.testcase -> Ast.testcase
(** Flip the [dead] buffer initialisation so every EMI block becomes live —
    the liveness filter of section 7.4: a candidate base whose output is
    unchanged by inversion has all its EMI blocks in already-dead code and
    is discarded. *)
