type expectation =
  | Exp_result of string
  | Exp_build_failure
  | Exp_crash
  | Exp_timeout

type t = {
  label : string;
  caption : string;
  testcase : Ast.testcase;
  reference_result : string;
  shows : (int * bool) list * expectation;
}

(* ------------------------------------------------------------------ *)
(* Figure 1 — configurations below the reliability threshold           *)
(* ------------------------------------------------------------------ *)

let fig1a =
  let open Build in
  let s = struct_ "S" [ sfield "a" Ty.char; sfield "b" Ty.short ] in
  let prog =
    kernel1 ~aggregates:[ s ] "k"
      [
        decl ~init:(il [ ie (ci 1); ie (ci 1) ]) "s" (Ty.Named "S");
        assign (idx (v "out") tid_linear)
          (cast Ty.ulong (field (v "s") "a" + field (v "s") "b"));
      ]
  in
  {
    label = "1(a)";
    caption = "Configs. 5+, 6+, 16+ yield result 1 (expected: 2)";
    testcase = testcase prog;
    reference_result = "out: 2";
    shows = ([ (5, true); (6, true); (16, true) ], Exp_result "out: 1");
  }

let fig1b =
  let open Build in
  let s =
    struct_ "S"
      [
        sfield "a" Ty.short; sfield "b" Ty.int; sfield ~volatile:true "c" Ty.char;
        sfield "d" Ty.int; sfield "e" Ty.int; sfield "f" (Ty.Arr (Ty.short, 10));
      ]
  in
  let zeros10 k = il (List.init 10 (fun i -> ie (ci (if i = 7 then k else 0)))) in
  let prog =
    kernel1 ~aggregates:[ s ] "k"
      [
        decl "s" (Ty.Named "S");
        decle "p" (Ty.Ptr (Ty.Private, Ty.Named "S")) (addr (v "s"));
        decl
          ~init:(il [ ie (ci 0); ie (ci 0); ie (ci 0); ie (ci 0); ie (ci 0); zeros10 1 ])
          "t" (Ty.Named "S");
        assign (v "s") (v "t");
        assign (idx (v "out") tid_linear) (cast Ty.ulong (idx (arrow (v "p") "f") (ci 7)));
      ]
  in
  {
    label = "1(b)";
    caption = "Configs. 10-, 11- yield result 0 (expected: 1); only if Nx = 1";
    testcase = testcase ~gsize:(1, 1, 1) ~lsize:(1, 1, 1) prog;
    reference_result = "out: 1";
    shows = ([ (10, false); (11, false) ], Exp_result "out: 0");
  }

let fig1c =
  let open Build in
  let s = struct_ "S" [ sfield "x" (Ty.Vector (Ty.int_scalar, Ty.V4)) ] in
  let prog =
    kernel1 ~aggregates:[ s ] "k"
      [
        decl
          ~init:
            (il
               [ ie
                   (Ast.Vec_lit
                      ( Ty.int_scalar, Ty.V4,
                        [ vec2 Ty.int_scalar (ci 1) (ci 1); ci 1; ci 1 ] ));
               ])
          "s" (Ty.Named "S");
        assign (idx (v "out") tid_linear) (cast Ty.ulong (x_of (field (v "s") "x")));
      ]
  in
  {
    label = "1(c)";
    caption = "Configs. 20±, 21± yield internal errors when vectors appear in structs";
    testcase = testcase prog;
    reference_result = "out: 1";
    shows = ([ (20, false); (20, true); (21, false); (21, true) ], Exp_build_failure);
  }

let fig1d =
  let open Build in
  let s = struct_ "S" [ sfield "x" Ty.int; sfield "y" Ty.int ] in
  let f =
    func "f" Ty.Void
      [ ("p", Ty.Ptr (Ty.Private, Ty.Named "S")) ]
      [ assign (arrow (v "p") "x") (ci 2) ]
  in
  let prog =
    kernel1 ~aggregates:[ s ] ~funcs:[ f ] "k"
      [
        decl ~init:(il [ ie (ci 1); ie (ci 1) ]) "s" (Ty.Named "S");
        barrier;
        expr (call "f" [ addr (v "s") ]);
        assign (idx (v "out") tid_linear)
          (cast Ty.ulong (field (v "s") "x" + field (v "s") "y"));
      ]
  in
  {
    label = "1(d)";
    caption = "Configs. 17± yield result 2 (expected result: 3)";
    testcase = testcase prog;
    reference_result = "out: 3";
    shows = ([ (17, false); (17, true) ], Exp_result "out: 2");
  }

let fig1e =
  let open Build in
  let prog =
    {
      Ast.aggregates = [];
      constant_arrays = [];
      funcs = [];
      kernel =
        func "k" Ty.Void
          [ ("p", Ty.Ptr (Ty.Global, Ty.int)) ]
          [
            for_up "i" ~from:0 ~below:197
              [ if_ (deref (v "p")) [ while_ (ci 1) [] ] ];
          ];
      dead_size = 0;
    }
  in
  {
    label = "1(e)";
    caption = "Configs. 8±, 7± enter an infinite loop during compilation";
    testcase = Build.testcase ~buffers:[ ("p", Ast.Buf_zero 1) ] ~observe:[ "p" ] prog;
    reference_result = "p: 0";
    shows = ([ (7, false); (7, true); (8, false); (8, true) ], Exp_timeout);
  }

let fig1f =
  let open Build in
  let s =
    struct_ "S"
      [
        sfield "a" Ty.int;
        sfield "b" (Ty.Ptr (Ty.Private, Ty.int));
        sfield "c" (Ty.Arr (Ty.Arr (Ty.Arr (Ty.ulong, 3), 9), 9));
      ]
  in
  let prog =
    kernel1 ~aggregates:[ s ] "k"
      [
        decl "s" (Ty.Named "S");
        decle "p" (Ty.Ptr (Ty.Private, Ty.Named "S")) (addr (v "s"));
        decl
          ~init:(il [ ie (ci 0); ie (addr (arrow (v "p") "a")); il [ il [ il [ ie (ci 0) ] ] ] ])
          "t" (Ty.Named "S");
        assign (v "s") (v "t");
        barrier;
        assign (idx (v "out") tid_linear)
          (idx (idx (idx (arrow (v "p") "c") (ci 0)) (ci 0)) (ci 1));
      ]
  in
  {
    label = "1(f)";
    caption = "Config. 18+ takes more than 20s to compile this kernel";
    testcase = testcase prog;
    reference_result = "out: 0";
    shows = ([ (18, true) ], Exp_timeout);
  }

(* ------------------------------------------------------------------ *)
(* Figure 2 — configurations above the reliability threshold           *)
(* ------------------------------------------------------------------ *)

let fig2a =
  let open Build in
  let s = struct_ "S" [ sfield "c" Ty.short; sfield "d" Ty.long ] in
  let u = union_ "U" [ sfield "a" Ty.uint; sfield "b" (Ty.Named "S") ] in
  let t =
    struct_ "T"
      [ sfield "u" (Ty.Arr (Ty.Named "U", 1)); sfield "x" Ty.ulong; sfield "y" Ty.ulong ]
  in
  let prog =
    kernel1 ~aggregates:[ s; u; t ]
      ~extra_params:[ ("in", Ty.Ptr (Ty.Global, Ty.int)) ]
      "k"
      [
        decl "c" (Ty.Named "T");
        decl
          ~init:
            (il
               [
                 il [ il [ ie (ci 1) ] ];
                 ie (cast Ty.ulong (idx (v "in") (gid Op.X)));
                 ie (cast Ty.ulong (idx (v "in") (gid Op.Y)));
               ])
          "t" (Ty.Named "T");
        assign (v "c") (v "t");
        decle "total" Ty.ulong (cul 0L);
        for_up "i" ~from:0 ~below:1
          [
            assign_op Op.Add (v "total")
              (cast Ty.ulong (field (idx (field (v "c") "u") (v "i")) "a"));
          ];
        assign (idx (v "out") tid_linear) (v "total");
      ]
  in
  {
    label = "2(a)";
    caption =
      "Configs. 1-, 2-, 3-, 4- yield 0xffff0001 due to incorrect union \
       initialization (expected: 1)";
    testcase =
      testcase ~buffers:[ ("in", Ast.Buf_data [| 5L; 7L |]) ] prog;
    reference_result = "out: 1";
    shows =
      ( [ (1, false); (2, false); (3, false); (4, false) ],
        Exp_result "out: 4294901761" );
  }

let fig2b =
  let open Build in
  let u32 = { Ty.width = Ty.W32; sign = Ty.Unsigned } in
  let prog =
    kernel1 "k"
      [
        assign (idx (v "out") tid_linear)
          (cast Ty.ulong
             (x_of
                (Ast.Builtin
                   ( Op.Rotate,
                     [ vec2 u32 (cu 1) (cu 1); vec2 u32 (cu 0) (cu 0) ] ))));
      ]
  in
  {
    label = "2(b)";
    caption = "Config. 14± yields result 0xffffffff (expected: 1)";
    testcase = testcase prog;
    reference_result = "out: 1";
    shows = ([ (14, false); (14, true) ], Exp_result "out: 4294967295");
  }

let fig2c =
  let open Build in
  let f = func "f" Ty.int [] [ barrier; ret (ci 1) ] in
  let k' =
    func "kk" Ty.Void
      [ ("p", Ty.Ptr (Ty.Private, Ty.int)) ]
      [ barrier; assign (deref (v "p")) (call "f" []) ]
  in
  let h =
    func "h" Ty.Void
      [ ("p", Ty.Ptr (Ty.Private, Ty.int)) ]
      [ expr (call "kk" [ v "p" ]) ]
  in
  let prog =
    kernel1 ~funcs:[ f; k'; h ] "k"
      [
        decle "x" Ty.int (ci 0);
        expr (call "h" [ addr (v "x") ]);
        assign (idx (v "out") tid_linear) (cast Ty.ulong (v "x"));
      ]
  in
  {
    label = "2(c)";
    caption =
      "Configs. 12-, 13- yield [1,0] for two threads in a group (expected \
       [1,1]); configs. 14-, 15- crash with a segmentation fault";
    testcase = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog;
    reference_result = "out: 1,1";
    shows = ([ (12, false); (13, false) ], Exp_result "out: 1,0");
  }

let fig2c_crash =
  {
    fig2c with
    label = "2(c')";
    caption = "Configs. 14-, 15- crash with a segmentation fault on the 2(c) kernel";
    shows = ([ (14, false); (15, false) ], Exp_crash);
  }

let fig2d =
  let open Build in
  let s =
    struct_ "S"
      [
        sfield "a" Ty.int;
        sfield ~volatile:true "b" (Ty.Ptr (Ty.Private, Ty.Ptr (Ty.Private, Ty.int)));
        sfield "c" Ty.int;
      ]
  in
  let f =
    func "f" Ty.Void
      [ ("s", Ty.Ptr (Ty.Private, Ty.Named "S")) ]
      [
        for_
          ~init:(assign (arrow (v "s") "a") (ci 0))
          ~cond:(arrow (v "s") "a" > ci 0)
          ~update:(assign (arrow (v "s") "a") (ci 0))
          [
            decle "x" Ty.int (ci 1);
            decle "p" (Ty.Ptr (Ty.Private, Ty.int)) (addr (arrow (v "s") "c"));
            barrier;
            (* complex expression over x, p and s (abridged, as in the paper) *)
            assign (arrow (v "s") "c") (v "x" + deref (v "p"));
          ];
      ]
  in
  let prog =
    kernel1 ~aggregates:[ s ] ~funcs:[ f ] "k"
      [
        decl ~init:(il [ ie (ci 1); ie (ci 0); ie (ci 0) ]) "s" (Ty.Named "S");
        expr (call "f" [ addr (v "s") ]);
        assign (idx (v "out") tid_linear) (cast Ty.ulong (field (v "s") "a"));
      ]
  in
  {
    label = "2(d)";
    caption =
      "Configs. 14-, 15- yield [0,1] for two threads in a group (expected \
       [0,0]): the loop body is unreachable, yet the barrier matters";
    testcase = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog;
    reference_result = "out: 0,0";
    shows = ([ (14, false); (15, false) ], Exp_result "out: 0,1");
  }

let fig2e =
  let open Build in
  let f =
    func "f" Ty.Void
      [ ("p", Ty.Ptr (Ty.Private, Ty.int)) ]
      [
        if_
          (Binop
             ( Op.Ge,
               Binop
                 ( Op.Lt,
                   Binop
                     ( Op.Shr,
                       Binop (Op.Ne, Binop (Op.Sub, deref (v "p"), cast Ty.int (grid Op.X)), ci 1),
                       deref (v "p") ),
                   ci 2 ),
               deref (v "p") ))
          [ assign (deref (v "p")) (ci 1) ];
      ]
  in
  let prog =
    kernel1 ~funcs:[ f ] "k"
      [
        decle "x" Ty.int (ci 0);
        expr (call "f" [ addr (v "x") ]);
        assign (idx (v "out") tid_linear) (cast Ty.ulong (v "x"));
      ]
  in
  {
    label = "2(e)";
    caption = "Config. 9+ yields result 0 (expected: 1)";
    testcase = testcase prog;
    reference_result = "out: 1";
    shows = ([ (9, true) ], Exp_result "out: 0");
  }

let fig2f =
  let open Build in
  let u32 = { Ty.width = Ty.W32; sign = Ty.Unsigned } in
  let prog =
    kernel1 "k"
      [
        decle "x" Ty.short (ci 0);
        decl "y" Ty.uint;
        for_
          ~init:(assign (v "y") (cs u32 0xFFFFFFFFL))
          ~cond:(v "y" >= cu 1)
          ~update:(assign_op Op.Add (v "y") (cu 1))
          [ if_ (comma (v "x") (ci 1)) [ break_ ] ];
        assign (idx (v "out") tid_linear) (cast Ty.ulong (v "y"));
      ]
  in
  {
    label = "2(f)";
    caption =
      "Config. 19± yields result 0 (expected: 0xffffffff) — comma operator \
       mishandling; the guard x,1 must break (x = 0 in our rendition so \
       the first-operand bug is observable)";
    testcase = testcase prog;
    reference_result = "out: 4294967295";
    shows = ([ (19, false); (19, true) ], Exp_result "out: 0");
  }

let figure1 = [ fig1a; fig1b; fig1c; fig1d; fig1e; fig1f ]
let figure2 = [ fig2a; fig2b; fig2c; fig2c_crash; fig2d; fig2e; fig2f ]
let all = figure1 @ figure2

(* ------------------------------------------------------------------ *)

let observed (e : t) =
  List.map
    (fun (id, opt) -> (id, opt, Driver.run ~noise:false (Config.find id) ~opt e.testcase))
    (fst e.shows)

let matches (exp : expectation) (o : Outcome.t) =
  match (exp, o) with
  | Exp_result r, Outcome.Success s -> String.equal r s
  | Exp_build_failure, Outcome.Build_failure _ -> true
  | Exp_crash, (Outcome.Crash _ | Outcome.Machine_crash _) -> true
  | Exp_timeout, Outcome.Timeout -> true
  | _ -> false

let demonstrate (e : t) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "Figure %s: %s\n\n%s\n" e.label e.caption
    (Pp.program_to_string e.testcase.Ast.prog);
  Printf.bprintf buf "reference (correct) result: %s\n" e.reference_result;
  let _, exp = e.shows in
  List.iter
    (fun (id, opt, o) ->
      Printf.bprintf buf "config %d%s: %s  [%s]\n" id
        (if opt then "+" else "-")
        (Outcome.to_string o)
        (if matches exp o then "reproduces the paper" else "DID NOT REPRODUCE"))
    (observed e);
  Buffer.contents buf

let summary_table (es : t list) =
  let rows =
    List.map
      (fun e ->
        let obs = observed e in
        let ok = List.for_all (fun (_, _, o) -> matches (snd e.shows) o) obs in
        [
          e.label;
          String.concat ","
            (List.map
               (fun (id, opt, _) ->
                 Printf.sprintf "%d%s" id (if opt then "+" else "-"))
               obs);
          (match snd e.shows with
          | Exp_result r -> "wrong result " ^ r
          | Exp_build_failure -> "build failure"
          | Exp_crash -> "crash"
          | Exp_timeout -> "compile/run timeout");
          (if ok then "reproduced" else "NOT reproduced");
        ])
      es
  in
  Table_fmt.render ~header:[ "Figure"; "Configs"; "Paper behaviour"; "Status" ] rows
