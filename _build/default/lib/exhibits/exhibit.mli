(** The bug-exhibit kernels of Figures 1 and 2, as runnable test cases.

    Each exhibit records the kernel from the paper, the expected (reference)
    result, and the configurations the paper reports misbehaving, with the
    misbehaviour they showed. [demonstrate] compiles and runs the exhibit
    on its configurations through the vendor simulation and reports
    expected vs. observed; the test suite asserts each reproduction. *)

type expectation =
  | Exp_result of string  (** wrong value(s) printed, e.g. ["1"] *)
  | Exp_build_failure
  | Exp_crash
  | Exp_timeout  (** compile hang or pathological compile time *)

type t = {
  label : string;  (** e.g. "1(a)" *)
  caption : string;  (** the paper's caption *)
  testcase : Ast.testcase;
  reference_result : string;  (** expected out-buffer contents *)
  shows : (int * bool) list * expectation;
      (** configurations (id, optimisations on?) and what they exhibit *)
}

val figure1 : t list
val figure2 : t list
val all : t list

val observed : t -> (int * bool * Outcome.t) list
(** Run the exhibit on each of its configurations. *)

val matches : expectation -> Outcome.t -> bool
(** Does an observed outcome exhibit the documented misbehaviour? *)

val demonstrate : t -> string
(** Human-readable report: kernel source, expected result, and per
    configuration the observed outcome with a reproduction verdict. *)

val summary_table : t list -> string
