lib/harness/bench_emi.ml: Config Driver Fun Gen_config Inject List Outcome Printf String Suite Table_fmt
