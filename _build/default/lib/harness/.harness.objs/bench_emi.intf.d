lib/harness/bench_emi.mli:
