lib/harness/campaign.ml: Buffer Config Driver Gen_config Generate Hashtbl List Majority Outcome Printf Table_fmt
