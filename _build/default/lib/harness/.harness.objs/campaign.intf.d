lib/harness/campaign.mli: Gen_config
