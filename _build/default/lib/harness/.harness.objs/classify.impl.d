lib/harness/classify.ml: Array Config Driver Gen_config Generate List Majority Printf Table_fmt
