lib/harness/classify.mli: Config
