lib/harness/emi_campaign.ml: Config Driver Gen_config Generate Hashtbl List Outcome Printf String Table_fmt Variant
