lib/harness/emi_campaign.mli:
