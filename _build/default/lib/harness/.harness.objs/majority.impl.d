lib/harness/majority.ml: Hashtbl List Option Outcome String
