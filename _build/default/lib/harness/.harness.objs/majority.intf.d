lib/harness/majority.mli: Outcome
