type config_report = {
  config : Config.t;
  total : int;
  wrong : int;
  build_failures : int;
  crashes : int;
  timeouts : int;
  fail_fraction : float;
  above : bool;
}

type t = {
  per_mode : int;
  discarded_sharing : int;
  reports : config_report list;
}

(* generate the initial kernel set: [per_mode] kernels per mode, skipping
   counter-sharing ones (the paper discarded those) *)
let initial_kernels ~per_mode ~seed0 =
  let discarded = ref 0 in
  let kernels =
    List.concat_map
      (fun mode ->
        let cfg = Gen_config.scaled mode in
        let rec collect seed acc n =
          if n = 0 then acc
          else
            let tc, info = Generate.generate ~cfg ~seed () in
            if info.Generate.counter_sharing then begin
              incr discarded;
              collect (seed + 1) acc n
            end
            else collect (seed + 1) (tc :: acc) (n - 1)
        in
        collect seed0 [] per_mode)
      Gen_config.all_modes
  in
  (kernels, !discarded)

let run ?(per_mode = 10) ?(seed0 = 1) () : t =
  let kernels, discarded_sharing = initial_kernels ~per_mode ~seed0 in
  let configs = Config.all in
  (* stats.(ci) = (wrong, bf, crash, timeout, total) *)
  let n = List.length configs in
  let wrong = Array.make n 0
  and bf = Array.make n 0
  and cr = Array.make n 0
  and tmo = Array.make n 0
  and tot = Array.make n 0 in
  List.iter
    (fun tc ->
      let prep = Driver.prepare tc in
      let outcomes =
        List.map
          (fun c ->
            ( c,
              ( Driver.run_prepared c ~opt:false prep,
                Driver.run_prepared c ~opt:true prep ) ))
          configs
      in
      let all_results =
        List.concat_map (fun (_, (a, b)) -> [ a; b ]) outcomes
      in
      let majority = Majority.majority_output all_results in
      List.iteri
        (fun i (_, (off, on)) ->
          List.iter
            (fun o ->
              tot.(i) <- tot.(i) + 1;
              match Majority.bucket_of ~majority o with
              | Majority.B_wrong -> wrong.(i) <- wrong.(i) + 1
              | Majority.B_bf -> bf.(i) <- bf.(i) + 1
              | Majority.B_crash -> cr.(i) <- cr.(i) + 1
              | Majority.B_timeout -> tmo.(i) <- tmo.(i) + 1
              | Majority.B_ok -> ())
            [ off; on ])
        outcomes)
    kernels;
  let reports =
    List.mapi
      (fun i c ->
        let fails = wrong.(i) + bf.(i) + cr.(i) + tmo.(i) in
        let frac = if tot.(i) = 0 then 0.0 else float fails /. float tot.(i) in
        {
          config = c;
          total = tot.(i);
          wrong = wrong.(i);
          build_failures = bf.(i);
          crashes = cr.(i);
          timeouts = tmo.(i);
          fail_fraction = frac;
          above = frac <= 0.25 && not c.Config.manual_below;
        })
      configs
  in
  { per_mode; discarded_sharing; reports }

let to_table (t : t) =
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.config.Config.id;
          r.config.Config.sdk;
          r.config.Config.device;
          r.config.Config.driver;
          Config.device_type_name r.config.Config.device_type;
          string_of_int r.wrong;
          string_of_int r.build_failures;
          string_of_int r.crashes;
          string_of_int r.timeouts;
          Printf.sprintf "%.1f%%" (100. *. r.fail_fraction);
          (if r.above then "YES" else "no");
          (if r.config.Config.above_threshold then "YES" else "no");
        ])
      t.reports
  in
  Table_fmt.render_titled
    ~title:
      (Printf.sprintf
         "Table 1: configurations and reliability threshold (%d initial \
          kernels/mode, %d discarded for counter sharing)"
         t.per_mode t.discarded_sharing)
    ~header:
      [ "Conf."; "SDK"; "Device"; "Driver"; "Type"; "w"; "bf"; "c"; "to";
        "fail%"; "above?"; "paper" ]
    rows

let agreement_with_paper (t : t) =
  let agree =
    List.length
      (List.filter
         (fun r -> r.above = r.config.Config.above_threshold)
         t.reports)
  in
  (agree, List.length t.reports)
