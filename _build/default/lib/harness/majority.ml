let majority_output (outcomes : Outcome.t list) : string option =
  let tally = Hashtbl.create 16 in
  List.iter
    (function
      | Outcome.Success s ->
          Hashtbl.replace tally s (1 + Option.value ~default:0 (Hashtbl.find_opt tally s))
      | _ -> ())
    outcomes;
  let best =
    Hashtbl.fold
      (fun s n acc ->
        match acc with
        | Some (_, m) when m >= n -> acc
        | _ -> Some (s, n))
      tally None
  in
  match best with
  | Some (s, n) when n >= 3 ->
      (* require a strict plurality: no other output with the same count *)
      let ties =
        Hashtbl.fold (fun s' n' acc -> if n' = n && s' <> s then acc + 1 else acc) tally 0
      in
      if ties = 0 then Some s else None
  | _ -> None

let is_wrong_code ~majority (o : Outcome.t) =
  match (majority, o) with
  | Some m, Outcome.Success s -> not (String.equal m s)
  | _ -> false

type bucket = B_wrong | B_ok | B_bf | B_crash | B_timeout

let bucket_of ~majority (o : Outcome.t) =
  match o with
  | Outcome.Success _ ->
      if is_wrong_code ~majority o then B_wrong else B_ok
  | Outcome.Build_failure _ -> B_bf
  | Outcome.Crash _ | Outcome.Machine_crash _ | Outcome.Ub _ -> B_crash
  | Outcome.Timeout -> B_timeout

let bucket_name = function
  | B_wrong -> "w"
  | B_ok -> "ok"
  | B_bf -> "bf"
  | B_crash -> "c"
  | B_timeout -> "to"
