(** Majority voting over per-kernel outcomes (paper section 7.3).

    "We say that a configuration produces a wrong code result for a kernel
    at a given optimization level if, among all the results computed for
    the kernel, there is a majority of at least 3 among the non-{bf,c,to}
    results for the kernel, and the configuration yields a non-{bf,c,to}
    result that disagrees with the majority." *)

val majority_output : Outcome.t list -> string option
(** The output string shared by a strict plurality of at least 3 of the
    computed ([Success]) results, if one exists. *)

val is_wrong_code : majority:string option -> Outcome.t -> bool
(** [true] when a majority exists, the outcome is computed, and it
    disagrees. *)

(** Outcome bucket used by the campaign tables. *)
type bucket = B_wrong | B_ok | B_bf | B_crash | B_timeout

val bucket_of : majority:string option -> Outcome.t -> bucket
val bucket_name : bucket -> string
