lib/minicl/ast.ml: Int64 List Op Option String Ty
