lib/minicl/ast_map.ml: Ast Fun List Option
