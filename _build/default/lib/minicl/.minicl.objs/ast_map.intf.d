lib/minicl/ast_map.mli: Ast
