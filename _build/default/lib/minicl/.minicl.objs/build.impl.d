lib/minicl/build.ml: Ast Int64 List Op Stdlib String Ty
