lib/minicl/build.mli: Ast Op Ty
