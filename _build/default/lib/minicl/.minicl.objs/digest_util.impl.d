lib/minicl/digest_util.ml: Ast Ast_map Char Digest Int64 Pp String
