lib/minicl/digest_util.mli: Ast
