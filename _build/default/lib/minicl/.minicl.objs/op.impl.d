lib/minicl/op.ml: Printf
