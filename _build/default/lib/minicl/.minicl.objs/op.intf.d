lib/minicl/op.mli:
