lib/minicl/pp.ml: Array Ast Buffer Format Int64 List Op Printf Scalar_text String Ty
