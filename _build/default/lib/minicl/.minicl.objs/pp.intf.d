lib/minicl/pp.mli: Ast Format
