lib/minicl/scalar_text.ml: Int64 Printf Ty
