lib/minicl/ty.ml: Format Int64 List Map Printf Stdlib String
