lib/minicl/ty.mli: Format
