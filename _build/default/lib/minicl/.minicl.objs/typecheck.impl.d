lib/minicl/typecheck.ml: Array Ast List Map Op Pp Printf String Ty
