lib/minicl/typecheck.mli: Ast Ty
