lib/minicl/validate.ml: Ast List Op Option Pp Printf Set String
