lib/minicl/validate.mli: Ast
