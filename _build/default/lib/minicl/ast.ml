(* Abstract syntax of MiniCL kernels. See ast.mli for documentation. *)

type const = { value : int64; cty : Ty.scalar }

type assign_op = A_simple | A_op of Op.binop

type expr =
  | Const of const
  | Var of string
  | Thread_id of Op.id_kind
  | Unop of Op.unop * expr
  | Binop of Op.binop * expr * expr
  | Safe_binop of Op.binop * expr * expr
  | Safe_neg of expr
  | Builtin of Op.builtin * expr list
  | Call of string * expr list
  | Cast of Ty.t * expr
  | Cond of expr * expr * expr
  | Field of expr * string
  | Arrow of expr * string
  | Index of expr * expr
  | Deref of expr
  | Addr_of of expr
  | Vec_lit of Ty.scalar * Ty.vlen * expr list
  | Swizzle of expr * int list
  | Atomic of Op.atomic * expr * expr list

type init = I_expr of expr | I_list of init list

type decl = {
  dname : string;
  dty : Ty.t;
  dspace : Ty.space;
  dvolatile : bool;
  dinit : init option;
}

type stmt =
  | Decl of decl
  | Assign of expr * assign_op * expr
  | Expr of expr
  | If of expr * block * block
  | For of for_loop
  | While of expr * block
  | Break
  | Continue
  | Return of expr option
  | Barrier of Op.fence
  | Block of block
  | Emi of emi_block

and for_loop = {
  f_init : stmt option;
  f_cond : expr option;
  f_update : stmt option;
  f_body : block;
}

and emi_block = { emi_id : int; emi_lo : int; emi_hi : int; emi_body : block }

and block = stmt list

type func = {
  fname : string;
  ret : Ty.t;
  params : (string * Ty.t) list;
  body : block;
}

type const_array = {
  ca_name : string;
  ca_elem : Ty.scalar;
  ca_data : int64 array array;  (* rows; 1-row arrays print as 1-D *)
}

type program = {
  aggregates : Ty.aggregate list;
  constant_arrays : const_array list;
  funcs : func list;
  kernel : func;
  dead_size : int;
}

type buffer_spec =
  | Buf_out
  | Buf_dead of bool  (* true = inverted (EMI blocks become live) *)
  | Buf_data of int64 array
  | Buf_zero of int

type testcase = {
  prog : program;
  global_size : int * int * int;
  local_size : int * int * int;
  buffers : (string * buffer_spec) list;
  observe : string list;
      (* buffers whose final contents form the printed result; CLsmith
         kernels observe [out], benchmark ports observe their output
         buffers *)
}

let tyenv_of_program p = Ty.tyenv_of_list p.aggregates

let const_of_int ?(ty = { Ty.width = Ty.W32; sign = Ty.Signed }) n =
  Const { value = Int64.of_int n; cty = ty }

let find_func p name =
  if String.equal p.kernel.fname name then Some p.kernel
  else List.find_opt (fun f -> String.equal f.fname name) p.funcs

(* Fold over every statement of a block, including nested ones,
   outside-in. *)
let rec fold_stmts f acc block = List.fold_left (fold_stmt f) acc block

and fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | Decl _ | Assign _ | Expr _ | Break | Continue | Return _ | Barrier _ -> acc
  | If (_, b1, b2) -> fold_stmts f (fold_stmts f acc b1) b2
  | For { f_init; f_update; f_body; _ } ->
      let acc = Option.fold ~none:acc ~some:(fold_stmt f acc) f_init in
      let acc = Option.fold ~none:acc ~some:(fold_stmt f acc) f_update in
      fold_stmts f acc f_body
  | While (_, b) -> fold_stmts f acc b
  | Block b -> fold_stmts f acc b
  | Emi { emi_body; _ } -> fold_stmts f acc emi_body

(* Fold over every expression in a statement (conditions, initialisers,
   right-hand sides), including sub-expressions, outside-in. *)
let rec fold_exprs_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Var _ | Thread_id _ -> acc
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Deref a | Addr_of a
  | Field (a, _) | Arrow (a, _) | Swizzle (a, _) ->
      fold_exprs_expr f acc a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) ->
      fold_exprs_expr f (fold_exprs_expr f acc a) b
  | Cond (a, b, c) ->
      fold_exprs_expr f (fold_exprs_expr f (fold_exprs_expr f acc a) b) c
  | Builtin (_, args) | Call (_, args) | Vec_lit (_, _, args) ->
      List.fold_left (fold_exprs_expr f) acc args
  | Atomic (_, p, args) ->
      List.fold_left (fold_exprs_expr f) (fold_exprs_expr f acc p) args

let rec fold_exprs_init f acc = function
  | I_expr e -> fold_exprs_expr f acc e
  | I_list is -> List.fold_left (fold_exprs_init f) acc is

let fold_exprs_of_stmt f acc s =
  match s with
  | Decl { dinit = Some i; _ } -> fold_exprs_init f acc i
  | Decl { dinit = None; _ } -> acc
  | Assign (l, _, r) -> fold_exprs_expr f (fold_exprs_expr f acc l) r
  | Expr e -> fold_exprs_expr f acc e
  | If (c, _, _) -> fold_exprs_expr f acc c
  | For { f_cond; _ } -> Option.fold ~none:acc ~some:(fold_exprs_expr f acc) f_cond
  | While (c, _) -> fold_exprs_expr f acc c
  | Return (Some e) -> fold_exprs_expr f acc e
  | Return None | Break | Continue | Barrier _ | Block _ | Emi _ -> acc

let fold_exprs f acc block =
  fold_stmts (fun acc s -> fold_exprs_of_stmt f acc s) acc block

let fold_program_blocks f acc p =
  let acc = List.fold_left (fun acc fn -> f acc fn.body) acc p.funcs in
  f acc p.kernel.body

(* Feature queries used by fault-model triggers and campaign statistics. *)

let exists_stmt pred p =
  fold_program_blocks
    (fun acc b -> acc || fold_stmts (fun a s -> a || pred s) false b)
    false p

let exists_expr pred p =
  fold_program_blocks
    (fun acc b -> acc || fold_exprs (fun a e -> a || pred e) false b)
    false p

let uses_barrier p =
  exists_stmt (function Barrier _ -> true | _ -> false) p

let uses_atomics p =
  exists_expr (function Atomic _ -> true | _ -> false) p

let uses_vectors p =
  let vec_ty t = Ty.is_vector t in
  exists_expr (function
    | Vec_lit _ | Swizzle _ -> true
    | Cast (t, _) -> vec_ty t
    | _ -> false)
    p
  || exists_stmt
       (function Decl { dty; _ } -> vec_ty dty | _ -> false)
       p
  || List.exists
       (fun (a : Ty.aggregate) -> List.exists (fun f -> vec_ty f.Ty.fty) a.fields)
       p.aggregates

let uses_comma p =
  exists_expr (function Binop (Op.Comma, _, _) -> true | _ -> false) p

let emi_block_count p =
  fold_program_blocks
    (fun acc b ->
      acc + fold_stmts (fun n s -> match s with Emi _ -> n + 1 | _ -> n) 0 b)
    0 p

let stmt_count p =
  fold_program_blocks (fun acc b -> acc + fold_stmts (fun n _ -> n + 1) 0 b) 0 p

let expr_count p =
  fold_program_blocks (fun acc b -> acc + fold_exprs (fun n _ -> n + 1) 0 b) 0 p
