open Ast

type mapper = {
  map_expr : expr -> expr;
  map_stmt : stmt -> stmt;
  map_block : block -> block;
}

let default = { map_expr = Fun.id; map_stmt = Fun.id; map_block = Fun.id }

let rec expr m (e : expr) : expr =
  let e' =
    match e with
    | Const _ | Var _ | Thread_id _ -> e
    | Unop (op, a) -> Unop (op, expr m a)
    | Binop (op, a, b) -> Binop (op, expr m a, expr m b)
    | Safe_binop (op, a, b) -> Safe_binop (op, expr m a, expr m b)
    | Safe_neg a -> Safe_neg (expr m a)
    | Builtin (b, args) -> Builtin (b, List.map (expr m) args)
    | Call (f, args) -> Call (f, List.map (expr m) args)
    | Cast (t, a) -> Cast (t, expr m a)
    | Cond (a, b, c) -> Cond (expr m a, expr m b, expr m c)
    | Field (a, f) -> Field (expr m a, f)
    | Arrow (a, f) -> Arrow (expr m a, f)
    | Index (a, i) -> Index (expr m a, expr m i)
    | Deref a -> Deref (expr m a)
    | Addr_of a -> Addr_of (expr m a)
    | Vec_lit (s, l, args) -> Vec_lit (s, l, List.map (expr m) args)
    | Swizzle (a, idxs) -> Swizzle (expr m a, idxs)
    | Atomic (op, p, args) -> Atomic (op, expr m p, List.map (expr m) args)
  in
  m.map_expr e'

and init_ m (i : init) : init =
  match i with
  | I_expr e -> I_expr (expr m e)
  | I_list is -> I_list (List.map (init_ m) is)

and stmt m (s : stmt) : stmt =
  let s' =
    match s with
    | Decl d -> Decl { d with dinit = Option.map (init_ m) d.dinit }
    | Assign (l, op, r) -> Assign (expr m l, op, expr m r)
    | Expr e -> Expr (expr m e)
    | If (c, b1, b2) -> If (expr m c, block m b1, block m b2)
    | For { f_init; f_cond; f_update; f_body } ->
        For
          {
            f_init = Option.map (stmt m) f_init;
            f_cond = Option.map (expr m) f_cond;
            f_update = Option.map (stmt m) f_update;
            f_body = block m f_body;
          }
    | While (c, b) -> While (expr m c, block m b)
    | Break | Continue -> s
    | Return e -> Return (Option.map (expr m) e)
    | Barrier _ -> s
    | Block b -> Block (block m b)
    | Emi e -> Emi { e with emi_body = block m e.emi_body }
  in
  m.map_stmt s'

and block m (b : block) : block = m.map_block (List.map (stmt m) b)

let func m (f : func) = { f with body = block m f.body }

let program m (p : program) =
  { p with funcs = List.map (func m) p.funcs; kernel = func m p.kernel }

let map_blocks f p = program { default with map_block = f } p
let map_exprs f p = program { default with map_expr = f } p
let map_stmts f p = program { default with map_stmt = f } p
