(** Generic bottom-up rewriting over MiniCL ASTs.

    The workhorses of the optimisation passes ([opt] library), the EMI
    pruning strategies ([emi] library) and the fault-model mutators
    ([vendors] library). A {!mapper} carries one hook per syntactic class;
    hooks receive the node {e after} its children have been rewritten. *)

type mapper = {
  map_expr : Ast.expr -> Ast.expr;
  map_stmt : Ast.stmt -> Ast.stmt;
  map_block : Ast.block -> Ast.block;
      (** applied after per-statement rewriting; lets passes delete or
          splice statements *)
}

val default : mapper
(** Identity hooks. *)

val expr : mapper -> Ast.expr -> Ast.expr
val stmt : mapper -> Ast.stmt -> Ast.stmt
val block : mapper -> Ast.block -> Ast.block
val func : mapper -> Ast.func -> Ast.func
val program : mapper -> Ast.program -> Ast.program

val map_blocks : (Ast.block -> Ast.block) -> Ast.program -> Ast.program
(** Rewrite every block (outer and nested) of every function. *)

val map_exprs : (Ast.expr -> Ast.expr) -> Ast.program -> Ast.program
val map_stmts : (Ast.stmt -> Ast.stmt) -> Ast.program -> Ast.program
