open Ast

let ci n = Const { value = Int64.of_int n; cty = Ty.int_scalar }
let cu n = Const { value = Int64.of_int n; cty = { Ty.width = Ty.W32; sign = Ty.Unsigned } }
let cul n = Const { value = n; cty = { Ty.width = Ty.W64; sign = Ty.Unsigned } }
let cs ty n = Const { value = n; cty = ty }
let v name = Var name

let ( + ) a b = Binop (Op.Add, a, b)
let ( - ) a b = Binop (Op.Sub, a, b)
let ( * ) a b = Binop (Op.Mul, a, b)
let ( / ) a b = Binop (Op.Div, a, b)
let ( % ) a b = Binop (Op.Mod, a, b)
let ( << ) a b = Binop (Op.Shl, a, b)
let ( >> ) a b = Binop (Op.Shr, a, b)
let ( == ) a b = Binop (Op.Eq, a, b)
let ( != ) a b = Binop (Op.Ne, a, b)
let ( < ) a b = Binop (Op.Lt, a, b)
let ( > ) a b = Binop (Op.Gt, a, b)
let ( <= ) a b = Binop (Op.Le, a, b)
let ( >= ) a b = Binop (Op.Ge, a, b)
let ( &&& ) a b = Binop (Op.LogAnd, a, b)
let ( ||| ) a b = Binop (Op.LogOr, a, b)
let band a b = Binop (Op.BitAnd, a, b)
let bor a b = Binop (Op.BitOr, a, b)
let bxor a b = Binop (Op.BitXor, a, b)
let comma a b = Binop (Op.Comma, a, b)
let neg a = Unop (Op.Neg, a)
let bnot a = Unop (Op.BitNot, a)
let lnot a = Unop (Op.LogNot, a)

let field e f = Field (e, f)
let arrow e f = Arrow (e, f)
let idx a i = Index (a, i)
let deref e = Deref e
let addr e = Addr_of e
let cast t e = Cast (t, e)
let call f args = Call (f, args)
let cond c a b = Cond (c, a, b)

let tid_linear = Thread_id Op.Global_linear_id
let lid_linear = Thread_id Op.Local_linear_id
let gid a = Thread_id (Op.Global_id a)
let lid a = Thread_id (Op.Local_id a)
let grid a = Thread_id (Op.Group_id a)

let vec2 s a b = Vec_lit (s, Ty.V2, [ a; b ])
let vec4 s args = Vec_lit (s, Ty.V4, args)
let swz e idxs = Swizzle (e, idxs)
let x_of e = Swizzle (e, [ 0 ])
let y_of e = Swizzle (e, [ 1 ])

let decl ?(space = Ty.Private) ?(volatile = false) ?init dname dty =
  Decl { dname; dty; dspace = space; dvolatile = volatile; dinit = init }

let decle ?space ?volatile dname dty e = decl ?space ?volatile ~init:(I_expr e) dname dty
let ie e = I_expr e
let il is = I_list is

let assign l r = Assign (l, A_simple, r)
let assign_op op l r = Assign (l, A_op op, r)
let expr e = Expr e
let if_ c b = If (c, b, [])
let if_else c b1 b2 = If (c, b1, b2)

let for_up name ~from ~below body =
  For
    {
      f_init = Some (decle name Ty.int (ci from));
      f_cond = Some (Binop (Op.Lt, Var name, ci below));
      f_update = Some (Assign (Var name, A_op Op.Add, ci 1));
      f_body = body;
    }

let for_ ?init ?cond ?update body =
  For { f_init = init; f_cond = cond; f_update = update; f_body = body }

let while_ c b = While (c, b)
let ret e = Return (Some e)
let ret_void = Return None
let break_ = Break
let continue_ = Continue
let barrier = Barrier Op.F_local
let barrier_g = Barrier Op.F_global
let barrier_f f = Barrier f

let func fname ret params body = { fname; ret; params; body }

let kernel1 ?(aggregates = []) ?(funcs = []) ?(extra_params = []) ?(dead_size = 0)
    name body =
  let params = ("out", Ty.Ptr (Ty.Global, Ty.ulong)) :: extra_params in
  let params =
    if Stdlib.( > ) dead_size 0 then
      params @ [ ("dead", Ty.Ptr (Ty.Global, Ty.int)) ]
    else params
  in
  {
    aggregates;
    constant_arrays = [];
    funcs;
    kernel = { fname = name; ret = Ty.Void; params; body };
    dead_size;
  }

let testcase ?(gsize = (1, 1, 1)) ?(lsize = (1, 1, 1)) ?(buffers = [])
    ?(observe = [ "out" ]) prog =
  let bufs =
    List.map
      (fun (n, (_ : Ty.t)) ->
        match List.assoc_opt n buffers with
        | Some b -> (n, b)
        | None ->
            if String.equal n "out" then (n, Buf_out)
            else if String.equal n "dead" then (n, Buf_dead false)
            else (n, Buf_zero 1))
      prog.kernel.params
  in
  { prog; global_size = gsize; local_size = lsize; buffers = bufs; observe }

let sfield ?(volatile = false) fname fty = { Ty.fname; fty; fvolatile = volatile }
let struct_ aname fields = { Ty.aname; fields; is_union = false }
let union_ aname fields = { Ty.aname; fields; is_union = true }
