(** Ergonomic constructors for MiniCL ASTs.

    Used by the hand-written bug exhibits (Figures 1 and 2), the mini
    Parboil/Rodinia benchmark ports, and the examples. Everything here is a
    thin wrapper over the {!Ast} constructors. *)

val ci : int -> Ast.expr
(** [int] constant. *)

val cu : int -> Ast.expr
(** [uint] constant. *)

val cul : int64 -> Ast.expr
(** [ulong] constant. *)

val cs : Ty.scalar -> int64 -> Ast.expr

val v : string -> Ast.expr
(** Variable reference. *)

val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( << ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >> ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( &&& ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ||| ) : Ast.expr -> Ast.expr -> Ast.expr
val band : Ast.expr -> Ast.expr -> Ast.expr
val bor : Ast.expr -> Ast.expr -> Ast.expr
val bxor : Ast.expr -> Ast.expr -> Ast.expr
val comma : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val bnot : Ast.expr -> Ast.expr
val lnot : Ast.expr -> Ast.expr

val field : Ast.expr -> string -> Ast.expr
val arrow : Ast.expr -> string -> Ast.expr
val idx : Ast.expr -> Ast.expr -> Ast.expr
val deref : Ast.expr -> Ast.expr
val addr : Ast.expr -> Ast.expr
val cast : Ty.t -> Ast.expr -> Ast.expr
val call : string -> Ast.expr list -> Ast.expr
val cond : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr

val tid_linear : Ast.expr
(** get_linear_global_id(), the [t_linear] of the paper. *)

val lid_linear : Ast.expr
val gid : Op.axis -> Ast.expr
val lid : Op.axis -> Ast.expr
val grid : Op.axis -> Ast.expr

val vec2 : Ty.scalar -> Ast.expr -> Ast.expr -> Ast.expr
val vec4 : Ty.scalar -> Ast.expr list -> Ast.expr
val swz : Ast.expr -> int list -> Ast.expr
val x_of : Ast.expr -> Ast.expr
val y_of : Ast.expr -> Ast.expr

val decl :
  ?space:Ty.space ->
  ?volatile:bool ->
  ?init:Ast.init ->
  string ->
  Ty.t ->
  Ast.stmt

val decle :
  ?space:Ty.space -> ?volatile:bool -> string -> Ty.t -> Ast.expr -> Ast.stmt
(** Declaration with an expression initialiser. *)

val ie : Ast.expr -> Ast.init
val il : Ast.init list -> Ast.init

val assign : Ast.expr -> Ast.expr -> Ast.stmt
val assign_op : Op.binop -> Ast.expr -> Ast.expr -> Ast.stmt
val expr : Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.block -> Ast.stmt
val if_else : Ast.expr -> Ast.block -> Ast.block -> Ast.stmt
val for_up : string -> from:int -> below:int -> Ast.block -> Ast.stmt
(** [for (int i = from; i < below; i++) body]. *)

val for_ :
  ?init:Ast.stmt -> ?cond:Ast.expr -> ?update:Ast.stmt -> Ast.block -> Ast.stmt

val while_ : Ast.expr -> Ast.block -> Ast.stmt
val ret : Ast.expr -> Ast.stmt
val ret_void : Ast.stmt
val break_ : Ast.stmt
val continue_ : Ast.stmt
val barrier : Ast.stmt
(** Barrier with a local fence — the paper's shorthand [barrier()]. *)

val barrier_g : Ast.stmt
val barrier_f : Op.fence -> Ast.stmt

val func : string -> Ty.t -> (string * Ty.t) list -> Ast.block -> Ast.func

val kernel1 :
  ?aggregates:Ty.aggregate list ->
  ?funcs:Ast.func list ->
  ?extra_params:(string * Ty.t) list ->
  ?dead_size:int ->
  string ->
  Ast.block ->
  Ast.program
(** A program whose kernel takes [global ulong *out] (plus [extra_params])
    — the shape every Figure 1/2 exhibit uses. *)

val testcase :
  ?gsize:int * int * int ->
  ?lsize:int * int * int ->
  ?buffers:(string * Ast.buffer_spec) list ->
  ?observe:string list ->
  Ast.program ->
  Ast.testcase
(** Defaults: 1 group of 1 thread, one [out] buffer. Extra buffers are
    appended after [out] in kernel-parameter order. *)

val sfield : ?volatile:bool -> string -> Ty.t -> Ty.field
val struct_ : string -> Ty.field list -> Ty.aggregate
val union_ : string -> Ty.field list -> Ty.aggregate
