let splitmix z =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_string s =
  let d = Digest.string s in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  splitmix !v

let full p = of_string (Pp.program_to_string p)

let stable p =
  let elide =
    {
      Ast_map.default with
      Ast_map.map_stmt =
        (function
        | Ast.Emi e -> Ast.Emi { e with emi_body = [] }
        | s -> s);
    }
  in
  of_string (Pp.program_to_string (Ast_map.program elide p))

let mix a b = splitmix (Int64.logxor a (Int64.mul b 0x9E3779B97F4A7C15L))

let to_float01 d =
  let bits = Int64.shift_right_logical d 11 in
  Int64.to_float bits /. 9007199254740992.0
