(** Canonical program digests.

    Vendor fault models key their pseudo-random misbehaviour on a digest of
    the program under compilation, in two flavours:

    - the {b full digest} changes whenever any token of the program changes
      — faults keyed on it are sensitive to EMI pruning, so EMI variants of
      one base program diverge (the optimisation-interaction bugs EMI
      testing targets, paper section 3.2);
    - the {b stable digest} elides the bodies of EMI blocks, so it is
      invariant across all EMI variants of a base — faults keyed on it are
      visible to differential testing but invisible to EMI testing (the
      "basic" miscompilations the paper found EMI powerless against, e.g.
      for Oclgrind, section 7.4). *)

val full : Ast.program -> int64
val stable : Ast.program -> int64

val mix : int64 -> int64 -> int64
(** Combine a digest with a salt (e.g. a configuration id). *)

val to_float01 : int64 -> float
(** Uniform-ish value in [0, 1) derived from a digest, for probability
    thresholds. *)
