type unop = Neg | BitNot | LogNot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | BitAnd | BitOr | BitXor
  | LogAnd | LogOr
  | Eq | Ne | Lt | Gt | Le | Ge
  | Comma

let has_ub = function
  | Add | Sub | Mul | Div | Mod | Shl | Shr -> true
  | BitAnd | BitOr | BitXor | LogAnd | LogOr
  | Eq | Ne | Lt | Gt | Le | Ge | Comma -> false

let is_comparison = function
  | Eq | Ne | Lt | Gt | Le | Ge -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr
  | BitAnd | BitOr | BitXor | LogAnd | LogOr | Comma -> false

let is_shortcircuit = function
  | LogAnd | LogOr -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr
  | BitAnd | BitOr | BitXor
  | Eq | Ne | Lt | Gt | Le | Ge | Comma -> false

type builtin =
  | Clamp
  | Safe_clamp
  | Rotate
  | Min
  | Max
  | Abs
  | Add_sat
  | Sub_sat
  | Hadd
  | Mul_hi

let builtin_name = function
  | Clamp -> "clamp"
  | Safe_clamp -> "safe_clamp"
  | Rotate -> "rotate"
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Add_sat -> "add_sat"
  | Sub_sat -> "sub_sat"
  | Hadd -> "hadd"
  | Mul_hi -> "mul_hi"

let builtin_arity = function
  | Clamp | Safe_clamp -> 3
  | Rotate | Min | Max | Add_sat | Sub_sat | Hadd | Mul_hi -> 2
  | Abs -> 1

type safe_fn =
  | Safe_add | Safe_sub | Safe_mul | Safe_div | Safe_mod
  | Safe_shl | Safe_shr | Safe_neg

let safe_fn_name = function
  | Safe_add -> "safe_add"
  | Safe_sub -> "safe_sub"
  | Safe_mul -> "safe_mul"
  | Safe_div -> "safe_div"
  | Safe_mod -> "safe_mod"
  | Safe_shl -> "safe_lshift"
  | Safe_shr -> "safe_rshift"
  | Safe_neg -> "safe_unary_minus"

let safe_fn_of_binop = function
  | Add -> Some Safe_add
  | Sub -> Some Safe_sub
  | Mul -> Some Safe_mul
  | Div -> Some Safe_div
  | Mod -> Some Safe_mod
  | Shl -> Some Safe_shl
  | Shr -> Some Safe_shr
  | BitAnd | BitOr | BitXor | LogAnd | LogOr
  | Eq | Ne | Lt | Gt | Le | Ge | Comma -> None

type atomic =
  | A_add | A_sub | A_inc | A_dec
  | A_min | A_max | A_and | A_or | A_xor
  | A_xchg
  | A_cmpxchg

let atomic_name = function
  | A_add -> "atomic_add"
  | A_sub -> "atomic_sub"
  | A_inc -> "atomic_inc"
  | A_dec -> "atomic_dec"
  | A_min -> "atomic_min"
  | A_max -> "atomic_max"
  | A_and -> "atomic_and"
  | A_or -> "atomic_or"
  | A_xor -> "atomic_xor"
  | A_xchg -> "atomic_xchg"
  | A_cmpxchg -> "atomic_cmpxchg"

let atomic_is_reduction = function
  | A_add | A_min | A_max | A_and | A_or | A_xor -> true
  | A_sub | A_inc | A_dec | A_xchg | A_cmpxchg -> false

let all_reduction_atomics = [ A_add; A_min; A_max; A_and; A_or; A_xor ]

type axis = X | Y | Z

type id_kind =
  | Global_id of axis
  | Local_id of axis
  | Group_id of axis
  | Global_size of axis
  | Local_size of axis
  | Num_groups of axis
  | Global_linear_id
  | Local_linear_id
  | Group_linear_id
  | Local_linear_size
  | Global_linear_size

let axis_index = function X -> 0 | Y -> 1 | Z -> 2

let id_kind_to_string k =
  let ax a = Printf.sprintf "%d" (axis_index a) in
  match k with
  | Global_id a -> "get_global_id(" ^ ax a ^ ")"
  | Local_id a -> "get_local_id(" ^ ax a ^ ")"
  | Group_id a -> "get_group_id(" ^ ax a ^ ")"
  | Global_size a -> "get_global_size(" ^ ax a ^ ")"
  | Local_size a -> "get_local_size(" ^ ax a ^ ")"
  | Num_groups a -> "get_num_groups(" ^ ax a ^ ")"
  | Global_linear_id -> "get_linear_global_id()"
  | Local_linear_id -> "get_linear_local_id()"
  | Group_linear_id -> "get_linear_group_id()"
  | Local_linear_size -> "get_linear_local_size()"
  | Global_linear_size -> "get_linear_global_size()"

type fence = F_local | F_global | F_both

let fence_to_string = function
  | F_local -> "CLK_LOCAL_MEM_FENCE"
  | F_global -> "CLK_GLOBAL_MEM_FENCE"
  | F_both -> "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE"

let unop_to_string = function
  | Neg -> "-"
  | BitNot -> "~"
  | LogNot -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | LogAnd -> "&&"
  | LogOr -> "||"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Comma -> ","
