(** Operators, built-in functions, atomics and thread-identity accessors of
    MiniCL.

    The binary/unary operators follow C99 as restricted by OpenCL C, applied
    component-wise to vectors. The "safe" variants correspond to the
    safe-math macros that Csmith/CLsmith wrap around operations with
    undefined behaviours (paper section 4.1): their semantics is total, with
    the fallback result conventions used by Csmith (e.g. division by zero
    yields the dividend). *)

type unop =
  | Neg        (** arithmetic negation [-x] *)
  | BitNot     (** [~x] *)
  | LogNot     (** [!x]; yields [int] 0/1 (scalars only in MiniCL) *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | BitAnd | BitOr | BitXor
  | LogAnd | LogOr               (** short-circuit on scalars *)
  | Eq | Ne | Lt | Gt | Le | Ge
  | Comma                        (** the C comma operator, cf. Fig. 2(f) *)

(** Whether the plain C operator has undefined behaviours on some integer
    inputs (signed overflow, division by zero, oversized shifts): such
    operators are wrapped by safe variants in generated code. *)
val has_ub : binop -> bool

val is_comparison : binop -> bool
val is_shortcircuit : binop -> bool

(** Vector/scalar integer built-ins exercised by the generator. [Clamp] and
    [Rotate] are the two the paper describes in detail (section 3.1). The
    [Safe_clamp] form implements the [safe_clamp] macro of section 4.1. *)
type builtin =
  | Clamp        (** clamp(x, lo, hi); UB when some lo > hi *)
  | Safe_clamp   (** (lo > hi ? x : clamp(x, lo, hi)) *)
  | Rotate       (** rotate(x, y): left-rotate, total *)
  | Min
  | Max
  | Abs          (** returns the unsigned type of the argument *)
  | Add_sat
  | Sub_sat
  | Hadd         (** (x + y) >> 1 without overflow *)
  | Mul_hi

val builtin_name : builtin -> string
val builtin_arity : builtin -> int

(** Safe scalar arithmetic wrappers, one per UB-capable operator. These are
    printed as the [safe_*] macros CLsmith emits; their interpretation is
    total. *)
type safe_fn =
  | Safe_add | Safe_sub | Safe_mul | Safe_div | Safe_mod
  | Safe_shl | Safe_shr | Safe_neg

val safe_fn_name : safe_fn -> string
val safe_fn_of_binop : binop -> safe_fn option

(** Atomic read-modify-write operations of OpenCL 1.x. All return the old
    value of the location. *)
type atomic =
  | A_add | A_sub | A_inc | A_dec
  | A_min | A_max | A_and | A_or | A_xor
  | A_xchg
  | A_cmpxchg

val atomic_name : atomic -> string

(** [true] for the commutative and associative reduction operators usable by
    ATOMIC REDUCTION mode (paper section 4.2). *)
val atomic_is_reduction : atomic -> bool

val all_reduction_atomics : atomic list

(** Thread-identity accessors (paper section 3.1). The [x/y/z] axis variants
    have OpenCL type [size_t]; the linearised forms are computed. *)
type axis = X | Y | Z

type id_kind =
  | Global_id of axis
  | Local_id of axis
  | Group_id of axis
  | Global_size of axis
  | Local_size of axis
  | Num_groups of axis
  | Global_linear_id
  | Local_linear_id
  | Group_linear_id
  | Local_linear_size    (** W_linear = Wx*Wy*Wz *)
  | Global_linear_size   (** N_linear = Nx*Ny*Nz *)

val id_kind_to_string : id_kind -> string

(** Memory-fence argument of [barrier]. *)
type fence = F_local | F_global | F_both

val fence_to_string : fence -> string

val unop_to_string : unop -> string
val binop_to_string : binop -> string
