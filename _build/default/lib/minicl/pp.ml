open Ast

(* C operator precedence levels; higher binds tighter. *)
let binop_prec : Op.binop -> int = function
  | Op.Mul | Op.Div | Op.Mod -> 13
  | Op.Add | Op.Sub -> 12
  | Op.Shl | Op.Shr -> 11
  | Op.Lt | Op.Gt | Op.Le | Op.Ge -> 10
  | Op.Eq | Op.Ne -> 9
  | Op.BitAnd -> 8
  | Op.BitXor -> 7
  | Op.BitOr -> 6
  | Op.LogAnd -> 5
  | Op.LogOr -> 4
  | Op.Comma -> 1

let prec_of : expr -> int = function
  | Const _ | Var _ | Thread_id _ | Vec_lit _ -> 16
  | Field _ | Arrow _ | Index _ | Swizzle _ | Call _ | Builtin _ | Atomic _ ->
      15
  | Unop _ | Safe_neg _ | Deref _ | Addr_of _ | Cast _ -> 14
  | Binop (op, _, _) | Safe_binop (op, _, _) -> (
      match Op.safe_fn_of_binop op with
      | Some _ -> binop_prec op
      | None -> binop_prec op)
  | Cond _ -> 2

let const_to_string (c : const) = Scalar_text.render c.value c.cty

let swizzle_name idxs =
  let letter = function
    | 0 -> "x"
    | 1 -> "y"
    | 2 -> "z"
    | 3 -> "w"
    | _ -> ""
  in
  if List.for_all (fun i -> i < 4) idxs then
    "." ^ String.concat "" (List.map letter idxs)
  else
    ".s"
    ^ String.concat ""
        (List.map (fun i -> Printf.sprintf "%x" i) idxs)

let rec expr_str ?(prec = 0) e =
  let s =
    match e with
    | Const c -> const_to_string c
    | Var v -> v
    | Thread_id k -> Op.id_kind_to_string k
    | Unop (op, a) -> Op.unop_to_string op ^ expr_str ~prec:14 a
    | Safe_neg a -> Printf.sprintf "safe_unary_minus(%s)" (expr_str a)
    | Binop (Op.Comma, a, b) ->
        Printf.sprintf "%s , %s" (expr_str ~prec:2 a) (expr_str ~prec:1 b)
    | Binop (op, a, b) ->
        let p = binop_prec op in
        Printf.sprintf "%s %s %s" (expr_str ~prec:p a) (Op.binop_to_string op)
          (expr_str ~prec:(p + 1) b)
    | Safe_binop (op, a, b) -> (
        match Op.safe_fn_of_binop op with
        | Some fn ->
            Printf.sprintf "%s(%s, %s)" (Op.safe_fn_name fn) (arg_str a)
              (arg_str b)
        | None ->
            let p = binop_prec op in
            Printf.sprintf "%s %s %s" (expr_str ~prec:p a)
              (Op.binop_to_string op)
              (expr_str ~prec:(p + 1) b))
    | Builtin (b, args) ->
        Printf.sprintf "%s(%s)" (Op.builtin_name b)
          (String.concat ", " (List.map arg_str args))
    | Call (f, args) ->
        Printf.sprintf "%s(%s)" f (String.concat ", " (List.map arg_str args))
    | Cast (t, a) -> Printf.sprintf "(%s)%s" (Ty.to_string t) (expr_str ~prec:14 a)
    | Cond (c, a, b) ->
        Printf.sprintf "%s ? %s : %s" (expr_str ~prec:3 c) (expr_str ~prec:2 a)
          (expr_str ~prec:2 b)
    | Field (a, f) -> Printf.sprintf "%s.%s" (expr_str ~prec:15 a) f
    | Arrow (a, f) -> Printf.sprintf "%s->%s" (expr_str ~prec:15 a) f
    | Index (a, i) -> Printf.sprintf "%s[%s]" (expr_str ~prec:15 a) (expr_str i)
    | Deref a -> Printf.sprintf "*%s" (expr_str ~prec:14 a)
    | Addr_of a -> Printf.sprintf "&%s" (expr_str ~prec:14 a)
    | Vec_lit (s, l, args) ->
        Printf.sprintf "(%s%d)(%s)" (Ty.scalar_name s) (Ty.vlen_to_int l)
          (String.concat ", " (List.map arg_str args))
    | Swizzle (a, idxs) -> expr_str ~prec:15 a ^ swizzle_name idxs
    | Atomic (op, p, args) ->
        Printf.sprintf "%s(%s)" (Op.atomic_name op)
          (String.concat ", " (List.map arg_str (p :: args)))
  in
  if prec_of e < prec then "(" ^ s ^ ")" else s

(* argument / initialiser position: must bind tighter than the comma *)
and arg_str e = expr_str ~prec:2 e

let expr_to_string e = expr_str e

let rec init_str = function
  | I_expr e -> arg_str e
  | I_list is -> "{ " ^ String.concat ", " (List.map init_str is) ^ " }"

(* Declarations print arrays C-style: base name[dim]...; pointers and
   qualifiers come before the name. *)
let decl_str (d : decl) =
  let rec split_arr ty =
    match ty with
    | Ty.Arr (e, n) ->
        let base, dims = split_arr e in
        (base, n :: dims)
    | _ -> (ty, [])
  in
  let base, dims = split_arr d.dty in
  let space_prefix =
    match d.dspace with
    | Ty.Private -> ""
    | sp -> Ty.space_to_string sp ^ " "
  in
  let vol = if d.dvolatile then "volatile " else "" in
  let dims_str =
    String.concat "" (List.map (fun n -> Printf.sprintf "[%d]" n) dims)
  in
  let init = match d.dinit with
    | None -> ""
    | Some i -> " = " ^ init_str i
  in
  Printf.sprintf "%s%s%s %s%s%s" space_prefix vol (Ty.to_string base) d.dname
    dims_str init

let assign_op_str = function
  | A_simple -> "="
  | A_op op -> Op.binop_to_string op ^ "="

let rec stmt_str ind s =
  let pad = String.make (ind * 2) ' ' in
  match s with
  | Decl d -> pad ^ decl_str d ^ ";"
  | Assign (l, op, r) ->
      Printf.sprintf "%s%s %s %s;" pad (expr_str ~prec:15 l) (assign_op_str op)
        (expr_str ~prec:2 r)
  | Expr e -> pad ^ expr_str e ^ ";"
  | If (c, b1, []) ->
      Printf.sprintf "%sif (%s)\n%s" pad (expr_str c) (block_str ind b1)
  | If (c, b1, b2) ->
      Printf.sprintf "%sif (%s)\n%s\n%selse\n%s" pad (expr_str c)
        (block_str ind b1) pad (block_str ind b2)
  | For { f_init; f_cond; f_update; f_body } ->
      let part = function
        | None -> ""
        | Some s -> inline_stmt_str s
      in
      let cond = match f_cond with None -> "" | Some e -> expr_str e in
      Printf.sprintf "%sfor (%s; %s; %s)\n%s" pad (part f_init) cond
        (part f_update) (block_str ind f_body)
  | While (c, b) ->
      Printf.sprintf "%swhile (%s)\n%s" pad (expr_str c) (block_str ind b)
  | Break -> pad ^ "break;"
  | Continue -> pad ^ "continue;"
  | Return None -> pad ^ "return;"
  | Return (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_str e)
  | Barrier f -> Printf.sprintf "%sbarrier(%s);" pad (Op.fence_to_string f)
  | Block b -> block_str ind b
  | Emi { emi_lo; emi_hi; emi_body; _ } ->
      Printf.sprintf "%sif (dead[%d] < dead[%d])\n%s" pad emi_hi emi_lo
        (block_str ind emi_body)

(* for-headers: a declaration or assignment without the trailing ';'. *)
and inline_stmt_str s =
  match s with
  | Decl d -> decl_str d
  | Assign (l, op, r) ->
      Printf.sprintf "%s %s %s" (expr_str ~prec:15 l) (assign_op_str op)
        (expr_str ~prec:2 r)
  | Expr e -> expr_str e
  | _ -> String.trim (stmt_str 0 s)

and block_str ind b =
  let pad = String.make (ind * 2) ' ' in
  let body = List.map (stmt_str (ind + 1)) b in
  String.concat "\n" ((pad ^ "{") :: body @ [ pad ^ "}" ])

let stmt_to_string ?(indent = 0) s = stmt_str indent s

let params_str params =
  String.concat ", "
    (List.map
       (fun (n, t) ->
         match t with
         | Ty.Ptr (sp, e) when sp <> Ty.Private ->
             Printf.sprintf "%s %s *%s" (Ty.space_to_string sp) (Ty.to_string e)
               n
         | _ -> Printf.sprintf "%s %s" (Ty.to_string t) n)
       params)

let func_to_string ?(kernel = false) (f : func) =
  let quals = if kernel then "kernel " else "" in
  Printf.sprintf "%s%s %s(%s)\n%s" quals (Ty.to_string f.ret) f.fname
    (params_str f.params) (block_str 0 f.body)

let aggregate_str (a : Ty.aggregate) =
  let kw = if a.is_union then "union" else "struct" in
  let field_str (f : Ty.field) =
    let vol = if f.fvolatile then "volatile " else "" in
    let rec split_arr ty =
      match ty with
      | Ty.Arr (e, n) ->
          let base, dims = split_arr e in
          (base, n :: dims)
      | _ -> (ty, [])
    in
    let base, dims = split_arr f.fty in
    let dims_str =
      String.concat "" (List.map (fun n -> Printf.sprintf "[%d]" n) dims)
    in
    Printf.sprintf "  %s%s %s%s;" vol (Ty.to_string base) f.fname dims_str
  in
  Printf.sprintf "typedef %s {\n%s\n} %s;" kw
    (String.concat "\n" (List.map field_str a.fields))
    a.aname

let const_array_str (ca : const_array) =
  let row r =
    "{"
    ^ String.concat ", " (Array.to_list (Array.map Int64.to_string r))
    ^ "}"
  in
  if Array.length ca.ca_data = 1 then
    Printf.sprintf "__constant %s %s[%d] = %s;" (Ty.scalar_name ca.ca_elem)
      ca.ca_name
      (Array.length ca.ca_data.(0))
      (row ca.ca_data.(0))
  else
    Printf.sprintf "__constant %s %s[%d][%d] = {%s};"
      (Ty.scalar_name ca.ca_elem) ca.ca_name (Array.length ca.ca_data)
      (Array.length ca.ca_data.(0))
      (String.concat ", " (Array.to_list (Array.map row ca.ca_data)))

let prelude =
  String.concat "\n"
    [ "/* Safe-math wrappers (cf. Csmith): total semantics, fallback = first";
      "   operand. The definitions below follow csmith's safe_math.h. */";
      "#define safe_add(a, b) __safe_binop(+, (a), (b))";
      "#define safe_sub(a, b) __safe_binop(-, (a), (b))";
      "#define safe_mul(a, b) __safe_binop(*, (a), (b))";
      "#define safe_div(a, b) ((b) == 0 ? (a) : (a) / (b))";
      "#define safe_mod(a, b) ((b) == 0 ? (a) : (a) % (b))";
      "#define safe_lshift(a, b) __safe_shift(<<, (a), (b))";
      "#define safe_rshift(a, b) __safe_shift(>>, (a), (b))";
      "#define safe_unary_minus(a) __safe_neg(a)";
      "#define safe_clamp(x, lo, hi) ((lo) > (hi) ? (x) : clamp((x), (lo), (hi)))";
      "" ]

let program_to_string ?(with_prelude = false) (p : program) =
  let buf = Buffer.create 4096 in
  if with_prelude then Buffer.add_string buf (prelude ^ "\n");
  List.iter
    (fun a -> Buffer.add_string buf (aggregate_str a ^ "\n\n"))
    p.aggregates;
  List.iter
    (fun ca -> Buffer.add_string buf (const_array_str ca ^ "\n\n"))
    p.constant_arrays;
  List.iter
    (fun f -> Buffer.add_string buf (func_to_string f ^ "\n\n"))
    p.funcs;
  Buffer.add_string buf (func_to_string ~kernel:true p.kernel ^ "\n");
  Buffer.contents buf

let buffer_spec_str = function
  | Buf_out -> "out: ulong[N_linear] zero-initialised, printed on completion"
  | Buf_dead false -> "dead: dead[j] = j (EMI blocks unreachable)"
  | Buf_dead true -> "dead: inverted, dead[j] = d-1-j (EMI blocks live)"
  | Buf_data d -> Printf.sprintf "data[%d] (host input)" (Array.length d)
  | Buf_zero n -> Printf.sprintf "zero[%d] (scratch)" n

let testcase_to_string (tc : testcase) =
  let gx, gy, gz = tc.global_size and lx, ly, lz = tc.local_size in
  let header =
    Printf.sprintf
      "/* host: global_size = (%d, %d, %d), local_size = (%d, %d, %d)\n%s */\n"
      gx gy gz lx ly lz
      (String.concat "\n"
         (List.map
            (fun (n, b) -> Printf.sprintf "   %s <- %s" n (buffer_spec_str b))
            tc.buffers))
  in
  header ^ program_to_string tc.prog

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)

let source_line_count p =
  let text = program_to_string p in
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' text))
