(** Pretty-printing of MiniCL programs to OpenCL C source text.

    The output is the concrete syntax a real CLsmith run would hand to a
    vendor's online compiler: aggregate definitions, the [__constant]
    permutation tables of BARRIER mode, the helper functions, and the kernel.
    [safe_*] operations print as the macro invocations CLsmith emits; pass
    [~with_prelude:true] to also print the macro definitions so the text is
    self-contained. EMI blocks print as their dead-by-construction guards
    [if (dead[i] < dead[j]) { ... }] (paper section 5). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : ?kernel:bool -> Ast.func -> string

val program_to_string : ?with_prelude:bool -> Ast.program -> string

val testcase_to_string : Ast.testcase -> string
(** Program text plus a host-configuration comment (NDRange sizes, buffer
    initialisation), which is what our campaign logs store for a failing
    test. *)

val pp_program : Format.formatter -> Ast.program -> unit

val source_line_count : Ast.program -> int
(** Number of non-blank source lines of the printed program — the metric
    Table 2 reports (the paper used [cloc] on kernel files). *)
