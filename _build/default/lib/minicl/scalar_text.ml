(* Rendering of scalar constants as C literals. Lives in [minicl] (rather
   than the [value] library, which depends on this one) because the
   pretty-printer needs it. Suffixes preserve the constant's type where C's
   default literal typing would change it. *)

let render (v : int64) (ty : Ty.scalar) =
  match (ty.sign, ty.width) with
  | Ty.Signed, (Ty.W8 | Ty.W16 | Ty.W32) -> Int64.to_string v
  | Ty.Unsigned, (Ty.W8 | Ty.W16 | Ty.W32) -> Printf.sprintf "%LuU" v
  | Ty.Signed, Ty.W64 -> Printf.sprintf "%LdL" v
  | Ty.Unsigned, Ty.W64 -> Printf.sprintf "%LuUL" v
