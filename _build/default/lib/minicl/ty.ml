type width = W8 | W16 | W32 | W64
type sign = Signed | Unsigned

type scalar = { width : width; sign : sign }

type vlen = V2 | V4 | V8 | V16

type space = Private | Local | Global | Constant

type t =
  | Void
  | Scalar of scalar
  | Vector of scalar * vlen
  | Named of string
  | Ptr of space * t
  | Arr of t * int

type field = { fname : string; fty : t; fvolatile : bool }

type aggregate = { aname : string; fields : field list; is_union : bool }

module String_map = Map.Make (String)

type tyenv = aggregate String_map.t

let char = Scalar { width = W8; sign = Signed }
let uchar = Scalar { width = W8; sign = Unsigned }
let short = Scalar { width = W16; sign = Signed }
let ushort = Scalar { width = W16; sign = Unsigned }
let int = Scalar { width = W32; sign = Signed }
let uint = Scalar { width = W32; sign = Unsigned }
let long = Scalar { width = W64; sign = Signed }
let ulong = Scalar { width = W64; sign = Unsigned }
let size_t = ulong

let all_scalars =
  [ { width = W8; sign = Signed }; { width = W8; sign = Unsigned };
    { width = W16; sign = Signed }; { width = W16; sign = Unsigned };
    { width = W32; sign = Signed }; { width = W32; sign = Unsigned };
    { width = W64; sign = Signed }; { width = W64; sign = Unsigned } ]

let all_vlens = [ V2; V4; V8; V16 ]

let vlen_to_int = function V2 -> 2 | V4 -> 4 | V8 -> 8 | V16 -> 16

let vlen_of_int = function
  | 2 -> Some V2
  | 4 -> Some V4
  | 8 -> Some V8
  | 16 -> Some V16
  | _ -> None

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64
let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let tyenv_of_list aggs =
  List.fold_left (fun m a -> String_map.add a.aname a m) String_map.empty aggs

let tyenv_aggregates env = List.map snd (String_map.bindings env)
let find_aggregate env name = String_map.find name env
let find_aggregate_opt env name = String_map.find_opt name env

let is_integer = function Scalar _ -> true | _ -> false
let is_vector = function Vector _ -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false

let is_aggregate env = function
  | Named n -> String_map.mem n env
  | Void | Scalar _ | Vector _ | Ptr _ | Arr _ -> false

let scalar_of = function
  | Scalar s | Vector (s, _) -> Some s
  | Void | Named _ | Ptr _ | Arr _ -> None

let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Scalar x, Scalar y -> x = y
  | Vector (x, m), Vector (y, n) -> x = y && m = n
  | Named x, Named y -> String.equal x y
  | Ptr (s, x), Ptr (t, y) -> s = t && equal x y
  | Arr (x, m), Arr (y, n) -> m = n && equal x y
  | (Void | Scalar _ | Vector _ | Named _ | Ptr _ | Arr _), _ -> false

let compare = Stdlib.compare

let scalar_name { width; sign } =
  match (sign, width) with
  | Signed, W8 -> "char"
  | Unsigned, W8 -> "uchar"
  | Signed, W16 -> "short"
  | Unsigned, W16 -> "ushort"
  | Signed, W32 -> "int"
  | Unsigned, W32 -> "uint"
  | Signed, W64 -> "long"
  | Unsigned, W64 -> "ulong"

let space_to_string = function
  | Private -> "private"
  | Local -> "local"
  | Global -> "global"
  | Constant -> "constant"

let rec to_string = function
  | Void -> "void"
  | Scalar s -> scalar_name s
  | Vector (s, l) -> scalar_name s ^ string_of_int (vlen_to_int l)
  | Named n -> n
  | Ptr (Private, t) -> to_string t ^ "*"
  | Ptr (sp, t) -> space_to_string sp ^ " " ^ to_string t ^ "*"
  | Arr (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n

let pp fmt t = Format.pp_print_string fmt (to_string t)
let pp_space fmt s = Format.pp_print_string fmt (space_to_string s)

let int_scalar = { width = W32; sign = Signed }

let promote (s : scalar) =
  match s.width with W8 | W16 -> int_scalar | W32 | W64 -> s

let usual_arith a b =
  let a = promote a and b = promote b in
  if bits a.width = bits b.width then
    if a.sign = Unsigned || b.sign = Unsigned then { a with sign = Unsigned }
    else a
  else if bits a.width > bits b.width then a
  else b

let min_value { width; sign } =
  match sign with
  | Unsigned -> 0L
  | Signed -> Int64.neg (Int64.shift_left 1L (bits width - 1))

let max_value { width; sign } =
  match sign with
  | Signed -> Int64.sub (Int64.shift_left 1L (bits width - 1)) 1L
  | Unsigned ->
      if width = W64 then -1L
      else Int64.sub (Int64.shift_left 1L (bits width)) 1L
