(** Types of the MiniCL kernel language.

    MiniCL is the OpenCL-C subset used throughout this reproduction: the
    integer scalar types of OpenCL C (with their fixed, implementation
    independent widths, cf. paper section 3.1), vectors of lengths 2/4/8/16,
    nominal struct and union types, pointers qualified by one of the four
    OpenCL memory spaces, and fixed-size arrays. *)

type width = W8 | W16 | W32 | W64
type sign = Signed | Unsigned

type scalar = { width : width; sign : sign }

(** Vector lengths supported by OpenCL C (length 3 exists only from
    OpenCL 1.1 onwards and is not generated, as in CLsmith). *)
type vlen = V2 | V4 | V8 | V16

(** The OpenCL memory spaces. [Private] is the default space. *)
type space = Private | Local | Global | Constant

type t =
  | Void
  | Scalar of scalar
  | Vector of scalar * vlen
  | Named of string  (** nominal reference to a struct or union *)
  | Ptr of space * t
  | Arr of t * int

(** A struct/union field. [fvolatile] mirrors the [volatile] qualifier,
    which several of the paper's bug exhibits depend on. *)
type field = { fname : string; fty : t; fvolatile : bool }

(** A named aggregate definition; [is_union] selects union layout. *)
type aggregate = { aname : string; fields : field list; is_union : bool }

(** Aggregate environment: resolves [Named] types. *)
type tyenv

val char : t
val uchar : t
val short : t
val ushort : t
val int : t
val uint : t
val long : t
val ulong : t
val size_t : t
(** [size_t] is modelled as [ulong], but thread-id expressions carry a
    distinct provenance used by the Intel-Xeon front-end fault (section 6
    of the paper: "invalid operands to binary expression (int and size_t)"). *)

val all_scalars : scalar list
val all_vlens : vlen list

val vlen_to_int : vlen -> int
val vlen_of_int : int -> vlen option
val bits : width -> int
val bytes_of_width : width -> int

val tyenv_of_list : aggregate list -> tyenv
val tyenv_aggregates : tyenv -> aggregate list
val find_aggregate : tyenv -> string -> aggregate
(** @raise Not_found if the name is unbound. *)

val find_aggregate_opt : tyenv -> string -> aggregate option

val is_integer : t -> bool
val is_vector : t -> bool
val is_pointer : t -> bool
val is_aggregate : tyenv -> t -> bool
val scalar_of : t -> scalar option
(** Element scalar of a scalar or vector type. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val scalar_name : scalar -> string
(** OpenCL C spelling, e.g. ["uchar"], ["long"]. *)

val to_string : t -> string
(** OpenCL C spelling of a type, e.g. ["int4"], ["global ulong*"]. *)

val pp : Format.formatter -> t -> unit
val pp_space : Format.formatter -> space -> unit

val space_to_string : space -> string

val int_scalar : scalar
(** The [int] type, target of C99 integer promotion. *)

val promote : scalar -> scalar
(** C99 integer promotion: anything narrower than [int] becomes [int]. *)

val usual_arith : scalar -> scalar -> scalar
(** C99 usual arithmetic conversions restricted to the 8 OpenCL integer
    scalar types (unsigned wins at equal rank, greater rank wins otherwise). *)

(** Ranges of a scalar type, as signed 64-bit values. For unsigned 64-bit the
    maximum is represented by [-1L] wrapped arithmetic; see {!Value.Scalar}. *)
val min_value : scalar -> int64

val max_value : scalar -> int64
