(** Static typing of MiniCL programs.

    The rules are those of OpenCL C as the paper relies on them:

    - scalars follow C99 (implicit conversions, integer promotion, usual
      arithmetic conversions);
    - vector operands are strict — there is no implicit conversion even
      between [int4] and [uint4] (paper section 4.1: "it is not possible to
      cast an int4 to a short4 or even a uint4"), so the generator must be
      type-sensitive; explicit [convert_T] casts are required;
    - logical and comparison operators apply component-wise to vectors,
      yielding 0/-1 in the same-width signed vector type;
    - atomics require a pointer to a 32-bit integer in local or global
      memory;
    - EMI guard indices must lie within the program's [dead] array.

    Pointers track the memory space of what they point at, so [&x] on a
    local-memory array yields a [local T*]. *)

exception Type_error of string

type env

val env_of_program : Ast.program -> env
(** Environment with the program's aggregates, functions and constant
    arrays in scope (no local variables). *)

val bind_var : env -> string -> Ty.t -> Ty.space -> env
val lookup_var : env -> string -> (Ty.t * Ty.space) option

val type_of_expr : env -> Ast.expr -> Ty.t
(** @raise Type_error on ill-typed expressions. *)

val space_of_lvalue : env -> Ast.expr -> Ty.space
(** Memory space an lvalue expression resides in.
    @raise Type_error if the expression is not an lvalue. *)

val is_lvalue : env -> Ast.expr -> bool

val check_func : env -> kernel:bool -> Ast.func -> unit
val check_program : Ast.program -> (unit, string) result
val check_testcase : Ast.testcase -> (unit, string) result
(** Additionally checks that buffers match kernel parameters and that the
    NDRange is well-formed (work-group size divides the global size). *)
