open Ast

type violation = { where : string; what : string }

module String_set = Set.Make (String)

(* Thread-identity accessors that can differ between threads of one group.
   Group ids and sizes are uniform within a group. *)
let id_varies_in_group : Op.id_kind -> bool = function
  | Op.Global_id _ | Op.Local_id _ | Op.Global_linear_id | Op.Local_linear_id
    ->
      true
  | Op.Group_id _ | Op.Group_linear_id | Op.Global_size _ | Op.Local_size _
  | Op.Num_groups _ | Op.Local_linear_size | Op.Global_linear_size ->
      false

(* Taint = "may differ across the threads of a group, or across schedules".
   [tainted] is the set of tainted variable names (private variables only:
   shared arrays are always treated as tainted sources when read). *)
let rec expr_tainted ~allow_group_uniform ~tainted (e : expr) =
  let recur = expr_tainted ~allow_group_uniform ~tainted in
  match e with
  | Const _ -> false
  | Var v -> String_set.mem v tainted
  | Thread_id k ->
      if allow_group_uniform then id_varies_in_group k
      else (
        match k with
        | Op.Global_size _ | Op.Local_size _ | Op.Num_groups _
        | Op.Local_linear_size | Op.Global_linear_size ->
            false
        | _ -> true)
  | Atomic _ -> true
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Field (a, _) | Swizzle (a, _) ->
      recur a
  | Arrow (a, _) | Deref a ->
      (* Conservative: pointers may reference shared memory. The generator
         only forms pointers to private data outside designated contexts. *)
      recur a
  | Addr_of a -> recur a
  | Binop (_, a, b) | Safe_binop (_, a, b) -> recur a || recur b
  | Index (a, i) -> recur a || recur i
  | Cond (a, b, c) -> recur a || recur b || recur c
  | Builtin (_, args) | Call (_, args) | Vec_lit (_, _, args) ->
      (* Calls: helper functions receive only uniform data in generated
         programs; a tainted argument taints the call. The callee's own
         conditions are validated separately. *)
      List.exists recur args

(* Variables written (as top-level assignment targets) in a block. *)
let rec assigned_vars block =
  fold_stmts
    (fun acc s ->
      match s with
      | Assign (l, _, _) -> (
          match root_var l with Some v -> v :: acc | None -> acc)
      | _ -> acc)
    [] block

and root_var = function
  | Var v -> Some v
  | Field (a, _) | Index (a, _) | Swizzle (a, _) -> root_var a
  | Arrow (a, _) | Deref a -> root_var a
  | Addr_of a -> root_var a
  | _ -> None

let rec declared_vars block =
  List.concat_map
    (function
      | Decl d -> [ d.dname ]
      | Block b -> declared_vars b
      | _ -> [])
    block

let contains_barrier block =
  fold_stmts
    (fun acc s -> acc || match s with Barrier _ -> true | _ -> false)
    false block

let contains_jump_or_call block =
  let stmt_bad = function
    | Break | Continue | Return _ -> true
    | _ -> false
  in
  fold_stmts (fun acc s -> acc || stmt_bad s) false block
  || fold_exprs
       (fun acc e -> acc || match e with Call _ -> true | _ -> false)
       false block

let is_atomic_section (s : stmt) =
  match s with
  | If (Binop (Op.Eq, Atomic (Op.A_inc, _, []), Const _), body, []) ->
      (* Last statement increments the special value; the rest only touches
         section-local declarations; no jumps, calls or barriers. *)
      let locals = String_set.of_list (declared_vars body) in
      let writes = assigned_vars body in
      let body_without_final_add =
        match List.rev body with
        | Expr (Atomic (Op.A_add, _, [ _ ])) :: rest -> Some (List.rev rest)
        | _ -> None
      in
      (match body_without_final_add with
      | None -> false
      | Some inner ->
          List.for_all (fun v -> String_set.mem v locals) writes
          && (not (contains_barrier inner))
          && (not (contains_jump_or_call inner))
          && fold_exprs
               (fun acc e ->
                 acc && match e with Atomic (Op.A_inc, _, _) -> false | _ -> true)
               true inner)
  | _ -> false

let is_group_master_guard (s : stmt) =
  match s with
  | If (Binop (Op.Eq, Thread_id Op.Local_linear_id, Const c), body, [])
    when c.value = 0L ->
      not (contains_barrier body)
  | _ -> false

let check ?(allow_group_uniform = false) (p : program) =
  let violations = ref [] in
  let report where what = violations := { where; what } :: !violations in
  let check_func (f : func) =
    (* Single forward pass with a pre-pass over assignments: a variable is
       tainted if any assignment anywhere in the function taints it. Two
       rounds reach the fixpoint for chains through loops in practice; we
       iterate until stable for correctness. *)
    let rec taint_fixpoint tainted =
      let step =
        fold_stmts
          (fun tainted s ->
            match s with
            | Assign (l, _, r) -> (
                match root_var l with
                | Some v
                  when expr_tainted ~allow_group_uniform ~tainted r
                       || expr_tainted ~allow_group_uniform ~tainted l ->
                    String_set.add v tainted
                | _ -> tainted)
            | Decl { dname; dinit = Some (I_expr e); _ }
              when expr_tainted ~allow_group_uniform ~tainted e ->
                String_set.add dname tainted
            | _ -> tainted)
          tainted f.body
      in
      if String_set.equal step tainted then tainted else taint_fixpoint step
    in
    let tainted = taint_fixpoint String_set.empty in
    let cond_ok c = not (expr_tainted ~allow_group_uniform ~tainted c) in
    let rec walk_block b = List.iter walk_stmt b
    and walk_stmt s =
      match s with
      | _ when is_atomic_section s -> () (* sanctioned *)
      | _ when is_group_master_guard s -> () (* sanctioned *)
      | If (c, b1, b2) ->
          if not (cond_ok c) then
            report f.fname
              (Printf.sprintf "non-uniform if condition: %s"
                 (Pp.expr_to_string c));
          walk_block b1;
          walk_block b2
      | While (c, b) ->
          if not (cond_ok c) then
            report f.fname
              (Printf.sprintf "non-uniform while condition: %s"
                 (Pp.expr_to_string c));
          walk_block b
      | For { f_init; f_cond; f_update; f_body } ->
          Option.iter walk_stmt f_init;
          (match f_cond with
          | Some c when not (cond_ok c) ->
              report f.fname
                (Printf.sprintf "non-uniform for condition: %s"
                   (Pp.expr_to_string c))
          | _ -> ());
          Option.iter walk_stmt f_update;
          walk_block f_body
      | Block b -> walk_block b
      | Emi { emi_body; _ } -> walk_block emi_body
      | Decl _ | Assign _ | Expr _ | Break | Continue | Return _ | Barrier _
        ->
          ()
    in
    walk_block f.body;
    (* Ternary conditions are expressions; scan them too. *)
    fold_exprs
      (fun () e ->
        match e with
        | Cond (c, _, _) when not (cond_ok c) ->
            report f.fname
              (Printf.sprintf "non-uniform ?: condition: %s"
                 (Pp.expr_to_string c))
        | _ -> ())
      () f.body
  in
  List.iter check_func (p.kernel :: p.funcs);
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)

let errors_to_string vs =
  String.concat "\n"
    (List.map (fun v -> Printf.sprintf "%s: %s" v.where v.what) vs)
