(** Static validation of the determinism discipline CLsmith enforces on
    generated kernels (paper section 4.2, "Avoiding barrier divergence").

    The rules checked here guarantee that a well-typed program yields
    schedule-independent output:

    - {b Uniform control flow}: no condition (of [if]/[while]/[for]/[?:])
      may depend on thread identity, atomic results, volatile data, or
      reads of shared (local/global) memory. A conservative syntactic taint
      analysis enforces this, with exactly two sanctioned exceptions:

      {ul
      {- the {e atomic section} pattern
         [if (atomic_inc(c) == K) { ... ; atomic_add(s, hash); }] whose body
         modifies only variables declared inside the section, performs no
         jumps, calls, or barriers (section 4.2, ATOMIC SECTION mode);}
      {- the {e group-master} pattern [if (get_linear_local_id() == 0) ...]
         whose body contains no barriers (used by ATOMIC REDUCTION mode and
         by the result-collection epilogue).}}

    - {b Barrier placement}: barriers may appear only where control flow is
      uniform — which the taint rule above implies — and never inside the
      sanctioned non-uniform patterns.

    - {b Reducibility}: MiniCL has no [goto]/[switch], so all control flow
      is structured and therefore reducible; the check is recorded for
      completeness (whether irreducible control flow is supported is
      implementation-defined in OpenCL, section 3.1).

    Programs built by {!module:Generate} always satisfy [check]; the
    hand-written bug exhibits of Figures 1 and 2 may not (e.g. Fig. 2(e)
    deliberately uses [get_group_id(0)] in a condition — which is uniform
    {e within} a group and safe for a single-group launch, so exhibits are
    validated with [~allow_group_uniform:true]). *)

type violation = {
  where : string;  (** function name *)
  what : string;   (** human-readable rule violation *)
}

val check : ?allow_group_uniform:bool -> Ast.program -> (unit, violation list) result
(** [allow_group_uniform] (default [false]) additionally permits conditions
    that depend only on group ids — uniform within a group, hence still
    divergence-free. *)

val is_atomic_section : Ast.stmt -> bool
(** Recognises the ATOMIC SECTION pattern described above. *)

val errors_to_string : violation list -> string
