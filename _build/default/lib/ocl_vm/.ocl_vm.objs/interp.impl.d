lib/ocl_vm/interp.ml: Array Ast Bytes Bytes_repr Effect Fun Hashtbl Int64 Layout List Ndrange Op Outcome Pp Printf Profile Race Rt_value Scalar Sched Stdlib String Ty Vecval
