lib/ocl_vm/interp.mli: Ast Layout Outcome Profile Race Scalar Sched
