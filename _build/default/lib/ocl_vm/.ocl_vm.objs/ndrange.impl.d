lib/ocl_vm/ndrange.ml: Fun Int64 List Op
