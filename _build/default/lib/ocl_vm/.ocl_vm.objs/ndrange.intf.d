lib/ocl_vm/ndrange.mli: Op
