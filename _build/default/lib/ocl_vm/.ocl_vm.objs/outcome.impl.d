lib/ocl_vm/outcome.ml: Format String
