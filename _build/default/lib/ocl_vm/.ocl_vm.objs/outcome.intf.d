lib/ocl_vm/outcome.mli: Format
