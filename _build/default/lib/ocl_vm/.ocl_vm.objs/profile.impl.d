lib/ocl_vm/profile.ml:
