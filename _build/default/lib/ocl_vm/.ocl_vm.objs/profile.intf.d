lib/ocl_vm/profile.mli:
