lib/ocl_vm/race.ml: Hashtbl List Printf Ty
