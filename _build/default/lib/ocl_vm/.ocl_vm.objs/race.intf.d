lib/ocl_vm/race.mli: Ty
