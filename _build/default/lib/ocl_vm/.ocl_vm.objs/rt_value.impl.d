lib/ocl_vm/rt_value.ml: Array Bytes Bytes_repr Layout List Printf Scalar String Ty Vecval
