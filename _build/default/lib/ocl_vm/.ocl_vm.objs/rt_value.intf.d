lib/ocl_vm/rt_value.mli: Bytes Layout Scalar Ty Vecval
