lib/ocl_vm/sched.ml: Array Fun Int64 Printf
