lib/ocl_vm/sched.mli:
