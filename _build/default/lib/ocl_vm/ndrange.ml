type t = { global : int * int * int; local : int * int * int }

type thread = {
  gid : int * int * int;
  lid : int * int * int;
  grp : int * int * int;
}

let make ~global ~local =
  let gx, gy, gz = global and lx, ly, lz = local in
  if gx <= 0 || gy <= 0 || gz <= 0 || lx <= 0 || ly <= 0 || lz <= 0 then
    invalid_arg "Ndrange.make: sizes must be positive";
  if gx mod lx <> 0 || gy mod ly <> 0 || gz mod lz <> 0 then
    invalid_arg "Ndrange.make: work-group size must divide global size";
  { global; local }

let n_linear { global = x, y, z; _ } = x * y * z
let w_linear { local = x, y, z; _ } = x * y * z

let num_groups_3d { global = gx, gy, gz; local = lx, ly, lz } =
  (gx / lx, gy / ly, gz / lz)

let num_groups nd =
  let x, y, z = num_groups_3d nd in
  x * y * z

let linearise (nx, ny, _nz) (x, y, z) = ((z * ny) + y) * nx + x

let t_linear nd th = linearise nd.global th.gid
let l_linear nd th = linearise nd.local th.lid
let g_linear nd th = linearise (num_groups_3d nd) th.grp

let threads_of_group nd g =
  let ngx, ngy, _ = num_groups_3d nd in
  let gz = g / (ngx * ngy) in
  let gy = g mod (ngx * ngy) / ngx in
  let gx = g mod ngx in
  let lx, ly, lz = nd.local in
  let acc = ref [] in
  for z = lz - 1 downto 0 do
    for y = ly - 1 downto 0 do
      for x = lx - 1 downto 0 do
        let gid = ((gx * lx) + x, (gy * ly) + y, (gz * lz) + z) in
        acc := { gid; lid = (x, y, z); grp = (gx, gy, gz) } :: !acc
      done
    done
  done;
  !acc

let groups nd = List.init (num_groups nd) Fun.id

let axis (x, y, z) = function Op.X -> x | Op.Y -> y | Op.Z -> z

let id_value nd th (k : Op.id_kind) =
  let v =
    match k with
    | Op.Global_id a -> axis th.gid a
    | Op.Local_id a -> axis th.lid a
    | Op.Group_id a -> axis th.grp a
    | Op.Global_size a -> axis nd.global a
    | Op.Local_size a -> axis nd.local a
    | Op.Num_groups a -> axis (num_groups_3d nd) a
    | Op.Global_linear_id -> t_linear nd th
    | Op.Local_linear_id -> l_linear nd th
    | Op.Group_linear_id -> g_linear nd th
    | Op.Local_linear_size -> w_linear nd
    | Op.Global_linear_size -> n_linear nd
  in
  Int64.of_int v
