(** NDRange geometry (paper section 3.1).

    A kernel executes over a 3-D grid of [N_linear] threads organised into
    work-groups of shape [W]; [W] must divide [N] component-wise. Linear ids
    follow the paper's definitions: [t_linear = (tz*Ny + ty)*Nx + tx], and
    similarly for group and local ids. *)

type t = private {
  global : int * int * int;  (** ~N *)
  local : int * int * int;  (** ~W *)
}

type thread = {
  gid : int * int * int;  (** global id ~t *)
  lid : int * int * int;  (** local id ~l *)
  grp : int * int * int;  (** group id ~g *)
}

val make : global:int * int * int -> local:int * int * int -> t
(** @raise Invalid_argument unless sizes are positive and [local] divides
    [global] component-wise. *)

val n_linear : t -> int
val w_linear : t -> int
val num_groups : t -> int
val num_groups_3d : t -> int * int * int

val t_linear : t -> thread -> int
val l_linear : t -> thread -> int
val g_linear : t -> thread -> int

val threads_of_group : t -> int -> thread list
(** Threads of the group with linear id [g], in ascending local-linear
    order. *)

val groups : t -> int list

val id_value : t -> thread -> Op.id_kind -> int64
(** Evaluate a thread-identity accessor for [thread]. *)
