type t =
  | Success of string
  | Build_failure of string
  | Crash of string
  | Timeout
  | Machine_crash of string
  | Ub of string

let is_computed = function
  | Success _ -> true
  | Build_failure _ | Crash _ | Timeout | Machine_crash _ | Ub _ -> false

let equal a b =
  match (a, b) with
  | Success x, Success y -> String.equal x y
  | Build_failure x, Build_failure y -> String.equal x y
  | Crash x, Crash y -> String.equal x y
  | Timeout, Timeout -> true
  | Machine_crash x, Machine_crash y -> String.equal x y
  | Ub x, Ub y -> String.equal x y
  | (Success _ | Build_failure _ | Crash _ | Timeout | Machine_crash _ | Ub _), _
    ->
      false

let to_string = function
  | Success s -> "result: " ^ s
  | Build_failure m -> "build failure: " ^ m
  | Crash m -> "crash: " ^ m
  | Timeout -> "timeout"
  | Machine_crash m -> "machine crash: " ^ m
  | Ub m -> "undefined behaviour: " ^ m

let short_tag = function
  | Success _ -> "ok"
  | Build_failure _ -> "bf"
  | Crash _ -> "c"
  | Timeout -> "to"
  | Machine_crash _ -> "mc"
  | Ub _ -> "ub"

let pp fmt t = Format.pp_print_string fmt (to_string t)
