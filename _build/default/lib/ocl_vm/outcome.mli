(** Outcome of submitting a test program to one OpenCL configuration.

    These are the observation buckets of the paper's campaign tables:
    computed results (later classified correct / wrong-code by majority
    vote), build failures ([bf]), crashes ([c]) and timeouts ([to]).
    [Machine_crash] models the host-OS crashes the paper reports for the
    AMD/Intel GPU configurations (section 6, "Machine crashes"); campaigns
    count it as a crash but it is tracked separately because it makes batch
    testing infeasible. [Ub] is reported only by the reference device when
    race or divergence detection is active — a real device would silently
    return garbage. *)

type t =
  | Success of string  (** canonical printed output *)
  | Build_failure of string  (** compiler diagnostic *)
  | Crash of string  (** compiler internal error or runtime crash *)
  | Timeout
  | Machine_crash of string
  | Ub of string  (** data race / barrier divergence detected (reference) *)

val is_computed : t -> bool
(** [true] only for [Success]: outcomes that produced a result usable for
    majority voting. *)

val equal : t -> t -> bool
val to_string : t -> string
val short_tag : t -> string
(** One of ["ok"], ["bf"], ["c"], ["to"], ["mc"], ["ub"]. *)

val pp : Format.formatter -> t -> unit
