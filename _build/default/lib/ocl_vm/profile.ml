type comma_semantics = Comma_second | Comma_first

type pointer_write_bug =
  | Pwb_none
  | Pwb_callee_barrier of { crash : bool }
  | Pwb_after_barrier

type loop_barrier_bug = Lb_ok | Lb_lose_init | Lb_crash

type union_init_bug = Ui_correct | Ui_struct_leaf_garbage

type t = {
  comma : comma_semantics;
  union_init : union_init_bug;
  struct_init_char_first_zero : bool;
  struct_copy_drop_arrays : bool;
  pointer_write_bug : pointer_write_bug;
  loop_barrier : loop_barrier_bug;
  group_id_cmp_invert : bool;
}

let reference =
  {
    comma = Comma_second;
    union_init = Ui_correct;
    struct_init_char_first_zero = false;
    struct_copy_drop_arrays = false;
    pointer_write_bug = Pwb_none;
    loop_barrier = Lb_ok;
    group_id_cmp_invert = false;
  }

let equal (a : t) (b : t) = a = b
