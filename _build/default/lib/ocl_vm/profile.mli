(** Semantic override hooks ("quirks") that vendor fault models install into
    the execution engine.

    Each hook reproduces a documented bug class from the paper's study; the
    {!reference} profile has every hook disabled and implements the OpenCL C
    semantics faithfully. Optimiser-level bugs (e.g. the Fig. 2(b) rotate
    const-folding bug) are {e not} here — those are buggy transformation
    passes in the [vendors] library; this record covers bugs that live in
    code generation / execution and therefore need semantic hooks. *)

(** Fig. 2(f), Oclgrind: "mis-handling of the comma operator" — the comma
    yields its first operand. *)
type comma_semantics = Comma_second | Comma_first

(** Pointer-mediated store bugs around barriers:
    - [Pwb_callee_barrier]: Fig. 2(c), Intel CPU 12−/13− (and, with
      [crash = true], the segmentation faults of 14−/15−): after a barrier
      executed {e inside a callee}, stores through pointer parameters are
      lost on every thread with non-zero local id (observed result [1,0]
      for two threads), or the kernel crashes.
    - [Pwb_after_barrier]: Fig. 1(d), anonymous CPU config 17: once a
      thread has executed any barrier, stores through pointer parameters
      inside callees are lost (observed result 2 instead of 3). *)
type pointer_write_bug =
  | Pwb_none
  | Pwb_callee_barrier of { crash : bool }
  | Pwb_after_barrier

(** Fig. 2(d), Intel CPU 14−/15−: a [for] loop whose body contains a
    barrier mis-executes on threads with non-zero local id — the loop
    {e initialiser}'s store is lost (observed [0,1] instead of [0,0]).
    [Lb_crash] models the same trigger crashing instead. *)
type loop_barrier_bug = Lb_ok | Lb_lose_init | Lb_crash

(** Fig. 2(a), NVIDIA 1−..4−: brace-initialising a union whose first field
    is scalar but which also contains a struct field routes the initialiser
    to the struct's first leaf (fewer bytes) and leaves the remaining bytes
    as garbage (0xff), so reading the scalar member yields e.g.
    0xffff0001. *)
type union_init_bug = Ui_correct | Ui_struct_leaf_garbage

type t = {
  comma : comma_semantics;
  union_init : union_init_bug;
  struct_init_char_first_zero : bool;
      (** Fig. 1(a), AMD with optimisations: brace-initialisation of a
          struct whose first member is [char] followed by a larger member
          only initialises the first field (the rest read as zero) —
          "these configurations appear to miscompile any struct that
          starts with char followed by a larger member". *)
  struct_copy_drop_arrays : bool;
      (** Fig. 1(b), anonymous GPU 10−/11−: whole-struct assignment fails
          to copy array-typed members (the paper's reproducer reads 0 from
          [p->f[7]] after [s = t]). The Nx = 1 grid condition is part of
          the vendor trigger, not of this hook. *)
  pointer_write_bug : pointer_write_bug;
  loop_barrier : loop_barrier_bug;
  group_id_cmp_invert : bool;
      (** Fig. 2(e), anonymous GPU 9+: comparisons whose operands involve
          [get_group_id] evaluate inverted ("this bug requires the
          presence of the global id gx; if the literal 0 is used explicitly
          instead the problem does not manifest"). *)
}

val reference : t
val equal : t -> t -> bool
