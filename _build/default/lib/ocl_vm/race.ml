type kind = Read | Write

type access = {
  loc : int;
  thread : int;
  group : int;
  kind : kind;
  atomic : bool;
  epoch : int;
  space : Ty.space;
}

type race = { first : access; second : access }

type t = {
  (* per location: compressed set of distinct access summaries *)
  by_loc : (int, access list ref) Hashtbl.t;
  mutable found : race list;
  reported : (int, unit) Hashtbl.t;
}

let create () =
  { by_loc = Hashtbl.create 256; found = []; reported = Hashtbl.create 16 }

(* A conflicting pair involves a non-atomic write: atomic read-modify-writes
   synchronise against every access of the same location, so kernels that
   update shared data exclusively through atomics (e.g. the bfs port's
   compare-and-exchange, tpacf's histogram increments) are race-free, while
   spmv/myocyte-style plain read-modify-writes are flagged. *)
let non_atomic_write x = x.kind = Write && not x.atomic

let conflict a b =
  a.thread <> b.thread
  && (non_atomic_write a || non_atomic_write b)
  && (a.group <> b.group || a.epoch = b.epoch)

let record t ~loc ~thread ~group ~kind ~atomic ~epoch ~space =
  if loc >= 0 then begin
    let summaries =
      match Hashtbl.find_opt t.by_loc loc with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add t.by_loc loc r;
          r
    in
    let a = { loc; thread; group; kind; atomic; epoch; space } in
    if not (List.mem a !summaries) then begin
      if not (Hashtbl.mem t.reported loc) then (
        match List.find_opt (fun b -> conflict a b) !summaries with
        | Some b ->
            Hashtbl.add t.reported loc ();
            t.found <- { first = b; second = a } :: t.found
        | None -> ());
      summaries := a :: !summaries
    end
  end

let races t = List.rev t.found
let has_race t = t.found <> []

let kind_str = function Read -> "read" | Write -> "write"

let race_to_string r =
  Printf.sprintf
    "data race on %s location #%d: thread %d (group %d, epoch %d) %s%s vs \
     thread %d (group %d, epoch %d) %s%s"
    (Ty.space_to_string r.first.space)
    r.first.loc r.first.thread r.first.group r.first.epoch
    (kind_str r.first.kind)
    (if r.first.atomic then " [atomic]" else "")
    r.second.thread r.second.group r.second.epoch
    (kind_str r.second.kind)
    (if r.second.atomic then " [atomic]" else "")
