(** Epoch-based data-race detection.

    The paper's definition (section 3.1): two distinct threads race on a
    common memory location if at least one modifies it and either (a) the
    threads are in different groups, or (b) they are in the same group, at
    least one access is non-atomic, and the accesses are not separated by a
    barrier synchronisation. We sharpen "at least one access is non-atomic"
    to "the modification is non-atomic": an atomic read-modify-write
    synchronises against every access of the location, so kernels that
    update shared data exclusively through atomics (the bfs port's
    compare-and-exchange, tpacf's histogram) are not flagged, while plain
    read-modify-writes (spmv, myocyte) are.

    Because OpenCL 1.x offers {e only} barriers for intra-group ordering,
    happens-before degenerates into {e barrier epochs}: every barrier
    rendezvous that fences a memory space starts a new epoch for that
    space, and two same-group accesses are unordered iff they fall in the
    same epoch. This makes precise race detection possible from a serial
    run-to-barrier execution — no interleaving exploration needed.

    This detector is how the reproduction rediscovers the data races the
    paper found in Parboil [spmv] and Rodinia [myocyte] (section 2.4). *)

type kind = Read | Write

type access = {
  loc : int;  (** location id, cf. {!Rt_value.base_loc} *)
  thread : int;  (** global linear id *)
  group : int;  (** group linear id *)
  kind : kind;
  atomic : bool;
  epoch : int;  (** barrier epoch of the location's space *)
  space : Ty.space;
}

type race = { first : access; second : access }

type t

val create : unit -> t

val record :
  t ->
  loc:int ->
  thread:int ->
  group:int ->
  kind:kind ->
  atomic:bool ->
  epoch:int ->
  space:Ty.space ->
  unit
(** Ignores private locations ([loc < 0]). *)

val races : t -> race list
(** All races found, deduplicated by location (one witness per location). *)

val has_race : t -> bool
val race_to_string : race -> string
