type cell = { loc : int; space : Ty.space; mutable content : content }

and content =
  | C_scalar of Scalar.t
  | C_vector of Vecval.t
  | C_struct of string * cell array
  | C_union of string * Bytes.t
  | C_array of Ty.t * cell array
  | C_ptr of pointer option

and pointer = { target : cell; pspace : Ty.space }

type value =
  | V_scalar of Scalar.t
  | V_vector of Vecval.t
  | V_ptr of pointer option
  | V_agg of cell

type lvalue =
  | L_cell of cell
  | L_bytes of cell * int * Ty.t
  | L_comp of cell * int

type alloc_ctx = {
  tyenv : Ty.tyenv;
  layout : Layout.policy;
  mutable next_loc : int;
}

let alloc_ctx ~tyenv ~layout () = { tyenv; layout; next_loc = 0 }
let tyenv_of ctx = ctx.tyenv
let layout_of ctx = ctx.layout

let is_shared = function
  | Ty.Local | Ty.Global -> true
  | Ty.Private | Ty.Constant -> false

let fresh_loc ctx space =
  if is_shared space then (
    let l = ctx.next_loc in
    ctx.next_loc <- ctx.next_loc + 1;
    l)
  else -1

let rec alloc ctx space (t : Ty.t) : cell =
  let loc = fresh_loc ctx space in
  let content =
    match t with
    | Ty.Void -> invalid_arg "Rt_value.alloc: void"
    | Ty.Scalar s -> C_scalar (Scalar.zero s)
    | Ty.Vector (s, l) -> C_vector (Vecval.splat s l (Scalar.zero s))
    | Ty.Ptr _ -> C_ptr None
    | Ty.Arr (e, n) -> C_array (e, Array.init n (fun _ -> alloc ctx space e))
    | Ty.Named n -> (
        let agg = Ty.find_aggregate ctx.tyenv n in
        if agg.is_union then
          C_union (n, Bytes.make (Layout.sizeof ctx.layout ctx.tyenv t) '\000')
        else
          C_struct
            ( n,
              Array.of_list
                (List.map (fun (f : Ty.field) -> alloc ctx space f.fty) agg.fields)
            ))
  in
  { loc; space; content }

let alloc_scalar_buffer ctx space elem data =
  let loc = fresh_loc ctx space in
  let cells =
    Array.map
      (fun v ->
        { loc = fresh_loc ctx space; space; content = C_scalar (Scalar.make elem v) })
      data
  in
  { loc; space; content = C_array (Ty.Scalar elem, cells) }

let alloc_matrix_buffer ctx space elem rows =
  let loc = fresh_loc ctx space in
  let row_cells = Array.map (alloc_scalar_buffer ctx space elem) rows in
  let cols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  { loc; space; content = C_array (Ty.Arr (Ty.Scalar elem, cols), row_cells) }

let base_loc = function
  | L_cell c | L_bytes (c, _, _) | L_comp (c, _) -> c.loc

let lvalue_space = function
  | L_cell c | L_bytes (c, _, _) | L_comp (c, _) -> c.space

let rec deep_copy ctx (c : cell) : cell =
  let content =
    match c.content with
    | C_scalar s -> C_scalar s
    | C_vector v -> C_vector v
    | C_struct (n, fs) -> C_struct (n, Array.map (deep_copy ctx) fs)
    | C_union (n, b) -> C_union (n, Bytes.copy b)
    | C_array (t, es) -> C_array (t, Array.map (deep_copy ctx) es)
    | C_ptr p -> C_ptr p
  in
  { loc = -1; space = Ty.Private; content }

(* Copy [src]'s contents into [dst] preserving [dst]'s cell identities
   (aggregate assignment). *)
let rec copy_into ?(skip_arrays = false) (dst : cell) (src : cell) =
  match (dst.content, src.content) with
  | C_struct (_, df), C_struct (_, sf) when Array.length df = Array.length sf
    ->
      (* the Fig. 1(b) quirk: whole-struct assignment fails to copy
         array-typed members *)
      Array.iter2
        (fun d s ->
          match d.content with
          | C_array _ when skip_arrays -> ()
          | _ -> copy_into ~skip_arrays d s)
        df sf
  | C_array (_, de), C_array (_, se) when Array.length de = Array.length se ->
      Array.iter2 (fun d s -> copy_into ~skip_arrays d s) de se
  | C_union (n, db), C_union (m, sb)
    when String.equal n m && Bytes.length db = Bytes.length sb ->
      Bytes.blit sb 0 db 0 (Bytes.length sb)
  | (C_scalar _ | C_vector _ | C_ptr _), _ -> dst.content <- src.content
  | _ -> invalid_arg "Rt_value.copy_into: shape mismatch"

(* --- byte views (paths through unions) --- *)

let aggregate_of ctx name = Ty.find_aggregate ctx.tyenv name

(* Serialise a cell tree into [buf] at [off], using the context's layout. *)
let rec serialize ctx buf off (c : cell) =
  match c.content with
  | C_scalar s -> Bytes_repr.write buf off s
  | C_vector v -> Bytes_repr.write_vector buf off v
  | C_union (_, b) -> Bytes.blit b 0 buf off (Bytes.length b)
  | C_array (t, es) ->
      let esz = Layout.sizeof ctx.layout ctx.tyenv t in
      Array.iteri (fun i e -> serialize ctx buf (off + (i * esz)) e) es
  | C_struct (n, fs) ->
      let offs = Layout.field_offsets ctx.layout ctx.tyenv (aggregate_of ctx n) in
      List.iteri
        (fun i (_, foff) -> serialize ctx buf (off + foff) fs.(i))
        offs
  | C_ptr _ -> invalid_arg "Rt_value.serialize: pointer inside a union"

(* Materialise a private cell tree of type [t] from bytes. *)
let rec materialize ctx buf off (t : Ty.t) : cell =
  let content =
    match t with
    | Ty.Scalar s -> C_scalar (Bytes_repr.read buf off s)
    | Ty.Vector (s, l) -> C_vector (Bytes_repr.read_vector buf off s l)
    | Ty.Arr (e, n) ->
        let esz = Layout.sizeof ctx.layout ctx.tyenv e in
        C_array (e, Array.init n (fun i -> materialize ctx buf (off + (i * esz)) e))
    | Ty.Named n ->
        let agg = aggregate_of ctx n in
        if agg.is_union then (
          let sz = Layout.sizeof ctx.layout ctx.tyenv t in
          let b = Bytes.make sz '\000' in
          Bytes.blit buf off b 0 sz;
          C_union (n, b))
        else
          let offs = Layout.field_offsets ctx.layout ctx.tyenv agg in
          let fields = Array.of_list agg.fields in
          C_struct
            ( n,
              Array.of_list
                (List.mapi
                   (fun i (_, foff) ->
                     materialize ctx buf (off + foff) fields.(i).Ty.fty)
                   offs) )
    | Ty.Ptr _ | Ty.Void ->
        invalid_arg "Rt_value.materialize: pointer/void inside a union"
  in
  { loc = -1; space = Ty.Private; content }

(* --- reads and writes --- *)

let is_zero_scalar = function
  | V_scalar s -> Scalar.is_zero s
  | _ -> false

let read ctx (lv : lvalue) : value =
  match lv with
  | L_cell c -> (
      match c.content with
      | C_scalar s -> V_scalar s
      | C_vector v -> V_vector v
      | C_ptr p -> V_ptr p
      | C_struct _ | C_union _ | C_array _ -> V_agg (deep_copy ctx c))
  | L_comp (c, i) -> (
      match c.content with
      | C_vector v -> V_scalar (Vecval.get v i)
      | _ -> invalid_arg "Rt_value.read: component of non-vector")
  | L_bytes (c, off, t) -> (
      let buf =
        match c.content with
        | C_union (_, b) -> b
        | _ -> invalid_arg "Rt_value.read: byte view of non-union"
      in
      match t with
      | Ty.Scalar s -> V_scalar (Bytes_repr.read buf off s)
      | Ty.Vector (s, l) -> V_vector (Bytes_repr.read_vector buf off s l)
      | _ -> V_agg (materialize ctx buf off t))

let write ?(skip_arrays = false) ctx (lv : lvalue) (v : value) =
  match lv with
  | L_cell c -> (
      match (c.content, v) with
      | C_ptr _, V_scalar _ when is_zero_scalar v ->
          (* null pointer constant *)
          c.content <- C_ptr None
      | C_scalar old, V_scalar s -> c.content <- C_scalar (Scalar.convert old.Scalar.ty s)
      | C_scalar old, V_vector _ ->
          ignore old;
          invalid_arg "Rt_value.write: vector into scalar"
      | C_vector old, V_scalar s ->
          (* scalar splat on assignment *)
          c.content <-
            C_vector (Vecval.splat (Vecval.elem_ty old) (Vecval.vlen old) s)
      | C_vector old, V_vector nv ->
          c.content <- C_vector (Vecval.convert (Vecval.elem_ty old) nv)
      | C_ptr _, V_ptr p -> c.content <- C_ptr p
      | (C_struct _ | C_union _ | C_array _), V_agg src -> copy_into ~skip_arrays c src
      | _ -> invalid_arg "Rt_value.write: shape mismatch")
  | L_comp (c, i) -> (
      match (c.content, v) with
      | C_vector old, V_scalar s ->
          let comps = Vecval.components old in
          comps.(i) <- Scalar.convert (Vecval.elem_ty old) s;
          c.content <- C_vector (Vecval.make (Vecval.elem_ty old) comps)
      | _ -> invalid_arg "Rt_value.write: component write mismatch")
  | L_bytes (c, off, t) -> (
      let buf =
        match c.content with
        | C_union (_, b) -> b
        | _ -> invalid_arg "Rt_value.write: byte view of non-union"
      in
      match (t, v) with
      | Ty.Scalar s, V_scalar x -> Bytes_repr.write buf off (Scalar.convert s x)
      | Ty.Vector (s, _), V_vector x ->
          Bytes_repr.write_vector buf off (Vecval.convert s x)
      | _, V_agg src -> serialize ctx buf off src
      | _ -> invalid_arg "Rt_value.write: byte-view shape mismatch")

(* --- path navigation --- *)

let field_info ctx agg_name fname =
  let agg = aggregate_of ctx agg_name in
  let rec find i = function
    | [] -> invalid_arg ("Rt_value: no field " ^ fname ^ " in " ^ agg_name)
    | (f : Ty.field) :: _ when String.equal f.fname fname -> (i, f)
    | _ :: rest -> find (i + 1) rest
  in
  find 0 agg.fields

let cell_field ctx (lv : lvalue) fname : lvalue =
  match lv with
  | L_cell ({ content = C_struct (n, fs); _ } as _c) ->
      let i, _ = field_info ctx n fname in
      L_cell fs.(i)
  | L_cell ({ content = C_union (n, _); _ } as c) ->
      let _, f = field_info ctx n fname in
      let off = Layout.field_offset ctx.layout ctx.tyenv ~agg:n ~field:fname in
      L_bytes (c, off, f.fty)
  | L_bytes (c, off, Ty.Named n) ->
      let _, f = field_info ctx n fname in
      let foff = Layout.field_offset ctx.layout ctx.tyenv ~agg:n ~field:fname in
      L_bytes (c, off + foff, f.fty)
  | _ -> invalid_arg ("Rt_value.cell_field: bad base for ." ^ fname)

let cell_index ctx (lv : lvalue) i : (lvalue, string) result =
  let oob n =
    Error
      (Printf.sprintf "out-of-bounds access: index %d of array of size %d" i n)
  in
  match lv with
  | L_cell { content = C_array (_, es); _ } ->
      if i < 0 || i >= Array.length es then oob (Array.length es)
      else Ok (L_cell es.(i))
  | L_bytes (c, off, Ty.Arr (e, n)) ->
      if i < 0 || i >= n then oob n
      else
        let esz = Layout.sizeof ctx.layout ctx.tyenv e in
        Ok (L_bytes (c, off + (i * esz), e))
  | _ -> Error "indexing a non-array value"

let scalar_buffer_contents (c : cell) =
  match c.content with
  | C_array (_, es) ->
      Array.map
        (fun e ->
          match e.content with
          | C_scalar s -> s
          | _ -> invalid_arg "Rt_value.scalar_buffer_contents: non-scalar")
        es
  | _ -> invalid_arg "Rt_value.scalar_buffer_contents: non-array"
