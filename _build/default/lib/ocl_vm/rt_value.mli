(** Runtime memory model of the device simulator.

    Storage is a tree of mutable {!cell}s: scalars, vectors and pointers are
    leaf cells; structs and arrays are cells holding their member cells;
    unions are byte-backed so that reads through one member reinterpret the
    bytes stored through another (this is where byte-level bugs like the
    NVIDIA union-initialisation miscompilation of Fig. 2(a) live). A pointer
    value is a reference to a cell plus the memory space it came from.

    Every cell in {e shared} (local or global) memory carries a unique
    location id used by the {!Race} detector; private cells carry [-1]. *)

type cell = private {
  loc : int;
  space : Ty.space;
  mutable content : content;
}

and content =
  | C_scalar of Scalar.t
  | C_vector of Vecval.t
  | C_struct of string * cell array  (** aggregate name, field cells *)
  | C_union of string * Bytes.t
  | C_array of Ty.t * cell array  (** element type, element cells *)
  | C_ptr of pointer option  (** [None] = null / uninitialised *)

and pointer = { target : cell; pspace : Ty.space }

(** Expression values. Aggregates are represented by detached cell trees
    (produced by deep copy on reads, consumed by deep copy on writes). *)
type value =
  | V_scalar of Scalar.t
  | V_vector of Vecval.t
  | V_ptr of pointer option
  | V_agg of cell

(** An lvalue: either a whole cell, a typed byte window into a union cell
    (for access paths that traverse a union member), or a single component
    of a vector cell. *)
type lvalue =
  | L_cell of cell
  | L_bytes of cell * int * Ty.t  (** union cell, byte offset, viewed type *)
  | L_comp of cell * int  (** vector cell, component index *)

type alloc_ctx
(** Allocation context: aggregate environment, layout policy (used for union
    member offsets and sizes) and the shared-location id generator. *)

val alloc_ctx :
  tyenv:Ty.tyenv -> layout:Layout.policy -> unit -> alloc_ctx

val tyenv_of : alloc_ctx -> Ty.tyenv
val layout_of : alloc_ctx -> Layout.policy

val alloc : alloc_ctx -> Ty.space -> Ty.t -> cell
(** Fresh zero-initialised storage of the given type. Shared-space cells
    (and their sub-cells) receive fresh location ids. *)

val alloc_scalar_buffer : alloc_ctx -> Ty.space -> Ty.scalar -> int64 array -> cell
(** A C_array of scalar cells initialised from host data. *)

val alloc_matrix_buffer :
  alloc_ctx -> Ty.space -> Ty.scalar -> int64 array array -> cell
(** A 2-D array of scalar cells (used for the BARRIER-mode [__constant]
    permutation tables). *)

val base_loc : lvalue -> int
(** Location id for race recording ([-1] if private). *)

val lvalue_space : lvalue -> Ty.space

val read : alloc_ctx -> lvalue -> value
(** Aggregate reads deep-copy. Union-window reads deserialise. *)

val write : ?skip_arrays:bool -> alloc_ctx -> lvalue -> value -> unit
(** Aggregate writes deep-copy into the destination, preserving destination
    location ids. Union-window writes serialise. Writing a zero scalar into
    a pointer cell stores a null pointer (C's null pointer constant).
    [skip_arrays] implements the Fig. 1(b) vendor quirk: whole-struct
    copies do not copy array-typed members.
    @raise Invalid_argument on a type mismatch (cannot happen for programs
    accepted by {!Typecheck}). *)

val cell_field : alloc_ctx -> lvalue -> string -> lvalue
(** Field selection, entering byte-view mode at union boundaries. *)

val cell_index : alloc_ctx -> lvalue -> int -> (lvalue, string) result
(** Array element selection with bounds checking; [Error] describes the
    out-of-bounds access (a runtime crash). *)

val scalar_buffer_contents : cell -> Scalar.t array
(** Contents of a [C_array] of scalar cells (for printing results). *)

val deep_copy : alloc_ctx -> cell -> cell
(** Detached private copy (used for aggregate rvalues). *)
