type t = Ascending | Descending | Rotating of int | Seeded of int

(* splitmix64 step; good enough to derive per-epoch permutations. *)
let mix seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let order policy ~epoch n =
  match policy with
  | Ascending -> Array.init n Fun.id
  | Descending -> Array.init n (fun i -> n - 1 - i)
  | Rotating r ->
      let start = (r + epoch) mod max n 1 in
      Array.init n (fun i -> (start + i) mod n)
  | Seeded s ->
      let a = Array.init n Fun.id in
      let state = ref (mix (Int64.of_int ((s * 1_000_003) + epoch))) in
      for i = n - 1 downto 1 do
        state := mix !state;
        let j = Int64.to_int (Int64.unsigned_rem !state (Int64.of_int (i + 1))) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      a

let default = Ascending
let all_for_testing = [ Ascending; Descending; Rotating 1; Seeded 7; Seeded 42 ]

let to_string = function
  | Ascending -> "ascending"
  | Descending -> "descending"
  | Rotating r -> Printf.sprintf "rotating(%d)" r
  | Seeded s -> Printf.sprintf "seeded(%d)" s
