(** Work-group scheduling policies.

    The simulator runs the threads of a group one at a time between barrier
    rendezvous points (atomicity at this granularity is a sound
    sequentialisation of OpenCL 1.x intra-group concurrency). The policy
    decides the order, which determines e.g. which thread is the [rnd]-th to
    increment an atomic-section counter (paper section 4.2: "which thread
    this is (if any) depends on the order in which threads are scheduled").
    Deterministic, communicating CLsmith kernels must produce the same
    output under every policy — a property the test suite checks. *)

type t =
  | Ascending  (** local-linear order *)
  | Descending
  | Rotating of int
      (** round [r]: start at thread [r mod W_linear], wrap around —
          different epochs see different winners *)
  | Seeded of int  (** per-epoch pseudo-random permutation *)

val order : t -> epoch:int -> int -> int array
(** [order policy ~epoch n] is a permutation of [0..n-1]: the order in which
    the [n] threads of a group run during barrier interval [epoch]. *)

val default : t
val all_for_testing : t list
val to_string : t -> string
