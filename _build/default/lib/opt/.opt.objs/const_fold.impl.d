lib/opt/const_fold.ml: Ast Ast_map List Op Pass Scalar Ty
