lib/opt/const_fold.mli: Ast Pass
