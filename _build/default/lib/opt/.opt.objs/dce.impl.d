lib/opt/dce.ml: Ast Ast_map Hashtbl List Pass
