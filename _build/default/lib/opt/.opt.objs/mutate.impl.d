lib/opt/mutate.ml: Ast Ast_map Int64 Op
