lib/opt/mutate.mli: Ast
