lib/opt/pass.ml: Ast List
