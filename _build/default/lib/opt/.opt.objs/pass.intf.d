lib/opt/pass.mli: Ast
