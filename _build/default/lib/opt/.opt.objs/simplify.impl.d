lib/opt/simplify.ml: Ast Ast_map List Op Option Pass Ty
