lib/opt/simplify.mli: Pass
