lib/opt/unroll.ml: Ast Ast_map Int64 List Op Pass String Ty
