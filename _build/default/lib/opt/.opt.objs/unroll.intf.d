lib/opt/unroll.mli: Pass
