open Ast

let scalar_of_const (c : const) = Scalar.make c.cty c.value
let const_of_scalar (s : Scalar.t) =
  Const { value = Scalar.to_int64 s; cty = Scalar.ty s }

let as_const = function Const c -> Some (scalar_of_const c) | _ -> None

(* purity: no calls or atomics (assignments cannot occur in expressions) *)
let rec pure (e : expr) =
  match e with
  | Call _ | Atomic _ -> false
  | Const _ | Var _ | Thread_id _ -> true
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Field (a, _) | Arrow (a, _)
  | Deref a | Addr_of a | Swizzle (a, _) ->
      pure a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) -> pure a && pure b
  | Cond (a, b, c) -> pure a && pure b && pure c
  | Builtin (_, args) | Vec_lit (_, _, args) -> List.for_all pure args

let all_zero_const_vector = function
  | Vec_lit (_, _, args) ->
      List.for_all
        (function Const c -> c.value = 0L | _ -> false)
        args
  | Const c -> c.value = 0L
  | _ -> false

let builtin_const b (args : Scalar.t list) : Scalar.t option =
  match (b, args) with
  | (Op.Clamp | Op.Safe_clamp), [ x; lo; hi ] -> Some (Scalar.clamp x lo hi)
  | Op.Rotate, [ x; y ] -> Some (Scalar.rotate x y)
  | Op.Min, [ x; y ] -> Some (Scalar.min_v x y)
  | Op.Max, [ x; y ] -> Some (Scalar.max_v x y)
  | Op.Abs, [ x ] -> Some (Scalar.abs_v x)
  | Op.Add_sat, [ x; y ] -> Some (Scalar.add_sat x y)
  | Op.Sub_sat, [ x; y ] -> Some (Scalar.sub_sat x y)
  | Op.Hadd, [ x; y ] -> Some (Scalar.hadd x y)
  | Op.Mul_hi, [ x; y ] -> Some (Scalar.mul_hi x y)
  | _ -> None

let fold_node ~rotate_zero_bug (e : expr) : expr =
  match e with
  (* the Fig. 2(b) bug: must be examined before correct rotate folding *)
  | Builtin (Op.Rotate, [ x; y ]) when rotate_zero_bug && all_zero_const_vector y
    -> (
      match x with
      | Vec_lit (s, l, _) ->
          let ones = const_of_scalar (Scalar.make s (-1L)) in
          Vec_lit (s, l, List.init (Ty.vlen_to_int l) (fun _ -> ones))
      | Const c -> const_of_scalar (Scalar.make c.cty (-1L))
      | _ -> e)
  | Binop (op, a, b) -> (
      match (op, as_const a, as_const b) with
      | Op.Comma, _, _ -> if pure a then b else e
      | Op.LogAnd, Some x, _ ->
          if Scalar.is_zero x then Const { value = 0L; cty = Ty.int_scalar }
          else Binop (Op.Ne, b, Ast.const_of_int 0)
      | Op.LogOr, Some x, _ ->
          if Scalar.is_true x then Const { value = 1L; cty = Ty.int_scalar }
          else Binop (Op.Ne, b, Ast.const_of_int 0)
      | _, Some x, Some y -> const_of_scalar (Scalar.binop op x y)
      | _ -> e)
  | Safe_binop (op, a, b) -> (
      match (as_const a, as_const b) with
      | Some x, Some y -> const_of_scalar (Scalar.safe_binop op x y)
      | _ -> e)
  | Unop (op, a) -> (
      match as_const a with
      | Some x ->
          const_of_scalar
            (match op with
            | Op.Neg -> Scalar.neg x
            | Op.BitNot -> Scalar.bit_not x
            | Op.LogNot -> Scalar.log_not x)
      | None -> e)
  | Safe_neg a -> (
      match as_const a with
      | Some x -> const_of_scalar (Scalar.safe_neg x)
      | None -> e)
  | Cast (Ty.Scalar s, a) -> (
      match as_const a with
      | Some x -> const_of_scalar (Scalar.convert s x)
      | None -> e)
  | Builtin (b, args) -> (
      match
        List.fold_right
          (fun a acc ->
            match (acc, as_const a) with
            | Some l, Some c -> Some (c :: l)
            | _ -> None)
          args (Some [])
      with
      | Some consts -> (
          match builtin_const b consts with
          | Some r -> const_of_scalar r
          | None -> e)
      | None -> e)
  | Cond (c, a, b) -> (
      match as_const c with
      | Some x -> if Scalar.is_true x then a else b
      | None -> e)
  | _ -> e

let fold_expr ?(rotate_zero_bug = false) e =
  Ast_map.expr
    { Ast_map.default with Ast_map.map_expr = fold_node ~rotate_zero_bug }
    e

let pass ?(rotate_zero_bug = false) () : Pass.t =
  {
    Pass.name = (if rotate_zero_bug then "const-fold[rotate-bug]" else "const-fold");
    run =
      Ast_map.program
        { Ast_map.default with Ast_map.map_expr = fold_node ~rotate_zero_bug };
  }
