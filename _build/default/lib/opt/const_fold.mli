(** Constant folding.

    Folds scalar operators, safe-math wrappers, built-ins, casts, constant
    conditionals and short-circuit operators, using exactly the runtime
    semantics of {!Scalar} so the transformation is observation-equivalent
    on the reference device.

    [rotate_zero_bug] installs the Fig. 2(b) Intel miscompilation: a
    [rotate(x, 0)] whose shift vector is a constant zero is folded to
    all-ones lanes (the paper found the x component of
    [rotate((uint2)(1,1), (uint2)(0,0))] "incorrectly constant-folded to
    0xffffffff"). *)

val pass : ?rotate_zero_bug:bool -> unit -> Pass.t

val fold_expr : ?rotate_zero_bug:bool -> Ast.expr -> Ast.expr
(** Exposed for the IR const-folder tests. *)
