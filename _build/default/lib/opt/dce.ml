open Ast

let rec pure (e : expr) =
  match e with
  | Call _ | Atomic _ -> false
  | Const _ | Var _ | Thread_id _ -> true
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Field (a, _) | Arrow (a, _)
  | Deref a | Addr_of a | Swizzle (a, _) ->
      pure a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) -> pure a && pure b
  | Cond (a, b, c) -> pure a && pure b && pure c
  | Builtin (_, args) | Vec_lit (_, _, args) -> List.for_all pure args

let rec pure_init = function
  | I_expr e -> pure e
  | I_list is -> List.for_all pure_init is

(* names referenced anywhere in a function body, except as the declared
   name of a declaration *)
let used_names (f : func) =
  let tbl = Hashtbl.create 64 in
  let add v = Hashtbl.replace tbl v () in
  fold_exprs (fun () e -> match e with Var v -> add v | _ -> ()) () f.body;
  tbl

let truncate_after_jump (b : block) : block =
  let rec go = function
    | [] -> []
    | ((Return _ | Break | Continue) as s) :: _ -> [ s ]
    | s :: rest -> s :: go rest
  in
  go b

let pass () : Pass.t =
  let run_func (f : func) =
    let used = used_names f in
    let drop_dead_decls (b : block) =
      List.filter
        (fun s ->
          match s with
          | Decl d ->
              Hashtbl.mem used d.dname
              || (match d.dinit with Some i -> not (pure_init i) | None -> false)
          | _ -> true)
        b
    in
    let mapper =
      {
        Ast_map.default with
        Ast_map.map_block = (fun b -> drop_dead_decls (truncate_after_jump b));
      }
    in
    Ast_map.func mapper f
  in
  {
    Pass.name = "dce";
    run =
      (fun p ->
        { p with funcs = List.map run_func p.funcs; kernel = run_func p.kernel });
  }
