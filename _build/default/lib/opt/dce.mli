(** Dead-code elimination.

    - statements following an unconditional [return]/[break]/[continue] in
      a block are removed;
    - locally declared variables whose names are never referenced again in
      the enclosing function and whose initialisers are pure are removed
      (generated programs have globally unique names, so a name-based
      criterion is exact for them; hand-written exhibits keep shadowing
      away from this pass).

    The EMI guard [if (dead[i] < dead[j])] is opaque to this pass — the
    compiler "knows nothing about the runtime values of elements of dead"
    (paper section 5) — so EMI blocks are never removed, only their
    contents transform like any other code. *)

val pass : unit -> Pass.t
