open Ast

(* Mutation kinds, all total (no crashes, no nondeterminism):
   1. flip a plain comparison operator (Lt<->Le, Gt<->Ge, Eq<->Ne);
   2. swap the operands of a safe-math binary operation;
   3. perturb a constant multiplier (k -> k+1) in a plain multiplication;
   4. swap the arms of a conditional expression. *)

let flip_cmp = function
  | Op.Lt -> Op.Le
  | Op.Le -> Op.Lt
  | Op.Gt -> Op.Ge
  | Op.Ge -> Op.Gt
  | Op.Eq -> Op.Ne
  | Op.Ne -> Op.Eq
  | op -> op

let is_candidate (e : expr) =
  match e with
  (* comparisons against literals are usually loop bounds or the group
     master guard: flipping those turns wrong code into out-of-bounds
     crashes, which dedicated crash faults model instead *)
  | Binop ((Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Ne), Const _, _)
  | Binop ((Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Ne), _, Const _) ->
      false
  | Binop ((Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Ne), _, _) -> true
  | Safe_binop ((Op.Sub | Op.Div | Op.Mod | Op.Shl | Op.Shr), _, _) -> true
  | Binop (Op.Mul, _, Const _) -> true
  | Cond (_, _, _) -> true
  | _ -> false

let mutate_expr (e : expr) : expr =
  match e with
  | Binop (((Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Ne) as op), a, b) ->
      Binop (flip_cmp op, a, b)
  | Safe_binop (((Op.Sub | Op.Div | Op.Mod | Op.Shl | Op.Shr) as op), a, b) ->
      Safe_binop (op, b, a)
  | Binop (Op.Mul, a, Const c) ->
      Binop (Op.Mul, a, Const { c with value = Int64.add c.value 1L })
  | Cond (c, a, b) -> Cond (c, b, a)
  | e -> e

let candidate_count (p : program) =
  fold_program_blocks
    (fun acc b ->
      fold_exprs (fun n e -> if is_candidate e then n + 1 else n) acc b)
    0 p

let apply ~seed (p : program) : program =
  let total = candidate_count p in
  if total = 0 then p
  else begin
    let target =
      Int64.to_int (Int64.unsigned_rem seed (Int64.of_int total))
    in
    let counter = ref (-1) in
    let mapper =
      {
        Ast_map.default with
        Ast_map.map_expr =
          (fun e ->
            if is_candidate e then begin
              incr counter;
              if !counter = target then mutate_expr e else e
            end
            else e);
      }
    in
    Ast_map.program mapper p
  end
