(** Seeded miscompilation injection — the engine behind the "generic wrong
    code" fault models of the vendor configurations.

    A real miscompilation is a deterministic function of the compiler and
    the input program: the same kernel always comes out wrong in the same
    way, and an arbitrarily small change to the program can tip it into or
    out of the bug (that sensitivity is precisely what EMI variants
    exploit, paper section 3.2). [apply ~seed prog] models this: from the
    seed (derived by the fault model from the configuration identity and a
    program digest) it deterministically selects one mutation site in the
    program and applies a small semantics-changing rewrite — swapping the
    operands of a non-commutative operator, perturbing a constant,
    flipping a comparison, or dropping an assignment.

    Mutations never touch EMI guards (only their bodies can change), never
    touch atomic or barrier statements, and never introduce or remove
    declarations, so mutated programs still type-check, still satisfy the
    determinism validator, and fail only by computing wrong values. *)

val candidate_count : Ast.program -> int
(** Number of mutation sites the program offers. *)

val apply : seed:int64 -> Ast.program -> Ast.program
(** Deterministically mutate one site ([prog] unchanged if it offers no
    sites). *)
