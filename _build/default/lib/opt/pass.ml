type t = { name : string; run : Ast.program -> Ast.program }

let pipeline passes prog =
  List.fold_left (fun p pass -> pass.run p) prog passes

let names passes = List.map (fun p -> p.name) passes
