(** Optimisation-pass framework for the simulated vendor compilers.

    A pass is a whole-program AST transformation. Correct passes preserve
    the reference semantics (a property the test suite checks on generated
    programs); buggy variants — constructed by the [vendors] fault models —
    deliberately do not. *)

type t = { name : string; run : Ast.program -> Ast.program }

val pipeline : t list -> Ast.program -> Ast.program
val names : t list -> string list
