open Ast

let is_zero = function Const c -> c.value = 0L | _ -> false

let rec pure (e : expr) =
  match e with
  | Call _ | Atomic _ -> false
  | Const _ | Var _ | Thread_id _ -> true
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Field (a, _) | Arrow (a, _)
  | Deref a | Addr_of a | Swizzle (a, _) ->
      pure a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) -> pure a && pure b
  | Cond (a, b, c) -> pure a && pure b && pure c
  | Builtin (_, args) | Vec_lit (_, _, args) -> List.for_all pure args

(* Identities are only applied when the neutral constant has type [int]:
   then C's usual arithmetic conversions give [x + 0] and [x] observationally
   identical typings (any wider-ranked constant could change the common
   type and with it the signedness of later comparisons). *)
let int_const v = function
  | Const c -> c.value = v && c.cty = Ty.int_scalar
  | _ -> false

let simplify_node (e : expr) : expr =
  match e with
  | Binop (Op.Add, x, z) when int_const 0L z -> x
  | Binop (Op.Add, z, x) when int_const 0L z -> x
  | Binop (Op.Sub, x, z) when int_const 0L z -> x
  | Binop (Op.Mul, x, o) when int_const 1L o -> x
  | Binop (Op.Mul, o, x) when int_const 1L o -> x
  | Binop (Op.BitOr, x, z) when int_const 0L z -> x
  | Binop (Op.BitXor, x, z) when int_const 0L z -> x
  | Unop (Op.LogNot, Unop (Op.LogNot, Unop (Op.LogNot, x))) ->
      Unop (Op.LogNot, x)
  | e -> e

let rec stmt_pure_expr (s : stmt) =
  match s with Expr e -> pure e | _ -> false

and simplify_block (b : block) : block =
  List.concat_map
    (fun s ->
      match s with
      | If (c, _, b2) when is_zero c -> [ Block b2 ]
      | If (Const k, b1, _) when k.value <> 0L -> [ Block b1 ]
      | While (c, _) when is_zero c -> []
      | For { f_init; f_cond = Some c; _ } when is_zero c ->
          Option.to_list f_init
      | Block [] -> []
      | Block [ (Decl _ as d) ] -> [ Block [ d ] ] (* keep scope *)
      | Block inner when List.for_all (fun s -> match s with Decl _ -> false | _ -> true) inner ->
          inner (* flatten blocks without declarations *)
      | _ when stmt_pure_expr s -> []
      | s -> [ s ])
    b

let pass () : Pass.t =
  {
    Pass.name = "simplify";
    run =
      Ast_map.program
        {
          Ast_map.default with
          Ast_map.map_expr = simplify_node;
          Ast_map.map_block = simplify_block;
        };
  }
