(** Algebraic and control-flow simplification.

    Expression identities ([x + 0], [x * 1], [x & 0], [!!x] in boolean
    context, double negation) and statement-level cleanups (constant-
    condition [if]/[while]/[for], block flattening). Statement-level
    simplification never deletes declarations. *)

val pass : unit -> Pass.t
