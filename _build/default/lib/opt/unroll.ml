open Ast

let max_iterations = 4

let has_jump_or_iv_write iv (b : block) =
  let jump =
    fold_stmts
      (fun acc s ->
        acc || match s with Break | Continue | Return _ -> true | _ -> false)
      false b
  in
  let writes_iv =
    fold_stmts
      (fun acc s ->
        acc
        ||
        match s with
        | Assign (Var v, _, _) -> String.equal v iv
        | _ -> false)
      false b
  in
  jump || writes_iv

let subst_var name value =
  {
    Ast_map.default with
    Ast_map.map_expr =
      (function
      | Var v when String.equal v name -> const_of_int value
      | e -> e);
  }

(* recognise: for (int i = 0; i < K; i += S) with constant K, S > 0 *)
let unroll_stmt (s : stmt) : stmt =
  match s with
  | For
      {
        f_init =
          Some (Decl { dname; dty = Ty.Scalar _; dinit = Some (I_expr (Const c0)); _ });
        f_cond = Some (Binop (Op.Lt, Var v, Const bound));
        f_update = Some (Assign (Var v', A_op Op.Add, Const step));
        f_body;
      }
    when String.equal dname v && String.equal v v'
         && c0.value = 0L && step.value > 0L
         && bound.value >= 0L
         && not (has_jump_or_iv_write v f_body) ->
      let k = Int64.to_int bound.value and s' = Int64.to_int step.value in
      let trip = (k + s' - 1) / s' in
      if trip > max_iterations then s
      else
        Block
          (List.init trip (fun j ->
               Block (Ast_map.block (subst_var v (j * s')) f_body)))
  | s -> s

let pass () : Pass.t =
  {
    Pass.name = "unroll";
    run = Ast_map.program { Ast_map.default with Ast_map.map_stmt = unroll_stmt };
  }
