(** Bounded loop unrolling.

    [for (int i = 0; i < K; i += S)] loops with constant small trip counts
    (at most 4 iterations) whose bodies do not [break]/[continue] and do
    not reassign the induction variable are replaced by the iterated body
    with the induction variable substituted by constants. Each unrolled
    iteration is wrapped in its own block so declarations stay scoped. *)

val pass : unit -> Pass.t
