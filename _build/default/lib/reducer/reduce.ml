open Ast

type stats = {
  initial_stmts : int;
  final_stmts : int;
  attempts : int;
  accepted : int;
}

type op = Remove | Unwrap

(* Apply [op] to the [target]-th statement (depth-first postorder over
   blocks). Returns the new program and whether the target was hit. *)
let apply_at (p : program) target op : program =
  let counter = ref (-1) in
  let map_block b =
    List.concat_map
      (fun s ->
        incr counter;
        if !counter <> target then [ s ]
        else
          match op with
          | Remove -> []
          | Unwrap -> (
              match s with
              | If (_, b1, b2) -> b1 @ b2
              | For { f_init; f_body; _ } -> Option.to_list f_init @ f_body
              | While (_, b) -> b
              | Block b -> b
              | Emi e -> e.emi_body
              | _ -> [ s ]))
      b
  in
  Ast_map.map_blocks map_block p

let stmt_positions (p : program) =
  fold_program_blocks
    (fun acc b -> acc + fold_stmts (fun n _ -> n + 1) 0 b)
    0 p

(* concurrency-aware well-formedness: types still check, and the reference
   device sees neither races nor divergence *)
let well_formed (tc : testcase) =
  match Typecheck.check_testcase tc with
  | Error _ -> false
  | Ok () -> (
      let config =
        { Interp.default_config with Interp.detect_races = true }
      in
      match (Interp.run ~config tc).Interp.outcome with
      | Outcome.Ub _ -> false
      | _ -> true)

let reduce ?(max_attempts = 5000) ~interesting (tc : testcase) =
  let attempts = ref 0 and accepted = ref 0 in
  let initial_stmts = stmt_positions tc.prog in
  let try_variant current target op =
    incr attempts;
    let prog' = apply_at current.prog target op in
    if prog' = current.prog then None
    else
      let tc' = { current with prog = prog' } in
      if well_formed tc' && interesting tc' then Some tc' else None
  in
  let rec fixpoint current =
    if !attempts >= max_attempts then current
    else begin
      let n = stmt_positions current.prog in
      let rec scan i =
        if i >= n || !attempts >= max_attempts then None
        else
          match try_variant current i Remove with
          | Some tc' -> Some tc'
          | None -> (
              match try_variant current i Unwrap with
              | Some tc' -> Some tc'
              | None -> scan (i + 1))
      in
      match scan 0 with
      | Some tc' ->
          incr accepted;
          fixpoint tc'
      | None -> current
    end
  in
  let final = fixpoint tc in
  ( final,
    {
      initial_stmts;
      final_stmts = stmt_positions final.prog;
      attempts = !attempts;
      accepted = !accepted;
    } )
