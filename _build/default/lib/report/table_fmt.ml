let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad_row r = r @ List.init (cols - List.length r) (fun _ -> "") in
  let all = List.map pad_row all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let line r =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
         r)
    |> fun s -> String.trim (" " ^ s) |> fun s -> s
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match all with
  | h :: rest ->
      String.concat "\n" ((line h :: sep :: List.map line rest) @ [ "" ])
  | [] -> ""

let render_titled ~title ~header rows =
  Printf.sprintf "%s\n%s\n%s" title (String.make (String.length title) '=')
    (render ~header rows)

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.1f" (100.0 *. float num /. float den)
