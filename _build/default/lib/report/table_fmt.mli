(** Plain-text table rendering for the campaign reports. *)

val render : header:string list -> string list list -> string
(** Columns are sized to their widest cell; the header is underlined. *)

val render_titled : title:string -> header:string list -> string list list -> string

val pct : int -> int -> string
(** [pct num den]: percentage with one decimal, ["-"] when [den = 0]. *)
