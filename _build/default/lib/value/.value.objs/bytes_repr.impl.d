lib/value/bytes_repr.ml: Array Bytes Char Int64 Scalar Ty Vecval
