lib/value/bytes_repr.mli: Bytes Scalar Ty Vecval
