lib/value/layout.ml: List Ty
