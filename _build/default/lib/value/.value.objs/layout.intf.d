lib/value/layout.mli: Ty
