lib/value/scalar.ml: Format Int64 Op Printf Ty
