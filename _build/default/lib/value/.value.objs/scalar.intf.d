lib/value/scalar.mli: Format Op Ty
