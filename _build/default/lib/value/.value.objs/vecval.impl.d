lib/value/vecval.ml: Array Format List Op Printf Scalar String Ty
