lib/value/vecval.mli: Format Op Scalar Ty
