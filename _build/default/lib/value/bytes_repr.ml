let write buf off (x : Scalar.t) =
  let n = Ty.bytes_of_width x.ty.width in
  let v = Scalar.to_int64 x in
  for i = 0 to n - 1 do
    Bytes.set buf (off + i)
      (Char.chr
         (Int64.to_int
            (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let read buf off (ty : Ty.scalar) =
  let n = Ty.bytes_of_width ty.width in
  let v = ref 0L in
  for i = n - 1 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  Scalar.make ty !v

let write_vector buf off v =
  let n = Ty.bytes_of_width (Vecval.elem_ty v).width in
  for i = 0 to Vecval.length v - 1 do
    write buf (off + (i * n)) (Vecval.get v i)
  done

let read_vector buf off elem vl =
  let n = Ty.bytes_of_width elem.Ty.width in
  let comps =
    Array.init (Ty.vlen_to_int vl) (fun i -> read buf (off + (i * n)) elem)
  in
  Vecval.make elem comps

let fill buf off len c = Bytes.fill buf off len c
