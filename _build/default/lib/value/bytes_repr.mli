(** Little-endian byte-level (de)serialisation of scalar values.

    Used in two places: the byte-addressed IR memory of the vendor-compiler
    back end, and the union semantics of the reference interpreter (reading
    a union member reinterprets the bytes last stored through any member,
    exactly as a real device does — the NVIDIA union-initialisation bug of
    Fig. 2(a) is only expressible at this level). *)

val write : Bytes.t -> int -> Scalar.t -> unit
(** [write buf off x] stores [x]'s [sizeof] bytes at [off], little-endian. *)

val read : Bytes.t -> int -> Ty.scalar -> Scalar.t
(** [read buf off ty] loads a [ty] value from [off]. *)

val write_vector : Bytes.t -> int -> Vecval.t -> unit
val read_vector : Bytes.t -> int -> Ty.scalar -> Ty.vlen -> Vecval.t

val fill : Bytes.t -> int -> int -> char -> unit
(** [fill buf off len c]: used by fault models to plant "garbage" bytes
    (e.g. the 0xff pattern behind Fig. 2(a)'s 0xffff0001 result). *)
