type policy = { pack_char_first_structs : bool }

let standard = { pack_char_first_structs = false }
let char_first_bug = { pack_char_first_structs = true }

let align_up off a = (off + a - 1) / a * a

let scalar_size (s : Ty.scalar) = Ty.bytes_of_width s.width

let struct_is_char_first env (agg : Ty.aggregate) =
  ignore env;
  (not agg.is_union)
  &&
  match agg.fields with
  | { fty = Ty.Scalar s; _ } :: rest when scalar_size s = 1 ->
      List.exists
        (fun (f : Ty.field) ->
          match f.fty with
          | Ty.Scalar s' -> scalar_size s' > 1
          | Ty.Vector _ | Ty.Ptr _ | Ty.Named _ | Ty.Arr _ -> true
          | Ty.Void -> false)
        rest
  | _ -> false

let rec sizeof policy env (t : Ty.t) =
  match t with
  | Ty.Void -> invalid_arg "Layout.sizeof: void"
  | Ty.Scalar s -> scalar_size s
  | Ty.Vector (s, l) -> scalar_size s * Ty.vlen_to_int l
  | Ty.Ptr _ -> 8
  | Ty.Arr (e, n) -> n * sizeof policy env e
  | Ty.Named n -> aggregate_size policy env (Ty.find_aggregate env n)

and alignof policy env (t : Ty.t) =
  match t with
  | Ty.Void -> invalid_arg "Layout.alignof: void"
  | Ty.Scalar s -> scalar_size s
  | Ty.Vector (s, l) -> scalar_size s * Ty.vlen_to_int l
  | Ty.Ptr _ -> 8
  | Ty.Arr (e, _) -> alignof policy env e
  | Ty.Named n -> aggregate_align policy env (Ty.find_aggregate env n)

and aggregate_align policy env (agg : Ty.aggregate) =
  List.fold_left
    (fun a (f : Ty.field) -> max a (alignof policy env f.fty))
    1 agg.fields

and packed policy env agg =
  policy.pack_char_first_structs && struct_is_char_first env agg

and field_offsets policy env (agg : Ty.aggregate) =
  if agg.is_union then List.map (fun (f : Ty.field) -> (f.Ty.fname, 0)) agg.fields
  else
    let pack = packed policy env agg in
    let _, acc =
      List.fold_left
        (fun (off, acc) (f : Ty.field) ->
          let off =
            if pack then off else align_up off (alignof policy env f.fty)
          in
          (off + sizeof policy env f.fty, (f.fname, off) :: acc))
        (0, []) agg.fields
    in
    List.rev acc

and aggregate_size policy env (agg : Ty.aggregate) =
  let a = aggregate_align policy env agg in
  if agg.is_union then
    let m =
      List.fold_left
        (fun m (f : Ty.field) -> max m (sizeof policy env f.fty))
        0 agg.fields
    in
    align_up (max m 1) a
  else
    let pack = packed policy env agg in
    let last =
      List.fold_left
        (fun off (f : Ty.field) ->
          let off =
            if pack then off else align_up off (alignof policy env f.fty)
          in
          off + sizeof policy env f.fty)
        0 agg.fields
    in
    if pack then max last 1 else align_up (max last 1) a

let field_offset policy env ~agg ~field =
  let a = Ty.find_aggregate env agg in
  match List.assoc_opt field (field_offsets policy env a) with
  | Some off -> off
  | None -> raise Not_found
