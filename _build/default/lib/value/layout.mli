(** C-style data layout: sizes, alignments and field offsets for MiniCL
    types, as a vendor compiler's lowering computes them.

    The layout engine is parameterised by a {!policy} so that vendor fault
    models can install buggy layouts. The paper reports that AMD's compilers
    "appear to miscompile any struct that starts with [char] followed by a
    larger member" (Fig. 1(a)) — the [pack_char_first_structs] policy
    reproduces that family of bugs when installed on the store path only. *)

type policy = {
  pack_char_first_structs : bool;
      (** lay out a struct with no padding when its first field is a 1-byte
          scalar and a later field is wider *)
}

val standard : policy
val char_first_bug : policy

val sizeof : policy -> Ty.tyenv -> Ty.t -> int
(** Size in bytes. Scalars have their natural size, vectors are
    [length * elem] (power-of-two lengths only, so this is also their
    alignment), pointers are 8 bytes, arrays are [n * sizeof elem], structs
    include padding per the policy, unions are the padded maximum.
    @raise Invalid_argument on [Void]. *)

val alignof : policy -> Ty.tyenv -> Ty.t -> int

val field_offset : policy -> Ty.tyenv -> agg:string -> field:string -> int
(** Byte offset of [field] within aggregate [agg].
    @raise Not_found if the aggregate or field does not exist. *)

val field_offsets : policy -> Ty.tyenv -> Ty.aggregate -> (string * int) list
(** All fields with their offsets, in declaration order. *)

val struct_is_char_first : Ty.tyenv -> Ty.aggregate -> bool
(** The Fig. 1(a) trigger shape: first field is a 1-byte scalar and some
    later field is wider. *)
