type t = { v : int64; ty : Ty.scalar }

let mask_of_width : Ty.width -> int64 = function
  | Ty.W8 -> 0xFFL
  | Ty.W16 -> 0xFFFFL
  | Ty.W32 -> 0xFFFFFFFFL
  | Ty.W64 -> -1L

(* Normalise an arbitrary bit pattern to the representation invariant:
   sign-extended for signed types, zero-extended for unsigned. *)
let normalize (ty : Ty.scalar) bits =
  match ty.width with
  | Ty.W64 -> bits
  | w ->
      let n = Ty.bits w in
      let low = Int64.logand bits (mask_of_width w) in
      (match ty.sign with
      | Ty.Unsigned -> low
      | Ty.Signed ->
          let sign_bit = Int64.shift_left 1L (n - 1) in
          if Int64.logand low sign_bit = 0L then low
          else Int64.logor low (Int64.lognot (mask_of_width w)))

let make ty bits = { v = normalize ty bits; ty }
let of_int ty n = make ty (Int64.of_int n)
let to_int64 x = x.v
let ty x = x.ty
let zero ty = { v = 0L; ty }
let one ty = make ty 1L
let is_zero x = x.v = 0L
let is_true x = x.v <> 0L
let equal a b = a.ty = b.ty && a.v = b.v

let convert ty x = make ty x.v

let int_ty = Ty.int_scalar
let bool_result b = { v = (if b then 1L else 0L); ty = int_ty }
let promote = Ty.promote
let usual_arithmetic_conversion = Ty.usual_arith

let is_signed x = x.ty.sign = Ty.Signed

let unsigned_lt a b = Int64.unsigned_compare a b < 0

let div_raw ~signed a b =
  if b = 0L then None
  else if signed && a = Int64.min_int && b = -1L then None
  else Some (if signed then Int64.div a b else Int64.unsigned_div a b)

let rem_raw ~signed a b =
  if b = 0L then None
  else if signed && a = Int64.min_int && b = -1L then Some 0L
  else Some (if signed then Int64.rem a b else Int64.unsigned_rem a b)

let compare_values a b =
  (* Precondition: operands already share a common type. *)
  if is_signed a then Int64.compare a.v b.v else Int64.unsigned_compare a.v b.v

let shift_amount_in_range ty y =
  let w = Int64.of_int (Ty.bits ty.Ty.width) in
  if y.ty.sign = Ty.Signed then y.v >= 0L && y.v < w else unsigned_lt y.v w

let binop (op : Op.binop) a b =
  match op with
  | Op.Comma -> b
  | Op.LogAnd -> bool_result (is_true a && is_true b)
  | Op.LogOr -> bool_result (is_true a || is_true b)
  | Op.Eq | Op.Ne | Op.Lt | Op.Gt | Op.Le | Op.Ge ->
      let common = usual_arithmetic_conversion a.ty b.ty in
      let a = convert common a and b = convert common b in
      let c = compare_values a b in
      bool_result
        (match op with
        | Op.Eq -> c = 0
        | Op.Ne -> c <> 0
        | Op.Lt -> c < 0
        | Op.Gt -> c > 0
        | Op.Le -> c <= 0
        | Op.Ge -> c >= 0
        | _ -> assert false)
  | Op.Shl | Op.Shr ->
      (* The left operand's promoted type is the result type; the shift
         count is reduced modulo the width to stay total. *)
      let rty = promote a.ty in
      let a' = convert rty a in
      let w = Ty.bits rty.width in
      let amt = Int64.to_int (Int64.logand b.v (Int64.of_int (w - 1))) in
      let amt = (amt mod w + w) mod w in
      (match op with
      | Op.Shl -> make rty (Int64.shift_left a'.v amt)
      | Op.Shr ->
          if rty.sign = Ty.Signed then make rty (Int64.shift_right a'.v amt)
          else
            let bits = Int64.logand a'.v (mask_of_width rty.width) in
            make rty (Int64.shift_right_logical bits amt)
      | _ -> assert false)
  | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Mod | Op.BitAnd | Op.BitOr
  | Op.BitXor ->
      let common = usual_arithmetic_conversion a.ty b.ty in
      let a = convert common a and b = convert common b in
      let signed = common.sign = Ty.Signed in
      let bits =
        match op with
        | Op.Add -> Int64.add a.v b.v
        | Op.Sub -> Int64.sub a.v b.v
        | Op.Mul -> Int64.mul a.v b.v
        | Op.Div -> (
            match div_raw ~signed a.v b.v with Some r -> r | None -> a.v)
        | Op.Mod -> (
            match rem_raw ~signed a.v b.v with Some r -> r | None -> a.v)
        | Op.BitAnd -> Int64.logand a.v b.v
        | Op.BitOr -> Int64.logor a.v b.v
        | Op.BitXor -> Int64.logxor a.v b.v
        | _ -> assert false
      in
      make common bits

let neg x =
  let rty = promote x.ty in
  make rty (Int64.neg (convert rty x).v)

let bit_not x =
  let rty = promote x.ty in
  make rty (Int64.lognot (convert rty x).v)

let log_not x = bool_result (is_zero x)

(* Signed overflow predicates on values already in a common signed type.
   Because narrower values are sign-extended into int64, overflow checks on
   the int64 result against the type's bounds are exact. *)
let fits ty v = v >= Ty.min_value ty && v <= Ty.max_value ty

let add_overflows ty a b =
  if ty.Ty.width = Ty.W64 then
    (* int64 arithmetic itself wraps: detect via sign rules. *)
    (a > 0L && b > 0L && Int64.add a b < 0L)
    || (a < 0L && b < 0L && Int64.add a b >= 0L)
  else not (fits ty (Int64.add a b))

let sub_overflows ty a b =
  if ty.Ty.width = Ty.W64 then
    (a >= 0L && b < 0L && Int64.sub a b < 0L)
    || (a < 0L && b > 0L && Int64.sub a b >= 0L)
  else not (fits ty (Int64.sub a b))

let mul_overflows ty a b =
  if a = 0L || b = 0L then false
  else if ty.Ty.width = Ty.W64 then
    let p = Int64.mul a b in
    Int64.div p b <> a || (a = -1L && b = Int64.min_int)
    || (b = -1L && a = Int64.min_int)
  else not (fits ty (Int64.mul a b))

let safe_binop (op : Op.binop) a b =
  match op with
  | Op.Add | Op.Sub | Op.Mul ->
      let common = usual_arithmetic_conversion a.ty b.ty in
      let a' = convert common a and b' = convert common b in
      if common.sign = Ty.Unsigned then binop op a' b'
      else
        let overflows =
          match op with
          | Op.Add -> add_overflows common a'.v b'.v
          | Op.Sub -> sub_overflows common a'.v b'.v
          | Op.Mul -> mul_overflows common a'.v b'.v
          | _ -> assert false
        in
        if overflows then a' else binop op a' b'
  | Op.Div | Op.Mod ->
      let common = usual_arithmetic_conversion a.ty b.ty in
      let a' = convert common a and b' = convert common b in
      let undefined =
        b'.v = 0L
        || (common.sign = Ty.Signed && a'.v = Ty.min_value common && b'.v = -1L)
      in
      if undefined then a' else binop op a' b'
  | Op.Shl ->
      let rty = promote a.ty in
      let a' = convert rty a in
      if
        (rty.sign = Ty.Signed && a'.v < 0L)
        || (not (shift_amount_in_range rty b))
        || rty.sign = Ty.Signed
           && b.v >= 0L
           && a'.v > Int64.shift_right (Ty.max_value rty) (Int64.to_int b.v)
      then a'
      else binop Op.Shl a' b
  | Op.Shr ->
      let rty = promote a.ty in
      let a' = convert rty a in
      if (rty.sign = Ty.Signed && a'.v < 0L) || not (shift_amount_in_range rty b)
      then a'
      else binop Op.Shr a' b
  | Op.BitAnd | Op.BitOr | Op.BitXor | Op.LogAnd | Op.LogOr | Op.Eq | Op.Ne
  | Op.Lt | Op.Gt | Op.Le | Op.Ge | Op.Comma ->
      binop op a b

let safe_neg x =
  let rty = promote x.ty in
  let x' = convert rty x in
  if rty.sign = Ty.Signed && x'.v = Ty.min_value rty then x' else neg x'

let rotate x y =
  let w = Ty.bits x.ty.width in
  let amt = Int64.to_int (Int64.logand y.v (Int64.of_int (w - 1))) in
  if amt = 0 then x
  else
    let bits = Int64.logand x.v (mask_of_width x.ty.width) in
    let rotated =
      Int64.logor (Int64.shift_left bits amt)
        (Int64.shift_right_logical bits (w - amt))
    in
    make x.ty rotated

let clamp x lo hi =
  (* safe_clamp semantics: undefined case (lo > hi) returns x. *)
  if compare_values (convert x.ty lo) (convert x.ty hi) > 0 then x
  else
    let lo = convert x.ty lo and hi = convert x.ty hi in
    if compare_values x lo < 0 then lo
    else if compare_values x hi > 0 then hi
    else x

let min_v a b = if compare_values a (convert a.ty b) <= 0 then a else convert a.ty b
let max_v a b = if compare_values a (convert a.ty b) >= 0 then a else convert a.ty b

let abs_v x =
  let uty = { x.ty with Ty.sign = Ty.Unsigned } in
  if is_signed x && x.v < 0L then make uty (Int64.neg x.v) else make uty x.v

let add_sat a b =
  let b = convert a.ty b in
  let sum = Int64.add a.v b.v in
  if a.ty.sign = Ty.Unsigned then
    if a.ty.width = Ty.W64 then
      if unsigned_lt sum a.v then make a.ty (-1L) else make a.ty sum
    else if sum > Ty.max_value a.ty then make a.ty (Ty.max_value a.ty)
    else make a.ty sum
  else if a.ty.width = Ty.W64 then
    if add_overflows a.ty a.v b.v then
      make a.ty (if a.v > 0L then Int64.max_int else Int64.min_int)
    else make a.ty sum
  else if sum > Ty.max_value a.ty then make a.ty (Ty.max_value a.ty)
  else if sum < Ty.min_value a.ty then make a.ty (Ty.min_value a.ty)
  else make a.ty sum

let sub_sat a b =
  let b = convert a.ty b in
  let diff = Int64.sub a.v b.v in
  if a.ty.sign = Ty.Unsigned then
    if unsigned_lt a.v b.v then zero a.ty else make a.ty diff
  else if a.ty.width = Ty.W64 then
    if sub_overflows a.ty a.v b.v then
      make a.ty (if a.v >= 0L then Int64.max_int else Int64.min_int)
    else make a.ty diff
  else if diff > Ty.max_value a.ty then make a.ty (Ty.max_value a.ty)
  else if diff < Ty.min_value a.ty then make a.ty (Ty.min_value a.ty)
  else make a.ty diff

let hadd a b =
  let b = convert a.ty b in
  (* (a >> 1) + (b >> 1) + (a & b & 1): exact for both signednesses, with
     signed >> rounding toward negative infinity as OpenCL requires. *)
  let shr1 v =
    if a.ty.sign = Ty.Signed then Int64.shift_right v 1
    else Int64.shift_right_logical (Int64.logand v (mask_of_width a.ty.width)) 1
  in
  let carry = Int64.logand (Int64.logand a.v b.v) 1L in
  make a.ty (Int64.add (Int64.add (shr1 a.v) (shr1 b.v)) carry)

(* High 64 bits of the unsigned 128-bit product, via 32-bit limbs. *)
let umul_hi64 a b =
  let mask32 = 0xFFFFFFFFL in
  let a0 = Int64.logand a mask32 and a1 = Int64.shift_right_logical a 32 in
  let b0 = Int64.logand b mask32 and b1 = Int64.shift_right_logical b 32 in
  let ll = Int64.mul a0 b0 in
  let lh = Int64.mul a0 b1 in
  let hl = Int64.mul a1 b0 in
  let hh = Int64.mul a1 b1 in
  let mid =
    Int64.add
      (Int64.add (Int64.logand lh mask32) (Int64.logand hl mask32))
      (Int64.shift_right_logical ll 32)
  in
  Int64.add
    (Int64.add hh (Int64.shift_right_logical mid 32))
    (Int64.add (Int64.shift_right_logical lh 32) (Int64.shift_right_logical hl 32))

let mul_hi a b =
  let b = convert a.ty b in
  match a.ty.width with
  | Ty.W8 | Ty.W16 | Ty.W32 ->
      let p = Int64.mul a.v b.v in
      make a.ty (Int64.shift_right p (Ty.bits a.ty.width))
  | Ty.W64 ->
      if a.ty.sign = Ty.Unsigned then make a.ty (umul_hi64 a.v b.v)
      else
        (* signed mulhi from unsigned mulhi: correct for the sign of each
           negative operand (standard identity). *)
        let u = umul_hi64 a.v b.v in
        let u = if a.v < 0L then Int64.sub u b.v else u in
        let u = if b.v < 0L then Int64.sub u a.v else u in
        make a.ty u

let to_string x =
  if x.ty.sign = Ty.Unsigned then
    if x.v >= 0L then Int64.to_string x.v else Printf.sprintf "%Lu" x.v
  else Int64.to_string x.v

let to_hex_string x =
  Printf.sprintf "0x%Lx" (Int64.logand x.v (mask_of_width x.ty.width))

let pp fmt x = Format.pp_print_string fmt (to_string x)
