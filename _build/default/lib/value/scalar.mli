(** Exact two's-complement fixed-width integers.

    OpenCL C mandates fixed widths and a two's-complement representation for
    signed integers (paper section 3.1), so bit-level operations such as
    [rotate] are well-defined on signed data. A scalar value carries its
    OpenCL type; the representation invariant is that [v] is the
    sign-extension (signed) or zero-extension (unsigned) of the value's low
    bits, with [ulong] values occupying the full [int64] range interpreted
    unsigned. All operations below are total: plain C operators get their
    wrap-around result even where C99 leaves them undefined (the undefined
    cases are excluded by construction in generated programs; see
    {!Minicl.Validate}), and the [safe_*] family implements the Csmith
    fallback conventions exactly. *)

type t = private { v : int64; ty : Ty.scalar }

val make : Ty.scalar -> int64 -> t
(** [make ty bits] normalises [bits] to [ty]'s width and signedness. *)

val of_int : Ty.scalar -> int -> t
val to_int64 : t -> int64
val ty : t -> Ty.scalar

val zero : Ty.scalar -> t
val one : Ty.scalar -> t

val is_zero : t -> bool
val is_true : t -> bool
(** C truth value: non-zero. *)

val equal : t -> t -> bool

val convert : Ty.scalar -> t -> t
(** C integer conversion (truncate / extend, then reinterpret). *)

(** {1 Plain C operators (wrap-around totalisation)} *)

val neg : t -> t
val bit_not : t -> t
val log_not : t -> t
(** [!x]: [int] 0 or 1. *)

val binop : Op.binop -> t -> t -> t
(** Applies usual arithmetic conversions to the operands first; comparisons
    and logical operators yield [int] 0/1. [Comma] yields the second operand.
    Division/modulo by zero yields the dividend (matching the [safe_]
    fallback so the totalisation is consistent); shift amounts are taken
    modulo the width. *)

val usual_arithmetic_conversion : Ty.scalar -> Ty.scalar -> Ty.scalar
(** C99 usual arithmetic conversions restricted to the 8 OpenCL integer
    scalar types (everything narrower than [int] promotes to [int]). *)

(** {1 Csmith safe-math semantics} *)

val safe_binop : Op.binop -> t -> t -> t
(** Total semantics of the [safe_add]/[safe_sub]/.../[safe_rshift] macros:
    when the plain operation would be undefined (signed overflow, division
    by zero, [INT_MIN / -1], negative or oversized shift, left-shift
    overflow), the result is the (converted) first operand. Operators
    without undefined behaviour defer to {!binop}. *)

val safe_neg : t -> t
(** [safe_unary_minus]: the minimum signed value negates to itself. *)

(** {1 OpenCL built-ins (scalar versions; lifted to vectors in {!Vecval})} *)

val rotate : t -> t -> t
(** Left-rotate [x] by [y] bits; the count is reduced modulo the width, so
    the operation is total (paper section 3.1). *)

val clamp : t -> t -> t -> t
(** [clamp x lo hi]; undefined when [lo > hi] — this implementation then
    returns [x], which is exactly the [safe_clamp] macro of section 4.1. *)

val min_v : t -> t -> t
val max_v : t -> t -> t
val abs_v : t -> t
(** [abs]: result has the unsigned type of the argument. *)

val add_sat : t -> t -> t
val sub_sat : t -> t -> t
val hadd : t -> t -> t
(** [(x + y) >> 1] computed without overflow. *)

val mul_hi : t -> t -> t
(** High half of the full-width product. *)

val to_string : t -> string
(** Decimal rendering (unsigned types render as unsigned). *)

val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit
