type t = { elem : Ty.scalar; comps : Scalar.t array }

let make elem comps =
  (match Ty.vlen_of_int (Array.length comps) with
  | Some _ -> ()
  | None ->
      invalid_arg
        (Printf.sprintf "Vecval.make: invalid vector length %d"
           (Array.length comps)));
  { elem; comps = Array.map (Scalar.convert elem) comps }

let splat elem vl x =
  { elem; comps = Array.make (Ty.vlen_to_int vl) (Scalar.convert elem x) }

let elem_ty v = v.elem
let length v = Array.length v.comps

let vlen v =
  match Ty.vlen_of_int (Array.length v.comps) with
  | Some l -> l
  | None -> assert false

let get v i = v.comps.(i)
let components v = Array.copy v.comps

let swizzle v idxs =
  let n = List.length idxs in
  match Ty.vlen_of_int n with
  | None -> None
  | Some _ ->
      let comps = Array.of_list (List.map (fun i -> v.comps.(i)) idxs) in
      Some { elem = v.elem; comps }

let equal a b =
  a.elem = b.elem
  && Array.length a.comps = Array.length b.comps
  && Array.for_all2 Scalar.equal a.comps b.comps

let map f v = { elem = v.elem; comps = Array.map f v.comps }

let map2 f a b =
  if Array.length a.comps <> Array.length b.comps then
    invalid_arg "Vecval.map2: length mismatch";
  { elem = a.elem; comps = Array.map2 f a.comps b.comps }

let binop op a b =
  if Op.is_comparison op then
    (* Vector comparisons yield 0 / all-ones in the signed type of the
       element width. *)
    let rty = { a.elem with Ty.sign = Ty.Signed } in
    let f x y =
      if Scalar.is_true (Scalar.binop op x y) then Scalar.make rty (-1L)
      else Scalar.zero rty
    in
    { elem = rty; comps = Array.map2 f a.comps b.comps }
  else
    let comps = Array.map2 (Scalar.binop op) a.comps b.comps in
    let elem = if Array.length comps > 0 then (comps.(0)).Scalar.ty else a.elem in
    { elem; comps = Array.map (Scalar.convert elem) comps }

let convert elem v = { elem; comps = Array.map (Scalar.convert elem) v.comps }

let to_string v =
  let comps = Array.to_list (Array.map Scalar.to_string v.comps) in
  Printf.sprintf "(%s%d)(%s)" (Ty.scalar_name v.elem) (Array.length v.comps)
    (String.concat ", " comps)

let pp fmt v = Format.pp_print_string fmt (to_string v)
