(** OpenCL vector values: fixed-length tuples of {!Scalar.t} sharing one
    element type. All C operators and built-ins lift component-wise (paper
    section 3.1); comparison operators on vectors yield a vector whose
    components are 0 or -1 (all-ones), as OpenCL C specifies. *)

type t

val make : Ty.scalar -> Scalar.t array -> t
(** Components are converted to the element type. The array length must be a
    valid OpenCL vector length (2/4/8/16). *)

val splat : Ty.scalar -> Ty.vlen -> Scalar.t -> t
val elem_ty : t -> Ty.scalar
val length : t -> int
val vlen : t -> Ty.vlen
val get : t -> int -> Scalar.t
val components : t -> Scalar.t array
(** A fresh copy. *)

val swizzle : t -> int list -> t option
(** Component selection; [None] when the selected count is 1 (use {!get}) or
    not a valid vector length. Indices must be in range. *)

val equal : t -> t -> bool

val map : (Scalar.t -> Scalar.t) -> t -> t
val map2 : (Scalar.t -> Scalar.t -> Scalar.t) -> t -> t -> t

val binop : Op.binop -> t -> t -> t
(** Component-wise; comparisons produce 0 / -1 components in the signed type
    of the same width. Operands must have equal lengths; element types are
    reconciled component-wise by the scalar operation and the result is
    normalised to a single element type following OpenCL's rule that both
    operands must have the same element type (the generator guarantees
    this). *)

val convert : Ty.scalar -> t -> t
(** [convert_T]: element-wise C conversion. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
