lib/vendors/config.ml: Fault Features List Profile
