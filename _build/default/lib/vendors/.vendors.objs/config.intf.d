lib/vendors/config.mli: Fault
