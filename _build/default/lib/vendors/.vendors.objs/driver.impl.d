lib/vendors/driver.ml: Ast Config Const_fold Dce Digest_util Fault Features Int64 Interp Lazy List Mutate Outcome Pass Profile Sched Simplify Unroll
