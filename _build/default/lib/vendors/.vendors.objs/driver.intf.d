lib/vendors/driver.mli: Ast Config Features Outcome
