lib/vendors/fault.ml: Digest_util Features Int64 Profile
