lib/vendors/fault.mli: Features Profile
