lib/vendors/features.ml: Ast Digest_util Hashtbl Int64 Layout List Op Ty
