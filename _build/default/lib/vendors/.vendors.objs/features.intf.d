lib/vendors/features.mli: Ast
