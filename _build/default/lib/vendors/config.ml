type device_type = GPU | CPU | Accelerator | Emulator | FPGA

type t = {
  id : int;
  sdk : string;
  device : string;
  driver : string;
  opencl : string;
  os : string;
  device_type : device_type;
  above_threshold : bool;
  manual_below : bool;
  optimizes : bool;
  faults_off : Fault.t list;
  faults_on : Fault.t list;
}

let always (_ : Features.t) = true
let has_struct (f : Features.t) = f.Features.has_struct
let char_first (f : Features.t) = f.Features.char_first_struct
let union_struct (f : Features.t) = f.Features.union_with_struct_field
let vec_in_struct (f : Features.t) = f.Features.vector_in_struct
let uses_vectors (f : Features.t) = f.Features.uses_vectors
let uses_barrier (f : Features.t) = f.Features.uses_barrier
let barrier_in_callee (f : Features.t) = f.Features.barrier_in_callee
let barrier_in_callee_straight (f : Features.t) =
  f.Features.barrier_in_callee_straight

let barrier_in_loop (f : Features.t) = f.Features.barrier_in_loop
let while_true (f : Features.t) = f.Features.while_true
let size_t_mix (f : Features.t) = f.Features.mixes_int_size_t
let vec_logical (f : Features.t) = f.Features.uses_vector_logical

(* reduced test cases reproduce deterministically *)
let small (f : Features.t) = f.Features.stmt_count <= 25
let small_and p (f : Features.t) = small f && p f

let wrong rate key requires = Fault.Wrong_code { rate; key; requires }
let reject message rate key requires = Fault.Reject { message; rate; key; requires }
let crash message rate key requires = Fault.Runtime_crash { message; rate; key; requires }
let quirk rate key requires install = Fault.Quirk { rate; key; requires; install }
let timeout rate key requires = Fault.Run_timeout { rate; key; requires }
let no_struct (f : Features.t) = not f.Features.has_struct

(* ------------------------------------------------------------------ *)
(* Per-vendor fault sets. Rates are calibrated against Table 4 of the  *)
(* paper (per-10,000-test counts); see EXPERIMENTS.md.                 *)
(* ------------------------------------------------------------------ *)

(* NVIDIA GPUs (1-4): low wrong-code rates, higher without optimisations;
   build failures ("Wrong type for attribute zeroext") without
   optimisations; the union-initialisation bug of Fig. 2(a) at -O0. *)
let nvidia ~old_driver =
  let faults_off =
    [
      reject "internal error: Wrong type for attribute zeroext" 0.040 Fault.Stable always;
      quirk 0.02 Fault.Stable union_struct (fun p ->
          { p with Profile.union_init = Profile.Ui_struct_leaf_garbage });
      quirk 1.0 Fault.Stable (small_and union_struct) (fun p ->
          { p with Profile.union_init = Profile.Ui_struct_leaf_garbage });
      wrong 0.004 Fault.Full always;
      crash "CL_OUT_OF_RESOURCES (unspecified launch failure)" 0.045 Fault.Full has_struct;
      crash "CL_OUT_OF_RESOURCES" 0.003 Fault.Full always;
      timeout (if old_driver then 0.019 else 0.0) Fault.Stable has_struct;
    ]
  in
  let faults_on =
    [
      wrong 0.008 Fault.Full always;
      crash "CL_OUT_OF_RESOURCES (unspecified launch failure)" 0.055 Fault.Full has_struct;
      crash "CL_OUT_OF_RESOURCES" 0.003 Fault.Full always;
      timeout 0.0005 Fault.Stable has_struct;
    ]
  in
  (faults_off, faults_on)

(* AMD (5, 6 GPU; 16 CPU): the Fig. 1(a) char-first struct bug with
   optimisations; irreducible-control-flow rejections with optimisations;
   GPU machine crashes. *)
let amd ~gpu =
  let base_off =
    [
      wrong 0.07 Fault.Stable has_struct;
      crash "CL_INVALID_COMMAND_QUEUE" 0.10 Fault.Full has_struct;
      crash "CL_INVALID_COMMAND_QUEUE" 0.004 Fault.Full always;
    ]
  in
  let base_on =
    [
      quirk 1.0 Fault.Stable char_first (fun p ->
          { p with Profile.struct_init_char_first_zero = true });
      reject "unsupported irreducible control flow" 0.06 Fault.Stable always;
      wrong 0.14 Fault.Stable has_struct;
      crash "CL_INVALID_COMMAND_QUEUE" 0.09 Fault.Full has_struct;
      crash "CL_INVALID_COMMAND_QUEUE" 0.004 Fault.Full always;
    ]
  in
  let mc = Fault.Machine_crash { message = "host OS crash during kernel execution"; rate = 0.05 } in
  if gpu then (mc :: base_off, mc :: base_on)
  else
    (* the CPU configuration (16) cannot run most standard benchmarks at
       all (Table 3: "ng" for five or more benchmarks) *)
    let ng = wrong 0.6 Fault.Stable no_struct in
    (ng :: base_off, ng :: base_on)

(* Intel GPUs (7, 8): compile hang on while(1) patterns (Fig. 1(e)),
   struct miscompilations, machine crashes. *)
let intel_gpu =
  let common =
    [
      Fault.Compile_hang { rate = 1.0; key = Fault.Stable; requires = while_true };
      wrong 0.30 Fault.Stable has_struct;
      Fault.Machine_crash { message = "host OS crash during kernel execution"; rate = 0.12 };
      crash "CL_OUT_OF_RESOURCES" 0.06 Fault.Full has_struct;
      crash "CL_OUT_OF_RESOURCES" 0.004 Fault.Full always;
      wrong 0.004 Fault.Full always;
      timeout 0.03 Fault.Stable has_struct;
    ]
  in
  (common, common)

(* Anonymous GPU vendor (9, 10, 11). 9 carries fixes and sits above the
   threshold; 10/11 additionally miscompile whole-struct assignment when
   Nx = 1 (Fig. 1(b)) and mangle structs broadly. *)
let anon_gpu_fixed =
  let common rate_c rate_to =
    [
      wrong 0.019 Fault.Stable has_struct;
      wrong 0.003 Fault.Full always;
      crash "internal device fault" rate_c Fault.Full has_struct;
      timeout rate_to Fault.Stable has_struct;
      timeout 0.002 Fault.Full always;
    ]
  in
  ( common 0.032 0.14,
    quirk 1.0 Fault.Stable always (fun p ->
        { p with Profile.group_id_cmp_invert = true })
    :: common 0.025 0.10 )

let anon_gpu_old =
  let fig1b =
    quirk 1.0 Fault.Stable
      (fun f -> f.Features.whole_struct_assign && f.Features.nx_is_one)
      (fun p -> { p with Profile.struct_copy_drop_arrays = true })
  in
  let common =
    [
      wrong 0.48 Fault.Stable has_struct;
      wrong 0.6 Fault.Stable no_struct;
      crash "internal device fault" 0.05 Fault.Full has_struct;
      timeout 0.10 Fault.Stable has_struct;
    ]
  in
  (fig1b :: common, common)

(* Intel i7 CPUs (12, 13): the Fig. 2(c) barrier-in-callee write-loss bug
   without optimisations; vectoriser/barrier-pass build failures with
   optimisations. *)
let intel_i7 =
  ( [
      quirk 0.05 Fault.Stable barrier_in_callee (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = false } });
      quirk 1.0 Fault.Stable (small_and barrier_in_callee) (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = false } });
      wrong 0.010 Fault.Full always;
      reject "Instruction does not dominate all uses!" 0.001 Fault.Stable always;
      crash "segmentation fault" 0.085 Fault.Full has_struct;
      crash "segmentation fault" 0.003 Fault.Full always;
      timeout 0.030 Fault.Stable has_struct;
    ],
    [
      wrong 0.004 Fault.Full always;
      reject "error in Intel OpenCL Vectorizer pass" 0.005 Fault.Stable always;
      crash "segmentation fault" 0.065 Fault.Full has_struct;
      crash "segmentation fault" 0.003 Fault.Full always;
      timeout 0.13 Fault.Stable has_struct;
    ] )

(* Intel i5 (14): rotate const-fold bug at both levels (Fig. 2(b));
   barrier-in-callee segfaults and the Fig. 2(d) loop-barrier bug without
   optimisations. *)
let intel_i5 =
  ( [
      Fault.Buggy_rotate_fold;
      quirk 0.80 Fault.Stable barrier_in_callee_straight (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = true } });
      quirk 1.0 Fault.Stable (small_and barrier_in_callee_straight) (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = true } });
      quirk 0.10 Fault.Stable barrier_in_loop (fun p ->
          { p with Profile.loop_barrier = Profile.Lb_lose_init });
      quirk 1.0 Fault.Stable (small_and barrier_in_loop) (fun p ->
          { p with Profile.loop_barrier = Profile.Lb_lose_init });
      reject "error in Intel OpenCL Barrier pass" 0.02 Fault.Stable uses_barrier;
      wrong 0.001 Fault.Full always;
      crash "segmentation fault" 0.006 Fault.Full always;
      timeout 0.028 Fault.Stable has_struct;
    ],
    [
      Fault.Buggy_rotate_fold;
      wrong 0.020 Fault.Full uses_vectors;
      wrong 0.002 Fault.Full always;
      reject "error in Intel OpenCL Vectorizer pass" 0.008 Fault.Stable always;
      crash "segmentation fault" 0.025 Fault.Full has_struct;
      crash "segmentation fault" 0.003 Fault.Full always;
      timeout 0.045 Fault.Stable has_struct;
    ] )

(* Intel Xeon (15): front end rejects legal int/size_t mixtures at both
   levels; barrier-in-callee segfaults without optimisations. *)
let intel_xeon =
  let szt =
    reject "invalid operands to binary expression ('int' and 'size_t')" 1.0
      Fault.Stable size_t_mix
  in
  ( [
      szt;
      quirk 0.85 Fault.Stable barrier_in_callee_straight (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = true } });
      quirk 1.0 Fault.Stable (small_and barrier_in_callee_straight) (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_callee_barrier { crash = true } });
      quirk 0.10 Fault.Stable barrier_in_loop (fun p ->
          { p with Profile.loop_barrier = Profile.Lb_lose_init });
      quirk 1.0 Fault.Stable (small_and barrier_in_loop) (fun p ->
          { p with Profile.loop_barrier = Profile.Lb_lose_init });
      wrong 0.002 Fault.Full always;
      crash "segmentation fault" 0.002 Fault.Full always;
      timeout 0.045 Fault.Stable has_struct;
    ],
    [
      szt;
      wrong 0.020 Fault.Full always;
      crash "segmentation fault" 0.015 Fault.Full has_struct;
      crash "segmentation fault" 0.003 Fault.Full always;
      crash "segmentation fault" 0.08 Fault.Full uses_barrier;
      timeout 0.06 Fault.Stable has_struct;
    ] )

(* Anonymous CPU vendor (17): the Fig. 1(d) post-barrier callee-write bug
   plus broad struct miscompilation. *)
let anon_cpu =
  let common =
    [
      quirk 1.0 Fault.Stable always (fun p ->
          { p with Profile.pointer_write_bug = Profile.Pwb_after_barrier });
      wrong 0.28 Fault.Stable has_struct;
      wrong 0.004 Fault.Full always;
      crash "internal error" 0.04 Fault.Full has_struct;
      crash "internal error" 0.002 Fault.Full always;
    ]
  in
  (common, common)

(* Xeon Phi (18): prohibitively slow compilation when large structs meet
   barriers with optimisations (Fig. 1(f)). *)
let xeon_phi =
  let base =
    [
      wrong 0.02 Fault.Stable has_struct;
      crash "offload error" 0.03 Fault.Full has_struct;
      timeout 0.05 Fault.Stable has_struct;
      timeout 0.20 Fault.Stable no_struct;
    ]
  in
  ( base,
    Fault.Slow_compile
      { requires = (fun f -> f.Features.max_struct_bytes > 64 && f.Features.uses_barrier) }
    :: base )

(* Oclgrind (19): interpreter-level comma mishandling (Fig. 2(f)), a small
   family of vector bugs, and emulation slowness. Identical at both
   levels: Oclgrind does not optimise. *)
let oclgrind =
  let common =
    [
      quirk 1.0 Fault.Stable always (fun p ->
          { p with Profile.comma = Profile.Comma_first });
      wrong 0.04 Fault.Stable uses_vectors;
      timeout 0.12 Fault.Stable has_struct;
      timeout 0.75 Fault.Stable no_struct;
      crash "ICD loader error" 0.0005 Fault.Stable always;
    ]
  in
  (common, common)

(* Altera (20 emulated, 21 FPGA): vectors-in-struct IR generation errors,
   rejection of logical operations on vectors; the FPGA flow mostly fails. *)
let altera ~fpga =
  let common =
    [
      reject "LLVM IR generation error (vector type in struct)" 1.0 Fault.Stable vec_in_struct;
      reject "front end rejects logical operation on vector operands" 1.0 Fault.Stable vec_logical;
      wrong 0.05 Fault.Stable always;
      crash "aoc internal error" 0.08 Fault.Full has_struct;
    ]
  in
  if fpga then
    let hard =
      [
        reject "aoc internal compiler error" 0.35 Fault.Stable always;
        crash "FPGA execution fault" 0.35 Fault.Full always;
      ]
    in
    (hard @ common, hard @ common)
  else (common, common)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let mk id sdk device driver opencl os device_type ~above ?(manual_below = false)
    ?(optimizes = true) (faults_off, faults_on) =
  {
    id; sdk; device; driver; opencl; os; device_type;
    above_threshold = above;
    manual_below;
    optimizes;
    faults_off;
    faults_on;
  }

let all =
  [
    mk 1 "NVIDIA 6.5.19" "NVIDIA GeForce GTX Titan" "343.22" "1.1"
      "Ubuntu 14.04.1 LTS" GPU ~above:true (nvidia ~old_driver:true);
    mk 2 "NVIDIA 6.5.19" "NVIDIA GeForce GTX 770" "343.22" "1.1"
      "Ubuntu 14.04.1 LTS" GPU ~above:true (nvidia ~old_driver:true);
    mk 3 "NVIDIA 7.0.28" "NVIDIA Tesla M2050" "346.47" "1.1" "RHEL Server 6.5"
      GPU ~above:true (nvidia ~old_driver:false);
    mk 4 "NVIDIA 7.0.28" "NVIDIA Tesla K40c" "346.47" "1.1" "RHEL Server 6.5"
      GPU ~above:true (nvidia ~old_driver:false);
    mk 5 "AMD 2.9-1" "AMD Radeon HD7970 GHz edition" "Catalyst 14.9" "1.2"
      "Windows 7 Enterprise" GPU ~above:false (amd ~gpu:true);
    mk 6 "AMD 2.9-1" "ATI Radeon HD 6570 650MHz" "Catalyst 14.9" "1.2"
      "Windows 7 Enterprise" GPU ~above:false (amd ~gpu:true);
    mk 7 "Intel 4.6" "Intel HD Graphics 4600" "10.18.10.3960" "1.2"
      "Windows 7 Enterprise" GPU ~above:false intel_gpu;
    mk 8 "Intel 4.6" "Intel HD Graphics 4000" "10.18.10.3412" "1.2"
      "Windows 8.1 Pro" GPU ~above:false intel_gpu;
    mk 9 "Anon. SDK 1" "Anon. device 1" "Anon. driver 1c" "1.1"
      "Linux (anon. version)" GPU ~above:true anon_gpu_fixed;
    mk 10 "Anon. SDK 1" "Anon. device 1" "Anon. driver 1b" "1.1"
      "Linux (anon. version)" GPU ~above:false anon_gpu_old;
    mk 11 "Anon. SDK 1" "Anon. device 1" "Anon. driver 1a" "1.1"
      "Linux (anon. version)" GPU ~above:false anon_gpu_old;
    mk 12 "Intel 4.6" "Intel Core i7-4770 @ 3.40 GHz" "4.6.0.92" "2.0"
      "Windows 7 Enterprise" CPU ~above:true intel_i7;
    mk 13 "Intel 4.6" "Intel Core i7-4770 @ 3.40 GHz" "4.2.0.76" "1.2"
      "Windows 7 Enterprise" CPU ~above:true intel_i7;
    mk 14 "Intel 4.6" "Intel Core i5-3317U @ 1.70 GHz" "3.0.1.10878" "1.2"
      "Windows 8.1 Pro" CPU ~above:true intel_i5;
    mk 15 "Intel XE 2013 R2" "Intel Xeon X5650 @ 2.67GHz" "1.2 build 56860"
      "1.2" "RHEL Server 6.5" CPU ~above:true intel_xeon;
    mk 16 "AMD 2.9-1" "Intel Xeon E5-2609 v2 @ 2.50GHz" "Catalyst 14.9" "1.2"
      "Windows 7 Enterprise" CPU ~above:false (amd ~gpu:false);
    mk 17 "Anon. SDK 2" "Anon. device 2" "Anon. driver 2" "1.1"
      "Linux (anon. version)" CPU ~above:false anon_cpu;
    mk 18 "Intel XE 2013 R2" "Intel Xeon Phi" "5889-14" "1.2" "RHEL Server 6.5"
      Accelerator ~above:false ~manual_below:true xeon_phi;
    mk 19 "Intel 4.6" "Oclgrind v14.5" "LLVM 3.2, SPIR 1.2" "1.2"
      "Ubuntu 14.04" Emulator ~above:true ~optimizes:false oclgrind;
    mk 20 "Altera 14.0" "Altera PCIe-385N D5 (Emulated)" "aoc 14.0 build 200"
      "1.0" "CentOS 6.5" Emulator ~above:false (altera ~fpga:false);
    mk 21 "Altera 14.0" "Altera PCIe-385N D5" "aoc 14.0 build 200" "1.0"
      "CentOS 6.5" FPGA ~above:false (altera ~fpga:true);
  ]

let find id = List.find (fun c -> c.id = id) all

let above_threshold_ids =
  List.filter_map (fun c -> if c.above_threshold then Some c.id else None) all

let device_type_name = function
  | GPU -> "GPU"
  | CPU -> "CPU"
  | Accelerator -> "Accelerator"
  | Emulator -> "Emulator"
  | FPGA -> "FPGA"
