(** The 21 OpenCL (device, compiler) configurations of Table 1, each
    modelled as a vendor-compiler simulation: an optimisation pipeline plus
    the fault set reproducing the bug classes the paper documents for it
    (section 6 and Figures 1–2).

    Anonymised vendors are kept anonymous here too. [above_threshold]
    records the paper's Table 1 classification — the reproduction's
    {!Classify} recomputes the classification from actual campaign results
    and EXPERIMENTS.md compares the two. The Xeon Phi (18) carries
    [manual_below] because the paper classified it below the threshold by
    judgement (prohibitively slow struct compiles) rather than by the 25%
    rule. *)

type device_type = GPU | CPU | Accelerator | Emulator | FPGA

type t = {
  id : int;
  sdk : string;
  device : string;
  driver : string;
  opencl : string;
  os : string;
  device_type : device_type;
  above_threshold : bool;
  manual_below : bool;
  optimizes : bool;  (** Oclgrind does not optimise *)
  faults_off : Fault.t list;  (** active with [-cl-opt-disable] *)
  faults_on : Fault.t list;  (** active with default optimisation *)
}

val all : t list
val find : int -> t
(** @raise Not_found for ids outside 1..21 *)

val above_threshold_ids : int list
(** Paper classification: the configurations used for Tables 4 and 5. *)

val device_type_name : device_type -> string
