type key = Full | Stable

type t =
  | Reject of {
      message : string;
      rate : float;
      key : key;
      requires : Features.t -> bool;
    }
  | Compile_hang of { rate : float; key : key; requires : Features.t -> bool }
  | Slow_compile of { requires : Features.t -> bool }
  | Runtime_crash of {
      message : string;
      rate : float;
      key : key;
      requires : Features.t -> bool;
    }
  | Machine_crash of { message : string; rate : float }
  | Run_timeout of { rate : float; key : key; requires : Features.t -> bool }
  | Wrong_code of { rate : float; key : key; requires : Features.t -> bool }
  | Quirk of {
      rate : float;
      key : key;
      requires : Features.t -> bool;
      install : Profile.t -> Profile.t;
    }
  | Buggy_rotate_fold

let digest_of key (f : Features.t) =
  match key with Full -> f.Features.full_digest | Stable -> f.Features.stable_digest

let gate key f ~salt ~rate =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else
    let d = Digest_util.mix (digest_of key f) (Int64.of_int salt) in
    Digest_util.to_float01 d < rate
