(** Fault models: the injectable bug classes of the simulated vendor
    compilers.

    A fault has a {e trigger} (a predicate over {!Features.t}) and an
    optional {e gate}: a deterministic pseudo-random threshold evaluated
    from a program digest, the configuration id and the fault's salt. A
    gate of rate [r] makes the fault fire on a fraction [r] of triggering
    programs — deterministically per program, as real compiler bugs do.
    Digest choice matters (see {!Digest_util}): [`Full]-keyed faults are
    sensitive to EMI pruning (optimisation-interaction bugs), [`Stable]-
    keyed faults hit every EMI variant of a base identically (front-end /
    interpreter bugs, which EMI testing cannot see — section 7.4's Oclgrind
    contrast). *)

type key = Full | Stable

type t =
  | Reject of {
      message : string;
      rate : float;
      key : key;
      requires : Features.t -> bool;
    }  (** front-end build failure *)
  | Compile_hang of { rate : float; key : key; requires : Features.t -> bool }
      (** compiler never terminates (Fig. 1(e)) — observed as a timeout *)
  | Slow_compile of { requires : Features.t -> bool }
      (** pathological compile time (Fig. 1(f), Xeon Phi) — timeout *)
  | Runtime_crash of {
      message : string;
      rate : float;
      key : key;
      requires : Features.t -> bool;
    }
  | Machine_crash of { message : string; rate : float }
      (** takes the host OS down (AMD/Intel GPUs, section 6) *)
  | Run_timeout of {
      rate : float;
      key : key;
      requires : Features.t -> bool;
    }
      (** execution exceeds the campaign timeout (e.g. the slow Oclgrind
          emulator) *)
  | Wrong_code of { rate : float; key : key; requires : Features.t -> bool }
      (** miscompilation via {!Mutate} *)
  | Quirk of {
      rate : float;
      key : key;
      requires : Features.t -> bool;
      install : Profile.t -> Profile.t;
    }  (** semantic quirk installed into the execution profile *)
  | Buggy_rotate_fold
      (** replace the const-fold pass by the Fig. 2(b) variant *)

val gate : key -> Features.t -> salt:int -> rate:float -> bool
(** Deterministic threshold test. [rate >= 1.0] always fires; [rate <= 0.]
    never. *)
