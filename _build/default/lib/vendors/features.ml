open Ast

type t = {
  uses_barrier : bool;
  barrier_count : int;
  uses_vectors : bool;
  uses_vector_logical : bool;
  uses_atomics : bool;
  uses_comma : bool;
  has_struct : bool;
  char_first_struct : bool;
  union_with_struct_field : bool;
  vector_in_struct : bool;
  max_struct_bytes : int;
  barrier_in_callee : bool;
  barrier_in_callee_straight : bool;
  barrier_in_loop : bool;
  mixes_int_size_t : bool;
  while_true : bool;
  long_loop_bound : int;
  whole_struct_assign : bool;
  nx_is_one : bool;
  stmt_count : int;
  full_digest : int64;
  stable_digest : int64;
}

let count_barriers p =
  fold_program_blocks
    (fun acc b ->
      acc
      + fold_stmts
          (fun n s -> match s with Barrier _ -> n + 1 | _ -> n)
          0 b)
    0 p

let block_has_barrier b =
  fold_stmts (fun acc s -> acc || match s with Barrier _ -> true | _ -> false) false b

let barrier_in_callee p =
  List.exists (fun (f : func) -> block_has_barrier f.body) p.funcs

(* a barrier in a callee outside any loop: the Fig. 2(c) crash shape, as
   opposed to the loop-nested Fig. 2(d) shape *)
let barrier_in_callee_straight p =
  let rec straight b =
    List.exists
      (fun s ->
        match s with
        | Barrier _ -> true
        | If (_, b1, b2) -> straight b1 || straight b2
        | Block b -> straight b
        | Emi { emi_body; _ } -> straight emi_body
        | For _ | While _ | Decl _ | Assign _ | Expr _ | Break | Continue
        | Return _ ->
            false)
      b
  in
  List.exists (fun (f : func) -> straight f.body) p.funcs

let barrier_in_loop p =
  fold_program_blocks
    (fun acc b ->
      acc
      || fold_stmts
           (fun found s ->
             found
             ||
             match s with
             | For { f_body; _ } -> block_has_barrier f_body
             | While (_, body) -> block_has_barrier body
             | _ -> false)
           false b)
    false p

(* does any expression tree contain an axis-form thread id? (type size_t) *)
let rec has_axis_id (e : expr) =
  match e with
  | Thread_id (Op.Global_id _ | Op.Local_id _ | Op.Group_id _) -> true
  | Const _ | Var _ | Thread_id _ -> false
  (* an explicit cast to a non-size_t type launders the operand: the
     front-end bug only fires on genuinely mixed int/size_t expressions *)
  | Cast (t, a) -> Ty.equal t Ty.size_t && has_axis_id a
  | Unop (_, a) | Safe_neg a | Field (a, _) | Arrow (a, _)
  | Deref a | Addr_of a | Swizzle (a, _) ->
      has_axis_id a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) ->
      has_axis_id a || has_axis_id b
  | Cond (a, b, c) -> has_axis_id a || has_axis_id b || has_axis_id c
  | Builtin (_, args) | Call (_, args) | Vec_lit (_, _, args) ->
      List.exists has_axis_id args
  | Atomic (_, p, args) -> List.exists has_axis_id (p :: args)

(* the Intel-Xeon rejection shape: a compound bitwise assignment whose
   right-hand side involves size_t thread ids ("int x; x |= gx") *)
let mixes_int_size_t p =
  exists_stmt
    (function
      | Assign (_, A_op (Op.BitOr | Op.BitAnd | Op.BitXor), rhs) ->
          has_axis_id rhs
      | _ -> false)
    p

let while_true p =
  exists_stmt
    (function
      | While (Const c, _) -> c.value <> 0L
      | _ -> false)
    p

let long_loop_bound p =
  fold_program_blocks
    (fun acc b ->
      fold_stmts
        (fun m s ->
          match s with
          | For { f_cond = Some (Binop (Op.Lt, _, Const c)); _ } ->
              max m (Int64.to_int (min c.value 1_000_000L))
          | _ -> m)
        acc b)
    0 p

let whole_struct_assign p =
  let decls = Hashtbl.create 32 in
  let record_block b =
    ignore
      (fold_stmts
         (fun () s ->
           match s with
           | Decl { dname; dty = Ty.Named n; _ } -> Hashtbl.replace decls dname n
           | _ -> ())
         () b)
  in
  List.iter (fun (f : func) -> record_block f.body) (p.kernel :: p.funcs);
  exists_stmt
    (function
      | Assign (Var a, A_simple, Var b) ->
          Hashtbl.mem decls a && Hashtbl.mem decls b
      | _ -> false)
    p

let uses_vector_logical p =
  (* approximation: a logical operator whose operand is syntactically a
     vector literal, swizzle source, or vector-typed cast *)
  let rec vectorish = function
    | Vec_lit _ -> true
    | Cast (Ty.Vector _, _) -> true
    | Binop (_, a, b) | Safe_binop (_, a, b) -> vectorish a || vectorish b
    | Unop (_, a) | Safe_neg a -> vectorish a
    | Builtin (_, args) -> List.exists vectorish args
    | _ -> false
  in
  exists_expr
    (function
      | Binop ((Op.LogAnd | Op.LogOr), a, b) -> vectorish a || vectorish b
      | Unop (Op.LogNot, a) -> vectorish a
      | _ -> false)
    p

let of_testcase (tc : testcase) : t =
  let p = tc.prog in
  let tyenv = tyenv_of_program p in
  let structs = List.filter (fun (a : Ty.aggregate) -> not a.is_union) p.aggregates in
  let unions = List.filter (fun (a : Ty.aggregate) -> a.is_union) p.aggregates in
  let max_struct_bytes =
    List.fold_left
      (fun m (a : Ty.aggregate) ->
        max m (Layout.sizeof Layout.standard tyenv (Ty.Named a.aname)))
      0 p.aggregates
  in
  let nx, _, _ = tc.global_size in
  {
    uses_barrier = uses_barrier p;
    barrier_count = count_barriers p;
    uses_vectors = uses_vectors p;
    uses_vector_logical = uses_vector_logical p;
    uses_atomics = uses_atomics p;
    uses_comma = uses_comma p;
    has_struct = structs <> [];
    char_first_struct =
      List.exists (Layout.struct_is_char_first tyenv) structs;
    union_with_struct_field =
      List.exists
        (fun (u : Ty.aggregate) ->
          List.exists
            (fun (f : Ty.field) ->
              match f.fty with
              | Ty.Named n -> (
                  match Ty.find_aggregate_opt tyenv n with
                  | Some a -> not a.is_union
                  | None -> false)
              | _ -> false)
            u.fields)
        unions;
    vector_in_struct =
      List.exists
        (fun (a : Ty.aggregate) ->
          List.exists (fun (f : Ty.field) -> Ty.is_vector f.fty) a.fields)
        p.aggregates;
    max_struct_bytes;
    barrier_in_callee = barrier_in_callee p;
    barrier_in_callee_straight = barrier_in_callee_straight p;
    barrier_in_loop = barrier_in_loop p;
    mixes_int_size_t = mixes_int_size_t p;
    while_true = while_true p;
    long_loop_bound = long_loop_bound p;
    whole_struct_assign = whole_struct_assign p;
    nx_is_one = nx = 1;
    stmt_count = stmt_count p;
    full_digest = Digest_util.full p;
    stable_digest = Digest_util.stable p;
  }
