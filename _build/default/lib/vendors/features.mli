(** Syntactic/structural program features that fault-model triggers key on.

    Each feature corresponds to a trigger condition of a documented bug
    from the paper (section 6): e.g. [char_first_struct] is the Fig. 1(a)
    AMD trigger, [mixes_int_size_t] the Intel-Xeon front-end rejection,
    [barrier_in_callee] the Fig. 2(c) Intel CPU trigger, [while_true] the
    Fig. 1(e) Intel GPU compile hang. Features are computed once per test
    case and shared by all fault evaluations. *)

type t = {
  uses_barrier : bool;
  barrier_count : int;
  uses_vectors : bool;
  uses_vector_logical : bool;
      (** logical operators applied to vectors — rejected by Altera *)
  uses_atomics : bool;
  uses_comma : bool;
  has_struct : bool;
  char_first_struct : bool;
  union_with_struct_field : bool;
  vector_in_struct : bool;
  max_struct_bytes : int;
  barrier_in_callee : bool;
  barrier_in_callee_straight : bool;
      (** a callee barrier outside any loop — the Fig. 2(c) crash shape,
          as opposed to the loop-nested Fig. 2(d) shape *)
  barrier_in_loop : bool;
  mixes_int_size_t : bool;
  while_true : bool;
  long_loop_bound : int;  (** largest constant loop bound *)
  whole_struct_assign : bool;
  nx_is_one : bool;  (** launch geometry: the Fig. 1(b) bug needs Nx = 1 *)
  stmt_count : int;
      (** program size; reduced test cases (like the Figure 1/2 exhibits)
          trigger their bugs deterministically, so several fault models use
          rate 1.0 for small programs and a statistical rate for large
          generated kernels *)
  full_digest : int64;
  stable_digest : int64;
}

val of_testcase : Ast.testcase -> t
