test/test_benchmarks.ml: Alcotest Driver Interp List Outcome Printf Sched String Suite Typecheck
