test/test_emi.ml: Alcotest Ast Build Driver Gen_config Generate Inject Interp List Outcome Prune Rng Stdlib Suite Ty Typecheck Variant
