test/test_emi.mli:
