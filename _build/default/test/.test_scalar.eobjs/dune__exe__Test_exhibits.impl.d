test/test_exhibits.ml: Alcotest Config Driver Exhibit List Outcome Printf String Typecheck
