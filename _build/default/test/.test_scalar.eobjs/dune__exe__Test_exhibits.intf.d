test/test_exhibits.mli:
