test/test_generator.ml: Alcotest Ast Digest Features Gen_config Generate Interp List Outcome Pp Printf Sched String Typecheck Validate
