test/test_harness.ml: Alcotest Bench_emi Campaign Classify Config Emi_campaign Gen_config List Majority Outcome String Table_fmt
