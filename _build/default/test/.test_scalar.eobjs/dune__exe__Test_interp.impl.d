test/test_interp.ml: Alcotest Ast Build Interp List Op Outcome Profile Sched Stdlib String Ty
