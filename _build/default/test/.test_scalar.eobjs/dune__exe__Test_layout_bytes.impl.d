test/test_layout_bytes.ml: Alcotest Build Bytes Bytes_repr Layout List Printf QCheck2 QCheck_alcotest Scalar Ty
