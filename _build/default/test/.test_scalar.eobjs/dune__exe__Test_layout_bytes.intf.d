test/test_layout_bytes.mli:
