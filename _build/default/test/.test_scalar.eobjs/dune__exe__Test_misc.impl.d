test/test_misc.ml: Alcotest Array Ast Ast_map Digest_util Fun Gen_config Generate Hashtbl Int64 Interp List Ndrange Outcome Pp Printf Rng Sched String Typecheck Validate
