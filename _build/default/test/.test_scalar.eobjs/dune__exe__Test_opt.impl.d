test/test_opt.ml: Alcotest Ast Build Const_fold Dce Gen_config Generate Int64 Interp List Mutate Op Outcome Pass Pp Printf Simplify Stdlib String Ty Typecheck Unroll
