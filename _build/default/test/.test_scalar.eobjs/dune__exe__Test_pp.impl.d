test/test_pp.ml: Alcotest Ast Build Exhibit List Op Pp Printf Stdlib String Ty
