test/test_pp.mli:
