test/test_race.ml: Alcotest Build Gen_config Generate Interp List Printf Race Suite Ty
