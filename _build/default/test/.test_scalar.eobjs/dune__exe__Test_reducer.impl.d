test/test_reducer.ml: Alcotest Ast Build Config Driver Gen_config Generate Interp Op Outcome Reduce Stdlib String Ty Typecheck
