test/test_reducer.mli:
