test/test_scalar.ml: Alcotest Int64 Op QCheck2 QCheck_alcotest Scalar Ty
