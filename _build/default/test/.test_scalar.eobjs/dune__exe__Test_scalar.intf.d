test/test_scalar.mli:
