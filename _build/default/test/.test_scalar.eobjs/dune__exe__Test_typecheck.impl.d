test/test_typecheck.ml: Alcotest Ast Build Op Stdlib String Ty Typecheck
