test/test_validate.ml: Alcotest Ast Build Gen_config Generate List Op Ty Validate
