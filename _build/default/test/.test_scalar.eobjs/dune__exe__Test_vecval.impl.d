test/test_vecval.ml: Alcotest Array List Op QCheck2 QCheck_alcotest Scalar Ty Vecval
