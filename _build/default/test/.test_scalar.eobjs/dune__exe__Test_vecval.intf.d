test/test_vecval.mli:
