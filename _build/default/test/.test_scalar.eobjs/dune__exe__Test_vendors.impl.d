test/test_vendors.ml: Alcotest Ast Build Config Digest_util Driver Fault Features Gen_config Generate Int64 List Op Outcome Printf Prune Stdlib String Ty Variant
