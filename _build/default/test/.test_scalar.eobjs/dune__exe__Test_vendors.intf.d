test/test_vendors.mli:
