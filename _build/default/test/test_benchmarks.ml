(* The mini Parboil/Rodinia suite: every port type-checks, runs to a
   computed result on the reference device, and has the documented race
   status; golden outputs pin down a few ports completely. *)

let test_all_run () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let tc = b.Suite.testcase () in
      (match Typecheck.check_testcase tc with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" b.Suite.name m);
      match Driver.reference_outcome tc with
      | Outcome.Success _ -> ()
      | o -> Alcotest.failf "%s: %s" b.Suite.name (Outcome.to_string o))
    Suite.all

let test_bfs_levels () =
  (* hand-checked BFS levels for the ring+chord graph from node 0 *)
  match Driver.reference_outcome ((Suite.find "bfs").Suite.testcase ()) with
  | Outcome.Success s ->
      Alcotest.(check string) "levels" "levels: 0,1,2,3,2,3,4,3,4,5,4,5,6,3,4,5" s
  | o -> Alcotest.failf "bfs: %s" (Outcome.to_string o)

let test_pathfinder_monotone () =
  (* DP costs are sums of positive weights: every result is >= rows *)
  match Driver.reference_outcome ((Suite.find "pathfinder").Suite.testcase ()) with
  | Outcome.Success s ->
      let values =
        match String.split_on_char ':' s with
        | [ _; rest ] ->
            List.map
              (fun x -> int_of_string (String.trim x))
              (String.split_on_char ',' rest)
        | _ -> Alcotest.fail "unexpected output shape"
      in
      List.iter
        (fun c -> Alcotest.(check bool) "path cost at least 8" true (c >= 8))
        values
  | o -> Alcotest.failf "pathfinder: %s" (Outcome.to_string o)

let test_tpacf_histogram_total () =
  (* the histogram must contain exactly the n*(n-1)/2 pairs *)
  match Driver.reference_outcome ((Suite.find "tpacf").Suite.testcase ()) with
  | Outcome.Success s ->
      let total =
        match String.split_on_char ':' s with
        | [ _; rest ] ->
            List.fold_left
              (fun a x -> a + int_of_string (String.trim x))
              0
              (String.split_on_char ',' rest)
        | _ -> Alcotest.fail "unexpected output shape"
      in
      Alcotest.(check int) "16*15/2 pairs" 120 total
  | o -> Alcotest.failf "tpacf: %s" (Outcome.to_string o)

let test_race_status () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let config = { Interp.default_config with Interp.detect_races = true } in
      let r = Interp.run ~config (b.Suite.testcase ()) in
      Alcotest.(check bool)
        (Printf.sprintf "%s race status" b.Suite.name)
        b.Suite.racy
        (r.Interp.races <> []))
    Suite.all

let test_suite_metadata () =
  Alcotest.(check int) "10 benchmarks" 10 (List.length Suite.all);
  Alcotest.(check int) "8 EMI-eligible" 8 (List.length Suite.emi_eligible);
  Alcotest.(check bool) "spmv excluded" true
    (not (List.exists (fun b -> b.Suite.name = "spmv") Suite.emi_eligible));
  Alcotest.(check bool) "myocyte excluded" true
    (not (List.exists (fun b -> b.Suite.name = "myocyte") Suite.emi_eligible));
  (* Table 2 renders and mentions every benchmark *)
  let t2 = Suite.table2 () in
  List.iter
    (fun (b : Suite.benchmark) ->
      let nl = String.length b.Suite.name and hl = String.length t2 in
      let rec go i =
        i + nl <= hl && (String.equal (String.sub t2 i nl) b.Suite.name || go (i + 1))
      in
      Alcotest.(check bool) (b.Suite.name ^ " in table2") true (go 0))
    Suite.all

let test_deterministic_across_schedules_when_race_free () =
  List.iter
    (fun (b : Suite.benchmark) ->
      if not b.Suite.racy then begin
        let tc = b.Suite.testcase () in
        let outs =
          List.map
            (fun s ->
              Interp.run_outcome
                ~config:{ Interp.default_config with Interp.schedule = s }
                tc)
            Sched.all_for_testing
        in
        match outs with
        | first :: rest ->
            List.iter
              (fun o ->
                Alcotest.(check bool)
                  (b.Suite.name ^ " schedule independent")
                  true (Outcome.equal first o))
              rest
        | [] -> ()
      end)
    Suite.all

let () =
  Alcotest.run "benchmarks"
    [
      ( "suite",
        [
          Alcotest.test_case "all run" `Quick test_all_run;
          Alcotest.test_case "bfs golden" `Quick test_bfs_levels;
          Alcotest.test_case "pathfinder monotone" `Quick test_pathfinder_monotone;
          Alcotest.test_case "tpacf histogram" `Quick test_tpacf_histogram_total;
          Alcotest.test_case "race status" `Quick test_race_status;
          Alcotest.test_case "metadata" `Quick test_suite_metadata;
          Alcotest.test_case "schedule independence" `Quick
            test_deterministic_across_schedules_when_race_free;
        ] );
    ]
