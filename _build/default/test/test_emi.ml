(* EMI machinery: pruning strategy arithmetic, structural guarantees, and —
   the heart of EMI testing — the metamorphic invariant that every variant
   of a base program computes the base's output on a correct device. *)

open Build

(* --- parameters --- *)

let test_paper_combinations () =
  Alcotest.(check int) "40 combinations (sec 7.4)" 40
    (List.length Prune.paper_combinations);
  List.iter
    (fun (p : Prune.params) ->
      Alcotest.(check bool) "constraint" true
        Stdlib.(p.Prune.pcompound +. p.Prune.plift <= 1.0 +. 1e-9))
    Prune.paper_combinations

let test_adjusted_lift () =
  let p = Prune.make_params ~pleaf:0.0 ~pcompound:0.4 ~plift:0.3 in
  Alcotest.(check (float 1e-9)) "p'lift = plift/(1-pcompound)" 0.5
    (Prune.adjusted_lift p);
  let p1 = Prune.make_params ~pleaf:0.0 ~pcompound:1.0 ~plift:0.0 in
  Alcotest.(check (float 1e-9)) "pcompound=1 caps at 1" 1.0 (Prune.adjusted_lift p1);
  Alcotest.check_raises "constraint enforced"
    (Invalid_argument "Prune.make_params: pcompound + plift must be <= 1")
    (fun () -> ignore (Prune.make_params ~pleaf:0.0 ~pcompound:0.7 ~plift:0.7))

(* --- structural pruning guarantees --- *)

let body_with_everything =
  [
    decle "x" Ty.int (ci 1);
    assign (v "x") (ci 2);
    if_ (v "x" > ci 0) [ assign (v "x") (ci 3) ];
    for_up "i" ~from:0 ~below:3 [ break_; assign (v "x") (v "i") ];
    while_ (v "x" > ci 99) [ continue_ ];
  ]

let test_leaf_prune_removes_everything_but_decls () =
  let rng = Rng.make 1 in
  let p = Prune.make_params ~pleaf:1.0 ~pcompound:1.0 ~plift:0.0 in
  let pruned = Prune.prune_block rng p body_with_everything in
  Alcotest.(check int) "only the declaration remains" 1 (List.length pruned);
  (match pruned with
  | [ Ast.Decl _ ] -> ()
  | _ -> Alcotest.fail "expected just the decl")

let test_zero_probabilities_identity () =
  let rng = Rng.make 1 in
  let p = Prune.make_params ~pleaf:0.0 ~pcompound:0.0 ~plift:0.0 in
  Alcotest.(check bool) "no-op" true
    (Prune.prune_block rng p body_with_everything = body_with_everything)

let test_lift_strips_outer_jumps () =
  let rng = Rng.make 1 in
  let p = Prune.make_params ~pleaf:0.0 ~pcompound:0.0 ~plift:1.0 in
  let pruned = Prune.prune_block rng p body_with_everything in
  (* all compounds lifted: break/continue at what is now the outer level
     must be gone (they'd be syntactically invalid), inner assigns stay *)
  let has_jump =
    List.exists (function Ast.Break | Ast.Continue -> true | _ -> false) pruned
  in
  Alcotest.(check bool) "no dangling jumps" false has_jump;
  let has_compound =
    List.exists
      (function Ast.If _ | Ast.For _ | Ast.While _ -> true | _ -> false)
      pruned
  in
  Alcotest.(check bool) "no compounds left" false has_compound

let test_lift_keeps_loop_initialiser () =
  (* "a for loop with initializer S and body T becomes S; T'" *)
  let rng = Rng.make 1 in
  let p = Prune.make_params ~pleaf:0.0 ~pcompound:0.0 ~plift:1.0 in
  let block = [ for_up "i" ~from:0 ~below:3 [ assign (v "x") (v "i") ] ] in
  let pruned = Prune.prune_block rng p block in
  (match pruned with
  | [ Ast.Decl { Ast.dname = "i"; _ }; Ast.Assign _ ] -> ()
  | _ -> Alcotest.failf "unexpected shape (%d stmts)" (List.length pruned))

(* --- the metamorphic invariant (paper section 5) --- *)

let test_variants_equal_base_on_reference () =
  let cfg = Gen_config.scaled Gen_config.All in
  let checked = ref 0 in
  let seed = ref 1000 in
  while Stdlib.(!checked < 6) do
    incr seed;
    let base, info = Generate.generate ~emi:true ~cfg ~seed:!seed () in
    if not info.Generate.counter_sharing then begin
      incr checked;
      let ob = Interp.run_outcome base in
      List.iteri
        (fun i variant ->
          (match Typecheck.check_testcase variant with
          | Ok () -> ()
          | Error m -> Alcotest.failf "variant %d ill-typed: %s" i m);
          let ov = Interp.run_outcome variant in
          if not (Outcome.equal ob ov) then
            Alcotest.failf "seed %d variant %d output differs from base" !seed i)
        (Variant.paper_variants ~base)
    end
  done

let test_invert_dead_flips_buffer () =
  let cfg = Gen_config.scaled Gen_config.All in
  let base, _ = Generate.generate ~emi:true ~cfg ~seed:60_001 () in
  let inv = Variant.invert_dead base in
  let spec_of tc = List.assoc "dead" tc.Ast.buffers in
  (match (spec_of base, spec_of inv) with
  | Ast.Buf_dead false, Ast.Buf_dead true -> ()
  | _ -> Alcotest.fail "inversion did not flip the dead buffer")

(* --- injection into existing kernels --- *)

let test_injection_preserves_benchmarks () =
  let cfg = Gen_config.scaled Gen_config.All in
  List.iter
    (fun (b : Suite.benchmark) ->
      let original = b.Suite.testcase () in
      let expected = Driver.reference_outcome original in
      List.iter
        (fun subst ->
          let inj = Inject.inject ~subst ~cfg ~seed:77 original in
          (match Typecheck.check_testcase inj.Inject.testcase with
          | Ok () -> ()
          | Error m ->
              Alcotest.failf "%s subst=%b ill-typed: %s" b.Suite.name subst m);
          let got = Driver.reference_outcome inj.Inject.testcase in
          if not (Outcome.equal expected got) then
            Alcotest.failf "%s subst=%b: injection changed the output"
              b.Suite.name subst)
        [ true; false ])
    Suite.emi_eligible

let test_injection_rejects_emi_programs () =
  let cfg = Gen_config.scaled Gen_config.All in
  let base, _ = Generate.generate ~emi:true ~cfg ~seed:60_002 () in
  Alcotest.check_raises "already EMI"
    (Invalid_argument "Inject.inject: program already uses EMI") (fun () ->
      ignore (Inject.inject ~subst:true ~cfg ~seed:1 base))

let () =
  Alcotest.run "emi"
    [
      ( "pruning",
        [
          Alcotest.test_case "40 combinations" `Quick test_paper_combinations;
          Alcotest.test_case "adjusted lift" `Quick test_adjusted_lift;
          Alcotest.test_case "leaf prune keeps decls" `Quick
            test_leaf_prune_removes_everything_but_decls;
          Alcotest.test_case "zero probabilities" `Quick test_zero_probabilities_identity;
          Alcotest.test_case "lift strips jumps" `Quick test_lift_strips_outer_jumps;
          Alcotest.test_case "lift keeps initialiser" `Quick
            test_lift_keeps_loop_initialiser;
        ] );
      ( "metamorphic invariant",
        [
          Alcotest.test_case "variants equal base" `Slow
            test_variants_equal_base_on_reference;
          Alcotest.test_case "invert dead" `Quick test_invert_dead_flips_buffer;
        ] );
      ( "injection",
        [
          Alcotest.test_case "benchmarks preserved" `Slow test_injection_preserves_benchmarks;
          Alcotest.test_case "rejects EMI programs" `Quick test_injection_rejects_emi_programs;
        ] );
    ]
