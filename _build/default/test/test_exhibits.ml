(* Figures 1 and 2: every exhibit must (a) compute the paper's expected
   result on the reference device, and (b) reproduce the documented
   misbehaviour on its configurations. These are the headline claims of
   the reproduction. *)

let test_reference_results () =
  List.iter
    (fun (e : Exhibit.t) ->
      match Driver.reference_outcome e.Exhibit.testcase with
      | Outcome.Success s ->
          Alcotest.(check string)
            (Printf.sprintf "figure %s reference" e.Exhibit.label)
            e.Exhibit.reference_result s
      | o ->
          Alcotest.failf "figure %s reference run failed: %s" e.Exhibit.label
            (Outcome.to_string o))
    Exhibit.all

let reproduction_case (e : Exhibit.t) =
  Alcotest.test_case ("figure " ^ e.Exhibit.label) `Quick (fun () ->
      List.iter
        (fun (id, opt, o) ->
          if not (Exhibit.matches (snd e.Exhibit.shows) o) then
            Alcotest.failf "config %d%s observed %s" id
              (if opt then "+" else "-")
              (Outcome.to_string o))
        (Exhibit.observed e))

let test_exhibits_typecheck () =
  List.iter
    (fun (e : Exhibit.t) ->
      match Typecheck.check_testcase e.Exhibit.testcase with
      | Ok () -> ()
      | Error m -> Alcotest.failf "figure %s: %s" e.Exhibit.label m)
    Exhibit.all

let test_unaffected_configs_compute_correctly () =
  (* the 2(b) rotate bug belongs to config 14 alone: 12/13/15 compute the
     correct value ("the bug is not present in the more recent drivers
     associated with configurations 12 and 13, nor in the older driver
     associated with 15") *)
  let e =
    List.find (fun e -> String.equal e.Exhibit.label "2(b)") Exhibit.figure2
  in
  List.iter
    (fun id ->
      match Driver.run ~noise:false (Config.find id) ~opt:true e.Exhibit.testcase with
      | Outcome.Success s ->
          Alcotest.(check string)
            (Printf.sprintf "config %d+ computes correctly" id)
            e.Exhibit.reference_result s
      | o -> Alcotest.failf "config %d: %s" id (Outcome.to_string o))
    [ 12; 13; 15 ]

let test_fig2c_optimisations_fix_it () =
  (* "enabling optimizations (which perhaps forces inlining) also yields
     the correct result" *)
  let e =
    List.find (fun e -> String.equal e.Exhibit.label "2(c)") Exhibit.figure2
  in
  List.iter
    (fun id ->
      match Driver.run ~noise:false (Config.find id) ~opt:true e.Exhibit.testcase with
      | Outcome.Success s ->
          Alcotest.(check string)
            (Printf.sprintf "config %d+ correct" id)
            e.Exhibit.reference_result s
      | o -> Alcotest.failf "config %d+: %s" id (Outcome.to_string o))
    [ 12; 13 ]

let () =
  Alcotest.run "exhibits"
    [
      ( "reference",
        [
          Alcotest.test_case "expected results" `Quick test_reference_results;
          Alcotest.test_case "typecheck" `Quick test_exhibits_typecheck;
        ] );
      ("reproductions", List.map reproduction_case Exhibit.all);
      ( "negative space",
        [
          Alcotest.test_case "rotate bug only on 14" `Quick
            test_unaffected_configs_compute_correctly;
          Alcotest.test_case "2(c) fixed by optimisations" `Quick
            test_fig2c_optimisations_fix_it;
        ] );
    ]
