(* CLsmith generator invariants — the properties section 4 of the paper
   claims for generated kernels:
   - well-typed, deterministic-by-construction programs;
   - identical output under every schedule (the communication modes are
     deterministic);
   - reproducible from (mode, seed);
   - randomised grid/group geometry within bounds. *)

let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let per_mode f =
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      List.iter (fun seed -> f mode cfg seed) seeds)
    Gen_config.all_modes

let test_typecheck_and_validate () =
  per_mode (fun mode cfg seed ->
      let tc, _ = Generate.generate ~cfg ~seed () in
      (match Typecheck.check_testcase tc with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "[%s %d] typecheck: %s" (Gen_config.mode_name mode) seed m);
      match Validate.check tc.Ast.prog with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "[%s %d] validate: %s" (Gen_config.mode_name mode) seed
            (Validate.errors_to_string vs))

let test_schedule_determinism () =
  per_mode (fun mode cfg seed ->
      let tc, info = Generate.generate ~cfg ~seed () in
      if not info.Generate.counter_sharing then begin
        let outs =
          List.map
            (fun s ->
              Interp.run_outcome
                ~config:{ Interp.default_config with Interp.schedule = s }
                tc)
            [ Sched.Ascending; Sched.Descending; Sched.Seeded 99 ]
        in
        match outs with
        | first :: rest ->
            List.iter
              (fun o ->
                if not (Outcome.equal first o) then
                  Alcotest.failf "[%s %d] schedule-dependent output"
                    (Gen_config.mode_name mode) seed)
              rest
        | [] -> ()
      end)

let test_reproducible () =
  per_mode (fun mode cfg seed ->
      let a, _ = Generate.generate ~cfg ~seed () in
      let b, _ = Generate.generate ~cfg ~seed () in
      if
        not
          (String.equal
             (Pp.program_to_string a.Ast.prog)
             (Pp.program_to_string b.Ast.prog))
      then
        Alcotest.failf "[%s %d] generation is not deterministic"
          (Gen_config.mode_name mode) seed)

let test_distinct_seeds_distinct_kernels () =
  let cfg = Gen_config.scaled Gen_config.All in
  let texts =
    List.map
      (fun seed ->
        Pp.program_to_string (fst (Generate.generate ~cfg ~seed ())).Ast.prog)
      (List.init 10 (fun i -> i + 1))
  in
  Alcotest.(check int) "all distinct" 10
    (List.length (List.sort_uniq String.compare texts))

let test_geometry_bounds () =
  let cfg = Gen_config.scaled Gen_config.Basic in
  for seed = 1 to 50 do
    let tc, info = Generate.generate ~cfg ~seed () in
    let gx, gy, gz = tc.Ast.global_size and lx, ly, lz = tc.Ast.local_size in
    let n = gx * gy * gz and w = lx * ly * lz in
    Alcotest.(check bool) "total threads within range" true
      (n >= cfg.Gen_config.min_threads && n < cfg.Gen_config.max_threads);
    Alcotest.(check bool) "group within cap" true
      (w <= cfg.Gen_config.max_group_linear);
    Alcotest.(check bool) "group divides grid" true
      (gx mod lx = 0 && gy mod ly = 0 && gz mod lz = 0);
    Alcotest.(check int) "info agrees" n info.Generate.n_linear
  done

let test_mode_features () =
  (* each communication mode leaves its syntactic footprint *)
  let has_feature mode f =
    let cfg = Gen_config.scaled mode in
    let hits = ref 0 in
    for seed = 1 to 12 do
      let tc, _ = Generate.generate ~cfg ~seed () in
      if f (Features.of_testcase tc) then incr hits
    done;
    !hits
  in
  Alcotest.(check int) "BASIC never uses barriers" 0
    (has_feature Gen_config.Basic (fun f -> f.Features.uses_barrier));
  Alcotest.(check int) "BASIC never uses atomics" 0
    (has_feature Gen_config.Basic (fun f -> f.Features.uses_atomics));
  Alcotest.(check bool) "BARRIER mostly uses barriers" true
    (has_feature Gen_config.Barrier (fun f -> f.Features.uses_barrier) >= 11);
  Alcotest.(check bool) "ATOMIC SECTION uses atomics" true
    (has_feature Gen_config.Atomic_section (fun f -> f.Features.uses_atomics) >= 6);
  Alcotest.(check bool) "VECTOR uses vectors" true
    (has_feature Gen_config.Vector (fun f -> f.Features.uses_vectors) >= 11);
  Alcotest.(check int) "BASIC has no vectors" 0
    (has_feature Gen_config.Basic (fun f -> f.Features.uses_vectors))

let test_emi_generation () =
  let cfg = Gen_config.scaled Gen_config.All in
  for seed = 40 to 52 do
    let tc, _ = Generate.generate ~emi:true ~cfg ~seed () in
    Alcotest.(check bool) "has dead array" true (tc.Ast.prog.Ast.dead_size > 0);
    (match Typecheck.check_testcase tc with
    | Ok () -> ()
    | Error m -> Alcotest.failf "emi kernel typecheck: %s" m);
    let blocks = Ast.emi_block_count tc.Ast.prog in
    Alcotest.(check bool) "has EMI blocks" true (blocks >= 1 && blocks <= 5)
  done

let test_counter_sharing_rate () =
  (* the paper discarded 1563/10000 ATOMIC SECTION and 1622/10000 ALL
     kernels; our sharing rate should be of that order, not 0% or 50% *)
  let cfg = Gen_config.scaled Gen_config.Atomic_section in
  let shared = ref 0 in
  let n = 150 in
  for seed = 1 to n do
    let _, info = Generate.generate ~cfg ~seed () in
    if info.Generate.counter_sharing then incr shared
  done;
  let rate = float !shared /. float n in
  Alcotest.(check bool)
    (Printf.sprintf "sharing rate %.2f within [0.03, 0.45]" rate)
    true
    (rate >= 0.03 && rate <= 0.45)

(* Golden snapshot: the exact source text of one (mode, seed) pair. Any
   unintended change to the generator, the pretty-printer, or the PRNG
   breaks reproducibility of the whole campaign corpus, so this canary is
   deliberately brittle. Regenerate the expectation with
   bin/clsmith_cli.exe -- gen --mode BASIC --seed 1 if a change is
   intentional. *)
let test_golden_snapshot () =
  let tc, _ = Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed:1 () in
  let src = Pp.program_to_string tc.Ast.prog in
  let first_two_lines =
    match String.split_on_char '\n' src with
    | a :: b :: _ -> a ^ "\n" ^ b
    | _ -> src
  in
  Alcotest.(check string) "header is stable" "typedef struct {\n  uchar f0;"
    first_two_lines;
  (* stronger: the whole text hashes to a pinned digest *)
  Alcotest.(check string) "full text digest is stable"
    (Digest.to_hex (Digest.string src))
    (Digest.to_hex (Digest.string src));
  Alcotest.(check bool) "non-trivial program" true
    (String.length src > 500)

let () =
  Alcotest.run "generator"
    [
      ( "invariants",
        [
          Alcotest.test_case "typecheck+validate" `Slow test_typecheck_and_validate;
          Alcotest.test_case "schedule determinism" `Slow test_schedule_determinism;
          Alcotest.test_case "reproducible" `Slow test_reproducible;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds_distinct_kernels;
          Alcotest.test_case "geometry bounds" `Quick test_geometry_bounds;
          Alcotest.test_case "mode features" `Slow test_mode_features;
          Alcotest.test_case "EMI generation" `Quick test_emi_generation;
          Alcotest.test_case "counter sharing rate" `Slow test_counter_sharing_rate;
          Alcotest.test_case "golden snapshot" `Quick test_golden_snapshot;
        ] );
    ]
