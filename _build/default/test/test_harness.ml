(* Campaign machinery: majority voting, bucket classification, and
   small-scale end-to-end runs of every table generator. *)

let s x = Outcome.Success x
let bf = Outcome.Build_failure "boom"
let cr = Outcome.Crash "segv"

(* --- majority voting (sec 7.3's exact rule) --- *)

let test_majority_basics () =
  Alcotest.(check (option string)) "clear majority" (Some "a")
    (Majority.majority_output [ s "a"; s "a"; s "a"; s "b" ]);
  Alcotest.(check (option string)) "needs at least 3" None
    (Majority.majority_output [ s "a"; s "a"; s "b" ]);
  Alcotest.(check (option string)) "ties give none" None
    (Majority.majority_output [ s "a"; s "a"; s "a"; s "b"; s "b"; s "b" ]);
  Alcotest.(check (option string)) "non-computed excluded" (Some "a")
    (Majority.majority_output [ s "a"; s "a"; s "a"; bf; cr; Outcome.Timeout ]);
  Alcotest.(check (option string)) "empty" None (Majority.majority_output [])

let test_wrong_code_rule () =
  let majority = Some "a" in
  Alcotest.(check bool) "disagreeing success is wrong" true
    (Majority.is_wrong_code ~majority (s "b"));
  Alcotest.(check bool) "agreeing success is fine" false
    (Majority.is_wrong_code ~majority (s "a"));
  Alcotest.(check bool) "crash is not wrong code" false
    (Majority.is_wrong_code ~majority cr);
  Alcotest.(check bool) "no majority, nothing is wrong" false
    (Majority.is_wrong_code ~majority:None (s "b"))

let test_buckets () =
  let majority = Some "a" in
  let b o = Majority.bucket_name (Majority.bucket_of ~majority o) in
  Alcotest.(check string) "ok" "ok" (b (s "a"));
  Alcotest.(check string) "w" "w" (b (s "b"));
  Alcotest.(check string) "bf" "bf" (b bf);
  Alcotest.(check string) "c" "c" (b cr);
  Alcotest.(check string) "machine crash counts as crash" "c"
    (b (Outcome.Machine_crash "host down"));
  Alcotest.(check string) "to" "to" (b Outcome.Timeout)

(* --- table renderer --- *)

let test_table_fmt () =
  let t = Table_fmt.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has separator" true
    (String.length t > 0 && String.contains t '-');
  Alcotest.(check string) "pct" "50.0" (Table_fmt.pct 1 2);
  Alcotest.(check string) "pct of zero" "-" (Table_fmt.pct 1 0)

(* --- end-to-end smoke runs of each table (tiny sizes) --- *)

let test_classify_smoke () =
  let t = Classify.run ~per_mode:2 () in
  Alcotest.(check int) "21 reports" 21 (List.length t.Classify.reports);
  List.iter
    (fun (r : Classify.config_report) ->
      Alcotest.(check bool) "totals consistent" true
        (r.Classify.wrong + r.Classify.build_failures + r.Classify.crashes
         + r.Classify.timeouts
        <= r.Classify.total);
      Alcotest.(check bool) "fraction in range" true
        (r.Classify.fail_fraction >= 0.0 && r.Classify.fail_fraction <= 1.0))
    t.Classify.reports;
  (* the Xeon Phi manual exclusion *)
  let phi = List.find (fun r -> r.Classify.config.Config.id = 18) t.Classify.reports in
  Alcotest.(check bool) "Phi below threshold" false phi.Classify.above;
  Alcotest.(check bool) "renders" true (String.length (Classify.to_table t) > 100)

let test_campaign_smoke () =
  let rs = Campaign.run ~per_mode:4 ~modes:[ Gen_config.Basic ] () in
  match rs with
  | [ r ] ->
      Alcotest.(check int) "4 tests" 4 r.Campaign.tests_used;
      Alcotest.(check int) "20 config-level cells" 20 (List.length r.Campaign.per_config);
      List.iter
        (fun (_, c) ->
          Alcotest.(check int) "cells sum to tests" 4
            (c.Campaign.w + c.Campaign.bf + c.Campaign.c + c.Campaign.timeout
           + c.Campaign.ok))
        r.Campaign.per_config;
      Alcotest.(check bool) "renders" true
        (String.length (Campaign.to_table rs) > 100)
  | _ -> Alcotest.fail "expected one mode result"

let test_emi_campaign_smoke () =
  let t = Emi_campaign.run ~bases:2 ~variants:4 () in
  Alcotest.(check int) "2 bases" 2 t.Emi_campaign.bases_used;
  List.iter
    (fun (_, (r : Emi_campaign.row)) ->
      Alcotest.(check bool) "bad+stable bounded by bases" true
        (r.Emi_campaign.base_fails + r.Emi_campaign.stable <= 2))
    t.Emi_campaign.rows;
  Alcotest.(check bool) "renders" true
    (String.length (Emi_campaign.to_table t) > 100)

let test_bench_emi_smoke () =
  let t = Bench_emi.run ~variants:2 ~config_ids:[ 1; 19 ] () in
  Alcotest.(check int) "8 benchmarks" 8 (List.length t.Bench_emi.results);
  List.iter
    (fun (_, row) -> Alcotest.(check int) "2 configs" 2 (List.length row))
    t.Bench_emi.results;
  Alcotest.(check bool) "renders" true (String.length (Bench_emi.to_table t) > 100)

let test_bench_emi_codes () =
  Alcotest.(check string) "we" "we" (Bench_emi.code_to_string (Bench_emi.Wrong "e"));
  Alcotest.(check string) "ng" "ng" (Bench_emi.code_to_string Bench_emi.No_gen);
  Alcotest.(check string) "OK" "OK" (Bench_emi.code_to_string Bench_emi.Pass)

let () =
  Alcotest.run "harness"
    [
      ( "majority",
        [
          Alcotest.test_case "vote basics" `Quick test_majority_basics;
          Alcotest.test_case "wrong-code rule" `Quick test_wrong_code_rule;
          Alcotest.test_case "buckets" `Quick test_buckets;
        ] );
      ("render", [ Alcotest.test_case "table fmt" `Quick test_table_fmt ]);
      ( "campaigns",
        [
          Alcotest.test_case "classify" `Slow test_classify_smoke;
          Alcotest.test_case "table4" `Slow test_campaign_smoke;
          Alcotest.test_case "table5" `Slow test_emi_campaign_smoke;
          Alcotest.test_case "table3" `Slow test_bench_emi_smoke;
          Alcotest.test_case "table3 codes" `Quick test_bench_emi_codes;
        ] );
    ]
