(* The reference device: NDRange execution, memory spaces, barriers,
   divergence and crash detection, unions, atomics, quirk profiles. *)

open Build

let run ?config tc = Interp.run_outcome ?config tc

let success = function
  | Outcome.Success s -> s
  | o -> Alcotest.failf "expected success, got %s" (Outcome.to_string o)

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

let test_thread_identities () =
  (* out[t] = t for a 2x3 grid in two groups *)
  let prog = k [ store tid_linear ] in
  let tc = testcase ~gsize:(6, 1, 1) ~lsize:(3, 1, 1) prog in
  Alcotest.(check string) "identities" "out: 0,1,2,3,4,5" (success (run tc));
  let prog = k [ store lid_linear ] in
  let tc = testcase ~gsize:(6, 1, 1) ~lsize:(3, 1, 1) prog in
  Alcotest.(check string) "local ids" "out: 0,1,2,0,1,2" (success (run tc));
  let prog = k [ store (Ast.Thread_id Op.Group_linear_id) ] in
  let tc = testcase ~gsize:(6, 1, 1) ~lsize:(3, 1, 1) prog in
  Alcotest.(check string) "group ids" "out: 0,0,0,1,1,1" (success (run tc))

let test_3d_linearisation () =
  (* t_linear = (tz*Ny + ty)*Nx + tx, cf. section 3.1 *)
  let prog =
    k
      [
        store
          (Ast.Binop
             ( Op.Add,
               Ast.Binop
                 ( Op.Mul,
                   Ast.Binop
                     ( Op.Add,
                       Ast.Binop
                         (Op.Mul, Ast.Thread_id (Op.Global_id Op.Z), cul 2L),
                       Ast.Thread_id (Op.Global_id Op.Y) ),
                   cul 2L ),
               Ast.Thread_id (Op.Global_id Op.X) ));
      ]
  in
  let tc = testcase ~gsize:(2, 2, 2) ~lsize:(1, 1, 1) prog in
  Alcotest.(check string) "recomputed linear ids" "out: 0,1,2,3,4,5,6,7"
    (success (run tc))

let test_local_memory_isolated_per_group () =
  (* each group's master writes its group id into local memory; all threads
     of the group read it after a barrier *)
  let prog =
    k
      [
        decl ~space:Ty.Local "sh" Ty.uint;
        if_ (lid_linear == ci 0)
          [ assign (v "sh") (Ast.Thread_id Op.Group_linear_id) ];
        barrier;
        store (v "sh");
      ]
  in
  let tc = testcase ~gsize:(4, 1, 1) ~lsize:(2, 1, 1) prog in
  Alcotest.(check string) "per-group local memory" "out: 0,0,1,1" (success (run tc))

let test_barrier_divergence_detected () =
  let prog =
    k
      [
        if_ (lid_linear == ci 0) [ barrier ];
        store (ci 0);
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  match run tc with
  | Outcome.Ub m ->
      Alcotest.(check bool) "mentions divergence" true
        Stdlib.(String.length m > 0)
  | o -> Alcotest.failf "expected divergence, got %s" (Outcome.to_string o)

let test_divergent_iteration_counts () =
  (* both threads reach *a* barrier but with different loop trip counts *)
  let prog =
    k
      [
        decle "n" Ty.int (cast Ty.int lid_linear + ci 1);
        for_
          ~init:(decle "i" Ty.int (ci 0))
          ~cond:(v "i" < v "n")
          ~update:(assign_op Op.Add (v "i") (ci 1))
          [ barrier ];
        store (ci 0);
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  match run tc with
  | Outcome.Ub _ -> ()
  | o -> Alcotest.failf "expected divergence, got %s" (Outcome.to_string o)

let test_out_of_bounds_crash () =
  let prog =
    k
      [
        decl ~init:(il [ ie (ci 1); ie (ci 2); ie (ci 3) ]) "a" (Ty.Arr (Ty.int, 3));
        assign (idx (v "a") (ci 5)) (ci 1);
        store (ci 0);
      ]
  in
  match run (testcase prog) with
  | Outcome.Crash m ->
      Alcotest.(check bool) "mentions bounds" true
        Stdlib.(String.length m > 0)
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.to_string o)

let test_null_deref_crash () =
  let prog =
    k
      [
        decle "p" (Ty.Ptr (Ty.Private, Ty.int)) (ci 0);
        store (deref (v "p"));
      ]
  in
  match run (testcase prog) with
  | Outcome.Crash _ -> ()
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.to_string o)

let test_fuel_timeout () =
  let prog = k [ while_ (ci 1) []; store (ci 0) ] in
  match run (testcase prog) with
  | Outcome.Timeout -> ()
  | o -> Alcotest.failf "expected timeout, got %s" (Outcome.to_string o)

let test_atomics_sum () =
  (* every thread atomically adds its local id + 1 to a shared counter;
     master publishes after a barrier *)
  let prog =
    k
      [
        decl ~space:Ty.Local ~volatile:true "c" Ty.uint;
        if_ (lid_linear == ci 0) [ assign (v "c") (cu 0) ];
        barrier;
        expr
          (Ast.Atomic (Op.A_add, addr (v "c"), [ cast Ty.uint lid_linear + cu 1 ]));
        barrier;
        store (v "c");
      ]
  in
  let tc = testcase ~gsize:(4, 1, 1) ~lsize:(4, 1, 1) prog in
  Alcotest.(check string) "1+2+3+4" "out: 10,10,10,10" (success (run tc))

let test_atomic_cmpxchg () =
  let prog =
    k
      [
        decl ~space:Ty.Local ~volatile:true "c" Ty.uint;
        if_ (lid_linear == ci 0) [ assign (v "c") (cu 7) ];
        barrier;
        decle "old" Ty.uint (Ast.Atomic (Op.A_cmpxchg, addr (v "c"), [ cu 7; cu 9 ]));
        barrier;
        store (v "c");
      ]
  in
  let tc = testcase prog in
  Alcotest.(check string) "exchange applied" "out: 9" (success (run tc))

let test_union_type_punning () =
  (* writing through .b (short,long) then reading .a (uint) reinterprets *)
  let s = struct_ "S" [ sfield "c" Ty.short; sfield "d" Ty.long ] in
  let u = union_ "U" [ sfield "a" Ty.uint; sfield "b" (Ty.Named "S") ] in
  let prog =
    kernel1 ~aggregates:[ s; u ] "k"
      [
        decl "u" (Ty.Named "U");
        assign (field (field (v "u") "b") "c") (ci 0x0102);
        store (field (v "u") "a");
      ]
  in
  Alcotest.(check string) "low bytes visible through a" "out: 258"
    (success (run (testcase prog)))

let test_function_calls_and_pointers () =
  let f =
    func "bump" Ty.int
      [ ("p", Ty.Ptr (Ty.Private, Ty.int)) ]
      [ assign (deref (v "p")) (deref (v "p") + ci 1); ret (deref (v "p")) ]
  in
  let prog =
    kernel1 ~funcs:[ f ] "k"
      [
        decle "x" Ty.int (ci 40);
        expr (call "bump" [ addr (v "x") ]);
        expr (call "bump" [ addr (v "x") ]);
        store (v "x");
      ]
  in
  Alcotest.(check string) "pointer side effects" "out: 42"
    (success (run (testcase prog)))

let test_schedule_independence_of_barrier_comm () =
  (* neighbour exchange through local memory: the textbook deterministic
     communication pattern *)
  let prog =
    k
      [
        decl ~space:Ty.Local "a" (Ty.Arr (Ty.uint, 4));
        assign (idx (v "a") lid_linear) (cast Ty.uint lid_linear * cu 10);
        barrier;
        store (idx (v "a") (Ast.Binop (Op.Mod, cast Ty.uint lid_linear + cu 1, cu 4)));
      ]
  in
  let tc = testcase ~gsize:(4, 1, 1) ~lsize:(4, 1, 1) prog in
  let outs = List.map (fun s -> run ~config:{ Interp.default_config with Interp.schedule = s } tc) Sched.all_for_testing in
  match outs with
  | first :: rest ->
      Alcotest.(check string) "value" "out: 10,20,30,0" (success first);
      List.iter
        (fun o -> Alcotest.(check bool) "schedule independent" true (Outcome.equal first o))
        rest
  | [] -> ()

let test_quirk_profiles () =
  (* comma-first: Fig. 2(f) semantics *)
  let prog = k [ store (comma (ci 5) (ci 9)) ] in
  let tc = testcase prog in
  Alcotest.(check string) "comma standard" "out: 9" (success (run tc));
  let cfg =
    { Interp.default_config with
      Interp.profile = { Profile.reference with Profile.comma = Profile.Comma_first } }
  in
  Alcotest.(check string) "comma-first quirk" "out: 5" (success (run ~config:cfg tc))

let () =
  Alcotest.run "interp"
    [
      ( "execution",
        [
          Alcotest.test_case "thread identities" `Quick test_thread_identities;
          Alcotest.test_case "3d linearisation" `Quick test_3d_linearisation;
          Alcotest.test_case "local memory per group" `Quick
            test_local_memory_isolated_per_group;
          Alcotest.test_case "atomics sum" `Quick test_atomics_sum;
          Alcotest.test_case "cmpxchg" `Quick test_atomic_cmpxchg;
          Alcotest.test_case "union punning" `Quick test_union_type_punning;
          Alcotest.test_case "calls and pointers" `Quick test_function_calls_and_pointers;
          Alcotest.test_case "schedule independence" `Quick
            test_schedule_independence_of_barrier_comm;
          Alcotest.test_case "quirk profiles" `Quick test_quirk_profiles;
        ] );
      ( "failure modes",
        [
          Alcotest.test_case "divergence detection" `Quick test_barrier_divergence_detected;
          Alcotest.test_case "divergent iterations" `Quick test_divergent_iteration_counts;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_crash;
          Alcotest.test_case "null deref" `Quick test_null_deref_crash;
          Alcotest.test_case "fuel timeout" `Quick test_fuel_timeout;
        ] );
    ]
