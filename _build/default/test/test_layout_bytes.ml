(* Layout engine (sizes / alignments / field offsets, correct and buggy
   policies) and the byte-level scalar representation behind unions. *)

let field = Build.sfield

let env_of aggs = Ty.tyenv_of_list aggs

let s_char_short = Build.struct_ "CS" [ field "a" Ty.char; field "b" Ty.short ]

let s_mixed =
  Build.struct_ "M"
    [ field "a" Ty.char; field "b" Ty.long; field "c" Ty.int ]

let u_paper =
  (* Fig. 2(a)'s union U { uint a; struct S { short c; long d } b } *)
  [
    Build.struct_ "S" [ field "c" Ty.short; field "d" Ty.long ];
    Build.union_ "U" [ field "a" Ty.uint; field "b" (Ty.Named "S") ];
  ]

let test_standard_offsets () =
  let env = env_of [ s_char_short ] in
  Alcotest.(check int) "a at 0" 0
    (Layout.field_offset Layout.standard env ~agg:"CS" ~field:"a");
  Alcotest.(check int) "b padded to 2" 2
    (Layout.field_offset Layout.standard env ~agg:"CS" ~field:"b");
  Alcotest.(check int) "sizeof CS" 4
    (Layout.sizeof Layout.standard env (Ty.Named "CS"));
  let env = env_of [ s_mixed ] in
  Alcotest.(check int) "b aligned to 8" 8
    (Layout.field_offset Layout.standard env ~agg:"M" ~field:"b");
  Alcotest.(check int) "c at 16" 16
    (Layout.field_offset Layout.standard env ~agg:"M" ~field:"c");
  Alcotest.(check int) "M padded to 24" 24
    (Layout.sizeof Layout.standard env (Ty.Named "M"))

let test_char_first_bug_policy () =
  let env = env_of [ s_char_short ] in
  Alcotest.(check bool) "trigger shape detected" true
    (Layout.struct_is_char_first env s_char_short);
  Alcotest.(check int) "packed b at 1" 1
    (Layout.field_offset Layout.char_first_bug env ~agg:"CS" ~field:"b");
  (* structs not matching the trigger lay out normally *)
  let s2 = Build.struct_ "N" [ field "a" Ty.int; field "b" Ty.short ] in
  let env2 = env_of [ s2 ] in
  Alcotest.(check bool) "no trigger" false (Layout.struct_is_char_first env2 s2);
  Alcotest.(check int) "b unaffected" 4
    (Layout.field_offset Layout.char_first_bug env2 ~agg:"N" ~field:"b")

let test_union_layout () =
  let env = env_of u_paper in
  Alcotest.(check int) "union members at 0" 0
    (Layout.field_offset Layout.standard env ~agg:"U" ~field:"b");
  Alcotest.(check int) "sizeof S (padded)" 16
    (Layout.sizeof Layout.standard env (Ty.Named "S"));
  Alcotest.(check int) "sizeof U = padded max" 16
    (Layout.sizeof Layout.standard env (Ty.Named "U"));
  Alcotest.(check int) "alignof U" 8
    (Layout.alignof Layout.standard env (Ty.Named "U"))

let test_vector_and_array () =
  let env = env_of [] in
  Alcotest.(check int) "int4 is 16 bytes" 16
    (Layout.sizeof Layout.standard env (Ty.Vector (Ty.int_scalar, Ty.V4)));
  Alcotest.(check int) "int4 aligns to 16" 16
    (Layout.alignof Layout.standard env (Ty.Vector (Ty.int_scalar, Ty.V4)));
  Alcotest.(check int) "array size" 24
    (Layout.sizeof Layout.standard env (Ty.Arr (Ty.int, 6)));
  Alcotest.(check int) "pointer is 8" 8
    (Layout.sizeof Layout.standard env (Ty.Ptr (Ty.Global, Ty.char)))

(* every offset is aligned and fields don't overlap under the standard
   policy *)
let prop_offsets_sound =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (oneofl [ Ty.char; Ty.uchar; Ty.short; Ty.int; Ty.uint; Ty.long; Ty.ulong ]))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"offsets aligned and non-overlapping" gen
       (fun tys ->
         let fields = List.mapi (fun i t -> field (Printf.sprintf "f%d" i) t) tys in
         let agg = Build.struct_ "P" fields in
         let env = env_of [ agg ] in
         let offs = Layout.field_offsets Layout.standard env agg in
         let ok_align =
           List.for_all2
             (fun (_, off) t -> off mod Layout.alignof Layout.standard env t = 0)
             offs tys
         in
         let rec no_overlap = function
           | (_, o1) :: ((_, o2) :: _ as rest), t1 :: ts ->
               o1 + Layout.sizeof Layout.standard env t1 <= o2
               && no_overlap (rest, ts)
           | _ -> true
         in
         ok_align && no_overlap (offs, tys)))

(* byte representation round-trips *)
let prop_bytes_roundtrip =
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl
           [ { Ty.width = Ty.W8; sign = Ty.Signed };
             { Ty.width = Ty.W16; sign = Ty.Unsigned };
             { Ty.width = Ty.W32; sign = Ty.Signed };
             { Ty.width = Ty.W64; sign = Ty.Unsigned } ])
        int64)
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"write/read round-trip" gen
       (fun (ty, bits) ->
         let x = Scalar.make ty bits in
         let buf = Bytes.make 16 '\000' in
         Bytes_repr.write buf 3 x;
         Scalar.equal x (Bytes_repr.read buf 3 ty)))

let test_little_endian () =
  let buf = Bytes.make 8 '\000' in
  Bytes_repr.write buf 0 (Scalar.make Ty.int_scalar 0x01020304L);
  Alcotest.(check char) "LSB first" '\x04' (Bytes.get buf 0);
  Alcotest.(check char) "MSB last" '\x01' (Bytes.get buf 3);
  (* type punning: reading shorts out of an int *)
  let lo = Bytes_repr.read buf 0 { Ty.width = Ty.W16; sign = Ty.Unsigned } in
  Alcotest.(check int64) "low short" 0x0304L (Scalar.to_int64 lo)

let () =
  Alcotest.run "layout+bytes"
    [
      ( "layout",
        [
          Alcotest.test_case "standard offsets" `Quick test_standard_offsets;
          Alcotest.test_case "char-first bug policy" `Quick test_char_first_bug_policy;
          Alcotest.test_case "union layout" `Quick test_union_layout;
          Alcotest.test_case "vector/array/pointer" `Quick test_vector_and_array;
        ] );
      ("properties", [ prop_offsets_sound; prop_bytes_roundtrip ]);
      ("bytes", [ Alcotest.test_case "little endian" `Quick test_little_endian ]);
    ]
