(* Cross-cutting coverage: the paper-scale generator preset, AST rewriting
   identities, digests, the scheduler, and NDRange geometry. *)

let test_paper_scale_generation () =
  (* the paper's NDRange ranges: total threads in [100, 10000), work-groups
     up to 256 (section 4.1) — heavy, so only a couple of seeds *)
  List.iter
    (fun seed ->
      let cfg = Gen_config.paper_scale Gen_config.All in
      let tc, info = Generate.generate ~cfg ~seed () in
      Alcotest.(check bool) "thread count in paper range" true
        (info.Generate.n_linear >= 100 && info.Generate.n_linear < 10_000);
      Alcotest.(check bool) "group size within 256" true
        (info.Generate.w_linear <= 256);
      (match Typecheck.check_testcase tc with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m);
      match Validate.check tc.Ast.prog with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "seed %d: %s" seed (Validate.errors_to_string vs))
    [ 1 ]

let test_paper_scale_runs () =
  (* one paper-scale kernel actually executes on the reference device; pick
     a seed with a moderate thread count so the suite stays fast *)
  let cfg = Gen_config.paper_scale Gen_config.Basic in
  let rec pick seed =
    let tc, info = Generate.generate ~cfg ~seed () in
    if info.Generate.n_linear <= 1200 then (tc, info) else pick (seed + 1)
  in
  let tc, info = pick 1 in
  let config = { Interp.default_config with Interp.fuel = 2_000_000 } in
  match Interp.run_outcome ~config tc with
  | Outcome.Success s ->
      (* one comma-separated value per thread *)
      let values =
        match String.split_on_char ':' s with
        | [ _; rest ] -> List.length (String.split_on_char ',' rest)
        | _ -> 0
      in
      Alcotest.(check int) "one result per thread" info.Generate.n_linear values
  | Outcome.Timeout -> () (* acceptable for a heavyweight kernel *)
  | o -> Alcotest.failf "paper-scale run: %s" (Outcome.to_string o)

let test_ast_map_identity () =
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      let tc, _ = Generate.generate ~cfg ~seed:11 () in
      let mapped = Ast_map.program Ast_map.default tc.Ast.prog in
      Alcotest.(check string)
        (Gen_config.mode_name mode ^ " identity map")
        (Pp.program_to_string tc.Ast.prog)
        (Pp.program_to_string mapped))
    Gen_config.all_modes

let test_ast_counts_consistent () =
  let cfg = Gen_config.scaled Gen_config.All in
  let tc, _ = Generate.generate ~cfg ~seed:13 () in
  let p = tc.Ast.prog in
  Alcotest.(check bool) "statements exist" true (Ast.stmt_count p > 10);
  Alcotest.(check bool) "expressions outnumber statements" true
    (Ast.expr_count p > Ast.stmt_count p)

let test_digest_sensitivity () =
  let cfg = Gen_config.scaled Gen_config.Basic in
  let a, _ = Generate.generate ~cfg ~seed:21 () in
  let b, _ = Generate.generate ~cfg ~seed:22 () in
  Alcotest.(check bool) "different programs, different digests" false
    (Int64.equal (Digest_util.full a.Ast.prog) (Digest_util.full b.Ast.prog));
  Alcotest.(check bool) "digest is stable" true
    (Int64.equal (Digest_util.full a.Ast.prog) (Digest_util.full a.Ast.prog));
  Alcotest.(check bool) "mix changes the value" false
    (Int64.equal
       (Digest_util.mix (Digest_util.full a.Ast.prog) 1L)
       (Digest_util.mix (Digest_util.full a.Ast.prog) 2L))

let test_sched_orders_are_permutations () =
  List.iter
    (fun policy ->
      List.iter
        (fun n ->
          List.iter
            (fun epoch ->
              let o = Sched.order policy ~epoch n in
              let sorted = Array.copy o in
              Array.sort compare sorted;
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d epoch=%d is a permutation"
                   (Sched.to_string policy) n epoch)
                true
                (sorted = Array.init n Fun.id))
            [ 0; 1; 5 ])
        [ 1; 4; 16 ])
    Sched.all_for_testing

let test_ndrange_geometry () =
  let nd = Ndrange.make ~global:(6, 4, 2) ~local:(3, 2, 1) in
  Alcotest.(check int) "48 threads" 48 (Ndrange.n_linear nd);
  Alcotest.(check int) "6 per group" 6 (Ndrange.w_linear nd);
  Alcotest.(check int) "8 groups" 8 (Ndrange.num_groups nd);
  (* every thread appears exactly once across the groups *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun g ->
      List.iter
        (fun th ->
          let t = Ndrange.t_linear nd th in
          Alcotest.(check bool) "unique linear id" false (Hashtbl.mem seen t);
          Hashtbl.add seen t ())
        (Ndrange.threads_of_group nd g))
    (Ndrange.groups nd);
  Alcotest.(check int) "all threads covered" 48 (Hashtbl.length seen);
  Alcotest.check_raises "non-dividing group rejected"
    (Invalid_argument "Ndrange.make: work-group size must divide global size")
    (fun () -> ignore (Ndrange.make ~global:(5, 1, 1) ~local:(2, 1, 1)))

let test_rng_determinism_and_ranges () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let r = Rng.make 7 in
  for _ = 1 to 200 do
    let x = Rng.int_range r 5 12 in
    Alcotest.(check bool) "in range" true (x >= 5 && x < 12)
  done;
  let p = Rng.permutation (Rng.make 3) 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 20 Fun.id);
  (* split independence: consuming one stream leaves the other unchanged *)
  let base = Rng.make 5 in
  let s1 = Rng.split base in
  let v1 = Rng.int s1 1_000_000 in
  let base' = Rng.make 5 in
  let s2 = Rng.split base' in
  for _ = 1 to 50 do
    ignore (Rng.int base' 10)
  done;
  Alcotest.(check int) "split stream unaffected by parent" v1 (Rng.int s2 1_000_000)

let () =
  Alcotest.run "misc"
    [
      ( "paper scale",
        [
          Alcotest.test_case "generation" `Slow test_paper_scale_generation;
          Alcotest.test_case "execution" `Slow test_paper_scale_runs;
        ] );
      ( "ast utilities",
        [
          Alcotest.test_case "identity map" `Quick test_ast_map_identity;
          Alcotest.test_case "counts" `Quick test_ast_counts_consistent;
          Alcotest.test_case "digests" `Quick test_digest_sensitivity;
        ] );
      ( "runtime substrate",
        [
          Alcotest.test_case "scheduler permutations" `Quick
            test_sched_orders_are_permutations;
          Alcotest.test_case "ndrange geometry" `Quick test_ndrange_geometry;
          Alcotest.test_case "rng" `Quick test_rng_determinism_and_ranges;
        ] );
    ]
