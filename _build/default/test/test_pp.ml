(* Pretty-printer: the text handed to the simulated vendor compilers must be
   valid OpenCL C — precedence, the comma pitfall the generator hit, struct
   and constant-array syntax. *)

open Build

let check = Alcotest.(check string)

let test_expr_precedence () =
  check "mul binds over add" "a + b * c"
    (Pp.expr_to_string (v "a" + (v "b" * v "c")));
  check "parens when add under mul" "(a + b) * c"
    (Pp.expr_to_string ((v "a" + v "b") * v "c"));
  check "shift vs compare" "a << b >= c"
    (Pp.expr_to_string ((v "a" << v "b") >= v "c"));
  check "unary binds tight" "-a + b" (Pp.expr_to_string (neg (v "a") + v "b"));
  check "deref then field" "(*gp).f" (Pp.expr_to_string (field (deref (v "gp")) "f"));
  check "arrow" "p->x" (Pp.expr_to_string (arrow (v "p") "x"));
  check "ternary" "a ? b : c" (Pp.expr_to_string (cond (v "a") (v "b") (v "c")));
  (* the middle of ?: parses as a full expression in C, so no parentheses
     are needed around a nested conditional there *)
  check "nested ternary" "a ? x ? y : z : c"
    (Pp.expr_to_string (cond (v "a") (cond (v "x") (v "y") (v "z")) (v "c")));
  check "ternary under arithmetic parenthesised" "(a ? b : c) + d"
    (Pp.expr_to_string (cond (v "a") (v "b") (v "c") + v "d"))

let test_comma_in_argument_lists () =
  (* the bug we found on ourselves: an unparenthesised comma expression in
     an argument list changes the call's arity *)
  check "comma argument parenthesised" "f((a , b), c)"
    (Pp.expr_to_string (call "f" [ comma (v "a") (v "b"); v "c" ]));
  check "comma in safe macro" "safe_add((a , b), c)"
    (Pp.expr_to_string (Ast.Safe_binop (Op.Add, comma (v "a") (v "b"), v "c")));
  check "comma in vector literal" "(int2)((a , b), c)"
    (Pp.expr_to_string (vec2 Ty.int_scalar (comma (v "a") (v "b")) (v "c")))

let test_safe_macros_and_builtins () =
  check "safe div macro" "safe_div(a, b)"
    (Pp.expr_to_string (Ast.Safe_binop (Op.Div, v "a", v "b")));
  check "safe lshift" "safe_lshift(a, b)"
    (Pp.expr_to_string (Ast.Safe_binop (Op.Shl, v "a", v "b")));
  check "safe unary minus" "safe_unary_minus(a)"
    (Pp.expr_to_string (Ast.Safe_neg (v "a")));
  check "rotate" "rotate(a, b)"
    (Pp.expr_to_string (Ast.Builtin (Op.Rotate, [ v "a"; v "b" ])));
  check "thread id" "get_linear_global_id()" (Pp.expr_to_string tid_linear)

let test_constants_with_suffixes () =
  check "plain int" "42" (Pp.expr_to_string (ci 42));
  check "uint suffix" "7U" (Pp.expr_to_string (cu 7));
  check "ulong suffix" "7UL" (Pp.expr_to_string (cul 7L));
  check "unsigned renders unsigned" "18446744073709551615UL"
    (Pp.expr_to_string (cul (-1L)));
  check "long suffix" "-5L"
    (Pp.expr_to_string (cs { Ty.width = Ty.W64; sign = Ty.Signed } (-5L)))

let test_statements () =
  check "assign" "x = y + 1;" (Pp.stmt_to_string (assign (v "x") (v "y" + ci 1)));
  check "compound assign" "x |= y;" (Pp.stmt_to_string (assign_op Op.BitOr (v "x") (v "y")));
  check "barrier local" "barrier(CLK_LOCAL_MEM_FENCE);" (Pp.stmt_to_string barrier);
  check "emi guard prints dead comparison" "if (dead[3] < dead[1])\n{\n}"
    (Pp.stmt_to_string
       (Ast.Emi { Ast.emi_id = 0; emi_lo = 1; emi_hi = 3; emi_body = [] }));
  check "for loop"
    "for (int i = 0; i < 5; i += 1)\n{\n  x = i;\n}"
    (Pp.stmt_to_string (for_up "i" ~from:0 ~below:5 [ assign (v "x") (v "i") ]))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    Stdlib.(i + nl <= hl)
    && (String.equal (String.sub haystack i nl) needle || go Stdlib.(i + 1))
  in
  go 0

let test_program_rendering () =
  let e = List.hd Exhibit.figure1 in
  let src = Pp.program_to_string e.Exhibit.testcase.Ast.prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains src needle))
    [
      "typedef struct {"; "char a;"; "short b;";
      "kernel void k(global ulong *out)"; "S s = { 1, 1 };";
      "out[get_linear_global_id()] = (ulong)(s.a + s.b);";
    ]

let test_source_line_count () =
  let e = List.hd Exhibit.figure1 in
  let n = Pp.source_line_count e.Exhibit.testcase.Ast.prog in
  Alcotest.(check bool) "small exhibit is under 15 lines" true Stdlib.(n < 15 && n > 4)

let () =
  Alcotest.run "pp"
    [
      ( "pp",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "comma in arguments" `Quick test_comma_in_argument_lists;
          Alcotest.test_case "safe macros" `Quick test_safe_macros_and_builtins;
          Alcotest.test_case "constant suffixes" `Quick test_constants_with_suffixes;
          Alcotest.test_case "statements" `Quick test_statements;
          Alcotest.test_case "program rendering" `Quick test_program_rendering;
          Alcotest.test_case "line count" `Quick test_source_line_count;
        ] );
    ]
