(* The test-case reducer: shrinks while preserving the interestingness
   predicate, never introduces UB, and handles the unwrap transformations. *)

open Build

let test_reduce_trivial_predicate () =
  (* "interesting = contains a barrier": everything else should go *)
  let prog =
    kernel1 "k"
      [
        decle "x" Ty.int (ci 1);
        assign (v "x") (v "x" + ci 1);
        for_up "i" ~from:0 ~below:3 [ assign (v "x") (v "i") ];
        barrier;
        assign (idx (v "out") tid_linear) (cast Ty.ulong (v "x"));
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  let interesting t = Ast.uses_barrier t.Ast.prog in
  let reduced, stats = Reduce.reduce ~interesting tc in
  Alcotest.(check bool) "still interesting" true (interesting reduced);
  Alcotest.(check bool) "shrunk" true
    Stdlib.(stats.Reduce.final_stmts < stats.Reduce.initial_stmts);
  Alcotest.(check bool) "very small" true Stdlib.(stats.Reduce.final_stmts <= 2)

let test_reduce_preserves_wrongness () =
  (* find an Oclgrind (comma) miscompilation and reduce it *)
  let cfg = Gen_config.scaled Gen_config.Basic in
  let c = Config.find 19 in
  let wrong tc =
    match (Driver.reference_outcome tc, Driver.run c ~opt:false tc) with
    | Outcome.Success a, Outcome.Success b -> not (String.equal a b)
    | _ -> false
  in
  let rec hunt seed =
    if Stdlib.(seed > 800) then None
    else
      let tc, info = Generate.generate ~cfg ~seed () in
      if (not info.Generate.counter_sharing) && wrong tc then Some tc
      else hunt Stdlib.(seed + 1)
  in
  match hunt 1 with
  | None -> Alcotest.fail "no comma miscompilation found within 800 seeds"
  | Some tc ->
      let reduced, stats = Reduce.reduce ~max_attempts:2500 ~interesting:wrong tc in
      Alcotest.(check bool) "still miscompiled" true (wrong reduced);
      Alcotest.(check bool) "meaningfully smaller" true
        Stdlib.(stats.Reduce.final_stmts * 2 < stats.Reduce.initial_stmts);
      (match Typecheck.check_testcase reduced with
      | Ok () -> ()
      | Error m -> Alcotest.failf "reduced program ill-typed: %s" m);
      (* the reducer's concurrency-aware gate: no UB introduced *)
      let r =
        Interp.run
          ~config:{ Interp.default_config with Interp.detect_races = true }
          reduced
      in
      (match r.Interp.outcome with
      | Outcome.Ub m -> Alcotest.failf "reduction introduced UB: %s" m
      | _ -> ())

let test_reduce_rejects_race_introducing_steps () =
  (* removing this barrier would be a textual reduction, but it introduces
     a data race — the well-formedness gate must refuse it *)
  let prog =
    kernel1 "k"
      [
        decl ~space:Ty.Local "a" (Ty.Arr (Ty.uint, 2));
        assign (idx (v "a") lid_linear) (cu 1);
        barrier;
        assign (idx (v "a") (Ast.Binop (Op.Mod, cast Ty.uint lid_linear + cu 1, cu 2))) (cu 2);
        barrier;
        assign (idx (v "out") tid_linear) (cast Ty.ulong (idx (v "a") (ci 0)));
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  (* interesting: both writes still present *)
  let interesting t =
    Stdlib.( >= )
      (Ast.fold_program_blocks
         (fun acc b ->
           Stdlib.( + ) acc
             (Ast.fold_stmts
                (fun n s ->
                  match s with
                  | Ast.Assign (Ast.Index _, _, _) -> Stdlib.(n + 1)
                  | _ -> n)
                0 b))
         0 t.Ast.prog)
      3
  in
  let reduced, _ = Reduce.reduce ~interesting tc in
  (* the barrier between the two writes must have survived *)
  Alcotest.(check bool) "barrier retained" true (Ast.uses_barrier reduced.Ast.prog)

let () =
  Alcotest.run "reducer"
    [
      ( "reduce",
        [
          Alcotest.test_case "trivial predicate" `Quick test_reduce_trivial_predicate;
          Alcotest.test_case "preserves wrongness" `Slow test_reduce_preserves_wrongness;
          Alcotest.test_case "race-aware gate" `Quick
            test_reduce_rejects_race_introducing_steps;
        ] );
    ]
