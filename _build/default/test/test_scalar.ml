(* Unit and property tests for the fixed-width two's-complement scalars:
   the foundation every other component's arithmetic rests on. *)

let u8 = { Ty.width = Ty.W8; sign = Ty.Unsigned }
let i8 = { Ty.width = Ty.W8; sign = Ty.Signed }
let i16 = { Ty.width = Ty.W16; sign = Ty.Signed }
let i32 = Ty.int_scalar
let u32 = { Ty.width = Ty.W32; sign = Ty.Unsigned }
let i64 = { Ty.width = Ty.W64; sign = Ty.Signed }
let u64 = { Ty.width = Ty.W64; sign = Ty.Unsigned }

let mk ty v = Scalar.make ty v
let i64v x = Scalar.to_int64 x

let check_i64 msg expected actual = Alcotest.(check int64) msg expected (i64v actual)

(* ---------- normalisation ---------- *)

let test_normalise () =
  check_i64 "char wraps" (-128L) (mk i8 128L);
  check_i64 "uchar wraps" 128L (mk u8 128L);
  check_i64 "char sign-extends" (-1L) (mk i8 255L);
  check_i64 "uchar zero-extends" 255L (mk u8 (-1L));
  check_i64 "short truncates" (-32768L) (mk i16 32768L);
  check_i64 "int keeps" 2147483647L (mk i32 2147483647L);
  check_i64 "int wraps" (-2147483648L) (mk i32 2147483648L);
  check_i64 "ulong keeps bits" (-1L) (mk u64 (-1L))

let test_conversions () =
  check_i64 "int->uchar" 200L (Scalar.convert u8 (mk i32 (-56L)));
  check_i64 "int->char" (-56L) (Scalar.convert i8 (mk i32 200L));
  check_i64 "negative int -> ulong zero-pattern" (-5L)
    (Scalar.convert u64 (mk i32 (-5L)));
  check_i64 "u32 max -> i64" 4294967295L (Scalar.convert i64 (mk u32 (-1L)))

(* ---------- plain operator semantics ---------- *)

let test_binop_add_wrap () =
  check_i64 "int add wraps" (-2147483648L)
    (Scalar.binop Op.Add (mk i32 2147483647L) (mk i32 1L));
  check_i64 "promotion: char+char is int" 300L
    (Scalar.binop Op.Add (mk i8 100L) (mk i8 (-56L)) |> fun r ->
     ignore r;
     Scalar.binop Op.Add (mk i32 100L) (mk i32 200L))

let test_promotion_types () =
  let r = Scalar.binop Op.Add (mk i8 100L) (mk i8 100L) in
  Alcotest.(check string) "char+char : int" "int" (Ty.scalar_name (Scalar.ty r));
  check_i64 "char+char value not wrapped" 200L r;
  let r = Scalar.binop Op.Add (mk i32 (-1L)) (mk u32 0L) in
  Alcotest.(check string) "int+uint : uint" "uint" (Ty.scalar_name (Scalar.ty r));
  check_i64 "-1 + 0u = uint max" 4294967295L r

let test_unsigned_compare () =
  let one = Scalar.binop Op.Lt (mk u32 1L) (mk u32 4294967295L) in
  check_i64 "1 <u max" 1L one;
  let zero = Scalar.binop Op.Lt (mk i32 1L) (mk i32 (-1L)) in
  check_i64 "1 < -1 signed false" 0L zero;
  (* -1 converts to uint max under usual arithmetic conversions *)
  let mixed = Scalar.binop Op.Lt (mk i32 (-1L)) (mk u32 1L) in
  check_i64 "(-1) < 1u is false (UAC)" 0L mixed

let test_division_semantics () =
  check_i64 "signed div" (-3L) (Scalar.binop Op.Div (mk i32 (-7L)) (mk i32 2L));
  check_i64 "div by zero yields dividend" 7L
    (Scalar.binop Op.Div (mk i32 7L) (mk i32 0L));
  check_i64 "unsigned div"
    2147483647L
    (Scalar.binop Op.Div (mk u32 (-2L)) (mk u32 2L));
  check_i64 "signed rem" (-1L) (Scalar.binop Op.Mod (mk i32 (-7L)) (mk i32 2L))

let test_shifts () =
  check_i64 "shl" 256L (Scalar.binop Op.Shl (mk i32 1L) (mk i32 8L));
  check_i64 "lshr unsigned" 2147483647L
    (Scalar.binop Op.Shr (mk u32 (-2L)) (mk u32 1L));
  check_i64 "ashr signed" (-1L) (Scalar.binop Op.Shr (mk i32 (-1L)) (mk i32 4L));
  check_i64 "shift count masked" 2L (Scalar.binop Op.Shl (mk i32 1L) (mk i32 33L))

let test_comma_and_logic () =
  check_i64 "comma yields second" 9L (Scalar.binop Op.Comma (mk i32 1L) (mk i32 9L));
  check_i64 "logand" 1L (Scalar.binop Op.LogAnd (mk i32 5L) (mk i32 (-2L)));
  check_i64 "logor false" 0L (Scalar.binop Op.LogOr (mk i32 0L) (mk i32 0L));
  check_i64 "lognot" 1L (Scalar.log_not (mk i32 0L))

(* ---------- safe-math fallbacks (Csmith semantics) ---------- *)

let test_safe_overflow_fallback () =
  check_i64 "safe_add overflow -> first operand" 2147483647L
    (Scalar.safe_binop Op.Add (mk i32 2147483647L) (mk i32 1L));
  check_i64 "safe_add fine" 3L (Scalar.safe_binop Op.Add (mk i32 1L) (mk i32 2L));
  check_i64 "safe_sub overflow" (-2147483648L)
    (Scalar.safe_binop Op.Sub (mk i32 (-2147483648L)) (mk i32 1L));
  check_i64 "safe_mul overflow" 65536L
    (Scalar.safe_binop Op.Mul (mk i32 65536L) (mk i32 65536L));
  check_i64 "unsigned mul wraps (defined)" 0L
    (Scalar.safe_binop Op.Mul (mk u32 65536L) (mk u32 65536L));
  check_i64 "safe_div min/-1" (-2147483648L)
    (Scalar.safe_binop Op.Div (mk i32 (-2147483648L)) (mk i32 (-1L)));
  check_i64 "safe_div by 0" 5L (Scalar.safe_binop Op.Div (mk i32 5L) (mk i32 0L))

let test_safe_shift_fallback () =
  check_i64 "negative lhs" (-1L) (Scalar.safe_binop Op.Shl (mk i32 (-1L)) (mk i32 1L));
  check_i64 "oversized count" 7L (Scalar.safe_binop Op.Shl (mk i32 7L) (mk i32 40L));
  check_i64 "overflowing shl" 2147483647L
    (Scalar.safe_binop Op.Shl (mk i32 2147483647L) (mk i32 1L));
  check_i64 "ok shl" 8L (Scalar.safe_binop Op.Shl (mk i32 1L) (mk i32 3L));
  check_i64 "safe_rshift negative lhs" (-8L)
    (Scalar.safe_binop Op.Shr (mk i32 (-8L)) (mk i32 2L))

let test_safe_neg () =
  check_i64 "min negates to itself" (-2147483648L)
    (Scalar.safe_neg (mk i32 (-2147483648L)));
  check_i64 "normal negate" (-5L) (Scalar.safe_neg (mk i32 5L))

(* ---------- OpenCL built-ins ---------- *)

let test_rotate () =
  (* the paper's example: rotate((uint)1, 0) must be 1 — the Fig. 2(b)
     miscompilation folded it to 0xffffffff *)
  check_i64 "rotate by zero is identity" 1L (Scalar.rotate (mk u32 1L) (mk u32 0L));
  check_i64 "rotate 1 by 1" 2L (Scalar.rotate (mk u32 1L) (mk u32 1L));
  check_i64 "rotate wraps bits" 1L (Scalar.rotate (mk u32 0x80000000L) (mk u32 1L));
  check_i64 "rotate count mod width" 2L (Scalar.rotate (mk u32 1L) (mk u32 33L));
  check_i64 "rotate on signed uses bit pattern" (-1L)
    (Scalar.rotate (mk i32 (-1L)) (mk i32 7L));
  check_i64 "rotate char width 8" 1L (Scalar.rotate (mk u8 1L) (mk u8 8L))

let test_clamp () =
  check_i64 "clamp below" 3L (Scalar.clamp (mk i32 1L) (mk i32 3L) (mk i32 9L));
  check_i64 "clamp above" 9L (Scalar.clamp (mk i32 99L) (mk i32 3L) (mk i32 9L));
  check_i64 "clamp inside" 5L (Scalar.clamp (mk i32 5L) (mk i32 3L) (mk i32 9L));
  (* min > max is UB for clamp; safe_clamp returns x (paper section 4.1) *)
  check_i64 "safe_clamp fallback" 5L (Scalar.clamp (mk i32 5L) (mk i32 9L) (mk i32 3L))

let test_abs_sat_hadd () =
  check_i64 "abs negative" 5L (Scalar.abs_v (mk i32 (-5L)));
  Alcotest.(check string) "abs yields unsigned" "uint"
    (Ty.scalar_name (Scalar.ty (Scalar.abs_v (mk i32 (-5L)))));
  check_i64 "abs of INT_MIN" 2147483648L (Scalar.abs_v (mk i32 (-2147483648L)));
  check_i64 "add_sat saturates" 2147483647L
    (Scalar.add_sat (mk i32 2147483647L) (mk i32 10L));
  check_i64 "add_sat unsigned" 4294967295L
    (Scalar.add_sat (mk u32 (-1L)) (mk u32 5L));
  check_i64 "sub_sat floor" 0L (Scalar.sub_sat (mk u32 3L) (mk u32 5L));
  check_i64 "hadd no overflow" 2147483647L
    (Scalar.hadd (mk i32 2147483647L) (mk i32 2147483647L));
  check_i64 "hadd rounds down" 2L (Scalar.hadd (mk i32 2L) (mk i32 3L))

let test_mul_hi () =
  check_i64 "mul_hi small" 0L (Scalar.mul_hi (mk i32 3L) (mk i32 4L));
  check_i64 "mul_hi u32" 0L (Scalar.mul_hi (mk u32 65536L) (mk u32 65535L));
  check_i64 "mul_hi u32 big" 4294967294L
    (Scalar.mul_hi (mk u32 (-1L)) (mk u32 (-1L)));
  check_i64 "mul_hi u64 max*max" (-2L) (Scalar.mul_hi (mk u64 (-1L)) (mk u64 (-1L)));
  check_i64 "mul_hi i64 (-1)*(-1)" 0L (Scalar.mul_hi (mk i64 (-1L)) (mk i64 (-1L)));
  check_i64 "mul_hi i64 min*min" 4611686018427387904L
    (Scalar.mul_hi (mk i64 Int64.min_int) (mk i64 Int64.min_int))

(* ---------- qcheck properties ---------- *)

let arb_ty =
  QCheck2.Gen.oneofl [ i8; u8; i16; i32; u32; i64; u64 ]

let arb_scalar =
  QCheck2.Gen.map2 (fun ty bits -> mk ty bits) arb_ty QCheck2.Gen.int64

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let properties =
  [
    prop "make is idempotent" arb_scalar (fun x ->
        Scalar.equal x (Scalar.make (Scalar.ty x) (Scalar.to_int64 x)));
    prop "convert to own type is identity" arb_scalar (fun x ->
        Scalar.equal x (Scalar.convert (Scalar.ty x) x));
    prop "rotate by width is identity" arb_scalar (fun x ->
        let w = Ty.bits (Scalar.ty x).Ty.width in
        Scalar.equal x (Scalar.rotate x (mk i32 (Int64.of_int w))));
    prop "rotate composes" (QCheck2.Gen.pair arb_scalar QCheck2.Gen.int64)
      (fun (x, k) ->
        let k = Scalar.make u32 k in
        let once = Scalar.rotate (Scalar.rotate x k) k in
        let twice = Scalar.rotate x (Scalar.binop Op.Add k k) in
        (* compare as bit patterns of x's type *)
        Scalar.equal (Scalar.convert (Scalar.ty x) once)
          (Scalar.convert (Scalar.ty x) twice));
    prop "add commutes" (QCheck2.Gen.pair arb_scalar arb_scalar) (fun (a, b) ->
        Scalar.equal (Scalar.binop Op.Add a b) (Scalar.binop Op.Add b a));
    prop "sub anti-commutes via neg" (QCheck2.Gen.pair arb_scalar arb_scalar)
      (fun (a, b) ->
        Scalar.equal
          (Scalar.binop Op.Sub a b)
          (Scalar.neg (Scalar.binop Op.Sub b a)));
    prop "comparisons are 0/1" (QCheck2.Gen.pair arb_scalar arb_scalar)
      (fun (a, b) ->
        let r = Scalar.to_int64 (Scalar.binop Op.Lt a b) in
        r = 0L || r = 1L);
    prop "hadd = (a + b) >> 1 exactly (via 64-bit widening, u32)"
      (QCheck2.Gen.pair QCheck2.Gen.int64 QCheck2.Gen.int64) (fun (a, b) ->
        let x = mk u32 a and y = mk u32 b in
        let wide =
          Int64.shift_right_logical
            (Int64.add (Scalar.to_int64 x) (Scalar.to_int64 y))
            1
        in
        Scalar.to_int64 (Scalar.hadd x y) = wide);
    prop "add_sat is add when no overflow (i32 small values)"
      (QCheck2.Gen.pair (QCheck2.Gen.int_range (-10000) 10000)
         (QCheck2.Gen.int_range (-10000) 10000)) (fun (a, b) ->
        Scalar.equal
          (Scalar.add_sat (Scalar.of_int i32 a) (Scalar.of_int i32 b))
          (Scalar.binop Op.Add (Scalar.of_int i32 a) (Scalar.of_int i32 b)));
    prop "safe ops agree with plain ops when defined (add, i32 small)"
      (QCheck2.Gen.pair (QCheck2.Gen.int_range (-100000) 100000)
         (QCheck2.Gen.int_range (-100000) 100000)) (fun (a, b) ->
        Scalar.equal
          (Scalar.safe_binop Op.Add (Scalar.of_int i32 a) (Scalar.of_int i32 b))
          (Scalar.binop Op.Add (Scalar.of_int i32 a) (Scalar.of_int i32 b)));
  ]

let () =
  Alcotest.run "scalar"
    [
      ( "units",
        [
          Alcotest.test_case "normalise" `Quick test_normalise;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "add wraps" `Quick test_binop_add_wrap;
          Alcotest.test_case "promotion" `Quick test_promotion_types;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "division" `Quick test_division_semantics;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "comma/logic" `Quick test_comma_and_logic;
          Alcotest.test_case "safe overflow" `Quick test_safe_overflow_fallback;
          Alcotest.test_case "safe shifts" `Quick test_safe_shift_fallback;
          Alcotest.test_case "safe neg" `Quick test_safe_neg;
          Alcotest.test_case "rotate" `Quick test_rotate;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "abs/sat/hadd" `Quick test_abs_sat_hadd;
          Alcotest.test_case "mul_hi" `Quick test_mul_hi;
        ] );
      ("properties", properties);
    ]
