(* Typechecker: acceptance of legal OpenCL C shapes and rejection of the
   illegal ones the generator must never produce. *)

open Build

let accepts name prog =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check_program prog with
      | Ok () -> ()
      | Error m -> Alcotest.failf "expected to typecheck, got: %s" m)

let rejects name ?(substring = "") prog =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check_program prog with
      | Ok () -> Alcotest.fail "expected a type error"
      | Error m ->
          if substring <> "" then
            let contains =
              let nl = String.length substring and hl = String.length m in
              let rec go i =
                Stdlib.(i + nl <= hl)
                && (String.equal (String.sub m i nl) substring
                   || go Stdlib.(i + 1))
              in
              go 0
            in
            if not contains then
              Alcotest.failf "error %S does not mention %S" m substring)

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

let i32v = { Ty.width = Ty.W32; sign = Ty.Signed }
let u32v = { Ty.width = Ty.W32; sign = Ty.Unsigned }

let acceptance =
  [
    accepts "implicit scalar conversions"
      (k [ decle "x" Ty.char (ci 300); store (v "x" + cul 5L) ]);
    accepts "vector same-type arithmetic"
      (k
         [
           decle "a" (Ty.Vector (i32v, Ty.V4)) (vec4 i32v [ ci 1; ci 2; ci 3; ci 4 ]);
           store (x_of (v "a" + v "a"));
         ]);
    accepts "vector-scalar widening"
      (k
         [
           decle "a" (Ty.Vector (i32v, Ty.V4)) (vec4 i32v [ ci 1; ci 2; ci 3; ci 4 ]);
           store (x_of (v "a" + ci 7));
         ]);
    accepts "explicit convert between vector element types"
      (k
         [
           decle "a" (Ty.Vector (i32v, Ty.V4)) (vec4 i32v [ ci 1; ci 2; ci 3; ci 4 ]);
           decle "b" (Ty.Vector (u32v, Ty.V4)) (cast (Ty.Vector (u32v, Ty.V4)) (v "a"));
           store (x_of (v "b"));
         ]);
    accepts "atomic on local uint"
      (k
         [
           decl ~space:Ty.Local ~volatile:true "c" Ty.uint;
           store (Ast.Atomic (Op.A_inc, addr (v "c"), []));
         ]);
    accepts "null pointer constant initialiser"
      (k [ decle "p" (Ty.Ptr (Ty.Private, Ty.int)) (ci 0); store (ci 1) ]);
    accepts "pointer equality"
      (k
         [
           decle "x" Ty.int (ci 1);
           decle "p" (Ty.Ptr (Ty.Private, Ty.int)) (addr (v "x"));
           store (v "p" == v "p");
         ]);
    accepts "break inside loop"
      (k [ for_up "i" ~from:0 ~below:3 [ break_ ]; store (ci 0) ]);
    accepts "EMI guard in range"
      { (kernel1 ~dead_size:4 "k" [ Ast.Emi { Ast.emi_id = 0; emi_lo = 0; emi_hi = 3; emi_body = [] }; store (ci 0) ]) with Ast.dead_size = 4 };
  ]

let rejection =
  [
    rejects "vector element types do not mix" ~substring:"implicit"
      (k
         [
           decle "a" (Ty.Vector (i32v, Ty.V4)) (vec4 i32v [ ci 1; ci 2; ci 3; ci 4 ]);
           decle "b" (Ty.Vector (u32v, Ty.V4)) (cast (Ty.Vector (u32v, Ty.V4)) (v "a"));
           store (x_of (v "a" + v "b"));
         ]);
    rejects "vector length mismatch" ~substring:"length"
      (k
         [
           decle "a" (Ty.Vector (i32v, Ty.V4)) (vec4 i32v [ ci 1; ci 2; ci 3; ci 4 ]);
           decle "b" (Ty.Vector (i32v, Ty.V2)) (vec2 i32v (ci 1) (ci 2));
           store (x_of (v "a" + v "b"));
         ]);
    rejects "atomic on private data" ~substring:"atomic"
      (k [ decle "x" Ty.uint (cu 0); store (Ast.Atomic (Op.A_inc, addr (v "x"), [])) ]);
    rejects "atomic on 64-bit location" ~substring:"atomic"
      (k
         [
           decl ~space:Ty.Local "c" Ty.ulong;
           store (Ast.Atomic (Op.A_inc, addr (v "c"), []));
         ]);
    rejects "break outside loop" ~substring:"break"
      (k [ break_; store (ci 0) ]);
    rejects "unbound variable" ~substring:"unbound" (k [ store (v "nope") ]);
    rejects "unknown field" ~substring:"field"
      (kernel1
         ~aggregates:[ struct_ "S" [ sfield "a" Ty.int ] ]
         "k"
         [ decl ~init:(il [ ie (ci 1) ]) "s" (Ty.Named "S"); store (field (v "s") "zz") ]);
    rejects "EMI out of range" ~substring:"EMI"
      (kernel1 ~dead_size:4 "k"
         [ Ast.Emi { Ast.emi_id = 0; emi_lo = 1; emi_hi = 9; emi_body = [] }; store (ci 0) ]);
    rejects "EMI without dead array" ~substring:"dead"
      (k [ Ast.Emi { Ast.emi_id = 0; emi_lo = 0; emi_hi = 1; emi_body = [] }; store (ci 0) ]);
    rejects "recursion" ~substring:"recursion"
      (kernel1
         ~funcs:[ func "f" Ty.int [ ("x", Ty.int) ] [ ret (call "f" [ v "x" ]) ] ]
         "k"
         [ store (call "f" [ ci 1 ]) ]);
    rejects "local with initialiser" ~substring:"initialiser"
      (k [ decl ~space:Ty.Local ~init:(ie (ci 0)) "a" Ty.uint; store (ci 0) ]);
    rejects "kernel must return void" ~substring:"void"
      {
        (k [ store (ci 0) ]) with
        Ast.kernel = { ((k [ store (ci 0) ]).Ast.kernel) with Ast.ret = Ty.int };
      };
    rejects "assigning to constant data" ~substring:"lvalue"
      {
        (k [ assign (idx (idx (v "perm") (ci 0)) (ci 0)) (ci 1); store (ci 0) ]) with
        Ast.constant_arrays =
          [ { Ast.ca_name = "perm"; ca_elem = u32v; ca_data = [| [| 0L; 1L |]; [| 2L; 3L |] |] } ];
      };
  ]

let test_testcase_checks () =
  let prog = k [ store (ci 0) ] in
  (match Typecheck.check_testcase (testcase ~gsize:(4, 1, 1) ~lsize:(2, 1, 1) prog) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid testcase rejected: %s" m);
  (match Typecheck.check_testcase (testcase ~gsize:(5, 1, 1) ~lsize:(2, 1, 1) prog) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "group size must divide global size")

let () =
  Alcotest.run "typecheck"
    [
      ("accepts", acceptance);
      ("rejects", rejection);
      ("testcase", [ Alcotest.test_case "ndrange" `Quick test_testcase_checks ]);
    ]
