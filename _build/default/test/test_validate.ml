(* The determinism validator: uniform control flow, sanctioned patterns. *)

open Build

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

let ok name ?(allow_group_uniform = false) prog =
  Alcotest.test_case name `Quick (fun () ->
      match Validate.check ~allow_group_uniform prog with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "unexpected: %s" (Validate.errors_to_string vs))

let bad name prog =
  Alcotest.test_case name `Quick (fun () ->
      match Validate.check prog with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "expected a uniformity violation")

(* the canonical atomic section, as the generator emits it *)
let section =
  Ast.If
    ( Ast.Binop
        (Op.Eq, Ast.Atomic (Op.A_inc, addr (idx (v "ctrs") (ci 0)), []), ci 2),
      [
        decle "sl" Ty.uint (cu 5);
        expr (Ast.Atomic (Op.A_add, addr (idx (v "specials") (ci 0)), [ v "sl" ]));
      ],
      [] )

let shared_decls =
  [
    decl ~space:Ty.Local ~volatile:true "ctrs" (Ty.Arr (Ty.uint, 2));
    decl ~space:Ty.Local ~volatile:true "specials" (Ty.Arr (Ty.uint, 2));
  ]

let cases =
  [
    ok "plain uniform kernel"
      (k [ decle "x" Ty.int (ci 1); if_ (v "x" > ci 0) [ store (v "x") ] ]);
    bad "thread id in condition"
      (k [ if_ (cast Ty.int tid_linear > ci 0) [ store (ci 1) ] ]);
    bad "taint flows through assignment"
      (k
         [
           decle "x" Ty.int (ci 0);
           assign (v "x") (cast Ty.int lid_linear);
           if_ (v "x" == ci 0) [ store (ci 1) ];
         ]);
    bad "atomic result in plain condition"
      (k
         (shared_decls
         @ [ if_ (Ast.Atomic (Op.A_inc, addr (idx (v "ctrs") (ci 0)), []) > cu 0)
               [ store (ci 1) ] ]));
    ok "atomic section pattern is sanctioned" (k (shared_decls @ [ section; store (ci 0) ]));
    ok "group master pattern is sanctioned"
      (k
         [
           decle "t" Ty.uint (cu 0);
           if_ (lid_linear == ci 0) [ assign (v "t") (cu 1) ];
           store (v "t");
         ]);
    bad "master guard with a barrier inside is not sanctioned"
      (k [ if_ (lid_linear == ci 0) [ barrier ]; store (ci 0) ]);
    ok "group ids allowed under allow_group_uniform" ~allow_group_uniform:true
      (k [ if_ (cast Ty.int (grid Op.X) == ci 0) [ store (ci 1) ] ]);
    bad "group ids rejected by default"
      (k [ if_ (cast Ty.int (grid Op.X) == ci 0) [ store (ci 1) ] ]);
    ok "sizes are always uniform"
      (k
         [
           if_ (Ast.Thread_id Op.Local_linear_size > cu 1) [ store (ci 1) ];
         ]);
  ]

let test_is_atomic_section () =
  Alcotest.(check bool) "recognised" true (Validate.is_atomic_section section);
  (* a section writing a non-local variable is not a valid section *)
  let bad_section =
    Ast.If
      ( Ast.Binop
          (Op.Eq, Ast.Atomic (Op.A_inc, addr (idx (v "ctrs") (ci 0)), []), ci 2),
        [
          assign (v "outer") (ci 1);
          expr (Ast.Atomic (Op.A_add, addr (idx (v "specials") (ci 0)), [ cu 0 ]));
        ],
        [] )
  in
  Alcotest.(check bool) "writes to outer state rejected" false
    (Validate.is_atomic_section bad_section);
  (* missing the final special-value add *)
  let no_add =
    Ast.If
      ( Ast.Binop
          (Op.Eq, Ast.Atomic (Op.A_inc, addr (idx (v "ctrs") (ci 0)), []), ci 2),
        [ decle "sl" Ty.uint (cu 5) ],
        [] )
  in
  Alcotest.(check bool) "missing atomic_add rejected" false
    (Validate.is_atomic_section no_add)

(* every generated kernel must validate — the generator's core guarantee *)
let test_generated_kernels_validate () =
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      for seed = 500 to 512 do
        let tc, _ = Generate.generate ~cfg ~seed () in
        match Validate.check tc.Ast.prog with
        | Ok () -> ()
        | Error vs ->
            Alcotest.failf "[%s seed %d] %s" (Gen_config.mode_name mode) seed
              (Validate.errors_to_string vs)
      done)
    Gen_config.all_modes

let () =
  Alcotest.run "validate"
    [
      ("uniformity", cases);
      ( "patterns",
        [
          Alcotest.test_case "atomic section recognition" `Quick test_is_atomic_section;
          Alcotest.test_case "generated kernels validate" `Quick
            test_generated_kernels_validate;
        ] );
    ]
