(* Vector value semantics: component-wise lifting, OpenCL's 0/-1 comparison
   results, swizzles, conversions. *)

let u32 = { Ty.width = Ty.W32; sign = Ty.Unsigned }
let i32 = Ty.int_scalar

let vec ty xs = Vecval.make ty (Array.of_list (List.map (Scalar.make ty) xs))
let to_list v = Array.to_list (Array.map Scalar.to_int64 (Vecval.components v))

let check_vec msg expected v = Alcotest.(check (list int64)) msg expected (to_list v)

let test_componentwise () =
  let a = vec i32 [ 1L; 2L; 3L; 4L ] and b = vec i32 [ 10L; 20L; 30L; 40L ] in
  check_vec "add" [ 11L; 22L; 33L; 44L ] (Vecval.binop Op.Add a b);
  check_vec "mul" [ 10L; 40L; 90L; 160L ] (Vecval.binop Op.Mul a b)

let test_comparisons_all_ones () =
  let a = vec i32 [ 1L; 5L; 3L; 9L ] and b = vec i32 [ 2L; 4L; 3L; 8L ] in
  (* OpenCL: vector comparisons yield 0 / -1 per lane, signed type *)
  check_vec "lt lanes" [ -1L; 0L; 0L; 0L ] (Vecval.binop Op.Lt a b);
  check_vec "eq lanes" [ 0L; 0L; -1L; 0L ] (Vecval.binop Op.Eq a b);
  let ua = vec u32 [ 1L; 5L; 3L; 9L ] and ub = vec u32 [ 2L; 4L; 3L; 8L ] in
  let r = Vecval.binop Op.Gt ua ub in
  Alcotest.(check string) "unsigned compare yields signed type" "int"
    (Ty.scalar_name (Vecval.elem_ty r))

let test_swizzle () =
  let a = vec i32 [ 1L; 2L; 3L; 4L ] in
  (match Vecval.swizzle a [ 3; 0 ] with
  | Some w -> check_vec "wx" [ 4L; 1L ] w
  | None -> Alcotest.fail "swizzle failed");
  (match Vecval.swizzle a [ 0 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "single-component swizzle should be None");
  Alcotest.(check int64) "get" 3L (Scalar.to_int64 (Vecval.get a 2))

let test_convert_and_splat () =
  let a = vec i32 [ -1L; 300L ] in
  let b = Vecval.convert { Ty.width = Ty.W8; sign = Ty.Unsigned } a in
  check_vec "convert truncates per lane" [ 255L; 44L ] b;
  let s = Vecval.splat i32 Ty.V4 (Scalar.of_int i32 7) in
  check_vec "splat" [ 7L; 7L; 7L; 7L ] s

let test_invalid_lengths () =
  Alcotest.check_raises "length 3 invalid"
    (Invalid_argument "Vecval.make: invalid vector length 3") (fun () ->
      ignore (vec i32 [ 1L; 2L; 3L ]))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let arb_vec4 =
  QCheck2.Gen.map
    (fun xs -> vec i32 xs)
    (QCheck2.Gen.list_repeat 4 QCheck2.Gen.int64)

let properties =
  [
    prop "binop lifts scalar op per lane"
      (QCheck2.Gen.pair arb_vec4 arb_vec4) (fun (a, b) ->
        let r = Vecval.binop Op.BitXor a b in
        List.for_all2 Scalar.equal
          (Array.to_list (Vecval.components r))
          (List.map2 (Scalar.binop Op.BitXor)
             (Array.to_list (Vecval.components a))
             (Array.to_list (Vecval.components b))));
    prop "map2 with safe ops is total" (QCheck2.Gen.pair arb_vec4 arb_vec4)
      (fun (a, b) ->
        let r = Vecval.map2 (Scalar.safe_binop Op.Div) a b in
        Vecval.length r = 4);
    prop "equal is reflexive" arb_vec4 (fun a -> Vecval.equal a a);
  ]

let () =
  Alcotest.run "vecval"
    [
      ( "units",
        [
          Alcotest.test_case "componentwise" `Quick test_componentwise;
          Alcotest.test_case "comparisons 0/-1" `Quick test_comparisons_all_ones;
          Alcotest.test_case "swizzle" `Quick test_swizzle;
          Alcotest.test_case "convert/splat" `Quick test_convert_and_splat;
          Alcotest.test_case "invalid lengths" `Quick test_invalid_lengths;
        ] );
      ("properties", properties);
    ]
