(* The vendor-simulation layer: feature extraction, fault gates, the
   configuration table, and driver determinism. *)

open Build

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

(* --- feature extraction --- *)

let feats prog = Features.of_testcase (testcase prog)

let test_feature_extraction () =
  let f = feats (k [ barrier; store (ci 0) ]) in
  Alcotest.(check bool) "uses_barrier" true f.Features.uses_barrier;
  Alcotest.(check int) "barrier_count" 1 f.Features.barrier_count;
  Alcotest.(check bool) "no callee barrier" false f.Features.barrier_in_callee;

  let callee = func "h" Ty.Void [] [ barrier ] in
  let f = feats (kernel1 ~funcs:[ callee ] "k" [ expr (call "h" []); store (ci 0) ]) in
  Alcotest.(check bool) "callee barrier" true f.Features.barrier_in_callee;
  Alcotest.(check bool) "straight-line callee barrier" true
    f.Features.barrier_in_callee_straight;

  let loopy = func "h" Ty.Void [] [ for_up "i" ~from:0 ~below:2 [ barrier ] ] in
  let f = feats (kernel1 ~funcs:[ loopy ] "k" [ expr (call "h" []); store (ci 0) ]) in
  Alcotest.(check bool) "loop-nested callee barrier is not straight" false
    f.Features.barrier_in_callee_straight;
  Alcotest.(check bool) "barrier in loop" true f.Features.barrier_in_loop;

  let f = feats (k [ while_ (ci 1) []; store (ci 0) ]) in
  Alcotest.(check bool) "while(1) detected" true f.Features.while_true;

  let f =
    feats
      (k
         [
           decle "x" Ty.uint (cu 0);
           assign_op Op.BitOr (v "x") (cast Ty.uint (gid Op.X));
           store (v "x");
         ])
  in
  (* the cast breaks the size_t mixing... without the cast it triggers *)
  Alcotest.(check bool) "cast hides size_t mix" false f.Features.mixes_int_size_t;
  let f =
    feats
      (k
         [
           decle "x" Ty.ulong (cul 0L);
           Ast.Assign (v "x", Ast.A_op Op.BitOr, gid Op.X);
           store (v "x");
         ])
  in
  Alcotest.(check bool) "size_t |= mix detected" true f.Features.mixes_int_size_t

let test_char_first_feature () =
  let s = struct_ "S" [ sfield "a" Ty.char; sfield "b" Ty.short ] in
  let f =
    feats
      (kernel1 ~aggregates:[ s ] "k"
         [ decl ~init:(il [ ie (ci 1); ie (ci 1) ]) "s" (Ty.Named "S"); store (ci 0) ])
  in
  Alcotest.(check bool) "char-first struct" true f.Features.char_first_struct;
  Alcotest.(check bool) "has struct" true f.Features.has_struct

(* --- gate determinism and rates --- *)

let test_gate_determinism_and_rate () =
  let f = feats (k [ store (ci 0) ]) in
  let a = Fault.gate Fault.Full f ~salt:3 ~rate:0.5 in
  let b = Fault.gate Fault.Full f ~salt:3 ~rate:0.5 in
  Alcotest.(check bool) "deterministic" a b;
  Alcotest.(check bool) "rate 1 fires" true (Fault.gate Fault.Full f ~salt:3 ~rate:1.0);
  Alcotest.(check bool) "rate 0 never" false (Fault.gate Fault.Full f ~salt:3 ~rate:0.0);
  (* empirical rate over many programs should be near the nominal rate *)
  let fired = ref 0 in
  let n = 300 in
  for seed = 1 to n do
    let tc, _ = Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed () in
    let f = Features.of_testcase tc in
    if Fault.gate Fault.Full f ~salt:11 ~rate:0.3 then incr fired
  done;
  let rate = float !fired /. float n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.2f near 0.3" rate)
    true
    Stdlib.(rate > 0.2 && rate < 0.4)

let test_stable_digest_ignores_emi_bodies () =
  let cfg = Gen_config.scaled Gen_config.All in
  let base, info = Generate.generate ~emi:true ~cfg ~seed:777 () in
  if info.Generate.counter_sharing then ()
  else begin
    let variant =
      Variant.derive ~base
        ~params:(Prune.make_params ~pleaf:1.0 ~pcompound:1.0 ~plift:0.0)
        ~seed:1
    in
    Alcotest.(check bool) "stable digest invariant under pruning" true
      (Int64.equal
         (Digest_util.stable base.Ast.prog)
         (Digest_util.stable variant.Ast.prog));
    Alcotest.(check bool) "full digest changes under pruning" false
      (Int64.equal
         (Digest_util.full base.Ast.prog)
         (Digest_util.full variant.Ast.prog))
  end

(* --- configuration table --- *)

let test_config_table () =
  Alcotest.(check int) "21 configurations" 21 (List.length Config.all);
  List.iteri
    (fun i c -> Alcotest.(check int) "ids are 1..21 in order" Stdlib.(i + 1) c.Config.id)
    Config.all;
  Alcotest.(check (list int)) "paper's above-threshold set"
    [ 1; 2; 3; 4; 9; 12; 13; 14; 15; 19 ]
    Config.above_threshold_ids;
  let oclgrind = Config.find 19 in
  Alcotest.(check bool) "Oclgrind does not optimise" false oclgrind.Config.optimizes;
  let phi = Config.find 18 in
  Alcotest.(check bool) "Xeon Phi manually below threshold" true
    phi.Config.manual_below

(* --- driver behaviour --- *)

let test_driver_deterministic () =
  let cfg = Gen_config.scaled Gen_config.All in
  let tc, _ = Generate.generate ~cfg ~seed:31 () in
  List.iter
    (fun c ->
      let a = Driver.run c ~opt:true tc and b = Driver.run c ~opt:true tc in
      Alcotest.(check bool)
        (Printf.sprintf "config %d deterministic" c.Config.id)
        true (Outcome.equal a b))
    Config.all

let test_noise_filter () =
  (* with noise suppressed, a plain struct-free kernel passes everywhere
     except deterministic-fault configurations *)
  let tc = testcase (k [ store (ci 7) ]) in
  List.iter
    (fun id ->
      match Driver.run ~noise:false (Config.find id) ~opt:false tc with
      | Outcome.Success _ -> ()
      | o ->
          Alcotest.failf "config %d- should pass a trivial kernel, got %s" id
            (Outcome.to_string o))
    [ 1; 4; 9; 12; 15; 19 ]

let test_size_t_rejection () =
  (* config 15 rejects int/size_t mixes at both levels with identical
     build-failure rates (sec 6) *)
  let prog =
    k
      [
        decle "x" Ty.ulong (cul 0L);
        Ast.Assign (v "x", Ast.A_op Op.BitOr, gid Op.X);
        store (v "x");
      ]
  in
  let tc = testcase prog in
  let c15 = Config.find 15 in
  (match Driver.run c15 ~opt:false tc with
  | Outcome.Build_failure m ->
      Alcotest.(check bool) "mentions size_t" true
        Stdlib.(String.length m > 0)
  | o -> Alcotest.failf "expected build failure, got %s" (Outcome.to_string o));
  match Driver.run c15 ~opt:true tc with
  | Outcome.Build_failure _ -> ()
  | o -> Alcotest.failf "expected build failure at +, got %s" (Outcome.to_string o)

let test_compiled_program_inspection () =
  (* inspecting the vendor's compiled output, like the paper's PTX digging *)
  let prog = k [ store (ci 3 + ci 4) ] in
  let tc = testcase prog in
  let compiled = Driver.compiled_program (Config.find 12) ~opt:true tc in
  Alcotest.(check bool) "constants folded by the vendor pipeline" true
    (Ast.exists_expr
       (function Ast.Const c -> Int64.equal c.Ast.value 7L | _ -> false)
       compiled)

let () =
  Alcotest.run "vendors"
    [
      ( "features",
        [
          Alcotest.test_case "extraction" `Quick test_feature_extraction;
          Alcotest.test_case "char-first" `Quick test_char_first_feature;
        ] );
      ( "faults",
        [
          Alcotest.test_case "gates" `Slow test_gate_determinism_and_rate;
          Alcotest.test_case "stable digest" `Quick test_stable_digest_ignores_emi_bodies;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "table" `Quick test_config_table;
          Alcotest.test_case "driver determinism" `Quick test_driver_deterministic;
          Alcotest.test_case "noise filter" `Quick test_noise_filter;
          Alcotest.test_case "size_t rejection" `Quick test_size_t_rejection;
          Alcotest.test_case "compiled inspection" `Quick test_compiled_program_inspection;
        ] );
    ]
