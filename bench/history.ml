let default_path = "BENCH_history.jsonl"

let record ?(path = default_path) line =
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc line;
    output_char oc '\n';
    close_out oc
  with Sys_error m -> Printf.eprintf "bench history: %s (run not recorded)\n" m

(* The BENCH-JSON payloads are canonical printf-built JSON (no
   whitespace) containing floats, which the store's codec deliberately
   rejects — so field extraction here is a plain scan for the first
   ["key":] occurrence. For the fuzz payload that "first occurrence"
   rule is load-bearing: the [feedback] policy object precedes
   [no_feedback], so unqualified numeric keys read the feedback run. *)

let find_key line key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let num_at line i =
  let n = String.length line in
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e' in
  let j = ref i in
  while !j < n && is_num line.[!j] do
    incr j
  done;
  if !j = i then None else float_of_string_opt (String.sub line i (!j - i))

let num_field line key = Option.bind (find_key line key) (num_at line)

let str_field line key =
  match find_key line key with
  | Some i when i < String.length line && line.[i] = '"' -> (
      match String.index_from_opt line (i + 1) '"' with
      | Some j -> Some (String.sub line (i + 1) (j - i - 1))
      | None -> None)
  | _ -> None

(* last element of the first ["key":[...]] array — the final cumulative
   value of a per-generation series *)
let series_last line key =
  match find_key line key with
  | Some i when i < String.length line && line.[i] = '[' -> (
      match String.index_from_opt line i ']' with
      | Some j -> (
          let body = String.sub line (i + 1) (j - i - 1) in
          match List.rev (String.split_on_char ',' body) with
          | last :: _ -> float_of_string_opt last
          | [] -> None)
      | None -> None)
  | _ -> None

let load path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if String.trim line = "" then acc else line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []

(* which fields must match for two runs of a bench to be comparable,
   and which fields carry its throughput / coverage *)
let checks_of = function
  | "campaign_parallel_scaling" ->
      Some ([ "cells"; "jobs" ], [ "cells_per_s_j1"; "cells_per_s_jN" ], None)
  | "fuzz_feedback_vs_blind" ->
      Some ([ "budget"; "seed"; "jobs" ], [], Some "coverage")
  | "dist_loopback" -> Some ([ "cells"; "workers" ], [ "cells_per_s" ], None)
  | "serve_stress" -> Some ([ "clients"; "requests" ], [ "req_per_s" ], None)
  | _ -> None

let threshold = 0.15 (* relative cells/s drop that counts as a regression *)

let compare_one name prev latest =
  match checks_of name with
  | None ->
      Printf.printf "bench compare: %s: no comparison rules, skipped\n" name;
      false
  | Some (idents, rate_keys, coverage_key) ->
      let comparable =
        List.for_all
          (fun k ->
            match (num_field prev k, num_field latest k) with
            | Some a, Some b -> a = b
            | _ -> false)
          idents
      in
      if not comparable then begin
        Printf.printf
          "bench compare: %s: latest run not comparable to previous (%s \
           differ), skipped\n"
          name
          (String.concat "/" idents);
        false
      end
      else begin
        let bad = ref false in
        let rate key =
          match (num_field prev key, num_field latest key) with
          | Some a, Some b when a > 0. ->
              let delta = (b -. a) /. a in
              let flag = delta < -.threshold in
              if flag then bad := true;
              Printf.printf
                "bench compare: %s: %s %.1f -> %.1f (%+.1f%%)%s\n" name key a b
                (100. *. delta)
                (if flag then " REGRESSION" else "")
          | _ -> ()
        in
        List.iter rate rate_keys;
        (* fuzz throughput: feedback-policy cells over its wall time *)
        if rate_keys = [] then begin
          let cps line =
            match (num_field line "cells", num_field line "t_s") with
            | Some c, Some t when t > 0. -> Some (c /. t)
            | _ -> None
          in
          match (cps prev, cps latest) with
          | Some a, Some b when a > 0. ->
              let delta = (b -. a) /. a in
              let flag = delta < -.threshold in
              if flag then bad := true;
              Printf.printf
                "bench compare: %s: cells/s %.1f -> %.1f (%+.1f%%)%s\n" name a
                b (100. *. delta)
                (if flag then " REGRESSION" else "")
          | _ -> ()
        end;
        (match coverage_key with
        | None -> ()
        | Some key -> (
            match (series_last prev key, series_last latest key) with
            | Some a, Some b ->
                let flag = b < a in
                if flag then bad := true;
                Printf.printf
                  "bench compare: %s: final %s %.0f -> %.0f%s\n" name key a b
                  (if flag then " REGRESSION" else "")
            | _ -> ()));
        !bad
      end

let compare_latest ?(path = default_path) () =
  match load path with
  | [] ->
      Printf.printf "bench compare: no history at %s\n" path;
      0
  | lines ->
      (* per bench name, the last two runs in file (= chronological) order *)
      let tbl = Hashtbl.create 8 in
      let names = ref [] in
      List.iter
        (fun line ->
          match str_field line "bench" with
          | None -> ()
          | Some name ->
              if not (Hashtbl.mem tbl name) then names := name :: !names;
              Hashtbl.replace tbl name
                (line
                :: (Option.value ~default:[] (Hashtbl.find_opt tbl name))))
        lines;
      let regressed = ref false in
      List.iter
        (fun name ->
          match Hashtbl.find tbl name with
          | latest :: prev :: _ ->
              if compare_one name prev latest then regressed := true
          | _ ->
              Printf.printf "bench compare: %s: no baseline (single run)\n"
                name)
        (List.rev !names);
      if !regressed then 1 else 0
