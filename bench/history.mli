(** Benchmark history trail and regression gate.

    Every [scaling] / [fuzz] bench run already persists its BENCH-JSON
    payload to [BENCH_scaling.json] / [BENCH_fuzz.json]; {!record} also
    appends it to [BENCH_history.jsonl], one run per line, so successive
    revisions of the tree leave a comparable performance trail (payloads
    are stamped with the git commit and the jobs actually used).

    [bench compare] ({!compare_latest}) reads that trail and, per bench
    name, compares the latest run against the previous {e comparable}
    one — same scale parameters (cells/budget/seed) and same jobs, so
    throughput numbers mean the same thing. It flags:

    - a throughput drop of more than 15% (cells/s), and
    - any coverage drop at equal budget and seed (the fuzz loop is
      deterministic, so any drop is a real behavior change, not noise),

    returning nonzero so CI can gate on it. Fewer than two comparable
    runs is "no baseline", not a failure. *)

val default_path : string
(** ["BENCH_history.jsonl"], written in the current directory like the
    BENCH_*.json records. *)

val record : ?path:string -> string -> unit
(** Append one BENCH-JSON payload line to the history trail. Best
    effort: an unwritable history warns on stderr and never fails the
    bench run that produced the payload. *)

val compare_latest : ?path:string -> unit -> int
(** Compare the latest run of every bench name against its previous
    comparable run, printing one verdict line per check. Returns 1 if
    any regression was flagged, 0 otherwise (including "no history" /
    "no baseline"). *)
