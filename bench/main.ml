(* Benchmark and experiment-regeneration harness.

   With no arguments, regenerates every table and figure of the paper's
   evaluation (at the scaled default sizes documented in EXPERIMENTS.md)
   and then runs the Bechamel microbenchmarks. Individual experiments:

     dune exec bench/main.exe -- table1|table2|table3|table4|table5
     dune exec bench/main.exe -- figure1|figure2|races|micro|ablate|scaling|dist|fuzz
     dune exec bench/main.exe -- compare   # regression-gate BENCH_history.jsonl

   Global flags (before or between experiment names):

     -j N   execution-pool size for the campaign experiments (default:
            recommended domain count; output is identical across -j)
     -n N   override the default sample size of table1/3/4/5 (tiny CI
            smoke runs use -n 2)

   Scaled sizes are chosen so the whole run completes in minutes on one
   core; the paper's full sizes are available through bin/campaign_cli.exe
   with explicit -n. *)

let jobs = ref (Pool.recommended_jobs ())
let scale = ref None (* -n override of per-experiment sample sizes *)
let stamp = ref "" (* -stamp: caller-provided timestamp for the records *)

(* every BENCH_*.json payload carries the same host block, so records
   from different experiments and revisions stay comparable *)
let host_block () =
  Printf.sprintf
    "\"host\":{\"cores\":%d,\"ocaml\":%S,\"os\":%S,\"word_size\":%d,\
     \"commit\":%S,\"stamp\":%S}"
    (Hostinfo.cores ()) Hostinfo.ocaml_version Hostinfo.os_type
    Hostinfo.word_size
    (Hostinfo.git_commit ())
    !stamp

let size default = match !scale with Some n -> n | None -> default

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '#')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s completed in %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 — configurations and the reliability threshold (sec 7.1)";
  timed "table1" (fun () ->
      let t = Classify.run ~jobs:!jobs ~per_mode:(size 8) () in
      print_endline (Classify.to_table t);
      let a, n = Classify.agreement_with_paper t in
      Printf.printf "classification agreement with the paper: %d/%d\n" a n)

let table2 () =
  section "Table 2 — OpenCL benchmarks studied using EMI testing (sec 7.2)";
  print_endline (Suite.table2 ())

let table3 () =
  section "Table 3 — EMI testing over Parboil/Rodinia (sec 7.2)";
  timed "table3" (fun () ->
      print_endline
        (Bench_emi.to_table (Bench_emi.run ~jobs:!jobs ~variants:(size 10) ())))

let table4 () =
  section "Table 4 — intensive CLsmith differential testing (sec 7.3)";
  timed "table4" (fun () ->
      print_endline
        (Campaign.to_table (Campaign.run ~jobs:!jobs ~per_mode:(size 40) ())))

let table5 () =
  section "Table 5 — CLsmith+EMI metamorphic testing (sec 7.4)";
  timed "table5" (fun () ->
      print_endline
        (Emi_campaign.to_table
           (Emi_campaign.run ~jobs:!jobs ~bases:(size 16) ~variants:10 ())))

let figure n exhibits =
  section (Printf.sprintf "Figure %d — bug exhibits (sec 6)" n);
  print_endline (Exhibit.summary_table exhibits)

let races () =
  section "Data races in spmv and myocyte (sec 2.4)";
  List.iter
    (fun (b : Suite.benchmark) ->
      let config = { Interp.default_config with Interp.detect_races = true } in
      let r = Interp.run ~config (b.Suite.testcase ()) in
      Printf.printf "%-11s %s\n" b.Suite.name
        (match r.Interp.races with
        | [] -> "race-free"
        | race :: _ -> "RACY: " ^ Race.race_to_string race))
    Suite.all

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let ablate () =
  section "Ablation 1 — EMI free-variable substitutions on vs off (sec 5)";
  let t3 = Bench_emi.run ~variants:8 () in
  let count p =
    List.fold_left
      (fun acc (_, row) ->
        acc + List.length (List.filter (fun (_, c) -> p c) row))
      0 t3.Bench_emi.results
  in
  let w_subst = count (function Bench_emi.Wrong "e" -> true | _ -> false) in
  let w_nosubst = count (function Bench_emi.Wrong "d" -> true | _ -> false) in
  let w_both = count (function Bench_emi.Wrong "?" -> true | _ -> false) in
  Printf.printf
    "wrong-code cells needing substitutions ON: %d; OFF: %d; either: %d\n"
    w_subst w_nosubst w_both;
  Printf.printf
    "(the paper found 15 / 6 / 7 — substitutions are worth having, but both \
     settings find unique defects)\n";

  section "Ablation 2 — the lift pruning strategy (sec 5, 7.4)";
  let gcfg = Gen_config.scaled Gen_config.All in
  let induced ~params_filter =
    let combos = List.filter params_filter Prune.paper_combinations in
    let hits = ref 0 and bases = ref 0 in
    let seed = ref 70_000 in
    while !bases < 10 do
      incr seed;
      let base, info = Generate.generate ~emi:true ~cfg:gcfg ~seed:!seed () in
      if not info.Generate.counter_sharing then begin
        incr bases;
        let c = Config.find 1 in
        let outs =
          List.filter_map
            (fun (i, params) ->
              match
                Driver.run c ~opt:true
                  (Variant.derive ~base ~params ~seed:(9000 + i))
              with
              | Outcome.Success s -> Some s
              | _ -> None)
            (List.mapi (fun i p -> (i, p)) combos)
        in
        if List.length (List.sort_uniq String.compare outs) > 1 then incr hits
      end
    done;
    !hits
  in
  let with_lift = induced ~params_filter:(fun p -> p.Prune.plift > 0.0) in
  let without_lift = induced ~params_filter:(fun p -> p.Prune.plift = 0.0) in
  Printf.printf
    "bases (of 10) where variants disagree on config 1+: lift-only combos %d \
     vs no-lift combos %d\n"
    with_lift without_lift;
  Printf.printf
    "(the paper found lift \"slightly less effective overall\" than leaf and \
     compound)\n";

  section "Ablation 3 — randomised grid and group dimensions (sec 4.1)";
  let n = 300 and nx1 = ref 0 in
  for seed = 1 to n do
    let tc, _ =
      Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed ()
    in
    let x, _, _ = tc.Ast.global_size in
    if x = 1 then incr nx1
  done;
  Printf.printf "launches with Nx = 1: %d of %d\n" !nx1 n;
  let fig1b = List.nth Exhibit.figure1 1 in
  let altered =
    { fig1b.Exhibit.testcase with Ast.global_size = (2, 1, 1); local_size = (2, 1, 1) }
  in
  Printf.printf
    "Fig 1(b) on config 10- with Nx=1: %s\nFig 1(b) on config 10- with Nx=2: %s\n"
    (Outcome.to_string
       (Driver.run ~noise:false (Config.find 10) ~opt:false fig1b.Exhibit.testcase))
    (Outcome.to_string (Driver.run ~noise:false (Config.find 10) ~opt:false altered));
  Printf.printf
    "(without dimension randomisation the Fig 1(b) bug is never seen — \
     \"this shows the value of randomizing group dimensions\")\n";

  section "Ablation 4 — the dead-code liveness filter for EMI bases (sec 7.4)";
  let discrimination base =
    let c = Config.find 1 in
    let outs =
      List.filter_map
        (fun v ->
          match Driver.run c ~opt:true v with
          | Outcome.Success s -> Some s
          | _ -> None)
        (Variant.variants ~base ~count:8)
    in
    List.length (List.sort_uniq String.compare outs)
  in
  let kept = ref [] and discarded = ref [] in
  let seed = ref 80_000 in
  while List.length !kept < 8 || List.length !discarded < 8 do
    incr seed;
    let base, info = Generate.generate ~emi:true ~cfg:gcfg ~seed:!seed () in
    if not info.Generate.counter_sharing then begin
      let c1 = Config.find 1 in
      let live =
        not
          (Outcome.equal
             (Driver.run c1 ~opt:true base)
             (Driver.run c1 ~opt:true (Variant.invert_dead base)))
      in
      if live && List.length !kept < 8 then kept := base :: !kept
      else if (not live) && List.length !discarded < 8 then
        discarded := base :: !discarded
    end
  done;
  let avg bs =
    float (List.fold_left (fun a b -> a + discrimination b) 0 bs)
    /. float (List.length bs)
  in
  Printf.printf
    "mean distinct-variant-results: kept bases %.2f vs liveness-filtered-out \
     bases %.2f (8 each)\n"
    (avg !kept) (avg !discarded)

(* ------------------------------------------------------------------ *)
(* Parallel scaling: -j 1 vs -j N on a micro campaign                  *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Parallel campaign scaling — -j 1 vs -j N on a micro Table 4";
  let per_mode = size 12 in
  let modes = [ Gen_config.Basic; Gen_config.Barrier ] in
  (* both runs journal to a scratch file and collect spans, so the record
     carries a per-stage breakdown (including persistence) and the two
     timings stay comparable *)
  let run_at jobs =
    Span.reset ();
    Span.enable ();
    let path = Filename.temp_file "bench_scaling" ".jsonl" in
    let header = Campaign.journal_header ~per_mode ~modes () in
    let w = Journal.create ~path header in
    let t0 = Unix.gettimeofday () in
    let table =
      Campaign.to_table
        (Campaign.run ~jobs ~per_mode ~modes ~sink:(Journal.write_cell w) ())
    in
    let dt = Unix.gettimeofday () -. t0 in
    Journal.commit w;
    Sys.remove path;
    Span.disable ();
    let spans = Span.drain () in
    let stage_s cat =
      Int64.to_float
        (List.fold_left
           (fun acc (s : Span.t) ->
             if String.equal s.Span.cat cat then Int64.add acc s.Span.dur_ns
             else acc)
           0L spans)
      /. 1e9
    in
    let stages =
      Printf.sprintf
        "{\"generate_s\":%.3f,\"opt_s\":%.3f,\"execute_s\":%.3f,\
         \"vote_s\":%.3f,\"persist_s\":%.3f}"
        (stage_s "gen") (stage_s "opt") (stage_s "exec") (stage_s "vote")
        (stage_s "persist")
    in
    (table, dt, stages)
  in
  let n_jobs = max 1 !jobs in
  let table_seq, t_seq, stages_seq = run_at 1 in
  let table_par, t_par, stages_par = run_at n_jobs in
  let identical = String.equal table_seq table_par in
  let cells = per_mode * List.length modes * 2 * List.length Config.above_threshold_ids in
  Printf.printf
    "%d kernels x %d modes (%d cells): -j 1 in %.2fs (%.1f cells/s), -j %d in \
     %.2fs (%.1f cells/s)\n"
    per_mode (List.length modes) cells t_seq
    (float cells /. t_seq)
    n_jobs t_par
    (float cells /. t_par);
  Printf.printf "stages -j 1: %s\nstages -j %d: %s\n" stages_seq n_jobs stages_par;
  Printf.printf "tables byte-identical across -j: %b\n" identical;
  if not identical then prerr_endline "ERROR: parallel output diverged from sequential";
  let payload =
    Printf.sprintf
      "{\"bench\":\"campaign_parallel_scaling\",\"schema\":2,\
       \"kernels_per_mode\":%d,\
       \"cells\":%d,\"jobs\":%d,\"t_j1_s\":%.3f,\"t_jN_s\":%.3f,\
       \"cells_per_s_j1\":%.1f,\"cells_per_s_jN\":%.1f,\"speedup\":%.2f,\
       \"identical\":%b,\"stages_j1\":%s,\"stages_jN\":%s,%s}"
      per_mode cells n_jobs t_seq t_par
      (float cells /. t_seq)
      (float cells /. t_par)
      (t_seq /. t_par) identical stages_seq stages_par (host_block ())
  in
  Printf.printf "BENCH-JSON %s\n" payload;
  (* persist the measurement next to the sources so successive revisions
     leave a comparable trail (key order is fixed; no wall-clock stamps) *)
  (try
     let oc = open_out "BENCH_scaling.json" in
     output_string oc (payload ^ "\n");
     close_out oc;
     Printf.printf "scaling record written to BENCH_scaling.json\n"
   with Sys_error m ->
     Printf.eprintf "could not write BENCH_scaling.json: %s\n" m);
  History.record payload

(* ------------------------------------------------------------------ *)
(* Distributed fabric: coordinator + loopback workers                  *)
(* ------------------------------------------------------------------ *)

let dist () =
  section "Distributed fabric — coordinator + 2 loopback workers (Table 4 grid)";
  let per_mode = size 8 and workers = 2 in
  let spec =
    match Spec.make ~campaign:"table4" ~n:per_mode () with
    | Ok s -> s
    | Error m -> failwith m
  in
  let total = Spec.total_cells spec in
  (* single-process reference for the byte-identity check (untimed) *)
  let local =
    match Spec.run_local ~jobs:1 spec with
    | Spec.Table t -> t
    | Spec.Fuzz _ -> assert false
  in
  let sock = Filename.temp_file "bench_dist" ".sock" in
  Sys.remove sock;
  let addr = Proto.Unix_sock sock in
  (* fleet telemetry rides along: per-worker attribution and the fleet
     rate come out of the same run that times the fabric *)
  let fleet = Fleet.create ~total ~now:(Mclock.now_ns ()) () in
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init workers (fun _ ->
        Domain.spawn (fun () -> Dist_worker.run ~addr ~jobs:1 ()))
  in
  let collected =
    match Coordinator.serve ~addr ~spec ~workers ~fleet () with
    | Ok cells -> cells
    | Error e -> failwith ("coordinator: " ^ e)
  in
  List.iter
    (fun d ->
      match Domain.join d with
      | Ok (_ : int) -> ()
      | Error e -> Printf.eprintf "bench dist worker: %s\n" e)
    doms;
  let merged =
    match Spec.run_local ~jobs:1 ~resume:collected spec with
    | Spec.Table t -> t
    | Spec.Fuzz _ -> assert false
  in
  let dt = Unix.gettimeofday () -. t0 in
  let identical = String.equal local merged in
  Fleet.note_local fleet (total - List.length collected);
  let snap =
    Fleet.snapshot fleet ~now:(Mclock.now_ns ())
      ~collected:(List.length collected) ~in_flight:0
  in
  Printf.printf
    "%d cells over %d loopback workers in %.2fs (%.1f cells/s)\n" total
    workers dt
    (float total /. dt);
  Printf.printf "per-worker cells: %s; fleet %d.%d cells/s; lease p50 %d ms\n"
    (String.concat "/"
       (List.map
          (fun (r : Fleet.row) -> string_of_int r.Fleet.cells)
          snap.Fleet.rows))
    (snap.Fleet.fleet_milli / 1000)
    (snap.Fleet.fleet_milli mod 1000 / 100)
    (match snap.Fleet.rows with r :: _ -> r.Fleet.lease_p50_ms | [] -> 0);
  Printf.printf "merged table byte-identical to single-process: %b\n" identical;
  if not identical then
    prerr_endline "ERROR: distributed merge diverged from single-process run";
  let payload =
    Printf.sprintf
      "{\"bench\":\"dist_loopback\",\"schema\":1,\"cells\":%d,\"workers\":%d,\
       \"jobs\":1,\"t_s\":%.3f,\"cells_per_s\":%.1f,\"identical\":%b,\
       \"worker_cells\":[%s],\"fleet_rate_milli\":%d,%s}"
      total workers dt
      (float total /. dt)
      identical
      (String.concat ","
         (List.map
            (fun (r : Fleet.row) -> string_of_int r.Fleet.cells)
            snap.Fleet.rows))
      snap.Fleet.fleet_milli (host_block ())
  in
  Printf.printf "BENCH-JSON %s\n" payload;
  (try
     let oc = open_out "BENCH_dist.json" in
     output_string oc (payload ^ "\n");
     close_out oc;
     Printf.printf "dist record written to BENCH_dist.json\n"
   with Sys_error m -> Printf.eprintf "could not write BENCH_dist.json: %s\n" m);
  History.record payload

(* ------------------------------------------------------------------ *)
(* Corpus service: client domains hammering one serve daemon           *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  section "Corpus service — concurrent clients hammering one serve daemon";
  let clients = 4 and requests = 200 in
  let max_inflight = 4 and max_queue = 4 in
  let sock = Filename.temp_file "bench_serve" ".sock" in
  Sys.remove sock;
  let state = Filename.temp_file "bench_serve" ".journal" in
  Sys.remove state;
  let addr = Netaddr.Unix_sock sock in
  let store =
    match Svstore.open_ ~path:state with
    | Ok s -> s
    | Error m -> failwith ("serve bench: " ^ m)
  in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~addr ~store ~max_inflight ~max_queue ~stop ())
  in
  (match Sclient.get ~addr ~retries:40 "/healthz" with
  | Ok _ -> ()
  | Error m -> failwith ("serve bench: daemon not up: " ^ m));
  (* a small corpus so queries have something to chew on *)
  let kernels =
    List.init 8 (fun i ->
        let seed = i + 1 in
        let tc, _ =
          Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed ()
        in
        let text = Pp.program_to_string tc.Ast.prog in
        ( {
            Corpus.hash = Corpus.hash_text text;
            seed;
            mode = "basic";
            cls = "candidate";
            config = 0;
            opt = "-";
          },
          text ))
  in
  List.iter
    (fun (e, text) ->
      match Sclient.submit_kernel ~addr e text with
      | Ok _ -> ()
      | Error m -> failwith ("serve bench submit: " ^ m))
    kernels;
  (* steady-state throughput: each client loops a GET/POST request mix,
     timing every request round trip *)
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            let lat = ref [] in
            for i = 0 to requests - 1 do
              let path =
                match i mod 4 with
                | 0 -> "/healthz"
                | 1 -> "/coverage"
                | 2 -> "/bugs"
                | _ -> "/corpus"
              in
              let r0 = Mclock.now_ns () in
              (match
                 if i mod 8 = 7 then
                   (* duplicate submit: exercises the idempotent write path *)
                   let e, text = List.nth kernels (c mod List.length kernels) in
                   Result.map (fun (_ : bool) -> ()) (Sclient.submit_kernel ~addr e text)
                 else Result.map (fun (_ : Sclient.resp) -> ()) (Sclient.get ~addr path)
               with
              | Ok () -> ()
              | Error m -> failwith ("serve bench client: " ^ m));
              let us =
                Int64.to_int (Int64.div (Int64.sub (Mclock.now_ns ()) r0) 1_000L)
              in
              lat := us :: !lat
            done;
            !lat))
  in
  let latencies = List.concat_map Domain.join doms in
  let dt = Unix.gettimeofday () -. t0 in
  let total = clients * requests in
  let sorted = List.sort compare latencies in
  let arr = Array.of_list sorted in
  let pct p =
    if Array.length arr = 0 then 0
    else arr.(min (Array.length arr - 1) (p * Array.length arr / 100))
  in
  let p50 = pct 50 and p99 = pct 99 in
  Printf.printf "%d requests over %d clients in %.2fs (%.1f req/s)\n" total
    clients dt
    (float total /. dt);
  Printf.printf "round-trip p50 %d us, p99 %d us\n" p50 p99;
  (* overload: open more idle connections than the daemon admits + parks;
     the overflow must come back as immediate 429s, the parked ones as
     queue-timeout 429s — the daemon refuses rather than stalls *)
  let burst = max_inflight + max_queue + 8 in
  let socks =
    List.filter_map
      (fun _ -> Result.to_option (Netaddr.connect addr))
      (List.init burst (fun i -> i))
  in
  let shed_seen = ref 0 in
  List.iter
    (fun fd ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 4.0;
      let buf = Bytes.create 4096 in
      (match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
          let reply = Bytes.sub_string buf 0 n in
          if String.length reply >= 12 && String.sub reply 9 3 = "429" then
            incr shed_seen
      | exception Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    socks;
  Printf.printf "overload: %d idle connections -> %d shed with 429\n" burst
    !shed_seen;
  Atomic.set stop true;
  let server_stats =
    match Domain.join server with
    | Ok s -> s
    | Error m -> failwith ("serve bench daemon: " ^ m)
  in
  Svstore.close store;
  (try Sys.remove state with Sys_error _ -> ());
  Printf.printf "daemon: %d requests served, %d shed, %d timeouts\n"
    server_stats.Server.requests server_stats.Server.shed
    server_stats.Server.timeouts;
  let payload =
    Printf.sprintf
      "{\"bench\":\"serve_stress\",\"schema\":1,\"clients\":%d,\"requests\":%d,\
       \"t_s\":%.3f,\"req_per_s\":%.1f,\"p50_us\":%d,\"p99_us\":%d,\
       \"overload_conns\":%d,\"overload_shed\":%d,\"server_requests\":%d,%s}"
      clients total dt
      (float total /. dt)
      p50 p99 burst !shed_seen server_stats.Server.requests (host_block ())
  in
  Printf.printf "BENCH-JSON %s\n" payload;
  (try
     let oc = open_out "BENCH_serve.json" in
     output_string oc (payload ^ "\n");
     close_out oc;
     Printf.printf "serve record written to BENCH_serve.json\n"
   with Sys_error m -> Printf.eprintf "could not write BENCH_serve.json: %s\n" m);
  History.record payload

(* ------------------------------------------------------------------ *)
(* Coverage-guided fuzzing: feedback on vs off at equal budget         *)
(* ------------------------------------------------------------------ *)

let fuzz () =
  section "Coverage-guided fuzzing — feedback vs blind sweep at equal budget";
  let budget = size 24 and seed = 7 in
  let n_jobs = max 1 !jobs in
  let run_policy feedback =
    let t0 = Unix.gettimeofday () in
    let r = Fuzz_loop.run ~jobs:n_jobs ~budget ~seed ~feedback () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fb, t_fb = timed "fuzz/feedback" (fun () -> run_policy true) in
  let blind, t_blind = timed "fuzz/no-feedback" (fun () -> run_policy false) in
  print_endline (Fuzz_loop.to_table fb);
  let final r =
    match List.rev r.Fuzz_loop.generations with
    | g :: _ -> (g.Fuzz_loop.coverage, g.Fuzz_loop.distinct_bugs)
    | [] -> (0, 0)
  in
  let cov_fb, bugs_fb = final fb and cov_bl, bugs_bl = final blind in
  Printf.printf
    "feedback ON : %d kernels, %d coverage points, %d distinct bugs (%.1fs)\n\
     feedback OFF: %d kernels, %d coverage points, %d distinct bugs (%.1fs)\n"
    fb.Fuzz_loop.kernels_run cov_fb bugs_fb t_fb blind.Fuzz_loop.kernels_run
    cov_bl bugs_bl t_blind;
  (* per-generation trajectories: cumulative coverage and distinct bugs *)
  let series field r =
    "["
    ^ String.concat ","
        (List.map (fun g -> string_of_int (field g)) r.Fuzz_loop.generations)
    ^ "]"
  in
  let policy name r dt =
    Printf.sprintf
      "{\"policy\":%S,\"kernels\":%d,\"cells\":%d,\"coverage\":%s,\
       \"distinct_bugs\":%s,\"t_s\":%.3f}"
      name r.Fuzz_loop.kernels_run r.Fuzz_loop.cells_run
      (series (fun g -> g.Fuzz_loop.coverage) r)
      (series (fun g -> g.Fuzz_loop.distinct_bugs) r)
      dt
  in
  let payload =
    Printf.sprintf
      "{\"bench\":\"fuzz_feedback_vs_blind\",\"schema\":1,\"budget\":%d,\
       \"seed\":%d,\"jobs\":%d,\"feedback\":%s,\"no_feedback\":%s,%s}"
      budget seed n_jobs
      (policy "feedback" fb t_fb)
      (policy "no-feedback" blind t_blind)
      (host_block ())
  in
  Printf.printf "BENCH-JSON %s\n" payload;
  (try
     let oc = open_out "BENCH_fuzz.json" in
     output_string oc (payload ^ "\n");
     close_out oc;
     Printf.printf "fuzzing record written to BENCH_fuzz.json\n"
   with Sys_error m -> Printf.eprintf "could not write BENCH_fuzz.json: %s\n" m);
  History.record payload

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let gen_test mode =
    let counter = ref 0 in
    Test.make
      ~name:("generate/" ^ Gen_config.mode_name mode)
      (Staged.stage (fun () ->
           incr counter;
           ignore (Generate.generate ~cfg:(Gen_config.scaled mode) ~seed:!counter ())))
  in
  let tc, _ = Generate.generate ~cfg:(Gen_config.scaled Gen_config.All) ~seed:5 () in
  let interp_test =
    Test.make ~name:"interp/reference-ALL"
      (Staged.stage (fun () -> ignore (Driver.reference_outcome tc)))
  in
  let compile_test =
    Test.make ~name:"vendor/compile+run-ALL"
      (Staged.stage (fun () -> ignore (Driver.run (Config.find 12) ~opt:true tc)))
  in
  let base, _ =
    Generate.generate ~emi:true ~cfg:(Gen_config.scaled Gen_config.All) ~seed:6 ()
  in
  let variant_counter = ref 0 in
  let emi_test =
    Test.make ~name:"emi/derive-variant"
      (Staged.stage (fun () ->
           incr variant_counter;
           ignore
             (Variant.derive ~base
                ~params:(List.hd Prune.paper_combinations)
                ~seed:!variant_counter)))
  in
  let pp_test =
    Test.make ~name:"pp/print+digest"
      (Staged.stage (fun () -> ignore (Digest_util.full tc.Ast.prog)))
  in
  let mutate_test =
    Test.make ~name:"mutate/one-site"
      (Staged.stage (fun () -> ignore (Mutate.apply ~seed:42L tc.Ast.prog)))
  in
  let tests =
    Test.make_grouped ~name:"clsmith-repro"
      [
        gen_test Gen_config.Basic; gen_test Gen_config.Vector;
        gen_test Gen_config.All; interp_test; compile_test; emi_test;
        pp_test; mutate_test;
      ]
  in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %12.1f ns/run\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let all_experiments () =
  table1 ();
  figure 1 Exhibit.figure1;
  figure 2 Exhibit.figure2;
  table2 ();
  races ();
  table3 ();
  table4 ();
  table5 ();
  scaling ();
  dist ();
  serve_bench ();
  fuzz ();
  micro ()

let () =
  (* split argv into global flags (-j N, -n N) and experiment names *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "-j" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs := j;
            parse acc rest
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %s\n" v;
            exit 2)
    | "-n" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            scale := Some n;
            parse acc rest
        | _ ->
            Printf.eprintf "-n expects a positive integer, got %s\n" v;
            exit 2)
    | "-stamp" :: v :: rest ->
        stamp := v;
        parse acc rest
    | name :: rest -> parse (name :: acc) rest
  in
  let rc = ref 0 in
  (match parse [] (List.tl (Array.to_list Sys.argv)) with
  | [] -> all_experiments ()
  | names ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table2" -> table2 ()
          | "table3" -> table3 ()
          | "table4" -> table4 ()
          | "table5" -> table5 ()
          | "figure1" -> figure 1 Exhibit.figure1
          | "figure2" -> figure 2 Exhibit.figure2
          | "races" -> races ()
          | "micro" -> micro ()
          | "ablate" -> ablate ()
          | "scaling" -> scaling ()
          | "dist" -> dist ()
          | "serve" -> serve_bench ()
          | "fuzz" -> fuzz ()
          | "compare" -> rc := max !rc (History.compare_latest ())
          | "all" -> all_experiments ()
          | other -> Printf.eprintf "unknown experiment %s\n" other)
        names);
  if !rc <> 0 then exit !rc
