(* campaign: run any of the paper's experiments from the command line.

   Subcommands mirror the per-experiment index of DESIGN.md:
     table1 | table2 | table3 | table4 | table5 | figure1 | figure2 | races
   with -n to scale the sample sizes. *)

open Cmdliner

let n_arg default doc = Arg.(value & opt int default & info [ "n" ] ~doc)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.recommended_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Size of the execution pool (worker domains). Defaults to the \
           recommended domain count. Output is byte-identical across -j \
           values.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ]
        ~doc:
          "Per-task soft timeout: the interpreter's per-thread step budget. \
           Exhaustion is counted as a timeout.")

let table1_cmd =
  let run n jobs =
    let t = Classify.run ~jobs ~per_mode:n () in
    print_endline (Classify.to_table t);
    let a, total = Classify.agreement_with_paper t in
    Printf.printf "classification agreement with the paper's Table 1: %d/%d\n" a total
  in
  Cmd.v (Cmd.info "table1" ~doc:"Initial testing and reliability threshold")
    Term.(const run $ n_arg 10 "initial kernels per mode (paper: 100)" $ jobs_arg)

let table2_cmd =
  let run () = print_endline (Suite.table2 ()) in
  Cmd.v (Cmd.info "table2" ~doc:"Benchmark suite summary") Term.(const run $ const ())

let table3_cmd =
  let run n jobs fuel =
    print_endline (Bench_emi.to_table (Bench_emi.run ~jobs ?fuel ~variants:n ()))
  in
  Cmd.v (Cmd.info "table3" ~doc:"EMI testing over the Parboil/Rodinia ports")
    Term.(
      const run
      $ n_arg 12 "EMI variants per benchmark (paper: 125)"
      $ jobs_arg $ fuel_arg)

let table4_cmd =
  let run n jobs fuel =
    print_endline (Campaign.to_table (Campaign.run ~jobs ?fuel ~per_mode:n ()))
  in
  Cmd.v (Cmd.info "table4" ~doc:"Intensive CLsmith differential testing")
    Term.(
      const run $ n_arg 60 "kernels per mode (paper: 10000)" $ jobs_arg $ fuel_arg)

let table5_cmd =
  let run n v jobs fuel =
    print_endline
      (Emi_campaign.to_table (Emi_campaign.run ~jobs ?fuel ~bases:n ~variants:v ()))
  in
  Cmd.v (Cmd.info "table5" ~doc:"CLsmith+EMI metamorphic testing")
    Term.(
      const run
      $ n_arg 15 "base programs (paper: 180)"
      $ Arg.(value & opt int 10 & info [ "variants" ] ~doc:"variants per base (paper: 40)")
      $ jobs_arg $ fuel_arg)

let figure_cmd name exhibits doc =
  let run verbose =
    if verbose then
      List.iter (fun e -> print_endline (Exhibit.demonstrate e)) exhibits
    else print_endline (Exhibit.summary_table exhibits)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print kernels"))

let races_cmd =
  let run () =
    List.iter
      (fun (b : Suite.benchmark) ->
        let r =
          Interp.run
            ~config:{ Interp.default_config with Interp.detect_races = true }
            (b.Suite.testcase ())
        in
        Printf.printf "%-11s %s\n" b.Suite.name
          (match r.Interp.races with
          | [] -> "race-free"
          | race :: _ -> Race.race_to_string race))
      Suite.all
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Race-detect the benchmark suite (rediscovers the spmv/myocyte races)")
    Term.(const run $ const ())

let reduce_cmd =
  let run seed config_id opt =
    let cfg = Gen_config.scaled Gen_config.All in
    let tc, info = Generate.generate ~cfg ~seed () in
    if info.Generate.counter_sharing then print_endline "kernel discarded (counter sharing)"
    else begin
      let c = Config.find config_id in
      let reference tc = Driver.reference_outcome tc in
      let interesting tc =
        match (reference tc, Driver.run c ~opt tc) with
        | Outcome.Success a, Outcome.Success b -> not (String.equal a b)
        | _ -> false
      in
      if not (interesting tc) then
        Printf.printf
          "config %d%s compiles seed %d correctly; try another seed\n" config_id
          (if opt then "+" else "-") seed
      else begin
        let reduced, stats = Reduce.reduce ~interesting tc in
        Printf.printf
          "reduced from %d to %d statements (%d attempts, %d steps)\n\n"
          stats.Reduce.initial_stmts stats.Reduce.final_stmts
          stats.Reduce.attempts stats.Reduce.accepted;
        print_string (Pp.program_to_string reduced.Ast.prog)
      end
    end
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Reduce a wrong-code kernel for a configuration")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"generator seed")
      $ Arg.(value & opt int 19 & info [ "config" ] ~doc:"configuration id")
      $ Arg.(value & flag & info [ "opt" ] ~doc:"optimisations on"))

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "campaign" ~doc:"Reproduce the paper's experiments")
          [
            table1_cmd; table2_cmd; table3_cmd; table4_cmd; table5_cmd;
            figure_cmd "figure1" Exhibit.figure1 "Figure 1 bug exhibits";
            figure_cmd "figure2" Exhibit.figure2 "Figure 2 bug exhibits";
            races_cmd; reduce_cmd;
          ]))
