(* campaign: run any of the paper's experiments from the command line.

   Subcommands mirror the per-experiment index of DESIGN.md:
     table1 | table2 | table3 | table4 | table5 | figure1 | figure2
     | races | reduce | triage | fuzz | report
   with -n to scale the sample sizes. The table campaigns persist their
   cells to a crash-safe journal (--journal FILE), continue interrupted or
   smaller runs (--resume), and archive their distinct-bug witnesses to a
   content-addressed corpus (--corpus DIR); triage deduplicates a journal
   into buckets; fuzz replaces the blind seed sweep with coverage-guided,
   feedback-directed search (DESIGN.md section 11). Every subcommand exits
   nonzero on failure. *)

open Cmdliner

(* every operator-facing diagnostic goes through [report], so all of them
   carry the "campaign:" prefix *)
let report fmt = Printf.ksprintf (fun m -> prerr_endline ("campaign: " ^ m)) fmt
let warn fmt = report ("warning: " ^^ fmt)
let fail fmt =
  Printf.ksprintf
    (fun m ->
      report "%s" m;
      1)
    fmt

(* every subcommand renders its report into a string and emits it here *)
let emit out text =
  match out with
  | None ->
      print_string text;
      0
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        0
      with Sys_error m -> fail "%s" m)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv) instead of stdout.")

let n_arg default doc = Arg.(value & opt int default & info [ "n" ] ~doc)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.recommended_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Size of the execution pool (worker domains). Defaults to the \
           recommended domain count. Output is byte-identical across -j \
           values.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ]
        ~doc:
          "Per-task soft timeout: the interpreter's per-thread step budget. \
           Exhaustion is counted as a timeout.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Persist every completed cell to a crash-safe JSONL journal at \
           $(docv), appended and flushed in deterministic task order.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the journal named by $(b,--journal) first: cells already \
           recorded are not re-executed, only the remainder runs, and the \
           finished run (table and rewritten journal) is byte-identical to \
           an uninterrupted one. The journal's campaign parameters must \
           match; sample sizes (-n) may differ.")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Archive each distinct-bug bucket's exemplar kernel to the \
           content-addressed corpus at $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump the campaign's metrics registry (cell totals, interpreter \
           work, outcome-class tallies, pool gauges) to $(docv) as canonical \
           JSON after the run. The deterministic totals are identical across \
           $(b,-j) values.")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Dump the metrics registry to $(docv) in Prometheus text \
           exposition format after the run — every counter, plus \
           cumulative power-of-two histogram buckets — ready for a \
           textfile collector to scrape.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span for every pipeline stage (generate, typecheck, \
           optimisation passes, per-config execution, vote, journal append) \
           and write a Chrome trace-event JSON to $(docv) — load it in \
           ui.perfetto.dev or chrome://tracing; one pid per domain.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Arm the interpreter cost profiler: count one tick per AST-node \
           visit, keyed by construct kind and static location, and write the \
           per-cell profile to $(docv) as checksummed JSONL (plus a \
           $(docv).folded collapsed-stack aggregate for flamegraph.pl / \
           speedscope). Counts fold over the ordered merged cell stream, so \
           the file is byte-identical across $(b,-j) values; render it with \
           $(b,campaign profile) $(docv).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Render a live stderr progress line: done/total cells, cells/s, \
           ETA and running class tallies. Purely cosmetic — table and \
           journal bytes are unchanged.")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write a schema-versioned structured eventlog (campaign lifecycle, \
           per-cell completions, fuzz generations, coverage deltas, triage \
           hits) to $(docv) as checksummed JSONL. Lifecycle events are \
           emitted in deterministic task order: without $(b,--trace) or a \
           watchdog, the file is byte-identical across $(b,-j) values.")

let watchdog_timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog-timeout" ] ~docv:"SECS"
        ~doc:
          "Arm a stall watchdog: a monitoring domain that warns after \
           $(docv)/2 seconds without a completed cell and records a stall \
           event (listing stale worker domains) after $(docv) seconds. \
           Choose $(docv) above the longest legitimate quiet window (e.g. \
           $(b,--minimize) reduction runs).")

let watchdog_abort_arg =
  Arg.(
    value & flag
    & info [ "watchdog-abort" ]
        ~doc:
          "Escalate a watchdog stall to an abort: exit nonzero instead of \
           hanging forever, so CI fails fast rather than hitting the \
           job-level timeout. Requires $(b,--watchdog-timeout).")

(* everything observability-related that rides alongside a campaign *)
type obs_opts = {
  o_metrics : string option;
  o_prom : string option;
  o_trace : string option;
  o_profile : string option;
  o_progress : bool;
  o_events : string option;
  o_wd_timeout : int option;  (* seconds *)
  o_wd_abort : bool;
}

let telemetry_term =
  let combine o_metrics o_prom o_trace o_profile o_progress o_events
      o_wd_timeout o_wd_abort =
    { o_metrics; o_prom; o_trace; o_profile; o_progress; o_events;
      o_wd_timeout; o_wd_abort }
  in
  Term.(
    const combine $ metrics_arg $ prom_arg $ trace_arg $ profile_arg
    $ progress_arg $ events_arg $ watchdog_timeout_arg $ watchdog_abort_arg)

(* one short class tag per journalled cell, for the progress tallies *)
let tag_of_cell (c : Journal.cell) =
  match c.Journal.outcomes with
  | [] -> if c.Journal.note = "" then "ok" else c.Journal.note
  | outcomes -> (
      match List.find_opt (fun o -> not (Outcome.is_computed o)) outcomes with
      | Some o -> Outcome.short_tag o
      | None -> "ok")

(* per-stage-category microseconds, for the Stage_timing event *)
let stage_totals spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.t) ->
      let us = Int64.to_int (Int64.div s.Span.dur_ns 1000L) in
      Hashtbl.replace tbl s.Span.cat
        (us + Option.value ~default:0 (Hashtbl.find_opt tbl s.Span.cat)))
    spans;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Arm span collection, the eventlog, the watchdog and the progress line
   around [k], then emit the requested telemetry files. [k] receives a
   sink wrapper that teaches a campaign's cell stream to drive the
   progress display and the eventlog, plus an event emitter for campaigns
   that produce their own lifecycle events (fuzz). Telemetry never
   touches stdout, the table or the journal; a file that cannot be
   written fails the run only after the campaign itself finished. *)
let with_telemetry ~telemetry:t ?fleet_groups ~header ~label ~total k =
  if t.o_trace <> None then begin
    Span.reset ();
    Span.enable ()
  end;
  if t.o_profile <> None then begin
    Costprof.reset ();
    Costprof.enable ()
  end;
  match
    try Ok (Option.map (fun path -> Eventlog.create ~path) t.o_events)
    with Sys_error m -> Error m
  with
  | Error m -> fail "events: %s" m
  | Ok ev_writer ->
      let emit_ev e =
        match ev_writer with Some w -> Eventlog.emit w e | None -> ()
      in
      emit_ev
        (Eventlog.Campaign_start
           {
             campaign = header.Journal.campaign;
             ident = header.Journal.ident;
             scale = header.Journal.scale;
             total;
           });
      let cells_seen = ref 0 in
      let prog =
        if t.o_progress then Some (Progress.create ~label ~total ()) else None
      in
      let wrap sink =
        match (prog, ev_writer) with
        | None, None -> sink
        | _ ->
            Some
              (fun (c : Journal.cell) ->
                let tag = tag_of_cell c in
                (match prog with
                | Some p -> Progress.step p ~tag
                | None -> ());
                incr cells_seen;
                emit_ev
                  (Eventlog.Cell
                     {
                       index = c.Journal.index;
                       seed = c.Journal.seed;
                       mode = c.Journal.mode;
                       config = c.Journal.config;
                       opt = c.Journal.opt;
                       cls = tag;
                     });
                match sink with Some s -> s c | None -> ())
      in
      let wd =
        match t.o_wd_timeout with
        | None ->
            if t.o_wd_abort then
              warn "--watchdog-abort has no effect without --watchdog-timeout";
            None
        | Some secs ->
            let on_event level (s : Watchdog.snapshot) =
              warn "watchdog %s: no progress for %d ms (%d completed, %d in \
                    flight%s)"
                (Watchdog.level_name level)
                s.Watchdog.idle_ms s.Watchdog.completed s.Watchdog.in_flight
                (match s.Watchdog.stalled_domains with
                | [] -> ""
                | ds ->
                    Printf.sprintf ", stale domains %s"
                      (String.concat "," (List.map string_of_int ds)));
              emit_ev
                (Eventlog.Watchdog
                   {
                     level = Watchdog.level_name level;
                     completed = s.Watchdog.completed;
                     in_flight = s.Watchdog.in_flight;
                     stalled_domains = s.Watchdog.stalled_domains;
                     idle_ms = s.Watchdog.idle_ms;
                   })
            in
            let abort =
              if t.o_wd_abort then
                Some
                  (fun (_ : Watchdog.snapshot) ->
                    report "watchdog: stalled campaign aborted";
                    (match ev_writer with
                    | Some w -> Eventlog.close w
                    | None -> ());
                    Stdlib.exit 2)
              else None
            in
            Some (Watchdog.start ~timeout_ms:(secs * 1000) ?abort ~on_event ())
      in
      let rc = k wrap emit_ev in
      (match wd with Some w -> Watchdog.stop w | None -> ());
      (match prog with Some p -> Progress.finish p | None -> ());
      let write_json path json =
        try
          let oc = open_out path in
          output_string oc (Jsonl.to_string json);
          output_char oc '\n';
          close_out oc;
          0
        with Sys_error m -> fail "%s" m
      in
      let rc_metrics =
        match t.o_metrics with
        | None -> 0
        | Some path -> write_json path (Metrics.to_json ())
      in
      let rc_prom =
        match t.o_prom with
        | None -> 0
        | Some path -> (
            try
              let oc = open_out path in
              output_string oc (Metrics.to_prometheus ());
              close_out oc;
              0
            with Sys_error m -> fail "%s" m)
      in
      let rc_trace =
        match t.o_trace with
        | None -> 0
        | Some path ->
            Span.disable ();
            let spans = Span.drain () in
            (match stage_totals spans with
            | [] -> ()
            | stages -> emit_ev (Eventlog.Stage_timing stages));
            (* worker span buffers shipped over the fabric merge into
               the same trace, one pid per worker with the coordinator
               as pid 0 *)
            let groups =
              match fleet_groups with None -> [] | Some f -> f ()
            in
            (try
               (if groups = [] then Trace.write ~path spans
                else Trace.write_groups ~path (("coordinator", spans) :: groups));
               0
             with Sys_error m -> fail "%s" m)
      in
      let rc_profile =
        match t.o_profile with
        | None -> 0
        | Some path -> (
            Costprof.disable ();
            let cells = Costprof.snapshot () in
            Costprof.reset ();
            try
              Costprof.write ~path cells;
              Costprof.write_folded ~path:(path ^ ".folded") cells;
              0
            with Sys_error m -> fail "%s" m)
      in
      emit_ev (Eventlog.Campaign_end { cells = !cells_seen });
      (match ev_writer with Some w -> Eventlog.close w | None -> ());
      max rc (max rc_metrics (max rc_prom (max rc_trace rc_profile)))

(* run [k sink resumed_cells] under the requested journal plumbing *)
let with_journal ~header ~journal ~resume k =
  match (journal, resume) with
  | None, true -> Error "--resume requires --journal FILE"
  | None, false -> Ok (k None [])
  | Some path, false -> (
      try
        let w = Journal.create ~path header in
        let r = k (Some (Journal.write_cell w)) [] in
        Journal.commit w;
        Ok r
      with Sys_error m -> Error m)
  | Some path, true -> (
      match Journal.resume ~path header with
      | Error e -> Error (Journal.error_to_string e)
      | Ok (w, cells) -> (
          try
            let r = k (Some (Journal.write_cell w)) cells in
            Journal.commit w;
            Ok r
          with Sys_error m -> Error m))

let archive ~dir ~header ~cells report =
  match Triage.of_journal header cells with
  | Error m -> Error m
  | Ok buckets -> (
      match Corpus.add_all ~dir (Triage.corpus_entries buckets) with
      | Error m -> Error m
      | Ok added ->
          Ok
            (report
            ^ Printf.sprintf "corpus: %d new of %d exemplars in %s\n" added
                (List.length buckets) dir))

let table1_cmd =
  let run n jobs fuel journal resume out telemetry =
    let header = Classify.journal_header ?fuel ~per_mode:n () in
    let total =
      n * List.length Gen_config.all_modes * List.length Config.all
    in
    with_telemetry ~telemetry ~header ~label:"table1" ~total @@ fun wrap _ev ->
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Classify.run ~jobs ?fuel ~per_mode:n ?sink:(wrap sink) ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t ->
        let a, total = Classify.agreement_with_paper t in
        emit out
          (Classify.to_table t ^ "\n"
          ^ Printf.sprintf
              "classification agreement with the paper's Table 1: %d/%d\n" a
              total)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Initial testing and reliability threshold")
    Term.(
      const run
      $ n_arg 10 "initial kernels per mode (paper: 100)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg
      $ telemetry_term)

let table2_cmd =
  let run out = emit out (Suite.table2 () ^ "\n") in
  Cmd.v (Cmd.info "table2" ~doc:"Benchmark suite summary") Term.(const run $ out_arg)

let table3_cmd =
  let run n jobs fuel journal resume out telemetry =
    let header = Bench_emi.journal_header ?fuel ~variants:n () in
    let total =
      List.length Suite.emi_eligible * List.length Bench_emi.default_configs
    in
    with_telemetry ~telemetry ~header ~label:"table3" ~total @@ fun wrap _ev ->
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Bench_emi.run ~jobs ?fuel ~variants:n ?sink:(wrap sink) ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t -> emit out (Bench_emi.to_table t ^ "\n")
  in
  Cmd.v (Cmd.info "table3" ~doc:"EMI testing over the Parboil/Rodinia ports")
    Term.(
      const run
      $ n_arg 12 "EMI variants per benchmark (paper: 125)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg
      $ telemetry_term)

let table4_cmd =
  let run n jobs fuel journal resume corpus out telemetry =
    let header = Campaign.journal_header ?fuel ~per_mode:n () in
    let total =
      n * List.length Gen_config.all_modes
      * List.length Config.above_threshold_ids
      * 2
    in
    (* the corpus is populated from the run's own cell stream, so it works
       with or without a journal *)
    let collected = ref [] in
    let collect sink =
      match (corpus, sink) with
      | None, s -> s
      | Some _, None -> Some (fun c -> collected := c :: !collected)
      | Some _, Some s ->
          Some
            (fun c ->
              collected := c :: !collected;
              s c)
    in
    with_telemetry ~telemetry ~header ~label:"table4" ~total @@ fun wrap _ev ->
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Campaign.run ~jobs ?fuel ~per_mode:n ?sink:(wrap (collect sink))
            ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t -> (
        let report = Campaign.to_table t ^ "\n" in
        match corpus with
        | None -> emit out report
        | Some dir -> (
            match archive ~dir ~header ~cells:(List.rev !collected) report with
            | Error m -> fail "corpus: %s" m
            | Ok report -> emit out report))
  in
  Cmd.v (Cmd.info "table4" ~doc:"Intensive CLsmith differential testing")
    Term.(
      const run
      $ n_arg 60 "kernels per mode (paper: 10000)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ corpus_arg $ out_arg
      $ telemetry_term)

let table5_cmd =
  let run n v jobs fuel journal resume out telemetry =
    let header = Emi_campaign.journal_header ?fuel ~bases:n ~variants:v () in
    let total = n * List.length Config.above_threshold_ids * 2 in
    with_telemetry ~telemetry ~header ~label:"table5" ~total @@ fun wrap _ev ->
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Emi_campaign.run ~jobs ?fuel ~bases:n ~variants:v ?sink:(wrap sink)
            ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t -> emit out (Emi_campaign.to_table t ^ "\n")
  in
  Cmd.v (Cmd.info "table5" ~doc:"CLsmith+EMI metamorphic testing")
    Term.(
      const run
      $ n_arg 15 "base programs (paper: 180)"
      $ Arg.(
          value & opt int 10
          & info [ "variants" ] ~doc:"variants per base (paper: 40)")
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg
      $ telemetry_term)

let triage_cmd =
  let run path corpus out =
    match Journal.load ~path with
    | Error e -> fail "%s: %s" path (Journal.error_to_string e)
    | Ok (header, cells, truncated) -> (
        if truncated then
          warn
            "journal ended in a torn line (interrupted run); triaging the \
             clean prefix";
        match Triage.of_journal header cells with
        | Error m -> fail "%s" m
        | Ok buckets -> (
            let report = Triage.to_table header buckets ^ "\n" in
            match corpus with
            | None -> emit out report
            | Some dir -> (
                match Corpus.add_all ~dir (Triage.corpus_entries buckets) with
                | Error m -> fail "corpus: %s" m
                | Ok added ->
                    emit out
                      (report
                      ^ Printf.sprintf "corpus: %d new of %d exemplars in %s\n"
                          added (List.length buckets) dir))))
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Deduplicate a journal's findings into distinct-bug buckets \
          (outcome class x configuration x opt level x trigger-feature \
          signature), with one exemplar kernel per bucket")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"JOURNAL" ~doc:"journal file to triage")
      $ corpus_arg $ out_arg)

let fuzz_cmd =
  let run budget seed gen_size no_feedback minimize jobs fuel journal resume
      corpus covmap out telemetry =
    let feedback = not no_feedback in
    let header =
      Fuzz_loop.journal_header ?fuel ~budget ~seed ~feedback ~gen_size
        ~minimize ()
    in
    let total = budget * Fuzz_loop.cells_per_kernel () in
    with_telemetry ~telemetry ~header ~label:"fuzz" ~total @@ fun wrap ev ->
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Fuzz_loop.run ~jobs ?fuel ~budget ~seed ~feedback ~gen_size ~minimize
            ?sink:(wrap sink) ~events:ev ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok r -> (
        let report = Fuzz_loop.to_table r ^ "\n" in
        let rc_cov =
          match covmap with
          | None -> 0
          | Some path -> (
              try
                let oc = open_out path in
                output_string oc (Covmap.to_hex r.Fuzz_loop.covmap);
                output_char oc '\n';
                close_out oc;
                0
              with Sys_error m -> fail "covmap: %s" m)
        in
        if rc_cov <> 0 then rc_cov
        else
          match corpus with
          | None -> emit out report
          | Some dir -> (
              match Seedpool.persist r.Fuzz_loop.pool ~dir with
              | Error m -> fail "corpus: %s" m
              | Ok new_seeds -> (
                  match Corpus.add_all ~dir (Fuzz_loop.finding_entries r) with
                  | Error m -> fail "corpus: %s" m
                  | Ok new_bugs -> (
                      (* one pass over the archive just written: entry and
                         distinct-kernel tallies for the report *)
                      match Corpus.load_all ~dir with
                      | Error m -> fail "corpus: %s" m
                      | Ok all ->
                          let seeds, bugs =
                            List.partition
                              (fun ((e : Corpus.entry), _) -> e.Corpus.cls = "seed")
                              all
                          in
                          let kernels =
                            List.length
                              (List.sort_uniq String.compare
                                 (List.map
                                    (fun ((e : Corpus.entry), _) -> e.Corpus.hash)
                                    all))
                          in
                          emit out
                            (report
                            ^ Printf.sprintf
                                "corpus: +%d seed / +%d bug entries this run; \
                                 %d seed + %d bug entries, %d distinct kernels \
                                 in %s\n"
                                new_seeds new_bugs (List.length seeds)
                                (List.length bugs) kernels dir)))))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided fuzzing: feedback-directed search scheduling a \
          mutation corpus by behavioral-coverage novelty, replacing the \
          blind seed sweep. Deterministic: corpus, bitmap and triage output \
          are byte-identical across $(b,-j) values and across resumed runs.")
    Term.(
      const run
      $ Arg.(
          value & opt int Fuzz_loop.default_budget
          & info [ "budget" ]
              ~doc:"Total kernels to execute (the search budget).")
      $ Arg.(
          value & opt int 1
          & info [ "seed" ] ~doc:"Root seed: generator seeds and every \
                                  scheduling decision derive from it.")
      $ Arg.(
          value & opt int Fuzz_loop.default_gen_size
          & info [ "gen" ] ~doc:"Kernels per generation (identity parameter).")
      $ Arg.(
          value & flag
          & info [ "no-feedback" ]
              ~doc:
                "Degrade to blind sampling: fresh kernels only, the corpus \
                 scheduler is never consulted. The feedback advantage is the \
                 difference against a default run at equal budget.")
      $ Arg.(
          value & flag
          & info [ "minimize" ]
              ~doc:
                "Reduce each admitted seed with the delta-debugging reducer \
                 under a keep-coverage predicate before it enters the corpus.")
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ corpus_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "covmap" ] ~docv:"FILE"
              ~doc:"Write the final coverage bitmap to $(docv) as canonical hex.")
      $ out_arg $ telemetry_term)

let report_cmd =
  let run path html events out =
    match Journal.load ~path with
    | Error e -> fail "%s: %s" path (Journal.error_to_string e)
    | Ok (header, cells, truncated) ->
        if truncated then
          warn
            "journal ended in a torn line (interrupted run); reporting the \
             clean prefix";
        let evs =
          match events with
          | None -> []
          | Some p -> (
              match Eventlog.load ~path:p with
              | Error m ->
                  warn "events: %s (continuing without the eventlog)" m;
                  []
              | Ok (evs, torn) ->
                  if torn then
                    warn "eventlog ended in a torn line; using the clean prefix";
                  evs)
        in
        let text =
          if html then
            Report_html.render ~header ~cells ~truncated ~events:evs ()
          else Report_html.summary ~header ~cells ~truncated ~events:evs ()
        in
        emit out text
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a journal (and optionally its eventlog) into a campaign \
          report: outcome grids with majority-vote wrong-code counts, \
          per-configuration heatmap, coverage and bug curves, stage timing, \
          incidents and per-bug mutation lineage. $(b,--html) produces a \
          self-contained zero-dependency HTML file; the default is a \
          plain-text digest.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"JOURNAL" ~doc:"journal file to render")
      $ Arg.(
          value & flag
          & info [ "html" ]
              ~doc:
                "Emit a self-contained HTML report (inline CSS and SVG, no \
                 scripts, no external assets).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "events" ] ~docv:"FILE"
              ~doc:
                "Eventlog written by the campaign's $(b,--events): enables \
                 the coverage/bug curves, stage-timing and incident sections.")
      $ out_arg)

let profile_cmd =
  let run path out =
    match Costprof.load ~path with
    | Error m -> fail "%s: %s" path m
    | Ok (cells, truncated) ->
        if truncated then
          warn
            "profile ended in a torn line (interrupted run); reporting the \
             clean prefix";
        emit out (Costprof.report cells)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Render an interpreter cost profile written by a campaign's \
          $(b,--profile) $(i,FILE): constructs ranked by share of execute \
          ticks, with per-kernel cell and attribution totals. The \
          $(i,FILE).folded sibling is already in collapsed-stack format for \
          flamegraph.pl or speedscope.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"PROFILE" ~doc:"profile file to render")
      $ out_arg)

let figure_cmd name exhibits doc =
  let run verbose out =
    if verbose then
      emit out
        (String.concat "\n" (List.map Exhibit.demonstrate exhibits) ^ "\n")
    else emit out (Exhibit.summary_table exhibits ^ "\n")
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run
      $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print kernels")
      $ out_arg)

let races_cmd =
  let run out =
    let b = Buffer.create 256 in
    List.iter
      (fun (bm : Suite.benchmark) ->
        let r =
          Interp.run
            ~config:{ Interp.default_config with Interp.detect_races = true }
            (bm.Suite.testcase ())
        in
        Buffer.add_string b
          (Printf.sprintf "%-11s %s\n" bm.Suite.name
             (match r.Interp.races with
             | [] -> "race-free"
             | race :: _ -> Race.race_to_string race)))
      Suite.all;
    emit out (Buffer.contents b)
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Race-detect the benchmark suite (rediscovers the spmv/myocyte races)")
    Term.(const run $ out_arg)

let reduce_cmd =
  let run seed config_id opt max_attempts out =
    let cfg = Gen_config.scaled Gen_config.All in
    let tc, info = Generate.generate ~cfg ~seed () in
    if info.Generate.counter_sharing then
      fail "seed %d discarded (counter sharing); try another seed" seed
    else begin
      let c = Config.find config_id in
      let reference tc = Driver.reference_outcome tc in
      let interesting tc =
        match (reference tc, Driver.run c ~opt tc) with
        | Outcome.Success a, Outcome.Success b -> not (String.equal a b)
        | _ -> false
      in
      if not (interesting tc) then
        fail "config %d%s compiles seed %d correctly; try another seed"
          config_id
          (if opt then "+" else "-")
          seed
      else begin
        let reduced, stats = Reduce.reduce ~max_attempts ~interesting tc in
        emit out
          (Printf.sprintf
             "reduced from %d to %d statements\n\
              stats: attempts %d (budget %d), accepted %d\n\n"
             stats.Reduce.initial_stmts stats.Reduce.final_stmts
             stats.Reduce.attempts max_attempts stats.Reduce.accepted
          ^ Pp.program_to_string reduced.Ast.prog)
      end
    end
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Reduce a wrong-code kernel for a configuration")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"generator seed")
      $ Arg.(value & opt int 19 & info [ "config" ] ~doc:"configuration id")
      $ Arg.(value & flag & info [ "opt" ] ~doc:"optimisations on")
      $ Arg.(
          value & opt int 5000
          & info [ "max-attempts" ]
              ~doc:
                "Budget on candidate-variant evaluations. Candidates are \
                 tried in deterministic statement order (remove before \
                 unwrap, rescanning from the top after each accepted step).")
      $ out_arg)

(* ------------------------------------------------------------------ *)
(* Distributed fabric: coordinate / worker                             *)
(* ------------------------------------------------------------------ *)

(* a distribution failure must abort the run without committing the
   journal (the .tmp rewrite must not replace a good journal with an
   empty one) and without a raw backtrace: raise through with_journal,
   catch before with_telemetry's cleanup *)
exception Dist_failed of string

let addr_conv =
  let parse s =
    match Proto.addr_of_string s with Ok a -> Ok a | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Proto.addr_to_string a))

let campaign_pos =
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun c -> (c, c)) Spec.campaigns))) None
    & info [] ~docv:"CAMPAIGN"
        ~doc:"Campaign to distribute: table1 | table3 | table4 | table5 | fuzz.")

let listen_arg =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Address to serve workers on: $(b,unix:PATH) or $(b,HOST:PORT).")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ]
        ~doc:
          "Connected workers to wait for before leasing begins (late \
           joiners are put to work too).")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "lease" ] ~docv:"CELLS"
        ~doc:
          "Cells per lease. Default: the grid split twice per worker \
           (fuzz: each generation split across the workers).")

let ttl_arg =
  Arg.(
    value & opt int 60
    & info [ "lease-ttl" ] ~docv:"SECS"
        ~doc:
          "Heartbeat expiry: a lease silent for $(docv) seconds is \
           revoked and re-granted (streamed cells count as beats).")

let status_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "status" ] ~docv:"FILE|ADDR"
        ~doc:
          "Publish a live fleet status snapshot — one checksummed JSON \
           line. A plain $(docv) is a file, atomically rewritten about \
           twice a second; $(b,unix:PATH) or $(b,HOST:PORT) serves one \
           snapshot per connection (fabric phase only). Read either with \
           $(b,campaign status). Campaign output is byte-identical with \
           or without it.")

let coordinate_cmd =
  let run campaign addr workers chunk ttl n seed variants gen_size no_feedback
      minimize jobs fuel journal resume out status telemetry =
    let n =
      match n with
      | Some n -> n
      | None -> (
          match campaign with
          | "table1" -> 10
          | "table3" -> 12
          | "table4" -> 60
          | "table5" -> 15
          | _ -> Fuzz_loop.default_budget)
    in
    match
      Spec.make ~campaign
        ~n:(if campaign = "table3" then 0 else n)
        ?seed0:seed ?fuel
        ?variants:(if campaign = "table3" then Some n else variants)
        ~feedback:(not no_feedback) ~gen_size ~minimize ()
    with
    | Error m -> fail "%s" m
    | Ok spec ->
        let header = Spec.header spec in
        let total = Spec.total_cells spec in
        let chunk =
          match chunk with
          | Some c -> Some (max 1 c)
          | None ->
              let per =
                match campaign with
                | "fuzz" ->
                    spec.Spec.gen_size * Fuzz_loop.cells_per_kernel ()
                    / max 1 workers
                | _ -> total / max 1 (workers * 2)
              in
              Some (max 1 per)
        in
        let mon = Coordinator.monitor () in
        let fleet = Fleet.create ~total ~now:(Mclock.now_ns ()) () in
        let phase = ref "fabric" in
        (* (collected, in_flight), fed from the coordinator's probe each
           tick; read unsynchronised by the watchdog domain — a stale
           pair only skews a monitoring snapshot *)
        let counts = ref (0, 0) in
        let fleet_snapshot () =
          let collected, in_flight = !counts in
          Fleet.snapshot fleet ~now:(Mclock.now_ns ()) ~collected ~in_flight
        in
        let fleet_line () =
          Fleet.snapshot_to_line ~campaign ~phase:!phase (fleet_snapshot ())
        in
        let status_mode =
          match status with
          | None -> `Off
          | Some s -> (
              match Proto.addr_of_string s with
              | Ok a -> `Sock a
              | Error _ -> `File s)
        in
        let status_addr =
          match status_mode with `Sock a -> Some a | `Off | `File _ -> None
        in
        let last_status = ref Int64.min_int in
        let write_status ?(force = false) () =
          match status_mode with
          | `Off | `Sock _ -> ()
          | `File path ->
              let now = Mclock.now_ns () in
              if force || Int64.sub now !last_status >= 500_000_000L then begin
                last_status := now;
                (* tmp + rename: a reader never sees a torn snapshot *)
                let tmp = path ^ ".tmp" in
                try
                  let oc = open_out tmp in
                  output_string oc (fleet_line ());
                  output_char oc '\n';
                  close_out oc;
                  Sys.rename tmp path
                with Sys_error _ -> ()
              end
        in
        let on_tick (_ : int64) =
          (match Coordinator.probe mon () with
          | Some (c, i, _) -> counts := (c, i)
          | None -> ());
          write_status ()
        in
        with_telemetry ~telemetry
          ~fleet_groups:(fun () -> Fleet.span_groups fleet)
          ~header ~label:("dist-" ^ campaign) ~total
        @@ fun wrap ev ->
        let dist_wd =
          match telemetry.o_wd_timeout with
          | None -> None
          | Some secs ->
              let on_event level (s : Watchdog.snapshot) =
                warn
                  "watchdog %s: fabric made no progress for %d ms (%d cells \
                   collected, %d leases in flight%s)"
                  (Watchdog.level_name level)
                  s.Watchdog.idle_ms s.Watchdog.completed s.Watchdog.in_flight
                  (match s.Watchdog.stalled_domains with
                  | [] -> ""
                  | ws ->
                      Printf.sprintf ", stale workers %s"
                        (String.concat "," (List.map string_of_int ws)));
                ev
                  (Eventlog.Watchdog
                     {
                       level = Watchdog.level_name level;
                       completed = s.Watchdog.completed;
                       in_flight = s.Watchdog.in_flight;
                       stalled_domains = s.Watchdog.stalled_domains;
                       idle_ms = s.Watchdog.idle_ms;
                     });
                (* one worker-tagged health snapshot per stale worker: the
                   eventlog's pool_health dimension, with fabric workers in
                   place of pool domains (monitoring-only, like all
                   nondeterministic events) *)
                List.iter
                  (fun w ->
                    ev
                      (Eventlog.Pool_health
                         {
                           worker = w;
                           submitted = s.Watchdog.completed + s.Watchdog.in_flight;
                           completed = s.Watchdog.completed;
                           in_flight = s.Watchdog.in_flight;
                           stalled_domains = s.Watchdog.stalled_domains;
                         }))
                  s.Watchdog.stalled_domains;
                (* the per-worker fleet snapshot the watchdog saw, so the
                   incident names who was slow, not just that the fabric
                   was *)
                let snap = fleet_snapshot () in
                ev
                  (Eventlog.Fleet_health
                     {
                       total = snap.Fleet.total;
                       collected = snap.Fleet.collected;
                       in_flight = snap.Fleet.in_flight;
                       fleet_milli = snap.Fleet.fleet_milli;
                       workers =
                         List.map
                           (fun (r : Fleet.row) ->
                             {
                               Eventlog.fw_worker = r.Fleet.worker;
                               fw_cells = r.Fleet.cells;
                               fw_rate_milli = r.Fleet.rate_milli;
                               fw_last_ms = r.Fleet.last_ms;
                               fw_alive = r.Fleet.alive;
                               fw_straggler = r.Fleet.straggler;
                             })
                           snap.Fleet.rows;
                     })
              in
              let abort =
                if telemetry.o_wd_abort then
                  Some
                    (fun (_ : Watchdog.snapshot) ->
                      report "watchdog: stalled fabric aborted";
                      Stdlib.exit 2)
                else None
              in
              Some
                (Watchdog.start ~timeout_ms:(secs * 1000)
                   ~probe:(Coordinator.probe mon) ?abort ~on_event ())
        in
        let progress_step = max 1 (total / 10) in
        let on_event = function
          | Coordinator.Worker_joined w -> report "worker %d joined" w
          | Coordinator.Worker_left (w, reason) ->
              warn "worker %d left: %s (its leases are requeued)" w reason
          | Coordinator.Lease_granted _ -> ()
          | Coordinator.Lease_expired (l, w) ->
              warn "lease %d (cells [%d,%d)) of worker %d expired; requeued"
                l.Lease.lease_id l.Lease.lo l.Lease.hi w
          | Coordinator.Progress (c, t) ->
              if c mod progress_step = 0 || c = t then
                report "fabric: %d/%d cells collected" c t
          | Coordinator.Fallback missing ->
              warn
                "all workers gone; finishing the remaining %d cells locally"
                missing
        in
        (* the scratch journal holds streamed cells in arrival order as
           they land, so a killed coordinator resumes with the work its
           workers already did; it is dropped once the real (ordered)
           journal commits *)
        let scratch = Option.map (fun p -> p ^ ".dist") journal in
        let rc =
          match
            try
              with_journal ~header ~journal ~resume (fun sink cells ->
                  let sw, salvaged =
                    match scratch with
                    | None -> (None, [])
                    | Some path when resume -> (
                        match Journal.append ~path header with
                        | Ok (w, cs) -> (Some w, cs)
                        | Error e ->
                            raise (Dist_failed (Journal.error_to_string e)))
                    | Some path -> (
                        match Journal.create ~path header with
                        | w -> (Some w, [])
                        | exception Sys_error m -> raise (Dist_failed m))
                  in
                  (* resumed/salvaged cells were produced locally (or in a
                     prior life): they are this process's contribution, so
                     worker cells + local cells still sum to the grid *)
                  let prefilled = List.length cells + List.length salvaged in
                  counts := (prefilled, 0);
                  Fleet.note_local fleet prefilled;
                  let fprog =
                    if telemetry.o_progress then
                      Some
                        (Progress.create ~label:("fleet-" ^ campaign)
                           ~start:prefilled ~total ())
                    else None
                  in
                  let on_cell c =
                    (match fprog with
                    | Some p -> Progress.step p ~tag:(tag_of_cell c)
                    | None -> ());
                    match sw with
                    | None -> ()
                    | Some w -> Journal.write_cell w c
                  in
                  write_status ~force:true ();
                  let collected =
                    match
                      try
                        Coordinator.serve ~addr ~spec ~workers ?chunk
                          ~lease_ttl_ms:(ttl * 1000)
                          ~resume:(cells @ salvaged) ~monitor:mon ~fleet
                          ~telemetry:(telemetry.o_trace <> None)
                          ?status_addr ~status_payload:fleet_line ~on_tick
                          ~on_event ~on_cell ()
                      with Unix.Unix_error (e, fn, _) ->
                        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
                    with
                    | Ok collected -> collected
                    | Error e -> raise (Dist_failed e)
                  in
                  (match fprog with Some p -> Progress.finish p | None -> ());
                  (match sw with Some w -> Journal.commit w | None -> ());
                  phase := "merge";
                  counts := (List.length collected, 0);
                  Fleet.note_local fleet (total - List.length collected);
                  write_status ~force:true ();
                  (* the deterministic merge IS an ordinary local run that
                     replays every collected cell — and executes whatever
                     the fabric failed to deliver *)
                  let r =
                    Spec.run_local ~jobs ?sink:(wrap sink) ~events:ev
                      ~resume:collected spec
                  in
                  phase := "done";
                  counts := (total, 0);
                  write_status ~force:true ();
                  r)
            with Dist_failed m -> Error m
          with
          | Error m -> fail "%s" m
          | Ok r ->
              (* the ordered journal is committed; the scratch is now
                 redundant *)
              Option.iter
                (fun p -> try Sys.remove p with Sys_error _ -> ())
                scratch;
              (match r with
              | Spec.Table text -> emit out (text ^ "\n")
              | Spec.Fuzz fr -> emit out (Fuzz_loop.to_table fr ^ "\n"))
        in
        (match dist_wd with Some w -> Watchdog.stop w | None -> ());
        rc
  in
  Cmd.v
    (Cmd.info "coordinate"
       ~doc:
         "Coordinate a distributed campaign: shard the deterministic cell \
          grid into heartbeat-guarded leases over connected workers, stream \
          their results, then fold them through the ordinary ordered merge \
          — journal, tables and eventlog come out byte-identical to a \
          single-process run at the same seed and scale, and a dead \
          worker's cells are re-leased or finished locally.")
    Term.(
      const run $ campaign_pos $ listen_arg $ workers_arg $ chunk_arg
      $ ttl_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "n" ]
              ~doc:
                "Scale: kernels per mode (table1/4), EMI variants per \
                 benchmark (table3), bases (table5) or kernel budget \
                 (fuzz). Defaults match the single-process subcommands.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "seed" ] ~doc:"Root seed (defaults per campaign).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "variants" ] ~doc:"Variants per base (table5).")
      $ Arg.(
          value & opt int Fuzz_loop.default_gen_size
          & info [ "gen" ] ~doc:"Kernels per generation (fuzz).")
      $ Arg.(
          value & flag
          & info [ "no-feedback" ] ~doc:"Blind sampling (fuzz).")
      $ Arg.(
          value & flag
          & info [ "minimize" ] ~doc:"Minimize admitted seeds (fuzz).")
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg
      $ status_arg $ telemetry_term)

let status_cmd =
  let read_file path =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | line -> Ok line
          | exception End_of_file -> Error "empty status file")
    with Sys_error m -> Error m
  in
  let read_sock addr =
    match Proto.sockaddr_of addr with
    | Error e -> Error e
    | Ok sa -> (
        let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect fd sa with
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
            | () ->
                let b = Buffer.create 4096 in
                let buf = Bytes.create 4096 in
                let rec drain () =
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> ()
                  | n ->
                      Buffer.add_subbytes b buf 0 n;
                      drain ()
                  | exception Unix.Unix_error _ -> ()
                in
                drain ();
                (match String.index_opt (Buffer.contents b) '\n' with
                | Some i -> Ok (String.sub (Buffer.contents b) 0 i)
                | None ->
                    if Buffer.length b > 0 then Ok (Buffer.contents b)
                    else Error "empty status reply")))
  in
  let fetch target =
    (* same address grammar as --status: if it parses as an endpoint it
       is one; anything else is a snapshot file *)
    match Proto.addr_of_string target with
    | Ok a -> read_sock a
    | Error _ -> read_file target
  in
  let run target watch json =
    let once () =
      match fetch target with
      | Error m -> Error m
      | Ok line -> (
          match Fleet.snapshot_of_line line with
          | Error m -> Error m
          | Ok (campaign, phase, snap) ->
              if json then
                print_endline
                  (Jsonl.to_string (Fleet.snapshot_to_json ~campaign ~phase snap))
              else print_string (Fleet.to_table ~campaign ~phase snap);
              flush stdout;
              Ok phase)
    in
    if watch <= 0 then
      match once () with Ok _ -> 0 | Error m -> fail "status: %s" m
    else
      (* keep polling through transient failures (coordinator not up
         yet, snapshot mid-rename) but give up after a run of them *)
      let rec loop failures =
        match once () with
        | Ok "done" -> 0
        | Ok _ ->
            Unix.sleepf (float_of_int watch);
            loop 0
        | Error m ->
            if failures >= 5 then fail "status: %s" m
            else begin
              Unix.sleepf (float_of_int watch);
              loop (failures + 1)
            end
      in
      loop 0
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Render a coordinator's live fleet status: per-worker throughput, \
          lease latency, transport totals and straggler flags, plus the \
          fleet-wide rate and ETA. Reads the snapshot a $(b,coordinate \
          --status) run publishes — a file or a status socket address.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE|ADDR"
              ~doc:
                "Status target: the $(b,--status) file, or the status \
                 socket as $(b,unix:PATH) / $(b,HOST:PORT).")
      $ Arg.(
          value & opt int 0
          & info [ "watch" ] ~docv:"SECS"
              ~doc:
                "Redraw every $(docv) seconds until the snapshot reports \
                 phase $(b,done). Default: render once and exit.")
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:
                "Print the snapshot as one canonical JSON object (the \
                 status-line schema without its checksum field) instead of \
                 the table, for scripts."))

let worker_cmd =
  let run addr jobs retries journal =
    let on_progress = function
      | Dist_worker.Connected w -> report "connected as worker %d" w
      | Dist_worker.Leased { gen; lo; hi } ->
          report "lease: generation %d, cells [%d,%d)" gen lo hi
      | Dist_worker.Finished { lease_id = _; executed } ->
          report "lease done: %d cells executed" executed
    in
    match
      try Dist_worker.run ~addr ~jobs ~retries ?journal ~on_progress ()
      with Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    with
    | Ok cells ->
        report "shutdown: %d cells executed in total" cells;
        0
    | Error m -> fail "worker: %s" m
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve a coordinator as a fabric worker: receive the campaign \
          spec over the wire, execute leased shards of the cell grid \
          through the local execution pool, stream every result back. \
          Takes no campaign parameters — the coordinator owns them all.")
    Term.(
      const run
      $ Arg.(
          required
          & opt (some addr_conv) None
          & info [ "connect" ] ~docv:"ADDR"
              ~doc:"Coordinator address: $(b,unix:PATH) or $(b,HOST:PORT).")
      $ jobs_arg
      $ Arg.(
          value & opt int 20
          & info [ "retries" ]
              ~doc:
                "Connection attempts while the coordinator is not up yet \
                 (half a second apart).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "journal" ] ~docv:"FILE"
              ~doc:
                "Per-worker scratch journal: durably record every executed \
                 cell, and on restart replay it instead of re-executing \
                 cells that land in a fresh lease."))

(* ------------------------------------------------------------------ *)
(* Corpus as a service: serve daemon, campaign client, corpus fsck     *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run listen state max_inflight max_queue read_timeout_ms queue_timeout_ms
      trace =
    match Svstore.open_ ~path:state with
    | Error m -> fail "serve: %s" m
    | Ok store -> (
        let stop = Atomic.make false in
        let arm signal =
          try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Atomic.set stop true))
          with Invalid_argument _ | Sys_error _ -> ()
        in
        arm Sys.sigint;
        arm Sys.sigterm;
        (* metrics time series: one snapshot per second of daemon life,
           served at /metrics/history and charted in /report *)
        let history = Svhistory.create () in
        if trace <> None then begin
          Span.reset ();
          Span.enable ()
        end;
        let write_trace () =
          match trace with
          | None -> 0
          | Some path -> (
              Span.disable ();
              let spans = Span.drain () in
              try
                Trace.write_groups ~path [ ("serve", spans) ];
                0
              with Sys_error m -> fail "%s" m)
        in
        report "serving on %s (journal %s: %d kernels, %d cells)"
          (Proto.addr_to_string listen)
          state
          (Svstore.kernel_count store)
          (Svstore.cell_count store);
        match
          Server.run ~addr:listen ~store ~max_inflight ~max_queue
            ~read_timeout_ms ~queue_timeout_ms ~stop ~history ()
        with
        | Ok stats ->
            Svstore.close store;
            let rc_trace = write_trace () in
            report "served %d requests (%d shed, %d timeouts)"
              stats.Server.requests stats.Server.shed stats.Server.timeouts;
            rc_trace
        | Error m ->
            Svstore.close store;
            ignore (write_trace ());
            fail "serve: %s" m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the corpus service: a long-lived daemon owning the \
          content-addressed kernel corpus, the coverage bitmap and the \
          distinct-bug store behind a small HTTP/1.1 JSON API (submit \
          kernels, claim work, report observations, query bugs / coverage \
          / corpus, Prometheus $(b,/metrics), live HTML $(b,/report)). \
          Every state change is journalled and flushed before it is \
          acknowledged, so a daemon killed at any instant restarts from \
          $(b,--state) to byte-identical query results. Under overload it \
          sheds with 429 + Retry-After instead of queueing without bound.")
    Term.(
      const run
      $ Arg.(
          required
          & opt (some addr_conv) None
          & info [ "listen" ] ~docv:"ADDR"
              ~doc:"Address to serve on: $(b,unix:PATH) or $(b,HOST:PORT).")
      $ Arg.(
          value
          & opt string "serve.journal"
          & info [ "state" ] ~docv:"FILE"
              ~doc:
                "The append-only server journal: created if absent, \
                 replayed if present.")
      $ Arg.(
          value & opt int 64
          & info [ "max-inflight" ]
              ~doc:"Connections admitted (read and served) concurrently.")
      $ Arg.(
          value & opt int 64
          & info [ "max-queue" ]
              ~doc:
                "Connections parked beyond the admitted set before new \
                 arrivals are shed with 429.")
      $ Arg.(
          value & opt int 10_000
          & info [ "read-timeout-ms" ]
              ~doc:
                "Close an admitted connection with no read progress for \
                 this long (408 if it left a partial request).")
      $ Arg.(
          value & opt int 2_000
          & info [ "queue-timeout-ms" ]
              ~doc:"Shed a parked connection that waited this long (429).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Write a Chrome/Perfetto trace of per-request handling \
                 spans on shutdown. Observation submissions carry their \
                 cell's causal flow id, so this trace stitches into a \
                 worker/coordinator trace merged over the same campaign."))

(* the serve client's execution loop shares the campaign's outcome
   classification: majority vote across the above-threshold configs,
   exactly like table 4 *)
let client_execute ~addr ~configs (e : Corpus.entry) text =
  match Gen_config.mode_of_string e.Corpus.mode with
  | None -> Error (Printf.sprintf "unknown generation mode %S" e.Corpus.mode)
  | Some m ->
      let tc, _ =
        Generate.generate ~cfg:(Gen_config.scaled m) ~seed:e.Corpus.seed ()
      in
      if not (String.equal (Corpus.hash_text (Pp.program_to_string tc.Ast.prog)) e.Corpus.hash)
      then Error (Printf.sprintf "kernel %s does not regenerate from its seed" e.Corpus.hash)
      else begin
        ignore text;
        let prepared = Driver.prepare tc in
        let features = Driver.features_of_prepared prepared in
        let signature = Triage.signature_of_features features in
        let runs =
          List.concat_map
            (fun id ->
              List.map
                (fun opt ->
                  let outcome, stats =
                    Driver.run_prepared_stats (Config.find id) ~opt prepared
                  in
                  (id, opt, outcome, stats))
                [ false; true ])
            configs
        in
        let majority =
          Majority.majority_output (List.map (fun (_, _, o, _) -> o) runs)
        in
        let results =
          List.map
            (fun (id, opt, outcome, stats) ->
              let divergent = Majority.is_wrong_code ~majority outcome in
              let cov =
                Covmap.indices ~features ~config:id ~opt ~divergent ~outcome
                  ~stats
              in
              let opt_s = if opt then "+" else "-" in
              let cell =
                {
                  Journal.index = 0;
                  seed = e.Corpus.seed;
                  mode = e.Corpus.mode;
                  config = id;
                  opt = opt_s;
                  outcomes = [ outcome ];
                  note = "";
                }
              in
              let cls =
                match Majority.bucket_of ~majority outcome with
                | Majority.B_wrong -> Some "wrong-code"
                | Majority.B_bf -> Some "build-failure"
                | Majority.B_crash -> Some "crash"
                | Majority.B_ok | Majority.B_timeout -> None
              in
              let obs =
                Option.map
                  (fun cls ->
                    {
                      Triage.o_cls = cls;
                      o_config = id;
                      o_opt = opt_s;
                      o_signature = signature;
                      o_seed = e.Corpus.seed;
                      o_mode = e.Corpus.mode;
                      o_hash = e.Corpus.hash;
                    })
                  cls
              in
              (cell, obs, cov))
            runs
        in
        let rec ship = function
          | [] -> Ok (List.length results)
          | (cell, obs, cov) :: rest -> (
              match Sclient.report_observation ~addr ~cell ~obs ~cov () with
              | Error m -> Error m
              | Ok _ -> ship rest)
        in
        ship results
      end

let client_cmd =
  let run action addr retries count mode seed_base max_claims configs out =
    let addr_s = Proto.addr_to_string addr in
    let get path =
      match Sclient.get ~addr ~retries path with
      | Error m -> Error m
      | Ok r when r.Sclient.status <> 200 ->
          Error (Printf.sprintf "%s: status %d: %s" path r.Sclient.status r.Sclient.body)
      | Ok r -> Ok r.Sclient.body
    in
    match action with
    | `Health -> (
        match get "/healthz" with
        | Ok body -> emit out (body ^ "\n")
        | Error m -> fail "client: %s" m)
    | `Bugs -> (
        match get "/bugs" with
        | Ok body -> emit out (body ^ "\n")
        | Error m -> fail "client: %s" m)
    | `Coverage -> (
        match get "/coverage" with
        | Ok body -> emit out (body ^ "\n")
        | Error m -> fail "client: %s" m)
    | `Corpus -> (
        match get "/corpus" with
        | Ok body -> emit out (body ^ "\n")
        | Error m -> fail "client: %s" m)
    | `Metrics -> (
        match get "/metrics.json" with
        | Ok body -> emit out (body ^ "\n")
        | Error m -> fail "client: %s" m)
    | `Report -> (
        match get "/report" with
        | Ok body -> emit out body
        | Error m -> fail "client: %s" m)
    | `Gen -> (
        match Gen_config.mode_of_string mode with
        | None -> fail "client: unknown generation mode %S" mode
        | Some m -> (
            let rec go i added =
              if i >= count then Ok added
              else
                let seed = seed_base + i in
                let tc, _ =
                  Generate.generate ~cfg:(Gen_config.scaled m) ~seed ()
                in
                let text = Pp.program_to_string tc.Ast.prog in
                let e =
                  {
                    Corpus.hash = Corpus.hash_text text;
                    seed;
                    mode;
                    cls = "candidate";
                    config = 0;
                    opt = "-";
                  }
                in
                match Sclient.submit_kernel ~addr ~retries e text with
                | Error m -> Error m
                | Ok fresh -> go (i + 1) (added + if fresh then 1 else 0)
            in
            match go 0 0 with
            | Ok added ->
                report "submitted %d kernels to %s (%d new)" count addr_s added;
                0
            | Error m -> fail "client: %s" m))
    | `Run -> (
        let config_ids =
          match configs with
          | [] -> Config.above_threshold_ids
          | ids -> ids
        in
        let rec go claimed cells =
          if max_claims > 0 && claimed >= max_claims then Ok (claimed, cells)
          else
            match Sclient.claim ~addr ~retries () with
            | Error m -> Error m
            | Ok None -> Ok (claimed, cells)
            | Ok (Some (e, text)) -> (
                match client_execute ~addr ~configs:config_ids e text with
                | Error m -> Error m
                | Ok n -> go (claimed + 1) (cells + n))
        in
        match go 0 0 with
        | Ok (claimed, cells) ->
            report "ran %d claimed kernels (%d cells reported) against %s"
              claimed cells addr_s;
            0
        | Error m -> fail "client: %s" m)
  in
  let action_conv =
    Arg.enum
      [
        ("health", `Health); ("gen", `Gen); ("run", `Run); ("bugs", `Bugs);
        ("coverage", `Coverage); ("corpus", `Corpus); ("metrics", `Metrics);
        ("report", `Report);
      ]
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a $(b,campaign serve) daemon: $(b,gen) submits freshly \
          generated kernels, $(b,run) claims submitted kernels and executes \
          them across the device matrix (reporting every cell, its triage \
          classification and its coverage points back), and $(b,health) / \
          $(b,bugs) / $(b,coverage) / $(b,corpus) / $(b,metrics) / \
          $(b,report) print the daemon's live answers.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some action_conv) None
          & info [] ~docv:"ACTION"
              ~doc:
                "One of $(b,health), $(b,gen), $(b,run), $(b,bugs), \
                 $(b,coverage), $(b,corpus), $(b,metrics), $(b,report).")
      $ Arg.(
          required
          & opt (some addr_conv) None
          & info [ "connect" ] ~docv:"ADDR"
              ~doc:"Daemon address: $(b,unix:PATH) or $(b,HOST:PORT).")
      $ Arg.(
          value & opt int 20
          & info [ "retries" ]
              ~doc:
                "Connection attempts while the daemon is not up yet (half \
                 a second apart).")
      $ Arg.(
          value & opt int 10
          & info [ "count" ] ~doc:"Kernels to generate and submit ($(b,gen)).")
      $ Arg.(
          value & opt string "basic"
          & info [ "mode" ] ~docv:"MODE"
              ~doc:"Generation mode for $(b,gen) (see $(b,table4)).")
      $ Arg.(
          value & opt int 1
          & info [ "seed-base" ] ~docv:"SEED"
              ~doc:"First generator seed for $(b,gen); kernel i uses SEED+i.")
      $ Arg.(
          value & opt int 0
          & info [ "max-claims" ]
              ~doc:
                "Stop $(b,run) after this many claimed kernels. Default 0: \
                 run until the daemon has no unclaimed work.")
      $ Arg.(
          value
          & opt (list int) []
          & info [ "configs" ] ~docv:"IDS"
              ~doc:
                "Configuration ids $(b,run) executes against. Default: the \
                 above-threshold set (as in table 4).")
      $ out_arg)

let corpus_cmd =
  let verify_cmd =
    let run dir =
      match Corpus.fsck ~dir with
      | [] -> (
          match Corpus.index ~dir with
          | Ok entries ->
              report "corpus %s: healthy (%d index entries)" dir
                (List.length entries);
              0
          | Error m -> fail "corpus: %s" m)
      | damage ->
          List.iter
            (fun d -> report "damage: %s" (Corpus.damage_to_string d))
            damage;
          fail "corpus %s: %d problem%s found" dir (List.length damage)
            (if List.length damage = 1 then "" else "s")
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Fsck a content-addressed corpus: re-hash every indexed kernel, \
            flag index entries whose kernel file is missing, kernel files \
            the index does not reference, and duplicate index keys. Exits \
            nonzero when any damage is found.")
      Term.(
        const run
        $ Arg.(
            required
            & pos 0 (some string) None
            & info [] ~docv:"DIR" ~doc:"The corpus directory."))
  in
  Cmd.group
    (Cmd.info "corpus" ~doc:"Inspect and verify a content-addressed corpus")
    [ verify_cmd ]

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "campaign" ~doc:"Reproduce the paper's experiments")
          [
            table1_cmd; table2_cmd; table3_cmd; table4_cmd; table5_cmd;
            fuzz_cmd; triage_cmd; report_cmd; profile_cmd; status_cmd;
            figure_cmd "figure1" Exhibit.figure1 "Figure 1 bug exhibits";
            figure_cmd "figure2" Exhibit.figure2 "Figure 2 bug exhibits";
            races_cmd; reduce_cmd; coordinate_cmd; worker_cmd;
            serve_cmd; client_cmd; corpus_cmd;
          ]))
