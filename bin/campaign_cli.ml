(* campaign: run any of the paper's experiments from the command line.

   Subcommands mirror the per-experiment index of DESIGN.md:
     table1 | table2 | table3 | table4 | table5 | figure1 | figure2
     | races | reduce | triage
   with -n to scale the sample sizes. The table campaigns persist their
   cells to a crash-safe journal (--journal FILE), continue interrupted or
   smaller runs (--resume), and archive their distinct-bug witnesses to a
   content-addressed corpus (--corpus DIR); triage deduplicates a journal
   into buckets. Every subcommand exits nonzero on failure. *)

open Cmdliner

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("campaign: " ^ m); 1) fmt

(* every subcommand renders its report into a string and emits it here *)
let emit out text =
  match out with
  | None ->
      print_string text;
      0
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        0
      with Sys_error m -> fail "%s" m)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv) instead of stdout.")

let n_arg default doc = Arg.(value & opt int default & info [ "n" ] ~doc)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.recommended_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Size of the execution pool (worker domains). Defaults to the \
           recommended domain count. Output is byte-identical across -j \
           values.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ]
        ~doc:
          "Per-task soft timeout: the interpreter's per-thread step budget. \
           Exhaustion is counted as a timeout.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Persist every completed cell to a crash-safe JSONL journal at \
           $(docv), appended and flushed in deterministic task order.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the journal named by $(b,--journal) first: cells already \
           recorded are not re-executed, only the remainder runs, and the \
           finished run (table and rewritten journal) is byte-identical to \
           an uninterrupted one. The journal's campaign parameters must \
           match; sample sizes (-n) may differ.")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Archive each distinct-bug bucket's exemplar kernel to the \
           content-addressed corpus at $(docv).")

(* run [k sink resumed_cells] under the requested journal plumbing *)
let with_journal ~header ~journal ~resume k =
  match (journal, resume) with
  | None, true -> Error "--resume requires --journal FILE"
  | None, false -> Ok (k None [])
  | Some path, false -> (
      try
        let w = Journal.create ~path header in
        let r = k (Some (Journal.write_cell w)) [] in
        Journal.commit w;
        Ok r
      with Sys_error m -> Error m)
  | Some path, true -> (
      match Journal.resume ~path header with
      | Error e -> Error (Journal.error_to_string e)
      | Ok (w, cells) -> (
          try
            let r = k (Some (Journal.write_cell w)) cells in
            Journal.commit w;
            Ok r
          with Sys_error m -> Error m))

let archive ~dir ~header ~cells report =
  match Triage.of_journal header cells with
  | Error m -> Error m
  | Ok buckets -> (
      match Corpus.add_all ~dir (Triage.corpus_entries buckets) with
      | Error m -> Error m
      | Ok added ->
          Ok
            (report
            ^ Printf.sprintf "corpus: %d new of %d exemplars in %s\n" added
                (List.length buckets) dir))

let table1_cmd =
  let run n jobs fuel journal resume out =
    let header = Classify.journal_header ?fuel ~per_mode:n () in
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Classify.run ~jobs ?fuel ~per_mode:n ?sink ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t ->
        let a, total = Classify.agreement_with_paper t in
        emit out
          (Classify.to_table t ^ "\n"
          ^ Printf.sprintf
              "classification agreement with the paper's Table 1: %d/%d\n" a
              total)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Initial testing and reliability threshold")
    Term.(
      const run
      $ n_arg 10 "initial kernels per mode (paper: 100)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg)

let table2_cmd =
  let run out = emit out (Suite.table2 () ^ "\n") in
  Cmd.v (Cmd.info "table2" ~doc:"Benchmark suite summary") Term.(const run $ out_arg)

let table3_cmd =
  let run n jobs fuel journal resume out =
    let header = Bench_emi.journal_header ?fuel ~variants:n () in
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Bench_emi.run ~jobs ?fuel ~variants:n ?sink ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t -> emit out (Bench_emi.to_table t ^ "\n")
  in
  Cmd.v (Cmd.info "table3" ~doc:"EMI testing over the Parboil/Rodinia ports")
    Term.(
      const run
      $ n_arg 12 "EMI variants per benchmark (paper: 125)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg)

let table4_cmd =
  let run n jobs fuel journal resume corpus out =
    let header = Campaign.journal_header ?fuel ~per_mode:n () in
    (* the corpus is populated from the run's own cell stream, so it works
       with or without a journal *)
    let collected = ref [] in
    let collect sink =
      match (corpus, sink) with
      | None, s -> s
      | Some _, None -> Some (fun c -> collected := c :: !collected)
      | Some _, Some s ->
          Some
            (fun c ->
              collected := c :: !collected;
              s c)
    in
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Campaign.run ~jobs ?fuel ~per_mode:n ?sink:(collect sink)
            ~resume:cells ())
    with
    | Error m -> fail "%s" m
    | Ok t -> (
        let report = Campaign.to_table t ^ "\n" in
        match corpus with
        | None -> emit out report
        | Some dir -> (
            match archive ~dir ~header ~cells:(List.rev !collected) report with
            | Error m -> fail "corpus: %s" m
            | Ok report -> emit out report))
  in
  Cmd.v (Cmd.info "table4" ~doc:"Intensive CLsmith differential testing")
    Term.(
      const run
      $ n_arg 60 "kernels per mode (paper: 10000)"
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ corpus_arg $ out_arg)

let table5_cmd =
  let run n v jobs fuel journal resume out =
    let header = Emi_campaign.journal_header ?fuel ~bases:n ~variants:v () in
    match
      with_journal ~header ~journal ~resume (fun sink cells ->
          Emi_campaign.run ~jobs ?fuel ~bases:n ~variants:v ?sink ~resume:cells
            ())
    with
    | Error m -> fail "%s" m
    | Ok t -> emit out (Emi_campaign.to_table t ^ "\n")
  in
  Cmd.v (Cmd.info "table5" ~doc:"CLsmith+EMI metamorphic testing")
    Term.(
      const run
      $ n_arg 15 "base programs (paper: 180)"
      $ Arg.(
          value & opt int 10
          & info [ "variants" ] ~doc:"variants per base (paper: 40)")
      $ jobs_arg $ fuel_arg $ journal_arg $ resume_arg $ out_arg)

let triage_cmd =
  let run path corpus out =
    match Journal.load ~path with
    | Error e -> fail "%s: %s" path (Journal.error_to_string e)
    | Ok (header, cells, truncated) -> (
        if truncated then
          prerr_endline
            "campaign: warning: journal ended in a torn line (interrupted \
             run); triaging the clean prefix";
        match Triage.of_journal header cells with
        | Error m -> fail "%s" m
        | Ok buckets -> (
            let report = Triage.to_table header buckets ^ "\n" in
            match corpus with
            | None -> emit out report
            | Some dir -> (
                match Corpus.add_all ~dir (Triage.corpus_entries buckets) with
                | Error m -> fail "corpus: %s" m
                | Ok added ->
                    emit out
                      (report
                      ^ Printf.sprintf "corpus: %d new of %d exemplars in %s\n"
                          added (List.length buckets) dir))))
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Deduplicate a journal's findings into distinct-bug buckets \
          (outcome class x configuration x opt level x trigger-feature \
          signature), with one exemplar kernel per bucket")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"JOURNAL" ~doc:"journal file to triage")
      $ corpus_arg $ out_arg)

let figure_cmd name exhibits doc =
  let run verbose out =
    if verbose then
      emit out
        (String.concat "\n" (List.map Exhibit.demonstrate exhibits) ^ "\n")
    else emit out (Exhibit.summary_table exhibits ^ "\n")
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run
      $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print kernels")
      $ out_arg)

let races_cmd =
  let run out =
    let b = Buffer.create 256 in
    List.iter
      (fun (bm : Suite.benchmark) ->
        let r =
          Interp.run
            ~config:{ Interp.default_config with Interp.detect_races = true }
            (bm.Suite.testcase ())
        in
        Buffer.add_string b
          (Printf.sprintf "%-11s %s\n" bm.Suite.name
             (match r.Interp.races with
             | [] -> "race-free"
             | race :: _ -> Race.race_to_string race)))
      Suite.all;
    emit out (Buffer.contents b)
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Race-detect the benchmark suite (rediscovers the spmv/myocyte races)")
    Term.(const run $ out_arg)

let reduce_cmd =
  let run seed config_id opt out =
    let cfg = Gen_config.scaled Gen_config.All in
    let tc, info = Generate.generate ~cfg ~seed () in
    if info.Generate.counter_sharing then
      fail "seed %d discarded (counter sharing); try another seed" seed
    else begin
      let c = Config.find config_id in
      let reference tc = Driver.reference_outcome tc in
      let interesting tc =
        match (reference tc, Driver.run c ~opt tc) with
        | Outcome.Success a, Outcome.Success b -> not (String.equal a b)
        | _ -> false
      in
      if not (interesting tc) then
        fail "config %d%s compiles seed %d correctly; try another seed"
          config_id
          (if opt then "+" else "-")
          seed
      else begin
        let reduced, stats = Reduce.reduce ~interesting tc in
        emit out
          (Printf.sprintf
             "reduced from %d to %d statements (%d attempts, %d steps)\n\n"
             stats.Reduce.initial_stmts stats.Reduce.final_stmts
             stats.Reduce.attempts stats.Reduce.accepted
          ^ Pp.program_to_string reduced.Ast.prog)
      end
    end
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Reduce a wrong-code kernel for a configuration")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"generator seed")
      $ Arg.(value & opt int 19 & info [ "config" ] ~doc:"configuration id")
      $ Arg.(value & flag & info [ "opt" ] ~doc:"optimisations on")
      $ out_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "campaign" ~doc:"Reproduce the paper's experiments")
          [
            table1_cmd; table2_cmd; table3_cmd; table4_cmd; table5_cmd;
            triage_cmd;
            figure_cmd "figure1" Exhibit.figure1 "Figure 1 bug exhibits";
            figure_cmd "figure2" Exhibit.figure2 "Figure 2 bug exhibits";
            races_cmd; reduce_cmd;
          ]))
