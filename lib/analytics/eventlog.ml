let schema_version = 2

(* one worker's view inside a fleet_health event; a flat record rather
   than Fleet.row so the eventlog schema stays self-contained *)
type fleet_worker = {
  fw_worker : int;
  fw_cells : int;
  fw_rate_milli : int;
  fw_last_ms : int;
  fw_alive : bool;
  fw_straggler : bool;
}

type event =
  | Campaign_start of {
      campaign : string;
      ident : (string * string) list;
      scale : (string * string) list;
      total : int;
    }
  | Cell of {
      index : int;
      seed : int;
      mode : string;
      config : int;
      opt : string;
      cls : string;
    }
  | Generation of {
      gen : int;
      kernels : int;
      mutants : int;
      new_bits : int;
      coverage : int;
      corpus : int;
      findings : int;
      distinct_bugs : int;
    }
  | Coverage_delta of { gen : int; kernel : int; new_bits : int; total : int }
  | Triage_hit of {
      cls : string;
      config : int;
      opt : string;
      signature : string;
      seed : int;
      mode : string;
      hash : string;
    }
  | Pool_health of {
      worker : int;
      submitted : int;
      completed : int;
      in_flight : int;
      stalled_domains : int list;
    }
  | Stage_timing of (string * int) list
  | Watchdog of {
      level : string;
      completed : int;
      in_flight : int;
      stalled_domains : int list;
      idle_ms : int;
    }
  | Fleet_health of {
      total : int;
      collected : int;
      in_flight : int;
      fleet_milli : int;
      workers : fleet_worker list;
    }
  | Campaign_end of { cells : int }

let is_deterministic = function
  | Campaign_start _ | Cell _ | Generation _ | Coverage_delta _ | Triage_hit _
  | Campaign_end _ ->
      true
  | Pool_health _ | Stage_timing _ | Watchdog _ | Fleet_health _ -> false

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let params_json ps = Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Str v)) ps)
let ints_json is = Jsonl.List (List.map (fun i -> Jsonl.Int i) is)

let fields_of = function
  | Campaign_start { campaign; ident; scale; total } ->
      [
        ("e", Jsonl.Str "campaign_start");
        ("campaign", Jsonl.Str campaign);
        ("ident", params_json ident);
        ("scale", params_json scale);
        ("total", Jsonl.Int total);
      ]
  | Cell { index; seed; mode; config; opt; cls } ->
      [
        ("e", Jsonl.Str "cell");
        ("i", Jsonl.Int index);
        ("seed", Jsonl.Int seed);
        ("mode", Jsonl.Str mode);
        ("config", Jsonl.Int config);
        ("opt", Jsonl.Str opt);
        ("cls", Jsonl.Str cls);
      ]
  | Generation
      { gen; kernels; mutants; new_bits; coverage; corpus; findings;
        distinct_bugs } ->
      [
        ("e", Jsonl.Str "generation");
        ("gen", Jsonl.Int gen);
        ("kernels", Jsonl.Int kernels);
        ("mutants", Jsonl.Int mutants);
        ("new_bits", Jsonl.Int new_bits);
        ("coverage", Jsonl.Int coverage);
        ("corpus", Jsonl.Int corpus);
        ("findings", Jsonl.Int findings);
        ("distinct_bugs", Jsonl.Int distinct_bugs);
      ]
  | Coverage_delta { gen; kernel; new_bits; total } ->
      [
        ("e", Jsonl.Str "coverage_delta");
        ("gen", Jsonl.Int gen);
        ("kernel", Jsonl.Int kernel);
        ("new_bits", Jsonl.Int new_bits);
        ("total", Jsonl.Int total);
      ]
  | Triage_hit { cls; config; opt; signature; seed; mode; hash } ->
      [
        ("e", Jsonl.Str "triage_hit");
        ("cls", Jsonl.Str cls);
        ("config", Jsonl.Int config);
        ("opt", Jsonl.Str opt);
        ("sig", Jsonl.Str signature);
        ("seed", Jsonl.Int seed);
        ("mode", Jsonl.Str mode);
        ("hash", Jsonl.Str hash);
      ]
  | Pool_health { worker; submitted; completed; in_flight; stalled_domains } ->
      [
        ("e", Jsonl.Str "pool_health");
        ("worker", Jsonl.Int worker);
        ("submitted", Jsonl.Int submitted);
        ("completed", Jsonl.Int completed);
        ("in_flight", Jsonl.Int in_flight);
        ("stalled_domains", ints_json stalled_domains);
      ]
  | Stage_timing stages ->
      [
        ("e", Jsonl.Str "stage_timing");
        ( "stages_us",
          Jsonl.Obj (List.map (fun (cat, us) -> (cat, Jsonl.Int us)) stages) );
      ]
  | Watchdog { level; completed; in_flight; stalled_domains; idle_ms } ->
      [
        ("e", Jsonl.Str "watchdog");
        ("level", Jsonl.Str level);
        ("completed", Jsonl.Int completed);
        ("in_flight", Jsonl.Int in_flight);
        ("stalled_domains", ints_json stalled_domains);
        ("idle_ms", Jsonl.Int idle_ms);
      ]
  | Fleet_health { total; collected; in_flight; fleet_milli; workers } ->
      [
        ("e", Jsonl.Str "fleet_health");
        ("total", Jsonl.Int total);
        ("collected", Jsonl.Int collected);
        ("in_flight", Jsonl.Int in_flight);
        ("rate_milli", Jsonl.Int fleet_milli);
        ( "workers",
          Jsonl.List
            (List.map
               (fun fw ->
                 Jsonl.Obj
                   [
                     ("w", Jsonl.Int fw.fw_worker);
                     ("cells", Jsonl.Int fw.fw_cells);
                     ("rate_milli", Jsonl.Int fw.fw_rate_milli);
                     ("last_ms", Jsonl.Int fw.fw_last_ms);
                     ("alive", Jsonl.Bool fw.fw_alive);
                     ("straggler", Jsonl.Bool fw.fw_straggler);
                   ])
               workers) );
      ]
  | Campaign_end { cells } ->
      [ ("e", Jsonl.Str "campaign_end"); ("cells", Jsonl.Int cells) ]

let encode e =
  Jsonl.encode_line (("v", Jsonl.Int schema_version) :: fields_of e)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let params_of = function
  | Some (Jsonl.Obj fields) ->
      let strs =
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonl.get_str v))
          fields
      in
      if List.length strs = List.length fields then Some strs else None
  | _ -> None

let ints_of = function
  | Some (Jsonl.List l) ->
      let is = List.filter_map Jsonl.get_int l in
      if List.length is = List.length l then Some is else None
  | _ -> None

let event_of_fields fields =
  let j = Jsonl.Obj fields in
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match int "v" with
  (* older schemas are a strict subset of this one: every v1 kind
     decodes unchanged, so accept 1..schema_version *)
  | Some v when v < 1 || v > schema_version ->
      Error (Printf.sprintf "schema version %d, this build reads <= %d" v schema_version)
  | None -> Error "missing schema version"
  | Some _ -> (
      let missing = Error "malformed event record" in
      match str "e" with
      | Some "campaign_start" -> (
          match
            ( str "campaign",
              params_of (Jsonl.member "ident" j),
              params_of (Jsonl.member "scale" j),
              int "total" )
          with
          | Some campaign, Some ident, Some scale, Some total ->
              Ok (Campaign_start { campaign; ident; scale; total })
          | _ -> missing)
      | Some "cell" -> (
          match
            (int "i", int "seed", str "mode", int "config", str "opt", str "cls")
          with
          | Some index, Some seed, Some mode, Some config, Some opt, Some cls ->
              Ok (Cell { index; seed; mode; config; opt; cls })
          | _ -> missing)
      | Some "generation" -> (
          match
            ( (int "gen", int "kernels", int "mutants", int "new_bits"),
              (int "coverage", int "corpus", int "findings", int "distinct_bugs") )
          with
          | ( (Some gen, Some kernels, Some mutants, Some new_bits),
              (Some coverage, Some corpus, Some findings, Some distinct_bugs) ) ->
              Ok
                (Generation
                   { gen; kernels; mutants; new_bits; coverage; corpus;
                     findings; distinct_bugs })
          | _ -> missing)
      | Some "coverage_delta" -> (
          match (int "gen", int "kernel", int "new_bits", int "total") with
          | Some gen, Some kernel, Some new_bits, Some total ->
              Ok (Coverage_delta { gen; kernel; new_bits; total })
          | _ -> missing)
      | Some "triage_hit" -> (
          match
            ( (str "cls", int "config", str "opt", str "sig"),
              (int "seed", str "mode", str "hash") )
          with
          | ( (Some cls, Some config, Some opt, Some signature),
              (Some seed, Some mode, Some hash) ) ->
              Ok (Triage_hit { cls; config; opt; signature; seed; mode; hash })
          | _ -> missing)
      | Some "pool_health" -> (
          match
            ( int "submitted", int "completed", int "in_flight",
              ints_of (Jsonl.member "stalled_domains" j) )
          with
          | Some submitted, Some completed, Some in_flight, Some stalled_domains
            ->
              (* the worker dimension arrived with the distributed fabric;
                 a record without it is a local pool snapshot *)
              let worker = Option.value ~default:(-1) (int "worker") in
              Ok
                (Pool_health
                   { worker; submitted; completed; in_flight; stalled_domains })
          | _ -> missing)
      | Some "stage_timing" -> (
          match Jsonl.member "stages_us" j with
          | Some (Jsonl.Obj stages) ->
              let parsed =
                List.filter_map
                  (fun (cat, v) -> Option.map (fun us -> (cat, us)) (Jsonl.get_int v))
                  stages
              in
              if List.length parsed = List.length stages then
                Ok (Stage_timing parsed)
              else missing
          | _ -> missing)
      | Some "watchdog" -> (
          match
            ( (str "level", int "completed", int "in_flight"),
              (ints_of (Jsonl.member "stalled_domains" j), int "idle_ms") )
          with
          | (Some level, Some completed, Some in_flight),
            (Some stalled_domains, Some idle_ms) ->
              Ok (Watchdog { level; completed; in_flight; stalled_domains; idle_ms })
          | _ -> missing)
      | Some "fleet_health" -> (
          let worker_of = function
            | Jsonl.Obj _ as wj -> (
                let wint name = Option.bind (Jsonl.member name wj) Jsonl.get_int in
                let wbool name =
                  match Jsonl.member name wj with
                  | Some (Jsonl.Bool b) -> Some b
                  | _ -> None
                in
                match
                  ( (wint "w", wint "cells", wint "rate_milli"),
                    (wint "last_ms", wbool "alive", wbool "straggler") )
                with
                | ( (Some fw_worker, Some fw_cells, Some fw_rate_milli),
                    (Some fw_last_ms, Some fw_alive, Some fw_straggler) ) ->
                    Some
                      { fw_worker; fw_cells; fw_rate_milli; fw_last_ms;
                        fw_alive; fw_straggler }
                | _ -> None)
            | _ -> None
          in
          let workers =
            match Jsonl.member "workers" j with
            | Some (Jsonl.List l) ->
                let ws = List.filter_map worker_of l in
                if List.length ws = List.length l then Some ws else None
            | _ -> None
          in
          match
            (int "total", int "collected", int "in_flight", int "rate_milli",
             workers)
          with
          | Some total, Some collected, Some in_flight, Some fleet_milli,
            Some workers ->
              Ok (Fleet_health { total; collected; in_flight; fleet_milli; workers })
          | _ -> missing)
      | Some "campaign_end" -> (
          match int "cells" with
          | Some cells -> Ok (Campaign_end { cells })
          | _ -> missing)
      | Some other -> Error (Printf.sprintf "unknown event kind %S" other)
      | None -> Error "missing event kind")

let decode line =
  match Jsonl.decode_line line with
  | Error e -> Error e
  | Ok fields -> event_of_fields fields

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; wm : Mutex.t }

let create ~path = { oc = open_out_bin path; wm = Mutex.create () }

let emit w e =
  (* the mutex admits the one legitimate cross-domain producer — the
     watchdog — without ever reordering the submitting domain's
     deterministic stream *)
  Mutex.lock w.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.wm)
    (fun () ->
      output_string w.oc (encode e);
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out w.oc

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | contents ->
      let lines =
        match List.rev (String.split_on_char '\n' contents) with
        | "" :: rev -> List.rev rev
        | rev -> List.rev rev
      in
      let n = List.length lines in
      let rec go i acc = function
        | [] -> Ok (List.rev acc, false)
        | line :: rest -> (
            match decode line with
            | Ok e -> go (i + 1) (e :: acc) rest
            | Error e ->
                (* same torn-tail policy as the journal: damage is only
                   tolerated at the very end of the file *)
                if i = n - 1 then Ok (List.rev acc, true)
                else Error (Printf.sprintf "event %d: %s" (i + 1) e))
      in
      go 0 [] lines
