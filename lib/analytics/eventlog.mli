(** Typed, schema-versioned structured event stream for a campaign.

    The journal records {e results}; the eventlog records the {e story}:
    campaign lifecycle, per-cell completions, fuzzing generations,
    coverage deltas, triage hits, pool health and watchdog escalations,
    one checksummed JSON object per line ([{"v":1,"e":"<kind>",...,
    "h":"<md5>"}]) written next to the journal. Any text tool can tail
    it; {!load} replays it for the offline report generator.

    {b Determinism.} Every lifecycle event ({!is_deterministic}) is
    emitted from the ordered merged result stream — the same path that
    makes journals byte-identical across [-j] — and carries no
    wall-clock fields, so two runs of the same campaign at any [-j]
    produce byte-identical event files. The monitoring kinds
    ([Pool_health], [Stage_timing], [Watchdog]) are explicitly outside
    that contract: they only appear when the operator armed [--trace] or
    the watchdog, and a healthy untraced run never emits them. *)

val schema_version : int
(** The version stamped into every record: 2. The decoder accepts any
    version in [1..schema_version] — v1 kinds are a strict subset, so
    old eventlogs keep loading. *)

(** One worker's health as the watchdog saw it, inside {!event.Fleet_health}. *)
type fleet_worker = {
  fw_worker : int;
  fw_cells : int;  (** fresh cells streamed so far *)
  fw_rate_milli : int;  (** effective throughput, milli-cells/s *)
  fw_last_ms : int;  (** ms since last sign of life at sample time *)
  fw_alive : bool;
  fw_straggler : bool;
}

type event =
  | Campaign_start of {
      campaign : string;
      ident : (string * string) list;
      scale : (string * string) list;
      total : int;  (** planned cells, resumed cells included *)
    }
  | Cell of {
      index : int;  (** position in the run's deterministic task order *)
      seed : int;
      mode : string;
      config : int;
      opt : string;
      cls : string;  (** short class tag: "ok", "w", "bf", "c", "to", ... *)
    }  (** one completed cell, streamed in merged task order *)
  | Generation of {
      gen : int;
      kernels : int;
      mutants : int;
      new_bits : int;
      coverage : int;  (** cumulative coverage points *)
      corpus : int;
      findings : int;
      distinct_bugs : int;  (** cumulative distinct buckets *)
    }  (** one fuzzing generation's summary *)
  | Coverage_delta of { gen : int; kernel : int; new_bits : int; total : int }
      (** a kernel earned admission: its novelty and the new total *)
  | Triage_hit of {
      cls : string;
      config : int;
      opt : string;
      signature : string;
      seed : int;  (** kernel identity (fuzz kernel index) *)
      mode : string;
      hash : string;  (** content address of the kernel text *)
    }  (** one interesting cell, already classified *)
  | Pool_health of {
      worker : int;
          (** [-1]: the local execution pool; [>= 0]: a distributed
              fabric worker id ([stalled_domains] then lists stale
              worker ids rather than domain ids) *)
      submitted : int;
      completed : int;
      in_flight : int;
      stalled_domains : int list;
    }  (** watchdog-sampled pool snapshot (nondeterministic) *)
  | Stage_timing of (string * int) list
      (** per-stage-category microseconds from drained spans; only
          emitted when [--trace] armed span collection
          (nondeterministic) *)
  | Watchdog of {
      level : string;  (** "warn" | "stall" | "abort" *)
      completed : int;
      in_flight : int;
      stalled_domains : int list;
      idle_ms : int;  (** zero-progress window length at detection *)
    }  (** a stall escalation (nondeterministic) *)
  | Fleet_health of {
      total : int;
      collected : int;
      in_flight : int;
      fleet_milli : int;  (** fleet throughput, milli-cells/s *)
      workers : fleet_worker list;
    }
      (** the per-worker fleet snapshot the distributed watchdog saw
          when it escalated; schema v2 (nondeterministic) *)
  | Campaign_end of { cells : int }

val is_deterministic : event -> bool
(** Whether the event kind is inside the [-j] byte-identity contract. *)

val encode : event -> string
(** One checksummed JSONL line (no trailing newline). *)

val decode : string -> (event, string) result
(** Parse, checksum-verify and type one line. *)

type writer

val create : path:string -> writer
(** Truncate [path] and open it for appending events. *)

val emit : writer -> event -> unit
(** Append one event and flush — crash-safe like the journal. Safe to
    call from the watchdog domain concurrently with the submitting
    domain (serialised by a mutex); the deterministic stream itself is
    produced by the submitting domain only, in order. *)

val close : writer -> unit

val load : path:string -> (event list * bool, string) result
(** All valid events in file order; the flag reports a discarded torn
    final line. Fails on damage before the tail or a schema-version
    mismatch. *)
