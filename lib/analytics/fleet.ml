(* ------------------------------------------------------------------ *)
(* Beat and span wire codecs                                           *)
(* ------------------------------------------------------------------ *)

type beat = {
  completed : int;
  ewma_milli : int;
  queue_depth : int;
  rss_kb : int;
  stage_us : (string * int) list;
}

let beat_version = 1

let stage_json stages =
  Jsonl.Obj (List.map (fun (cat, us) -> (cat, Jsonl.Int us)) stages)

let stage_of_json = function
  | Some (Jsonl.Obj fields) ->
      let parsed =
        List.filter_map
          (fun (cat, v) -> Option.map (fun us -> (cat, us)) (Jsonl.get_int v))
          fields
      in
      if List.length parsed = List.length fields then Some parsed else None
  | None -> Some []
  | _ -> None

let beat_to_json b =
  Jsonl.Obj
    [
      ("bv", Jsonl.Int beat_version);
      ("completed", Jsonl.Int b.completed);
      ("ewma_milli", Jsonl.Int b.ewma_milli);
      ("queue", Jsonl.Int b.queue_depth);
      ("rss_kb", Jsonl.Int b.rss_kb);
      ("stage_us", stage_json b.stage_us);
    ]

let beat_of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  match int "bv" with
  | None -> Error "beat stats: missing version"
  | Some bv when bv < 1 -> Error (Printf.sprintf "beat stats: bad version %d" bv)
  | Some _ -> (
      (* a future version may add fields; this reader needs only these *)
      match
        ( int "completed",
          int "ewma_milli",
          int "queue",
          int "rss_kb",
          stage_of_json (Jsonl.member "stage_us" j) )
      with
      | Some completed, Some ewma_milli, Some queue_depth, Some rss_kb,
        Some stage_us ->
          Ok { completed; ewma_milli; queue_depth; rss_kb; stage_us }
      | _ -> Error "beat stats: malformed")

let span_to_json (s : Span.t) =
  Jsonl.Obj
    ([
       ("c", Jsonl.Str s.Span.cat);
       ("n", Jsonl.Str s.Span.name);
       ("t0", Jsonl.Int (Int64.to_int s.Span.t0_ns));
       ("d", Jsonl.Int (Int64.to_int s.Span.dur_ns));
       ("dm", Jsonl.Int s.Span.domain);
       ("tk", Jsonl.Int s.Span.task);
     ]
    (* flow fields only when set, so unlinked spans keep v1 bytes *)
    @ (if s.Span.flow >= 0 then [ ("f", Jsonl.Int s.Span.flow) ] else [])
    @ if s.Span.flow_n > 0 then [ ("fn", Jsonl.Int s.Span.flow_n) ] else [])

let span_of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match (str "c", str "n", int "t0", int "d", int "dm", int "tk") with
  | Some cat, Some name, Some t0, Some d, Some domain, Some task ->
      Some
        {
          Span.cat;
          name;
          t0_ns = Int64.of_int t0;
          dur_ns = Int64.of_int d;
          domain;
          task;
          flow = Option.value ~default:(-1) (int "f");
          flow_n = Option.value ~default:0 (int "fn");
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Aggregator state                                                    *)
(* ------------------------------------------------------------------ *)

type wstate = {
  w : int;
  mutable host : string;
  mutable pid : int;
  mutable alive : bool;
  mutable cells : int;
  mutable last_ns : int64;
  (* windowed EWMA over fresh streamed cells: cells accumulate into the
     current window and fold into the rate once the window is old
     enough — burst arrival inside one socket drain cannot inflate the
     estimate the way per-cell inter-arrival deltas would *)
  mutable win_start : int64;
  mutable win_cells : int;
  mutable rate_milli : int;
  mutable beat : beat option;
  mutable leases : (int * int64) list;  (** lease id -> grant time *)
  mutable lease_ms : int list;  (** recent latencies, newest first *)
  mutable spans_rev : Span.t list;
  metrics_seen : (string, int) Hashtbl.t;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable frames_out : int;
  mutable bytes_out : int;
}

type t = {
  m : Mutex.t;
  total : int;
  t0_ns : int64;
  stale_ms : int;
  straggler_pct : int;
  workers : (int, wstate) Hashtbl.t;
  mutable local_cells : int;
}

let default_stale_ms = 10_000
let default_straggler_pct = 50
let lease_window = 64
let win_ns = 1_000_000_000L

let create ?(stale_ms = default_stale_ms)
    ?(straggler_pct = default_straggler_pct) ~total ~now () =
  {
    m = Mutex.create ();
    total;
    t0_ns = now;
    stale_ms;
    straggler_pct;
    workers = Hashtbl.create 8;
    local_cells = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let state t ~worker ~now =
  match Hashtbl.find_opt t.workers worker with
  | Some st -> st
  | None ->
      let st =
        {
          w = worker;
          host = "?";
          pid = 0;
          alive = true;
          cells = 0;
          last_ns = now;
          win_start = now;
          win_cells = 0;
          rate_milli = 0;
          beat = None;
          leases = [];
          lease_ms = [];
          spans_rev = [];
          metrics_seen = Hashtbl.create 32;
          frames_in = 0;
          bytes_in = 0;
          frames_out = 0;
          bytes_out = 0;
        }
      in
      Hashtbl.replace t.workers worker st;
      st

(* fold the elapsed window into the rate once it is at least one
   window long; a long idle gap folds as one long empty window, which
   decays the estimate — exactly the straggler signal we want *)
let roll st now =
  let elapsed = Int64.sub now st.win_start in
  if Int64.compare elapsed win_ns >= 0 then begin
    let ms = Int64.to_int (Int64.div elapsed 1_000_000L) in
    let inst = if ms <= 0 then 0 else st.win_cells * 1_000_000 / ms in
    st.rate_milli <-
      (if st.rate_milli = 0 then inst else ((st.rate_milli * 7) + (inst * 3)) / 10);
    st.win_cells <- 0;
    st.win_start <- now
  end

let on_join t ~worker ~pid ~host ~now =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.host <- host;
      st.pid <- pid;
      st.alive <- true;
      st.last_ns <- now)

let on_leave t ~worker ~now =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.alive <- false;
      st.leases <- [])

let on_beat t ~worker ~now b =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.last_ns <- now;
      (match b with Some _ -> st.beat <- b | None -> ());
      roll st now)

let on_cell t ~worker ~now =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.cells <- st.cells + 1;
      st.win_cells <- st.win_cells + 1;
      st.last_ns <- now;
      roll st now)

let on_lease t ~worker ~lease_id ~cells:_ ~now =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.leases <- (lease_id, now) :: List.remove_assoc lease_id st.leases)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let lease_hist = lazy (Metrics.histogram "fleet.lease_ms")

let on_done t ~worker ~lease_id ~now =
  locked t (fun () ->
      let st = state t ~worker ~now in
      st.last_ns <- now;
      match List.assoc_opt lease_id st.leases with
      | None -> ()
      | Some granted ->
          st.leases <- List.remove_assoc lease_id st.leases;
          let ms =
            Int64.to_int (Int64.div (Int64.sub now granted) 1_000_000L)
          in
          st.lease_ms <- take lease_window (ms :: st.lease_ms);
          Metrics.observe (Lazy.force lease_hist) ms)

let on_metrics t ~worker counters =
  locked t (fun () ->
      let st = state t ~worker ~now:0L in
      List.iter
        (fun (name, v) ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt st.metrics_seen name)
          in
          Hashtbl.replace st.metrics_seen name v;
          let delta = v - prev in
          if delta > 0 then Metrics.add (Metrics.counter ("fleet." ^ name)) delta)
        counters)

let add_spans t ~worker spans =
  locked t (fun () ->
      let st = state t ~worker ~now:0L in
      st.spans_rev <- List.rev_append spans st.spans_rev)

let note_local t n = locked t (fun () -> t.local_cells <- t.local_cells + n)

let set_wire t ~worker ~frames_in ~bytes_in ~frames_out ~bytes_out =
  locked t (fun () ->
      let st = state t ~worker ~now:0L in
      st.frames_in <- frames_in;
      st.bytes_in <- bytes_in;
      st.frames_out <- frames_out;
      st.bytes_out <- bytes_out)

let sorted_states t =
  List.sort
    (fun a b -> compare a.w b.w)
    (Hashtbl.fold (fun _ st acc -> st :: acc) t.workers [])

let span_groups t =
  locked t (fun () ->
      List.filter_map
        (fun st ->
          match st.spans_rev with
          | [] -> None
          | spans ->
              Some
                ( Printf.sprintf "worker %d (%s, pid %d)" st.w st.host st.pid,
                  List.rev spans ))
        (sorted_states t))

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  worker : int;
  host : string;
  pid : int;
  alive : bool;
  cells : int;
  rate_milli : int;
  beat_completed : int;
  queue_depth : int;
  rss_kb : int;
  leases : int;
  lease_p50_ms : int;
  lease_p90_ms : int;
  last_ms : int;
  frames_in : int;
  bytes_in : int;
  frames_out : int;
  bytes_out : int;
  straggler : bool;
}

type snapshot = {
  total : int;
  collected : int;
  in_flight : int;
  elapsed_ms : int;
  fleet_milli : int;
  eta_ms : int;
  local_cells : int;
  stage_us : (string * int) list;
  stragglers : int list;
  rows : row list;
}

let list_percentile sorted p =
  match sorted with
  | [] -> 0
  | _ ->
      let n = List.length sorted in
      let rank = max 1 ((p * n) + 99) / 100 in
      List.nth sorted (min (n - 1) (rank - 1))

(* the coordinator-side EWMA sees fresh cells even from old-protocol
   workers; when it has not warmed up yet, trust the worker's own *)
let effective_rate (st : wstate) =
  if st.rate_milli > 0 then st.rate_milli
  else match st.beat with Some b -> b.ewma_milli | None -> 0

let snapshot t ~now ~collected ~in_flight =
  locked t (fun () ->
      let states = sorted_states t in
      List.iter (fun st -> roll st now) states;
      let rates =
        List.filter_map
          (fun (st : wstate) ->
            let r = effective_rate st in
            if st.alive && r > 0 then Some r else None)
          states
      in
      let median =
        match List.sort compare rates with
        | [] -> 0
        | sorted -> List.nth sorted (List.length sorted / 2)
      in
      let stale (st : wstate) =
        Int64.compare (Int64.sub now st.last_ns)
          (Int64.mul (Int64.of_int t.stale_ms) 1_000_000L)
        >= 0
      in
      let is_straggler (st : wstate) =
        st.alive
        && ((st.leases <> [] && stale st)
           || (List.length rates >= 2
              && effective_rate st * 100 < t.straggler_pct * median))
      in
      let rows =
        List.map
          (fun (st : wstate) ->
            let sorted_lat = List.sort compare st.lease_ms in
            {
              worker = st.w;
              host = st.host;
              pid = st.pid;
              alive = st.alive;
              cells = st.cells;
              rate_milli = effective_rate st;
              beat_completed =
                (match st.beat with Some b -> b.completed | None -> -1);
              queue_depth =
                (match st.beat with Some b -> b.queue_depth | None -> 0);
              rss_kb = (match st.beat with Some b -> b.rss_kb | None -> 0);
              leases = List.length st.leases;
              lease_p50_ms = list_percentile sorted_lat 50;
              lease_p90_ms = list_percentile sorted_lat 90;
              last_ms =
                Int64.to_int
                  (Int64.div (Int64.sub now st.last_ns) 1_000_000L);
              frames_in = st.frames_in;
              bytes_in = st.bytes_in;
              frames_out = st.frames_out;
              bytes_out = st.bytes_out;
              straggler = is_straggler st;
            })
          states
      in
      let fleet_milli =
        List.fold_left
          (fun acc (st : wstate) -> if st.alive then acc + effective_rate st else acc)
          0 states
      in
      let remaining = t.total - collected in
      let eta_ms =
        if remaining <= 0 then 0
        else if fleet_milli > 0 then remaining * 1_000_000 / fleet_milli
        else -1
      in
      let stage_us =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (st : wstate) ->
            match st.beat with
            | None -> ()
            | Some b ->
                List.iter
                  (fun (cat, us) ->
                    Hashtbl.replace tbl cat
                      (us + Option.value ~default:0 (Hashtbl.find_opt tbl cat)))
                  b.stage_us)
          states;
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      {
        total = t.total;
        collected;
        in_flight;
        elapsed_ms = Int64.to_int (Int64.div (Int64.sub now t.t0_ns) 1_000_000L);
        fleet_milli;
        eta_ms;
        local_cells = t.local_cells;
        stage_us;
        stragglers =
          List.filter_map
            (fun r -> if r.straggler then Some r.worker else None)
            rows;
        rows;
      })

(* ------------------------------------------------------------------ *)
(* Status line codec                                                   *)
(* ------------------------------------------------------------------ *)

let status_version = 1

let row_to_json r =
  Jsonl.Obj
    [
      ("w", Jsonl.Int r.worker);
      ("host", Jsonl.Str r.host);
      ("pid", Jsonl.Int r.pid);
      ("alive", Jsonl.Bool r.alive);
      ("cells", Jsonl.Int r.cells);
      ("rate_milli", Jsonl.Int r.rate_milli);
      ("completed", Jsonl.Int r.beat_completed);
      ("queue", Jsonl.Int r.queue_depth);
      ("rss_kb", Jsonl.Int r.rss_kb);
      ("leases", Jsonl.Int r.leases);
      ("lease_p50_ms", Jsonl.Int r.lease_p50_ms);
      ("lease_p90_ms", Jsonl.Int r.lease_p90_ms);
      ("last_ms", Jsonl.Int r.last_ms);
      ("frames_in", Jsonl.Int r.frames_in);
      ("bytes_in", Jsonl.Int r.bytes_in);
      ("frames_out", Jsonl.Int r.frames_out);
      ("bytes_out", Jsonl.Int r.bytes_out);
      ("straggler", Jsonl.Bool r.straggler);
    ]

let row_of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  let bool name =
    match Jsonl.member name j with Some (Jsonl.Bool b) -> Some b | _ -> None
  in
  match
    ( (int "w", str "host", int "pid", bool "alive", int "cells"),
      (int "rate_milli", int "completed", int "queue", int "rss_kb"),
      (int "leases", int "lease_p50_ms", int "lease_p90_ms", int "last_ms"),
      (int "frames_in", int "bytes_in", int "frames_out", int "bytes_out"),
      bool "straggler" )
  with
  | ( (Some worker, Some host, Some pid, Some alive, Some cells),
      (Some rate_milli, Some beat_completed, Some queue_depth, Some rss_kb),
      (Some leases, Some lease_p50_ms, Some lease_p90_ms, Some last_ms),
      (Some frames_in, Some bytes_in, Some frames_out, Some bytes_out),
      Some straggler ) ->
      Some
        {
          worker;
          host;
          pid;
          alive;
          cells;
          rate_milli;
          beat_completed;
          queue_depth;
          rss_kb;
          leases;
          lease_p50_ms;
          lease_p90_ms;
          last_ms;
          frames_in;
          bytes_in;
          frames_out;
          bytes_out;
          straggler;
        }
  | _ -> None

let snapshot_fields ~campaign ~phase s =
  [
    ("v", Jsonl.Int status_version);
    ("campaign", Jsonl.Str campaign);
    ("phase", Jsonl.Str phase);
    ("total", Jsonl.Int s.total);
    ("collected", Jsonl.Int s.collected);
    ("in_flight", Jsonl.Int s.in_flight);
    ("elapsed_ms", Jsonl.Int s.elapsed_ms);
    ("rate_milli", Jsonl.Int s.fleet_milli);
    ("eta_ms", Jsonl.Int s.eta_ms);
    ("local_cells", Jsonl.Int s.local_cells);
    ("stage_us", stage_json s.stage_us);
    ("stragglers", Jsonl.List (List.map (fun w -> Jsonl.Int w) s.stragglers));
    ("workers", Jsonl.List (List.map row_to_json s.rows));
  ]

let snapshot_to_line ~campaign ~phase s =
  Jsonl.encode_line (snapshot_fields ~campaign ~phase s)

let snapshot_to_json ~campaign ~phase s =
  Jsonl.Obj (snapshot_fields ~campaign ~phase s)

let snapshot_of_line line =
  match Jsonl.decode_line line with
  | Error e -> Error e
  | Ok fields -> (
      let j = Jsonl.Obj fields in
      let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
      let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
      match int "v" with
      | Some v when v <> status_version ->
          Error
            (Printf.sprintf "status version %d, this build reads %d" v
               status_version)
      | None -> Error "status: missing version"
      | Some _ -> (
          let rows =
            match Jsonl.member "workers" j with
            | Some (Jsonl.List l) ->
                let rows = List.filter_map row_of_json l in
                if List.length rows = List.length l then Some rows else None
            | _ -> None
          in
          let stragglers =
            match Jsonl.member "stragglers" j with
            | Some (Jsonl.List l) ->
                let ws = List.filter_map Jsonl.get_int l in
                if List.length ws = List.length l then Some ws else None
            | _ -> None
          in
          match
            ( (str "campaign", str "phase", int "total", int "collected"),
              (int "in_flight", int "elapsed_ms", int "rate_milli", int "eta_ms"),
              (int "local_cells", stage_of_json (Jsonl.member "stage_us" j)),
              (stragglers, rows) )
          with
          | ( (Some campaign, Some phase, Some total, Some collected),
              (Some in_flight, Some elapsed_ms, Some fleet_milli, Some eta_ms),
              (Some local_cells, Some stage_us),
              (Some stragglers, Some rows) ) ->
              Ok
                ( campaign,
                  phase,
                  {
                    total;
                    collected;
                    in_flight;
                    elapsed_ms;
                    fleet_milli;
                    eta_ms;
                    local_cells;
                    stage_us;
                    stragglers;
                    rows;
                  } )
          | _ -> Error "status: malformed snapshot"))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let rate_string milli = Printf.sprintf "%d.%d" (milli / 1000) (milli mod 1000 / 100)

let duration_string ms =
  if ms < 0 then "?"
  else if ms >= 3_600_000 then Printf.sprintf "%.1fh" (float_of_int ms /. 3.6e6)
  else if ms >= 60_000 then Printf.sprintf "%.1fm" (float_of_int ms /. 6e4)
  else if ms >= 1_000 then Printf.sprintf "%.1fs" (float_of_int ms /. 1e3)
  else Printf.sprintf "%dms" ms

let bytes_string b =
  if b >= 1_048_576 then Printf.sprintf "%.1fMB" (float_of_int b /. 1048576.)
  else if b >= 1024 then Printf.sprintf "%.1fkB" (float_of_int b /. 1024.)
  else Printf.sprintf "%dB" b

let to_table ~campaign ~phase s =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fleet: %s  phase %s  %d/%d cells (%d in flight)  %s cells/s  ETA %s  \
        elapsed %s\n"
       campaign phase s.collected s.total s.in_flight
       (rate_string s.fleet_milli)
       (if s.eta_ms < 0 then "?" else duration_string s.eta_ms)
       (duration_string s.elapsed_ms));
  Buffer.add_string b
    (Printf.sprintf "%6s  %-16s %7s  %-9s %7s %8s %6s %7s %7s %14s %7s %17s\n"
       "worker" "host" "pid" "state" "cells" "cells/s" "queue" "rss_mb"
       "leases" "lease p50/p90" "beat" "wire in/out");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "%6d  %-16s %7d  %-9s %7d %8s %6d %7d %7d %14s %7s %17s\n" r.worker
           r.host r.pid
           (if not r.alive then "gone"
            else if r.straggler then "straggler"
            else "live")
           r.cells (rate_string r.rate_milli) r.queue_depth (r.rss_kb / 1024)
           r.leases
           (Printf.sprintf "%s/%s"
              (duration_string r.lease_p50_ms)
              (duration_string r.lease_p90_ms))
           (duration_string r.last_ms)
           (Printf.sprintf "%s/%s" (bytes_string r.bytes_in)
              (bytes_string r.bytes_out))))
    s.rows;
  (match s.stragglers with
  | [] -> ()
  | ws ->
      Buffer.add_string b
        (Printf.sprintf "stragglers: %s\n"
           (String.concat "," (List.map string_of_int ws))));
  (match s.stage_us with
  | [] -> ()
  | stages ->
      Buffer.add_string b
        (Printf.sprintf "stages: %s\n"
           (String.concat "  "
              (List.map
                 (fun (cat, us) ->
                   Printf.sprintf "%s %s" cat (duration_string (us / 1000)))
                 stages))));
  if s.local_cells > 0 then
    Buffer.add_string b
      (Printf.sprintf "local: %d cells outside worker attribution\n"
         s.local_cells);
  Buffer.contents b
