(** Coordinator-side fleet telemetry: fold worker heartbeats, streamed
    cells and lease lifecycle into a live per-worker/fleet view.

    The distributed fabric's deterministic output (journal, eventlog,
    tables) flows through the ordered merge and never touches this
    module; a {!t} only {e observes} the fabric, so arming it cannot
    change a byte of campaign output. The coordinator feeds it from the
    serving thread; the status surface and the watchdog read snapshots
    from other threads — every operation takes an internal mutex.

    Two throughput estimates coexist per worker: the coordinator-side
    windowed EWMA over {e fresh} streamed cells (survives an
    old-protocol worker that sends bare beats) and the worker's own
    self-reported EWMA from its stats beat. {!snapshot} prefers the
    coordinator-side figure and falls back to the beat's.

    Straggler rule: a live worker holding a lease whose heartbeat went
    stale (it stopped beating mid-lease), or — once at least two
    workers report a positive rate — a live worker whose effective
    rate is below [straggler_pct]% of the fleet median. *)

(** One stats-carrying heartbeat, as shipped inside [Proto.Beat]. *)
type beat = {
  completed : int;  (** cells executed by the worker so far *)
  ewma_milli : int;  (** self-measured throughput, milli-cells/s *)
  queue_depth : int;  (** local pool tasks in flight *)
  rss_kb : int;  (** resident set size; 0 when unknown *)
  stage_us : (string * int) list;
      (** cumulative per-stage-category microseconds from drained
          spans; empty unless the coordinator armed telemetry *)
}

val beat_version : int
(** Version stamped into the encoded stats object: 1. *)

val beat_to_json : beat -> Jsonl.t
val beat_of_json : Jsonl.t -> (beat, string) result

val span_to_json : Span.t -> Jsonl.t
(** Wire form of one span (nanosecond ints fit {!Jsonl.Int}). *)

val span_of_json : Jsonl.t -> Span.t option

type t

val create : ?stale_ms:int -> ?straggler_pct:int -> total:int -> now:int64 -> unit -> t
(** [total] is the campaign's full cell count; [now] a monotonic
    timestamp (all clocks are passed in, keeping the fold
    deterministic under test). [stale_ms] (default 10000) bounds how
    long a leased worker may go silent before it is a straggler;
    [straggler_pct] (default 50) is the median-relative rate floor. *)

val on_join : t -> worker:int -> pid:int -> host:string -> now:int64 -> unit
val on_leave : t -> worker:int -> now:int64 -> unit

val on_beat : t -> worker:int -> now:int64 -> beat option -> unit
(** A heartbeat arrived; [None] is a bare (old-format) beat — it
    refreshes liveness but carries no stats. *)

val on_cell : t -> worker:int -> now:int64 -> unit
(** One fresh cell streamed by [worker] (duplicates excluded), feeding
    the coordinator-side throughput EWMA and per-worker cell count. *)

val on_lease : t -> worker:int -> lease_id:int -> cells:int -> now:int64 -> unit
val on_done : t -> worker:int -> lease_id:int -> now:int64 -> unit
(** Lease closed: grant-to-done latency lands in the worker's rolling
    latency window and the global ["fleet.lease_ms"] {!Metrics}
    histogram. *)

val on_metrics : t -> worker:int -> (string * int) list -> unit
(** A worker's cumulative counter snapshot (shipped on [Done]): deltas
    against the previous snapshot are folded into the global registry
    under ["fleet.<name>"], building the fleet-wide metrics view. *)

val add_spans : t -> worker:int -> Span.t list -> unit

val span_groups : t -> (string * Span.t list) list
(** Shipped span buffers grouped per worker in id order, labelled
    ["worker N (host, pid P)"] — the {!Trace.write_groups} input. *)

val note_local : t -> int -> unit
(** Count cells that entered the campaign outside worker attribution:
    resumed/salvaged prefill and the local merge's own executions. *)

type row = {
  worker : int;
  host : string;
  pid : int;
  alive : bool;
  cells : int;  (** fresh cells streamed by this worker *)
  rate_milli : int;  (** effective throughput, milli-cells/s *)
  beat_completed : int;  (** worker-reported executed count; -1 unknown *)
  queue_depth : int;
  rss_kb : int;
  leases : int;  (** leases currently held *)
  lease_p50_ms : int;  (** rolling lease-latency percentiles; 0 empty *)
  lease_p90_ms : int;
  last_ms : int;  (** ms since the worker's last sign of life *)
  frames_in : int;
  bytes_in : int;
  frames_out : int;
  bytes_out : int;
  straggler : bool;
}

type snapshot = {
  total : int;
  collected : int;
  in_flight : int;  (** live leases *)
  elapsed_ms : int;
  fleet_milli : int;  (** summed live-worker rate, milli-cells/s *)
  eta_ms : int;  (** -1 when the rate gives no estimate *)
  local_cells : int;
  stage_us : (string * int) list;  (** summed over workers' last beats *)
  stragglers : int list;
  rows : row list;  (** worker id order *)
}

val set_wire : t -> worker:int -> frames_in:int -> bytes_in:int -> frames_out:int -> bytes_out:int -> unit
(** Latest per-connection transport totals (see [Wire] counters). *)

val snapshot : t -> now:int64 -> collected:int -> in_flight:int -> snapshot
(** [collected]/[in_flight] come from the lease tracker (the fleet
    only knows per-worker attribution, not the grid's resume state). *)

val status_version : int
(** Schema version stamped into {!snapshot_to_line}: 1. *)

val snapshot_to_line : campaign:string -> phase:string -> snapshot -> string
(** One checksummed JSONL object (no trailing newline) — the
    [--status] file/socket payload. [phase] is ["fabric"], ["merge"]
    or ["done"]. *)

val snapshot_to_json : campaign:string -> phase:string -> snapshot -> Jsonl.t
(** The same object as {!snapshot_to_line} but as a JSON value without
    the checksum field — what [campaign status --json] prints. *)

val snapshot_of_line : string -> (string * string * snapshot, string) result
(** Parse and checksum-verify a status line back into
    [(campaign, phase, snapshot)]. *)

val to_table : campaign:string -> phase:string -> snapshot -> string
(** The operator-facing fleet table rendered from a snapshot. *)
