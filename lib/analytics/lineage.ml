type prov = Root of int | Mutant of { parent : int; op : string }

type node = {
  id : int;
  prov : prov;
  cls_tags : string list;
}

type t = { by_id : (int, node) Hashtbl.t; ids : int list }

(* the provenance field of a fuzz journal note: "p=g<seed>" for a fresh
   kernel, "p=m<parent>:<op>" for a mutant of kernel <parent> *)
let prov_of_note note =
  let field =
    List.find_map
      (fun part ->
        if String.length part > 2 && String.sub part 0 2 = "p=" then
          Some (String.sub part 2 (String.length part - 2))
        else None)
      (String.split_on_char ';' note)
  in
  match field with
  | None -> None
  | Some p when String.length p >= 2 && p.[0] = 'g' ->
      Option.map (fun s -> Root s)
        (int_of_string_opt (String.sub p 1 (String.length p - 1)))
  | Some p when String.length p >= 2 && p.[0] = 'm' -> (
      let body = String.sub p 1 (String.length p - 1) in
      match String.index_opt body ':' with
      | Some i -> (
          let op = String.sub body (i + 1) (String.length body - i - 1) in
          match int_of_string_opt (String.sub body 0 i) with
          | Some parent when op <> "" -> Some (Mutant { parent; op })
          | _ -> None)
      | None -> None)
  | Some _ -> None

let outcome_tag (c : Journal.cell) =
  match c.Journal.outcomes with
  | [ o ] -> Some (Outcome.short_tag o)
  | _ -> None

let of_cells cells =
  let fuzz = List.filter (fun c -> c.Journal.mode = "fuzz") cells in
  if fuzz = [] then Error "no fuzz cells (lineage needs a fuzz journal)"
  else
    let by_id = Hashtbl.create 64 in
    let rev_ids = ref [] in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
    List.iter
      (fun (c : Journal.cell) ->
        let id = c.Journal.seed in
        match prov_of_note c.Journal.note with
        | None -> fail "kernel %d: unparsable provenance note %S" id c.Journal.note
        | Some prov -> (
            let tag = outcome_tag c in
            match Hashtbl.find_opt by_id id with
            | None ->
                rev_ids := id :: !rev_ids;
                Hashtbl.replace by_id id
                  { id; prov; cls_tags = Option.to_list tag }
            | Some n ->
                if n.prov <> prov then
                  fail "kernel %d: inconsistent provenance across its cells" id
                else
                  let cls_tags =
                    match tag with
                    | Some t when not (List.mem t n.cls_tags) -> n.cls_tags @ [ t ]
                    | _ -> n.cls_tags
                  in
                  Hashtbl.replace by_id id { n with cls_tags }))
      fuzz;
    (* parents must be earlier kernels that exist — which also makes the
       DAG acyclic by construction (every edge strictly decreases id) *)
    Hashtbl.iter
      (fun id n ->
        match n.prov with
        | Root _ -> ()
        | Mutant { parent; _ } ->
            if parent >= id then
              fail "kernel %d: parent %d is not an earlier kernel" id parent
            else if not (Hashtbl.mem by_id parent) then
              fail "kernel %d: parent %d is not in the journal" id parent)
      by_id;
    match !err with
    | Some m -> Error m
    | None -> Ok { by_id; ids = List.rev !rev_ids }

let size t = List.length t.ids
let ids t = t.ids
let node t id = Hashtbl.find_opt t.by_id id

let parent t id =
  match node t id with
  | Some { prov = Mutant { parent; _ }; _ } -> Some parent
  | _ -> None

let children t id =
  List.filter
    (fun c ->
      match node t c with
      | Some { prov = Mutant { parent; _ }; _ } -> parent = id
      | _ -> false)
    t.ids

(* root-first ancestry: [(kernel id, operator that produced it)];
   the root's operator is None. Total because parents strictly
   decrease and were checked to exist. *)
let path_to_root t id =
  let rec up id acc =
    match node t id with
    | None -> acc
    | Some { prov = Root _; _ } -> (id, None) :: acc
    | Some { prov = Mutant { parent; op }; _ } -> up parent ((id, Some op) :: acc)
  in
  up id []

let depth t id = List.length (path_to_root t id) - 1

let root_seed t id =
  match path_to_root t id with
  | (root, None) :: _ -> (
      match node t root with
      | Some { prov = Root s; _ } -> Some s
      | _ -> None)
  | _ -> None

let operator_counts t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun id ->
      match node t id with
      | Some { prov = Mutant { op; _ }; _ } ->
          Hashtbl.replace tbl op (1 + Option.value ~default:0 (Hashtbl.find_opt tbl op))
      | _ -> ())
    t.ids;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type discovery = {
  d_cls : string;
  d_config : int;
  d_opt : string;
  d_signature : string;
  d_kernel : int;
  d_path : (int * string option) list;
}

let discovery_paths t hits =
  (* first hit per bucket key, in hit order — the exemplar the triage
     table reports — then its ancestry *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (cls, config, opt, signature, kernel) ->
      let key = (cls, config, opt, signature) in
      if Hashtbl.mem seen key || not (Hashtbl.mem t.by_id kernel) then None
      else begin
        Hashtbl.replace seen key ();
        Some
          {
            d_cls = cls;
            d_config = config;
            d_opt = opt;
            d_signature = signature;
            d_kernel = kernel;
            d_path = path_to_root t kernel;
          }
      end)
    hits
