(** Mutation-ancestry reconstruction from fuzz journal provenance.

    Every fuzz journal cell's note carries the kernel's provenance —
    ["p=g<seed>"] for a freshly generated kernel, ["p=m<parent>:<op>"]
    for a mutant of an earlier kernel — so a finished (or torn) journal
    contains the complete mutation history of the campaign. This module
    rebuilds it as a DAG over kernel indices: every parent reference
    must name a strictly earlier kernel present in the journal (which
    makes the graph acyclic by construction — every edge decreases the
    id), and a kernel's provenance must agree across all of its cells.
    From the DAG it derives each distinct bug's {e discovery path}: the
    chain root seed → mutation operators → triage bucket that the HTML
    report renders as a collapsible lineage tree. *)

type prov =
  | Root of int  (** generator seed of a fresh kernel *)
  | Mutant of { parent : int; op : string }
      (** parent kernel index and the operator that derived this one *)

type node = {
  id : int;  (** kernel index ([seed] field of the fuzz journal cells) *)
  prov : prov;
  cls_tags : string list;
      (** distinct outcome short-tags observed over the kernel's cells,
          in journal order *)
}

type t

val prov_of_note : string -> prov option
(** Parse the ["p=..."] field of one journal note. *)

val of_cells : Journal.cell list -> (t, string) result
(** Reconstruct the DAG from a journal's cells (non-fuzz cells are
    ignored). [Error] when a note is unparsable, a kernel's provenance
    is inconsistent, or a parent reference does not resolve to an
    earlier journalled kernel. *)

val size : t -> int
val ids : t -> int list
(** Kernel ids in journal (= execution) order. *)

val node : t -> int -> node option
val parent : t -> int -> int option
val children : t -> int -> int list

val path_to_root : t -> int -> (int * string option) list
(** Root-first ancestry of a kernel: [(id, op)] pairs where [op] is the
    operator that produced that node ([None] for the root). *)

val depth : t -> int -> int
(** Mutation distance from the root (0 for a fresh kernel). *)

val root_seed : t -> int -> int option
(** The generator seed at the top of the kernel's ancestry. *)

val operator_counts : t -> (string * int) list
(** How many journalled kernels each mutation operator produced,
    sorted by operator name. *)

type discovery = {
  d_cls : string;
  d_config : int;
  d_opt : string;
  d_signature : string;
  d_kernel : int;  (** the bucket's exemplar kernel *)
  d_path : (int * string option) list;  (** its root-first ancestry *)
}

val discovery_paths :
  t -> (string * int * string * string * int) list -> discovery list
(** [(cls, config, opt, signature, kernel)] triage hits, in hit order:
    one discovery per distinct bucket key (first witness wins, exactly
    like the triage exemplar), with the exemplar's ancestry attached.
    Hits whose kernel is not in the DAG are skipped. *)
