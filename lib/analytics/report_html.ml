(* Offline renderer: everything is recomputed from the journal cells
   (majority vote, buckets) or replayed from the eventlog; nothing here
   touches the live campaign. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* a cell's outcomes as (opt-level, outcome) pairs: opt "*" journals
   both levels in order, every other campaign one outcome per cell *)
let cell_outcomes (c : Journal.cell) =
  match (c.Journal.opt, c.Journal.outcomes) with
  | "*", [ a; b ] -> [ ("-", a); ("+", b) ]
  | opt, os -> List.map (fun o -> (opt, o)) os

(* cells grouped by kernel identity (mode, seed), journal order kept *)
let kernel_groups cells =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (c : Journal.cell) ->
      let k = (c.Journal.mode, c.Journal.seed) in
      match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.replace tbl k [ c ]
      | Some cs -> Hashtbl.replace tbl k (c :: cs))
    cells;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

type counts = {
  mutable n_ok : int;
  mutable n_wrong : int;
  mutable n_bf : int;
  mutable n_crash : int;
  mutable n_to : int;
}

let counts_total r = r.n_ok + r.n_wrong + r.n_bf + r.n_crash + r.n_to
let opt_rank = function "-" -> 0 | "+" -> 1 | _ -> 2

(* the Table-1 analogue: per-(config, opt) bucket counts with
   wrong-code decided by per-kernel majority vote, like the tables *)
let grid cells =
  let tbl : (int * string, counts) Hashtbl.t = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun (_, cs) ->
      let majority =
        Majority.majority_output
          (List.concat_map (fun c -> List.map snd (cell_outcomes c)) cs)
      in
      List.iter
        (fun (c : Journal.cell) ->
          List.iter
            (fun (opt, o) ->
              let key = (c.Journal.config, opt) in
              let r =
                match Hashtbl.find_opt tbl key with
                | Some r -> r
                | None ->
                    let r =
                      { n_ok = 0; n_wrong = 0; n_bf = 0; n_crash = 0; n_to = 0 }
                    in
                    keys := key :: !keys;
                    Hashtbl.replace tbl key r;
                    r
              in
              match Majority.bucket_of ~majority o with
              | Majority.B_ok -> r.n_ok <- r.n_ok + 1
              | Majority.B_wrong -> r.n_wrong <- r.n_wrong + 1
              | Majority.B_bf -> r.n_bf <- r.n_bf + 1
              | Majority.B_crash -> r.n_crash <- r.n_crash + 1
              | Majority.B_timeout -> r.n_to <- r.n_to + 1)
            (cell_outcomes c))
        cs)
    (kernel_groups cells);
  let keys =
    List.sort
      (fun (c1, o1) (c2, o2) ->
        match compare c1 c2 with 0 -> compare (opt_rank o1) (opt_rank o2) | n -> n)
      !keys
  in
  List.map (fun k -> (k, Hashtbl.find tbl k)) keys

(* triage hits as (cls, config, opt, signature, kernel): taken from the
   eventlog when it has them (fuzz stamps real trigger signatures),
   recomputed from journal buckets otherwise *)
let hits_of_events events =
  List.filter_map
    (function
      | Eventlog.Triage_hit { cls; config; opt; signature; seed; _ } ->
          Some (cls, config, opt, signature, seed)
      | _ -> None)
    events

let hits_of_cells cells =
  List.concat_map
    (fun ((_, seed), cs) ->
      let majority =
        Majority.majority_output
          (List.concat_map (fun c -> List.map snd (cell_outcomes c)) cs)
      in
      List.concat_map
        (fun (c : Journal.cell) ->
          List.filter_map
            (fun (opt, o) ->
              let cls =
                match Majority.bucket_of ~majority o with
                | Majority.B_wrong -> Some "wrong-code"
                | Majority.B_bf -> Some "build-failure"
                | Majority.B_crash -> Some "crash"
                | Majority.B_ok | Majority.B_timeout -> None
              in
              Option.map
                (fun cls -> (cls, c.Journal.config, opt, "?", seed))
                cls)
            (cell_outcomes c))
        cs)
    (kernel_groups cells)

let distinct_bugs hits =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (cls, config, opt, signature, _) ->
      Hashtbl.replace seen (cls, config, opt, signature) ())
    hits;
  Hashtbl.length seen

let generations events =
  List.filter_map
    (function
      | Eventlog.Generation
          { gen; kernels; mutants; new_bits; coverage; corpus; findings;
            distinct_bugs } ->
          Some
            (gen, kernels, mutants, new_bits, coverage, corpus, findings,
             distinct_bugs)
      | _ -> None)
    events

(* inline SVG polyline chart; "" when there is nothing to plot *)
let svg_chart ~y_label pts =
  match pts with
  | [] | [ _ ] -> ""
  | pts ->
      let w = 540. and h = 220. in
      let l = 52. and r = 12. and t = 12. and btm = 26. in
      let xs = List.map fst pts and ys = List.map snd pts in
      let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
      let xmin = fmin xs and xmax = fmax xs in
      let ymin = min 0. (fmin ys) in
      let ymax = fmax ys in
      let ymax = if ymax <= ymin then ymin +. 1. else ymax in
      let xmax = if xmax <= xmin then xmin +. 1. else xmax in
      let px x = l +. ((x -. xmin) /. (xmax -. xmin) *. (w -. l -. r)) in
      let py y = h -. btm -. ((y -. ymin) /. (ymax -. ymin) *. (h -. t -. btm)) in
      let pt_s =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) pts)
      in
      let num v =
        if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.1f" v
      in
      Printf.sprintf
        "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" \
         role=\"img\" aria-label=\"%s\">\n\
         <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" class=\"axis\"/>\n\
         <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" class=\"axis\"/>\n\
         <text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>\n\
         <text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>\n\
         <text x=\"%.1f\" y=\"%.1f\" class=\"tick\">%s</text>\n\
         <text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>\n\
         <polyline points=\"%s\" class=\"series\"/>\n\
         </svg>"
        w h w h (esc y_label)
        (* y axis, x axis *)
        l t l (h -. btm)
        l (h -. btm) (w -. r) (h -. btm)
        (* y max / y min labels *)
        (l -. 4.) (t +. 10.) (num ymax)
        (l -. 4.) (h -. btm) (num ymin)
        (* x min / x max labels *)
        l (h -. 8.) (num xmin)
        (w -. r) (h -. 8.) (num xmax)
        pt_s

let section b title body =
  if body <> "" then (
    Buffer.add_string b (Printf.sprintf "<h2>%s</h2>\n" (esc title));
    Buffer.add_string b body;
    Buffer.add_char b '\n')

let params_html ident scale =
  let row (k, v) =
    Printf.sprintf "<tr><td>%s</td><td><code>%s</code></td></tr>" (esc k) (esc v)
  in
  Printf.sprintf
    "<table class=\"kv\"><tr><th colspan=\"2\">identity</th></tr>%s\
     <tr><th colspan=\"2\">scale</th></tr>%s</table>"
    (String.concat "" (List.map row ident))
    (String.concat "" (List.map row scale))

let outcome_table g =
  if g = [] then ""
  else
    let row ((config, opt), r) =
      Printf.sprintf
        "<tr><td>%d</td><td>%s</td><td>%d</td>\
         <td class=\"bad\">%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>"
        config (esc opt) r.n_ok r.n_wrong r.n_bf r.n_crash r.n_to
        (counts_total r)
    in
    Printf.sprintf
      "<table><tr><th>config</th><th>opt</th><th>ok</th><th>wrong</th>\
       <th>build&#8209;fail</th><th>crash</th><th>timeout</th><th>total</th></tr>\
       %s</table>"
      (String.concat "\n" (List.map row g))

let heatmap g =
  if g = [] then ""
  else
    let configs =
      List.sort_uniq compare (List.map (fun ((c, _), _) -> c) g)
    in
    let opts =
      List.sort_uniq
        (fun a b -> compare (opt_rank a) (opt_rank b))
        (List.map (fun ((_, o), _) -> o) g)
    in
    let cell config opt =
      match List.assoc_opt (config, opt) g with
      | None -> "<td class=\"na\">&#8211;</td>"
      | Some r ->
          let total = counts_total r in
          let bad = r.n_wrong + r.n_bf + r.n_crash in
          let share = if total = 0 then 0. else float_of_int bad /. float_of_int total in
          Printf.sprintf
            "<td style=\"background:rgba(203,36,49,%.2f)\" title=\"%d of %d \
             interesting\">%.0f%%</td>"
            share bad total (100. *. share)
    in
    Printf.sprintf
      "<p>share of interesting (wrong&#8209;code / build&#8209;failure / crash) \
       cells per configuration and opt level</p>\n\
       <table class=\"heat\"><tr><th>config</th>%s</tr>%s</table>"
      (String.concat ""
         (List.map (fun o -> Printf.sprintf "<th>opt&nbsp;%s</th>" (esc o)) opts))
      (String.concat "\n"
         (List.map
            (fun c ->
              Printf.sprintf "<tr><td>%d</td>%s</tr>" c
                (String.concat "" (List.map (cell c) opts)))
            configs))

let curves gens =
  if gens = [] then ""
  else
    (* x axis: cumulative kernels executed = the campaign budget spent *)
    let _, cov_pts, bug_pts =
      List.fold_left
        (fun (spent, cov, bugs)
             (_, kernels, _, _, coverage, _, _, distinct) ->
          let spent = spent + kernels in
          let x = float_of_int spent in
          ( spent,
            (x, float_of_int coverage) :: cov,
            (x, float_of_int distinct) :: bugs ))
        (0, [ (0., 0.) ], [ (0., 0.) ])
        gens
    in
    let gen_rows =
      List.map
        (fun (gen, kernels, mutants, new_bits, coverage, corpus, findings,
              distinct) ->
          Printf.sprintf
            "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td>\
             <td>%d</td><td>%d</td><td>%d</td></tr>"
            gen kernels mutants new_bits coverage corpus findings distinct)
        gens
    in
    Printf.sprintf
      "<div class=\"charts\"><figure><figcaption>coverage growth over \
       executed kernels</figcaption>%s</figure>\n\
       <figure><figcaption>distinct bugs over executed kernels</figcaption>%s\
       </figure></div>\n\
       <details><summary>per-generation detail</summary>\n\
       <table><tr><th>gen</th><th>kernels</th><th>mutants</th>\
       <th>new&nbsp;bits</th><th>coverage</th><th>corpus</th>\
       <th>findings</th><th>distinct&nbsp;bugs</th></tr>%s</table></details>"
      (svg_chart ~y_label:"coverage points" (List.rev cov_pts))
      (svg_chart ~y_label:"distinct bugs" (List.rev bug_pts))
      (String.concat "\n" gen_rows)

let stage_timing events =
  let last =
    List.fold_left
      (fun acc e -> match e with Eventlog.Stage_timing s -> Some s | _ -> acc)
      None events
  in
  match last with
  | None | Some [] -> ""
  | Some stages ->
      let total = List.fold_left (fun a (_, us) -> a + us) 0 stages in
      let row (cat, us) =
        Printf.sprintf
          "<tr><td>%s</td><td>%.1f&nbsp;ms</td><td>%.1f%%</td></tr>" (esc cat)
          (float_of_int us /. 1000.)
          (if total = 0 then 0. else 100. *. float_of_int us /. float_of_int total)
      in
      Printf.sprintf
        "<table><tr><th>stage</th><th>time</th><th>share</th></tr>%s</table>"
        (String.concat "\n" (List.map row stages))

let incidents events =
  let items =
    List.filter_map
      (function
        | Eventlog.Watchdog { level; completed; in_flight; stalled_domains;
                              idle_ms } ->
            Some
              (Printf.sprintf
                 "<li class=\"bad\">watchdog <b>%s</b>: no progress for \
                  %d&nbsp;ms at %d completed, %d in flight%s</li>"
                 (esc level) idle_ms completed in_flight
                 (if stalled_domains = [] then ""
                  else
                    Printf.sprintf ", stale domains [%s]"
                      (String.concat "; "
                         (List.map string_of_int stalled_domains))))
        | Eventlog.Pool_health { worker; submitted; completed; in_flight;
                                 stalled_domains } ->
            Some
              (Printf.sprintf
                 "<li>%s health: %d submitted, %d completed, %d in \
                  flight%s</li>"
                 (if worker < 0 then "pool"
                  else Printf.sprintf "worker %d" worker)
                 submitted completed in_flight
                 (if stalled_domains = [] then ""
                  else
                    Printf.sprintf ", stale domains [%s]"
                      (String.concat "; "
                         (List.map string_of_int stalled_domains))))
        | Eventlog.Fleet_health { total; collected; in_flight; fleet_milli;
                                  workers } ->
            let stragglers =
              List.filter (fun fw -> fw.Eventlog.fw_straggler) workers
            in
            Some
              (Printf.sprintf
                 "<li class=\"bad\">fleet health: %d/%d cells, %d in flight, \
                  %d.%d cells/s over %d worker%s%s</li>"
                 collected total in_flight (fleet_milli / 1000)
                 (fleet_milli mod 1000 / 100)
                 (List.length workers)
                 (if List.length workers = 1 then "" else "s")
                 (if stragglers = [] then ""
                  else
                    Printf.sprintf ", stragglers [%s]"
                      (String.concat "; "
                         (List.map
                            (fun fw -> string_of_int fw.Eventlog.fw_worker)
                            stragglers))))
        | _ -> None)
      events
  in
  if items = [] then "" else Printf.sprintf "<ul>%s</ul>" (String.concat "\n" items)

(* the last fleet_health snapshot is the fleet's final recorded shape;
   rendered as its own panel so distributed runs get a per-worker view
   without digging through the incident list *)
let fleet_panel events =
  let last =
    List.fold_left
      (fun acc e ->
        match e with
        | Eventlog.Fleet_health { total; collected; in_flight; fleet_milli;
                                  workers } ->
            Some (total, collected, in_flight, fleet_milli, workers)
        | _ -> acc)
      None events
  in
  match last with
  | None -> ""
  | Some (total, collected, in_flight, fleet_milli, workers) ->
      let row (fw : Eventlog.fleet_worker) =
        Printf.sprintf
          "<tr%s><td>%d</td><td>%s</td><td>%d</td><td>%d.%d</td><td>%d</td>\
           </tr>"
          (if fw.Eventlog.fw_straggler then " class=\"bad\"" else "")
          fw.Eventlog.fw_worker
          (if not fw.Eventlog.fw_alive then "gone"
           else if fw.Eventlog.fw_straggler then "straggler"
           else "live")
          fw.Eventlog.fw_cells
          (fw.Eventlog.fw_rate_milli / 1000)
          (fw.Eventlog.fw_rate_milli mod 1000 / 100)
          fw.Eventlog.fw_last_ms
      in
      Printf.sprintf
        "<p>last watchdog fleet sample: %d/%d cells collected, %d in flight, \
         %d.%d cells/s fleet throughput.</p>\n\
         <table><tr><th>worker</th><th>state</th><th>cells</th>\
         <th>cells/s</th><th>last&nbsp;seen&nbsp;(ms)</th></tr>%s</table>"
        collected total in_flight (fleet_milli / 1000) (fleet_milli mod 1000 / 100)
        (String.concat "\n" (List.map row workers))

let lineage_html cells hits =
  if not (List.exists (fun c -> c.Journal.mode = "fuzz") cells) then ""
  else
    match Lineage.of_cells cells with
    | Error m -> Printf.sprintf "<p class=\"bad\">lineage unavailable: %s</p>" (esc m)
    | Ok t ->
        let discoveries = Lineage.discovery_paths t hits in
        let tree d =
          let step (id, op) =
            match op with
            | None ->
                let seed =
                  match Lineage.root_seed t id with
                  | Some s -> Printf.sprintf " (generator seed %d)" s
                  | None -> ""
                in
                Printf.sprintf "<li>kernel %d — fresh%s</li>" id seed
            | Some op ->
                Printf.sprintf "<li>kernel %d — via <code>%s</code></li>" id
                  (esc op)
          in
          Printf.sprintf
            "<details><summary><b>%s</b> @ config %d, opt %s — \
             <code>%s</code> (kernel %d, %d mutation%s)</summary>\n\
             <ol class=\"path\">%s<li class=\"bad\">&#8627; %s</li></ol></details>"
            (esc d.Lineage.d_cls) d.Lineage.d_config (esc d.Lineage.d_opt)
            (esc d.Lineage.d_signature) d.Lineage.d_kernel
            (Lineage.depth t d.Lineage.d_kernel)
            (if Lineage.depth t d.Lineage.d_kernel = 1 then "" else "s")
            (String.concat "\n" (List.map step d.Lineage.d_path))
            (esc d.Lineage.d_cls)
        in
        let ops = Lineage.operator_counts t in
        let ops_html =
          if ops = [] then ""
          else
            Printf.sprintf
              "<details><summary>mutation operator usage (%d journalled \
               mutants)</summary><table><tr><th>operator</th><th>kernels</th>\
               </tr>%s</table></details>"
              (List.fold_left (fun a (_, n) -> a + n) 0 ops)
              (String.concat "\n"
                 (List.map
                    (fun (op, n) ->
                      Printf.sprintf "<tr><td><code>%s</code></td><td>%d</td></tr>"
                        (esc op) n)
                    ops))
        in
        Printf.sprintf
          "<p>%d kernels in the mutation DAG, %d distinct bug%s with a \
           discovery path.</p>\n%s\n%s"
          (Lineage.size t) (List.length discoveries)
          (if List.length discoveries = 1 then "" else "s")
          (String.concat "\n" (List.map tree discoveries))
          ops_html

let style =
  {css|
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 64em;
       padding: 0 1em; color: #1f2328; }
h1 { border-bottom: 2px solid #d0d7de; padding-bottom: .3em; }
h2 { margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #d0d7de; padding: .25em .6em; text-align: right; }
th { background: #f6f8fa; }
td:first-child, th:first-child { text-align: left; }
table.kv td, table.kv th { text-align: left; }
table.heat td { min-width: 4em; text-align: center; }
.bad { color: #cb2431; }
.na { color: #8b949e; }
.badge { display: inline-block; background: #fff8c5; border: 1px solid #d4a72c;
         border-radius: 4px; padding: 0 .5em; font-size: .85em; }
.charts { display: flex; flex-wrap: wrap; gap: 1.5em; }
figure { margin: 0; }
figcaption { font-size: .9em; color: #57606a; margin-bottom: .3em; }
svg .axis { stroke: #57606a; stroke-width: 1; }
svg .series { fill: none; stroke: #0969da; stroke-width: 2; }
svg .tick { font: 10px system-ui, sans-serif; fill: #57606a; }
details { margin: .4em 0; }
summary { cursor: pointer; }
ol.path { margin: .3em 0 .3em 1em; }
code { background: #f6f8fa; padding: 0 .25em; border-radius: 3px; }
|css}

type history_sample = {
  ts_ms : int;
  requests : int;
  shed : int;
  p50_us : int;
  p99_us : int;
}

(* serve-daemon time series: throughput from the per-interval request
   delta, latency from the sampled p50/p99 *)
let history_panel (samples : history_sample list) =
  match samples with
  | [] | [ _ ] -> ""
  | samples ->
      let t_s s = float_of_int s.ts_ms /. 1000. in
      let rec deltas prev = function
        | [] -> []
        | s :: tl ->
            let dt = float_of_int (s.ts_ms - prev.ts_ms) /. 1000. in
            let dr = float_of_int (s.requests - prev.requests) in
            (t_s s, if dt > 0. then dr /. dt else 0.) :: deltas s tl
      in
      let throughput =
        match samples with [] -> [] | first :: rest -> deltas first rest
      in
      let latency p =
        List.filter_map
          (fun s ->
            let v = p s in
            if v < 0 then None else Some (t_s s, float_of_int v))
          samples
      in
      let shed_total = (List.nth samples (List.length samples - 1)).shed in
      String.concat "\n"
        (List.filter
           (fun s -> s <> "")
           [
             svg_chart ~y_label:"requests per second over time (s)" throughput;
             svg_chart ~y_label:"request latency p50 (us) over time (s)"
               (latency (fun s -> s.p50_us));
             svg_chart ~y_label:"request latency p99 (us) over time (s)"
               (latency (fun s -> s.p99_us));
             (if shed_total > 0 then
                Printf.sprintf "<p>%d connection%s shed in total.</p>"
                  shed_total
                  (if shed_total = 1 then "" else "s")
              else "");
           ])

let render ~(header : Journal.header) ~cells ?(truncated = false) ?(events = [])
    ?(history = []) () =
  let b = Buffer.create 8192 in
  let g = grid cells in
  let hits =
    match hits_of_events events with [] -> hits_of_cells cells | hs -> hs
  in
  let kernels = List.length (kernel_groups cells) in
  Buffer.add_string b
    (Printf.sprintf
       "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
        <title>campaign report — %s</title>\n<style>%s</style></head><body>\n"
       (esc header.Journal.campaign) style);
  Buffer.add_string b
    (Printf.sprintf
       "<h1>campaign report — %s</h1>\n\
        <p>%d journalled cells over %d kernels, %d distinct bug bucket%s.%s</p>\n"
       (esc header.Journal.campaign) (List.length cells) kernels
       (distinct_bugs hits)
       (if distinct_bugs hits = 1 then "" else "s")
       (if truncated then
          " <span class=\"badge\">torn final journal line discarded</span>"
        else ""));
  section b "Parameters" (params_html header.Journal.ident header.Journal.scale);
  section b "Outcomes by configuration and opt level" (outcome_table g);
  section b "Interesting-cell heatmap" (heatmap g);
  section b "Campaign curves" (curves (generations events));
  section b "Stage timing" (stage_timing events);
  section b "Fleet" (fleet_panel events);
  section b "Serve throughput and latency" (history_panel history);
  section b "Incidents" (incidents events);
  section b "Bug discovery paths" (lineage_html cells hits);
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b

let summary ~(header : Journal.header) ~cells ?(truncated = false)
    ?(events = []) () =
  let b = Buffer.create 1024 in
  let g = grid cells in
  let hits =
    match hits_of_events events with [] -> hits_of_cells cells | hs -> hs
  in
  Printf.bprintf b "campaign %s: %d cells, %d kernels, %d distinct bug(s)%s\n"
    header.Journal.campaign (List.length cells)
    (List.length (kernel_groups cells))
    (distinct_bugs hits)
    (if truncated then " [torn tail discarded]" else "");
  List.iter
    (fun ((config, opt), r) ->
      Printf.bprintf b
        "  config %d opt %s: ok %d, wrong %d, bf %d, crash %d, to %d\n" config
        opt r.n_ok r.n_wrong r.n_bf r.n_crash r.n_to)
    g;
  (match generations events with
  | [] -> ()
  | gens ->
      let _, _, _, _, coverage, corpus, _, distinct =
        List.nth gens (List.length gens - 1)
      in
      Printf.bprintf b
        "  fuzz: %d generations, final coverage %d, corpus %d, distinct bugs \
         %d\n"
        (List.length gens) coverage corpus distinct);
  Buffer.contents b
