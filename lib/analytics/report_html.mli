(** Self-contained HTML campaign report.

    [campaign report JOURNAL --html] renders a finished (or torn)
    journal — plus, when present, its eventlog — into one
    zero-dependency HTML file: no scripts, no external assets, inline
    CSS and inline SVG only, so the artifact CI uploads opens anywhere,
    forever. Sections, each skipped when its inputs are absent:

    - campaign identity, scale parameters and cell counts;
    - the Table-1 analogue: per-(configuration, opt-level) outcome
      counts with wrong-code recomputed by per-kernel majority vote,
      exactly like the campaign tables;
    - a per-(configuration, opt-level) heatmap shaded by the share of
      interesting (wrong-code / build-failure / crash) cells;
    - coverage-growth and distinct-bugs-over-budget curves from the
      eventlog's [Generation] records, as inline SVG;
    - stage timings from the eventlog's [Stage_timing] record;
    - watchdog / pool-health incidents, when any were recorded;
    - per-bug discovery paths: collapsible lineage trees (seed →
      mutation operators → triage bucket) reconstructed by {!Lineage}
      from fuzz journal provenance, plus mutation-operator counts. *)

type history_sample = {
  ts_ms : int;  (** sample time, ms since the serving process started *)
  requests : int;  (** cumulative requests at sample time *)
  shed : int;  (** cumulative shed connections at sample time *)
  p50_us : int;  (** request latency p50; -1 = no requests yet *)
  p99_us : int;  (** request latency p99; -1 = no requests yet *)
}
(** One serve-daemon metrics snapshot (see [Svhistory] in lib/serve);
    the report derives throughput from consecutive request deltas. *)

val render :
  header:Journal.header ->
  cells:Journal.cell list ->
  ?truncated:bool ->
  ?events:Eventlog.event list ->
  ?history:history_sample list ->
  unit ->
  string
(** The complete HTML document. [truncated] marks a journal whose torn
    final line was discarded; [events] is the loaded eventlog (empty or
    absent is fine — event-driven sections are skipped); [history] adds
    the serve throughput/latency-over-time panel when non-trivial. *)

val summary :
  header:Journal.header ->
  cells:Journal.cell list ->
  ?truncated:bool ->
  ?events:Eventlog.event list ->
  unit ->
  string
(** Plain-text digest of the same data for [campaign report] without
    [--html]: identity, cell/kernel counts, outcome grid and distinct
    bugs, one fact per line. *)
