type level = Warn | Stall | Abort

let level_name = function Warn -> "warn" | Stall -> "stall" | Abort -> "abort"

type snapshot = {
  completed : int;
  in_flight : int;
  stalled_domains : int list;
  idle_ms : int;
}

type probe = unit -> (int * int * (int * int64) list) option

let pool_probe () =
  match Pool.current () with
  | None -> None
  | Some p ->
      let s = Pool.stats p in
      Some (s.Pool.completed, s.Pool.in_flight, Pool.heartbeats p)

type t = { stop_flag : bool Atomic.t; mutable dom : unit Domain.t option }

let start ?(poll_ms = 250) ?warn_ms ~timeout_ms ?(probe = pool_probe) ?abort
    ~on_event () =
  let warn_ms =
    match warn_ms with Some w -> w | None -> max 1 (timeout_ms / 2)
  in
  let stop_flag = Atomic.make false in
  let body () =
    let ms_of_ns ns = Int64.to_int (Int64.div ns 1_000_000L) in
    let last_completed = ref (-1) in
    let last_change = ref (Mclock.now_ns ()) in
    (* escalation state of the current zero-progress episode; cleared
       the moment the completed count moves again *)
    let warned = ref false and stalled = ref false in
    while not (Atomic.get stop_flag) do
      Unix.sleepf (float_of_int poll_ms /. 1000.);
      if not (Atomic.get stop_flag) then
        match probe () with
        | None ->
            (* no pool alive (between campaigns): nothing to watch *)
            last_completed := -1;
            warned := false;
            stalled := false
        | Some (completed, in_flight, beats) ->
            let now = Mclock.now_ns () in
            if completed <> !last_completed then begin
              last_completed := completed;
              last_change := now;
              warned := false;
              stalled := false
            end
            else begin
              let idle_ms = ms_of_ns (Int64.sub now !last_change) in
              let stalled_domains =
                if in_flight = 0 then []
                else
                  List.filter_map
                    (fun (d, beat) ->
                      if
                        beat > 0L
                        && ms_of_ns (Int64.sub now beat) >= timeout_ms
                      then Some d
                      else None)
                    (List.sort compare beats)
              in
              let snap = { completed; in_flight; stalled_domains; idle_ms } in
              if idle_ms >= timeout_ms && not !stalled then begin
                stalled := true;
                on_event Stall snap;
                match abort with
                | Some f ->
                    on_event Abort snap;
                    f snap
                | None -> ()
              end
              else if idle_ms >= warn_ms && not (!warned || !stalled) then begin
                warned := true;
                on_event Warn snap
              end
            end
    done
  in
  { stop_flag; dom = Some (Domain.spawn body) }

let stop t =
  Atomic.set t.stop_flag true;
  match t.dom with
  | None -> ()
  | Some d ->
      t.dom <- None;
      Domain.join d
