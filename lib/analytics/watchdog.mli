(** Stall watchdog over the execution pool.

    A hung configuration simulation, a runaway reduction or a deadlocked
    worker turns a week-long campaign into a silent zombie — the paper's
    authors ran 21 configurations unattended, and cuFuzz-style harnesses
    all ship a babysitter. This one is a monitoring domain that polls a
    {!probe} (by default {!pool_probe}: the live pool's completed /
    in-flight counters plus per-domain heartbeat timestamps) and
    escalates when the completed count stops moving while the probe
    still reports a pool:

    - after [warn_ms] (default [timeout_ms / 2]) of zero progress:
      [Warn];
    - after [timeout_ms]: [Stall] — the structured event the CLI writes
      to the eventlog — listing every domain whose heartbeat went stale;
    - if an [abort] action was armed: [Abort] immediately after the
      stall event, then the action (the CLI exits nonzero so CI jobs
      fail fast instead of hitting the job-level timeout).

    Progress resets the escalation, so a slow-but-moving campaign only
    ever warns once per genuine quiet window. Everything here is
    monitoring-only and nondeterministic by nature: watchdog events are
    outside the eventlog's [-j] byte-identity contract and a healthy run
    emits none. The watchdog never perturbs results — it only reads
    atomics published by the pool.

    Choose [timeout_ms] longer than the campaign's longest legitimate
    quiet window (e.g. [--minimize] reduction runs execute on the
    submitting domain between pool batches). *)

type level = Warn | Stall | Abort

val level_name : level -> string
(** ["warn"] / ["stall"] / ["abort"]. *)

type snapshot = {
  completed : int;  (** pool tasks completed at detection *)
  in_flight : int;
  stalled_domains : int list;
      (** domains whose last heartbeat is older than [timeout_ms]
          while work is in flight; sorted *)
  idle_ms : int;  (** length of the zero-progress window *)
}

type probe = unit -> (int * int * (int * int64) list) option
(** [completed, in_flight, heartbeats] of the thing being watched, or
    [None] when there is nothing to watch (between campaigns). *)

val pool_probe : probe
(** {!Pool.current} + {!Pool.stats} + {!Pool.heartbeats}. *)

type t

val start :
  ?poll_ms:int ->
  ?warn_ms:int ->
  timeout_ms:int ->
  ?probe:probe ->
  ?abort:(snapshot -> unit) ->
  on_event:(level -> snapshot -> unit) ->
  unit ->
  t
(** Spawn the monitoring domain. [poll_ms] defaults to 250. [on_event]
    and [abort] run on the watchdog domain — keep them reentrant (the
    eventlog writer serialises emission internally). *)

val stop : t -> unit
(** Signal and join the monitoring domain. Idempotent. *)
