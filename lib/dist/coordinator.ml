type event =
  | Worker_joined of int
  | Worker_left of int * string
  | Lease_granted of Lease.lease * int
  | Lease_expired of Lease.lease * int
  | Progress of int * int
  | Fallback of int

(* ------------------------------------------------------------------ *)
(* Watchdog-facing liveness state                                      *)
(* ------------------------------------------------------------------ *)

type monitor = {
  mm : Mutex.t;
  mutable live : bool;
  mutable completed : int;
  mutable in_flight : int;
  mutable beats : (int * int64) list;
}

let monitor () =
  { mm = Mutex.create (); live = false; completed = 0; in_flight = 0; beats = [] }

let with_mon mon f =
  Mutex.lock mon.mm;
  Fun.protect ~finally:(fun () -> Mutex.unlock mon.mm) (fun () -> f mon)

let probe mon () =
  with_mon mon (fun m ->
      if m.live then Some (m.completed, m.in_flight, m.beats) else None)

let publish mon tracker =
  let beats =
    (* one heartbeat per worker: the freshest of its live leases *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (_, w, beat) ->
        match Hashtbl.find_opt tbl w with
        | Some b when b >= beat -> ()
        | _ -> Hashtbl.replace tbl w beat)
      (Lease.outstanding tracker);
    Hashtbl.fold (fun w b acc -> (w, b) :: acc) tbl [] |> List.sort compare
  in
  with_mon mon (fun m ->
      m.live <- true;
      m.completed <- Lease.collected tracker;
      m.in_flight <- List.length (Lease.outstanding tracker);
      m.beats <- beats)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  out : Wire.counters;
  mutable worker : int option;  (** assigned by the Hello handshake *)
  mutable synced : int;  (** cells [0, synced) already delivered *)
  mutable idle : bool;  (** no lease outstanding on this connection *)
}

let send_msg conn msg =
  let payload = Proto.encode msg in
  Wire.count_out conn.out (String.length payload);
  let bytes = Wire.frame payload in
  let n = String.length bytes in
  let written = ref 0 in
  while !written < n do
    written :=
      !written
      + Unix.write_substring conn.fd bytes !written (n - !written)
  done

let sync_batch = 500

exception Drop of string

let default_ttl_ms = 60_000

let serve ~addr ~spec ~workers ?chunk ?(lease_ttl_ms = default_ttl_ms) ?resume
    ?monitor:mon ?fleet ?(telemetry = false) ?status_addr
    ?(status_payload = fun () -> "") ?(on_tick = fun (_ : int64) -> ())
    ?(on_event = fun (_ : event) -> ())
    ?(on_cell = fun (_ : Journal.cell) -> ()) () =
  (* every fleet notification is a no-op when no aggregator is armed *)
  let fl f = match fleet with None -> () | Some t -> f t in
  let tracker = Lease.create ?chunk ~boundaries:(Spec.boundaries spec) () in
  Option.iter (Lease.prefill tracker) resume;
  let ttl_ns = Int64.mul (Int64.of_int lease_ttl_ms) 1_000_000L in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  let setup addr = Netaddr.listen addr in
  let setup_both () =
    match setup addr with
    | Error e -> Error e
    | Ok listen_fd -> (
        match status_addr with
        | None -> Ok (listen_fd, None)
        | Some sa -> (
            match setup sa with
            | Ok sfd -> Ok (listen_fd, Some sfd)
            | Error e ->
                (try Unix.close listen_fd with Unix.Unix_error _ -> ());
                Error (Printf.sprintf "status socket: %s" e)))
  in
  match setup_both () with
  | Error e -> Error e
  | Ok (listen_fd, status_fd) ->
      let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
      (* outstanding lease grants: lease_id -> (grant time, lo, hi). Fed
         only when telemetry is armed; the lease span is emitted
         retroactively once its Done arrives, originating one causal
         flow per cell index in [lo, hi) so the merged trace links the
         grant to the worker's exec spans. *)
      let grants : (int, int64 * int * int) Hashtbl.t = Hashtbl.create 16 in
      let next_worker = ref 0 in
      let joined = ref 0 in
      let started = ref false in
      let buf = Bytes.create 65536 in
      let drop conn reason =
        Hashtbl.remove conns conn.fd;
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        match conn.worker with
        | None -> ()
        | Some w ->
            List.iter
              (fun (_ : Lease.lease) -> ())
              (Lease.release_worker tracker ~worker:w);
            fl (fun t -> Fleet.on_leave t ~worker:w ~now:(Mclock.now_ns ()));
            on_event (Worker_left (w, reason))
      in
      let try_send conn msg =
        try
          send_msg conn msg;
          true
        with Unix.Unix_error (err, _, _) ->
          drop conn (Unix.error_message err);
          false
      in
      let handshaken () =
        Hashtbl.fold
          (fun _ c acc -> if c.worker <> None then c :: acc else acc)
          conns []
      in
      let assign now =
        if !started then
          List.iter
            (fun conn ->
              if conn.idle then
                match conn.worker with
                | None -> ()
                | Some w -> (
                    match Lease.next tracker ~worker:w ~now with
                    | None -> ()
                    | Some lease ->
                        let upto = Lease.sync_upto tracker lease in
                        let ok = ref true in
                        if upto > conn.synced then begin
                          let cells =
                            Lease.range tracker ~lo:conn.synced ~hi:upto
                          in
                          let rec batches = function
                            | [] -> ()
                            | cs ->
                                let rec take n acc = function
                                  | rest when n = 0 -> (List.rev acc, rest)
                                  | [] -> (List.rev acc, [])
                                  | c :: rest -> take (n - 1) (c :: acc) rest
                                in
                                let head, rest = take sync_batch [] cs in
                                if try_send conn (Proto.Sync { cells = head })
                                then batches rest
                                else ok := false
                          in
                          batches cells;
                          if !ok then conn.synced <- upto
                        end;
                        if
                          !ok
                          && try_send conn
                               (Proto.Lease
                                  {
                                    lease_id = lease.Lease.lease_id;
                                    gen = lease.Lease.gen;
                                    lo = lease.Lease.lo;
                                    hi = lease.Lease.hi;
                                  })
                        then begin
                          conn.idle <- false;
                          if telemetry then
                            Hashtbl.replace grants lease.Lease.lease_id
                              (now, lease.Lease.lo, lease.Lease.hi);
                          fl (fun t ->
                              Fleet.on_lease t ~worker:w
                                ~lease_id:lease.Lease.lease_id
                                ~cells:(lease.Lease.hi - lease.Lease.lo) ~now);
                          on_event (Lease_granted (lease, w))
                        end
                        else
                          (* the connection died mid-grant; the drop
                             already requeued the lease *)
                          ()))
            (handshaken ())
      in
      let handle_msg conn now = function
        | Proto.Hello { proto; pid; host } ->
            if proto <> Proto.version then
              raise
                (Drop
                   (Printf.sprintf "protocol version %d (this side runs %d)"
                      proto Proto.version))
            else begin
              let w = !next_worker in
              incr next_worker;
              conn.worker <- Some w;
              conn.idle <- true;
              incr joined;
              fl (fun t -> Fleet.on_join t ~worker:w ~pid ~host ~now);
              if try_send conn (Proto.Welcome { worker_id = w; spec; telemetry })
              then on_event (Worker_joined w)
            end
        | Proto.Cell { lease_id; cell } -> (
            match Lease.record tracker ~lease_id ~now cell with
            | `Fresh ->
                (match conn.worker with
                | Some w -> fl (fun t -> Fleet.on_cell t ~worker:w ~now)
                | None -> ());
                on_cell cell;
                on_event (Progress (Lease.collected tracker, Lease.total tracker))
            | `Dup | `Out_of_range -> ())
        | Proto.Done { lease_id; spans; metrics; _ } ->
            (match conn.worker with
            | Some w ->
                fl (fun t ->
                    Fleet.on_done t ~worker:w ~lease_id ~now;
                    if spans <> [] then Fleet.add_spans t ~worker:w spans;
                    if metrics <> [] then Fleet.on_metrics t ~worker:w metrics)
            | None -> ());
            (match Hashtbl.find_opt grants lease_id with
            | Some (t0_ns, lo, hi) ->
                Hashtbl.remove grants lease_id;
                Span.emit ~cat:"lease"
                  ~name:(Printf.sprintf "lease %d [%d,%d)" lease_id lo hi)
                  ~t0_ns ~dur_ns:(Int64.sub now t0_ns) ~flow:lo
                  ~flow_n:(hi - lo) ()
            | None -> ());
            Lease.finish tracker ~lease_id;
            conn.idle <- true
        | Proto.Beat b -> (
            match conn.worker with
            | Some w ->
                Lease.beat_worker tracker ~worker:w ~now;
                fl (fun t -> Fleet.on_beat t ~worker:w ~now b)
            | None -> ())
        | Proto.Welcome _ | Proto.Sync _ | Proto.Lease _ | Proto.Shutdown ->
            raise (Drop "unexpected message from worker")
      in
      let serve_status () =
        match status_fd with
        | None -> ()
        | Some sfd -> (
            match Unix.accept sfd with
            | exception Unix.Unix_error _ -> ()
            | cfd, _ ->
                (* one snapshot line per connection, HTTP-free: curl or
                   `campaign status` reads to EOF *)
                let line = status_payload () ^ "\n" in
                let n = String.length line in
                let written = ref 0 in
                (try
                   while !written < n do
                     written :=
                       !written
                       + Unix.write_substring cfd line !written (n - !written)
                   done
                 with Unix.Unix_error _ -> ());
                (try Unix.close cfd with Unix.Unix_error _ -> ()))
      in
      let handle_readable fd now =
        if Some fd = status_fd then serve_status ()
        else if fd = listen_fd then begin
          match Unix.accept listen_fd with
          | exception Unix.Unix_error _ -> ()
          | cfd, _ ->
              Hashtbl.replace conns cfd
                {
                  fd = cfd;
                  dec = Wire.decoder ();
                  out = Wire.counters ();
                  worker = None;
                  synced = 0;
                  idle = false;
                }
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some conn -> (
              match Unix.read conn.fd buf 0 (Bytes.length buf) with
              | 0 -> drop conn "connection closed"
              | exception Unix.Unix_error (err, _, _) ->
                  drop conn (Unix.error_message err)
              | n -> (
                  Wire.feed conn.dec buf n;
                  try
                    let rec drain () =
                      match Wire.next conn.dec with
                      | `Awaiting -> ()
                      | `Corrupt msg -> raise (Drop ("corrupt frame: " ^ msg))
                      | `Frame payload -> (
                          match Proto.decode payload with
                          | Error e -> raise (Drop ("bad message: " ^ e))
                          | Ok msg ->
                              handle_msg conn now msg;
                              drain ())
                    in
                    drain ()
                  with Drop reason -> drop conn reason))
      in
      let finish () =
        Hashtbl.iter
          (fun _ conn ->
            (try send_msg conn Proto.Shutdown with
            | Unix.Unix_error _ -> ());
            try Unix.close conn.fd with Unix.Unix_error _ -> ())
          conns;
        Hashtbl.reset conns;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (match addr with
        | Proto.Unix_sock path ->
            (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        | Proto.Tcp _ -> ());
        (match status_fd with
        | Some sfd -> (
            (try Unix.close sfd with Unix.Unix_error _ -> ());
            match status_addr with
            | Some (Proto.Unix_sock path) -> (
                try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
            | _ -> ())
        | None -> ());
        Option.iter (fun m -> with_mon m (fun m -> m.live <- false)) mon
      in
      let rec loop () =
        (* completion waits for live leases to drain (Done, worker death
           or expiry), so the last worker's Done is read and everyone
           gets a clean Shutdown instead of a broken pipe *)
        if Lease.complete tracker && Lease.outstanding tracker = [] then begin
          finish ();
          Ok (Lease.cells tracker)
        end
        else if !started && handshaken () = [] && Hashtbl.length conns = 0
        then begin
          (* every worker died and took its leases with it: hand the
             partial cell set back for local completion *)
          on_event
            (Fallback (Lease.total tracker - Lease.collected tracker));
          finish ();
          Ok (Lease.cells tracker)
        end
        else begin
          let fds =
            (match status_fd with Some sfd -> [ sfd ] | None -> [])
            @ listen_fd
              :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
          in
          let readable, _, _ =
            try Unix.select fds [] [] 0.25
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          let now = Mclock.now_ns () in
          List.iter (fun fd -> handle_readable fd now) readable;
          if (not !started) && !joined >= workers then started := true;
          List.iter
            (fun (lease, w) ->
              on_event (Lease_expired (lease, w));
              (* the worker may be wedged mid-lease: its connection
                 stays (it may recover and stream late, harmlessly),
                 but the lease is free for someone else *)
              ())
            (Lease.expire tracker ~now ~ttl_ns);
          assign now;
          Option.iter (fun m -> publish m tracker) mon;
          fl (fun t ->
              List.iter
                (fun conn ->
                  match conn.worker with
                  | None -> ()
                  | Some w ->
                      let i = Wire.ingress conn.dec in
                      Fleet.set_wire t ~worker:w ~frames_in:i.Wire.frames
                        ~bytes_in:i.Wire.bytes ~frames_out:conn.out.Wire.frames
                        ~bytes_out:conn.out.Wire.bytes)
                (handshaken ()));
          on_tick now;
          loop ()
        end
      in
      let result = try loop () with e -> finish (); raise e in
      result
