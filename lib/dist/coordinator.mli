(** The campaign coordinator: shards the cell grid into leases over
    connected workers and collects their streamed results.

    Single-threaded [Unix.select] event loop. Leasing starts once
    [workers] connections complete the [Hello]/[Welcome] handshake
    (late joiners are welcomed and put to work too); each idle worker
    receives the [Sync] prefix its next lease's generation depends on,
    then the lease itself. Streamed [Cell] messages double as
    heartbeats; a lease whose heartbeat goes stale for [lease_ttl_ms],
    or whose worker's connection drops, is requeued and re-granted —
    re-executed cells are byte-identical by the determinism contract,
    so duplicate replies are folded idempotently.

    The coordinator never executes cells and never orders results
    itself: it returns the collected cell set, and the caller feeds it
    as [resume] input to {!Spec.run_local} — the ordinary campaign
    path — whose ordered merge produces the journal, tables and
    eventlog. Byte-identity with a single-process run holds by
    construction, and if every worker dies the same merge simply
    executes the missing cells locally. *)

type event =
  | Worker_joined of int
  | Worker_left of int * string  (** reason *)
  | Lease_granted of Lease.lease * int
  | Lease_expired of Lease.lease * int
  | Progress of int * int  (** collected, total *)
  | Fallback of int  (** all workers gone; missing cells *)

(** Shared liveness state readable from other domains (the watchdog). *)
type monitor

val monitor : unit -> monitor

val probe : monitor -> Watchdog.probe
(** [completed] is collected cells, [in_flight] live leases, and the
    heartbeat list carries [(worker_id, last_beat_ns)] — so a stall
    report names stale {e workers}, not pool domains. [None] outside
    {!serve}. *)

val serve :
  addr:Proto.addr ->
  spec:Spec.t ->
  workers:int ->
  ?chunk:int ->
  ?lease_ttl_ms:int ->
  ?resume:Journal.cell list ->
  ?monitor:monitor ->
  ?fleet:Fleet.t ->
  ?telemetry:bool ->
  ?status_addr:Proto.addr ->
  ?status_payload:(unit -> string) ->
  ?on_tick:(int64 -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_cell:(Journal.cell -> unit) ->
  unit ->
  (Journal.cell list, string) result
(** Listen on [addr], drive the fabric until every cell of [spec]'s
    grid is collected (or all workers died after leasing began —
    [Fallback] is reported and the partial set returned for local
    completion). [resume] pre-fills the tracker with journalled cells.
    [chunk] caps lease size (default {!Lease.create}'s); [lease_ttl_ms]
    defaults to 60000. [on_event] and [on_cell] run on the serving
    thread; [on_cell] sees each fresh cell in arrival order — the
    scratch-journal hook ({!Journal.append}) that makes a killed
    coordinator resumable without losing collected work. Socket setup
    errors return [Error].

    Fleet telemetry, all opt-in and invisible to campaign output:
    [fleet] receives every join/leave/beat/cell/lease/done (plus
    per-connection {!Wire} transport totals each tick); [telemetry]
    asks workers (via [Welcome]) to arm span collection and ship
    buffers back; [status_addr] opens a second listening socket that
    answers every connection with one [status_payload ()] line and
    closes — the live status surface; [on_tick] runs on the serving
    thread once per select tick (the file-mode status writer). *)
