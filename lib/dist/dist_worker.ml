type progress =
  | Connected of int
  | Leased of { gen : int; lo : int; hi : int }
  | Finished of { lease_id : int; executed : int }

let default_retries = 20
let retry_pause = 0.5
let default_beat_ms = 1000

exception Fail of string

let write_all fd bytes =
  let n = String.length bytes in
  let written = ref 0 in
  try
    while !written < n do
      written := !written + Unix.write_substring fd bytes !written (n - !written)
    done
  with Unix.Unix_error (err, _, _) ->
    raise (Fail (Printf.sprintf "send: %s" (Unix.error_message err)))

(* blocking read of the next protocol message *)
let recv fd dec buf =
  let rec go () =
    match Wire.next dec with
    | `Frame payload -> (
        match Proto.decode payload with
        | Ok msg -> msg
        | Error e -> raise (Fail ("bad message: " ^ e)))
    | `Corrupt msg -> raise (Fail ("corrupt frame: " ^ msg))
    | `Awaiting -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> raise (Fail "connection closed by coordinator")
        | exception Unix.Unix_error (err, _, _) ->
            raise (Fail (Printf.sprintf "recv: %s" (Unix.error_message err)))
        | n ->
            Wire.feed dec buf n;
            go ())
  in
  go ()

let connect ~addr ~retries =
  match Netaddr.connect ~retries ~pause:retry_pause addr with
  | Ok fd -> fd
  | Error e -> raise (Fail e)

(* the heartbeat domain: measures its own cell-completion EWMA between
   naps and ships a stats beat. Sends share the connection mutex with
   the serving domain; a send failure here is swallowed — the serving
   domain will hit the same broken socket and report it properly *)
let beater ~send ~stop ~done_cells ~stage ~beat_ms =
  Domain.spawn (fun () ->
      let rate = ref 0 in
      let prev = ref (Atomic.get done_cells) in
      let prev_t = ref (Mclock.now_ns ()) in
      let naps = max 1 (beat_ms / 100) in
      let rec nap n =
        if n > 0 && not (Atomic.get stop) then begin
          Unix.sleepf 0.1;
          nap (n - 1)
        end
      in
      while not (Atomic.get stop) do
        nap naps;
        if not (Atomic.get stop) then begin
          let now = Mclock.now_ns () in
          let cur = Atomic.get done_cells in
          let ms = Int64.to_int (Int64.div (Int64.sub now !prev_t) 1_000_000L) in
          let inst = if ms <= 0 then 0 else (cur - !prev) * 1_000_000 / ms in
          rate := (if !rate = 0 then inst else ((!rate * 7) + (inst * 3)) / 10);
          prev := cur;
          prev_t := now;
          let queue_depth =
            match Pool.current () with
            | Some p -> (Pool.stats p).Pool.in_flight
            | None -> 0
          in
          let beat =
            {
              Fleet.completed = cur;
              ewma_milli = !rate;
              queue_depth;
              rss_kb = Hostinfo.rss_kb ();
              stage_us = stage ();
            }
          in
          try send (Proto.Beat (Some beat))
          with Fail _ | Unix.Unix_error _ -> ()
        end
      done)

let run_lease ~send ~jobs ~spec ~known ~record ~count ~telemetry ~note_stage
    ~lease_id ~gen ~lo ~hi =
  let spec = Spec.clamp spec ~gen in
  let executed = ref 0 in
  let sink (c : Journal.cell) =
    (* the run replays the synced prefix and fabricates placeholders
       outside the shard; only the leased range is real — and only it
       leaves this process *)
    if c.Journal.index >= lo && c.Journal.index < hi then begin
      record c;
      send (Proto.Cell { lease_id; cell = c });
      incr executed;
      Atomic.incr count
    end
  in
  let (_ : Spec.summary) =
    Spec.run_local ?jobs ~sink ~resume:known
      ~exec_filter:(fun i -> i >= lo && i < hi)
      spec
  in
  (* the pool has joined its domains, so draining here races nothing;
     buffers travel on Done and the cumulative stage tally feeds the
     next beats *)
  let spans = if telemetry then Span.drain () else [] in
  note_stage spans;
  let metrics = if telemetry then Metrics.counters () else [] in
  send (Proto.Done { lease_id; executed = !executed; spans; metrics });
  !executed

let run ~addr ?jobs ?(retries = default_retries) ?journal
    ?(beat_ms = default_beat_ms) ?(on_progress = fun _ -> ()) () =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match
    let fd = connect ~addr ~retries in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let dec = Wire.decoder () in
        let buf = Bytes.create 65536 in
        let out = Wire.counters () in
        let sm = Mutex.create () in
        let send msg =
          Mutex.lock sm;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock sm)
            (fun () ->
              let payload = Proto.encode msg in
              Wire.count_out out (String.length payload);
              write_all fd (Wire.frame payload))
        in
        send
          (Proto.Hello
             {
               proto = Proto.version;
               pid = Unix.getpid ();
               host = Unix.gethostname ();
             });
        let spec, telemetry =
          match recv fd dec buf with
          | Proto.Welcome { worker_id; spec; telemetry } ->
              on_progress (Connected worker_id);
              (spec, telemetry)
          | _ -> raise (Fail "expected welcome")
        in
        if telemetry then begin
          Span.reset ();
          Span.enable ()
        end;
        (* the per-worker journal: every cell this worker ever executed,
           durably appended in arrival order. A restarted worker replays
           it — cells from a killed lease that land in a new lease are
           streamed from the journal instead of re-executed *)
        let jw, mine =
          match journal with
          | None -> (None, [])
          | Some path -> (
              match Journal.append ~path (Spec.header spec) with
              | Ok (w, cells) -> (Some w, cells)
              | Error e -> raise (Fail (Journal.error_to_string e)))
        in
        let written = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace written (Journal.key c) ()) mine;
        let record c =
          match jw with
          | None -> ()
          | Some w ->
              let k = Journal.key c in
              if not (Hashtbl.mem written k) then begin
                Hashtbl.replace written k ();
                Journal.write_cell w c
              end
        in
        let done_cells = Atomic.make 0 in
        let stage_m = Mutex.create () in
        let stage_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let note_stage spans =
          Mutex.lock stage_m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock stage_m)
            (fun () ->
              List.iter
                (fun (s : Span.t) ->
                  let us = Int64.to_int (Int64.div s.Span.dur_ns 1000L) in
                  Hashtbl.replace stage_tbl s.Span.cat
                    (us
                    + Option.value ~default:0
                        (Hashtbl.find_opt stage_tbl s.Span.cat)))
                spans)
        in
        let stage () =
          Mutex.lock stage_m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock stage_m)
            (fun () ->
              List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stage_tbl []))
        in
        (* synced cells arrive as a growing prefix in index order; kept
           reversed for O(1) extension *)
        let known_rev = ref [] in
        let total = ref 0 in
        let rec serve () =
          match recv fd dec buf with
          | Proto.Sync { cells } ->
              List.iter (fun c -> known_rev := c :: !known_rev) cells;
              (* a deliberately bare beat: keeps the old-format decode
                 path exercised on every fabric run *)
              send (Proto.Beat None);
              serve ()
          | Proto.Lease { lease_id; gen; lo; hi } ->
              on_progress (Leased { gen; lo; hi });
              let executed =
                run_lease ~send ~jobs ~spec
                  ~known:(mine @ List.rev !known_rev)
                  ~record ~count:done_cells ~telemetry ~note_stage ~lease_id
                  ~gen ~lo ~hi
              in
              total := !total + executed;
              on_progress (Finished { lease_id; executed });
              serve ()
          | Proto.Beat _ -> serve ()
          | Proto.Shutdown ->
              Option.iter Journal.commit jw;
              !total
          | Proto.Hello _ | Proto.Welcome _ | Proto.Cell _ | Proto.Done _ ->
              raise (Fail "unexpected message from coordinator")
        in
        let stop = Atomic.make false in
        let bd = beater ~send ~stop ~done_cells ~stage ~beat_ms in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set stop true;
            Domain.join bd)
          serve)
  with
  | total -> Ok total
  | exception Fail msg -> Error msg
