type progress =
  | Connected of int
  | Leased of { gen : int; lo : int; hi : int }
  | Finished of { lease_id : int; executed : int }

let default_retries = 20
let retry_pause = 0.5

exception Fail of string

let send fd msg =
  let bytes = Wire.frame (Proto.encode msg) in
  let n = String.length bytes in
  let written = ref 0 in
  try
    while !written < n do
      written := !written + Unix.write_substring fd bytes !written (n - !written)
    done
  with Unix.Unix_error (err, _, _) ->
    raise (Fail (Printf.sprintf "send: %s" (Unix.error_message err)))

(* blocking read of the next protocol message *)
let recv fd dec buf =
  let rec go () =
    match Wire.next dec with
    | `Frame payload -> (
        match Proto.decode payload with
        | Ok msg -> msg
        | Error e -> raise (Fail ("bad message: " ^ e)))
    | `Corrupt msg -> raise (Fail ("corrupt frame: " ^ msg))
    | `Awaiting -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> raise (Fail "connection closed by coordinator")
        | exception Unix.Unix_error (err, _, _) ->
            raise (Fail (Printf.sprintf "recv: %s" (Unix.error_message err)))
        | n ->
            Wire.feed dec buf n;
            go ())
  in
  go ()

let connect ~addr ~retries =
  match Proto.sockaddr_of addr with
  | Error e -> raise (Fail e)
  | Ok sockaddr ->
      let rec attempt left =
        let fd =
          Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
        in
        match Unix.connect fd sockaddr with
        | () -> fd
        | exception Unix.Unix_error (err, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            let transient =
              match err with
              | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET -> true
              | _ -> false
            in
            if transient && left > 0 then begin
              Unix.sleepf retry_pause;
              attempt (left - 1)
            end
            else
              raise
                (Fail
                   (Printf.sprintf "connect %s: %s"
                      (Proto.addr_to_string addr)
                      (Unix.error_message err)))
      in
      attempt retries

let run_lease ~fd ~jobs ~spec ~known ~record ~lease_id ~gen ~lo ~hi =
  let spec = Spec.clamp spec ~gen in
  let executed = ref 0 in
  let sink (c : Journal.cell) =
    (* the run replays the synced prefix and fabricates placeholders
       outside the shard; only the leased range is real — and only it
       leaves this process *)
    if c.Journal.index >= lo && c.Journal.index < hi then begin
      record c;
      send fd (Proto.Cell { lease_id; cell = c });
      incr executed
    end
  in
  let (_ : Spec.summary) =
    Spec.run_local ?jobs ~sink ~resume:known
      ~exec_filter:(fun i -> i >= lo && i < hi)
      spec
  in
  send fd (Proto.Done { lease_id; executed = !executed });
  !executed

let run ~addr ?jobs ?(retries = default_retries) ?journal
    ?(on_progress = fun _ -> ()) () =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match
    let fd = connect ~addr ~retries in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let dec = Wire.decoder () in
        let buf = Bytes.create 65536 in
        send fd
          (Proto.Hello
             {
               proto = Proto.version;
               pid = Unix.getpid ();
               host = Unix.gethostname ();
             });
        let spec =
          match recv fd dec buf with
          | Proto.Welcome { worker_id; spec } ->
              on_progress (Connected worker_id);
              spec
          | _ -> raise (Fail "expected welcome")
        in
        (* the per-worker journal: every cell this worker ever executed,
           durably appended in arrival order. A restarted worker replays
           it — cells from a killed lease that land in a new lease are
           streamed from the journal instead of re-executed *)
        let jw, mine =
          match journal with
          | None -> (None, [])
          | Some path -> (
              match Journal.append ~path (Spec.header spec) with
              | Ok (w, cells) -> (Some w, cells)
              | Error e -> raise (Fail (Journal.error_to_string e)))
        in
        let written = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace written (Journal.key c) ()) mine;
        let record c =
          match jw with
          | None -> ()
          | Some w ->
              let k = Journal.key c in
              if not (Hashtbl.mem written k) then begin
                Hashtbl.replace written k ();
                Journal.write_cell w c
              end
        in
        (* synced cells arrive as a growing prefix in index order; kept
           reversed for O(1) extension *)
        let known_rev = ref [] in
        let total = ref 0 in
        let rec serve () =
          match recv fd dec buf with
          | Proto.Sync { cells } ->
              List.iter (fun c -> known_rev := c :: !known_rev) cells;
              send fd Proto.Beat;
              serve ()
          | Proto.Lease { lease_id; gen; lo; hi } ->
              on_progress (Leased { gen; lo; hi });
              let executed =
                run_lease ~fd ~jobs ~spec
                  ~known:(mine @ List.rev !known_rev)
                  ~record ~lease_id ~gen ~lo ~hi
              in
              total := !total + executed;
              on_progress (Finished { lease_id; executed });
              serve ()
          | Proto.Beat -> serve ()
          | Proto.Shutdown ->
              Option.iter Journal.commit jw;
              !total
          | Proto.Hello _ | Proto.Welcome _ | Proto.Cell _ | Proto.Done _ ->
              raise (Fail "unexpected message from coordinator")
        in
        serve ())
  with
  | total -> Ok total
  | exception Fail msg -> Error msg
