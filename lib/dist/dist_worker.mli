(** A fabric worker: connects to a coordinator, executes leased shards
    of the campaign grid, streams the results back.

    The worker learns the whole campaign from [Welcome]'s {!Spec} —
    it takes no campaign parameters of its own, which is what makes a
    worker of one campaign indistinguishable from a worker of any
    other. Each lease is run through {!Spec.run_local} with

    - [resume] = every coordinator-synced cell (the lease generation's
      complete dependency prefix),
    - [exec_filter] admitting only the leased global index range, and
    - a [sink] that streams exactly the leased cells back as [Cell]
      messages (everything else the run produces — placeholder cells,
      replayed prefix cells, the driver's fold products — is local
      garbage and discarded).

    Because the executed cells take the same deterministic driver path
    a single-process run takes, what the worker streams is
    byte-identical to what that run would have journalled for those
    indices. *)

type progress =
  | Connected of int  (** worker id from the handshake *)
  | Leased of { gen : int; lo : int; hi : int }
  | Finished of { lease_id : int; executed : int }

val run :
  addr:Proto.addr ->
  ?jobs:int ->
  ?retries:int ->
  ?journal:string ->
  ?beat_ms:int ->
  ?on_progress:(progress -> unit) ->
  unit ->
  (int, string) result
(** Connect (retrying a refused connection [retries] times, default
    20, half a second apart — the coordinator may not be up yet),
    handshake, then serve leases until [Shutdown]. Returns the total
    number of cells executed, or a description of the socket/protocol
    failure. [jobs] sizes the worker's local execution pool.

    [journal] names a per-worker scratch journal ({!Journal.append}):
    every executed cell is durably recorded in arrival order, and a
    restarted worker replays it, streaming previously-executed cells
    that land in a fresh lease instead of re-running them.

    A heartbeat domain ships a stats-carrying [Beat] roughly every
    [beat_ms] milliseconds (default 1000): cells completed, a
    self-measured throughput EWMA, local pool queue depth, RSS, and —
    when the coordinator's [Welcome] armed telemetry — the cumulative
    per-stage time from drained spans. With telemetry armed each
    lease's span buffer and the counter-registry snapshot also travel
    back on [Done]. None of this touches the scratch journal or the
    streamed cells, so the merged campaign output is identical with
    telemetry on or off. *)
