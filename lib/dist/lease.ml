type lease = { lease_id : int; gen : int; lo : int; hi : int }

type live = { lease : lease; worker : int; mutable beat : int64 }

type t = {
  boundaries : (int * int) array;
  chunk : int option;
  got : Journal.cell option array;
  mutable n_collected : int;
  leased : bool array;  (** index currently covered by a live lease *)
  active : (int, live) Hashtbl.t;
  mutable next_id : int;
}

let create ?chunk ~boundaries () =
  let boundaries = Array.of_list boundaries in
  let total =
    if Array.length boundaries = 0 then 0
    else snd boundaries.(Array.length boundaries - 1)
  in
  {
    boundaries;
    chunk;
    got = Array.make (max total 1) None;
    n_collected = 0;
    leased = Array.make (max total 1) false;
    active = Hashtbl.create 16;
    next_id = 0;
  }

let total t =
  if Array.length t.boundaries = 0 then 0
  else snd t.boundaries.(Array.length t.boundaries - 1)

let collected t = t.n_collected
let complete t = t.n_collected >= total t

let set t (c : Journal.cell) =
  if c.Journal.index >= 0 && c.Journal.index < total t then
    match t.got.(c.Journal.index) with
    | Some _ -> `Dup
    | None ->
        t.got.(c.Journal.index) <- Some c;
        t.n_collected <- t.n_collected + 1;
        `Fresh
  else `Out_of_range

let prefill t cells = List.iter (fun c -> ignore (set t c)) cells

let gen_complete t (lo, hi) =
  let rec go i = i >= hi || (t.got.(i) <> None && go (i + 1)) in
  go lo

let frontier t =
  let rec go g =
    if g >= Array.length t.boundaries - 1 then g
    else if gen_complete t t.boundaries.(g) then go (g + 1)
    else g
  in
  go 0

let next t ~worker ~now =
  if complete t then None
  else begin
    let g = frontier t in
    let glo, ghi = t.boundaries.(g) in
    let free i = t.got.(i) = None && not t.leased.(i) in
    let rec first i = if i >= ghi then None else if free i then Some i else first (i + 1) in
    match first glo with
    | None -> None
    | Some lo ->
        let cap = match t.chunk with Some c -> min ghi (lo + c) | None -> ghi in
        let rec last i = if i < cap && free i then last (i + 1) else i in
        let hi = last lo in
        let lease = { lease_id = t.next_id; gen = g; lo; hi } in
        t.next_id <- t.next_id + 1;
        for i = lo to hi - 1 do
          t.leased.(i) <- true
        done;
        Hashtbl.replace t.active lease.lease_id { lease; worker; beat = now };
        Some lease
  end

let sync_upto t lease = fst t.boundaries.(lease.gen)

let record t ~lease_id ~now cell =
  (match Hashtbl.find_opt t.active lease_id with
  | Some live -> live.beat <- now
  | None -> ());
  set t cell

let beat_worker t ~worker ~now =
  Hashtbl.iter
    (fun _ live -> if live.worker = worker then live.beat <- now)
    t.active

let range t ~lo ~hi =
  let acc = ref [] in
  for i = min hi (total t) - 1 downto max lo 0 do
    match t.got.(i) with Some c -> acc := c :: !acc | None -> ()
  done;
  !acc

let unlease t lease =
  for i = lease.lo to lease.hi - 1 do
    t.leased.(i) <- false
  done

let finish t ~lease_id =
  match Hashtbl.find_opt t.active lease_id with
  | None -> ()
  | Some live ->
      Hashtbl.remove t.active lease_id;
      unlease t live.lease

let release_worker t ~worker =
  let mine =
    Hashtbl.fold
      (fun _ live acc -> if live.worker = worker then live :: acc else acc)
      t.active []
  in
  List.map
    (fun live ->
      Hashtbl.remove t.active live.lease.lease_id;
      unlease t live.lease;
      live.lease)
    mine

let expire t ~now ~ttl_ns =
  let stale =
    Hashtbl.fold
      (fun _ live acc ->
        if Int64.sub now live.beat > ttl_ns then live :: acc else acc)
      t.active []
  in
  List.map
    (fun live ->
      Hashtbl.remove t.active live.lease.lease_id;
      unlease t live.lease;
      (live.lease, live.worker))
    stale

let outstanding t =
  Hashtbl.fold
    (fun id live acc -> (id, live.worker, live.beat) :: acc)
    t.active []
  |> List.sort compare

let cells t =
  let acc = ref [] in
  for i = Array.length t.got - 1 downto 0 do
    match t.got.(i) with Some c -> acc := c :: !acc | None -> ()
  done;
  !acc
