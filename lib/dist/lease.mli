(** Work-lease bookkeeping over the campaign's global cell grid.

    Pure state machine (no sockets, no clocks of its own), so the
    protocol's awkward corners — duplicate replies after a lease
    expired and was re-run, out-of-order arrival, a worker dying
    mid-lease — are unit-testable in isolation.

    The grid is [total] cells in global deterministic task order,
    partitioned into generations; a lease is a half-open index range
    within the {e frontier} generation (the lowest one not fully
    collected). Only frontier leases are granted, which is what makes
    the fuzzing campaign sound: generation [g]'s plan depends on every
    cell below it, so those cells must all be collected — and synced
    to the worker — before [g] runs anywhere.

    Determinism makes duplicates harmless: a cell index can only ever
    carry one value, so the first arrival wins and any re-execution's
    copy is byte-identical by the campaign contract. *)

type lease = { lease_id : int; gen : int; lo : int; hi : int }

type t

val create : ?chunk:int -> boundaries:(int * int) list -> unit -> t
(** [boundaries] as from {!Spec.boundaries}; [chunk] caps a lease's
    cell count (default: whole generations). *)

val total : t -> int

val collected : t -> int

val complete : t -> bool

val prefill : t -> Journal.cell list -> unit
(** Seed already-known cells (a [--resume] journal) before leasing;
    out-of-range indices are ignored. *)

val frontier : t -> int
(** The generation leases are currently drawn from. *)

val next : t -> worker:int -> now:int64 -> lease option
(** Grant the next lease to [worker]: the first run of cells in the
    frontier generation that are neither collected nor actively
    leased, at most [chunk] long. [None] when the frontier is fully
    covered by collected cells and live leases — the worker idles
    until an expiry or the next generation opens. *)

val sync_upto : t -> lease -> int
(** Cells below this index must be synced to the lease's worker before
    it runs (the start of the lease's generation; [0] for the table
    campaigns — no dependencies). *)

val record : t -> lease_id:int -> now:int64 -> Journal.cell ->
  [ `Fresh | `Dup | `Out_of_range ]
(** Fold one streamed cell in. Accepts cells from unknown (expired)
    leases too — determinism makes them correct; the id only refreshes
    the lease heartbeat when it is still live. *)

val beat_worker : t -> worker:int -> now:int64 -> unit
(** Refresh the heartbeat of every live lease held by [worker]. *)

val range : t -> lo:int -> hi:int -> Journal.cell list
(** Collected cells with index in [lo, hi), in index order. *)

val finish : t -> lease_id:int -> unit
(** The worker reported [Done]: drop the lease. Any cells of its range
    that never arrived simply become leasable again. *)

val release_worker : t -> worker:int -> lease list
(** The worker's connection died: drop all its live leases, returning
    them (their uncollected cells become leasable again). *)

val expire : t -> now:int64 -> ttl_ns:int64 -> (lease * int) list
(** Drop every live lease whose last heartbeat is older than [ttl_ns],
    returning [(lease, worker)] pairs. *)

val outstanding : t -> (int * int * int64) list
(** Live leases as [(lease_id, worker, last_beat_ns)] — the watchdog
    probe's heartbeat view. *)

val cells : t -> Journal.cell list
(** All collected cells in global index order (gaps skipped). *)
