let version = 1

type msg =
  | Hello of { proto : int; pid : int; host : string }
  | Welcome of { worker_id : int; spec : Spec.t; telemetry : bool }
  | Sync of { cells : Journal.cell list }
  | Lease of { lease_id : int; gen : int; lo : int; hi : int }
  | Cell of { lease_id : int; cell : Journal.cell }
  | Done of {
      lease_id : int;
      executed : int;
      spans : Span.t list;
      metrics : (string * int) list;
    }
  | Beat of Fleet.beat option
  | Shutdown

let fields_of = function
  | Hello { proto; pid; host } ->
      [
        ("m", Jsonl.Str "hello");
        ("proto", Jsonl.Int proto);
        ("pid", Jsonl.Int pid);
        ("host", Jsonl.Str host);
      ]
  | Welcome { worker_id; spec; telemetry } ->
      (* the flag is only on the wire when set: the encoding of a
         telemetry-less welcome is unchanged from protocol birth *)
      [ ("m", Jsonl.Str "welcome"); ("worker", Jsonl.Int worker_id) ]
      @ (if telemetry then [ ("telemetry", Jsonl.Bool true) ] else [])
      @ [ ("spec", Spec.to_json spec) ]
  | Sync { cells } ->
      [
        ("m", Jsonl.Str "sync");
        ("cells", Jsonl.List (List.map Journal.cell_to_json cells));
      ]
  | Lease { lease_id; gen; lo; hi } ->
      [
        ("m", Jsonl.Str "lease");
        ("lease", Jsonl.Int lease_id);
        ("gen", Jsonl.Int gen);
        ("lo", Jsonl.Int lo);
        ("hi", Jsonl.Int hi);
      ]
  | Cell { lease_id; cell } ->
      [
        ("m", Jsonl.Str "cell");
        ("lease", Jsonl.Int lease_id);
        ("cell", Journal.cell_to_json cell);
      ]
  | Done { lease_id; executed; spans; metrics } ->
      (* empty payloads are omitted, keeping a plain done's bytes (and
         an old coordinator's view of it) unchanged *)
      [
        ("m", Jsonl.Str "done");
        ("lease", Jsonl.Int lease_id);
        ("executed", Jsonl.Int executed);
      ]
      @ (match spans with
        | [] -> []
        | spans ->
            [ ("spans", Jsonl.List (List.map Fleet.span_to_json spans)) ])
      @ (match metrics with
        | [] -> []
        | ms ->
            [
              ( "metrics",
                Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Int v)) ms) );
            ])
  | Beat None -> [ ("m", Jsonl.Str "beat") ]
  | Beat (Some b) -> [ ("m", Jsonl.Str "beat"); ("stats", Fleet.beat_to_json b) ]
  | Shutdown -> [ ("m", Jsonl.Str "shutdown") ]

let encode m = Jsonl.encode_line (fields_of m)

let decode line =
  match Jsonl.decode_line line with
  | Error e -> Error e
  | Ok fields -> (
      let j = Jsonl.Obj fields in
      let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
      let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
      let malformed = Error "malformed message" in
      match str "m" with
      | Some "hello" -> (
          match (int "proto", int "pid", str "host") with
          | Some proto, Some pid, Some host -> Ok (Hello { proto; pid; host })
          | _ -> malformed)
      | Some "welcome" -> (
          match (int "worker", Jsonl.member "spec" j) with
          | Some worker_id, Some spec_json -> (
              match Spec.of_json spec_json with
              | Ok spec ->
                  (* absent on old coordinators: telemetry off *)
                  let telemetry =
                    match Jsonl.member "telemetry" j with
                    | Some (Jsonl.Bool b) -> b
                    | _ -> false
                  in
                  Ok (Welcome { worker_id; spec; telemetry })
              | Error e -> Error e)
          | _ -> malformed)
      | Some "sync" -> (
          match Jsonl.member "cells" j with
          | Some (Jsonl.List l) ->
              let cells = List.filter_map Journal.cell_of_json l in
              if List.length cells = List.length l then Ok (Sync { cells })
              else malformed
          | _ -> malformed)
      | Some "lease" -> (
          match (int "lease", int "gen", int "lo", int "hi") with
          | Some lease_id, Some gen, Some lo, Some hi ->
              Ok (Lease { lease_id; gen; lo; hi })
          | _ -> malformed)
      | Some "cell" -> (
          match
            (int "lease", Option.bind (Jsonl.member "cell" j) Journal.cell_of_json)
          with
          | Some lease_id, Some cell -> Ok (Cell { lease_id; cell })
          | _ -> malformed)
      | Some "done" -> (
          match (int "lease", int "executed") with
          | Some lease_id, Some executed -> (
              let spans =
                match Jsonl.member "spans" j with
                | None -> Some []
                | Some (Jsonl.List l) ->
                    let ss = List.filter_map Fleet.span_of_json l in
                    if List.length ss = List.length l then Some ss else None
                | Some _ -> None
              in
              let metrics =
                match Jsonl.member "metrics" j with
                | None -> Some []
                | Some (Jsonl.Obj fields) ->
                    let ms =
                      List.filter_map
                        (fun (k, v) ->
                          Option.map (fun n -> (k, n)) (Jsonl.get_int v))
                        fields
                    in
                    if List.length ms = List.length fields then Some ms
                    else None
                | Some _ -> None
              in
              match (spans, metrics) with
              | Some spans, Some metrics ->
                  Ok (Done { lease_id; executed; spans; metrics })
              | _ -> malformed)
          | _ -> malformed)
      | Some "beat" -> (
          (* a bare beat is the original v1 encoding — liveness only *)
          match Jsonl.member "stats" j with
          | None -> Ok (Beat None)
          | Some stats -> (
              match Fleet.beat_of_json stats with
              | Ok b -> Ok (Beat (Some b))
              | Error e -> Error e))
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown message kind %S" other)
      | None -> Error "missing message kind")

(* ------------------------------------------------------------------ *)
(* Addresses — shared with [campaign serve], so the grammar and socket
   bootstrap live in Netaddr; these aliases keep existing call sites
   (and pattern matches on the constructors) compiling unchanged.       *)
(* ------------------------------------------------------------------ *)

type addr = Netaddr.t = Unix_sock of string | Tcp of string * int

let addr_of_string = Netaddr.of_string
let addr_to_string = Netaddr.to_string
let sockaddr_of = Netaddr.sockaddr_of
