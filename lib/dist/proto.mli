(** The coordinator/worker message vocabulary.

    Every message is one checksummed JSONL object (the journal's codec
    and MD5 line discipline) carried in one {!Wire} frame. Cells travel
    in the journal's own canonical record encoding
    ({!Journal.cell_to_json}), so a result has exactly one serialised
    form end to end — what the worker streams is byte-for-byte what the
    merged journal records.

    Lifecycle: the worker opens with [Hello]; the coordinator answers
    [Welcome] carrying the full campaign {!Spec} (workers need no
    campaign flags of their own). Work arrives as [Lease] messages —
    a half-open global cell index range within one generation —
    preceded by whatever [Sync] prefix of already-collected cells the
    lease's generation depends on. The worker streams every executed
    cell back as [Cell] (each doubles as a liveness beat) and closes
    the lease with [Done]; [Shutdown] ends the session. *)

type msg =
  | Hello of { proto : int; pid : int; host : string }
  | Welcome of { worker_id : int; spec : Spec.t; telemetry : bool }
      (** [telemetry] asks the worker to arm span collection and ship
          buffers back on [Done]; encoded only when set and absent on
          old coordinators, so either side may predate the flag *)
  | Sync of { cells : Journal.cell list }
      (** already-collected cells the next lease's generation depends
          on, in global index order *)
  | Lease of { lease_id : int; gen : int; lo : int; hi : int }
      (** execute global cells [lo, hi) of generation [gen] *)
  | Cell of { lease_id : int; cell : Journal.cell }
  | Done of {
      lease_id : int;
      executed : int;
      spans : Span.t list;
          (** the lease's drained span buffer when telemetry was armed *)
      metrics : (string * int) list;
          (** the worker's cumulative counter registry snapshot *)
    }
      (** lease closed; both payloads are omitted from the wire when
          empty, so a plain [Done] round-trips byte-identically with
          protocol-v1 peers *)
  | Beat of Fleet.beat option
      (** worker liveness; [Some] carries the versioned stats object
        ({!Fleet.beat}), [None] is the bare original form that
        old-protocol workers send — both decode *)
  | Shutdown

val version : int
(** Protocol version carried by [Hello]; a mismatch is refused. Still
    1: the telemetry fields ride on optional members with bare
    fallbacks rather than a version bump, so mixed fleets keep
    working. *)

val encode : msg -> string
(** One checksummed JSONL line (no newline, not yet framed). *)

val decode : string -> (msg, string) result
(** Parse, checksum-verify and type one payload. *)

(** Endpoint addresses: [unix:PATH] or [HOST:PORT]. The grammar and
    socket bootstrap live in {!Netaddr} (shared with [campaign serve]);
    the aliases below keep dist call sites source-compatible. *)
type addr = Netaddr.t = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string

val sockaddr_of : addr -> (Unix.sockaddr, string) result
(** Resolve to a connectable/bindable address ([Tcp] hosts via
    numeric parse then name lookup). *)
