type t = {
  campaign : string;
  n : int;
  seed0 : int;
  fuel : int option;
  config_ids : int list option;
  variants : int;
  feedback : bool;
  gen_size : int;
  minimize : bool;
}

let campaigns = [ "table1"; "table3"; "table4"; "table5"; "fuzz" ]

let default_seed0 = function
  | "table1" -> 1
  | "table3" -> 90_000
  | "table4" -> 10_000
  | "table5" -> 50_000
  | _ -> 1

let default_variants = function "table3" -> 12 | _ -> 10

let make ~campaign ~n ?seed0 ?fuel ?config_ids ?variants ?(feedback = true)
    ?(gen_size = Fuzz_loop.default_gen_size) ?(minimize = false) () =
  if not (List.mem campaign campaigns) then
    Error
      (Printf.sprintf "unknown campaign %S (expected %s)" campaign
         (String.concat " | " campaigns))
  else
    Ok
      {
        campaign;
        n;
        seed0 =
          (match seed0 with Some s -> s | None -> default_seed0 campaign);
        fuel;
        config_ids;
        variants =
          (match variants with
          | Some v -> v
          | None -> default_variants campaign);
        feedback;
        gen_size;
        minimize;
      }

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let opt_int = function None -> Jsonl.Null | Some i -> Jsonl.Int i

let opt_ids = function
  | None -> Jsonl.Null
  | Some ids -> Jsonl.List (List.map (fun i -> Jsonl.Int i) ids)

let to_json t =
  Jsonl.Obj
    [
      ("campaign", Jsonl.Str t.campaign);
      ("n", Jsonl.Int t.n);
      ("seed0", Jsonl.Int t.seed0);
      ("fuel", opt_int t.fuel);
      ("configs", opt_ids t.config_ids);
      ("variants", Jsonl.Int t.variants);
      ("feedback", Jsonl.Bool t.feedback);
      ("gen_size", Jsonl.Int t.gen_size);
      ("minimize", Jsonl.Bool t.minimize);
    ]

let of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  let bool name =
    match Jsonl.member name j with Some (Jsonl.Bool b) -> Some b | _ -> None
  in
  let malformed = Error "malformed campaign spec" in
  match
    ( (str "campaign", int "n", int "seed0", int "variants"),
      (bool "feedback", int "gen_size", bool "minimize") )
  with
  | ( (Some campaign, Some n, Some seed0, Some variants),
      (Some feedback, Some gen_size, Some minimize) ) -> (
      if not (List.mem campaign campaigns) then
        Error (Printf.sprintf "unknown campaign %S" campaign)
      else
        let fuel =
          match Jsonl.member "fuel" j with
          | Some (Jsonl.Int f) -> Ok (Some f)
          | Some Jsonl.Null -> Ok None
          | _ -> malformed
        in
        let config_ids =
          match Jsonl.member "configs" j with
          | Some (Jsonl.Int _) | Some (Jsonl.Str _) | Some (Jsonl.Bool _)
          | Some (Jsonl.Obj _) | None ->
              malformed
          | Some Jsonl.Null -> Ok None
          | Some (Jsonl.List l) ->
              let ids = List.filter_map Jsonl.get_int l in
              if List.length ids = List.length l then Ok (Some ids)
              else malformed
        in
        match (fuel, config_ids) with
        | Ok fuel, Ok config_ids ->
            Ok
              {
                campaign;
                n;
                seed0;
                fuel;
                config_ids;
                variants;
                feedback;
                gen_size;
                minimize;
              }
        | _ -> malformed)
  | _ -> malformed

(* ------------------------------------------------------------------ *)
(* Grid geometry                                                       *)
(* ------------------------------------------------------------------ *)

let header t =
  match t.campaign with
  | "table1" ->
      Classify.journal_header ?fuel:t.fuel ~per_mode:t.n ~seed0:t.seed0 ()
  | "table3" ->
      Bench_emi.journal_header ?fuel:t.fuel ~variants:t.variants
        ~seed0:t.seed0 ?config_ids:t.config_ids ()
  | "table4" ->
      Campaign.journal_header ?fuel:t.fuel ~per_mode:t.n ~seed0:t.seed0
        ?config_ids:t.config_ids ()
  | "table5" ->
      Emi_campaign.journal_header ?fuel:t.fuel ~bases:t.n
        ~variants:t.variants ~seed0:t.seed0 ?config_ids:t.config_ids ()
  | _ ->
      Fuzz_loop.journal_header ?fuel:t.fuel ~budget:t.n ~seed:t.seed0
        ?config_ids:t.config_ids ~feedback:t.feedback ~gen_size:t.gen_size
        ~minimize:t.minimize ()

let n_configs t ~default =
  match t.config_ids with Some l -> List.length l | None -> default

let n_modes = List.length Gen_config.all_modes

let total_cells t =
  match t.campaign with
  | "table1" -> t.n * n_modes * List.length Config.all
  | "table3" ->
      List.length Suite.emi_eligible
      * n_configs t ~default:(List.length Bench_emi.default_configs)
  | "table4" ->
      t.n * n_modes
      * n_configs t ~default:(List.length Config.above_threshold_ids)
      * 2
  | "table5" ->
      t.n * n_configs t ~default:(List.length Config.above_threshold_ids) * 2
  | _ -> t.n * Fuzz_loop.cells_per_kernel ?config_ids:t.config_ids ()

let boundaries t =
  match t.campaign with
  | "fuzz" ->
      let cpk = Fuzz_loop.cells_per_kernel ?config_ids:t.config_ids () in
      let rec gens done_kernels lo acc =
        if done_kernels >= t.n then List.rev acc
        else
          let kernels = min t.gen_size (t.n - done_kernels) in
          let hi = lo + (kernels * cpk) in
          gens (done_kernels + kernels) hi ((lo, hi) :: acc)
      in
      gens 0 0 []
  | _ -> [ (0, total_cells t) ]

let clamp t ~gen =
  match t.campaign with
  | "fuzz" -> { t with n = min t.n ((gen + 1) * t.gen_size) }
  | _ -> t

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type summary = Table of string | Fuzz of Fuzz_loop.result

let run_local ?jobs ?sink ?events ?resume ?exec_filter t =
  match t.campaign with
  | "table1" ->
      let t1 =
        Classify.run ?jobs ?fuel:t.fuel ~per_mode:t.n ~seed0:t.seed0 ?sink
          ?resume ?exec_filter ()
      in
      let a, total = Classify.agreement_with_paper t1 in
      (* match table1_cmd's text output exactly: the CLI appends one
         newline to a [Table], so the agreement line carries none here. *)
      Table
        (Classify.to_table t1 ^ "\n"
        ^ Printf.sprintf
            "classification agreement with the paper's Table 1: %d/%d" a
            total)
  | "table3" ->
      Table
        (Bench_emi.to_table
           (Bench_emi.run ?jobs ?fuel:t.fuel ~variants:t.variants
              ~seed0:t.seed0 ?config_ids:t.config_ids ?sink ?resume
              ?exec_filter ()))
  | "table4" ->
      Table
        (Campaign.to_table
           (Campaign.run ?jobs ?fuel:t.fuel ~per_mode:t.n ~seed0:t.seed0
              ?config_ids:t.config_ids ?sink ?resume ?exec_filter ()))
  | "table5" ->
      Table
        (Emi_campaign.to_table
           (Emi_campaign.run ?jobs ?fuel:t.fuel ~bases:t.n
              ~variants:t.variants ~seed0:t.seed0 ?config_ids:t.config_ids
              ?sink ?resume ?exec_filter ()))
  | _ ->
      Fuzz
        (Fuzz_loop.run ?jobs ?fuel:t.fuel ~budget:t.n ~seed:t.seed0
           ?config_ids:t.config_ids ~feedback:t.feedback
           ~gen_size:t.gen_size ~minimize:t.minimize ?sink ?events ?resume
           ?exec_filter ())
