(** A self-contained description of one campaign, shippable over the
    wire.

    The coordinator owns all campaign parameters; workers receive this
    record in [Welcome] and need no flags of their own. Both sides
    derive the same deterministic cell grid from it: {!total_cells}
    cells in global task order, partitioned into {!boundaries}
    generations (one trivial generation for the table campaigns; the
    fuzzing loop's feedback generations for ["fuzz"], where generation
    [g]'s plan depends on every cell of generations [< g]).

    {!run_local} dispatches to the existing drivers — the same code
    path a single-process run takes — so a distributed run inherits
    the ordered-merge byte-identity contract instead of re-proving
    it. *)

type t = {
  campaign : string;  (** "table1" .. "table5" | "fuzz" *)
  n : int;  (** scale: per_mode / bases / kernel budget (table3: unused) *)
  seed0 : int;
  fuel : int option;
  config_ids : int list option;  (** None: the campaign's default set *)
  variants : int;  (** table3/table5 variants per benchmark/base *)
  feedback : bool;  (** fuzz *)
  gen_size : int;  (** fuzz *)
  minimize : bool;  (** fuzz (identity parameter — affects the corpus) *)
}

val campaigns : string list
(** The five legal [campaign] values. *)

val make :
  campaign:string ->
  n:int ->
  ?seed0:int ->
  ?fuel:int ->
  ?config_ids:int list ->
  ?variants:int ->
  ?feedback:bool ->
  ?gen_size:int ->
  ?minimize:bool ->
  unit ->
  (t, string) result
(** Validate the campaign name and fill per-campaign default [seed0]
    (table1: 1, table3: 90000, table4: 10000, table5: 50000, fuzz: 1)
    and [variants] (table3: 12, table5: 10). *)

val to_json : t -> Jsonl.t
val of_json : Jsonl.t -> (t, string) result

val header : t -> Journal.header
(** The journal header of the equivalent single-process run — the
    merged journal must validate against (and resume from) it. *)

val total_cells : t -> int
(** Planned cells in the run's global deterministic task order. *)

val boundaries : t -> (int * int) list
(** Generation ranges [(lo, hi)] covering [0, total_cells).
    Generation [g] may only execute once all cells below its [lo] are
    collected; the table campaigns are one dependency-free range. *)

val clamp : t -> gen:int -> t
(** The spec a worker runs to execute a lease of generation [gen]:
    for ["fuzz"] the kernel budget is capped at generation [gen]'s
    end, which provably leaves the planning of generations [<= gen]
    unchanged and stops the loop right after; table specs are
    returned unchanged. *)

type summary = Table of string | Fuzz of Fuzz_loop.result

val run_local :
  ?jobs:int ->
  ?sink:(Journal.cell -> unit) ->
  ?events:(Eventlog.event -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  t ->
  summary
(** Run the campaign through its existing driver. [sink], [resume] and
    [exec_filter] are passed straight through ({!Campaign.run});
    [events] reaches the fuzzing loop only (the table drivers emit no
    lifecycle events of their own). *)
