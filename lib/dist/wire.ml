let max_frame = Netaddr.max_payload

(* longest legal length header: decimal digits of max_frame *)
let max_header = String.length (string_of_int max_frame)

let frame payload =
  String.concat ""
    [ string_of_int (String.length payload); "\n"; payload; "\n" ]

type counters = { mutable frames : int; mutable bytes : int }

let counters () = { frames = 0; bytes = 0 }

(* transport totals feed the global registry lazily: a process that
   never touches a socket never grows its metrics output *)
let metric_in_frames = lazy (Metrics.counter "wire.in.frames")
let metric_in_bytes = lazy (Metrics.counter "wire.in.bytes")
let metric_out_frames = lazy (Metrics.counter "wire.out.frames")
let metric_out_bytes = lazy (Metrics.counter "wire.out.bytes")

let count_out c payload_len =
  (* header digits + '\n' + payload + '\n', matching what [frame] sends *)
  let n = String.length (string_of_int payload_len) + 1 + payload_len + 1 in
  c.frames <- c.frames + 1;
  c.bytes <- c.bytes + n;
  Metrics.incr (Lazy.force metric_out_frames);
  Metrics.add (Lazy.force metric_out_bytes) n

type decoder = {
  buf : Buffer.t;
  mutable off : int;  (** consumed prefix of [buf] *)
  mutable corrupt : string option;
  ingress : counters;
}

let decoder () =
  { buf = Buffer.create 4096; off = 0; corrupt = None; ingress = counters () }

let ingress d = d.ingress

let compact d =
  (* drop the consumed prefix once it dominates the buffer, keeping
     feed/next amortised linear *)
  if d.off > 0 && d.off >= Buffer.length d.buf - d.off then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let count_in d n =
  d.ingress.bytes <- d.ingress.bytes + n;
  Metrics.add (Lazy.force metric_in_bytes) n

let feed d b n =
  count_in d n;
  Buffer.add_subbytes d.buf b 0 n

let feed_string d s =
  count_in d (String.length s);
  Buffer.add_string d.buf s
let buffered d = Buffer.length d.buf - d.off

let fail d msg =
  d.corrupt <- Some msg;
  `Corrupt msg

let next d =
  match d.corrupt with
  | Some msg -> `Corrupt msg
  | None -> (
      compact d;
      let len = Buffer.length d.buf in
      let contents = Buffer.contents d.buf in
      match String.index_from_opt contents d.off '\n' with
      | None ->
          if len - d.off > max_header then
            fail d "length header too long"
          else `Awaiting
      | Some nl -> (
          let header = String.sub contents d.off (nl - d.off) in
          match int_of_string_opt header with
          | None -> fail d (Printf.sprintf "bad length header %S" header)
          | Some plen when plen < 0 || plen > max_frame ->
              fail d (Printf.sprintf "frame length %d out of bounds" plen)
          | Some plen ->
              (* header, payload, terminating newline *)
              if len - nl - 1 < plen + 1 then `Awaiting
              else begin
                let payload = String.sub contents (nl + 1) plen in
                let term = contents.[nl + 1 + plen] in
                if term <> '\n' then
                  fail d
                    (Printf.sprintf "frame terminator %C after %d bytes" term
                       plen)
                else begin
                  d.off <- nl + 1 + plen + 1;
                  d.ingress.frames <- d.ingress.frames + 1;
                  Metrics.incr (Lazy.force metric_in_frames);
                  `Frame payload
                end
              end))
