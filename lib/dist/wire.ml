let max_frame = 16 * 1024 * 1024

(* longest legal length header: decimal digits of max_frame *)
let max_header = String.length (string_of_int max_frame)

let frame payload =
  String.concat ""
    [ string_of_int (String.length payload); "\n"; payload; "\n" ]

type decoder = {
  buf : Buffer.t;
  mutable off : int;  (** consumed prefix of [buf] *)
  mutable corrupt : string option;
}

let decoder () = { buf = Buffer.create 4096; off = 0; corrupt = None }

let compact d =
  (* drop the consumed prefix once it dominates the buffer, keeping
     feed/next amortised linear *)
  if d.off > 0 && d.off >= Buffer.length d.buf - d.off then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let feed d b n = Buffer.add_subbytes d.buf b 0 n
let feed_string d s = Buffer.add_string d.buf s
let buffered d = Buffer.length d.buf - d.off

let fail d msg =
  d.corrupt <- Some msg;
  `Corrupt msg

let next d =
  match d.corrupt with
  | Some msg -> `Corrupt msg
  | None -> (
      compact d;
      let len = Buffer.length d.buf in
      let contents = Buffer.contents d.buf in
      match String.index_from_opt contents d.off '\n' with
      | None ->
          if len - d.off > max_header then
            fail d "length header too long"
          else `Awaiting
      | Some nl -> (
          let header = String.sub contents d.off (nl - d.off) in
          match int_of_string_opt header with
          | None -> fail d (Printf.sprintf "bad length header %S" header)
          | Some plen when plen < 0 || plen > max_frame ->
              fail d (Printf.sprintf "frame length %d out of bounds" plen)
          | Some plen ->
              (* header, payload, terminating newline *)
              if len - nl - 1 < plen + 1 then `Awaiting
              else begin
                let payload = String.sub contents (nl + 1) plen in
                let term = contents.[nl + 1 + plen] in
                if term <> '\n' then
                  fail d
                    (Printf.sprintf "frame terminator %C after %d bytes" term
                       plen)
                else begin
                  d.off <- nl + 1 + plen + 1;
                  `Frame payload
                end
              end))
