(** Length-framed message transport for the distributed fabric.

    One frame on the byte stream is

    {v LENGTH '\n' PAYLOAD '\n' v}

    where [LENGTH] is the decimal byte length of [PAYLOAD] and the
    payload is one checksummed JSONL line ({!Jsonl.encode_line}) — the
    same per-line MD5 discipline the journal and eventlog use, so a
    corrupted frame is detected twice: the framing layer rejects torn
    or oversized frames, and the protocol layer rejects payloads whose
    checksum does not match.

    The decoder is incremental: feed it whatever [read] returned and
    drain complete frames; a partial frame simply waits for more
    bytes. Corruption is sticky — a stream that desynchronised once
    cannot be trusted again, so the connection must be dropped. *)

val max_frame : int
(** Upper bound on a payload's length (16 MiB); a larger announced
    length is treated as corruption, bounding memory per connection. *)

val frame : string -> string
(** The payload wrapped in its length header and terminator. *)

type counters = { mutable frames : int; mutable bytes : int }
(** Transport totals for one direction of one connection — the
    baseline any future frame-compression work must beat. Every count
    also lands in the global {!Metrics} registry under
    ["wire.in.*"]/["wire.out.*"] (registered lazily, so a process that
    never opens a socket never reports them). *)

val counters : unit -> counters
(** A fresh zeroed pair, for the egress side of a connection. *)

val count_out : counters -> int -> unit
(** Record one sent frame whose {e payload} is [n] bytes long; the
    counted byte total includes the length header and terminators,
    matching what {!frame} puts on the wire. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** Append the first [n] bytes of the buffer to the decoder. *)

val feed_string : decoder -> string -> unit

val next : decoder -> [ `Frame of string | `Awaiting | `Corrupt of string ]
(** Extract the next complete payload. [`Awaiting] means the buffered
    bytes form a frame prefix; [`Corrupt] is terminal (every later
    call returns it too). *)

val buffered : decoder -> int
(** Bytes currently held (diagnostics). *)

val ingress : decoder -> counters
(** Frames and bytes this decoder has accepted so far. *)
