type 'a state = Thunk of (unit -> 'a) | Value of 'a | Poisoned of exn

type 'a t = { m : Mutex.t; mutable state : 'a state }

let make f = { m = Mutex.create (); state = Thunk f }
let of_val v = { m = Mutex.create (); state = Value v }

let force t =
  Mutex.lock t.m;
  match t.state with
  | Value v ->
      Mutex.unlock t.m;
      v
  | Poisoned e ->
      Mutex.unlock t.m;
      raise e
  | Thunk f -> (
      match f () with
      | v ->
          t.state <- Value v;
          Mutex.unlock t.m;
          v
      | exception e ->
          t.state <- Poisoned e;
          Mutex.unlock t.m;
          raise e)
