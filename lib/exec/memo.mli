(** A domain-safe memoised thunk — [Lazy.t] for values shared across the
    pool's domains.

    [Lazy.force] is not safe under concurrent forcing (a racing force
    raises [CamlinternalLazy.Undefined]); campaigns share one prepared
    kernel between every (configuration, opt-level) cell, and with
    cell-granularity tasks those cells run on different domains. A [Memo.t]
    computes its thunk at most once, under a mutex; racing forcers block
    until the first computation finishes and then read the cached value.

    A thunk that raises is poisoned: the exception is cached and re-raised
    by every subsequent force, mirroring [Lazy] semantics. Thunks must not
    force themselves recursively (the mutex is not reentrant). *)

type 'a t

val make : (unit -> 'a) -> 'a t
val of_val : 'a -> 'a t
val force : 'a t -> 'a
