type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_available : Condition.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.work_available t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* shut down *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    job ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      m = Mutex.create ();
      work_available = Condition.create ();
      live = true;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.m;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Jobs enqueued by [try_map] never raise: each stores its own result (or
   captured exception) and signals completion, so a worker domain can
   never die mid-batch. *)
let try_map t ~f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  if n = 0 then []
  else if t.jobs = 1 then
    List.map (fun x -> try Ok (f x) with e -> Error e) xs
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_m = Mutex.create () and all_done = Condition.create () in
    let job i () =
      let r = try Ok (f tasks.(i)) with e -> Error e in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task: wake the submitter (broadcast under the lock so the
           wakeup cannot be lost between its predicate check and wait) *)
        Mutex.lock done_m;
        Condition.broadcast all_done;
        Mutex.unlock done_m
      end
    in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    (* the submitting domain is a runner too: help drain the queue *)
    let rec help () =
      Mutex.lock t.m;
      match Queue.take_opt t.queue with
      | None -> Mutex.unlock t.m
      | Some job ->
          Mutex.unlock t.m;
          job ();
          help ()
    in
    help ();
    Mutex.lock done_m;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_m
    done;
    Mutex.unlock done_m;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map t ~f xs =
  let rs = try_map t ~f xs in
  List.map (function Ok v -> v | Error e -> raise e) rs

let is_fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let map_isolated t ~f ~on_error xs =
  List.map
    (function
      | Ok v -> v
      | Error e when is_fatal e -> raise e
      | Error e -> on_error e)
    (try_map t ~f xs)
