type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_available : Condition.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
  submitted : int Atomic.t;
  completed : int Atomic.t;
  (* first fatal task index seen by an isolated batch; written only by
     the submitting domain *)
  mutable poisoned : int option;
  (* per-domain last-activity timestamps for the stall watchdog: one
     (domain id, monotonic ns) cell per runner, registered lock-free on
     the domain's first task *)
  heartbeats : (int * int64 Atomic.t) list Atomic.t;
}

type stats = {
  submitted : int;
  completed : int;
  in_flight : int;
  poisoned : int option;
}

let recommended_jobs () = Domain.recommended_domain_count ()

(* telemetry: queue depth at dequeue and per-domain busy time, recorded
   only while span collection is on — both are scheduling-dependent and
   deliberately outside the determinism contract *)
let queue_depth = Metrics.histogram "pool.queue_depth"

let busy_counter () =
  Metrics.counter (Printf.sprintf "pool.busy_ns.domain%d" (Domain.self () :> int))

let observe_depth t =
  (* called with [t.m] held; Queue.length is O(1) *)
  if Span.enabled () then Metrics.observe queue_depth (Queue.length t.queue)

(* stamp this domain's heartbeat cell, registering it on first use; the
   CAS loop only ever runs once per (domain, pool) pair *)
let beat (t : t) =
  let id = (Domain.self () :> int) in
  let rec find = function
    | (d, cell) :: _ when d = id -> Some cell
    | _ :: rest -> find rest
    | [] -> None
  in
  let rec cell_of () =
    match find (Atomic.get t.heartbeats) with
    | Some cell -> cell
    | None ->
        let cur = Atomic.get t.heartbeats in
        let cell = Atomic.make 0L in
        if Atomic.compare_and_set t.heartbeats cur ((id, cell) :: cur) then cell
        else cell_of ()
  in
  Atomic.set (cell_of ()) (Mclock.now_ns ())

(* every task runs through here, on whichever domain picked it up: tag
   spans with the task index, count completion, accrue busy time *)
let run_task (t : t) i f x =
  beat t;
  Span.set_task i;
  let timed = Span.enabled () in
  let t0 = if timed then Mclock.now_ns () else 0L in
  Fun.protect
    ~finally:(fun () ->
      Span.clear_task ();
      if timed then
        Metrics.add (busy_counter ())
          (Int64.to_int (Int64.sub (Mclock.now_ns ()) t0));
      Atomic.incr t.completed;
      beat t)
    (fun () -> f x)

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.work_available t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* shut down *)
  else begin
    let job = Queue.pop t.queue in
    observe_depth t;
    Mutex.unlock t.m;
    job ();
    worker_loop t
  end

(* the most recently created live pool, for external monitors (the
   watchdog) that have no handle on the pool a campaign creates
   internally; cleared on that pool's shutdown *)
let current_pool : t option Atomic.t = Atomic.make None

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      m = Mutex.create ();
      work_available = Condition.create ();
      live = true;
      workers = [];
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      poisoned = None;
      heartbeats = Atomic.make [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Atomic.set current_pool (Some t);
  t

let jobs t = t.jobs

let heartbeats t =
  List.map (fun (d, cell) -> (d, Atomic.get cell)) (Atomic.get t.heartbeats)

let current () = Atomic.get current_pool

let stats (t : t) =
  (* completed is read before submitted so a racing snapshot can only
     under-report in_flight, never go negative *)
  let completed = Atomic.get t.completed in
  let submitted = Atomic.get t.submitted in
  {
    submitted;
    completed;
    in_flight = max 0 (submitted - completed);
    poisoned = t.poisoned;
  }

let shutdown t =
  (match Atomic.get current_pool with
  | Some p when p == t -> Atomic.set current_pool None
  | _ -> ());
  Mutex.lock t.m;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Jobs enqueued by [try_map] never raise: each stores its own result (or
   captured exception) and signals completion, so a worker domain can
   never die mid-batch.

   [on_result] is the persistence hook: it runs in the submitting domain
   only, and is handed the ready prefix of the result array in index
   order as it grows — never out of order, regardless of completion
   order — so a journal written from it is a deterministic prefix of the
   batch at every instant. *)
let try_map ?on_result (t : t) ~f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let emit i r = match on_result with Some cb -> cb i r | None -> () in
  ignore (Atomic.fetch_and_add t.submitted n);
  if n = 0 then []
  else if t.jobs = 1 then
    (* explicit recursion: the callback must fire in index order, which
       List.map's unspecified evaluation order does not promise *)
    let rec seq i acc = function
      | [] -> List.rev acc
      | x :: rest ->
          let r = try Ok (run_task t i f x) with e -> Error e in
          emit i r;
          seq (i + 1) (r :: acc) rest
    in
    seq 0 [] xs
  else begin
    let results = Array.make n None in
    let done_m = Mutex.create () and progress = Condition.create () in
    (* the ready-prefix cursor: owned by the submitting domain *)
    let next = ref 0 in
    let job i () =
      let r = try Ok (run_task t i f tasks.(i)) with e -> Error e in
      (* publish under the lock: the submitter reads [results] under the
         same lock, which also orders the write before the wakeup *)
      Mutex.lock done_m;
      results.(i) <- Some r;
      Condition.broadcast progress;
      Mutex.unlock done_m
    in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    (* flush the ready prefix: collect under the lock, call back outside
       it so a slow [on_result] (journal IO) never blocks the workers *)
    let flush_ready () =
      Mutex.lock done_m;
      let ready = ref [] in
      while !next < n && results.(!next) <> None do
        (match results.(!next) with
        | Some r -> ready := (!next, r) :: !ready
        | None -> assert false);
        incr next
      done;
      Mutex.unlock done_m;
      List.iter (fun (i, r) -> emit i r) (List.rev !ready)
    in
    (* the submitting domain is a runner too: help drain the queue,
       flushing completed results between tasks *)
    let rec help () =
      Mutex.lock t.m;
      match Queue.take_opt t.queue with
      | None -> Mutex.unlock t.m
      | Some job ->
          observe_depth t;
          Mutex.unlock t.m;
          job ();
          flush_ready ();
          help ()
    in
    help ();
    (* wait for stragglers, flushing each time the prefix grows; the loop
       terminates because every task eventually stores its result and
       broadcasts *)
    while
      flush_ready ();
      !next < n
    do
      Mutex.lock done_m;
      while results.(!next) = None do
        Condition.wait progress done_m
      done;
      Mutex.unlock done_m
    done;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map t ~f xs =
  let rs = try_map t ~f xs in
  List.map (function Ok v -> v | Error e -> raise e) rs

let is_fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let mark_poisoned (t : t) i = if t.poisoned = None then t.poisoned <- Some i

let map_isolated ?on_result t ~f ~on_error xs =
  let on_result =
    Option.map
      (fun cb ->
        (* a fatal result is about to abort the whole batch: withhold it
           and everything after it from the sink, so a journal ends in a
           clean prefix at the point of resource exhaustion *)
        let poisoned = ref false in
        fun i r ->
          if not !poisoned then
            match r with
            | Ok v -> cb i v
            | Error e when is_fatal e ->
                poisoned := true;
                mark_poisoned t i
            | Error e -> cb i (on_error e))
      on_result
  in
  List.mapi
    (fun i -> function
      | Ok v -> v
      | Error e when is_fatal e ->
          mark_poisoned t i;
          raise e
      | Error e -> on_error e)
    (try_map ?on_result t ~f xs)
