(** A fixed-size pool of OCaml 5 domains with a shared work queue and
    deterministic, order-preserving result merging.

    Campaigns are embarrassingly parallel: every (kernel, configuration,
    opt-level) cell is an independent pure computation. The pool exploits
    that while keeping the paper's bookkeeping reproducible:

    - {b determinism}: tasks carry their stable submission index; results
      are merged in index order, so the merged output is byte-identical to
      a sequential run and to itself across any [jobs] value;
    - {b exception isolation}: a task that raises is captured as an
      [Error] cell instead of killing the whole campaign. Asynchronous
      resource exhaustion ({!Out_of_memory}, {!Stack_overflow}) is never
      masked: {!map_isolated} re-raises it in the submitting domain (in
      task order) rather than letting it be misclassified as a kernel
      crash;
    - {b cooperative timeouts}: the pool never kills a task; long-running
      kernels are bounded by the interpreter's fuel budget (a soft,
      per-task step limit — see [Driver.run_prepared ?fuel]), which turns
      runaway work into a deterministic [Outcome.Timeout].

    [jobs = 1] degrades to a plain sequential fold in the calling domain —
    no domains are spawned, which keeps single-core behaviour (and
    debugging) exactly as before. The submitting domain always
    participates in draining the queue, so [jobs = n] means [n] runners
    total, not [n + 1]. [map]/[try_map]/[map_isolated] must only be called
    from the domain that created the pool, and tasks must not themselves
    submit work to the same pool. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for [-j]. *)

val create : jobs:int -> t
(** A pool of [max 1 jobs] runners ([jobs - 1] spawned worker domains plus
    the submitting domain). *)

val jobs : t -> int

type stats = {
  submitted : int;  (** tasks handed to the pool over its lifetime *)
  completed : int;  (** tasks that finished (including ones that raised) *)
  in_flight : int;  (** [submitted - completed] at snapshot time *)
  poisoned : int option;
      (** index of the first task whose fatal exhaustion aborted an
          isolated batch, once {!map_isolated} has delivered or raised
          it; [None] while healthy *)
}

val stats : t -> stats
(** A monitoring snapshot. Counts are exact when the pool is quiescent
    (before/after a batch, or after {!map_isolated} raised); sampled
    mid-batch from another thread they are merely consistent enough for
    display. *)

val heartbeats : t -> (int * int64) list
(** Per-runner-domain last-activity timestamps: [(domain id, monotonic
    ns)] pairs, stamped at every task start and completion. A domain
    whose beat goes stale while the pool reports work in flight is
    executing a hung task — the signal the stall watchdog keys on.
    Registration order; a runner appears after its first task. *)

val current : unit -> t option
(** The most recently created pool that has not been shut down — a probe
    for external monitors (the watchdog) observing a pool a campaign
    driver created internally. [None] between campaigns. *)

val shutdown : t -> unit
(** Drain and join the worker domains. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val try_map :
  ?on_result:(int -> ('b, exn) result -> unit) ->
  t ->
  f:('a -> 'b) ->
  'a list ->
  ('b, exn) result list
(** Run [f] over every element in parallel; the result list is in input
    order regardless of completion order. Exceptions raised by [f] are
    captured per-task.

    [on_result] is the streaming persistence hook: it is invoked in the
    {e submitting} domain, strictly in index order, as the ready prefix
    of results grows — a result is delivered as soon as it and all of
    its predecessors have completed, not when the whole batch has. A
    journal written from it is therefore always a clean, deterministic
    prefix of the batch, which is what makes a crashed campaign
    resumable. An exception raised by the callback propagates to the
    caller. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [try_map] that re-raises the first captured exception (in task order,
    so even failure is deterministic) once every task has finished. *)

val map_isolated :
  ?on_result:(int -> 'b -> unit) ->
  t ->
  f:('a -> 'b) ->
  on_error:(exn -> 'b) ->
  'a list ->
  'b list
(** Exception-isolating map: a task that raised yields [on_error e] — the
    campaigns map harness-level exceptions to a crash cell — except for
    fatal exhaustion ({!is_fatal}), which is re-raised in task order.
    [on_result] streams isolated results exactly like {!try_map}'s hook,
    except that a fatal failure stops the stream at its index: the cells
    after it are computed but never delivered, so a sink sees a clean
    prefix ending where the batch will abort. *)

val is_fatal : exn -> bool
(** [Out_of_memory] and [Stack_overflow]: conditions that must surface to
    the operator instead of being bucketed as kernel crashes. *)
