(* splitmix64's finaliser: a bijective avalanche mix on 64 bits *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive64 ~base ~index =
  mix64 (Int64.add base (Int64.mul (Int64.of_int (index + 1)) 0x9e3779b97f4a7c15L))

let derive ~base ~index =
  Int64.to_int (derive64 ~base:(Int64.of_int base) ~index) land max_int
