(** Deterministic per-task RNG seed derivation.

    Parallel tasks must never share or advance a common RNG stream — the
    schedule would leak into the results. Every task instead derives its
    own seed from a campaign base seed and its stable task index with a
    splitmix64-style finaliser, so task [i]'s randomness is a pure function
    of [(base, i)] independent of scheduling, [-j], and completion order,
    and neighbouring indices are statistically unrelated. *)

val derive : base:int -> index:int -> int
(** A non-negative seed, pure in [(base, index)]. *)

val derive64 : base:int64 -> index:int -> int64
(** The full-width variant (the mutation engine keys on 64-bit seeds). *)
