(* Bitmap + deterministic signature hashing. See covmap.mli. *)

let bits = 16
let size = 1 lsl bits (* 65536 points, 8 KiB of bitmap *)

type t = Bytes.t

let create () = Bytes.make (size / 8) '\000'
let copy = Bytes.copy
let equal = Bytes.equal

let bucket v =
  if v <= 1 then 0
  else begin
    let n = ref 0 and v = ref v in
    while !v > 1 do
      incr n;
      v := !v lsr 1
    done;
    !n
  end

(* splitmix64 finalizer: the same mixing the generator's Rng uses, so
   signature quality does not depend on component ordering quirks *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine h v =
  mix64 (Int64.add (Int64.logxor h (Int64.of_int v)) 0x9E3779B97F4A7C15L)

let fold_ints vs = List.fold_left combine 0x8000000000000001L vs
let to_index h = Int64.to_int (Int64.logand h (Int64.of_int (size - 1)))

(* the static trigger vector, as one small integer: the named boolean
   triggers of the section-6 fault models plus bucketed magnitudes.
   Digests are deliberately excluded — a map keyed on kernel identity
   would make every kernel "novel" and degenerate to blind search. *)
let feature_word (f : Features.t) =
  let flags =
    [
      f.Features.uses_barrier;
      f.Features.uses_vectors;
      f.Features.uses_vector_logical;
      f.Features.uses_atomics;
      f.Features.uses_comma;
      f.Features.has_struct;
      f.Features.char_first_struct;
      f.Features.union_with_struct_field;
      f.Features.vector_in_struct;
      f.Features.barrier_in_callee;
      f.Features.barrier_in_callee_straight;
      f.Features.barrier_in_loop;
      f.Features.mixes_int_size_t;
      f.Features.while_true;
      f.Features.whole_struct_assign;
      f.Features.nx_is_one;
    ]
  in
  let mask =
    List.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0 flags
  in
  (* magnitudes ride in the upper bits, log2-compressed *)
  mask
  lor (bucket f.Features.barrier_count lsl 16)
  lor (bucket f.Features.max_struct_bytes lsl 21)
  lor (bucket f.Features.long_loop_bound lsl 26)
  lor (bucket f.Features.stmt_count lsl 31)

let outcome_word (o : Outcome.t) =
  match o with
  | Outcome.Success _ -> 0
  | Outcome.Build_failure _ -> 1
  | Outcome.Crash _ -> 2
  | Outcome.Timeout -> 3
  | Outcome.Machine_crash _ -> 4
  | Outcome.Ub _ -> 5

let behavior_word (s : Interp.stats) =
  bucket s.Interp.steps
  lor (bucket s.Interp.barriers lsl 6)
  lor (bucket s.Interp.atomics lsl 12)
  lor (bucket s.Interp.race_checks lsl 18)

let indices ~features ~config ~opt ~divergent ~outcome ~stats =
  let fw = feature_word features
  and bw = behavior_word stats
  and ow = outcome_word outcome
  and dv = if divergent then 1 else 0
  and op = if opt then 1 else 0 in
  [
    (* the full cell signature *)
    to_index (fold_ints [ 1; fw; bw; ow; dv; config; op ]);
    (* config-agnostic: a new (structure, behavior, outcome) combination
       counts even if some other configuration already showed it *)
    to_index (fold_ints [ 2; fw; bw; ow ]);
    (* device reaction: how this configuration classifies the kernel *)
    to_index (fold_ints [ 3; config; op; ow; dv ]);
  ]

let mem t i = Char.code (Bytes.get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  if mem t i then false
  else begin
    let b = i lsr 3 in
    Bytes.set t b (Char.chr (Char.code (Bytes.get t b) lor (1 lsl (i land 7))));
    true
  end

let add_all t is =
  List.fold_left (fun n i -> if add t i then n + 1 else n) 0 is

let count t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let v = ref (Char.code c) in
      while !v <> 0 do
        n := !n + (!v land 1);
        v := !v lsr 1
      done)
    t;
  !n

let to_hex t =
  let buf = Buffer.create (2 * Bytes.length t) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buf

let of_hex s =
  let nibble c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  if String.length s <> size / 4 then None
  else
    let t = create () in
    let ok = ref true in
    for i = 0 to Bytes.length t - 1 do
      match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set t i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some t else None

let merge dst src =
  let news = ref 0 in
  for i = 0 to Bytes.length dst - 1 do
    let d = Char.code (Bytes.get dst i) and s = Char.code (Bytes.get src i) in
    let fresh = s land lnot d in
    if fresh <> 0 then begin
      let v = ref fresh in
      while !v <> 0 do
        news := !news + (!v land 1);
        v := !v lsr 1
      done;
      Bytes.set dst i (Char.chr (d lor s))
    end
  done;
  !news
