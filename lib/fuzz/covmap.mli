(** Behavioral coverage map for the feedback-directed fuzzing loop.

    Classic coverage-guided fuzzers (AFL, Fuzzilli) key scheduling on
    edge coverage of the target. We have no compiled target — every
    configuration is a simulated device — but we do have two rich,
    fully deterministic observation channels for each
    (kernel, configuration, opt-level) cell:

    - the {b static trigger vector} {!Features.of_testcase}, the same
      syntactic features the documented fault models key on; and
    - the {b behavioral tally} the interpreter returns in every
      {!Interp.stats}: steps, barrier arrivals, atomics and race-checker
      probes, which are exact for a fixed (testcase, config) because
      groups and threads execute on a deterministic schedule.

    A cell's {e coverage signature} folds both — feature flags, log2
    buckets of each tally, the outcome class, the configuration
    identity and whether the cell diverged from the cross-config
    majority — into a handful of indices in a fixed-size bitmap. A
    kernel that lights up a previously unset bit has exhibited a new
    (structure, behavior, outcome) combination somewhere in the device
    matrix, and is worth keeping as a mutation seed.

    Everything here is pure integer arithmetic over deterministic
    inputs: the same cell always produces the same indices, so the
    bitmap built from the pool's ordered result stream is byte-identical
    across [-j] values and across resumed runs. *)

type t
(** A fixed-size bitmap of {!size} bits. *)

val size : int
(** Number of bits (a power of two). *)

val create : unit -> t
val copy : t -> t
val equal : t -> t -> bool

val bucket : int -> int
(** Log2 bucketing of a work tally: [0] for values [<= 1], otherwise
    the position of the highest set bit — the same compression
    {!Metrics} histograms use, so "ran twice as long" is novel but
    "ran 3% longer" is not. *)

val indices :
  features:Features.t ->
  config:int ->
  opt:bool ->
  divergent:bool ->
  outcome:Outcome.t ->
  stats:Interp.stats ->
  int list
(** The coverage points of one cell, each in [0, size): the full cell
    signature (features x behavior x outcome x config), a
    config-agnostic behavior point (features x behavior x outcome) and
    a device-reaction point (config x outcome x divergence). Giving a
    cell several points lets a kernel earn credit for a new behavior
    even when the full tuple collides with a seen one. *)

val add : t -> int -> bool
(** Set one bit; [true] iff it was previously unset. *)

val add_all : t -> int list -> int
(** Set every index; the number of bits that were new. *)

val mem : t -> int -> bool

val count : t -> int
(** Set bits — the scalar "coverage" the bench curves plot. *)

val to_hex : t -> string
(** Canonical lowercase-hex rendering of the bitmap bytes — the
    coverage artifact persisted next to a campaign's corpus; equal
    maps render to equal bytes. *)

val of_hex : string -> t option
(** Inverse of {!to_hex}; [None] on wrong length or a non-hex byte
    (uppercase digits are rejected — the rendering is canonical). *)

val merge : t -> t -> int
(** [merge dst src] ors [src] into [dst]; the number of bits newly set
    in [dst]. How a serve daemon folds coverage reported by remote
    clients into its authoritative map. *)
