(* Coverage-guided fuzzing driver. See fuzz_loop.mli for the contract. *)

type provenance = P_gen of int | P_mut of int * string

type gen_stat = {
  gen : int;
  kernels : int;
  mutants : int;
  new_bits : int;
  coverage : int;
  corpus : int;
  findings : int;
  distinct_bugs : int;
}

type result = {
  budget : int;
  kernels_run : int;
  cells_run : int;
  generations : gen_stat list;
  covmap : Covmap.t;
  pool : Seedpool.t;
  buckets : Triage.bucket list;
  exemplar_texts : (string * string) list;
}

let default_budget = 32
let default_gen_size = 8
(* P(mutate a seed) once the pool is non-empty. Kept at a half-and-half
   explore/exploit split: fresh kernels are the only source of entirely
   new trigger signatures, so a higher bias starves distinct-bug yield *)
let mutation_bias = 0.5
let minimize_attempts = 80

let default_config_ids () = Config.above_threshold_ids

let cells_per_kernel ?config_ids () =
  2 * List.length (match config_ids with Some l -> l | None -> default_config_ids ())

let journal_header ?fuel ?(budget = default_budget) ?(seed = 1) ?config_ids
    ?(feedback = true) ?(gen_size = default_gen_size) ?(minimize = false) () =
  let config_ids =
    match config_ids with Some l -> l | None -> default_config_ids ()
  in
  ignore budget;
  Journal.make_header ~campaign:"fuzz"
    ~ident:
      [
        ("seed", string_of_int seed);
        ("fuel", match fuel with Some f -> string_of_int f | None -> "-");
        ("configs", String.concat "," (List.map string_of_int config_ids));
        ("feedback", if feedback then "on" else "off");
        ("gen_size", string_of_int gen_size);
        ("minimize", if minimize then "on" else "off");
      ]
    ~scale:[ ("budget", string_of_int budget) ]

let opt_str opt = if opt then "+" else "-"

let prov_str = function
  | P_gen s -> Printf.sprintf "g%d" s
  | P_mut (parent, op) -> Printf.sprintf "m%d:%s" parent op

(* the journal note carries provenance and the interpreter tally, so a
   replayed cell reconstructs the exact coverage signature of a live one *)
let note_of prov (s : Interp.stats) =
  Printf.sprintf "p=%s;s=%d;b=%d;a=%d;r=%d" (prov_str prov) s.Interp.steps
    s.Interp.barriers s.Interp.atomics s.Interp.race_checks

let stats_of_note note =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | Some i ->
          Hashtbl.replace tbl
            (String.sub part 0 i)
            (String.sub part (i + 1) (String.length part - i - 1))
      | None -> ())
    (String.split_on_char ';' note);
  let int k = Option.bind (Hashtbl.find_opt tbl k) int_of_string_opt in
  match (int "s", int "b", int "a", int "r") with
  | Some steps, Some barriers, Some atomics, Some race_checks ->
      Some { Interp.steps; barriers; atomics; race_checks; prof = [] }
  | _ -> None

let cls_of_bucket = function
  | Majority.B_wrong -> Some "wrong-code"
  | Majority.B_bf -> Some "build-failure"
  | Majority.B_crash -> Some "crash"
  | Majority.B_ok | Majority.B_timeout -> None

(* one planned kernel of a generation *)
type planned = { kidx : int; prov : provenance; tc : Ast.testcase; prep : Driver.prepared }

let run ?jobs ?fuel ?(budget = default_budget) ?(seed = 1) ?config_ids
    ?(feedback = true) ?(gen_size = default_gen_size) ?(minimize = false) ?sink
    ?(events = fun (_ : Eventlog.event) -> ()) ?resume ?exec_filter () =
  let jobs = match jobs with Some j -> j | None -> Pool.recommended_jobs () in
  let config_ids =
    match config_ids with Some l -> l | None -> default_config_ids ()
  in
  let configs = List.map Config.find config_ids in
  let keys =
    List.concat_map (fun c -> [ (c.Config.id, false); (c.Config.id, true) ]) configs
  in
  let n_keys = List.length keys in
  let replay =
    match resume with
    | None | Some [] -> None
    | Some cells -> Some (Journal.index_cells cells)
  in
  let cov = Covmap.create () in
  let spool = Seedpool.create () in
  let m_kernels = Metrics.counter "fuzz.kernels"
  and m_mutants = Metrics.counter "fuzz.mutants"
  and m_new_bits = Metrics.counter "fuzz.new_bits"
  and m_admitted = Metrics.counter "fuzz.corpus.admitted" in
  (* exemplar texts and triage observations, both in merged cell order *)
  let texts = Hashtbl.create 64 in
  let rev_observations = ref [] in
  let bucket_keys = Hashtbl.create 32 in
  let rev_stats = ref [] in
  let fresh_counter = ref 0 in
  let kernels_run = ref 0 in
  let cell_base = ref 0 in
  (* pool entry id -> kernel index of the admitted kernel, so mutant
     provenance can name its parent by kernel index: the journal is then
     self-contained for lineage reconstruction (a kernel index resolves
     to earlier journal cells; a pool id only to replayed pool state) *)
  let pid2kidx = Hashtbl.create 64 in
  (* fresh kernels cycle the six generator modes and skip counter-sharing
     seeds, exactly like the paper's sweeps; the consumed-seed sequence is
     a deterministic function of how many fresh kernels came before *)
  let rec fresh_kernel () =
    let c = !fresh_counter in
    incr fresh_counter;
    let mode =
      List.nth Gen_config.all_modes (c mod List.length Gen_config.all_modes)
    in
    let gseed = seed + c in
    let tc, info =
      Generate.generate ~cfg:(Gen_config.scaled mode) ~seed:gseed ()
    in
    if info.Generate.counter_sharing then fresh_kernel ()
    else (P_gen gseed, tc)
  in
  Pool.with_pool ~jobs @@ fun pool ->
  let gen = ref 0 in
  while !kernels_run < budget do
    let g = !gen in
    incr gen;
    (* every random decision of generation [g] comes from this stream, a
       pure function of (seed, g) — resumable and -j-invariant *)
    let rng = Rng.make ((seed * 1_000_003) + (7919 * g) + 1) in
    Seedpool.decay spool;
    let slots = min gen_size (budget - !kernels_run) in
    let planned =
      Span.with_ ~cat:"gen" "fuzz-plan" (fun () ->
          List.init slots (fun _ ->
              let kidx = !kernels_run in
              incr kernels_run;
              let prov, tc =
                if feedback && Seedpool.size spool > 0 && Rng.bool_p rng mutation_bias
                then begin
                  match Seedpool.select spool rng with
                  | None -> fresh_kernel ()
                  | Some parent -> (
                      let donor () =
                        Option.map
                          (fun e -> e.Seedpool.tc)
                          (Seedpool.select spool rng)
                      in
                      match
                        Mutator.mutate ~rng ~donor parent.Seedpool.tc
                      with
                      | Some (op, tc') ->
                          let pk =
                            match Hashtbl.find_opt pid2kidx parent.Seedpool.id with
                            | Some k -> k
                            | None -> assert false (* every entry is registered at admission *)
                          in
                          (P_mut (pk, Mutator.op_name op), tc')
                      | None -> fresh_kernel ())
                end
                else fresh_kernel ()
              in
              { kidx; prov; tc; prep = Driver.prepare tc }))
    in
    let tasks =
      List.concat_map
        (fun k ->
          List.concat_map
            (fun c -> [ (k, c, false); (k, c, true) ])
            configs)
        planned
    in
    let tasks_arr = Array.of_list tasks in
    let cell_of i ((o : Outcome.t), (st : Interp.stats)) =
      let k, c, opt = tasks_arr.(i) in
      {
        Journal.index = !cell_base + i;
        seed = k.kidx;
        mode = "fuzz";
        config = c.Config.id;
        opt = opt_str opt;
        outcomes = [ o ];
        note = note_of k.prov st;
      }
    in
    let sink = Option.map (fun emit i r -> emit (cell_of i r)) sink in
    let replayed =
      Option.map
        (fun tbl i ->
          let k, c, opt = tasks_arr.(i) in
          match
            Hashtbl.find_opt tbl ("fuzz", k.kidx, c.Config.id, opt_str opt)
          with
          | Some { Journal.outcomes = [ o ]; note; _ } -> (
              match stats_of_note note with
              | Some st -> Some (o, st)
              | None -> None)
          | _ -> None)
        replay
    in
    (* distributed worker: placeholders for non-replayed cells outside the
       leased shard. Sound only because the coordinator syncs every cell
       of prior generations before leasing generation [g] (the planner
       needs real coverage state) and the worker discards this run's own
       fold products, forwarding only sink-accepted cells. *)
    let lookup =
      match exec_filter with
      | None -> replayed
      | Some keep ->
          Some
            (fun i ->
              match Option.bind replayed (fun f -> f i) with
              | Some r -> Some r
              | None ->
                  if keep (!cell_base + i) then None
                  else
                    Some
                      ( Outcome.Crash "skipped: outside shard",
                        Interp.zero_stats ))
    in
    let merged =
      Par.run_resumable pool ?sink ?lookup
        ~f:(fun (k, c, opt) -> Driver.run_prepared_stats ?fuel c ~opt k.prep)
        ~on_error:(fun e -> (Par.crash_of_exn e, Interp.zero_stats))
        tasks
    in
    cell_base := !cell_base + Array.length tasks_arr;
    (* fold the merged stream, kernel by kernel, in task order: coverage,
       admission, metrics and triage all derive from this ordered pass *)
    let gen_new_bits = ref 0
    and gen_findings = ref 0
    and gen_mutants = ref 0 in
    List.iter2
      (fun (k : planned) kernel_results ->
        (match k.prov with
        | P_mut _ ->
            incr gen_mutants;
            Metrics.incr m_mutants
        | P_gen _ -> ());
        Metrics.incr m_kernels;
        let outcomes = List.map fst kernel_results in
        let majority =
          Span.with_ ~cat:"vote" "vote" (fun () ->
              Majority.majority_output outcomes)
        in
        let features = Driver.features_of_prepared k.prep in
        let text = lazy (Pp.program_to_string k.tc.Ast.prog) in
        let hash = lazy (Corpus.hash_text (Lazy.force text)) in
        let kernel_bits = ref 0 in
        let kernel_findings = ref 0 in
        (* the first cell that lit a new coverage point, for minimization *)
        let novel_cell = ref None in
        List.iter2
          (fun (cfg_id, opt) ((o : Outcome.t), (st : Interp.stats)) ->
            Par.record_cell st [ o ];
            let b = Majority.bucket_of ~majority o in
            Par.record_bucket b;
            let divergent = b = Majority.B_wrong in
            let idx =
              Covmap.indices ~features ~config:cfg_id ~opt ~divergent
                ~outcome:o ~stats:st
            in
            let novel = List.filter (fun i -> not (Covmap.mem cov i)) idx in
            let bits = Covmap.add_all cov idx in
            kernel_bits := !kernel_bits + bits;
            if bits > 0 && !novel_cell = None then
              novel_cell := Some (cfg_id, opt, divergent, novel);
            match cls_of_bucket b with
            | None -> ()
            | Some cls ->
                incr gen_findings;
                incr kernel_findings;
                Hashtbl.replace texts (Lazy.force hash) (Lazy.force text);
                let obs =
                  {
                    Triage.o_cls = cls;
                    o_config = cfg_id;
                    o_opt = opt_str opt;
                    o_signature = Triage.signature_of_features features;
                    o_seed = k.kidx;
                    o_mode = "fuzz";
                    o_hash = Lazy.force hash;
                  }
                in
                rev_observations := obs :: !rev_observations;
                Hashtbl.replace bucket_keys
                  (cls, cfg_id, opt_str opt, obs.Triage.o_signature)
                  ();
                events
                  (Eventlog.Triage_hit
                     {
                       cls;
                       config = cfg_id;
                       opt = opt_str opt;
                       signature = obs.Triage.o_signature;
                       seed = k.kidx;
                       mode = "fuzz";
                       hash = Lazy.force hash;
                     }))
          keys kernel_results;
        gen_new_bits := !gen_new_bits + !kernel_bits;
        Metrics.add m_new_bits !kernel_bits;
        if !kernel_bits > 0 then begin
          Metrics.incr m_admitted;
          events
            (Eventlog.Coverage_delta
               {
                 gen = g;
                 kernel = k.kidx;
                 new_bits = !kernel_bits;
                 total = Covmap.count cov;
               });
          let tc_admit =
            match (minimize, !novel_cell) with
            | true, Some (cfg_id, opt, divergent, novel) ->
                (* keep-coverage predicate: the reduced kernel must still
                   produce one of the novel points on the cell that first
                   earned them (divergence taken from the original vote) *)
                let cfg = Config.find cfg_id in
                let keep tc' =
                  let prep' = Driver.prepare tc' in
                  let o', st' = Driver.run_prepared_stats ?fuel cfg ~opt prep' in
                  let idx' =
                    Covmap.indices
                      ~features:(Driver.features_of_prepared prep')
                      ~config:cfg_id ~opt ~divergent ~outcome:o' ~stats:st'
                  in
                  List.exists (fun i -> List.mem i novel) idx'
                in
                if keep k.tc then
                  fst (Reduce.reduce ~max_attempts:minimize_attempts ~interesting:keep k.tc)
                else k.tc
            | _ -> k.tc
          in
          let origin =
            match k.prov with
            | P_gen s -> Seedpool.Generated s
            | P_mut (p, op) -> Seedpool.Mutated (p, op)
          in
          let e =
            Seedpool.add spool ~origin ~gen:g ~new_bits:!kernel_bits
              ~findings:!kernel_findings tc_admit
          in
          Hashtbl.replace pid2kidx e.Seedpool.id k.kidx
        end)
      planned
      (Par.chunk n_keys merged);
    let stat =
      {
        gen = g;
        kernels = slots;
        mutants = !gen_mutants;
        new_bits = !gen_new_bits;
        coverage = Covmap.count cov;
        corpus = Seedpool.size spool;
        findings = !gen_findings;
        distinct_bugs = Hashtbl.length bucket_keys;
      }
    in
    rev_stats := stat :: !rev_stats;
    events
      (Eventlog.Generation
         {
           gen = stat.gen;
           kernels = stat.kernels;
           mutants = stat.mutants;
           new_bits = stat.new_bits;
           coverage = stat.coverage;
           corpus = stat.corpus;
           findings = stat.findings;
           distinct_bugs = stat.distinct_bugs;
         })
  done;
  let buckets = Triage.of_observations (List.rev !rev_observations) in
  {
    budget;
    kernels_run = !kernels_run;
    cells_run = !cell_base;
    generations = List.rev !rev_stats;
    covmap = cov;
    pool = spool;
    buckets;
    exemplar_texts = Hashtbl.fold (fun h t acc -> (h, t) :: acc) texts [] |> List.sort compare;
  }

let finding_entries (r : result) =
  List.filter_map
    (fun (b : Triage.bucket) ->
      match List.assoc_opt b.Triage.exemplar_hash r.exemplar_texts with
      | None -> None
      | Some text ->
          Some
            ( {
                Corpus.hash = b.Triage.exemplar_hash;
                seed = b.Triage.exemplar_seed;
                mode = b.Triage.exemplar_mode;
                cls = b.Triage.cls;
                config = b.Triage.config;
                opt = b.Triage.opt;
              },
              text ))
    r.buckets

let to_table (r : result) =
  let header =
    [ "gen"; "kernels"; "mutants"; "new-bits"; "coverage"; "corpus"; "findings"; "bugs" ]
  in
  let rows =
    List.map
      (fun g ->
        [
          string_of_int g.gen;
          string_of_int g.kernels;
          string_of_int g.mutants;
          string_of_int g.new_bits;
          string_of_int g.coverage;
          string_of_int g.corpus;
          string_of_int g.findings;
          string_of_int g.distinct_bugs;
        ])
      r.generations
  in
  let summary =
    Printf.sprintf
      "%d kernels (%d cells) in %d generations: %d/%d coverage points, %d \
       corpus seeds, %d distinct bugs\n"
      r.kernels_run r.cells_run
      (List.length r.generations)
      (Covmap.count r.covmap) Covmap.size (Seedpool.size r.pool)
      (List.length r.buckets)
  in
  let triage_header = Journal.make_header ~campaign:"fuzz" ~ident:[] ~scale:[] in
  Table_fmt.render_titled ~title:"Coverage-guided fuzzing" ~header rows
  ^ "\n" ^ summary ^ "\n"
  ^ Triage.to_table triage_header r.buckets
