(** The coverage-guided fuzzing campaign — feedback-directed search as a
    fifth campaign alongside the paper-reproduction tables.

    The paper's campaigns are blind sweeps: every kernel is generated
    from an independent seed and its outcome teaches the next iteration
    nothing. This loop closes the feedback cycle the way modern compiler
    fuzzers (Fuzzilli, CLIR) do, from ingredients already in-tree:

    + {b plan} a generation of kernels — fresh generator output (modes
      round-robin, counter-sharing kernels skipped exactly as the paper
      discarded them) or, with feedback on, mutants of energy-selected
      corpus seeds ({!Seedpool}, {!Mutator});
    + {b execute} every (kernel, configuration, opt-level) cell through
      the execution pool under the ordered-merge contract — results are
      consumed strictly in task order, so everything derived from them
      is byte-identical across [-j] values;
    + {b observe}: majority-vote each kernel across the device matrix,
      fold each cell's {!Covmap} signature into the campaign bitmap,
      admit kernels that lit new bits into the seed pool (optionally
      minimized by {!Reduce.reduce} under a keep-coverage predicate),
      and dedup interesting cells into {!Triage} buckets;
    + {b repeat} until the kernel budget is exhausted.

    {b Determinism}: generation planning happens in the submitting
    domain on a splitmix stream derived from [(seed, generation)];
    coverage, pool admission and triage fold over the merged result
    stream only. The final corpus, bitmap, bug list and journal are
    therefore pure functions of [(seed, fuel, configs, feedback,
    gen_size, minimize, budget)] — identical across [-j] values, and a
    run resumed from its journal finishes byte-identical to an
    uninterrupted one. [budget] is a scale parameter: a longer run's
    kernel sequence extends a shorter one's, because generation [g]'s
    plan depends only on the results of generations [< g].

    {b Journal encoding}: one cell per (kernel, config, opt) with
    [mode = "fuzz"] and [seed] the dense kernel counter (mutants are
    not regenerable from a generator seed; they are re-derived by
    deterministic replay). The [note] field carries provenance and the
    interpreter tally ([p=..;s=..;b=..;a=..;r=..]) so replayed cells
    reconstruct the exact coverage signature of a live run. *)

type provenance =
  | P_gen of int  (** generator seed *)
  | P_mut of int * string
      (** parent {e kernel index} and mutation operator — the parent is
          always an earlier journalled kernel, so the journal alone
          reconstructs the full mutation ancestry DAG ({!Lineage}) *)

type gen_stat = {
  gen : int;
  kernels : int;  (** kernels executed this generation *)
  mutants : int;  (** of which were mutation products *)
  new_bits : int;  (** coverage points first lit this generation *)
  coverage : int;  (** cumulative bitmap population after the generation *)
  corpus : int;  (** pool size after admissions *)
  findings : int;  (** interesting (wrong-code/crash/bf) cells this generation *)
  distinct_bugs : int;  (** cumulative triage bucket count *)
}

type result = {
  budget : int;
  kernels_run : int;
  cells_run : int;
  generations : gen_stat list;
  covmap : Covmap.t;
  pool : Seedpool.t;
  buckets : Triage.bucket list;
  exemplar_texts : (string * string) list;
      (** [hash -> kernel text] for every bucket exemplar (mutants are
          not regenerable, so their text travels with the result) *)
}

val default_budget : int
val default_gen_size : int

val journal_header :
  ?fuel:int ->
  ?budget:int ->
  ?seed:int ->
  ?config_ids:int list ->
  ?feedback:bool ->
  ?gen_size:int ->
  ?minimize:bool ->
  unit ->
  Journal.header
(** Header describing a {!run} with the same arguments (same defaults).
    [budget] is scale; everything else is identity. *)

val run :
  ?jobs:int ->
  ?fuel:int ->
  ?budget:int ->
  ?seed:int ->
  ?config_ids:int list ->
  ?feedback:bool ->
  ?gen_size:int ->
  ?minimize:bool ->
  ?sink:(Journal.cell -> unit) ->
  ?events:(Eventlog.event -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  unit ->
  result
(** [feedback:false] degrades to a blind sweep — fresh kernels only,
    the pool never consulted — so the feedback advantage is directly
    measurable at equal budget. [sink]/[resume] follow the campaign
    persistence contract ({!Par.run_resumable}). [events] receives the
    loop's lifecycle events ([Generation], [Coverage_delta],
    [Triage_hit]) from the ordered fold over the merged result stream —
    deterministic and [-j]-invariant, like the journal.

    [exec_filter] restricts execution to a leased shard of the global
    cell index space (distributed worker). Because generation [g]'s plan
    depends on generations [< g], a worker is only sound when [resume]
    already replays every earlier generation's cells — the coordinator
    guarantees this by syncing prior cells before leasing [g], and caps
    the worker's [budget] at the leased generation's end. *)

val cells_per_kernel : ?config_ids:int list -> unit -> int
(** Cells each kernel occupies in the journal — [2 x #configs]. *)

val finding_entries : result -> (Corpus.entry * string) list
(** One corpus entry per triage bucket: the exemplar kernel's text under
    its content address (mutants carry their kernel counter as [seed]
    and ["fuzz"] as mode). *)

val to_table : result -> string
(** Per-generation progress table, coverage/corpus summary and the
    distinct-bug triage table. *)
