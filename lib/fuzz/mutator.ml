open Ast

type op =
  | Opt_tweak
  | Lit_tweak
  | Swizzle_shuffle
  | Geom_tweak
  | Splice
  | Emi_graft
  | Emi_prune

let op_name = function
  | Opt_tweak -> "opt-tweak"
  | Lit_tweak -> "lit-tweak"
  | Swizzle_shuffle -> "swizzle-shuffle"
  | Geom_tweak -> "geom-tweak"
  | Splice -> "splice"
  | Emi_graft -> "emi-graft"
  | Emi_prune -> "emi-prune"

let all_ops =
  [ Opt_tweak; Lit_tweak; Swizzle_shuffle; Geom_tweak; Splice; Emi_graft; Emi_prune ]

(* the race-detect reference run must finish within this budget — well
   under the cells' 250k default, both to bound the (sequential) cost of
   the gate and to reject mutants that would only time out downstream *)
let gate_fuel = 60_000

(* the reducer's concurrency-aware gate, plus the determinism discipline
   (splice can import a thread-dependent condition; Validate rejects it) *)
let well_formed (tc : testcase) =
  match Typecheck.check_testcase tc with
  | Error _ -> false
  | Ok () -> (
      match Validate.check tc.prog with
      | Error _ -> false
      | Ok () -> (
          let config =
            {
              Interp.default_config with
              Interp.detect_races = true;
              fuel = gate_fuel;
            }
          in
          match (Interp.run ~config tc).Interp.outcome with
          | Outcome.Ub _ | Outcome.Timeout -> false
          | _ -> true))

(* --- per-operator rewrites ------------------------------------------- *)

let count_exprs pred p =
  fold_program_blocks
    (fun acc b -> fold_exprs (fun n e -> if pred e then n + 1 else n) acc b)
    0 p

(* rewrite the [target]-th expression satisfying [pred]; mapper hooks run
   bottom-up but visit each node exactly once, so indexing is stable *)
let map_nth_expr pred f target p =
  let counter = ref (-1) in
  Ast_map.program
    {
      Ast_map.default with
      Ast_map.map_expr =
        (fun e ->
          if pred e then begin
            incr counter;
            if !counter = target then f e else e
          end
          else e);
    }
    p

let opt_tweak rng (tc : testcase) =
  let prog' = Mutate.apply ~seed:(Rng.int64 rng) tc.prog in
  if prog' == tc.prog || prog' = tc.prog then None
  else Some { tc with prog = prog' }

let is_const = function Const _ -> true | _ -> false

let lit_tweak rng (tc : testcase) =
  let total = count_exprs is_const tc.prog in
  if total = 0 then None
  else begin
    let target = Rng.int rng total in
    let kind = Rng.int rng 4 in
    let tweak = function
      | Const c ->
          let v = c.value in
          let v' =
            match kind with
            | 0 -> Int64.add v 1L
            | 1 -> Int64.sub v 1L
            | 2 -> Int64.logxor v 1L
            | _ -> Int64.mul v 2L
          in
          Const { c with value = v' }
      | e -> e
    in
    Some { tc with prog = map_nth_expr is_const tweak target tc.prog }
  end

let is_swizzle = function Swizzle _ -> true | _ -> false

let swizzle_shuffle rng (tc : testcase) =
  let total = count_exprs is_swizzle tc.prog in
  if total = 0 then None
  else begin
    let target = Rng.int rng total in
    let shuffle = function
      | Swizzle (e, idxs) ->
          let a = Array.of_list idxs in
          let p = Rng.permutation rng (Array.length a) in
          Swizzle (e, Array.to_list (Array.map (fun i -> a.(i)) p))
      | e -> e
    in
    Some { tc with prog = map_nth_expr is_swizzle shuffle target tc.prog }
  end

(* launch-geometry rewrites that never grow the total thread count, so
   every buffer sized for the original launch stays large enough *)
let geom_tweak rng (tc : testcase) =
  let gx, gy, gz = tc.global_size and lx, ly, lz = tc.local_size in
  let options =
    (if gx <> gy || lx <> ly then
       [ { tc with global_size = (gy, gx, gz); local_size = (ly, lx, lz) } ]
     else [])
    @ (if gx > lx then
         [ { tc with global_size = (lx, gy, gz) } ]
       else [])
    @ (if gy > ly then
         [ { tc with global_size = (gx, ly, gz) } ]
       else [])
    @
    if gx > 1 then
      [ { tc with global_size = (1, gy, gz); local_size = (1, ly, lz) } ]
    else []
  in
  match options with [] -> None | _ -> Some (Rng.choose rng options)

(* statements a donor can contribute: anything self-contained that is
   legal at the top level of a kernel body *)
let spliceable = function
  | Decl _ | Assign _ | Expr _ | If _ | For _ | While _ | Block _ | Barrier _ ->
      true
  | Break | Continue | Return _ | Emi _ -> false

let splice rng donor (tc : testcase) =
  match donor () with
  | None -> None
  | Some (d : testcase) ->
      let candidates =
        List.rev
          (fold_stmts
             (fun acc s -> if spliceable s then s :: acc else acc)
             [] d.prog.kernel.body)
      in
      if candidates = [] then None
      else begin
        (* most grafts reference names the host kernel lacks; cheap
           typecheck-filtered attempts keep the acceptance rate useful *)
        let body = tc.prog.kernel.body in
        let len = List.length body in
        let rec attempt k =
          if k = 0 then None
          else begin
            let s = Rng.choose rng candidates in
            let pos = Rng.int rng (len + 1) in
            let body' =
              List.concat
                [
                  List.filteri (fun i _ -> i < pos) body;
                  [ s ];
                  List.filteri (fun i _ -> i >= pos) body;
                ]
            in
            let tc' =
              {
                tc with
                prog =
                  {
                    tc.prog with
                    kernel = { tc.prog.kernel with body = body' };
                  };
              }
            in
            match Typecheck.check_testcase tc' with
            | Ok () -> Some tc'
            | Error _ -> attempt (k - 1)
          end
        in
        attempt 6
      end

let emi_graft rng (tc : testcase) =
  if emi_block_count tc.prog > 0 || tc.prog.dead_size > 0 then None
  else
    let subst = Rng.bool_p rng 0.5 in
    let seed = Rng.int rng 1_000_000 in
    let injected =
      Inject.inject ~subst ~cfg:(Gen_config.scaled Gen_config.All) ~seed tc
    in
    Some injected.Inject.testcase

let emi_prune rng (tc : testcase) =
  if emi_block_count tc.prog = 0 then None
  else
    let params = Rng.choose rng Prune.paper_combinations in
    Some { tc with prog = Prune.prune_program (Rng.split rng) params tc.prog }

(* --- driver ----------------------------------------------------------- *)

(* weighted towards operators that change what triage and the coverage
   map can see. Splice imports trigger constructs (atomics, barriers,
   vector ops) from a donor and so moves the kernel to a new trigger
   signature; geometry tweaks change how the same code reacts to each
   configuration (the Fig 1(b) lesson). Literal/expression tweaks mostly
   re-explore the parent's own bucket, so they get less of the budget. *)
let op_weights =
  [
    (Opt_tweak, 2);
    (Lit_tweak, 2);
    (Swizzle_shuffle, 1);
    (Geom_tweak, 3);
    (Splice, 5);
    (Emi_graft, 1);
    (Emi_prune, 2);
  ]

let apply_op rng donor op tc =
  match op with
  | Opt_tweak -> opt_tweak rng tc
  | Lit_tweak -> lit_tweak rng tc
  | Swizzle_shuffle -> swizzle_shuffle rng tc
  | Geom_tweak -> geom_tweak rng tc
  | Splice -> splice rng donor tc
  | Emi_graft -> emi_graft rng tc
  | Emi_prune -> emi_prune rng tc

let max_attempts = 8

(* a mutant that keeps its parent's trigger signature and launch
   geometry can only re-find the parent's triage buckets; one that moves
   either can find distinct bugs *)
let moves_bucket ~parent ~parent_sig (tc' : testcase) =
  tc'.global_size <> parent.global_size
  || tc'.local_size <> parent.local_size
  || Triage.signature_of_features (Features.of_testcase tc') <> parent_sig

let mutate ~rng ~donor (tc : testcase) =
  let parent_sig = Triage.signature_of_features (Features.of_testcase tc) in
  (* first well-formed mutant that does NOT move buckets, kept in case no
     attempt produces one that does; gated lazily so the expensive
     reference run happens at most once for non-movers *)
  let fallback = ref None in
  let rec go k =
    if k = 0 then !fallback
    else begin
      let op = Rng.weighted rng op_weights in
      match apply_op rng donor op tc with
      | Some tc' when tc' <> tc ->
          if moves_bucket ~parent:tc ~parent_sig tc' then
            if well_formed tc' then Some (op, tc') else go (k - 1)
          else begin
            if !fallback = None && well_formed tc' then
              fallback := Some (op, tc');
            go (k - 1)
          end
      | _ -> go (k - 1)
    end
  in
  go max_attempts
