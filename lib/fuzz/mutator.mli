(** Mutation engine over corpus kernels.

    Seven operators, all deterministic functions of the caller's
    splitmix {!Rng.t} stream:

    - {b opt-tweak}: one semantics-changing rewrite from {!Mutate}
      (comparison flip, operand swap, constant-multiplier bump,
      conditional-arm swap) — the same engine the wrong-code fault
      models use, now aimed at producing {e new inputs} rather than
      modelling a buggy compiler;
    - {b lit-tweak}: perturb one integer literal ([+1], [-1], [xor 1]
      or doubling), keeping its declared scalar type;
    - {b swizzle-shuffle}: permute the component list of one vector
      swizzle (type-preserving: length and source width unchanged);
    - {b geom-tweak}: rewrite the launch geometry within the original
      thread budget — swap the X/Y dimensions, collapse a dimension to
      one work-group, or force [Nx = 1] (the Fig. 1(b) trigger). The
      total thread count never grows, so buffer sizes stay valid;
    - {b splice}: graft one statement subtree from a donor corpus
      kernel into the kernel body at a random position — accepted only
      if the result still typechecks (generated kernels share naming
      conventions, so a useful fraction does);
    - {b emi-graft}: inject fresh dead-by-construction EMI blocks
      ({!Inject.inject}) into a kernel that has none;
    - {b emi-prune}: prune existing EMI blocks with one of the paper's
      parameter combinations ({!Prune}).

    Every candidate passes the well-formedness gate before it is
    returned: {!Typecheck.check_testcase}, the determinism discipline
    ({!Validate.check}) and a race-and-divergence-checked reference
    interpretation — the reducer's concurrency-aware gate, run at a
    reduced fuel so the (sequential) gate stays cheap and mutants that
    would merely time out downstream are rejected up front. Mutants are
    therefore always valid differential-testing inputs whose majority
    vote is schedule-independent. *)

type op =
  | Opt_tweak
  | Lit_tweak
  | Swizzle_shuffle
  | Geom_tweak
  | Splice
  | Emi_graft
  | Emi_prune

val op_name : op -> string
(** Stable kebab-case name, used in journal provenance notes and the
    corpus index. *)

val all_ops : op list

val well_formed : Ast.testcase -> bool
(** The gate described above. Exposed for tests. *)

val mutate :
  rng:Rng.t ->
  donor:(unit -> Ast.testcase option) ->
  Ast.testcase ->
  (op * Ast.testcase) option
(** Draw operators until one produces a well-formed mutant distinct
    from the input, for at most a fixed number of attempts; [None] if
    all fail. Two biases push towards {e distinct}-bug yield: the draw
    is weighted towards splice and geometry tweaks (the operators that
    move a kernel to a new trigger signature or change its
    per-configuration reaction), and a mutant that moves neither the
    signature nor the launch geometry is only returned as a fallback
    when no attempt produced one that does — mutants that stay inside
    the parent's triage bucket cannot find new bugs. [donor] supplies
    splice material (typically another pool entry); splice is skipped
    when it returns [None]. *)
