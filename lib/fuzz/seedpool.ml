(* Energy-scheduled seed corpus. See seedpool.mli. *)

type origin = Generated of int | Mutated of int * string

type entry = {
  id : int;
  origin : origin;
  tc : Ast.testcase;
  text : string;
  hash : string;
  gen : int;
  new_bits : int;
  findings : int;
  mutable energy : float;
}

type t = { mutable rev_entries : entry list; mutable n : int }

let decay_factor = 0.85
let energy_floor = 0.03

let create () = { rev_entries = []; n = 0 }
let size t = t.n
let entries t = List.rev t.rev_entries

(* coverage novelty plus a bug-adjacency bonus: compiler bugs cluster,
   so seeds whose cells were interesting are mined harder *)
let admission_energy ~new_bits ~findings =
  1.0 +. float_of_int (min new_bits 16) +. (2.0 *. float_of_int (min findings 4))

let add t ~origin ~gen ~new_bits ?(findings = 0) tc =
  let text = Pp.program_to_string tc.Ast.prog in
  let e =
    {
      id = t.n;
      origin;
      tc;
      text;
      hash = Corpus.hash_text text;
      gen;
      new_bits;
      findings;
      energy = admission_energy ~new_bits ~findings;
    }
  in
  t.rev_entries <- e :: t.rev_entries;
  t.n <- t.n + 1;
  e

let decay t =
  List.iter
    (fun e -> e.energy <- Float.max energy_floor (e.energy *. decay_factor))
    t.rev_entries

(* integer weights for Rng.weighted: 8x fixed-point, floored at 1 so a
   fully decayed seed is still reachable *)
let weight e = max 1 (int_of_float (e.energy *. 8.0))

let select t rng =
  match t.rev_entries with
  | [] -> None
  | _ ->
      Some (Rng.weighted rng (List.map (fun e -> (e, weight e)) (entries t)))

let origin_mode = function
  | Generated _ -> "fuzz:gen"
  | Mutated (_, op) -> "fuzz:" ^ op

let persist t ~dir =
  Corpus.add_all ~dir
    (List.map
       (fun e ->
         ( {
             Corpus.hash = e.hash;
             seed = e.id;
             mode = origin_mode e.origin;
             cls = "seed";
             config = 0;
             opt = "-";
           },
           e.text ))
       (entries t))
