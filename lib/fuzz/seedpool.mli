(** Energy-based corpus scheduler for the fuzzing loop.

    The pool holds every kernel that ever produced new coverage, with an
    {e energy} that determines how often it is picked as a mutation
    parent:

    - admission energy is [1 + min new_bits 16 + 2 * min findings 4] —
      a kernel that lit up many new coverage points is mined harder,
      and one whose cells were interesting (wrong-code/crash/build-
      failure) harder still, because compiler bugs cluster: a mutant of
      a bug-adjacent kernel often trips the neighbouring bug;
    - every generation, all energies decay by the factor 0.85 (floored
      at 0.03), so the scheduler drifts towards fresh discoveries
      without ever fully retiring a seed;
    - {!select} draws energy-weighted through the caller's splitmix
      {!Rng.t}, so selection is a pure function of the root seed and
      the (deterministic) admission history — runs are reproducible
      and [-j]-invariant.

    Energies are recomputable from [(gen, new_bits, findings)] —
    [energy = admission * 0.85^(now - gen)] — so nothing scheduling-
    related needs persisting: a resumed run re-derives the identical
    pool by replaying the loop against its journal. {!persist} archives
    the kernels themselves (class ["seed"]) through the content-
    addressed {!Corpus} for human inspection and cross-campaign reuse. *)

type origin =
  | Generated of int  (** generator seed of a fresh kernel *)
  | Mutated of int * string
      (** parent kernel index (journal provenance), mutation operator *)

type entry = {
  id : int;  (** dense pool id, insertion order *)
  origin : origin;
  tc : Ast.testcase;
  text : string;  (** printed kernel — also the content address input *)
  hash : string;
  gen : int;  (** generation at admission *)
  new_bits : int;  (** coverage novelty that earned admission *)
  findings : int;  (** interesting cells the kernel produced at admission *)
  mutable energy : float;
}

type t

val create : unit -> t
val size : t -> int
val entries : t -> entry list
(** Insertion order. *)

val add :
  t ->
  origin:origin ->
  gen:int ->
  new_bits:int ->
  ?findings:int ->
  Ast.testcase ->
  entry
(** [findings] defaults to 0. *)

val decay : t -> unit
(** One generation tick: multiply every energy by 0.85 (floor 0.03).
    Call exactly once per generation, before admissions. *)

val select : t -> Rng.t -> entry option
(** Energy-weighted draw; [None] on an empty pool. Consumes exactly one
    [Rng] value when the pool is non-empty. *)

val persist : t -> dir:string -> (int, string) result
(** Archive every kernel to the corpus at [dir] (class ["seed"], mode
    recording its origin); returns how many index entries were new. *)
