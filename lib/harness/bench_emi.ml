type code = Wrong of string | Crash of string | Timed_out | No_gen | Pass

let code_to_string = function
  | Wrong s -> "w" ^ s
  | Crash s -> "c" ^ s
  | Timed_out -> "to"
  | No_gen -> "ng"
  | Pass -> "OK"

let code_of_string = function
  | "to" -> Some Timed_out
  | "ng" -> Some No_gen
  | "OK" -> Some Pass
  | s when String.length s = 2 && s.[0] = 'w' -> Some (Wrong (String.sub s 1 1))
  | s when String.length s = 2 && s.[0] = 'c' -> Some (Crash (String.sub s 1 1))
  | _ -> None

type t = {
  variants : int;
  results : (string * (int * code) list) list;
}

let default_configs = List.init 19 (fun i -> i + 1)

(* superscript: did provoking the defect require substitutions enabled (e),
   disabled (d), or either (?) *)
let superscript ~with_subst ~without_subst =
  match (with_subst, without_subst) with
  | true, true -> "?"
  | true, false -> "e"
  | false, true -> "d"
  | false, false -> "?"

(* everything one benchmark's cells need, computed once and shared *)
type bench_setup = {
  name : string;
  expected : string;
  orig_prep : Driver.prepared;
  tests : (bool * Driver.prepared) list;  (** (substitutions on?, variant) *)
}

let journal_header ?fuel ?(variants = 12) ?(seed0 = 90_000) ?config_ids () =
  let config_ids =
    match config_ids with Some l -> l | None -> default_configs
  in
  Journal.make_header ~campaign:"table3"
    ~ident:
      [
        ("seed0", string_of_int seed0);
        ("fuel", match fuel with Some f -> string_of_int f | None -> "-");
        ("configs", String.concat "," (List.map string_of_int config_ids));
        ("variants", string_of_int variants);
      ]
    ~scale:[]

let run ?jobs ?fuel ?(variants = 12) ?(seed0 = 90_000) ?config_ids ?sink
    ?resume ?exec_filter () : t =
  let jobs = match jobs with Some j -> j | None -> Pool.recommended_jobs () in
  let config_ids =
    match config_ids with Some l -> l | None -> default_configs
  in
  let configs = List.map Config.find config_ids in
  let gcfg = Gen_config.scaled Gen_config.All in
  Pool.with_pool ~jobs @@ fun pool ->
  (* phase 1: per-benchmark setup (reference run, EMI injection, prepare),
     one task per benchmark; a failed reference run must still raise *)
  let setups =
    Pool.map pool
      ~f:(fun (b : Suite.benchmark) ->
        let original = b.Suite.testcase () in
        let expected =
          match Driver.reference_outcome original with
          | Outcome.Success s -> s
          | o ->
              invalid_arg
                (Printf.sprintf "benchmark %s reference run failed: %s"
                   b.Suite.name (Outcome.to_string o))
        in
        let orig_prep = Driver.prepare original in
        (* tests: variants x substitutions on/off, each prepared once *)
        let tests =
          List.concat_map
            (fun i ->
              List.map
                (fun subst ->
                  let inj =
                    Inject.inject ~subst ~cfg:gcfg
                      ~seed:(seed0 + (i * 131) + if subst then 1 else 0)
                      original
                  in
                  (subst, Driver.prepare inj.Inject.testcase))
                [ true; false ])
            (List.init variants Fun.id)
        in
        { name = b.Suite.name; expected; orig_prep; tests })
      Suite.emi_eligible
  in
  (* phase 2: one task per (benchmark, configuration) cell; the cell's
     many variant runs accumulate one interpreter-work tally *)
  let cell (s, c) =
    let work = ref Interp.zero_stats in
    let run_counted ~opt prep =
      let o, st = Driver.run_prepared_stats ?fuel c ~opt prep in
      work := Interp.add_stats !work st;
      o
    in
    let finish code = ((c.Config.id, code), !work) in
    let orig_ok opt =
      match run_counted ~opt s.orig_prep with
      | Outcome.Success out -> String.equal out s.expected
      | _ -> false
    in
    if not (orig_ok false || orig_ok true) then finish No_gen
    else begin
      let wrong_subst = ref false
      and wrong_nosubst = ref false
      and crash_subst = ref false
      and crash_nosubst = ref false
      and timed = ref false in
      List.iter
        (fun (subst, prep) ->
          List.iter
            (fun opt ->
              match run_counted ~opt prep with
              | Outcome.Success out when not (String.equal out s.expected) ->
                  if subst then wrong_subst := true else wrong_nosubst := true
              | Outcome.Success _ -> ()
              | Outcome.Build_failure _ | Outcome.Crash _
              | Outcome.Machine_crash _ | Outcome.Ub _ ->
                  if subst then crash_subst := true else crash_nosubst := true
              | Outcome.Timeout -> timed := true)
            [ false; true ])
        s.tests;
      let code =
        if !wrong_subst || !wrong_nosubst then
          Wrong
            (superscript ~with_subst:!wrong_subst ~without_subst:!wrong_nosubst)
        else if !crash_subst || !crash_nosubst then
          Crash
            (superscript ~with_subst:!crash_subst ~without_subst:!crash_nosubst)
        else if !timed then Timed_out
        else Pass
      in
      finish code
    end
  in
  let tasks =
    List.concat_map (fun s -> List.map (fun c -> (s, c)) configs) setups
  in
  let tasks_arr = Array.of_list tasks in
  let cell_record i (config, code) =
    let s, _ = tasks_arr.(i) in
    {
      Journal.index = i;
      seed = 0;
      mode = s.name;
      config;
      opt = "*";
      outcomes = [];
      note = code_to_string code;
    }
  in
  let sink = Option.map (fun emit i (r, _stats) -> emit (cell_record i r)) sink in
  let replayed =
    match resume with
    | None | Some [] -> None
    | Some cells ->
        let tbl = Journal.index_cells cells in
        Some
          (fun i ->
            let s, c = tasks_arr.(i) in
            match Hashtbl.find_opt tbl (s.name, 0, c.Config.id, "*") with
            | Some { Journal.note; _ } ->
                Option.map
                  (fun code -> ((c.Config.id, code), Interp.zero_stats))
                  (code_of_string note)
            | None -> None)
  in
  (* distributed worker: placeholders for non-replayed cells outside the
     leased shard; only sink-forwarded cells leave the worker *)
  let lookup =
    match exec_filter with
    | None -> replayed
    | Some keep ->
        Some
          (fun i ->
            match Option.bind replayed (fun f -> f i) with
            | Some r -> Some r
            | None ->
                if keep i then None
                else
                  let _, c = tasks_arr.(i) in
                  Some ((c.Config.id, Crash "?"), Interp.zero_stats))
  in
  let cells =
    (* exception isolation: a cell whose harness code raises becomes a
       crash cell for its configuration; fatal exhaustion still surfaces *)
    Par.run_resumable pool ?sink ?lookup
      ~f:(fun ((_, c) as task) ->
        try cell task
        with e when not (Pool.is_fatal e) ->
          ((c.Config.id, Crash "?"), Interp.zero_stats))
      ~on_error:raise tasks
    (* table 3 cells have no per-run outcome list; their class lives in
       the note code, tallied under cells.note.* *)
    |> List.map (fun ((id, code), stats) ->
           Par.record_cell stats [];
           Metrics.incr (Metrics.counter ("cells.note." ^ code_to_string code));
           (id, code))
  in
  (* regroup the flat cell list by benchmark, in task order *)
  let results =
    List.map2
      (fun s row -> (s.name, row))
      setups
      (Par.chunk (List.length configs) cells)
  in
  { variants; results }

let to_table (t : t) =
  let config_ids =
    match t.results with
    | (_, row) :: _ -> List.map fst row
    | [] -> []
  in
  let header = "Benchmark" :: List.map string_of_int config_ids in
  let rows =
    List.map
      (fun (name, row) -> name :: List.map (fun (_, c) -> code_to_string c) row)
      t.results
  in
  Table_fmt.render_titled
    ~title:
      (Printf.sprintf
         "Table 3: EMI testing over the Parboil/Rodinia ports (%d injected \
          variants x subst on/off x opt on/off per cell; spmv and myocyte \
          excluded: data races)"
         t.variants)
    ~header rows
