(** EMI testing over the Parboil/Rodinia ports (paper section 7.2,
    Table 3).

    Every race-free benchmark is injected with EMI blocks (free variables
    either substituted for kernel variables or freshly declared — the
    paper's "substitutions on/off") and run at both optimisation levels on
    each configuration except the Altera pair (excluded "due to their
    reliance on offline compilation"). Per (benchmark, configuration) the
    table reports the worst outcome over all tests, in the paper's code:

    - [w] — a test produced a wrong result without crashing; superscript
      [e]/[d]/[?] records whether substitutions had to be enabled,
      disabled, or either;
    - [c] — a test crashed (compiler error or runtime error: compilation
      is online, so the two are not distinguished — footnote 6);
    - [to] — a test timed out;
    - [ng] — the configuration cannot produce the expected output for the
      benchmark with an empty EMI block at either optimisation level;
    - [OK] — all tests passed. *)

type code = Wrong of string | Crash of string | Timed_out | No_gen | Pass

val code_to_string : code -> string

val code_of_string : string -> code option
(** Inverse of {!code_to_string} — used to replay journalled cells. *)

val default_configs : int list
(** Configs 1–19 (the Altera pair is excluded) — exposed so callers can
    size the cell grid, e.g. for a progress display. *)

type t = {
  variants : int;
  results : (string * (int * code) list) list;
      (** benchmark name -> (config id, code) *)
}

val journal_header :
  ?fuel:int -> ?variants:int -> ?seed0:int -> ?config_ids:int list -> unit ->
  Journal.header
(** Header describing a [run] with the same arguments (same defaults).
    All parameters are identity: the benchmark set is fixed, so there is
    no scale axis. *)

val run :
  ?jobs:int ->
  ?fuel:int ->
  ?variants:int ->
  ?seed0:int ->
  ?config_ids:int list ->
  ?sink:(Journal.cell -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  unit ->
  t
(** Defaults: 12 injected variants per benchmark (paper: 125), configs
    1–19.

    A cell is one (benchmark, configuration); its journal record stores
    the benchmark name in the [mode] field, the paper's result code in
    [note], and no outcomes. [sink]/[resume]/[exec_filter] behave as in
    {!Campaign.run}; benchmark setup (reference runs, EMI injection) is
    always recomputed on resume. *)

val to_table : t -> string
