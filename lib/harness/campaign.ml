type cell = { w : int; bf : int; c : int; timeout : int; ok : int }

let zero_cell = { w = 0; bf = 0; c = 0; timeout = 0; ok = 0 }

let add_bucket cell (b : Majority.bucket) =
  match b with
  | Majority.B_wrong -> { cell with w = cell.w + 1 }
  | Majority.B_bf -> { cell with bf = cell.bf + 1 }
  | Majority.B_crash -> { cell with c = cell.c + 1 }
  | Majority.B_timeout -> { cell with timeout = cell.timeout + 1 }
  | Majority.B_ok -> { cell with ok = cell.ok + 1 }

let w_pct cell = Table_fmt.pct cell.w (cell.w + cell.ok)

type mode_result = {
  mode : Gen_config.mode;
  tests_used : int;
  discarded_sharing : int;
  discarded_prefilter : int;
  per_config : ((int * bool) * cell) list;
}

let prefilter_config = Config.find 1

let opt_str opt = if opt then "+" else "-"

let journal_header ?fuel ?(per_mode = 60) ?(seed0 = 10_000) ?config_ids ?modes
    () =
  let config_ids =
    match config_ids with Some l -> l | None -> Config.above_threshold_ids
  in
  let modes = match modes with Some m -> m | None -> Gen_config.all_modes in
  Journal.make_header ~campaign:"table4"
    ~ident:
      [
        ("seed0", string_of_int seed0);
        ("fuel", match fuel with Some f -> string_of_int f | None -> "-");
        ("configs", String.concat "," (List.map string_of_int config_ids));
        ("modes", String.concat "," (List.map Gen_config.mode_name modes));
      ]
    ~scale:[ ("per_mode", string_of_int per_mode) ]

let run ?jobs ?fuel ?(per_mode = 60) ?(seed0 = 10_000) ?config_ids ?modes ?sink
    ?resume ?exec_filter () =
  let jobs = match jobs with Some j -> j | None -> Pool.recommended_jobs () in
  let config_ids =
    match config_ids with Some l -> l | None -> Config.above_threshold_ids
  in
  let modes = match modes with Some m -> m | None -> Gen_config.all_modes in
  let configs = List.map Config.find config_ids in
  let replay =
    match resume with
    | None | Some [] -> None
    | Some cells -> Some (Journal.index_cells cells)
  in
  (* cells are journalled with their position in the whole run's task
     order, counted across modes *)
  let base = ref 0 in
  Pool.with_pool ~jobs @@ fun pool ->
  List.map
    (fun mode ->
      let mode_name = Gen_config.mode_name mode in
      let gcfg = Gen_config.scaled mode in
      (* phase 1: generate + prefilter candidate seeds in parallel batches,
         consumed in seed order (Par.collect), so survivors and discard
         tallies match the sequential loop exactly. Always recomputed on
         resume — it is deterministic and a small fraction of the cell
         work, and rebuilding the kernels is needed to verify the journal
         against this run anyway. *)
      let classify ~seed =
        let tc, info =
          Span.with_ ~cat:"gen" "generate" (fun () ->
              Generate.generate ~cfg:gcfg ~seed ())
        in
        if info.Generate.counter_sharing then Par.Reject `Sharing
        else
          let prep = Driver.prepare tc in
          match Driver.run_prepared ?fuel prefilter_config ~opt:true prep with
          | Outcome.Build_failure _ | Outcome.Timeout -> Par.Reject `Prefiltered
          | _ -> Par.Accept (seed, prep)
      in
      let kernels, rejects = Par.collect pool ~n:per_mode ~seed0 ~classify in
      let keys =
        List.concat_map
          (fun c -> [ (c.Config.id, false); (c.Config.id, true) ])
          configs
      in
      (* phase 2: every (kernel, config, opt-level) cell is one pool task,
         in kernel-major stable order *)
      let tasks =
        List.concat_map
          (fun (seed, prep) ->
            List.concat_map
              (fun c -> [ (seed, prep, c, false); (seed, prep, c, true) ])
              configs)
          kernels
        (* each task carries its global cell index — the journal index and
           the causal flow id stitching exec spans to coordinator leases *)
        |> List.mapi (fun i (seed, prep, c, opt) -> (seed, prep, c, opt, !base + i))
      in
      let tasks_arr = Array.of_list tasks in
      let cell_of i o =
        let seed, _, c, opt, _ = tasks_arr.(i) in
        {
          Journal.index = !base + i;
          seed;
          mode = mode_name;
          config = c.Config.id;
          opt = opt_str opt;
          outcomes = [ o ];
          note = "";
        }
      in
      let sink = Option.map (fun emit i (o, _stats) -> emit (cell_of i o)) sink in
      let replayed =
        Option.map
          (fun tbl i ->
            let seed, _, c, opt, _ = tasks_arr.(i) in
            match
              Hashtbl.find_opt tbl (mode_name, seed, c.Config.id, opt_str opt)
            with
            | Some { Journal.outcomes = [ o ]; _ } ->
                Some (o, Interp.zero_stats)
            | _ -> None)
          replay
      in
      (* a distributed worker executes only its leased shard: every other
         non-replayed cell degrades to an instant placeholder, never sent
         anywhere — only the shard's real cells leave this process *)
      let lookup =
        match exec_filter with
        | None -> replayed
        | Some keep ->
            Some
              (fun i ->
                match Option.bind replayed (fun f -> f i) with
                | Some r -> Some r
                | None ->
                    if keep (!base + i) then None
                    else
                      Some
                        ( Outcome.Crash "skipped: outside shard",
                          Interp.zero_stats ))
      in
      let outcomes =
        Par.run_resumable pool ?sink ?lookup
          ~f:(fun (_, prep, c, opt, flow) ->
            Driver.run_prepared_stats ?fuel ~flow c ~opt prep)
          ~on_error:(fun e -> (Par.crash_of_exn e, Interp.zero_stats))
          tasks
        (* metrics fold over the merged list, in task order: replayed
           cells count their outcome but no interpreter work *)
        |> List.map (fun (o, stats) ->
               Par.record_cell stats [ o ];
               o)
      in
      base := !base + Array.length tasks_arr;
      (* deterministic merge: regroup the flat outcome list by kernel (the
         chunk layout mirrors [keys]) and fold buckets in task order *)
      let cells = Hashtbl.create 64 in
      List.iter (fun k -> Hashtbl.replace cells k zero_cell) keys;
      List.iter
        (fun kernel_outcomes ->
          let results = List.combine keys kernel_outcomes in
          let majority =
            Span.with_ ~cat:"vote" "vote" (fun () ->
                Majority.majority_output kernel_outcomes)
          in
          List.iter
            (fun (key, o) ->
              let b = Majority.bucket_of ~majority o in
              Par.record_bucket b;
              Hashtbl.replace cells key (add_bucket (Hashtbl.find cells key) b))
            results)
        (Par.chunk (List.length keys) outcomes);
      {
        mode;
        tests_used = List.length kernels;
        discarded_sharing = Par.count rejects ~tag:`Sharing;
        discarded_prefilter = Par.count rejects ~tag:`Prefiltered;
        per_config = List.map (fun k -> (k, Hashtbl.find cells k)) keys;
      })
    modes

let to_table (results : mode_result list) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let header =
        "metric"
        :: List.map
             (fun ((id, opt), _) -> Printf.sprintf "%d%s" id (if opt then "+" else "-"))
             r.per_config
        @ [ "Total" ]
      in
      let metric name get =
        name
        :: List.map (fun (_, cell) -> string_of_int (get cell)) r.per_config
        @ [ string_of_int (List.fold_left (fun a (_, c) -> a + get c) 0 r.per_config) ]
      in
      let total_cell =
        List.fold_left
          (fun acc (_, c) ->
            { w = acc.w + c.w; bf = acc.bf + c.bf; c = acc.c + c.c;
              timeout = acc.timeout + c.timeout; ok = acc.ok + c.ok })
          zero_cell r.per_config
      in
      let wpct_row =
        "w%"
        :: List.map (fun (_, cell) -> w_pct cell) r.per_config
        @ [ w_pct total_cell ]
      in
      Buffer.add_string buf
        (Table_fmt.render_titled
           ~title:
             (Printf.sprintf
                "Table 4 [%s] (%d tests; %d discarded: counter sharing, %d: \
                 prefilter on 1+)"
                (Gen_config.mode_name r.mode)
                r.tests_used r.discarded_sharing r.discarded_prefilter)
           ~header
           [
             metric "w" (fun c -> c.w);
             metric "bf" (fun c -> c.bf);
             metric "c" (fun c -> c.c);
             metric "to" (fun c -> c.timeout);
             metric "ok" (fun c -> c.ok);
             wpct_row;
           ]);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let totals results =
  List.map
    (fun r ->
      ( r.mode,
        List.fold_left
          (fun acc (_, c) ->
            { w = acc.w + c.w; bf = acc.bf + c.bf; c = acc.c + c.c;
              timeout = acc.timeout + c.timeout; ok = acc.ok + c.ok })
          zero_cell r.per_config ))
    results
