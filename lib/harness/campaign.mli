(** Intensive CLsmith-based differential testing (paper section 7.3,
    Table 4).

    For each generator mode, a batch of kernels is generated (counter-
    sharing kernels discarded as in the paper) and prefiltered on
    configuration 1 with optimisations — the paper "used configuration 1+
    (NVIDIA GTX Titan) to generate the tests, discarding tests that failed
    to compile or that timed out". Every kernel then runs on the selected
    configurations at both optimisation levels; wrong-code classification
    is by ≥3 majority across all collected results, and each (config,
    level) accumulates the w / bf / c / to / ok buckets plus the
    wrong-code percentage w% = w / (w + ok). *)

type cell = { w : int; bf : int; c : int; timeout : int; ok : int }

val w_pct : cell -> string

type mode_result = {
  mode : Gen_config.mode;
  tests_used : int;
  discarded_sharing : int;
  discarded_prefilter : int;
  per_config : ((int * bool) * cell) list;  (** key: (config id, opt on?) *)
}

val journal_header :
  ?fuel:int ->
  ?per_mode:int ->
  ?seed0:int ->
  ?config_ids:int list ->
  ?modes:Gen_config.mode list ->
  unit ->
  Journal.header
(** The journal header describing a [run] with the same arguments (same
    defaults). [seed0], [fuel], [config_ids] and [modes] are identity
    parameters; [per_mode] is scale (a journal may be resumed at a larger
    or smaller [-n]). *)

val run :
  ?jobs:int ->
  ?fuel:int ->
  ?per_mode:int ->
  ?seed0:int ->
  ?config_ids:int list ->
  ?modes:Gen_config.mode list ->
  ?sink:(Journal.cell -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  unit ->
  mode_result list
(** Defaults: 60 kernels/mode (paper: 10,000), the above-threshold
    configurations, all six modes.

    [jobs] (default [Pool.recommended_jobs ()]) sizes the execution pool;
    every (kernel, config, opt-level) cell is an independent task, and the
    merged result is byte-identical across [jobs] values and across runs
    at the same seed. [fuel] overrides the per-task soft timeout (the
    interpreter's step budget).

    [sink] is invoked once per completed cell, in deterministic task
    order, streamed as results complete (see {!Par.run_resumable}) — the
    journalling hook. [resume] replays previously journalled cells:
    any task whose [(mode, seed, config, opt)] key is found is not
    re-executed, its recorded outcome is used (and re-emitted to [sink]
    in order), so an interrupted campaign continues where it stopped and
    finishes with output byte-identical to an uninterrupted run.
    Generation and prefiltering are always recomputed — they are
    deterministic and cheap relative to the cell grid.

    [exec_filter] is the distributed-worker hook: when given, a cell
    whose global task index is rejected (and that [resume] does not
    replay) is not executed — it yields an instant placeholder outcome
    instead. The caller (a fabric worker) must then treat the fold
    result as garbage and only forward cells its [sink] accepted. *)

val to_table : mode_result list -> string
val totals : mode_result list -> (Gen_config.mode * cell) list
