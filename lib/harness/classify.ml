type config_report = {
  config : Config.t;
  total : int;
  wrong : int;
  build_failures : int;
  crashes : int;
  timeouts : int;
  fail_fraction : float;
  above : bool;
}

type t = {
  per_mode : int;
  discarded_sharing : int;
  reports : config_report list;
}

(* generate the initial kernel set: [per_mode] kernels per mode, skipping
   counter-sharing ones (the paper discarded those) *)
let initial_kernels pool ~per_mode ~seed0 =
  let discarded = ref 0 in
  let kernels =
    List.concat_map
      (fun mode ->
        let cfg = Gen_config.scaled mode in
        let classify ~seed =
          let tc, info =
            Span.with_ ~cat:"gen" "generate" (fun () ->
                Generate.generate ~cfg ~seed ())
          in
          if info.Generate.counter_sharing then Par.Reject `Sharing
          else Par.Accept (seed, tc)
        in
        let accepted, rejects = Par.collect pool ~n:per_mode ~seed0 ~classify in
        discarded := !discarded + List.length rejects;
        List.map (fun (seed, tc) -> (seed, mode, tc)) accepted)
      Gen_config.all_modes
  in
  (kernels, !discarded)

let journal_header ?fuel ?(per_mode = 10) ?(seed0 = 1) () =
  Journal.make_header ~campaign:"table1"
    ~ident:
      [
        ("seed0", string_of_int seed0);
        ("fuel", match fuel with Some f -> string_of_int f | None -> "-");
      ]
    ~scale:[ ("per_mode", string_of_int per_mode) ]

let run ?jobs ?fuel ?(per_mode = 10) ?(seed0 = 1) ?sink ?resume ?exec_filter ()
    : t =
  let jobs = match jobs with Some j -> j | None -> Pool.recommended_jobs () in
  Pool.with_pool ~jobs @@ fun pool ->
  let kernels, discarded_sharing = initial_kernels pool ~per_mode ~seed0 in
  let configs = Config.all in
  (* stats.(ci) = (wrong, bf, crash, timeout, total) *)
  let n = List.length configs in
  let wrong = Array.make n 0
  and bf = Array.make n 0
  and cr = Array.make n 0
  and tmo = Array.make n 0
  and tot = Array.make n 0 in
  (* one task per (kernel, configuration) cell, kernel-major; the prepared
     kernel is shared by all of its cells across domains. A cell's two
     optimisation levels are journalled together as opt "*" with a
     two-element outcome list. *)
  let tasks =
    List.concat_map
      (fun (seed, mode, tc) ->
        let prep = Driver.prepare tc in
        List.map (fun c -> (seed, mode, prep, c)) configs)
      kernels
  in
  let tasks_arr = Array.of_list tasks in
  let cell_of i (off, on) =
    let seed, mode, _, c = tasks_arr.(i) in
    {
      Journal.index = i;
      seed;
      mode = Gen_config.mode_name mode;
      config = c.Config.id;
      opt = "*";
      outcomes = [ off; on ];
      note = "";
    }
  in
  let sink = Option.map (fun emit i (pair, _stats) -> emit (cell_of i pair)) sink in
  let replayed =
    match resume with
    | None | Some [] -> None
    | Some cells ->
        let tbl = Journal.index_cells cells in
        Some
          (fun i ->
            let seed, mode, _, c = tasks_arr.(i) in
            match
              Hashtbl.find_opt tbl
                (Gen_config.mode_name mode, seed, c.Config.id, "*")
            with
            | Some { Journal.outcomes = [ off; on ]; _ } ->
                Some ((off, on), Interp.zero_stats)
            | _ -> None)
  in
  (* distributed worker: placeholders for non-replayed cells outside the
     leased shard; only sink-forwarded cells leave the worker *)
  let lookup =
    match exec_filter with
    | None -> replayed
    | Some keep ->
        Some
          (fun i ->
            match Option.bind replayed (fun f -> f i) with
            | Some r -> Some r
            | None ->
                if keep i then None
                else
                  let skip = Outcome.Crash "skipped: outside shard" in
                  Some ((skip, skip), Interp.zero_stats))
  in
  let pairs =
    Par.run_resumable pool ?sink ?lookup
      ~f:(fun (_, _, prep, c) ->
        let off, st_off = Driver.run_prepared_stats ?fuel c ~opt:false prep in
        let on, st_on = Driver.run_prepared_stats ?fuel c ~opt:true prep in
        ((off, on), Interp.add_stats st_off st_on))
      ~on_error:(fun e ->
        let o = Par.crash_of_exn e in
        ((o, o), Interp.zero_stats))
      tasks
    |> List.map (fun ((off, on), stats) ->
           Par.record_cell stats [ off; on ];
           (off, on))
  in
  (* deterministic merge: per kernel, majority over all its results, then
     per-config bucket accumulation in task order *)
  List.iter
    (fun kernel_pairs ->
      let all_results =
        List.concat_map (fun (a, b) -> [ a; b ]) kernel_pairs
      in
      let majority =
        Span.with_ ~cat:"vote" "vote" (fun () ->
            Majority.majority_output all_results)
      in
      List.iteri
        (fun i (off, on) ->
          List.iter
            (fun o ->
              tot.(i) <- tot.(i) + 1;
              Par.record_bucket (Majority.bucket_of ~majority o);
              match Majority.bucket_of ~majority o with
              | Majority.B_wrong -> wrong.(i) <- wrong.(i) + 1
              | Majority.B_bf -> bf.(i) <- bf.(i) + 1
              | Majority.B_crash -> cr.(i) <- cr.(i) + 1
              | Majority.B_timeout -> tmo.(i) <- tmo.(i) + 1
              | Majority.B_ok -> ())
            [ off; on ])
        kernel_pairs)
    (Par.chunk (List.length configs) pairs);
  let reports =
    List.mapi
      (fun i c ->
        let fails = wrong.(i) + bf.(i) + cr.(i) + tmo.(i) in
        let frac = if tot.(i) = 0 then 0.0 else float fails /. float tot.(i) in
        {
          config = c;
          total = tot.(i);
          wrong = wrong.(i);
          build_failures = bf.(i);
          crashes = cr.(i);
          timeouts = tmo.(i);
          fail_fraction = frac;
          above = frac <= 0.25 && not c.Config.manual_below;
        })
      configs
  in
  { per_mode; discarded_sharing; reports }

let to_table (t : t) =
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.config.Config.id;
          r.config.Config.sdk;
          r.config.Config.device;
          r.config.Config.driver;
          Config.device_type_name r.config.Config.device_type;
          string_of_int r.wrong;
          string_of_int r.build_failures;
          string_of_int r.crashes;
          string_of_int r.timeouts;
          Printf.sprintf "%.1f%%" (100. *. r.fail_fraction);
          (if r.above then "YES" else "no");
          (if r.config.Config.above_threshold then "YES" else "no");
        ])
      t.reports
  in
  Table_fmt.render_titled
    ~title:
      (Printf.sprintf
         "Table 1: configurations and reliability threshold (%d initial \
          kernels/mode, %d discarded for counter sharing)"
         t.per_mode t.discarded_sharing)
    ~header:
      [ "Conf."; "SDK"; "Device"; "Driver"; "Type"; "w"; "bf"; "c"; "to";
        "fail%"; "above?"; "paper" ]
    rows

let agreement_with_paper (t : t) =
  let agree =
    List.length
      (List.filter
         (fun r -> r.above = r.config.Config.above_threshold)
         t.reports)
  in
  (agree, List.length t.reports)
