(** Initial testing and the reliability threshold (paper section 7.1,
    Table 1).

    Every configuration runs a set of "initial kernels" (100 per CLsmith
    mode in the paper; scaled here by [per_mode]) at both optimisation
    levels. A configuration lies above the threshold when at most 25% of
    its results are build failures, runtime crashes, timeouts or wrong-code
    results (wrongness judged against the cross-configuration majority).
    The Xeon Phi is additionally forced below the threshold, as the paper
    did, because of its pathological struct compile times. *)

type config_report = {
  config : Config.t;
  total : int;
  wrong : int;
  build_failures : int;
  crashes : int;
  timeouts : int;
  fail_fraction : float;
  above : bool;
}

type t = {
  per_mode : int;
  discarded_sharing : int;
      (** kernels discarded for atomic-section counter sharing *)
  reports : config_report list;
}

val journal_header :
  ?fuel:int -> ?per_mode:int -> ?seed0:int -> unit -> Journal.header
(** Header describing a [run] with the same arguments (same defaults);
    [per_mode] is a scale parameter, the rest are identity. *)

val run :
  ?jobs:int ->
  ?fuel:int ->
  ?per_mode:int ->
  ?seed0:int ->
  ?sink:(Journal.cell -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  unit ->
  t
(** Default [per_mode] is 10 (the paper used 100).

    A cell is one (kernel, configuration) pair; both optimisation levels
    are journalled together as one record with opt ["*"] and a
    two-element outcome list. [sink]/[resume]/[exec_filter] behave
    exactly as in {!Campaign.run}: ordered streaming persistence,
    key-based replay that skips already-journalled cells, and the
    distributed-worker shard restriction. *)

val to_table : t -> string
(** Rendered in the shape of Table 1, including the computed
    above-threshold column and the paper's expectation. *)

val agreement_with_paper : t -> int * int
(** (configurations whose computed classification matches Table 1, total). *)
