type row = {
  base_fails : int;
  w : int;
  bf : int;
  c : int;
  timeout : int;
  stable : int;
}

let zero_row = { base_fails = 0; w = 0; bf = 0; c = 0; timeout = 0; stable = 0 }

type t = {
  bases_used : int;
  discarded_sharing : int;
  discarded_dead : int;
  variants_per_base : int;
  rows : ((int * bool) * row) list;
}

let liveness_config = Config.find 1

(* the liveness filter: inverting dead must change the observable result *)
let live_emi base =
  let normal = Driver.run liveness_config ~opt:true base in
  let inverted = Driver.run liveness_config ~opt:true (Variant.invert_dead base) in
  not (Outcome.equal normal inverted)

(* fold one (base, config, opt) cell's variant outcomes into its row *)
let apply_cell r outcomes =
  let computed =
    List.filter_map
      (function Outcome.Success s -> Some s | _ -> None)
      outcomes
  in
  if computed = [] then { r with base_fails = r.base_fails + 1 }
  else begin
    let distinct = List.sort_uniq String.compare computed in
    let r = if List.length distinct > 1 then { r with w = r.w + 1 } else r in
    let has p = List.exists p outcomes in
    let r =
      if has (function Outcome.Build_failure _ -> true | _ -> false) then
        { r with bf = r.bf + 1 }
      else r
    in
    let r =
      if
        has (function
          | Outcome.Crash _ | Outcome.Machine_crash _ | Outcome.Ub _ -> true
          | _ -> false)
      then { r with c = r.c + 1 }
      else r
    in
    let r =
      if has (function Outcome.Timeout -> true | _ -> false) then
        { r with timeout = r.timeout + 1 }
      else r
    in
    if List.length computed = List.length outcomes && List.length distinct = 1
    then { r with stable = r.stable + 1 }
    else r
  end

let opt_str opt = if opt then "+" else "-"

let journal_header ?fuel ?(bases = 15) ?(variants = 10) ?(seed0 = 50_000)
    ?config_ids () =
  let config_ids =
    match config_ids with Some l -> l | None -> Config.above_threshold_ids
  in
  Journal.make_header ~campaign:"table5"
    ~ident:
      [
        ("seed0", string_of_int seed0);
        ("fuel", match fuel with Some f -> string_of_int f | None -> "-");
        ("configs", String.concat "," (List.map string_of_int config_ids));
        ("variants", string_of_int variants);
      ]
    ~scale:[ ("bases", string_of_int bases) ]

let run ?jobs ?fuel ?(bases = 15) ?(variants = 10) ?(seed0 = 50_000) ?config_ids
    ?sink ?resume ?exec_filter () : t =
  let jobs = match jobs with Some j -> j | None -> Pool.recommended_jobs () in
  let config_ids =
    match config_ids with Some l -> l | None -> Config.above_threshold_ids
  in
  let configs = List.map Config.find config_ids in
  let gcfg = Gen_config.scaled Gen_config.All in
  let mode_name = Gen_config.mode_name Gen_config.All in
  Pool.with_pool ~jobs @@ fun pool ->
  (* phase 1: generation + liveness filter over candidate seeds, in
     parallel batches consumed in seed order *)
  let classify ~seed =
    let tc, info =
      Span.with_ ~cat:"gen" "generate" (fun () ->
          Generate.generate ~emi:true ~cfg:gcfg ~seed ())
    in
    if info.Generate.counter_sharing then Par.Reject `Sharing
    else if not (live_emi tc) then Par.Reject `Dead
    else Par.Accept (seed, tc)
  in
  let base_list, rejects = Par.collect pool ~n:bases ~seed0 ~classify in
  let keys =
    List.concat_map
      (fun c -> [ (c.Config.id, false); (c.Config.id, true) ])
      configs
  in
  (* phase 2: derive + prepare each base's variants (one task per base);
     the prepared variants are then shared by that base's cells. Always
     recomputed on resume: derivation is deterministic in the base seed. *)
  let prepared_bases =
    Pool.map pool
      ~f:(fun (seed, base) ->
        (seed, List.map Driver.prepare (Variant.variants ~base ~count:variants)))
      base_list
  in
  (* phase 3: one task per (base, config, opt-level) cell, base-major *)
  let tasks =
    List.concat_map
      (fun (seed, vs) ->
        List.concat_map
          (fun c -> [ (seed, vs, c, false); (seed, vs, c, true) ])
          configs)
      prepared_bases
  in
  let tasks_arr = Array.of_list tasks in
  let cell_of i outcomes =
    let seed, _, c, opt = tasks_arr.(i) in
    {
      Journal.index = i;
      seed;
      mode = mode_name;
      config = c.Config.id;
      opt = opt_str opt;
      outcomes;
      note = "";
    }
  in
  let sink =
    Option.map (fun emit i (outcomes, _stats) -> emit (cell_of i outcomes)) sink
  in
  let replayed =
    match resume with
    | None | Some [] -> None
    | Some cells ->
        let tbl = Journal.index_cells cells in
        Some
          (fun i ->
            let seed, _, c, opt = tasks_arr.(i) in
            match
              Hashtbl.find_opt tbl (mode_name, seed, c.Config.id, opt_str opt)
            with
            | Some { Journal.outcomes = [] ; _ } | None -> None
            | Some { Journal.outcomes; _ } -> Some (outcomes, Interp.zero_stats))
  in
  (* distributed worker: placeholders for non-replayed cells outside the
     leased shard; only sink-forwarded cells leave the worker *)
  let lookup =
    match exec_filter with
    | None -> replayed
    | Some keep ->
        Some
          (fun i ->
            match Option.bind replayed (fun f -> f i) with
            | Some r -> Some r
            | None ->
                if keep i then None
                else
                  Some
                    ( [ Outcome.Crash "skipped: outside shard" ],
                      Interp.zero_stats ))
  in
  let cell_outcomes =
    (* a cell's value is its variant outcome list; exceptions inside a cell
       surface as a Crash outcome for that cell's variants *)
    Par.run_resumable pool ?sink ?lookup
      ~f:(fun (_, vs, c, opt) ->
        List.fold_left_map
          (fun acc prep ->
            let o, st = Driver.run_prepared_stats ?fuel c ~opt prep in
            (Interp.add_stats acc st, o))
          Interp.zero_stats vs
        |> fun (stats, outcomes) -> (outcomes, stats))
      ~on_error:(fun e -> ([ Par.crash_of_exn e ], Interp.zero_stats))
      tasks
    |> List.map (fun (outcomes, stats) ->
           Par.record_cell stats outcomes;
           outcomes)
  in
  (* deterministic merge in task order *)
  let rows = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace rows k zero_row) keys;
  List.iter2
    (fun (_, _, c, opt) outcomes ->
      let key = (c.Config.id, opt) in
      Hashtbl.replace rows key (apply_cell (Hashtbl.find rows key) outcomes))
    tasks cell_outcomes;
  {
    bases_used = List.length base_list;
    discarded_sharing = Par.count rejects ~tag:`Sharing;
    discarded_dead = Par.count rejects ~tag:`Dead;
    variants_per_base = variants;
    rows = List.map (fun k -> (k, Hashtbl.find rows k)) keys;
  }

let to_table (t : t) =
  let header =
    "metric"
    :: List.map
         (fun ((id, opt), _) -> Printf.sprintf "%d%s" id (if opt then "+" else "-"))
         t.rows
    @ [ "Total" ]
  in
  let metric name get =
    name
    :: List.map (fun (_, r) -> string_of_int (get r)) t.rows
    @ [ string_of_int (List.fold_left (fun a (_, r) -> a + get r) 0 t.rows) ]
  in
  Table_fmt.render_titled
    ~title:
      (Printf.sprintf
         "Table 5: CLsmith+EMI (%d bases x %d variants; discarded %d for \
          counter sharing, %d by the liveness filter)"
         t.bases_used t.variants_per_base t.discarded_sharing t.discarded_dead)
    ~header
    [
      metric "base fails" (fun r -> r.base_fails);
      metric "w" (fun r -> r.w);
      metric "bf" (fun r -> r.bf);
      metric "c" (fun r -> r.c);
      metric "to" (fun r -> r.timeout);
      metric "stable" (fun r -> r.stable);
    ]
