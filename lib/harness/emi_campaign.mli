(** CLsmith+EMI metamorphic testing (paper section 7.4, Table 5).

    Base kernels are generated in ALL mode with 1–5 EMI blocks. Two filters
    apply, both from the paper:

    - counter-sharing bases are discarded (the atomic-section
      implementation bug — the paper lost 70 of 250 bases to it);
    - the {e liveness filter}: a base whose output does not change when the
      [dead] array is inverted has all its EMI blocks in already-dead code
      and is discarded ("we did not expect it would be fruitful to inject
      dead-by-construction code exclusively into code that is already
      dead").

    From each surviving base, variants are derived by the section-5 pruning
    strategies. Per (configuration, optimisation level):

    - a base is {b bad} when no variant terminates with a computed value;
    - a base {b induces wrong code} when two variants compute different
      values — no majority vote and no second configuration is needed,
      which is EMI testing's selling point;
    - a base induces bf / c / to when at least one variant does;
    - a base is {b stable} when all variants compute one identical value. *)

type row = {
  base_fails : int;
  w : int;
  bf : int;
  c : int;
  timeout : int;
  stable : int;
}

type t = {
  bases_used : int;
  discarded_sharing : int;
  discarded_dead : int;  (** liveness-filter discards *)
  variants_per_base : int;
  rows : ((int * bool) * row) list;
}

val journal_header :
  ?fuel:int ->
  ?bases:int ->
  ?variants:int ->
  ?seed0:int ->
  ?config_ids:int list ->
  unit ->
  Journal.header
(** Header describing a [run] with the same arguments (same defaults).
    [variants] is identity — it changes every cell's outcome list —
    while [bases] is scale. *)

val run :
  ?jobs:int ->
  ?fuel:int ->
  ?bases:int ->
  ?variants:int ->
  ?seed0:int ->
  ?config_ids:int list ->
  ?sink:(Journal.cell -> unit) ->
  ?resume:Journal.cell list ->
  ?exec_filter:(int -> bool) ->
  unit ->
  t
(** Defaults: 15 bases (paper: 180), 10 variants/base (paper: 40), the
    above-threshold configurations. [jobs] sizes the execution pool
    (default [Pool.recommended_jobs ()]); output is identical across
    [jobs]. [fuel] is the per-task soft timeout.

    A cell is one (base, configuration, opt level) and its journal record
    carries the full per-variant outcome list; [sink]/[resume]/
    [exec_filter] behave as in {!Campaign.run}. Base generation, the
    liveness filter and variant derivation are always recomputed on
    resume (deterministic). *)

val to_table : t -> string
