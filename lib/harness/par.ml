type ('a, 'r) verdict = Accept of 'a | Reject of 'r

let collect pool ~n ~seed0 ~classify =
  let batch = max 8 (2 * Pool.jobs pool) in
  (* scan verdicts in seed order; stop at the n-th acceptance so discard
     tallies match the sequential loop exactly *)
  let rec go seed acc rejects need =
    if need = 0 then (List.rev acc, List.rev rejects)
    else
      let seeds = List.init batch (fun i -> seed + i) in
      let verdicts = Pool.map pool ~f:(fun s -> classify ~seed:s) seeds in
      scan (seed + batch) acc rejects need verdicts
  and scan next_seed acc rejects need = function
    | _ when need = 0 -> (List.rev acc, List.rev rejects)
    | [] -> go next_seed acc rejects need
    | Accept a :: rest -> scan next_seed (a :: acc) rejects (need - 1) rest
    | Reject r :: rest -> scan next_seed acc (r :: rejects) need rest
  in
  if n <= 0 then ([], []) else go seed0 [] [] n

let count rejects ~tag = List.length (List.filter (fun r -> r = tag) rejects)

let crash_of_exn e =
  Outcome.Crash ("harness: uncaught exception: " ^ Printexc.to_string e)

let run_cells pool ~f cells = Pool.map_isolated pool ~f ~on_error:crash_of_exn cells

let chunk size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let c, rest = take size [] xs in
        go (c :: acc) rest
  in
  if size <= 0 then invalid_arg "Par.chunk" else go [] xs
