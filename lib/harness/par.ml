type ('a, 'r) verdict = Accept of 'a | Reject of 'r

let collect pool ~n ~seed0 ~classify =
  let batch = max 8 (2 * Pool.jobs pool) in
  (* scan verdicts in seed order; stop at the n-th acceptance so discard
     tallies match the sequential loop exactly *)
  let rec go seed acc rejects need =
    if need = 0 then (List.rev acc, List.rev rejects)
    else
      let seeds = List.init batch (fun i -> seed + i) in
      let verdicts = Pool.map pool ~f:(fun s -> classify ~seed:s) seeds in
      scan (seed + batch) acc rejects need verdicts
  and scan next_seed acc rejects need = function
    | _ when need = 0 -> (List.rev acc, List.rev rejects)
    | [] -> go next_seed acc rejects need
    | Accept a :: rest -> scan next_seed (a :: acc) rejects (need - 1) rest
    | Reject r :: rest -> scan next_seed acc (r :: rejects) need rest
  in
  if n <= 0 then ([], []) else go seed0 [] [] n

let count rejects ~tag = List.length (List.filter (fun r -> r = tag) rejects)

(* ------------------------------------------------------------------ *)
(* Deterministic campaign metrics                                      *)
(* ------------------------------------------------------------------ *)

(* These totals are fed exclusively from the fixed (kernel, config, opt)
   cell grid — never from [collect]'s generation batches, whose evaluated
   seed set depends on the pool size — so they are [-j]-invariant. *)
let m_cells = Metrics.counter "cells.completed"
let m_steps = Metrics.counter "interp.steps"
let m_barriers = Metrics.counter "interp.barriers"
let m_atomics = Metrics.counter "interp.atomics"
let m_race_checks = Metrics.counter "interp.race_checks"
let h_steps = Metrics.histogram "interp.steps_per_cell"

let outcome_counter =
  let by_tag =
    List.map
      (fun tag -> (tag, Metrics.counter ("outcomes." ^ tag)))
      [ "ok"; "bf"; "c"; "to"; "mc"; "ub" ]
  in
  fun o -> List.assoc (Outcome.short_tag o) by_tag

let record_cell (st : Interp.stats) outcomes =
  Metrics.incr m_cells;
  Metrics.add m_steps st.Interp.steps;
  Metrics.add m_barriers st.Interp.barriers;
  Metrics.add m_atomics st.Interp.atomics;
  Metrics.add m_race_checks st.Interp.race_checks;
  Metrics.observe h_steps st.Interp.steps;
  List.iter Costprof.record st.Interp.prof;
  List.iter (fun o -> Metrics.incr (outcome_counter o)) outcomes

let bucket_counter =
  let by_bucket =
    List.map
      (fun b -> (b, Metrics.counter ("cells.class." ^ Majority.bucket_name b)))
      [ Majority.B_wrong; B_ok; B_bf; B_crash; B_timeout ]
  in
  fun b -> List.assoc b by_bucket

let record_bucket b = Metrics.incr (bucket_counter b)

let crash_of_exn e =
  Outcome.Crash ("harness: uncaught exception: " ^ Printexc.to_string e)

let run_resumable pool ?sink ?(lookup = fun _ -> None) ~f ~on_error cells =
  let tasks = Array.of_list cells in
  let n = Array.length tasks in
  let results = Array.init n lookup in
  let missing =
    List.filter (fun i -> results.(i) = None) (List.init n Fun.id)
  in
  let missing_arr = Array.of_list missing in
  (* the sink sees the merged sequence (replayed + fresh) in global task
     order: a fresh result at global index g is only emitted once every
     cell before g is available, and replayed cells ride along in the
     same prefix flush *)
  let next = ref 0 in
  let flush () =
    match sink with
    | None -> ()
    | Some emit ->
        while !next < n && results.(!next) <> None do
          (match results.(!next) with
          | Some r -> emit !next r
          | None -> assert false);
          incr next
        done
  in
  flush ();
  let on_result =
    Option.map
      (fun _ mi r ->
        results.(missing_arr.(mi)) <- Some r;
        flush ())
      sink
  in
  let fresh =
    Pool.map_isolated ?on_result pool ~f ~on_error
      (List.map (fun i -> tasks.(i)) missing)
  in
  List.iter2 (fun i r -> results.(i) <- Some r) missing fresh;
  flush ();
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)

let run_cells pool ?sink ~f cells =
  run_resumable pool ?sink ~f ~on_error:crash_of_exn cells

let chunk size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let c, rest = take size [] xs in
        go (c :: acc) rest
  in
  if size <= 0 then invalid_arg "Par.chunk" else go [] xs
