(** Parallel building blocks shared by the campaign drivers.

    Everything here preserves the sequential drivers' observable output
    bit-for-bit: work is dispatched to an execution pool but consumed in
    stable task order, so a campaign's tables are identical across [-j]
    values and across runs at the same seed. *)

type ('a, 'r) verdict = Accept of 'a | Reject of 'r

val collect :
  Pool.t ->
  n:int ->
  seed0:int ->
  classify:(seed:int -> ('a, 'r) verdict) ->
  'a list * 'r list
(** Evaluate candidate seeds [seed0, seed0+1, ...] in parallel batches and
    scan the verdicts in seed order, exactly as the sequential
    generate-and-filter loops did: the first [n] accepted candidates are
    returned (in seed order) together with the rejection tags of every
    seed consumed before the [n]-th acceptance. Seeds evaluated beyond
    that point are discarded unobserved, so the result — including the
    discard tallies — is independent of batch size and [-j]. [classify]
    must be pure. *)

val count : 'r list -> tag:'r -> int
(** Occurrences of [tag] in a rejection list. *)

val run_cells : Pool.t -> f:('a -> Outcome.t) -> 'a list -> Outcome.t list
(** Map campaign cells through the pool with exception isolation: a cell
    whose harness code raises becomes [Outcome.Crash] instead of killing
    the campaign, while fatal exhaustion ([Out_of_memory],
    [Stack_overflow]) is re-raised. Results are in input order. *)

val chunk : int -> 'a list -> 'a list list
(** Split into consecutive chunks of the given size (the last may be
    shorter) — used to regroup a flat cell-result list by kernel. *)
