(** Parallel building blocks shared by the campaign drivers.

    Everything here preserves the sequential drivers' observable output
    bit-for-bit: work is dispatched to an execution pool but consumed in
    stable task order, so a campaign's tables are identical across [-j]
    values and across runs at the same seed. *)

type ('a, 'r) verdict = Accept of 'a | Reject of 'r

val collect :
  Pool.t ->
  n:int ->
  seed0:int ->
  classify:(seed:int -> ('a, 'r) verdict) ->
  'a list * 'r list
(** Evaluate candidate seeds [seed0, seed0+1, ...] in parallel batches and
    scan the verdicts in seed order, exactly as the sequential
    generate-and-filter loops did: the first [n] accepted candidates are
    returned (in seed order) together with the rejection tags of every
    seed consumed before the [n]-th acceptance. Seeds evaluated beyond
    that point are discarded unobserved, so the result — including the
    discard tallies — is independent of batch size and [-j]. [classify]
    must be pure. *)

val count : 'r list -> tag:'r -> int
(** Occurrences of [tag] in a rejection list. *)

val record_cell : Interp.stats -> Outcome.t list -> unit
(** Fold one completed cell into the global {!Metrics} registry: cell
    count, interpreter work totals and histogram, and one
    ["outcomes.<tag>"] tick per outcome. Call it from the merged result
    list (replayed cells with {!Interp.zero_stats}), never from
    generation batches: {!collect} evaluates a pool-size-dependent set
    of seeds, so anything counted there would break the [-j]-invariance
    the metrics tests assert. *)

val record_bucket : Majority.bucket -> unit
(** One ["cells.class.<name>"] tick — the campaign tables' post-vote
    classification tallies. *)

val crash_of_exn : exn -> Outcome.t
(** The campaigns' exception-isolation policy: an uncaught harness
    exception becomes a crash cell. *)

val run_resumable :
  Pool.t ->
  ?sink:(int -> 'b -> unit) ->
  ?lookup:(int -> 'b option) ->
  f:('a -> 'b) ->
  on_error:(exn -> 'b) ->
  'a list ->
  'b list
(** The campaigns' cell engine with persistence hooks, preserving the
    order-preserving [-j] contract:

    - [lookup i] replays an already-journalled result for task [i]
      (resume): replayed cells never hit the pool, only the remainder is
      scheduled;
    - [sink] receives every result — replayed and fresh alike — in
      global task order, streamed as the ready prefix grows (a fresh
      cell is delivered as soon as it and all predecessors are
      available, not at batch end), so a journal written from it is
      crash-safe and byte-identical to an uninterrupted run's.

    Exception isolation as in {!Pool.map_isolated}: non-fatal exceptions
    become [on_error e]; fatal exhaustion stops the sink stream at its
    index and re-raises. Results are in input order. *)

val run_cells :
  Pool.t ->
  ?sink:(int -> Outcome.t -> unit) ->
  f:('a -> Outcome.t) ->
  'a list ->
  Outcome.t list
(** [run_resumable] with the {!crash_of_exn} isolation policy and no
    replay: a cell whose harness code raises becomes [Outcome.Crash]
    instead of killing the campaign, while fatal exhaustion
    ([Out_of_memory], [Stack_overflow]) is re-raised. *)

val chunk : int -> 'a list -> 'a list list
(** Split into consecutive chunks of the given size (the last may be
    shorter) — used to regroup a flat cell-result list by kernel. *)
