open Ast

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

module String_map = Map.Make (String)

type env = {
  tyenv : Ty.tyenv;
  funcs : (Ty.t list * Ty.t) String_map.t;
  vars : (Ty.t * Ty.space) String_map.t;
  dead_size : int;
}

let env_of_program (p : program) =
  let tyenv = Ty.tyenv_of_list p.aggregates in
  let funcs =
    List.fold_left
      (fun m (f : func) ->
        String_map.add f.fname (List.map snd f.params, f.ret) m)
      String_map.empty p.funcs
  in
  let vars =
    List.fold_left
      (fun m (ca : const_array) ->
        let cols = if Array.length ca.ca_data = 0 then 0
          else Array.length ca.ca_data.(0) in
        let ty =
          if Array.length ca.ca_data = 1 then
            Ty.Arr (Ty.Scalar ca.ca_elem, cols)
          else
            Ty.Arr (Ty.Arr (Ty.Scalar ca.ca_elem, cols), Array.length ca.ca_data)
        in
        String_map.add ca.ca_name (ty, Ty.Constant) m)
      String_map.empty p.constant_arrays
  in
  { tyenv; funcs; vars; dead_size = p.dead_size }

let bind_var env name ty space =
  { env with vars = String_map.add name (ty, space) env.vars }

let lookup_var env name = String_map.find_opt name env.vars

let int_t = Ty.Scalar Ty.int_scalar

(* Result type of a binary operation; mirrors {!Scalar.binop} /
   {!Vecval.binop}. *)
let binop_result (op : Op.binop) ta tb =
  let comparisonish = Op.is_comparison op || Op.is_shortcircuit op in
  match (ta, tb) with
  | Ty.Scalar a, Ty.Scalar b ->
      if comparisonish then int_t
      else if op = Op.Comma then tb
      else (
        match op with
        | Op.Shl | Op.Shr -> Ty.Scalar (Ty.promote a)
        | _ -> Ty.Scalar (Ty.usual_arith a b))
  | Ty.Vector (a, la), Ty.Vector (b, lb) ->
      if la <> lb then
        err "vector length mismatch: %s vs %s" (Ty.to_string ta)
          (Ty.to_string tb)
      else if a <> b then
        err "vector element type mismatch (no implicit conversion): %s vs %s"
          (Ty.to_string ta) (Ty.to_string tb)
      else if comparisonish then Ty.Vector ({ a with sign = Ty.Signed }, la)
      else if op = Op.Comma then tb
      else ta
  | Ty.Vector (a, la), Ty.Scalar _ ->
      (* scalar widens to the vector's element type *)
      if comparisonish then Ty.Vector ({ a with sign = Ty.Signed }, la) else ta
  | Ty.Scalar _, Ty.Vector (b, lb) ->
      if op = Op.Shl || op = Op.Shr then
        err "shift with vector count and scalar value"
      else if comparisonish then Ty.Vector ({ b with sign = Ty.Signed }, lb)
      else tb
  | _ ->
      if op = Op.Comma then tb
      else if Op.is_comparison op && Ty.equal ta tb && Ty.is_pointer ta then
        int_t
      else
        err "operator %s requires integer operands, got %s and %s"
          (Op.binop_to_string op) (Ty.to_string ta) (Ty.to_string tb)

let scalar_convertible t = Ty.is_integer t

let rec type_of_expr env (e : expr) : Ty.t =
  match e with
  | Const c -> Ty.Scalar c.cty
  | Var v -> (
      match lookup_var env v with
      | Some (t, _) -> t
      | None -> err "unbound variable %s" v)
  | Thread_id k -> (
      match k with
      | Op.Global_id _ | Op.Local_id _ | Op.Group_id _ | Op.Global_size _
      | Op.Local_size _ | Op.Num_groups _ ->
          Ty.size_t
      | Op.Global_linear_id | Op.Local_linear_id | Op.Group_linear_id
      | Op.Local_linear_size | Op.Global_linear_size ->
          Ty.uint)
  | Unop (op, a) -> (
      let ta = type_of_expr env a in
      match (op, ta) with
      | Op.LogNot, Ty.Scalar _ -> int_t
      | Op.LogNot, Ty.Vector (s, l) -> Ty.Vector ({ s with sign = Ty.Signed }, l)
      | (Op.Neg | Op.BitNot), Ty.Scalar s -> Ty.Scalar (Ty.promote s)
      | (Op.Neg | Op.BitNot), Ty.Vector _ -> ta
      | _, _ ->
          err "unary %s on non-integer type %s" (Op.unop_to_string op)
            (Ty.to_string ta))
  | Binop (op, a, b) | Safe_binop (op, a, b) ->
      binop_result op (type_of_expr env a) (type_of_expr env b)
  | Safe_neg a -> (
      match type_of_expr env a with
      | Ty.Scalar s -> Ty.Scalar (Ty.promote s)
      | Ty.Vector _ as t -> t
      | t -> err "safe_unary_minus on %s" (Ty.to_string t))
  | Builtin (b, args) -> type_of_builtin env b args
  | Call (f, args) -> (
      match String_map.find_opt f env.funcs with
      | None -> err "call to undefined function %s" f
      | Some (params, ret) ->
          if List.length params <> List.length args then
            err "%s: arity mismatch" f;
          List.iter2
            (fun pt a ->
              let at = type_of_expr env a in
              if Ty.equal pt at then ()
              else if scalar_convertible pt && scalar_convertible at then ()
              else
                err "%s: argument type %s does not match parameter type %s" f
                  (Ty.to_string at) (Ty.to_string pt))
            params args;
          ret)
  | Cast (t, a) -> (
      let ta = type_of_expr env a in
      match (t, ta) with
      | Ty.Scalar _, Ty.Scalar _ -> t
      | Ty.Vector (_, l1), Ty.Vector (_, l2) when l1 = l2 -> t
      | Ty.Vector _, Ty.Scalar _ -> t (* splat *)
      | Ty.Ptr _, Ty.Ptr _ when Ty.equal t ta -> t
      | _ -> err "invalid cast from %s to %s" (Ty.to_string ta) (Ty.to_string t))
  | Cond (c, a, b) -> (
      (match type_of_expr env c with
      | Ty.Scalar _ -> ()
      | t -> err "?: condition must be scalar, got %s" (Ty.to_string t));
      let ta = type_of_expr env a and tb = type_of_expr env b in
      match (ta, tb) with
      | Ty.Scalar x, Ty.Scalar y -> Ty.Scalar (Ty.usual_arith x y)
      | _ when Ty.equal ta tb -> ta
      | _ -> err "?: branches %s vs %s" (Ty.to_string ta) (Ty.to_string tb))
  | Field (a, f) -> field_type env (type_of_expr env a) f ~arrow:false
  | Arrow (a, f) -> (
      match type_of_expr env a with
      | Ty.Ptr (_, t) -> field_type env t f ~arrow:true
      | t -> err "-> on non-pointer %s" (Ty.to_string t))
  | Index (a, i) -> (
      (match type_of_expr env i with
      | Ty.Scalar _ -> ()
      | t -> err "index must be scalar, got %s" (Ty.to_string t));
      match type_of_expr env a with
      | Ty.Arr (t, _) -> t
      | Ty.Ptr (_, t) -> t
      | t -> err "indexing non-array %s" (Ty.to_string t))
  | Deref a -> (
      match type_of_expr env a with
      | Ty.Ptr (_, t) -> t
      | t -> err "dereference of non-pointer %s" (Ty.to_string t))
  | Addr_of a ->
      let t = type_of_expr env a in
      let sp = space_of_lvalue env a in
      Ty.Ptr (sp, t)
  | Vec_lit (s, l, args) ->
      let count =
        List.fold_left
          (fun n a ->
            match type_of_expr env a with
            | Ty.Scalar _ -> n + 1
            | Ty.Vector (s', l') ->
                if s' <> s then
                  err "vector literal component element type %s, expected %s"
                    (Ty.scalar_name s') (Ty.scalar_name s);
                n + Ty.vlen_to_int l'
            | t -> err "vector literal component of type %s" (Ty.to_string t))
          0 args
      in
      if count <> Ty.vlen_to_int l then
        err "vector literal has %d components, expected %d" count
          (Ty.vlen_to_int l);
      Ty.Vector (s, l)
  | Swizzle (a, idxs) -> (
      match type_of_expr env a with
      | Ty.Vector (s, l) ->
          let n = Ty.vlen_to_int l in
          List.iter
            (fun i -> if i < 0 || i >= n then err "swizzle index %d out of range" i)
            idxs;
          (match List.length idxs with
          | 1 -> Ty.Scalar s
          | k -> (
              match Ty.vlen_of_int k with
              | Some l' -> Ty.Vector (s, l')
              | None -> err "swizzle selects %d components" k))
      | t -> err "swizzle on non-vector %s" (Ty.to_string t))
  | Atomic (op, p, args) -> (
      match type_of_expr env p with
      | Ty.Ptr ((Ty.Local | Ty.Global), Ty.Scalar s)
        when s.Ty.width = Ty.W32 ->
          let expected =
            match op with
            | Op.A_inc | Op.A_dec -> 0
            | Op.A_cmpxchg -> 2
            | _ -> 1
          in
          if List.length args <> expected then
            err "%s: expected %d operand(s)" (Op.atomic_name op) expected;
          List.iter
            (fun a ->
              match type_of_expr env a with
              | Ty.Scalar _ -> ()
              | t -> err "atomic operand of type %s" (Ty.to_string t))
            args;
          Ty.Scalar s
      | t ->
          err "%s: first argument must point to a 32-bit integer in local or \
               global memory, got %s"
            (Op.atomic_name op) (Ty.to_string t))

and type_of_builtin env b args =
  let n = Op.builtin_arity b in
  if List.length args <> n then err "%s: arity mismatch" (Op.builtin_name b);
  let tys = List.map (type_of_expr env) args in
  let all_same () =
    match tys with
    | t0 :: rest ->
        List.iter
          (fun t ->
            if not (Ty.equal t t0) then
              err "%s: mixed operand types %s vs %s" (Op.builtin_name b)
                (Ty.to_string t0) (Ty.to_string t))
          rest;
        t0
    | [] -> assert false
  in
  match b with
  | Op.Clamp | Op.Safe_clamp -> (
      match tys with
      | [ (Ty.Vector (s, _) as tv); Ty.Scalar s1; Ty.Scalar s2 ]
        when s1 = s && s2 = s ->
          tv
      | _ -> all_same ())
  | Op.Rotate | Op.Min | Op.Max | Op.Add_sat | Op.Sub_sat | Op.Hadd
  | Op.Mul_hi ->
      all_same ()
  | Op.Abs -> (
      match all_same () with
      | Ty.Scalar s -> Ty.Scalar { s with sign = Ty.Unsigned }
      | Ty.Vector (s, l) -> Ty.Vector ({ s with sign = Ty.Unsigned }, l)
      | t -> err "abs on %s" (Ty.to_string t))

and field_type env t f ~arrow =
  match t with
  | Ty.Named n -> (
      match Ty.find_aggregate_opt env.tyenv n with
      | None -> err "unknown aggregate %s" n
      | Some agg -> (
          match List.find_opt (fun (fl : Ty.field) -> fl.fname = f) agg.fields with
          | Some fl -> fl.fty
          | None -> err "aggregate %s has no field %s" n f))
  | _ ->
      err "%s on non-aggregate type %s"
        (if arrow then "->" else ".")
        (Ty.to_string t)

and space_of_lvalue env (e : expr) : Ty.space =
  match e with
  | Var v -> (
      match lookup_var env v with
      | Some (_, sp) ->
          if sp = Ty.Constant then err "constant data is not an lvalue: %s" v;
          sp
      | None -> err "unbound variable %s" v)
  | Field (a, _) -> space_of_lvalue env a
  | Index (a, _) -> (
      match type_of_expr env a with
      | Ty.Ptr (sp, _) -> sp
      | Ty.Arr _ -> space_of_lvalue env a
      | t -> err "indexing non-array %s" (Ty.to_string t))
  | Arrow (a, _) | Deref a -> (
      match type_of_expr env a with
      | Ty.Ptr (sp, _) -> sp
      | t -> err "dereference of non-pointer %s" (Ty.to_string t))
  | Swizzle (a, idxs) ->
      if List.length idxs <> 1 then err "multi-component swizzle lvalue";
      space_of_lvalue env a
  | _ -> err "not an lvalue: %s" (Pp.expr_to_string e)

let is_lvalue env e =
  match space_of_lvalue env e with
  | (_ : Ty.space) -> true
  | exception Type_error _ -> false

(* Initialiser checking: scalar initialisers convert implicitly; brace lists
   follow C's shape for structs/arrays; a union brace list initialises the
   first field. *)
let rec check_init env (t : Ty.t) (i : init) =
  match (t, i) with
  | Ty.Ptr _, I_expr (Const c) when c.value = 0L -> () (* null constant *)
  | _, I_expr e ->
      let te = type_of_expr env e in
      if Ty.equal t te then ()
      else if scalar_convertible t && scalar_convertible te then ()
      else
        err "initialiser of type %s for declaration of type %s"
          (Ty.to_string te) (Ty.to_string t)
  | Ty.Named n, I_list is -> (
      match Ty.find_aggregate_opt env.tyenv n with
      | None -> err "unknown aggregate %s" n
      | Some agg ->
          if agg.is_union then (
            match (agg.fields, is) with
            | f :: _, [ i0 ] -> check_init env f.fty i0
            | _, _ -> err "union initialiser must have exactly one element")
          else begin
            if List.length is > List.length agg.fields then
              err "too many initialisers for struct %s" n;
            List.iteri
              (fun k ik -> check_init env (List.nth agg.fields k).fty ik)
              is
          end)
  | Ty.Arr (et, sz), I_list is ->
      if List.length is > sz then err "too many array initialisers";
      List.iter (check_init env et) is
  | Ty.Vector (s, l), I_list is ->
      if List.length is <> Ty.vlen_to_int l then
        err "vector initialiser arity mismatch";
      List.iter (check_init env (Ty.Scalar s)) is
  | _, I_list _ ->
      err "brace initialiser for non-aggregate type %s" (Ty.to_string t)

let assignment_compatible env ~lhs ~rhs =
  if Ty.equal lhs rhs then true
  else
    match (lhs, rhs) with
    | Ty.Scalar _, Ty.Scalar _ -> true
    | Ty.Vector (s1, l1), Ty.Vector (s2, l2) -> s1 = s2 && l1 = l2
    | Ty.Named a, Ty.Named b -> String.equal a b
    | Ty.Vector _, Ty.Scalar _ -> true (* scalar splats on assignment *)
    | _ -> ignore env; false

let rec check_stmt env ~ret ~in_loop (s : stmt) : env =
  match s with
  | Decl d ->
      (match d.dinit with
      | None -> ()
      | Some i -> check_init env d.dty i);
      (match (d.dspace, d.dty) with
      | (Ty.Global | Ty.Constant), _ ->
          err "declaration %s: only private and local declarations are allowed"
            d.dname
      | Ty.Local, _ when d.dinit <> None ->
          err "local-memory declaration %s cannot have an initialiser" d.dname
      | _ -> ());
      bind_var env d.dname d.dty d.dspace
  | Assign (l, aop, r) ->
      let tl = type_of_expr env l in
      let (_ : Ty.space) = space_of_lvalue env l in
      let tr = type_of_expr env r in
      (match aop with
      | A_simple ->
          if not (assignment_compatible env ~lhs:tl ~rhs:tr) then
            err "cannot assign %s to %s" (Ty.to_string tr) (Ty.to_string tl)
      | A_op op ->
          let t = binop_result op tl tr in
          if not (assignment_compatible env ~lhs:tl ~rhs:t) then
            err "compound assignment result %s incompatible with %s"
              (Ty.to_string t) (Ty.to_string tl));
      env
  | Expr e ->
      let (_ : Ty.t) = type_of_expr env e in
      env
  | If (c, b1, b2) ->
      (match type_of_expr env c with
      | Ty.Scalar _ -> ()
      | t -> err "if condition must be scalar, got %s" (Ty.to_string t));
      check_block env ~ret ~in_loop b1;
      check_block env ~ret ~in_loop b2;
      env
  | For { f_init; f_cond; f_update; f_body } ->
      let env' =
        match f_init with
        | None -> env
        | Some s -> check_stmt env ~ret ~in_loop s
      in
      (match f_cond with
      | None -> ()
      | Some c -> (
          match type_of_expr env' c with
          | Ty.Scalar _ -> ()
          | t -> err "for condition must be scalar, got %s" (Ty.to_string t)));
      (match f_update with
      | None -> ()
      | Some s -> ignore (check_stmt env' ~ret ~in_loop:true s));
      check_block env' ~ret ~in_loop:true f_body;
      env
  | While (c, b) ->
      (match type_of_expr env c with
      | Ty.Scalar _ -> ()
      | t -> err "while condition must be scalar, got %s" (Ty.to_string t));
      check_block env ~ret ~in_loop:true b;
      env
  | Break | Continue ->
      if not in_loop then err "break/continue outside a loop";
      env
  | Return None ->
      if not (Ty.equal ret Ty.Void) then err "return without value";
      env
  | Return (Some e) ->
      let t = type_of_expr env e in
      if Ty.equal ret Ty.Void then err "return with value in void function";
      if not (assignment_compatible env ~lhs:ret ~rhs:t) then
        err "return type %s, expected %s" (Ty.to_string t) (Ty.to_string ret);
      env
  | Barrier _ -> env
  | Block b ->
      check_block env ~ret ~in_loop b;
      env
  | Emi { emi_lo; emi_hi; emi_body; _ } ->
      if env.dead_size = 0 then err "EMI block in a program without dead array";
      if not (0 <= emi_lo && emi_lo < emi_hi && emi_hi < env.dead_size) then
        err "EMI guard indices (%d, %d) out of range for dead[%d]" emi_lo
          emi_hi env.dead_size;
      check_block env ~ret ~in_loop emi_body;
      env

and check_block env ~ret ~in_loop b =
  let (_ : env) =
    List.fold_left (fun env s -> check_stmt env ~ret ~in_loop s) env b
  in
  ()

let check_func env ~kernel (f : func) =
  if kernel && not (Ty.equal f.ret Ty.Void) then
    err "kernel %s must return void" f.fname;
  let env =
    List.fold_left
      (fun env (n, t) ->
        match t with
        | Ty.Ptr (sp, _) when kernel ->
            if sp = Ty.Private then
              err "kernel parameter %s: pointer must be global/constant/local" n;
            bind_var env n t Ty.Private
        | _ -> bind_var env n t Ty.Private)
      env f.params
  in
  check_block env ~ret:f.ret ~in_loop:false f.body

let check_no_recursion (p : program) =
  (* Call-graph acyclicity; OpenCL C forbids recursion. *)
  let callees (f : func) =
    fold_exprs
      (fun acc e -> match e with Call (g, _) -> g :: acc | _ -> acc)
      [] f.body
  in
  let graph =
    List.map (fun f -> (f.fname, callees f)) (p.kernel :: p.funcs)
  in
  let rec visit path name =
    if List.mem name path then
      err "recursion through %s" (String.concat " -> " (List.rev (name :: path)));
    match List.assoc_opt name graph with
    | None -> ()
    | Some cs -> List.iter (visit (name :: path)) cs
  in
  List.iter (fun (n, _) -> visit [] n) graph

let check_program (p : program) =
  Span.with_ ~cat:"check" "typecheck" @@ fun () ->
  match
    let env = env_of_program p in
    check_no_recursion p;
    List.iter (fun f -> check_func env ~kernel:false f) p.funcs;
    check_func env ~kernel:true p.kernel
  with
  | () -> Ok ()
  | exception Type_error m -> Error m

let check_testcase (tc : testcase) =
  match check_program tc.prog with
  | Error _ as e -> e
  | Ok () -> (
      match
        let gx, gy, gz = tc.global_size and lx, ly, lz = tc.local_size in
        if gx <= 0 || gy <= 0 || gz <= 0 || lx <= 0 || ly <= 0 || lz <= 0 then
          err "NDRange sizes must be positive";
        if gx mod lx <> 0 || gy mod ly <> 0 || gz mod lz <> 0 then
          err "work-group size must divide the global size";
        let params = tc.prog.kernel.params in
        if List.length params <> List.length tc.buffers then
          err "testcase provides %d buffers for %d kernel parameters"
            (List.length tc.buffers) (List.length params);
        List.iter2
          (fun (pn, pt) (bn, spec) ->
            if not (String.equal pn bn) then
              err "buffer %s bound to parameter %s" bn pn;
            match (spec, pt) with
            | Buf_dead _, _ when tc.prog.dead_size = 0 ->
                err "dead buffer for a program with no EMI support"
            | _, Ty.Ptr ((Ty.Global | Ty.Constant), _) -> ()
            | _, _ -> err "kernel parameter %s must be a global pointer" pn)
          params tc.buffers
      with
      | () -> Ok ()
      | exception Type_error m -> Error m)
