type t = Unix_sock of string | Tcp of string * int

(* one shared payload ceiling for every socket surface: dist frames and
   serve request bodies reject anything larger *)
let max_payload = 16 * 1024 * 1024

let of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or HOST:PORT" s)
  | Some _ when String.length s > 5 && String.sub s 0 5 = "unix:" ->
      let path = String.sub s 5 (String.length s - 5) in
      Ok (Unix_sock path)
  | Some _ -> (
      (* HOST:PORT, split on the last colon *)
      match String.rindex_opt s ':' with
      | None -> assert false
      | Some i -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
          | _ ->
              Error
                (Printf.sprintf "address %S: bad port %S (or empty host)" s
                   port)))

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let sockaddr_of = function
  | Unix_sock p -> Ok (Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.ADDR_INET (ip, port))
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              Error (Printf.sprintf "host %S has no address" host)
          | { Unix.h_addr_list; _ } ->
              Ok (Unix.ADDR_INET (h_addr_list.(0), port))
          | exception Not_found ->
              Error (Printf.sprintf "host %S not found" host)))

let cleanup = function
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let listen ?(backlog = 16) addr =
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok sockaddr -> (
      (* a stale unix socket file from a killed process must not block
         the rebind *)
      (match addr with
      | Unix_sock path when Sys.file_exists path -> cleanup addr
      | _ -> ());
      let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd sockaddr;
        Unix.listen fd backlog;
        Ok fd
      with Unix.Unix_error (err, fn, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

let default_retry_pause = 0.5

let connect ?(retries = 0) ?(pause = default_retry_pause) addr =
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok sockaddr ->
      let rec attempt left =
        let fd =
          Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
        in
        match Unix.connect fd sockaddr with
        | () -> Ok fd
        | exception Unix.Unix_error (err, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            let transient =
              match err with
              | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET -> true
              | _ -> false
            in
            if transient && left > 0 then begin
              Unix.sleepf pause;
              attempt (left - 1)
            end
            else
              Error
                (Printf.sprintf "connect %s: %s" (to_string addr)
                   (Unix.error_message err))
      in
      attempt retries

let write_all fd bytes =
  let n = String.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd bytes !written (n - !written)
  done
