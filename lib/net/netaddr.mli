(** Shared socket bootstrap: endpoint addresses, listeners, clients.

    Both socket surfaces of the system — the distributed fabric
    ([campaign coordinate] / [worker]) and the corpus service
    ([campaign serve] / [client]) — speak the same address grammar,
    [unix:PATH] or [HOST:PORT], and need the same listener setup
    (stale-socket unlink, [SO_REUSEADDR], bind, listen) and
    retry-until-up client connect. This module is that bootstrap,
    factored out so neither side duplicates it. *)

type t = Unix_sock of string | Tcp of string * int

val max_payload : int
(** 16 MiB: the shared ceiling on a dist wire frame and on a serve
    HTTP request body. *)

val of_string : string -> (t, string) result
(** Parse [unix:PATH] or [HOST:PORT] (port split on the last colon). *)

val to_string : t -> string

val sockaddr_of : t -> (Unix.sockaddr, string) result
(** Resolve to a connectable/bindable address ([Tcp] hosts via
    [gethostbyname] when not a dotted quad). *)

val listen : ?backlog:int -> t -> (Unix.file_descr, string) result
(** Bound, listening socket: unlinks a stale unix-socket file, sets
    [SO_REUSEADDR]. Backlog defaults to 16. *)

val cleanup : t -> unit
(** Unlink a unix socket path; a no-op for TCP. Never raises. *)

val connect :
  ?retries:int -> ?pause:float -> t -> (Unix.file_descr, string) result
(** Connect, retrying transient refusals ([ECONNREFUSED] / [ENOENT] /
    [ECONNRESET]) up to [retries] times, [pause] seconds apart
    (defaults: no retries, 0.5 s). *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, looping over short writes. Raises
    [Unix.Unix_error] on a dead peer. *)
