type construct = { kind : string; loc : int; path : string; n : int }

type cell = {
  khash : string;
  config : int;
  opt : string;
  ticks : int;
  constructs : construct list;
}

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* ------------------------------------------------------------------ *)
(* Accumulator                                                         *)
(* ------------------------------------------------------------------ *)

(* (khash, config, opt) -> per-cell tick total and per-(kind, loc)
   construct counts. Addition is commutative, so the table contents are
   independent of arrival order; [snapshot] sorts, so the emitted
   profile is byte-identical across -j values as long as the same cell
   set is recorded — which the ordered-merge fold point guarantees. *)
type slot = {
  mutable s_ticks : int;
  counts : (string * int, string * int ref) Hashtbl.t;
}

let acc_m = Mutex.create ()
let acc : (string * int * string, slot) Hashtbl.t = Hashtbl.create 64

let record (c : cell) =
  Mutex.lock acc_m;
  let key = (c.khash, c.config, c.opt) in
  let slot =
    match Hashtbl.find_opt acc key with
    | Some s -> s
    | None ->
        let s = { s_ticks = 0; counts = Hashtbl.create 64 } in
        Hashtbl.add acc key s;
        s
  in
  slot.s_ticks <- slot.s_ticks + c.ticks;
  List.iter
    (fun k ->
      match Hashtbl.find_opt slot.counts (k.kind, k.loc) with
      | Some (_, r) -> r := !r + k.n
      | None -> Hashtbl.add slot.counts (k.kind, k.loc) (k.path, ref k.n))
    c.constructs;
  Mutex.unlock acc_m

let snapshot () =
  Mutex.lock acc_m;
  let cells =
    Hashtbl.fold
      (fun (khash, config, opt) slot rest ->
        let constructs =
          Hashtbl.fold
            (fun (kind, loc) (path, r) cs -> { kind; loc; path; n = !r } :: cs)
            slot.counts []
          |> List.sort (fun a b -> compare (a.loc, a.kind) (b.loc, b.kind))
        in
        { khash; config; opt; ticks = slot.s_ticks; constructs } :: rest)
      acc []
  in
  Mutex.unlock acc_m;
  List.sort (fun a b -> compare (a.khash, a.config, a.opt) (b.khash, b.config, b.opt)) cells

let reset () =
  Mutex.lock acc_m;
  Hashtbl.reset acc;
  Mutex.unlock acc_m

(* ------------------------------------------------------------------ *)
(* Checksummed JSONL file                                              *)
(* ------------------------------------------------------------------ *)

let version = 1

let header_fields = [ ("v", Jsonl.Int version); ("kind", Jsonl.Str "costprof") ]

let construct_json k =
  Jsonl.Obj
    [
      ("k", Jsonl.Str k.kind);
      ("l", Jsonl.Int k.loc);
      ("p", Jsonl.Str k.path);
      ("n", Jsonl.Int k.n);
    ]

let construct_of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match (str "k", int "l", str "p", int "n") with
  | Some kind, Some loc, Some path, Some n -> Some { kind; loc; path; n }
  | _ -> None

let cell_fields c =
  [
    ("k", Jsonl.Str c.khash);
    ("c", Jsonl.Int c.config);
    ("o", Jsonl.Str c.opt);
    ("t", Jsonl.Int c.ticks);
    ("cs", Jsonl.List (List.map construct_json c.constructs));
  ]

let cell_of_fields fields =
  let j = Jsonl.Obj fields in
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match
    ( str "k",
      int "c",
      str "o",
      int "t",
      Option.bind (Jsonl.member "cs" j) Jsonl.get_list )
  with
  | Some khash, Some config, Some opt, Some ticks, Some cs ->
      let constructs = List.filter_map construct_of_json cs in
      if List.length constructs = List.length cs then
        Some { khash; config; opt; ticks; constructs }
      else None
  | _ -> None

let write ~path cells =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Jsonl.encode_line header_fields);
     output_char oc '\n';
     List.iter
       (fun c ->
         output_string oc (Jsonl.encode_line (cell_fields c));
         output_char oc '\n')
       cells;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path =
  match read_lines path with
  | exception Sys_error m -> Error m
  | [] -> Error "empty profile file"
  | header :: rest -> (
      match Jsonl.decode_line header with
      | Error m -> Error ("profile header: " ^ m)
      | Ok fields -> (
          match Jsonl.member "v" (Jsonl.Obj fields) with
          | Some (Jsonl.Int v) when v = version ->
              let n = List.length rest in
              let rec go i acc = function
                | [] -> Ok (List.rev acc, false)
                | line :: tl -> (
                    let bad msg =
                      (* only the final line may be torn — anything
                         before it is corruption, not a crash artifact *)
                      if i = n - 1 then Ok (List.rev acc, true)
                      else Error (Printf.sprintf "line %d: %s" (i + 2) msg)
                    in
                    match Jsonl.decode_line line with
                    | Error m -> bad m
                    | Ok fields -> (
                        match cell_of_fields fields with
                        | Some c -> go (i + 1) (c :: acc) tl
                        | None -> bad "malformed profile cell"))
              in
              go 0 [] rest
          | _ -> Error "profile header: wrong version"))

(* ------------------------------------------------------------------ *)
(* Collapsed stacks and the text report                                *)
(* ------------------------------------------------------------------ *)

(* total ticks per path across every cell, deterministically ordered *)
let folded cells =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun c ->
      List.iter
        (fun k ->
          Hashtbl.replace tbl k.path
            (k.n + Option.value ~default:0 (Hashtbl.find_opt tbl k.path)))
        c.constructs)
    cells;
  List.sort compare (Hashtbl.fold (fun p n acc -> (p, n) :: acc) tbl [])

let write_folded ~path cells =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun (p, n) -> Printf.fprintf oc "%s %d\n" p n)
       (folded cells);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let report cells =
  let b = Buffer.create 2048 in
  let total = List.fold_left (fun a c -> a + c.ticks) 0 cells in
  let kernels =
    List.length (List.sort_uniq String.compare (List.map (fun c -> c.khash) cells))
  in
  Printf.bprintf b "cost profile: %d cells over %d kernels, %d ticks\n"
    (List.length cells) kernels total;
  (* rank by (kind, path) across cells: the static location only
     disambiguates within one kernel, the ranking wants families *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun c ->
      List.iter
        (fun k ->
          Hashtbl.replace tbl (k.kind, k.path)
            (k.n + Option.value ~default:0 (Hashtbl.find_opt tbl (k.kind, k.path))))
        c.constructs)
    cells;
  let rows =
    Hashtbl.fold (fun (kind, path) n acc -> (n, kind, path) :: acc) tbl []
    |> List.sort (fun (n1, k1, p1) (n2, k2, p2) ->
           match compare n2 n1 with 0 -> compare (k1, p1) (k2, p2) | c -> c)
  in
  let attributed = List.fold_left (fun a (n, _, _) -> a + n) 0 rows in
  Printf.bprintf b "attributed: %d/%d ticks (%.1f%%)\n\n" attributed total
    (if total = 0 then 0. else 100. *. float_of_int attributed /. float_of_int total);
  Printf.bprintf b "%8s  %6s  %-12s %s\n" "ticks" "share" "construct" "path";
  let shown = ref 0 in
  List.iter
    (fun (n, kind, path) ->
      if !shown < 40 then begin
        incr shown;
        Printf.bprintf b "%8d  %5.1f%%  %-12s %s\n" n
          (if total = 0 then 0. else 100. *. float_of_int n /. float_of_int total)
          kind path
      end)
    rows;
  if List.length rows > !shown then
    Printf.bprintf b "... %d more constructs\n" (List.length rows - !shown);
  Buffer.contents b
