(** Deterministic per-AST-construct cost profile.

    The interpreter, when armed, counts one tick per AST-node visit
    (see [Costwalk] in ocl_vm); the driver packages the counts of one
    executed cell as a {!cell} keyed by kernel content hash and
    (config, opt). The campaign layer calls {!record} exclusively from
    the ordered merged cell stream — the same fold point as the metric
    counters — so the accumulated profile is [-j]-invariant and
    byte-identical across pool sizes.

    Collection is off by default and costs the driver one atomic load
    per cell; everything downstream is gated on the [prof] payload
    being non-empty. The profile file is journal-grade: checksummed
    JSONL with a header line, canonical field order, cells and
    constructs in sorted order, and torn-tail-only recovery on load. *)

type construct = {
  kind : string;  (** AST constructor family, e.g. "for", "binop", "index" *)
  loc : int;  (** static preorder id within the kernel; -1 = synthetic *)
  path : string;  (** ';'-separated frames from the enclosing function *)
  n : int;  (** ticks attributed to this construct *)
}

type cell = {
  khash : string;  (** content hash of the kernel's printed program *)
  config : int;
  opt : string;  (** "+" or "-" *)
  ticks : int;  (** total ticks of this cell; equals the construct sum *)
  constructs : construct list;
}

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** Whether the driver currently attaches cost cells to its stats. *)

val record : cell -> unit
(** Fold one cell into the global accumulator. Call only from the
    ordered merged cell stream (the [-j]-invariance contract). *)

val snapshot : unit -> cell list
(** The accumulated profile: cells sorted by (khash, config, opt),
    constructs sorted by (loc, kind), counts summed per construct. *)

val reset : unit -> unit
(** Drop all accumulated cells. *)

val write : path:string -> cell list -> unit
(** Checksummed JSONL: a header line, then one line per cell, written
    to a temp file and renamed into place. Raises [Sys_error]. *)

val load : path:string -> (cell list * bool, string) result
(** Parse a profile file. The flag is [true] when a torn final line was
    discarded; corruption anywhere else is an error. *)

val write_folded : path:string -> cell list -> unit
(** Collapsed-stack aggregate ("path count" per line, sorted), loadable
    by flamegraph.pl and speedscope. Raises [Sys_error]. *)

val report : cell list -> string
(** Text report ranking constructs by share of total ticks. *)
