let cores () = Domain.recommended_domain_count ()
let ocaml_version = Sys.ocaml_version
let os_type = Sys.os_type
let word_size = Sys.word_size

(* One subprocess per process lifetime: bench records are stamped with
   the commit they measured, so history entries stay attributable. A
   checkout without git (tarball, stripped CI image) reads as "unknown"
   rather than failing the bench. *)
let git_commit =
  let memo = lazy (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, String.trim line) with
      | Unix.WEXITED 0, sha when sha <> "" -> sha
      | _ -> "unknown"
    with Unix.Unix_error _ | Sys_error _ -> "unknown")
  in
  fun () -> Lazy.force memo

let to_json () =
  Jsonl.Obj
    [
      ("cores", Jsonl.Int (cores ()));
      ("ocaml", Jsonl.Str ocaml_version);
      ("os", Jsonl.Str os_type);
      ("word_size", Jsonl.Int word_size);
      ("commit", Jsonl.Str (git_commit ()));
    ]
