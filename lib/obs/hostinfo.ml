let cores () = Domain.recommended_domain_count ()
let ocaml_version = Sys.ocaml_version
let os_type = Sys.os_type
let word_size = Sys.word_size

let to_json () =
  Jsonl.Obj
    [
      ("cores", Jsonl.Int (cores ()));
      ("ocaml", Jsonl.Str ocaml_version);
      ("os", Jsonl.Str os_type);
      ("word_size", Jsonl.Int word_size);
    ]
