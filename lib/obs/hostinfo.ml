let cores () = Domain.recommended_domain_count ()
let ocaml_version = Sys.ocaml_version
let os_type = Sys.os_type
let word_size = Sys.word_size

(* One subprocess per process lifetime: bench records are stamped with
   the commit they measured, so history entries stay attributable. A
   checkout without git (tarball, stripped CI image) reads as "unknown"
   rather than failing the bench. *)
let git_commit =
  let memo = lazy (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, String.trim line) with
      | Unix.WEXITED 0, sha when sha <> "" -> sha
      | _ -> "unknown"
    with Unix.Unix_error _ | Sys_error _ -> "unknown")
  in
  fun () -> Lazy.force memo

(* Resident set size from /proc/self/status ("VmRSS:   12345 kB");
   0 on platforms without procfs — a fleet beat then simply reports no
   memory figure rather than failing. *)
let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:"
                then
                  let rest = String.sub line 6 (String.length line - 6) in
                  let tokens =
                    List.filter
                      (fun s -> s <> "")
                      (String.split_on_char ' '
                         (String.concat " " (String.split_on_char '\t' rest)))
                  in
                  match tokens with
                  | kb :: _ -> Option.value ~default:0 (int_of_string_opt kb)
                  | [] -> 0
                else scan ()
          in
          scan ())

let to_json () =
  Jsonl.Obj
    [
      ("cores", Jsonl.Int (cores ()));
      ("ocaml", Jsonl.Str ocaml_version);
      ("os", Jsonl.Str os_type);
      ("word_size", Jsonl.Int word_size);
      ("commit", Jsonl.Str (git_commit ()));
    ]
