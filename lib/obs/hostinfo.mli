(** Host facts stamped into benchmark output, so BENCH_*.json numbers
    from different machines/PRs are comparable and attributable. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val ocaml_version : string
val os_type : string
val word_size : int

val git_commit : unit -> string
(** Short commit hash of the working tree ([git rev-parse --short HEAD],
    memoized); ["unknown"] outside a git checkout. *)

val rss_kb : unit -> int
(** This process's resident set size in kB, read from
    [/proc/self/status]; 0 where procfs is unavailable. *)

val to_json : unit -> Jsonl.t
(** [{"cores":N,"ocaml":"5.1.x","os":"Unix","word_size":64,
    "commit":"abc1234"}]. *)
