(** Host facts stamped into benchmark output, so BENCH_scaling.json
    numbers from different machines/PRs are comparable. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val ocaml_version : string
val os_type : string
val word_size : int

val to_json : unit -> Jsonl.t
(** [{"cores":N,"ocaml":"5.1.x","os":"Unix","word_size":64}]. *)
