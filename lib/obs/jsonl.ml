type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c >= ' ' && c <= '~' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.add_char buf '"'

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent over the emitted subset)                 *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8)
                lor (hex s.[!pos + 2] lsl 4) lor hex s.[!pos + 3]
              in
              pos := !pos + 4;
              if code > 0xFF then fail "\\u escape above 0x00FF unsupported";
              Buffer.add_char buf (Char.chr code);
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      advance ()
    done;
    (match peek () with
    | Some ('.' | 'e' | 'E') -> fail "floats unsupported"
    | _ -> ());
    if !pos = start then fail "expected number"
    else
      match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some i -> i
      | None -> fail "bad integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some _ -> Int (parse_int ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* Checksummed lines                                                   *)
(* ------------------------------------------------------------------ *)

let checksum fields = Digest.to_hex (Digest.string (to_string (Obj fields)))

let encode_line fields = to_string (Obj (fields @ [ ("h", Str (checksum fields)) ]))

let decode_line line =
  match of_string line with
  | Error e -> Error e
  | Ok (Obj fields) -> (
      match List.rev fields with
      | ("h", Str h) :: rev_rest ->
          let payload = List.rev rev_rest in
          if String.equal h (checksum payload) then Ok payload
          else Error "checksum mismatch"
      | _ -> Error "missing checksum field")
  | Ok _ -> Error "record is not an object"
