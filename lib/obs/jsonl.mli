(** Minimal JSON codec for the persistence layer's line-oriented files.

    The journal and corpus index are JSONL: one self-describing JSON
    object per line, so a crashed campaign leaves at worst one partial
    final line and any text tool can inspect a run. The codec supports
    exactly the subset the store emits — null, booleans, OCaml ints,
    strings, arrays, objects — and round-trips arbitrary OCaml strings
    (bytes outside printable ASCII are escaped as [\u00XX]). Encoding is
    canonical: no whitespace, object fields in construction order — which
    is what makes per-line checksums and byte-identical journals possible.

    {!encode_line}/{!decode_line} add and verify a trailing ["h"] field:
    an MD5 hex digest of the canonical encoding of the object without it.
    A record whose checksum does not match is indistinguishable from a
    torn write and is treated as corruption by the journal reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical (whitespace-free, order-preserving) encoding. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; rejects trailing garbage, floats and
    [\u]-escapes above [0x00FF] (the codec never emits either). *)

val member : string -> t -> t option
(** First field of that name when the value is an object. *)

val get_str : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option
val get_list : t -> t list option

val encode_line : (string * t) list -> string
(** The object with a checksum field ["h"] appended — no newline. *)

val decode_line : string -> ((string * t) list, string) result
(** Parse, verify and strip the ["h"] checksum field. *)
