let now_ns () = Monotonic_clock.now ()

let ns_to_us ns = Int64.to_int (Int64.div ns 1000L)
