(** Monotonic wall clock.

    One indirection over the [bechamel.monotonic_clock] C stub
    ([CLOCK_MONOTONIC] on Linux) so nothing else in the tree names the
    vendor package. Readings are nanoseconds from an arbitrary origin:
    only differences are meaningful, and they survive NTP slews that
    would corrupt [Unix.gettimeofday]-based span durations. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds. *)

val ns_to_us : int64 -> int
(** Truncating nanoseconds -> microseconds conversion (Chrome traces
    and the progress line both work in integer microseconds). *)
