type counter = int Atomic.t

(* 63 buckets cover every positive OCaml int; bucket i counts values v
   with 2^i <= v < 2^(i+1), and v <= 1 lands in bucket 0. *)
type histogram = int Atomic.t array

let bucket_count = 63

let reg_m = Mutex.create ()
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock reg_m;
  let c =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters_tbl name c;
        c
  in
  Mutex.unlock reg_m;
  c

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let histogram name =
  Mutex.lock reg_m;
  let h =
    match Hashtbl.find_opt histograms_tbl name with
    | Some h -> h
    | None ->
        let h = Array.init bucket_count (fun _ -> Atomic.make 0) in
        Hashtbl.add histograms_tbl name h;
        h
  in
  Mutex.unlock reg_m;
  h

let bucket_of v =
  if v <= 1 then 0
  else
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    min (bucket_count - 1) (log2 0 v)

let observe h v = Atomic.incr h.(bucket_of v)

let sorted_bindings tbl =
  Mutex.lock reg_m;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Mutex.unlock reg_m;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters () =
  List.map (fun (name, c) -> (name, Atomic.get c)) (sorted_bindings counters_tbl)

let histogram_buckets h =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    let n = Atomic.get h.(i) in
    if n > 0 then acc := ((if i = 0 then 1 else 1 lsl i), n) :: !acc
  done;
  !acc

let histograms () =
  List.map
    (fun (name, h) -> (name, histogram_buckets h))
    (sorted_bindings histograms_tbl)

(* The p-th percentile over bucketed contents: the smallest bucket floor
   whose cumulative count reaches ceil(p/100 * total). Exact for the
   bucket representatives — every observation in a bucket is reported as
   the bucket floor, the same compression the buckets themselves apply. *)
let percentile_of_buckets buckets p =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  if total = 0 then None
  else
    let rank = max 1 ((p * total + 99) / 100) in
    let rec go seen = function
      | [] -> None
      | (floor, n) :: rest ->
          if seen + n >= rank then Some floor else go (seen + n) rest
    in
    go 0 buckets

let percentile h p = percentile_of_buckets (histogram_buckets h) p

let reset () =
  Mutex.lock reg_m;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters_tbl;
  Hashtbl.iter (fun _ h -> Array.iter (fun b -> Atomic.set b 0) h) histograms_tbl;
  Mutex.unlock reg_m

(* Prometheus metric names admit [a-zA-Z0-9_:]; the registry's dotted
   paths map dots (and anything else) to underscores *)
let prom_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let to_prometheus () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (counters ());
  List.iter
    (fun (name, buckets) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (floor, count) ->
          cum := !cum + count;
          (* bucket floor f holds values in [f, 2f) (f = 1 holds v <= 1),
             so the inclusive upper bound is 2f - 1 *)
          let le = if floor <= 1 then 1 else (2 * floor) - 1 in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le !cum))
        buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n" n !cum n !cum))
    (histograms ());
  Buffer.contents b

let to_json () =
  let counters =
    Jsonl.Obj (List.map (fun (name, v) -> (name, Jsonl.Int v)) (counters ()))
  in
  let histograms =
    Jsonl.Obj
      (List.map
         (fun (name, buckets) ->
           let count = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
           let pct p =
             match percentile_of_buckets buckets p with
             | Some v -> Jsonl.Int v
             | None -> Jsonl.Null
           in
           ( name,
             Jsonl.Obj
               [
                 ( "buckets",
                   Jsonl.Obj
                     (List.map
                        (fun (floor, n) -> (string_of_int floor, Jsonl.Int n))
                        buckets) );
                 ("count", Jsonl.Int count);
                 ("p50", pct 50);
                 ("p90", pct 90);
                 ("p99", pct 99);
               ] ))
         (histograms ()))
  in
  Jsonl.Obj
    [ ("version", Jsonl.Int 2); ("counters", counters); ("histograms", histograms) ]
