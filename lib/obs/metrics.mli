(** Global registry of named counters and histograms.

    Counters are [Atomic.t] ints keyed by name; histograms bucket
    observations by power of two. Registration (first use of a name)
    takes a mutex; increments afterwards are lock-free, so any domain
    may bump a counter it holds. Names are dotted lower-case paths,
    e.g. ["interp.steps"], ["cells.class.w"], ["pool.queue_depth"].

    Determinism: a counter is only as deterministic as its increments.
    Counters fed from the ordered [?on_result] stream (cell totals,
    interpreter work, outcome classes) are [-j]-invariant and tested as
    such; scheduling-dependent gauges (pool busy time, queue depth) are
    not, and are documented per call site. {!to_json} renders the whole
    registry as one canonical {!Jsonl.t} object with sorted keys, so
    equal registries produce equal bytes. *)

type counter
type histogram

val counter : string -> counter
(** Find or register the counter of that name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram : string -> histogram
(** Find or register the histogram of that name. *)

val observe : histogram -> int -> unit
(** Record one observation. Values [<= 1] share the lowest bucket;
    otherwise a value lands in the bucket labelled by the largest power
    of two [<= value]. *)

val counters : unit -> (string * int) list
(** Snapshot of every registered counter, sorted by name. *)

val histograms : unit -> (string * (int * int) list) list
(** Snapshot of every histogram, sorted by name; each histogram is its
    non-empty [(bucket_floor, count)] pairs in increasing order. *)

val percentile : histogram -> int -> int option
(** [percentile h p] for [p] in [0, 100]: the smallest bucket floor whose
    cumulative count reaches [ceil (p/100 * total)], or [None] on an
    empty histogram. Exact over the bucket representatives (every
    observation reports as its bucket floor), so p50/p90/p99 summaries
    are deterministic functions of the bucket contents. *)

val reset : unit -> unit
(** Zero every counter and histogram (registration survives). *)

val to_prometheus : unit -> string
(** The whole registry in Prometheus text exposition format: every
    counter as a [# TYPE name counter] pair, every histogram as
    cumulative [name_bucket{le="..."}] lines (inclusive upper bounds of
    the power-of-two buckets) plus [name_count]. Dots and other
    non-identifier characters in registry names become underscores.
    Sorted by name like {!to_json}, so equal registries produce equal
    text. *)

val to_json : unit -> Jsonl.t
(** [{"version":2,"counters":{...},"histograms":{name:{"buckets":
    {floor:count},"count":N,"p50":P,"p90":P,"p99":P}}}] with every level
    sorted by key; empty-histogram percentiles render as [null]. *)
