type t = {
  out : out_channel;
  min_interval_ns : int64;
  label : string;
  total : int;
  t0_ns : int64;
  mutable done_ : int;
  mutable last_draw_ns : int64;
  mutable tallies : (string * int) list; (* insertion-ordered *)
}

let create ?(out = stderr) ?(min_interval_ms = 100) ~label ~total () =
  {
    out;
    min_interval_ns = Int64.mul (Int64.of_int min_interval_ms) 1_000_000L;
    label;
    total;
    t0_ns = Mclock.now_ns ();
    done_ = 0;
    last_draw_ns = 0L;
    tallies = [];
  }

let tally t tag =
  let rec bump = function
    | [] -> [ (tag, 1) ]
    | (tg, n) :: rest when String.equal tg tag -> (tg, n + 1) :: rest
    | kv :: rest -> kv :: bump rest
  in
  t.tallies <- bump t.tallies

let eta_string t now =
  if t.done_ = 0 || t.total <= t.done_ then "0s"
  else
    let elapsed_s =
      Int64.to_float (Int64.sub now t.t0_ns) /. 1e9
    in
    let remaining = float_of_int (t.total - t.done_) *. elapsed_s /. float_of_int t.done_ in
    if remaining >= 3600. then Printf.sprintf "%.1fh" (remaining /. 3600.)
    else if remaining >= 60. then Printf.sprintf "%.1fm" (remaining /. 60.)
    else Printf.sprintf "%.0fs" remaining

let draw t now =
  t.last_draw_ns <- now;
  let elapsed_s = Int64.to_float (Int64.sub now t.t0_ns) /. 1e9 in
  let rate = if elapsed_s > 0. then float_of_int t.done_ /. elapsed_s else 0. in
  let tallies =
    String.concat " "
      (List.map (fun (tag, n) -> Printf.sprintf "%s:%d" tag n) t.tallies)
  in
  Printf.fprintf t.out "\r%s %d/%d cells  %.1f cells/s  ETA %s  %s\027[K%!"
    t.label t.done_ t.total rate (eta_string t now) tallies

let step t ~tag =
  t.done_ <- t.done_ + 1;
  tally t tag;
  let now = Mclock.now_ns () in
  if
    t.done_ = t.total
    || Int64.compare (Int64.sub now t.last_draw_ns) t.min_interval_ns >= 0
  then draw t now

let finish t =
  draw t (Mclock.now_ns ());
  output_char t.out '\n';
  flush t.out
