type style = Ansi | Plain

(* CI logs are the motivating case: a \r-overwritten line becomes one
   unreadable kilometer of control characters in a captured log, so
   anything that is not an interactive terminal gets plain, throttled,
   newline-separated updates instead. NO_COLOR (non-empty) and
   TERM=dumb are honoured as explicit operator requests for the same. *)
let detect_style out =
  let env_plain =
    (match Sys.getenv_opt "NO_COLOR" with Some v -> v <> "" | None -> false)
    || Sys.getenv_opt "TERM" = Some "dumb"
  in
  if env_plain then Plain
  else
    match Unix.isatty (Unix.descr_of_out_channel out) with
    | true -> Ansi
    | false | (exception _) -> Plain

type t = {
  out : out_channel;
  style : style;
  min_interval_ns : int64;
  label : string;
  total : int;
  start : int;  (** cells already done before the clock started *)
  t0_ns : int64;
  mutable done_ : int;
  mutable last_draw_ns : int64;
  mutable tallies : (string * int) list; (* insertion-ordered *)
}

let create ?out:(oc = stderr) ?style ?min_interval_ms ?(start = 0) ~label
    ~total () =
  let style = match style with Some s -> s | None -> detect_style oc in
  let min_interval_ms =
    match min_interval_ms with
    | Some ms -> ms
    (* a plain line cannot be overwritten, so redraw far less often *)
    | None -> ( match style with Ansi -> 100 | Plain -> 1000)
  in
  {
    out = oc;
    style;
    min_interval_ns = Int64.mul (Int64.of_int min_interval_ms) 1_000_000L;
    label;
    total;
    start;
    t0_ns = Mclock.now_ns ();
    done_ = start;
    last_draw_ns = 0L;
    tallies = [];
  }

let tally t tag =
  let rec bump = function
    | [] -> [ (tag, 1) ]
    | (tg, n) :: rest when String.equal tg tag -> (tg, n + 1) :: rest
    | kv :: rest -> kv :: bump rest
  in
  t.tallies <- bump t.tallies

(* rate and ETA measure this session's work only: resumed/prefilled
   cells ([start]) cost no session time and must not inflate either *)
let eta_string t now =
  if t.total <= t.done_ then "0s"
  else if t.done_ <= t.start then
    (* no session work measured yet (all prefill, or nothing done):
       the rate is zero and any extrapolation would be garbage *)
    "--:--"
  else
    let elapsed_s =
      Int64.to_float (Int64.sub now t.t0_ns) /. 1e9
    in
    let remaining =
      float_of_int (t.total - t.done_) *. elapsed_s
      /. float_of_int (t.done_ - t.start)
    in
    if remaining >= 3600. then Printf.sprintf "%.1fh" (remaining /. 3600.)
    else if remaining >= 60. then Printf.sprintf "%.1fm" (remaining /. 60.)
    else Printf.sprintf "%.0fs" remaining

let draw t now =
  t.last_draw_ns <- now;
  let elapsed_s = Int64.to_float (Int64.sub now t.t0_ns) /. 1e9 in
  let rate =
    if elapsed_s > 0. then float_of_int (t.done_ - t.start) /. elapsed_s
    else 0.
  in
  let tallies =
    String.concat " "
      (List.map (fun (tag, n) -> Printf.sprintf "%s:%d" tag n) t.tallies)
  in
  let body =
    Printf.sprintf "%s %d/%d cells  %.1f cells/s  ETA %s  %s" t.label t.done_
      t.total rate (eta_string t now) tallies
  in
  match t.style with
  | Ansi -> Printf.fprintf t.out "\r%s\027[K%!" body
  | Plain -> Printf.fprintf t.out "%s\n%!" body

let step t ~tag =
  t.done_ <- t.done_ + 1;
  tally t tag;
  let now = Mclock.now_ns () in
  if
    t.done_ = t.total
    || Int64.compare (Int64.sub now t.last_draw_ns) t.min_interval_ns >= 0
  then draw t now

let finish t =
  (match t.style with
  | Ansi ->
      draw t (Mclock.now_ns ());
      output_char t.out '\n'
  | Plain ->
      (* the final state was already printed by [step] when the last cell
         arrived; redraw only if something happened since *)
      if Int64.compare t.last_draw_ns t.t0_ns <= 0 || t.done_ < t.total then
        draw t (Mclock.now_ns ()));
  flush t.out
