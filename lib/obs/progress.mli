(** Live single-line campaign progress.

    Renders [\r]-overwritten status — done/total cells, throughput,
    ETA, running class tallies — to a channel (stderr by default),
    throttled so a fast campaign does not spend its time printing.
    Driven from the submitting domain via the ordered [?on_result]
    stream: {!step} is called once per delivered cell with a short
    class tag (["ok"], ["w"], ["bf"], ...), so the tallies match the
    table being built. Purely an observer — it writes nothing to
    stdout and never affects table or journal bytes. *)

type t

val create :
  ?out:out_channel -> ?min_interval_ms:int -> label:string -> total:int -> unit -> t
(** [create ~label ~total ()] starts the clock. [total] is the full
    cell count (resumed cells included); [min_interval_ms] (default
    100) limits redraw frequency. *)

val step : t -> tag:string -> unit
(** Count one finished cell under class [tag] and maybe redraw. *)

val finish : t -> unit
(** Final redraw and trailing newline, so the line is left intact. *)
