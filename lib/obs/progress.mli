(** Live campaign progress for terminals and CI logs alike.

    On an interactive terminal the line is [\r]-overwritten in place —
    done/total cells, throughput, ETA, running class tallies — throttled
    so a fast campaign does not spend its time printing. When stderr is
    not a tty (captured CI logs), or the operator set [NO_COLOR] or
    [TERM=dumb], the display degrades to plain newline-separated status
    lines at a much lower cadence instead of spamming carriage returns
    into the log. Driven from the submitting domain via the ordered
    [?on_result] stream: {!step} is called once per delivered cell with a
    short class tag (["ok"], ["w"], ["bf"], ...), so the tallies match
    the table being built. Purely an observer — it writes nothing to
    stdout and never affects table or journal bytes. *)

type t

type style =
  | Ansi  (** interactive: [\r]-overwritten single line *)
  | Plain  (** non-tty / NO_COLOR / TERM=dumb: throttled newline updates *)

val detect_style : out_channel -> style
(** [Plain] when the channel is not a tty, [NO_COLOR] is set non-empty,
    or [TERM=dumb]; [Ansi] otherwise. *)

val create :
  ?out:out_channel ->
  ?style:style ->
  ?min_interval_ms:int ->
  ?start:int ->
  label:string ->
  total:int ->
  unit ->
  t
(** [create ~label ~total ()] starts the clock. [total] is the full
    cell count (resumed cells included). [start] (default 0) counts
    cells already done before this session — resumed or prefilled work
    shown in done/total but excluded from the rate and ETA. [style]
    defaults to {!detect_style} of the channel; [min_interval_ms]
    limits redraw frequency and defaults to 100 (Ansi) / 1000 (Plain). *)

val step : t -> tag:string -> unit
(** Count one finished cell under class [tag] and maybe redraw. *)

val eta_string : t -> int64 -> string
(** The displayed ETA at monotonic time [now]: ["0s"] when nothing
    remains, ["--:--"] when work remains but no session cell has
    finished yet (zero measured rate — prefill-only or just started),
    otherwise an extrapolation like ["42s"] / ["3.5m"] / ["1.2h"].
    Exposed for tests. *)

val finish : t -> unit
(** Final redraw (Plain mode skips it when the last {!step} already
    printed the final state) and flush, leaving the line intact. *)
