type t = {
  cat : string;
  name : string;
  t0_ns : int64;
  dur_ns : int64;
  domain : int;
  task : int;
  flow : int;
  flow_n : int;
}

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* One span buffer per domain, registered globally on first use. The
   registry mutex is taken once per domain lifetime (registration) and
   on drain/reset — never per span. *)
type buffer = { mutable spans : t list; mutable task : int }

let registry : buffer list ref = ref []
let registry_m = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { spans = []; task = -1 } in
      Mutex.lock registry_m;
      registry := b :: !registry;
      Mutex.unlock registry_m;
      b)

let buffer () = Domain.DLS.get buffer_key

let set_task i = (buffer ()).task <- i
let clear_task () = (buffer ()).task <- -1

let record ?(flow = -1) ?(flow_n = 0) ~cat ~name ~t0_ns () =
  let b = buffer () in
  let dur_ns = Int64.sub (Mclock.now_ns ()) t0_ns in
  let dur_ns = if Int64.compare dur_ns 0L < 0 then 0L else dur_ns in
  let span =
    {
      cat;
      name;
      t0_ns;
      dur_ns;
      domain = (Domain.self () :> int);
      task = b.task;
      flow;
      flow_n;
    }
  in
  b.spans <- span :: b.spans

let with_ ~cat ?flow ?flow_n name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0_ns = Mclock.now_ns () in
    Fun.protect ~finally:(fun () -> record ?flow ?flow_n ~cat ~name ~t0_ns ()) f
  end

let emit ~cat ~name ~t0_ns ~dur_ns ?(flow = -1) ?(flow_n = 0) () =
  if Atomic.get on then begin
    let b = buffer () in
    let span =
      {
        cat;
        name;
        t0_ns;
        dur_ns = (if Int64.compare dur_ns 0L < 0 then 0L else dur_ns);
        domain = (Domain.self () :> int);
        task = b.task;
        flow;
        flow_n;
      }
    in
    b.spans <- span :: b.spans
  end

let drain () =
  Mutex.lock registry_m;
  let spans =
    List.concat_map
      (fun b ->
        let s = b.spans in
        b.spans <- [];
        s)
      !registry
  in
  Mutex.unlock registry_m;
  List.sort
    (fun a b ->
      match Int64.compare a.t0_ns b.t0_ns with
      | 0 -> compare (a.domain, a.name) (b.domain, b.name)
      | c -> c)
    spans

let reset () =
  Mutex.lock registry_m;
  List.iter (fun b -> b.spans <- []) !registry;
  Mutex.unlock registry_m
