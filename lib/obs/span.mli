(** Timed scopes over the pipeline, collected per domain.

    A span is one timed execution of a named stage — generating a
    kernel, running one optimisation pass, executing a cell on one
    configuration, voting, appending to the journal. Collection is off
    by default and costs one atomic load per {!with_} call; {!enable}
    turns it on (the CLI does so only when [--trace] is given), after
    which each span is pushed onto a buffer local to the recording
    domain. Buffers register themselves in a global list on first use,
    so {!drain} — called from the submitting domain once the pool has
    been torn down — can collect everything without any cross-domain
    synchronisation on the hot path.

    Spans deliberately live {e outside} the [-j] byte-identity
    contract: their timestamps, durations and domain placement vary
    run to run. Everything that must be deterministic (tables,
    journals, metric totals) flows through the ordered [?on_result]
    stream instead; spans only observe it. *)

type t = {
  cat : string;  (** stage family: "gen", "check", "opt", "exec", "vote", "persist" *)
  name : string;  (** e.g. "generate", "opt:const_fold", "exec:7+" *)
  t0_ns : int64;  (** monotonic start time *)
  dur_ns : int64;  (** duration; >= 0 *)
  domain : int;  (** recording domain id — one trace pid per domain *)
  task : int;  (** pool task index in flight, or -1 outside the pool *)
  flow : int;
      (** causal flow id (global cell index), or -1 when unlinked.
          With [flow_n = 0] the span {e participates} in flow [flow];
          with [flow_n > 0] it {e originates} flows [flow ..
          flow + flow_n - 1] (a coordinator lease covering a cell
          range). *)
  flow_n : int;  (** number of flows originated here; 0 = participant *)
}

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** Whether {!with_} currently records. *)

val with_ :
  cat:string -> ?flow:int -> ?flow_n:int -> string -> (unit -> 'a) -> 'a
(** [with_ ~cat name f] runs [f ()], recording a span on the current
    domain when collection is enabled. The span is recorded even when
    [f] raises (the exception is re-raised), so crashing cells still
    show up in the trace. *)

val emit :
  cat:string ->
  name:string ->
  t0_ns:int64 ->
  dur_ns:int64 ->
  ?flow:int ->
  ?flow_n:int ->
  unit ->
  unit
(** Record a span with explicit timing — for retroactive spans whose
    interval was measured elsewhere (a coordinator lease is only
    emitted once its Done arrives). No-op when collection is off. *)

val set_task : int -> unit
(** Tag subsequent spans on this domain with a pool task index. *)

val clear_task : unit -> unit

val drain : unit -> t list
(** All spans recorded on any domain since the last drain, sorted by
    start time; buffers are emptied. Call only while no domain is
    recording (the pool joins its workers before the campaign
    returns). *)

val reset : unit -> unit
(** Discard all buffered spans. *)
