let sorted spans =
  List.sort
    (fun (a : Span.t) (b : Span.t) ->
      match Int64.compare a.t0_ns b.t0_ns with
      | 0 -> compare (a.domain, a.name) (b.domain, b.name)
      | c -> c)
    spans

(* ------------------------------------------------------------------ *)
(* Flow events                                                         *)
(* ------------------------------------------------------------------ *)

(* Chrome/Perfetto flow events (ph "s"/"t"/"f" sharing an id) link
   slices across processes: the coordinator's lease span originates one
   flow per cell in its range (flow_n > 0), worker exec spans and serve
   submissions participate in the single flow of their cell. A flow
   event binds to the slice with the same pid/tid whose interval covers
   its ts, so every event reuses its slice's start timestamp. *)
type flow_reg = {
  tbl : (int, (int * bool * int * int * int) list) Hashtbl.t;
      (* flow id -> (seq, is_source, pid, tid, ts_us), newest first *)
  mutable seq : int;
}

let flow_reg () = { tbl = Hashtbl.create 64; seq = 0 }

let flow_note reg ~pid ~tid ~ts (s : Span.t) =
  if s.Span.flow >= 0 then begin
    let seq = reg.seq in
    reg.seq <- seq + 1;
    let src = s.Span.flow_n > 0 in
    let n = max 1 s.Span.flow_n in
    for k = 0 to n - 1 do
      let id = s.Span.flow + k in
      let cur = Option.value ~default:[] (Hashtbl.find_opt reg.tbl id) in
      Hashtbl.replace reg.tbl id ((seq, src, pid, tid, ts) :: cur)
    done
  end

let flow_events reg =
  let ids = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) reg.tbl []) in
  List.concat_map
    (fun id ->
      let ps = List.rev (Hashtbl.find reg.tbl id) in
      (* the originating span leads regardless of arrival order; ties and
         participants keep registration order (group order, then time) *)
      let ps =
        List.stable_sort
          (fun (_, s1, _, _, _) (_, s2, _, _, _) -> compare s2 s1)
          ps
      in
      match ps with
      | [] | [ _ ] -> [] (* a flow needs two ends *)
      | first :: rest ->
          let ev ph extra (_, _, pid, tid, ts) =
            Jsonl.Obj
              ([
                 ("name", Jsonl.Str "cell");
                 ("cat", Jsonl.Str "flow");
                 ("ph", Jsonl.Str ph);
                 ("id", Jsonl.Int id);
                 ("ts", Jsonl.Int ts);
                 ("pid", Jsonl.Int pid);
                 ("tid", Jsonl.Int tid);
               ]
              @ extra)
          in
          let rec steps = function
            | [] -> []
            | [ last ] -> [ ev "f" [ ("bp", Jsonl.Str "e") ] last ]
            | p :: tl -> ev "t" [] p :: steps tl
          in
          ev "s" [] first :: steps rest)
    ids

(* ------------------------------------------------------------------ *)
(* Single-process trace                                                *)
(* ------------------------------------------------------------------ *)

let to_json spans =
  let spans = sorted spans in
  let epoch =
    List.fold_left
      (fun acc (s : Span.t) -> if Int64.compare s.t0_ns acc < 0 then s.t0_ns else acc)
      (match spans with [] -> 0L | s :: _ -> s.t0_ns)
      spans
  in
  let domains =
    List.sort_uniq compare (List.map (fun (s : Span.t) -> s.domain) spans)
  in
  let meta =
    List.map
      (fun d ->
        Jsonl.Obj
          [
            ("name", Jsonl.Str "process_name");
            ("ph", Jsonl.Str "M");
            ("pid", Jsonl.Int d);
            ("tid", Jsonl.Int 1);
            ("args", Jsonl.Obj [ ("name", Jsonl.Str (Printf.sprintf "domain %d" d)) ]);
          ])
      domains
  in
  let reg = flow_reg () in
  let events =
    List.map
      (fun (s : Span.t) ->
        let args =
          if s.task >= 0 then [ ("task", Jsonl.Int s.task) ] else []
        in
        let ts = Mclock.ns_to_us (Int64.sub s.t0_ns epoch) in
        flow_note reg ~pid:s.domain ~tid:1 ~ts s;
        Jsonl.Obj
          [
            ("name", Jsonl.Str s.name);
            ("cat", Jsonl.Str s.cat);
            ("ph", Jsonl.Str "X");
            ("ts", Jsonl.Int ts);
            ("dur", Jsonl.Int (max 1 (Mclock.ns_to_us s.dur_ns)));
            ("pid", Jsonl.Int s.domain);
            ("tid", Jsonl.Int 1);
            ("args", Jsonl.Obj args);
          ])
      spans
  in
  Jsonl.Obj
    [
      ("traceEvents", Jsonl.List (meta @ events @ flow_events reg));
      ("displayTimeUnit", Jsonl.Str "ms");
    ]

(* Fleet traces: one pid per process group (coordinator, each worker),
   one tid per recording domain inside it. Each group's timestamps are
   rebased to its own earliest span — worker clocks are unrelated
   monotonic epochs, so only within-group time is meaningful. *)
let to_json_groups groups =
  let metas = ref [] and events = ref [] in
  let reg = flow_reg () in
  List.iteri
    (fun pid (label, spans) ->
      let spans = sorted spans in
      let epoch =
        List.fold_left
          (fun acc (s : Span.t) ->
            if Int64.compare s.t0_ns acc < 0 then s.t0_ns else acc)
          (match spans with [] -> 0L | s :: _ -> s.t0_ns)
          spans
      in
      metas :=
        Jsonl.Obj
          [
            ("name", Jsonl.Str "process_name");
            ("ph", Jsonl.Str "M");
            ("pid", Jsonl.Int pid);
            ("tid", Jsonl.Int 0);
            ("args", Jsonl.Obj [ ("name", Jsonl.Str label) ]);
          ]
        :: !metas;
      List.iter
        (fun d ->
          metas :=
            Jsonl.Obj
              [
                ("name", Jsonl.Str "thread_name");
                ("ph", Jsonl.Str "M");
                ("pid", Jsonl.Int pid);
                ("tid", Jsonl.Int d);
                ("args",
                 Jsonl.Obj [ ("name", Jsonl.Str (Printf.sprintf "domain %d" d)) ]);
              ]
            :: !metas)
        (List.sort_uniq compare (List.map (fun (s : Span.t) -> s.domain) spans));
      List.iter
        (fun (s : Span.t) ->
          let args =
            if s.task >= 0 then [ ("task", Jsonl.Int s.task) ] else []
          in
          let ts = Mclock.ns_to_us (Int64.sub s.t0_ns epoch) in
          flow_note reg ~pid ~tid:s.domain ~ts s;
          events :=
            Jsonl.Obj
              [
                ("name", Jsonl.Str s.name);
                ("cat", Jsonl.Str s.cat);
                ("ph", Jsonl.Str "X");
                ("ts", Jsonl.Int ts);
                ("dur", Jsonl.Int (max 1 (Mclock.ns_to_us s.dur_ns)));
                ("pid", Jsonl.Int pid);
                ("tid", Jsonl.Int s.domain);
                ("args", Jsonl.Obj args);
              ]
            :: !events)
        spans)
    groups;
  Jsonl.Obj
    [
      ("traceEvents",
       Jsonl.List (List.rev !metas @ List.rev !events @ flow_events reg));
      ("displayTimeUnit", Jsonl.Str "ms");
    ]

let output ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonl.to_string json);
      output_char oc '\n')

let write ~path spans = output ~path (to_json spans)
let write_groups ~path groups = output ~path (to_json_groups groups)
