let to_json spans =
  let spans =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
        match Int64.compare a.t0_ns b.t0_ns with
        | 0 -> compare (a.domain, a.name) (b.domain, b.name)
        | c -> c)
      spans
  in
  let epoch =
    List.fold_left
      (fun acc (s : Span.t) -> if Int64.compare s.t0_ns acc < 0 then s.t0_ns else acc)
      (match spans with [] -> 0L | s :: _ -> s.t0_ns)
      spans
  in
  let domains =
    List.sort_uniq compare (List.map (fun (s : Span.t) -> s.domain) spans)
  in
  let meta =
    List.map
      (fun d ->
        Jsonl.Obj
          [
            ("name", Jsonl.Str "process_name");
            ("ph", Jsonl.Str "M");
            ("pid", Jsonl.Int d);
            ("tid", Jsonl.Int 1);
            ("args", Jsonl.Obj [ ("name", Jsonl.Str (Printf.sprintf "domain %d" d)) ]);
          ])
      domains
  in
  let events =
    List.map
      (fun (s : Span.t) ->
        let args =
          if s.task >= 0 then [ ("task", Jsonl.Int s.task) ] else []
        in
        Jsonl.Obj
          [
            ("name", Jsonl.Str s.name);
            ("cat", Jsonl.Str s.cat);
            ("ph", Jsonl.Str "X");
            ("ts", Jsonl.Int (Mclock.ns_to_us (Int64.sub s.t0_ns epoch)));
            ("dur", Jsonl.Int (max 1 (Mclock.ns_to_us s.dur_ns)));
            ("pid", Jsonl.Int s.domain);
            ("tid", Jsonl.Int 1);
            ("args", Jsonl.Obj args);
          ])
      spans
  in
  Jsonl.Obj
    [
      ("traceEvents", Jsonl.List (meta @ events));
      ("displayTimeUnit", Jsonl.Str "ms");
    ]

(* Fleet traces: one pid per process group (coordinator, each worker),
   one tid per recording domain inside it. Each group's timestamps are
   rebased to its own earliest span — worker clocks are unrelated
   monotonic epochs, so only within-group time is meaningful. *)
let to_json_groups groups =
  let sorted spans =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
        match Int64.compare a.t0_ns b.t0_ns with
        | 0 -> compare (a.domain, a.name) (b.domain, b.name)
        | c -> c)
      spans
  in
  let metas = ref [] and events = ref [] in
  List.iteri
    (fun pid (label, spans) ->
      let spans = sorted spans in
      let epoch =
        List.fold_left
          (fun acc (s : Span.t) ->
            if Int64.compare s.t0_ns acc < 0 then s.t0_ns else acc)
          (match spans with [] -> 0L | s :: _ -> s.t0_ns)
          spans
      in
      metas :=
        Jsonl.Obj
          [
            ("name", Jsonl.Str "process_name");
            ("ph", Jsonl.Str "M");
            ("pid", Jsonl.Int pid);
            ("tid", Jsonl.Int 0);
            ("args", Jsonl.Obj [ ("name", Jsonl.Str label) ]);
          ]
        :: !metas;
      List.iter
        (fun d ->
          metas :=
            Jsonl.Obj
              [
                ("name", Jsonl.Str "thread_name");
                ("ph", Jsonl.Str "M");
                ("pid", Jsonl.Int pid);
                ("tid", Jsonl.Int d);
                ("args",
                 Jsonl.Obj [ ("name", Jsonl.Str (Printf.sprintf "domain %d" d)) ]);
              ]
            :: !metas)
        (List.sort_uniq compare (List.map (fun (s : Span.t) -> s.domain) spans));
      List.iter
        (fun (s : Span.t) ->
          let args =
            if s.task >= 0 then [ ("task", Jsonl.Int s.task) ] else []
          in
          events :=
            Jsonl.Obj
              [
                ("name", Jsonl.Str s.name);
                ("cat", Jsonl.Str s.cat);
                ("ph", Jsonl.Str "X");
                ("ts", Jsonl.Int (Mclock.ns_to_us (Int64.sub s.t0_ns epoch)));
                ("dur", Jsonl.Int (max 1 (Mclock.ns_to_us s.dur_ns)));
                ("pid", Jsonl.Int pid);
                ("tid", Jsonl.Int s.domain);
                ("args", Jsonl.Obj args);
              ]
            :: !events)
        spans)
    groups;
  Jsonl.Obj
    [
      ("traceEvents", Jsonl.List (List.rev !metas @ List.rev !events));
      ("displayTimeUnit", Jsonl.Str "ms");
    ]

let output ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonl.to_string json);
      output_char oc '\n')

let write ~path spans = output ~path (to_json spans)
let write_groups ~path groups = output ~path (to_json_groups groups)
