(** Chrome trace-event export of drained spans.

    Produces the JSON object format of the Trace Event spec — a
    ["traceEvents"] array of complete ("X") events — which
    [ui.perfetto.dev] and [chrome://tracing] both load. Each recording
    domain becomes one pid (named by a process_name metadata event);
    within a domain tasks run serially, so every span lives on tid 1
    and nesting falls out of time containment. Timestamps are integer
    microseconds relative to the earliest span, keeping the file within
    the int-only {!Jsonl} codec. *)

val to_json : Span.t list -> Jsonl.t
(** Encode drained spans (any order) as a trace-event object. *)

val write : path:string -> Span.t list -> unit
(** [to_json] rendered canonically to [path] plus a final newline.
    Raises [Sys_error] on I/O failure. *)
