(** Chrome trace-event export of drained spans.

    Produces the JSON object format of the Trace Event spec — a
    ["traceEvents"] array of complete ("X") events — which
    [ui.perfetto.dev] and [chrome://tracing] both load. Each recording
    domain becomes one pid (named by a process_name metadata event);
    within a domain tasks run serially, so every span lives on tid 1
    and nesting falls out of time containment. Timestamps are integer
    microseconds relative to the earliest span, keeping the file within
    the int-only {!Jsonl} codec. *)

val to_json : Span.t list -> Jsonl.t
(** Encode drained spans (any order) as a trace-event object. *)

val write : path:string -> Span.t list -> unit
(** [to_json] rendered canonically to [path] plus a final newline.
    Raises [Sys_error] on I/O failure. *)

val to_json_groups : (string * Span.t list) list -> Jsonl.t
(** Merged fleet trace: each [(label, spans)] group becomes one pid
    (named [label] by a process_name metadata event) and each recording
    domain within a group one tid. Every group's timestamps are rebased
    to its own earliest span — a distributed run's worker clocks share
    no epoch, so only within-group time is meaningful. Group order
    fixes pid numbering. *)

val write_groups : path:string -> (string * Span.t list) list -> unit
(** [to_json_groups] rendered canonically to [path] plus a final
    newline. Raises [Sys_error] on I/O failure. *)
