open Ast

(* Node identity is physical: the interpreter executes the very program
   value [build] walked, so (==) lookups hit. Structural hashing keeps
   physically distinct but equal nodes in the same bucket, where (==)
   disambiguates. *)
module Etbl = Hashtbl.Make (struct
  type t = expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Stbl = Hashtbl.Make (struct
  type t = stmt

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  kinds : string array;
  paths : string array;
  counts : int array;
  expr_ids : int Etbl.t;
  stmt_ids : int Stbl.t;
  synth : (string, int ref) Hashtbl.t;  (* runtime-synthesised nodes *)
  mutable total : int;
}

let expr_kind = function
  | Const _ -> "const"
  | Var _ -> "var"
  | Thread_id _ -> "thread_id"
  | Unop _ -> "unop"
  | Binop _ -> "binop"
  | Safe_binop _ -> "safe_binop"
  | Safe_neg _ -> "safe_neg"
  | Builtin _ -> "builtin"
  | Call _ -> "call"
  | Cast _ -> "cast"
  | Cond _ -> "cond"
  | Field _ -> "field"
  | Arrow _ -> "arrow"
  | Index _ -> "index"
  | Deref _ -> "deref"
  | Addr_of _ -> "addr_of"
  | Vec_lit _ -> "vec_lit"
  | Swizzle _ -> "swizzle"
  | Atomic _ -> "atomic"

let stmt_kind = function
  | Decl _ -> "decl"
  | Assign _ -> "assign"
  | Expr _ -> "expr_stmt"
  | If _ -> "if"
  | For _ -> "for"
  | While _ -> "while"
  | Break -> "break"
  | Continue -> "continue"
  | Return _ -> "return"
  | Barrier _ -> "barrier"
  | Block _ -> "block"
  | Emi _ -> "emi"

let build (p : program) =
  let expr_ids = Etbl.create 512 in
  let stmt_ids = Stbl.create 256 in
  let nodes = ref [] in
  let next = ref 0 in
  let reg kind path =
    let id = !next in
    incr next;
    nodes := (kind, path) :: !nodes;
    id
  in
  let rec walk_expr path e =
    if not (Etbl.mem expr_ids e) then begin
      let kind = expr_kind e in
      let pth = path ^ ";" ^ kind in
      Etbl.add expr_ids e (reg kind pth);
      match e with
      | Const _ | Var _ | Thread_id _ -> ()
      | Unop (_, a) | Safe_neg a | Cast (_, a) | Deref a | Addr_of a
      | Field (a, _) | Arrow (a, _) | Swizzle (a, _) ->
          walk_expr pth a
      | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) ->
          walk_expr pth a;
          walk_expr pth b
      | Cond (a, b, c) ->
          walk_expr pth a;
          walk_expr pth b;
          walk_expr pth c
      | Builtin (_, args) | Call (_, args) | Vec_lit (_, _, args) ->
          List.iter (walk_expr pth) args
      | Atomic (_, ptr, args) ->
          walk_expr pth ptr;
          List.iter (walk_expr pth) args
    end
  in
  let rec walk_init path = function
    | I_expr e -> walk_expr path e
    | I_list is -> List.iter (walk_init path) is
  in
  let rec walk_stmt path s =
    if not (Stbl.mem stmt_ids s) then begin
      let kind = stmt_kind s in
      let pth = path ^ ";" ^ kind in
      Stbl.add stmt_ids s (reg kind pth);
      match s with
      | Decl { dinit = Some i; _ } -> walk_init pth i
      | Decl { dinit = None; _ } | Break | Continue | Return None | Barrier _
        ->
          ()
      | Assign (l, _, r) ->
          walk_expr pth l;
          walk_expr pth r
      | Expr e | Return (Some e) -> walk_expr pth e
      | If (c, b1, b2) ->
          walk_expr pth c;
          List.iter (walk_stmt pth) b1;
          List.iter (walk_stmt pth) b2
      | For { f_init; f_cond; f_update; f_body } ->
          Option.iter (walk_stmt pth) f_init;
          Option.iter (walk_expr pth) f_cond;
          Option.iter (walk_stmt pth) f_update;
          List.iter (walk_stmt pth) f_body
      | While (c, b) ->
          walk_expr pth c;
          List.iter (walk_stmt pth) b
      | Block b -> List.iter (walk_stmt pth) b
      | Emi { emi_body; _ } -> List.iter (walk_stmt pth) emi_body
    end
  in
  List.iter
    (fun (f : func) -> List.iter (walk_stmt ("fn:" ^ f.fname)) f.body)
    p.funcs;
  List.iter (walk_stmt ("kernel:" ^ p.kernel.fname)) p.kernel.body;
  let n = !next in
  let kinds = Array.make n "" and paths = Array.make n "" in
  List.iteri
    (fun i (kind, path) ->
      let id = n - 1 - i in
      kinds.(id) <- kind;
      paths.(id) <- path)
    !nodes;
  {
    kinds;
    paths;
    counts = Array.make n 0;
    expr_ids;
    stmt_ids;
    synth = Hashtbl.create 4;
    total = 0;
  }

let bump t id =
  t.counts.(id) <- t.counts.(id) + 1;
  t.total <- t.total + 1

let synthetic t kind =
  (match Hashtbl.find_opt t.synth kind with
  | Some r -> incr r
  | None -> Hashtbl.add t.synth kind (ref 1));
  t.total <- t.total + 1

let tick_expr t e =
  match Etbl.find_opt t.expr_ids e with
  | Some id -> bump t id
  | None -> synthetic t (expr_kind e)

let tick_stmt t s =
  match Stbl.find_opt t.stmt_ids s with
  | Some id -> bump t id
  | None -> synthetic t (stmt_kind s)

let ticks t = t.total

let constructs t =
  let named = ref [] in
  for id = Array.length t.counts - 1 downto 0 do
    if t.counts.(id) > 0 then
      named :=
        {
          Costprof.kind = t.kinds.(id);
          loc = id;
          path = t.paths.(id);
          n = t.counts.(id);
        }
        :: !named
  done;
  let synth =
    Hashtbl.fold
      (fun kind r acc ->
        { Costprof.kind; loc = -1; path = "<synthetic>;" ^ kind; n = !r } :: acc)
      t.synth []
  in
  List.sort
    (fun (a : Costprof.construct) b -> compare (a.loc, a.kind) (b.loc, b.kind))
    (synth @ !named)
