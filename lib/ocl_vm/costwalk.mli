(** Static AST-construct table for the interpreter cost profiler.

    [build] walks a program once in deterministic preorder (functions
    in declaration order, the kernel last) and assigns every statement
    and expression node a static id, a constructor-family name and a
    ';'-separated path of enclosing frames. [tick_stmt]/[tick_expr]
    then cost one array increment per interpreter visit, looked up by
    physical node identity — the interpreter executes the exact program
    value the table was built from, so lookups are O(1) hashtable hits.

    Expressions the interpreter synthesises at runtime (the EMI guard
    reads) miss the table and fall back to one per-kind synthetic slot
    (loc -1), so every tick is attributed and totals still sum to 100%.
    Nullary constructors ([Break], [Continue]) are immediates and
    physically equal across the program; their visits collapse into one
    slot each — deterministic, and harmless for ranking purposes. *)

type t

val build : Ast.program -> t

val tick_stmt : t -> Ast.stmt -> unit
val tick_expr : t -> Ast.expr -> unit

val ticks : t -> int
(** Total ticks recorded so far; equals the sum of construct counts. *)

val constructs : t -> Costprof.construct list
(** Non-zero construct counts, sorted by (loc, kind). *)
