open Ast
module R = Rt_value

type config = {
  fuel : int;
  schedule : Sched.t;
  detect_races : bool;
  check_divergence : bool;
  layout : Layout.policy;
  profile : Profile.t;
}

let default_config =
  {
    fuel = 250_000;
    schedule = Sched.default;
    detect_races = false;
    check_divergence = true;
    layout = Layout.standard;
    profile = Profile.reference;
  }

type stats = {
  steps : int;
  barriers : int;
  atomics : int;
  race_checks : int;
  prof : Costprof.cell list;
}

let zero_stats =
  { steps = 0; barriers = 0; atomics = 0; race_checks = 0; prof = [] }

let add_stats a b =
  {
    steps = a.steps + b.steps;
    barriers = a.barriers + b.barriers;
    atomics = a.atomics + b.atomics;
    race_checks = a.race_checks + b.race_checks;
    prof = a.prof @ b.prof;
  }

type run_result = { outcome : Outcome.t; races : Race.race list; stats : stats }

exception Rt_crash of string
exception Fuel_exhausted
exception Divergence of string

(* ------------------------------------------------------------------ *)
(* Launch / group / thread state                                       *)
(* ------------------------------------------------------------------ *)

(* work tally for the whole launch; groups and their threads run
   serially on one domain, so plain mutable fields suffice *)
type tally = {
  mutable t_steps : int;
  mutable t_barriers : int;
  mutable t_atomics : int;
  mutable t_race_checks : int;
}

type launch = {
  cfg : config;
  ctx : R.alloc_ctx;
  prog : program;
  nd : Ndrange.t;
  buffers : (string * R.cell) list;
  race : Race.t;
  tally : tally;
  costs : Costwalk.t option;  (* cost-profiler tick table, None when off *)
}

type group_state = {
  g : int;
  shared_decls : (string, R.cell) Hashtbl.t;
  mutable epoch_local : int;
  mutable epoch_global : int;
}

type thread_state = {
  th : Ndrange.thread;
  l : launch;
  grp : group_state;
  mutable fuel : int;
  mutable loop_iters : int list;
  mutable call_depth : int;
  mutable lost_writes : bool;  (* Pwb_callee_barrier armed *)
  mutable barrier_seen : bool; (* Pwb_after_barrier armed *)
}

type barrier_info = { site : stmt; iters : int list; fence : Op.fence }

type _ Effect.t += Br : barrier_info -> unit Effect.t

type thread_status =
  | Done
  | At_barrier of barrier_info * (unit, thread_status) Effect.Deep.continuation

(* environment: innermost binding first *)
type env = (string * R.cell) list

type flow = F_normal | F_break | F_continue | F_return of R.value option

let spend ts n =
  ts.l.tally.t_steps <- ts.l.tally.t_steps + n;
  ts.fuel <- ts.fuel - n;
  if ts.fuel <= 0 then raise Fuel_exhausted

(* ------------------------------------------------------------------ *)
(* Race recording                                                      *)
(* ------------------------------------------------------------------ *)

let record_access ts lv kind ~atomic =
  if ts.l.cfg.detect_races then begin
    let space = R.lvalue_space lv in
    match space with
    | Ty.Local | Ty.Global ->
        ts.l.tally.t_race_checks <- ts.l.tally.t_race_checks + 1;
        let epoch =
          match space with
          | Ty.Local -> ts.grp.epoch_local
          | _ -> ts.grp.epoch_global
        in
        Race.record ts.l.race ~loc:(R.base_loc lv)
          ~thread:(Ndrange.t_linear ts.l.nd ts.th)
          ~group:ts.grp.g ~kind ~atomic ~epoch ~space
    | Ty.Private | Ty.Constant -> ()
  end

let read_lv ts lv =
  record_access ts lv Race.Read ~atomic:false;
  R.read ts.l.ctx lv

let write_lv ts lv v =
  record_access ts lv Race.Write ~atomic:false;
  let skip_arrays =
    ts.l.cfg.profile.Profile.struct_copy_drop_arrays
    && match v with R.V_agg _ -> true | _ -> false
  in
  R.write ~skip_arrays ts.l.ctx lv v

(* ------------------------------------------------------------------ *)
(* Value helpers                                                       *)
(* ------------------------------------------------------------------ *)

let as_scalar what = function
  | R.V_scalar s -> s
  | R.V_vector _ -> raise (Rt_crash (what ^ ": vector where scalar expected"))
  | R.V_ptr _ -> raise (Rt_crash (what ^ ": pointer where scalar expected"))
  | R.V_agg _ -> raise (Rt_crash (what ^ ": aggregate where scalar expected"))

let as_int what v = Int64.to_int (Scalar.to_int64 (as_scalar what v))

let as_pointer what = function
  | R.V_ptr (Some p) -> p
  | R.V_ptr None -> raise (Rt_crash (what ^ ": null pointer dereference"))
  | _ -> raise (Rt_crash (what ^ ": non-pointer dereference"))

let truth v = Scalar.is_true (as_scalar "condition" v)

(* does an expression's subtree mention a group id? (Fig. 2(e) quirk) *)
let rec mentions_group_id (e : expr) =
  match e with
  | Thread_id (Op.Group_id _) | Thread_id Op.Group_linear_id -> true
  | Const _ | Var _ | Thread_id _ -> false
  | Unop (_, a) | Safe_neg a | Cast (_, a) | Field (a, _) | Arrow (a, _)
  | Deref a | Addr_of a | Swizzle (a, _) ->
      mentions_group_id a
  | Binop (_, a, b) | Safe_binop (_, a, b) | Index (a, b) ->
      mentions_group_id a || mentions_group_id b
  | Cond (a, b, c) ->
      mentions_group_id a || mentions_group_id b || mentions_group_id c
  | Builtin (_, args) | Call (_, args) | Vec_lit (_, _, args) ->
      List.exists mentions_group_id args
  | Atomic (_, p, args) -> List.exists mentions_group_id (p :: args)

let block_contains_barrier b =
  fold_stmts
    (fun acc s -> acc || match s with Barrier _ -> true | _ -> false)
    false b

(* ------------------------------------------------------------------ *)
(* Scalar/vector operator dispatch                                     *)
(* ------------------------------------------------------------------ *)

let lift_unop op (v : R.value) : R.value =
  let f =
    match op with
    | Op.Neg -> Scalar.neg
    | Op.BitNot -> Scalar.bit_not
    | Op.LogNot -> Scalar.log_not
  in
  match v with
  | R.V_scalar s -> R.V_scalar (f s)
  | R.V_vector vv when op = Op.LogNot ->
      (* !v on vectors: 0 components become -1, others 0 *)
      let rty = { (Vecval.elem_ty vv) with Ty.sign = Ty.Signed } in
      R.V_vector
        (Vecval.map
           (fun c ->
             if Scalar.is_zero c then Scalar.make rty (-1L) else Scalar.zero rty)
           (Vecval.convert rty vv))
  | R.V_vector vv -> R.V_vector (Vecval.map f vv)
  | _ -> raise (Rt_crash "unary operator on non-integer value")

let lift_binop ~safe op (a : R.value) (b : R.value) : R.value =
  let sop = if safe then Scalar.safe_binop op else Scalar.binop op in
  match (a, b) with
  | R.V_scalar x, R.V_scalar y -> R.V_scalar (sop x y)
  | R.V_vector x, R.V_vector y ->
      if Op.is_comparison op || Op.is_shortcircuit op then
        R.V_vector (Vecval.binop op x y)
      else R.V_vector (Vecval.map2 sop x y)
  | R.V_vector x, R.V_scalar y ->
      let y' = Vecval.splat (Vecval.elem_ty x) (Vecval.vlen x) y in
      if Op.is_comparison op || Op.is_shortcircuit op then
        R.V_vector (Vecval.binop op x y')
      else R.V_vector (Vecval.map2 sop x y')
  | R.V_scalar x, R.V_vector y ->
      let x' = Vecval.splat (Vecval.elem_ty y) (Vecval.vlen y) x in
      if Op.is_comparison op || Op.is_shortcircuit op then
        R.V_vector (Vecval.binop op x' y)
      else R.V_vector (Vecval.map2 sop x' y)
  | (R.V_ptr _ as p), (R.V_ptr _ as q) when Op.is_comparison op ->
      let same =
        match (p, q) with
        | R.V_ptr (Some a'), R.V_ptr (Some b') -> a'.R.target == b'.R.target
        | R.V_ptr None, R.V_ptr None -> true
        | _ -> false
      in
      let b =
        match op with
        | Op.Eq -> same
        | Op.Ne -> not same
        | _ -> raise (Rt_crash "ordered comparison of pointers")
      in
      R.V_scalar (Scalar.of_int Ty.int_scalar (if b then 1 else 0))
  | _ -> raise (Rt_crash "binary operator on incompatible values")

let builtin_scalar (b : Op.builtin) (args : Scalar.t list) =
  match (b, args) with
  | (Op.Clamp | Op.Safe_clamp), [ x; lo; hi ] -> Scalar.clamp x lo hi
  | Op.Rotate, [ x; y ] -> Scalar.rotate x y
  | Op.Min, [ x; y ] -> Scalar.min_v x y
  | Op.Max, [ x; y ] -> Scalar.max_v x y
  | Op.Abs, [ x ] -> Scalar.abs_v x
  | Op.Add_sat, [ x; y ] -> Scalar.add_sat x y
  | Op.Sub_sat, [ x; y ] -> Scalar.sub_sat x y
  | Op.Hadd, [ x; y ] -> Scalar.hadd x y
  | Op.Mul_hi, [ x; y ] -> Scalar.mul_hi x y
  | _ -> raise (Rt_crash ("builtin arity: " ^ Op.builtin_name b))

let lift_builtin b (args : R.value list) : R.value =
  let is_vec = List.exists (function R.V_vector _ -> true | _ -> false) args in
  if not is_vec then
    R.V_scalar (builtin_scalar b (List.map (as_scalar "builtin") args))
  else
    let elem, vl =
      match List.find (function R.V_vector _ -> true | _ -> false) args with
      | R.V_vector v -> (Vecval.elem_ty v, Vecval.vlen v)
      | _ -> assert false
    in
    let vecs =
      List.map
        (function
          | R.V_vector v -> v
          | R.V_scalar s -> Vecval.splat elem vl s
          | _ -> raise (Rt_crash "builtin on non-integer value"))
        args
    in
    let n = Ty.vlen_to_int vl in
    let comps =
      Array.init n (fun i ->
          builtin_scalar b (List.map (fun v -> Vecval.get v i) vecs))
    in
    let rty = (comps.(0)).Scalar.ty in
    R.V_vector (Vecval.make rty comps)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval ts (env : env) (e : expr) : R.value =
  (match ts.l.costs with
  | None -> ()
  | Some cw -> (
      (* lvalue-shaped reads delegate to eval_lvalue on the same node,
         which ticks it there — skip here to avoid double counting *)
      match e with
      | Field _ | Arrow _ | Index _ | Deref _ -> ()
      | _ -> Costwalk.tick_expr cw e));
  match e with
  | Const c -> R.V_scalar (Scalar.make c.cty c.value)
  | Var v -> read_lv ts (lvalue_of_var ts env v)
  | Thread_id k ->
      let ty =
        match k with
        | Op.Global_linear_id | Op.Local_linear_id | Op.Group_linear_id
        | Op.Local_linear_size | Op.Global_linear_size ->
            { Ty.width = Ty.W32; sign = Ty.Unsigned }
        | _ -> { Ty.width = Ty.W64; sign = Ty.Unsigned }
      in
      R.V_scalar (Scalar.make ty (Ndrange.id_value ts.l.nd ts.th k))
  | Unop (op, a) -> lift_unop op (eval ts env a)
  | Binop (Op.LogAnd, a, b) -> (
      match eval ts env a with
      | R.V_scalar s when Scalar.is_zero s ->
          R.V_scalar (Scalar.zero Ty.int_scalar)
      | R.V_scalar _ ->
          R.V_scalar
            (if truth (eval ts env b) then Scalar.one Ty.int_scalar
             else Scalar.zero Ty.int_scalar)
      | va -> lift_binop ~safe:false Op.LogAnd va (eval ts env b))
  | Binop (Op.LogOr, a, b) -> (
      match eval ts env a with
      | R.V_scalar s when Scalar.is_true s ->
          R.V_scalar (Scalar.one Ty.int_scalar)
      | R.V_scalar _ ->
          R.V_scalar
            (if truth (eval ts env b) then Scalar.one Ty.int_scalar
             else Scalar.zero Ty.int_scalar)
      | va -> lift_binop ~safe:false Op.LogOr va (eval ts env b))
  | Binop (Op.Comma, a, b) -> (
      let va = eval ts env a in
      let vb = eval ts env b in
      match ts.l.cfg.profile.Profile.comma with
      | Profile.Comma_second -> vb
      | Profile.Comma_first -> va)
  | Binop (op, a, b) when Op.is_comparison op ->
      let v = lift_binop ~safe:false op (eval ts env a) (eval ts env b) in
      if
        ts.l.cfg.profile.Profile.group_id_cmp_invert
        && (mentions_group_id a || mentions_group_id b)
      then lift_unop Op.LogNot v
      else v
  | Binop (op, a, b) -> lift_binop ~safe:false op (eval ts env a) (eval ts env b)
  | Safe_binop (op, a, b) ->
      lift_binop ~safe:true op (eval ts env a) (eval ts env b)
  | Safe_neg a -> (
      match eval ts env a with
      | R.V_scalar s -> R.V_scalar (Scalar.safe_neg s)
      | R.V_vector v -> R.V_vector (Vecval.map Scalar.safe_neg v)
      | _ -> raise (Rt_crash "safe_unary_minus on non-integer"))
  | Builtin (b, args) -> lift_builtin b (List.map (eval ts env) args)
  | Call (f, args) -> eval_call ts env f args
  | Cast (t, a) -> (
      let v = eval ts env a in
      match (t, v) with
      | Ty.Scalar s, R.V_scalar x -> R.V_scalar (Scalar.convert s x)
      | Ty.Vector (s, _), R.V_vector x -> R.V_vector (Vecval.convert s x)
      | Ty.Vector (s, l), R.V_scalar x ->
          R.V_vector (Vecval.splat s l (Scalar.convert s x))
      | Ty.Ptr _, (R.V_ptr _ as p) -> p
      | _ -> raise (Rt_crash "invalid cast"))
  | Cond (c, a, b) ->
      if truth (eval ts env c) then eval ts env a else eval ts env b
  | Swizzle (a, idxs) -> (
      match eval ts env a with
      | R.V_vector vv -> (
          match idxs with
          | [ i ] -> R.V_scalar (Vecval.get vv i)
          | _ -> (
              match Vecval.swizzle vv idxs with
              | Some w -> R.V_vector w
              | None -> raise (Rt_crash "invalid swizzle")))
      | _ -> raise (Rt_crash "swizzle of non-vector value"))
  | Field _ | Arrow _ | Index _ | Deref _ ->
      let lv, _ = eval_lvalue ts env e in
      read_lv ts lv
  | Addr_of a -> (
      let lv, _ = eval_lvalue ts env a in
      match lv with
      | R.L_cell c -> R.V_ptr (Some { R.target = c; pspace = c.R.space })
      | R.L_bytes _ | R.L_comp _ ->
          raise (Rt_crash "address of union member or vector component"))
  | Vec_lit (s, l, args) ->
      let comps =
        List.concat_map
          (fun a ->
            match eval ts env a with
            | R.V_scalar x -> [ Scalar.convert s x ]
            | R.V_vector v ->
                Array.to_list (Array.map (Scalar.convert s) (Vecval.components v))
            | _ -> raise (Rt_crash "vector literal component"))
          args
      in
      if List.length comps <> Ty.vlen_to_int l then
        raise (Rt_crash "vector literal arity");
      R.V_vector (Vecval.make s (Array.of_list comps))
  | Atomic (aop, p, args) -> eval_atomic ts env aop p args

and lvalue_of_var ts env v : R.lvalue =
  match List.assoc_opt v env with
  | Some c -> R.L_cell c
  | None -> (
      match List.assoc_opt v ts.l.buffers with
      | Some c -> R.L_cell c
      | None -> raise (Rt_crash ("unbound variable " ^ v)))

(* returns (lvalue, reached-through-a-pointer) *)
and eval_lvalue ts env (e : expr) : R.lvalue * bool =
  (match ts.l.costs with
  | None -> ()
  | Some cw -> Costwalk.tick_expr cw e);
  match e with
  | Var v -> (lvalue_of_var ts env v, false)
  | Field (a, f) ->
      let lv, vp = eval_lvalue ts env a in
      (R.cell_field ts.l.ctx lv f, vp)
  | Arrow (a, f) ->
      let p = as_pointer "->" (eval ts env a) in
      (R.cell_field ts.l.ctx (R.L_cell p.R.target) f, true)
  | Deref a -> (
      let p = as_pointer "*" (eval ts env a) in
      match p.R.target.R.content with
      | R.C_array _ -> (
          match R.cell_index ts.l.ctx (R.L_cell p.R.target) 0 with
          | Ok lv -> (lv, true)
          | Error m -> raise (Rt_crash m))
      | _ -> (R.L_cell p.R.target, true))
  | Index (a, i) -> (
      let idx = as_int "index" (eval ts env i) in
      let base, vp =
        match a with
        | Var _ | Field (_, _) | Index (_, _) | Arrow (_, _) | Deref _ ->
            eval_lvalue ts env a
        | _ ->
            let p = as_pointer "[]" (eval ts env a) in
            (R.L_cell p.R.target, true)
      in
      match base with
      | R.L_cell { R.content = R.C_ptr _; _ } ->
          (* pointer variable: a[i] = *(a + i) *)
          let p = as_pointer "[]" (read_lv ts base) in
          let arr = R.L_cell p.R.target in
          (match R.cell_index ts.l.ctx arr idx with
          | Ok lv -> (lv, true)
          | Error m -> raise (Rt_crash m))
      | _ -> (
          match R.cell_index ts.l.ctx base idx with
          | Ok lv -> (lv, vp)
          | Error m -> raise (Rt_crash m)))
  | Swizzle (a, [ i ]) -> (
      let lv, vp = eval_lvalue ts env a in
      match lv with
      | R.L_cell c -> (R.L_comp (c, i), vp)
      | _ -> raise (Rt_crash "swizzle lvalue through union"))
  | _ -> raise (Rt_crash ("not an lvalue: " ^ Pp.expr_to_string e))

and eval_call ts env f args : R.value =
  let fn =
    match List.find_opt (fun (fn : func) -> String.equal fn.fname f) ts.l.prog.funcs with
    | Some fn -> fn
    | None -> raise (Rt_crash ("call to unknown function " ^ f))
  in
  spend ts 1;
  let vargs = List.map (eval ts env) args in
  let callee_env =
    List.map2
      (fun (pname, pty) v ->
        let c = R.alloc ts.l.ctx Ty.Private pty in
        R.write ts.l.ctx (R.L_cell c) v;
        (pname, c))
      fn.params vargs
  in
  ts.call_depth <- ts.call_depth + 1;
  let saved_lost = ts.lost_writes in
  let flow = exec_block ts callee_env fn.body in
  ts.call_depth <- ts.call_depth - 1;
  (* the Fig. 2(c) write-loss flag is scoped to the invocation that executed
     the barrier *)
  if ts.call_depth = 0 then ts.lost_writes <- saved_lost;
  match flow with
  | F_return (Some v) -> v
  | F_return None | F_normal ->
      (* missing return in non-void functions: zero value *)
      (match fn.ret with
      | Ty.Void -> R.V_scalar (Scalar.zero Ty.int_scalar)
      | Ty.Scalar s -> R.V_scalar (Scalar.zero s)
      | Ty.Vector (s, l) -> R.V_vector (Vecval.splat s l (Scalar.zero s))
      | Ty.Ptr _ -> R.V_ptr None
      | t -> R.V_agg (R.alloc ts.l.ctx Ty.Private t))
  | F_break | F_continue -> raise (Rt_crash "break/continue escaped function")

and eval_atomic ts env aop p args : R.value =
  let ptr = as_pointer "atomic" (eval ts env p) in
  let cell = ptr.R.target in
  let lv = R.L_cell cell in
  ts.l.tally.t_atomics <- ts.l.tally.t_atomics + 1;
  record_access ts lv Race.Write ~atomic:true;
  let old = as_scalar "atomic" (R.read ts.l.ctx lv) in
  let ty = old.Scalar.ty in
  let operand i = Scalar.convert ty (as_scalar "atomic" (eval ts env (List.nth args i))) in
  let newv =
    match aop with
    | Op.A_inc -> Scalar.binop Op.Add old (Scalar.one ty)
    | Op.A_dec -> Scalar.binop Op.Sub old (Scalar.one ty)
    | Op.A_add -> Scalar.binop Op.Add old (operand 0)
    | Op.A_sub -> Scalar.binop Op.Sub old (operand 0)
    | Op.A_min -> Scalar.min_v old (operand 0)
    | Op.A_max -> Scalar.max_v old (operand 0)
    | Op.A_and -> Scalar.binop Op.BitAnd old (operand 0)
    | Op.A_or -> Scalar.binop Op.BitOr old (operand 0)
    | Op.A_xor -> Scalar.binop Op.BitXor old (operand 0)
    | Op.A_xchg -> operand 0
    | Op.A_cmpxchg ->
        if Scalar.equal old (operand 0) then operand 1 else old
  in
  R.write ts.l.ctx lv (R.V_scalar (Scalar.convert ty newv));
  R.V_scalar old

(* ------------------------------------------------------------------ *)
(* Initialisers (with the struct/union quirks)                         *)
(* ------------------------------------------------------------------ *)

and init_cell ts env (c : R.cell) (i : init) =
  let ctx = ts.l.ctx in
  let profile = ts.l.cfg.profile in
  match (c.R.content, i) with
  | _, I_expr e -> write_lv ts (R.L_cell c) (eval ts env e)
  | R.C_struct (n, fields), I_list is ->
      let agg = Ty.find_aggregate (R.tyenv_of ctx) n in
      let char_first = Layout.struct_is_char_first (R.tyenv_of ctx) agg in
      List.iteri
        (fun k ik ->
          if k < Array.length fields then
            if
              profile.Profile.struct_init_char_first_zero && char_first && k > 0
            then () (* Fig. 1(a): later fields read as zero *)
            else init_cell ts env fields.(k) ik)
        is
  | R.C_union (n, bytes), I_list [ i0 ] -> (
      let agg = Ty.find_aggregate (R.tyenv_of ctx) n in
      match profile.Profile.union_init with
      | Profile.Ui_correct -> (
          match agg.fields with
          | f0 :: _ -> init_cell_via_bytes ts env c 0 f0.Ty.fty i0
          | [] -> ())
      | Profile.Ui_struct_leaf_garbage -> (
          (* Fig. 2(a): garbage-fill, then route the initialiser to the
             first leaf of the first struct-typed member. *)
          let struct_field =
            List.find_opt
              (fun (f : Ty.field) ->
                match f.fty with
                | Ty.Named m ->
                    not (Ty.find_aggregate (R.tyenv_of ctx) m).Ty.is_union
                | _ -> false)
              agg.fields
          in
          match struct_field with
          | None -> (
              match agg.fields with
              | f0 :: _ -> init_cell_via_bytes ts env c 0 f0.Ty.fty i0
              | [] -> ())
          | Some f -> (
              Bytes_repr.fill bytes 0 (Bytes.length bytes) '\xff';
              let leaf_ty =
                match f.fty with
                | Ty.Named m ->
                    let sagg = Ty.find_aggregate (R.tyenv_of ctx) m in
                    (List.hd sagg.Ty.fields).Ty.fty
                | t -> t
              in
              let rec scalar_init = function
                | I_expr e -> Some e
                | I_list (x :: _) -> scalar_init x
                | I_list [] -> None
              in
              match scalar_init i0 with
              | Some e ->
                  init_cell_via_bytes ts env c 0 leaf_ty (I_expr e)
              | None -> ())))
  | R.C_union (_, _), I_list _ ->
      raise (Rt_crash "union initialiser must have one element")
  | R.C_array (_, cells), I_list is ->
      List.iteri
        (fun k ik -> if k < Array.length cells then init_cell ts env cells.(k) ik)
        is
  | R.C_vector old, I_list is ->
      let elem = Vecval.elem_ty old in
      let comps =
        List.map
          (fun ik ->
            match ik with
            | I_expr e -> Scalar.convert elem (as_scalar "vector init" (eval ts env e))
            | I_list _ -> raise (Rt_crash "nested vector initialiser"))
          is
      in
      write_lv ts (R.L_cell c) (R.V_vector (Vecval.make elem (Array.of_list comps)))
  | _, I_list _ -> raise (Rt_crash "brace initialiser for non-aggregate")

and init_cell_via_bytes ts env c off ty i =
  (* initialise a union member: build the value then write it through the
     byte window *)
  match i with
  | I_expr e -> write_lv ts (R.L_bytes (c, off, ty)) (eval ts env e)
  | I_list _ ->
      let tmp = R.alloc ts.l.ctx Ty.Private ty in
      init_cell ts env tmp i;
      write_lv ts (R.L_bytes (c, off, ty)) (R.read ts.l.ctx (R.L_cell tmp))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_block ts env stmts : flow =
  let rec go env = function
    | [] -> F_normal
    | s :: rest -> (
        match exec_stmt ts env s with
        | `Env env' -> go env' rest
        | `Flow F_normal -> go env rest
        | `Flow f -> f)
  in
  go env stmts

and exec_stmt ts env (s : stmt) : [ `Env of env | `Flow of flow ] =
  spend ts 1;
  (match ts.l.costs with
  | None -> ()
  | Some cw -> Costwalk.tick_stmt cw s);
  match s with
  | Decl d ->
      let cell =
        match d.dspace with
        | Ty.Local -> (
            (* one allocation per group, shared by its threads *)
            match Hashtbl.find_opt ts.grp.shared_decls d.dname with
            | Some c -> c
            | None ->
                let c = R.alloc ts.l.ctx Ty.Local d.dty in
                Hashtbl.add ts.grp.shared_decls d.dname c;
                c)
        | sp ->
            let c = R.alloc ts.l.ctx sp d.dty in
            (match d.dinit with Some i -> init_cell ts env c i | None -> ());
            c
      in
      `Env ((d.dname, cell) :: env)
  | Assign (lhs, aop, rhs) ->
      let lv, via_ptr = eval_lvalue ts env lhs in
      let v =
        match aop with
        | A_simple -> eval ts env rhs
        | A_op op ->
            let old = read_lv ts lv in
            lift_binop ~safe:false op old (eval ts env rhs)
      in
      if write_is_lost ts ~via_ptr then `Flow F_normal
      else begin
        write_lv ts lv v;
        `Flow F_normal
      end
  | Expr e ->
      let (_ : R.value) = eval ts env e in
      `Flow F_normal
  | If (c, b1, b2) ->
      let branch = if truth (eval ts env c) then b1 else b2 in
      `Flow (exec_block ts env branch)
  | For f -> `Flow (exec_for ts env f)
  | While (c, body) ->
      ts.loop_iters <- 0 :: ts.loop_iters;
      let rec loop () =
        spend ts 1;
        if truth (eval ts env c) then (
          let fl = exec_block ts env body in
          bump_iter ts;
          match fl with
          | F_normal | F_continue -> loop ()
          | F_break -> F_normal
          | F_return _ as r -> r)
        else F_normal
      in
      let fl = loop () in
      ts.loop_iters <- List.tl ts.loop_iters;
      `Flow fl
  | Break -> `Flow F_break
  | Continue -> `Flow F_continue
  | Return None -> `Flow (F_return None)
  | Return (Some e) -> `Flow (F_return (Some (eval ts env e)))
  | Barrier fence ->
      exec_barrier ts s fence;
      `Flow F_normal
  | Block b -> `Flow (exec_block ts env b)
  | Emi { emi_lo; emi_hi; emi_body; _ } ->
      (* if (dead[hi] < dead[lo]) { body } — false under the standard host
         initialisation dead[j] = j, true when the host inverts dead *)
      let rd i =
        as_scalar "dead" (eval ts env (Index (Var "dead", const_of_int i)))
      in
      let guard = Scalar.is_true (Scalar.binop Op.Lt (rd emi_hi) (rd emi_lo)) in
      if guard then `Flow (exec_block ts env emi_body) else `Flow F_normal

and write_is_lost ts ~via_ptr =
  via_ptr
  &&
  match ts.l.cfg.profile.Profile.pointer_write_bug with
  | Profile.Pwb_none -> false
  | Profile.Pwb_callee_barrier _ -> ts.lost_writes && ts.call_depth > 0
  | Profile.Pwb_after_barrier -> ts.barrier_seen && ts.call_depth > 0

and bump_iter ts =
  match ts.loop_iters with
  | n :: rest -> ts.loop_iters <- (n + 1) :: rest
  | [] -> ()

and exec_for ts env (f : for_loop) : flow =
  let lb = ts.l.cfg.profile.Profile.loop_barrier in
  let body_has_barrier =
    (lb <> Profile.Lb_ok) && block_contains_barrier f.f_body
  in
  if body_has_barrier && lb = Profile.Lb_crash then
    raise (Rt_crash "segmentation fault (barrier inside loop)");
  let lose_init =
    body_has_barrier
    && lb = Profile.Lb_lose_init
    && Ndrange.l_linear ts.l.nd ts.th > 0
  in
  (* Fig. 2(d): the loop initialiser's store participates in condition
     evaluation but is never committed — model: run it, then restore the
     overwritten value once the loop completes. *)
  let restore = ref None in
  let env =
    match f.f_init with
    | None -> env
    | Some (Assign (lhs, _, _) as s) when lose_init ->
        let lv, _ = eval_lvalue ts env lhs in
        let old = R.read ts.l.ctx lv in
        restore := Some (lv, old);
        (match exec_stmt ts env s with `Env e -> e | `Flow _ -> env)
    | Some s -> (
        match exec_stmt ts env s with `Env e -> e | `Flow _ -> env)
  in
  ts.loop_iters <- 0 :: ts.loop_iters;
  let rec loop () =
    spend ts 1;
    let continue_loop =
      match f.f_cond with None -> true | Some c -> truth (eval ts env c)
    in
    if not continue_loop then F_normal
    else
      let fl = exec_block ts env f.f_body in
      bump_iter ts;
      match fl with
      | F_normal | F_continue ->
          (match f.f_update with
          | None -> ()
          | Some s -> ignore (exec_stmt ts env s));
          loop ()
      | F_break -> F_normal
      | F_return _ as r -> r
  in
  let fl = loop () in
  ts.loop_iters <- List.tl ts.loop_iters;
  (match !restore with
  | Some (lv, old) -> R.write ts.l.ctx lv old
  | None -> ());
  fl

and exec_barrier ts site fence =
  ts.l.tally.t_barriers <- ts.l.tally.t_barriers + 1;
  (match ts.l.cfg.profile.Profile.pointer_write_bug with
  | Profile.Pwb_callee_barrier { crash } when ts.call_depth > 0 ->
      if crash then raise (Rt_crash "segmentation fault (barrier in callee)");
      if Ndrange.l_linear ts.l.nd ts.th > 0 then ts.lost_writes <- true
  | Profile.Pwb_after_barrier -> ts.barrier_seen <- true
  | _ -> ());
  Effect.perform (Br { site; iters = ts.loop_iters; fence })

(* ------------------------------------------------------------------ *)
(* Group execution                                                     *)
(* ------------------------------------------------------------------ *)

let same_rendezvous (a : barrier_info) (b : barrier_info) =
  a.site == b.site && a.iters = b.iters

let run_thread_body ts env : unit =
  let flow = exec_block ts env ts.l.prog.kernel.body in
  match flow with
  | F_normal | F_return None -> ()
  | F_return (Some _) -> ()
  | F_break | F_continue -> raise (Rt_crash "break/continue escaped kernel")

let start_thread ts env : thread_status =
  Effect.Deep.match_with
    (fun () ->
      run_thread_body ts env;
      Done)
    ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Br info ->
              Some
                (fun (k : (a, thread_status) Effect.Deep.continuation) ->
                  At_barrier (info, k))
          | _ -> None);
    }

let run_group (l : launch) g =
  let threads = Ndrange.threads_of_group l.nd g in
  let n = List.length threads in
  let grp = { g; shared_decls = Hashtbl.create 8; epoch_local = 0; epoch_global = 0 } in
  let states =
    List.map
      (fun th ->
        {
          th;
          l;
          grp;
          fuel = l.cfg.fuel;
          loop_iters = [];
          call_depth = 0;
          lost_writes = false;
          barrier_seen = false;
        })
      threads
  in
  let kernel_env ts =
    ignore ts;
    (* kernel parameters are pointers to the launch buffers; constant
       arrays are bound as array cells *)
    let param_env =
      List.map
        (fun (pname, pty) ->
          match List.assoc_opt pname l.buffers with
          | Some buf ->
              let c = R.alloc l.ctx Ty.Private pty in
              R.write l.ctx (R.L_cell c)
                (R.V_ptr (Some { R.target = buf; pspace = buf.R.space }));
              (pname, c)
          | None -> raise (Rt_crash ("missing buffer for parameter " ^ pname)))
        l.prog.kernel.params
    in
    param_env
  in
  (* runnable.(i) = what to do next for thread i *)
  let runnable =
    Array.of_list (List.map (fun ts -> `Start ts) states)
  in
  let statuses : thread_status option array = Array.make n None in
  let epoch = ref 0 in
  let cleanup () =
    Array.iter
      (function
        | Some (At_barrier (_, k)) -> (
            (* unwinding a parked fiber can only legitimately raise the
               injected Exit or a VM exception from the unwind path; let
               Out_of_memory / Stack_overflow and friends surface instead
               of being swallowed into a bogus "clean" cleanup *)
            try ignore (Effect.Deep.discontinue k Stdlib.Exit)
            with Stdlib.Exit | Rt_crash _ | Fuel_exhausted | Divergence _ -> ())
        | _ -> ())
      statuses
  in
  let states_arr = Array.of_list states in
  try
    let finished = ref false in
    while not !finished do
      let order = Sched.order l.cfg.schedule ~epoch:!epoch n in
      Array.iter
        (fun i ->
          match runnable.(i) with
          | `Start ts ->
              let env = kernel_env ts in
              statuses.(i) <- Some (start_thread ts env)
          | `Resume k ->
              (* the continuation is consumed by [continue] even when the
                 fiber raises (fuel exhaustion, VM crash): clear the slot
                 first so [cleanup] never discontinues a resumed one *)
              statuses.(i) <- None;
              statuses.(i) <- Some (Effect.Deep.continue k ())
          | `Done -> ())
        order;
      (* classify the rendezvous *)
      let dones = ref 0 and barriers = ref [] in
      Array.iteri
        (fun i st ->
          match st with
          | Some Done -> incr dones
          | Some (At_barrier (info, k)) -> barriers := (i, info, k) :: !barriers
          | None -> assert false)
        statuses;
      match (!dones, !barriers) with
      | d, [] when d = n -> finished := true
      | _, [] -> assert false
      | d, bs when d > 0 ->
          ignore bs;
          raise
            (Divergence
               "barrier divergence: some threads finished while others wait \
                at a barrier")
      | _, ((_, info0, _) :: _ as bs) ->
          if
            l.cfg.check_divergence
            && not (List.for_all (fun (_, i, _) -> same_rendezvous info0 i) bs)
          then
            raise
              (Divergence
                 "barrier divergence: threads arrived at different barriers \
                  or iterations");
          (* epoch bump according to the fence *)
          (match info0.fence with
          | Op.F_local -> grp.epoch_local <- grp.epoch_local + 1
          | Op.F_global -> grp.epoch_global <- grp.epoch_global + 1
          | Op.F_both ->
              grp.epoch_local <- grp.epoch_local + 1;
              grp.epoch_global <- grp.epoch_global + 1);
          incr epoch;
          List.iter (fun (i, _, k) -> runnable.(i) <- `Resume k) bs;
          Array.iteri
            (fun i st ->
              match st with Some Done -> runnable.(i) <- `Done | _ -> ())
            statuses
    done;
    ignore states_arr
  with e ->
    cleanup ();
    raise e

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

let scalar_of_pointee (t : Ty.t) =
  match t with
  | Ty.Ptr (_, Ty.Scalar s) -> s
  | Ty.Ptr (_, Ty.Vector (s, _)) -> s
  | _ -> { Ty.width = Ty.W32; sign = Ty.Signed }

let setup_buffers (tc : testcase) ctx nd =
  List.map
    (fun (name, spec) ->
      let pty =
        match List.assoc_opt name tc.prog.kernel.params with
        | Some t -> t
        | None -> Ty.Ptr (Ty.Global, Ty.int)
      in
      let elem = scalar_of_pointee pty in
      let data =
        match spec with
        | Buf_out -> Array.make (Ndrange.n_linear nd) 0L
        | Buf_zero sz -> Array.make (max sz 1) 0L
        | Buf_data d -> Array.copy d
        | Buf_dead inverted ->
            let d = tc.prog.dead_size in
            Array.init d (fun j ->
                Int64.of_int (if inverted then d - 1 - j else j))
      in
      (name, R.alloc_scalar_buffer ctx Ty.Global elem data))
    tc.buffers

let output_of_buffers bufs =
  String.concat "; "
    (List.map
       (fun (name, vals) ->
         Printf.sprintf "%s: %s" name
           (String.concat ","
              (Array.to_list (Array.map Scalar.to_string vals))))
       bufs)

let run ?(config = default_config) ?costs (tc : testcase) : run_result =
  let race = Race.create () in
  let tally = { t_steps = 0; t_barriers = 0; t_atomics = 0; t_race_checks = 0 } in
  let stats () =
    {
      steps = tally.t_steps;
      barriers = tally.t_barriers;
      atomics = tally.t_atomics;
      race_checks = tally.t_race_checks;
      prof = [];
    }
  in
  match
    let nd = Ndrange.make ~global:tc.global_size ~local:tc.local_size in
    let tyenv = tyenv_of_program tc.prog in
    let ctx = R.alloc_ctx ~tyenv ~layout:config.layout () in
    let buffers = setup_buffers tc ctx nd in
    let const_cells =
      List.map
        (fun (ca : const_array) ->
          if Array.length ca.ca_data = 1 then
            ( ca.ca_name,
              R.alloc_scalar_buffer ctx Ty.Constant ca.ca_elem ca.ca_data.(0) )
          else
            (ca.ca_name, R.alloc_matrix_buffer ctx Ty.Constant ca.ca_elem ca.ca_data))
        tc.prog.constant_arrays
    in
    let l =
      {
        cfg = config;
        ctx;
        prog = tc.prog;
        nd;
        buffers = buffers @ const_cells;
        race;
        tally;
        costs;
      }
    in
    List.iter (fun g -> run_group l g) (Ndrange.groups nd);
    let observed =
      List.map
        (fun name ->
          match List.assoc_opt name l.buffers with
          | Some c -> (name, R.scalar_buffer_contents c)
          | None -> (name, [||]))
        tc.observe
    in
    output_of_buffers observed
  with
  | out ->
      let races = Race.races race in
      if config.detect_races && races <> [] then
        {
          outcome = Outcome.Ub (Race.race_to_string (List.hd races));
          races;
          stats = stats ();
        }
      else { outcome = Outcome.Success out; races; stats = stats () }
  | exception Rt_crash m ->
      { outcome = Outcome.Crash m; races = Race.races race; stats = stats () }
  | exception Fuel_exhausted ->
      { outcome = Outcome.Timeout; races = Race.races race; stats = stats () }
  | exception Divergence m ->
      { outcome = Outcome.Ub m; races = Race.races race; stats = stats () }
  | exception Invalid_argument m ->
      {
        outcome = Outcome.Crash ("runtime error: " ^ m);
        races = Race.races race;
        stats = stats ();
      }

let run_outcome ?config tc = (run ?config tc).outcome
