(** The reference OpenCL device: an NDRange interpreter for MiniCL.

    Execution model: groups run one after another; within a group, threads
    are run serially in the order given by the {!Sched} policy, each until
    it completes or reaches a barrier (implemented with OCaml 5 effect
    handlers — a barrier captures the thread's continuation). When every
    thread of the group has arrived, the rendezvous is checked for barrier
    divergence (same syntactic barrier, same enclosing-loop iteration
    counts, cf. paper section 3.1) and all threads resume in the next
    epoch's order. This serial run-to-barrier execution is a sound
    sequentialisation of OpenCL 1.x intra-group concurrency, and together
    with {!Race}'s epoch-based detector it observes exactly the data races
    the paper's definition describes.

    The interpreter is parameterised by a {!Layout.policy} (union member
    access) and a {!Profile.t} of semantic quirks, so the same engine
    executes both the trustworthy reference device and the buggy code that
    vendor fault models produce. *)

type config = {
  fuel : int;  (** per-thread execution-step budget; exhaustion = timeout *)
  schedule : Sched.t;
  detect_races : bool;
  check_divergence : bool;
  layout : Layout.policy;
  profile : Profile.t;
}

val default_config : config
(** Reference semantics: standard layout, no quirks, ascending schedule,
    divergence checking on, race detection off, fuel 250,000. *)

type stats = {
  steps : int;  (** fuel units consumed (one per executed statement/expression charge) *)
  barriers : int;  (** barrier arrivals, counted per thread *)
  atomics : int;  (** atomic operations executed *)
  race_checks : int;  (** local/global accesses fed to the race detector *)
  prof : Costprof.cell list;
      (** cost-profile cells attached by the driver when [--profile] is
          armed; always [[]] straight out of {!run} *)
}
(** Work performed by one launch. Groups and threads execute serially
    on the calling domain with a deterministic schedule, so for a fixed
    testcase and config these counts are exactly reproducible — the
    campaign layer folds them into [-j]-invariant metric totals. *)

val zero_stats : stats
val add_stats : stats -> stats -> stats

type run_result = {
  outcome : Outcome.t;
  races : Race.race list;  (** non-empty only when [detect_races] *)
  stats : stats;  (** work done, valid on every outcome including crashes *)
}

val run : ?config:config -> ?costs:Costwalk.t -> Ast.testcase -> run_result
(** [?costs] arms the cost profiler: every AST-node visit ticks the
    table (built from the exact program value being run). [None] costs
    one option match per visit — no atomic loads on the hot path. *)

val run_outcome : ?config:config -> Ast.testcase -> Outcome.t
(** Just the outcome. *)

val output_of_buffers : (string * Scalar.t array) list -> string
(** The canonical result string: buffers in [observe] order, each printed
    as a comma-separated value list (the format CLsmith host programs
    print). Exposed for tests. *)
