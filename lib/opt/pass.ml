type t = { name : string; run : Ast.program -> Ast.program }

let run_pass pass prog =
  if Span.enabled () then
    Span.with_ ~cat:"opt" ("opt:" ^ pass.name) (fun () -> pass.run prog)
  else pass.run prog

let pipeline passes prog =
  List.fold_left (fun p pass -> run_pass pass p) prog passes

let names passes = List.map (fun p -> p.name) passes
