(** Test-case reduction for MiniCL kernels.

    The paper notes (section 8) that "manual reduction of randomly
    generated programs to isolate compiler bugs is time-consuming" and that
    a C-Reduce-style tool for OpenCL "would require a concurrency-aware
    static analysis to avoid introducing data races". This module is that
    tool for MiniCL: a greedy delta-debugging loop over statements whose
    candidate transformations are

    - removing a statement;
    - unwrapping a compound statement (a conditional becomes its branches
      in sequence, a loop becomes its body once, a block is spliced);

    and whose well-formedness gate re-checks {!Typecheck.check_testcase}
    and — concurrency-awareness — re-runs the reference interpreter with
    race and divergence detection, rejecting any variant that introduces
    undefined behaviour. The caller's [interesting] predicate (e.g. "this
    configuration still miscompiles it") drives the search exactly as in
    C-Reduce. *)

type stats = {
  initial_stmts : int;
  final_stmts : int;
  attempts : int;  (** candidate variants tried *)
  accepted : int;  (** reduction steps that kept the bug alive *)
}

val reduce :
  ?max_attempts:int ->
  interesting:(Ast.testcase -> bool) ->
  Ast.testcase ->
  Ast.testcase * stats
(** Fixpoint of greedy single-step reductions. The input testcase must
    itself satisfy [interesting]. [max_attempts] (default 5000) bounds the
    total number of candidate evaluations.

    {b Candidate order} (deterministic, and part of the observable
    contract — two runs over the same input always visit the same
    variants): statements are numbered by a depth-first, left-to-right
    walk of every function body (helpers first, kernel last; nested
    statements visited where they occur). Each round scans positions in
    increasing order, trying {e remove} before {e unwrap} at each
    position, and restarts from position 0 as soon as one candidate is
    accepted — greedy first-improvement, as in delta debugging. The
    fixpoint is reached when a full scan accepts nothing or the attempt
    budget is exhausted. *)
