type verdict = Admit | Park | Shed

type t = {
  max_inflight : int;
  max_queue : int;
  read_timeout_ms : int;
  queue_timeout_ms : int;
  retry_after_s : int;
  inflight : (int, int64) Hashtbl.t;  (** conn id -> last activity, ns *)
  mutable parked : (int * int64) list;  (** oldest first: (id, parked at) *)
}

let create ?(max_inflight = 64) ?(max_queue = 64) ?(read_timeout_ms = 10_000)
    ?(queue_timeout_ms = 2_000) ?(retry_after_s = 1) () =
  {
    max_inflight;
    max_queue;
    read_timeout_ms;
    queue_timeout_ms;
    retry_after_s;
    inflight = Hashtbl.create 64;
    parked = [];
  }

let retry_after_s t = t.retry_after_s
let inflight t = Hashtbl.length t.inflight
let parked t = List.length t.parked

let on_open t ~id ~now =
  if Hashtbl.length t.inflight < t.max_inflight then begin
    Hashtbl.replace t.inflight id now;
    Admit
  end
  else if List.length t.parked < t.max_queue then begin
    t.parked <- t.parked @ [ (id, now) ];
    Park
  end
  else Shed

let on_close t ~id =
  Hashtbl.remove t.inflight id;
  t.parked <- List.filter (fun (i, _) -> i <> id) t.parked

let touch t ~id ~now =
  if Hashtbl.mem t.inflight id then Hashtbl.replace t.inflight id now

let elapsed_ms ~now since =
  Int64.to_int (Int64.div (Int64.sub now since) 1_000_000L)

let promote t ~now =
  let rec go acc =
    match t.parked with
    | (id, _) :: rest when Hashtbl.length t.inflight < t.max_inflight ->
        t.parked <- rest;
        Hashtbl.replace t.inflight id now;
        go (id :: acc)
    | _ -> List.rev acc
  in
  go []

let expire t ~now =
  let gone, keep =
    List.partition
      (fun (_, since) -> elapsed_ms ~now since > t.queue_timeout_ms)
      t.parked
  in
  t.parked <- keep;
  List.map fst gone

let stale t ~now =
  let ids =
    Hashtbl.fold
      (fun id since acc ->
        if elapsed_ms ~now since > t.read_timeout_ms then id :: acc else acc)
      t.inflight []
  in
  List.sort compare ids
