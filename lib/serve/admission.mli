(** Admission control and backpressure policy for the serve daemon.

    Pure bookkeeping over injected clocks — the server's select loop
    supplies [now] from {!Mclock} and acts on the returned ids, the
    tests supply synthetic nanosecond values — so every shed/timeout
    decision is deterministic and unit-testable without sockets.

    The model: at most [max_inflight] connections are admitted (being
    read and served); the next [max_queue] arrivals park in a FIFO
    holding pen, promoted as slots free; beyond that the daemon sheds
    immediately with [429 + Retry-After]. Parked connections that wait
    longer than [queue_timeout_ms] are shed the same way; admitted
    connections that show no read activity for [read_timeout_ms]
    (slow-loris, or an abandoned keep-alive) are expired by the caller
    with 408 or a quiet close. *)

type t

type verdict = Admit | Park | Shed

val create :
  ?max_inflight:int ->
  ?max_queue:int ->
  ?read_timeout_ms:int ->
  ?queue_timeout_ms:int ->
  ?retry_after_s:int ->
  unit ->
  t
(** Defaults: 64 in flight, 64 parked, 10 s read timeout, 2 s queue
    timeout, [Retry-After: 1]. *)

val on_open : t -> id:int -> now:int64 -> verdict
(** Classify a newly accepted connection. [Admit] registers activity
    [now]; [Park] appends to the pen; [Shed] records nothing — answer
    429 and close. *)

val on_close : t -> id:int -> unit
(** Forget a connection wherever it is; freed slots are handed out by
    the next {!promote}. *)

val touch : t -> id:int -> now:int64 -> unit
(** Read activity on an admitted connection (resets its timeout). *)

val promote : t -> now:int64 -> int list
(** Move parked connections into free slots, oldest first; the ids to
    start reading from. *)

val expire : t -> now:int64 -> int list
(** Parked connections past [queue_timeout_ms] — shed with 429. *)

val stale : t -> now:int64 -> int list
(** Admitted connections idle past [read_timeout_ms], ascending id —
    close (408 if a partial request is buffered). *)

val retry_after_s : t -> int
val inflight : t -> int
val parked : t -> int
