type req = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let max_body = Netaddr.max_payload

(* request line + headers; far beyond any legitimate client of this API *)
let max_head = 64 * 1024

type decoder = {
  buf : Buffer.t;
  mutable off : int;  (** consumed prefix of [buf] *)
  mutable error : (int * string) option;
}

let decoder () = { buf = Buffer.create 1024; off = 0; error = None }

let compact d =
  if d.off > 0 && d.off >= Buffer.length d.buf - d.off then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let feed d b n = Buffer.add_subbytes d.buf b 0 n
let feed_string d s = Buffer.add_string d.buf s
let buffered d = Buffer.length d.buf - d.off

let fail d code msg =
  d.error <- Some (code, msg);
  `Error (code, msg)

(* end of the header block: the first blank line, tolerating either
   CRLF or bare LF line endings (curl sends CRLF, tests are simpler
   with LF). Returns (exclusive end of head, start of body). *)
let head_end s from =
  let n = String.length s in
  let rec go i =
    match String.index_from_opt s i '\n' with
    | None -> None
    | Some nl ->
        if nl + 1 < n && s.[nl + 1] = '\n' then Some (nl, nl + 2)
        else if nl + 2 < n && s.[nl + 1] = '\r' && s.[nl + 2] = '\n' then
          Some (nl, nl + 3)
        else if nl + 1 >= n || (nl + 2 >= n && s.[nl + 1] = '\r') then None
        else go (nl + 1)
  in
  go from

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_head d head =
  match String.split_on_char '\n' head with
  | [] -> Error (fail d 400 "empty request")
  | request_line :: header_lines -> (
      match String.split_on_char ' ' (strip_cr request_line) with
      | [ meth; path; version ]
        when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
          let headers = ref [] in
          let bad = ref None in
          List.iter
            (fun line ->
              let line = strip_cr line in
              if line <> "" && !bad = None then
                match String.index_opt line ':' with
                | None -> bad := Some line
                | Some i ->
                    let name = String.lowercase_ascii (String.sub line 0 i) in
                    let value =
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    in
                    headers := (name, value) :: !headers)
            header_lines;
          (match !bad with
          | Some line ->
              Error (fail d 400 (Printf.sprintf "malformed header %S" line))
          | None -> Ok (meth, path, List.rev !headers))
      | _ -> Error (fail d 400 "malformed request line"))

let next d =
  match d.error with
  | Some (code, msg) -> `Error (code, msg)
  | None -> (
      compact d;
      let contents = Buffer.contents d.buf in
      match head_end contents d.off with
      | None ->
          if buffered d > max_head then
            fail d 431 "request head too large"
          else `Awaiting
      | Some (he, body_start) -> (
          let head = String.sub contents d.off (he - d.off) in
          match parse_head d head with
          | Error e -> e
          | Ok (meth, path, headers) -> (
              match List.assoc_opt "transfer-encoding" headers with
              | Some _ -> fail d 501 "transfer-encoding unsupported"
              | None -> (
                  let clen =
                    match List.assoc_opt "content-length" headers with
                    | None -> Ok 0
                    | Some v -> (
                        match int_of_string_opt v with
                        | Some n when n >= 0 -> Ok n
                        | _ -> Error v)
                  in
                  match clen with
                  | Error v ->
                      fail d 400 (Printf.sprintf "bad content-length %S" v)
                  | Ok n when n > max_body ->
                      fail d 413
                        (Printf.sprintf "body of %d bytes exceeds %d" n max_body)
                  | Ok n ->
                      if String.length contents - body_start < n then `Awaiting
                      else begin
                        let body = String.sub contents body_start n in
                        d.off <- body_start + n;
                        `Req { meth; path; headers; body }
                      end))))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | c -> Printf.sprintf "Status %d" c

let response ~status ?(headers = []) ?(content_type = "text/plain") ~body () =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  if body <> "" || status <> 204 then begin
    Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
    Buffer.add_string b
      (Printf.sprintf "content-length: %d\r\n" (String.length body))
  end;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
