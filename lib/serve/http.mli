(** Minimal HTTP/1.1 request codec for the serve daemon.

    The same incremental shape as the dist fabric's {!Wire} decoder:
    feed raw socket bytes, pull complete requests, and a protocol
    violation latches a sticky error (the connection is answered once
    and closed — there is no resynchronising a stream after a framing
    error). Supports exactly what the daemon's API needs: methods with
    [Content-Length] bodies (capped at {!Netaddr.max_payload}),
    pipelined requests, CRLF or bare-LF line endings. No
    transfer-encoding, no continuations. *)

type req = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val max_body : int
(** {!Netaddr.max_payload} — larger declared bodies are refused 413. *)

val max_head : int
(** Ceiling on request-line + headers; beyond it the decoder latches
    431. *)

type decoder

val decoder : unit -> decoder
val feed : decoder -> bytes -> int -> unit
val feed_string : decoder -> string -> unit

val buffered : decoder -> int
(** Unconsumed bytes — nonzero between requests means a pipelined or
    partial request is pending. *)

val next : decoder -> [ `Req of req | `Awaiting | `Error of int * string ]
(** The next complete request, if buffered. [`Error (status, reason)]
    is sticky; the status is the HTTP code to answer with before
    closing (400, 413, 431 or 501). *)

val status_text : int -> string

val head_end : string -> int -> (int * int) option
(** [head_end s from]: position of the first blank line at or after
    [from] — [(exclusive end of head, start of body)] — accepting CRLF
    or bare-LF endings. Shared with the client's response parser. *)

val strip_cr : string -> string
(** Drop one trailing ['\r'], the CRLF half a [split_on_char '\n']
    leaves behind. *)

val response :
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  body:string ->
  unit ->
  string
(** Serialise one response. [content-type]/[content-length] are
    emitted for every response except an empty 204; extra [headers]
    ride after them. *)
