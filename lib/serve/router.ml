let json_body j = Jsonl.to_string j

let ok_json j =
  Http.response ~status:200 ~content_type:"application/json"
    ~body:(json_body j) ()

let err status msg =
  Http.response ~status ~content_type:"application/json"
    ~body:(json_body (Jsonl.Obj [ ("error", Jsonl.Str msg) ]))
    ()

(* /corpus/<hash> *)
let corpus_item path =
  let prefix = "/corpus/" in
  let pn = String.length prefix in
  if String.length path > pn && String.sub path 0 pn = prefix then
    Some (String.sub path pn (String.length path - pn))
  else None

let handle_post store (r : Http.req) =
  match r.path with
  | "/kernel" -> (
      match Jsonl.of_string r.body with
      | Error e -> err 400 ("bad json: " ^ e)
      | Ok (Jsonl.Obj fields as j) -> (
          match
            ( Corpus.entry_of_fields fields,
              Option.bind (Jsonl.member "text" j) Jsonl.get_str )
          with
          | Some e, Some text -> (
              match Svstore.submit_kernel store e text with
              | Error m -> err 400 m
              | Ok added ->
                  ok_json
                    (Jsonl.Obj
                       [
                         ("added", Jsonl.Bool added);
                         ("hash", Jsonl.Str e.Corpus.hash);
                       ]))
          | _ -> err 400 "kernel submission needs entry fields and text")
      | Ok _ -> err 400 "kernel submission must be an object")
  | "/claim" -> (
      match Svstore.claim store with
      | None -> Http.response ~status:204 ~body:"" ()
      | Some (e, text) ->
          ok_json (Jsonl.Obj (Corpus.entry_fields e @ [ ("text", Jsonl.Str text) ])))
  | "/observation" -> (
      match Jsonl.of_string r.body with
      | Error e -> err 400 ("bad json: " ^ e)
      | Ok j -> (
          let cell = Option.bind (Jsonl.member "cell" j) Journal.cell_of_json in
          let obs =
            match Jsonl.member "obs" j with
            | None -> Some None
            | Some o -> Option.map Option.some (Triage.observation_of_json o)
          in
          let cov =
            match Option.bind (Jsonl.member "cov" j) Jsonl.get_list with
            | None -> Some []
            | Some l ->
                let is = List.filter_map Jsonl.get_int l in
                if List.length is = List.length l then Some is else None
          in
          match (cell, obs, cov) with
          | Some cell, Some obs, Some cov -> (
              match Svstore.report_observation store ~cell ~obs ~cov with
              | Error m -> err 400 m
              | Ok (fresh, new_bits) ->
                  ok_json
                    (Jsonl.Obj
                       [
                         ("fresh", Jsonl.Bool fresh);
                         ("new_bits", Jsonl.Int new_bits);
                       ]))
          | _ -> err 400 "observation needs a cell (obs and cov optional)"))
  | _ -> err 404 "no such endpoint"

(* Bounded label set for per-route metrics: every corpus item collapses
   to one label, unknown paths to "other", so request counters cannot
   grow without bound under adversarial paths. *)
let route_label path =
  match path with
  | "/kernel" -> "kernel"
  | "/claim" -> "claim"
  | "/observation" -> "observation"
  | "/healthz" -> "healthz"
  | "/bugs" -> "bugs"
  | "/coverage" -> "coverage"
  | "/coverage/hex" -> "coverage_hex"
  | "/corpus" -> "corpus"
  | "/metrics" -> "metrics"
  | "/metrics.json" -> "metrics_json"
  | "/metrics/history" -> "metrics_history"
  | "/report" -> "report"
  | p -> if corpus_item p <> None then "corpus_item" else "other"

let handle_get ?history store (r : Http.req) =
  match r.path with
  | "/healthz" ->
      ok_json
        (Jsonl.Obj
           [
             ("ok", Jsonl.Bool true);
             ("kernels", Jsonl.Int (Svstore.kernel_count store));
             ("cells", Jsonl.Int (Svstore.cell_count store));
             ("cursor", Jsonl.Int (Svstore.cursor store));
           ])
  | "/bugs" ->
      let buckets = Svstore.buckets store in
      ok_json
        (Jsonl.Obj
           [
             ("count", Jsonl.Int (List.length buckets));
             ("buckets", Jsonl.List (List.map Triage.bucket_to_json buckets));
           ])
  | "/coverage" ->
      ok_json
        (Jsonl.Obj
           [
             ("bits", Jsonl.Int (Svstore.coverage_count store));
             ("size", Jsonl.Int Covmap.size);
           ])
  | "/coverage/hex" ->
      Http.response ~status:200 ~body:(Svstore.coverage_hex store) ()
  | "/corpus" ->
      let entries = Svstore.corpus store in
      ok_json
        (Jsonl.Obj
           [
             ("count", Jsonl.Int (List.length entries));
             ( "entries",
               Jsonl.List
                 (List.map (fun e -> Jsonl.Obj (Corpus.entry_fields e)) entries)
             );
           ])
  | "/metrics" ->
      Http.response ~status:200 ~body:(Metrics.to_prometheus ()) ()
  | "/metrics.json" -> ok_json (Metrics.to_json ())
  | "/metrics/history" -> (
      match history with
      | Some h -> ok_json (Svhistory.to_json h)
      | None -> err 404 "history not armed")
  | "/report" ->
      let history =
        match history with
        | None -> []
        | Some h ->
            List.map
              (fun (s : Svhistory.sample) ->
                {
                  Report_html.ts_ms = s.Svhistory.t_ms;
                  requests = s.Svhistory.requests;
                  shed = s.Svhistory.shed;
                  p50_us = s.Svhistory.p50_us;
                  p99_us = s.Svhistory.p99_us;
                })
              (Svhistory.samples h)
      in
      let html =
        Report_html.render ~header:(Svstore.header store)
          ~cells:(Svstore.cells store) ~history ()
      in
      Http.response ~status:200 ~content_type:"text/html" ~body:html ()
  | path -> (
      match corpus_item path with
      | Some hash -> (
          match Svstore.kernel store hash with
          | Some text -> Http.response ~status:200 ~body:text ()
          | None -> err 404 "no kernel at that address")
      | None -> err 404 "no such endpoint")

let query_endpoint = function
  | "/healthz" | "/bugs" | "/coverage" | "/coverage/hex" | "/corpus"
  | "/metrics" | "/metrics.json" | "/metrics/history" | "/report" ->
      true
  | path -> corpus_item path <> None

let handle ?history store (r : Http.req) =
  match r.meth with
  | "GET" -> handle_get ?history store r
  | "POST" -> (
      match r.path with
      | "/kernel" | "/claim" | "/observation" -> handle_post store r
      | path when query_endpoint path -> err 405 "query endpoints are GET"
      | _ -> err 404 "no such endpoint")
  | _ -> err 405 "method not allowed"
