(** Request dispatch for the serve daemon's API.

    - [POST /kernel] — submit a corpus kernel (entry fields + text);
      [{"added":bool,"hash":...}], idempotent on content hash.
    - [POST /claim] — next unclaimed kernel (entry + text), 204 when
      the corpus is exhausted.
    - [POST /observation] — report one executed cell with optional
      triage classification and coverage indices;
      [{"fresh":bool,"new_bits":int}], idempotent on cell key.
    - [GET /bugs] — distinct-bug buckets.
    - [GET /coverage], [GET /coverage/hex] — popcount / full bitmap.
    - [GET /corpus], [GET /corpus/HASH] — index / kernel text.
    - [GET /metrics], [GET /metrics.json] — the process metrics
      registry, Prometheus text or canonical JSON.
    - [GET /metrics/history] — the periodic metrics snapshot ring
      (404 unless the server armed one).
    - [GET /report] — the standard HTML campaign report over live
      state, with throughput/latency panels when history is armed.
    - [GET /healthz] — liveness + store counts.

    Pure with respect to the connection: one request in, one
    serialised response out. *)

val handle : ?history:Svhistory.t -> Svstore.t -> Http.req -> string
(** The full serialised HTTP response for one request. *)

val route_label : string -> string
(** Bounded metric label for a request path: named endpoints map to
    themselves ("kernel", "claim", "observation", ...), any
    [/corpus/HASH] to "corpus_item", everything else to "other". *)
