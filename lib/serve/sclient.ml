type resp = { status : int; headers : (string * string) list; body : string }

let read_all fd =
  let buf = Bytes.create 65536 in
  let b = Buffer.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let parse raw =
  match Http.head_end raw 0 with
  | None -> Error "truncated response"
  | Some (he, body_start) -> (
      let head = String.sub raw 0 he in
      match String.split_on_char '\n' head with
      | status_line :: header_lines -> (
          let status_line = Http.strip_cr status_line in
          match String.split_on_char ' ' status_line with
          | version :: code :: _
            when String.length version >= 7
                 && String.sub version 0 7 = "HTTP/1." -> (
              match int_of_string_opt code with
              | None -> Error ("bad status " ^ code)
              | Some status ->
                  let headers =
                    List.filter_map
                      (fun line ->
                        let line = Http.strip_cr line in
                        match String.index_opt line ':' with
                        | None -> None
                        | Some i ->
                            Some
                              ( String.lowercase_ascii (String.sub line 0 i),
                                String.trim
                                  (String.sub line (i + 1)
                                     (String.length line - i - 1)) ))
                      header_lines
                  in
                  let body =
                    String.sub raw body_start (String.length raw - body_start)
                  in
                  (* Connection: close means EOF delimits the body; a
                     content-length merely lets us truncate trailing
                     bytes if the peer sent any *)
                  let body =
                    match
                      Option.bind
                        (List.assoc_opt "content-length" headers)
                        int_of_string_opt
                    with
                    | Some n when n <= String.length body -> String.sub body 0 n
                    | _ -> body
                  in
                  Ok { status; headers; body })
          | _ -> Error "malformed status line")
      | [] -> Error "empty response")

let request ~addr ?(retries = 0) ~meth ~path ?(body = "")
    ?(content_type = "application/json") () =
  match Netaddr.connect ~retries addr with
  | Error e -> Error e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let head =
            Printf.sprintf
              "%s %s HTTP/1.1\r\nhost: campaign-serve\r\nconnection: close\r\n"
              meth path
          in
          let head =
            if body = "" then head
            else
              head
              ^ Printf.sprintf "content-type: %s\r\ncontent-length: %d\r\n"
                  content_type (String.length body)
          in
          match Netaddr.write_all fd (head ^ "\r\n" ^ body) with
          | () -> parse (read_all fd)
          | exception Unix.Unix_error (err, _, _) ->
              Error (Printf.sprintf "send: %s" (Unix.error_message err)))

let get ~addr ?retries path = request ~addr ?retries ~meth:"GET" ~path ()

let expect_json (r : resp) =
  match Jsonl.of_string r.body with
  | Ok j -> Ok j
  | Error e -> Error (Printf.sprintf "status %d, bad json: %s" r.status e)

let submit_kernel ~addr ?retries (e : Corpus.entry) text =
  match
    request ~addr ?retries ~meth:"POST" ~path:"/kernel"
      ~body:
        (Jsonl.to_string
           (Jsonl.Obj (Corpus.entry_fields e @ [ ("text", Jsonl.Str text) ])))
      ()
  with
  | Error e -> Error e
  | Ok r when r.status <> 200 ->
      Error (Printf.sprintf "submit: status %d: %s" r.status r.body)
  | Ok r -> (
      match expect_json r with
      | Error e -> Error e
      | Ok j -> (
          match Option.bind (Jsonl.member "added" j) Jsonl.get_bool with
          | Some added -> Ok added
          | None -> Error "submit: malformed reply"))

let claim ~addr ?retries () =
  match request ~addr ?retries ~meth:"POST" ~path:"/claim" () with
  | Error e -> Error e
  | Ok r when r.status = 204 -> Ok None
  | Ok r when r.status <> 200 ->
      Error (Printf.sprintf "claim: status %d: %s" r.status r.body)
  | Ok r -> (
      match expect_json r with
      | Error e -> Error e
      | Ok (Jsonl.Obj fields as j) -> (
          match
            ( Corpus.entry_of_fields fields,
              Option.bind (Jsonl.member "text" j) Jsonl.get_str )
          with
          | Some e, Some text -> Ok (Some (e, text))
          | _ -> Error "claim: malformed reply")
      | Ok _ -> Error "claim: malformed reply")

let report_observation ~addr ?retries ~cell ~obs ~cov () =
  let body =
    Jsonl.to_string
      (Jsonl.Obj
         ([ ("cell", Journal.cell_to_json cell) ]
         @ (match obs with
           | None -> []
           | Some o -> [ ("obs", Jsonl.Obj (Triage.observation_fields o)) ])
         @ [ ("cov", Jsonl.List (List.map (fun i -> Jsonl.Int i) cov)) ]))
  in
  match request ~addr ?retries ~meth:"POST" ~path:"/observation" ~body () with
  | Error e -> Error e
  | Ok r when r.status <> 200 ->
      Error (Printf.sprintf "observation: status %d: %s" r.status r.body)
  | Ok r -> (
      match expect_json r with
      | Error e -> Error e
      | Ok j -> (
          match
            ( Option.bind (Jsonl.member "fresh" j) Jsonl.get_bool,
              Option.bind (Jsonl.member "new_bits" j) Jsonl.get_int )
          with
          | Some fresh, Some new_bits -> Ok (fresh, new_bits)
          | _ -> Error "observation: malformed reply"))
