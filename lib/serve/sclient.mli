(** Blocking HTTP client for the serve daemon.

    One connection per request ([Connection: close], EOF-delimited
    response) — deliberately the simplest correct client: campaign
    clients are long-lived processes making a few requests per kernel,
    not latency-critical hot loops, and per-request connections mean a
    killed-and-restarted daemon needs no session recovery on the
    client side. [?retries] rides on {!Netaddr.connect}'s transient
    retry, which is how a client waits out a daemon that is still
    starting. *)

type resp = { status : int; headers : (string * string) list; body : string }

val request :
  addr:Netaddr.t ->
  ?retries:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  ?content_type:string ->
  unit ->
  (resp, string) result

val get : addr:Netaddr.t -> ?retries:int -> string -> (resp, string) result

val submit_kernel :
  addr:Netaddr.t -> ?retries:int -> Corpus.entry -> string -> (bool, string) result
(** [Ok true] when the kernel was new to the daemon. *)

val claim :
  addr:Netaddr.t ->
  ?retries:int ->
  unit ->
  ((Corpus.entry * string) option, string) result
(** [Ok None] when the daemon has no unclaimed work (204). *)

val report_observation :
  addr:Netaddr.t ->
  ?retries:int ->
  cell:Journal.cell ->
  obs:Triage.observation option ->
  cov:int list ->
  unit ->
  (bool * int, string) result
(** [(fresh, new coverage bits)] as the daemon recorded them. *)
